#include "xbar/nonideal.hpp"

#include <gtest/gtest.h>

#include "xbar/mna_solver.hpp"

namespace rhw::xbar {
namespace {

CrossbarSpec small_spec(int64_t n) {
  CrossbarSpec spec;
  spec.rows = n;
  spec.cols = n;
  return spec;
}

TEST(NonIdeal, SeriesResistanceGrowsTowardFarCorner) {
  const auto spec = small_spec(8);
  // Far corner in the path model: first row (longest column run), last col.
  EXPECT_GT(series_path_resistance(0, 7, spec),
            series_path_resistance(7, 0, spec));
  // Monotone along a row and along a column.
  for (int64_t j = 1; j < 8; ++j) {
    EXPECT_GT(series_path_resistance(3, j, spec),
              series_path_resistance(3, j - 1, spec));
  }
  for (int64_t i = 1; i < 8; ++i) {
    EXPECT_LT(series_path_resistance(i, 3, spec),
              series_path_resistance(i - 1, 3, spec));
  }
}

TEST(NonIdeal, AlwaysReducesConductance) {
  const auto spec = small_spec(4);
  std::vector<double> g(16, spec.g_max());
  const auto eff = nonideal_conductances(g, spec);
  for (size_t i = 0; i < g.size(); ++i) EXPECT_LT(eff[i], g[i]);
}

TEST(NonIdeal, ZeroParasiticsIsIdentity) {
  auto spec = small_spec(4);
  spec.r_driver = spec.r_wire_row = spec.r_wire_col = spec.r_sense = 0.0;
  std::vector<double> g(16, 2e-5);
  const auto eff = nonideal_conductances(g, spec);
  for (size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(eff[i], g[i], 1e-18);
}

TEST(NonIdeal, LargerConductanceLargerRelativeDrop) {
  // The R_MIN effect: high-conductance (low R) devices are distorted more.
  const auto spec = small_spec(4);
  std::vector<double> g(16);
  for (size_t i = 0; i < 8; ++i) g[i] = spec.g_max();
  for (size_t i = 8; i < 16; ++i) g[i] = spec.g_min();
  const auto eff = nonideal_conductances(g, spec);
  const double rel_drop_max = (g[0] - eff[0]) / g[0];
  const double rel_drop_min = (g[8] - eff[8]) / g[8];
  EXPECT_GT(rel_drop_max, rel_drop_min);
}

TEST(NonIdeal, BiggerArrayMoreDistortion) {
  // Paper Table III property: larger crossbars have longer wires, hence more
  // deviation for the same device conductance.
  double prev_rel_drop = 0.0;
  for (int64_t n : {8, 16, 32, 64}) {
    const auto spec = small_spec(n);
    std::vector<double> g(static_cast<size_t>(n * n), spec.g_max());
    const auto eff = nonideal_conductances(g, spec);
    double acc = 0;
    for (size_t i = 0; i < g.size(); ++i) acc += (g[i] - eff[i]) / g[i];
    const double mean_rel_drop = acc / static_cast<double>(g.size());
    EXPECT_GT(mean_rel_drop, prev_rel_drop) << "n=" << n;
    prev_rel_drop = mean_rel_drop;
  }
}

TEST(NonIdeal, SmallerRminMoreRelativeDistortion) {
  // Paper Fig. 8(a): R_MIN = 10k (same ON/OFF) -> more non-ideality.
  auto spec20 = small_spec(32);
  auto spec10 = small_spec(32);
  spec10.r_min = 10e3;
  spec10.r_max = 100e3;
  auto mean_drop = [](const CrossbarSpec& spec) {
    std::vector<double> g(static_cast<size_t>(spec.rows * spec.cols),
                          spec.g_max());
    const auto eff = nonideal_conductances(g, spec);
    double acc = 0;
    for (size_t i = 0; i < g.size(); ++i) acc += (g[i] - eff[i]) / g[i];
    return acc / static_cast<double>(g.size());
  };
  EXPECT_GT(mean_drop(spec10), mean_drop(spec20));
}

TEST(NonIdeal, SizeMismatchThrows) {
  const auto spec = small_spec(4);
  std::vector<double> g(15);
  EXPECT_THROW(nonideal_conductances(g, spec), std::invalid_argument);
}

// The fast model must stay within a bounded gap of the exact MNA solution for
// the paper's parasitics (it ignores current sharing, so it overestimates
// degradation slightly for dense high-G tiles).
TEST(NonIdeal, FastModelTracksExactSolver) {
  for (int64_t n : {4, 8}) {
    const auto spec = small_spec(n);
    rhw::RandomEngine rng(static_cast<uint64_t>(n));
    std::vector<double> g(static_cast<size_t>(n * n));
    for (auto& v : g) {
      v = spec.g_min() + (spec.g_max() - spec.g_min()) * rng.next_double();
    }
    const auto fast = nonideal_conductances(g, spec);
    const auto exact = MnaSolver(g, spec).effective_conductance();
    for (size_t i = 0; i < g.size(); ++i) {
      const double rel_gap = std::fabs(fast[i] - exact[i]) / exact[i];
      EXPECT_LT(rel_gap, 0.30) << "n=" << n << " idx=" << i;
    }
    // And on average much closer than the worst case.
    double acc = 0;
    for (size_t i = 0; i < g.size(); ++i) {
      acc += std::fabs(fast[i] - exact[i]) / exact[i];
    }
    EXPECT_LT(acc / static_cast<double>(g.size()), 0.15) << "n=" << n;
  }
}

}  // namespace
}  // namespace rhw::xbar
