#include "xbar/conductance.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rhw::xbar {
namespace {

TEST(CrossbarSpec, PaperDefaults) {
  CrossbarSpec spec;
  EXPECT_DOUBLE_EQ(spec.on_off_ratio(), 10.0);
  EXPECT_DOUBLE_EQ(spec.g_min(), 1.0 / 200e3);
  EXPECT_DOUBLE_EQ(spec.g_max(), 1.0 / 20e3);
  EXPECT_DOUBLE_EQ(spec.r_driver, 1e3);
  EXPECT_DOUBLE_EQ(spec.r_wire_row, 5.0);
  EXPECT_DOUBLE_EQ(spec.r_wire_col, 10.0);
  EXPECT_DOUBLE_EQ(spec.r_sense, 1e3);
  EXPECT_DOUBLE_EQ(spec.sigma_over_mu, 0.10);
}

TEST(ProgramTile, RoundTripsWeightsWithoutVariation) {
  CrossbarSpec spec;
  spec.rows = 4;
  spec.cols = 4;
  const std::vector<float> w{0.5f, -0.25f, 0.f, 1.0f, -1.0f, 0.75f};
  const auto tile = program_tile(w.data(), 2, 3, 3, spec, nullptr);
  const auto back = tile_weights(tile, tile.g_pos, tile.g_neg, spec);
  ASSERT_EQ(back.size(), 6u);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(back[i], w[i], 1e-6f) << "weight " << i;
  }
}

TEST(ProgramTile, ConductancesWithinDeviceRange) {
  CrossbarSpec spec;
  spec.rows = 8;
  spec.cols = 8;
  std::vector<float> w(64);
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = std::sin(static_cast<float>(i));
  }
  const auto tile = program_tile(w.data(), 8, 8, 8, spec, nullptr);
  for (double g : tile.g_pos) {
    EXPECT_GE(g, spec.g_min() - 1e-12);
    EXPECT_LE(g, spec.g_max() + 1e-12);
  }
  for (double g : tile.g_neg) {
    EXPECT_GE(g, spec.g_min() - 1e-12);
    EXPECT_LE(g, spec.g_max() + 1e-12);
  }
}

TEST(ProgramTile, PositiveWeightsUseGPos) {
  CrossbarSpec spec;
  spec.rows = 2;
  spec.cols = 2;
  const std::vector<float> w{1.f, -1.f};  // 1 output, 2 inputs
  const auto tile = program_tile(w.data(), 1, 2, 2, spec, nullptr);
  // w[0]=+1 -> g_pos at (row 0, col 0) = g_max, g_neg = g_min
  EXPECT_NEAR(tile.g_pos[0], spec.g_max(), 1e-12);
  EXPECT_NEAR(tile.g_neg[0], spec.g_min(), 1e-12);
  // w[1]=-1 -> row 1, col 0: g_neg = g_max
  EXPECT_NEAR(tile.g_pos[1 * spec.cols + 0], spec.g_min(), 1e-12);
  EXPECT_NEAR(tile.g_neg[1 * spec.cols + 0], spec.g_max(), 1e-12);
}

TEST(ProgramTile, PaddingAtGMin) {
  CrossbarSpec spec;
  spec.rows = 4;
  spec.cols = 4;
  const std::vector<float> w{1.f};  // 1x1 in a 4x4 tile
  const auto tile = program_tile(w.data(), 1, 1, 1, spec, nullptr);
  // Unused cell (3,3):
  EXPECT_DOUBLE_EQ(tile.g_pos[15], spec.g_min());
  EXPECT_DOUBLE_EQ(tile.g_neg[15], spec.g_min());
}

TEST(ProgramTile, OversizedTileThrows) {
  CrossbarSpec spec;
  spec.rows = 2;
  spec.cols = 2;
  std::vector<float> w(12, 0.f);
  EXPECT_THROW(program_tile(w.data(), 3, 4, 4, spec, nullptr),
               std::invalid_argument);
}

TEST(ProgramTile, VariationPerturbsConductances) {
  CrossbarSpec spec;
  spec.rows = 8;
  spec.cols = 8;
  std::vector<float> w(64, 0.5f);
  const auto clean = program_tile(w.data(), 8, 8, 8, spec, nullptr);
  rhw::RandomEngine rng(7);
  const auto varied = program_tile(w.data(), 8, 8, 8, spec, &rng);
  double delta = 0;
  for (size_t i = 0; i < clean.g_pos.size(); ++i) {
    delta += std::fabs(clean.g_pos[i] - varied.g_pos[i]);
  }
  EXPECT_GT(delta, 0.0);
}

TEST(ProgramTile, VariationMagnitudeMatchesSigma) {
  CrossbarSpec spec;
  spec.rows = 32;
  spec.cols = 32;
  std::vector<float> w(32 * 32, 1.f);  // all at g_max
  rhw::RandomEngine rng(8);
  const auto tile = program_tile(w.data(), 32, 32, 32, spec, &rng);
  double rel_acc = 0;
  int64_t count = 0;
  for (double g : tile.g_pos) {
    rel_acc += std::pow((g - spec.g_max()) / spec.g_max(), 2);
    ++count;
  }
  const double sigma_est = std::sqrt(rel_acc / count);
  EXPECT_NEAR(sigma_est, spec.sigma_over_mu, 0.03);
}

TEST(ProgramTile, ZeroWeightsTileIsAllGMin) {
  CrossbarSpec spec;
  spec.rows = 2;
  spec.cols = 2;
  std::vector<float> w(4, 0.f);
  const auto tile = program_tile(w.data(), 2, 2, 2, spec, nullptr);
  const auto back = tile_weights(tile, tile.g_pos, tile.g_neg, spec);
  for (float v : back) EXPECT_EQ(v, 0.f);
}

}  // namespace
}  // namespace rhw::xbar
