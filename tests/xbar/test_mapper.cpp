#include "xbar/mapper.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/model_io.hpp"
#include "nn/sequential.hpp"

namespace rhw::xbar {
namespace {

nn::Sequential make_net(uint64_t seed) {
  nn::Sequential net;
  net.emplace<nn::Conv2d>(3, 8, 3);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(8 * 4 * 4, 40);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(40, 5);
  rhw::RandomEngine rng(seed);
  nn::kaiming_init(net, rng);
  net.set_training(false);
  return net;
}

XbarMapConfig quiet_config() {
  XbarMapConfig cfg;
  cfg.spec.rows = 16;
  cfg.spec.cols = 16;
  cfg.adc_bits = 0;          // isolate weight effects in most tests
  cfg.read_noise_sigma = 0;
  cfg.read_noise_scale = 0;
  cfg.ir_fluctuation = 0;
  cfg.grad_noise_scale = 0;
  return cfg;
}

TEST(Mapper, CountsLayersAndTiles) {
  auto net = make_net(1);
  auto cfg = quiet_config();
  const auto report = map_onto_crossbars(net, cfg);
  EXPECT_EQ(report.num_layers, 3);
  // conv: [8 x 27] -> 2 x 1 tiles; fc1: [40 x 128] -> ceil(128/16)*ceil(40/16)
  // = 8*3; fc2: [5 x 40] -> 3*1.
  EXPECT_EQ(report.num_tiles, 2 + 24 + 3);
}

TEST(Mapper, MutatesWeights) {
  auto net = make_net(2);
  const auto before = nn::state_dict(net);
  auto cfg = quiet_config();
  (void)map_onto_crossbars(net, cfg);
  const auto after = nn::state_dict(net);
  double delta = 0;
  for (const auto& [key, t] : before) {
    if (key.find("weight") == std::string::npos) continue;
    const auto& t2 = after.at(key);
    for (int64_t i = 0; i < t.numel(); ++i) delta += std::fabs(t[i] - t2[i]);
  }
  EXPECT_GT(delta, 0.0);
}

TEST(Mapper, ReportErrorsPositiveAndBounded) {
  auto net = make_net(3);
  auto cfg = quiet_config();
  const auto report = map_onto_crossbars(net, cfg);
  EXPECT_GT(report.mean_rel_weight_error, 0.0);
  EXPECT_LT(report.mean_rel_weight_error, 0.5);
  EXPECT_GE(report.max_rel_weight_error, report.mean_rel_weight_error);
}

TEST(Mapper, IdealModelWithoutVariationIsNearExact) {
  auto net = make_net(4);
  auto cfg = quiet_config();
  cfg.model = CircuitModel::kIdeal;
  cfg.process_variation = false;
  const auto report = map_onto_crossbars(net, cfg);
  EXPECT_LT(report.max_rel_weight_error, 1e-5);
}

TEST(Mapper, OutputsStayCloseForMildNonIdealities) {
  auto net = make_net(5);
  auto mapped = make_net(5);
  auto cfg = quiet_config();
  cfg.spec.r_driver = 10.0;  // mild parasitics
  cfg.spec.r_sense = 10.0;
  cfg.spec.r_wire_row = 0.1;
  cfg.spec.r_wire_col = 0.1;
  cfg.process_variation = false;
  (void)map_onto_crossbars(mapped, cfg);
  rhw::RandomEngine rng(6);
  const Tensor x = Tensor::rand_uniform({2, 3, 4, 4}, rng);
  const Tensor y0 = net.forward(x);
  const Tensor y1 = mapped.forward(x);
  for (int64_t i = 0; i < y0.numel(); ++i) {
    EXPECT_NEAR(y1[i], y0[i], 0.15f * std::fabs(y0[i]) + 0.05f);
  }
}

TEST(Mapper, DeterministicForSameSeed) {
  auto a = make_net(7);
  auto b = make_net(7);
  auto cfg = quiet_config();
  cfg.seed = 1234;
  (void)map_onto_crossbars(a, cfg);
  (void)map_onto_crossbars(b, cfg);
  const auto sa = nn::state_dict(a);
  const auto sb = nn::state_dict(b);
  for (const auto& [key, t] : sa) {
    const auto& t2 = sb.at(key);
    for (int64_t i = 0; i < t.numel(); ++i) ASSERT_EQ(t[i], t2[i]);
  }
}

TEST(Mapper, PeripheralHooksInstalledWhenEnabled) {
  auto net = make_net(8);
  XbarMapConfig cfg = quiet_config();
  cfg.adc_bits = 6;
  cfg.read_noise_sigma = 0.02;
  (void)map_onto_crossbars(net, cfg);
  for (nn::Module* layer : nn::collect_weight_layers(net)) {
    EXPECT_TRUE(layer->has_post_hook());
  }
}

TEST(Mapper, PeripheralHooksSurviveAttackGradientScope) {
  auto net = make_net(9);
  XbarMapConfig cfg = quiet_config();
  cfg.adc_bits = 4;  // coarse: easy to detect
  (void)map_onto_crossbars(net, cfg);
  rhw::RandomEngine rng(10);
  const Tensor x = Tensor::rand_uniform({1, 3, 4, 4}, rng);
  const Tensor with_hooks = net.forward(x);
  nn::Module::HooksDisabledScope scope;  // ungated hooks must still run
  const Tensor in_scope = net.forward(x);
  for (int64_t i = 0; i < with_hooks.numel(); ++i) {
    ASSERT_EQ(with_hooks[i], in_scope[i]);
  }
}

TEST(Mapper, NoHooksWhenPeripheralsDisabled) {
  auto net = make_net(11);
  auto cfg = quiet_config();
  (void)map_onto_crossbars(net, cfg);
  for (nn::Module* layer : nn::collect_weight_layers(net)) {
    EXPECT_FALSE(layer->has_post_hook());
  }
}

TEST(Mapper, GradientNoiseHookInstalledAndStochastic) {
  auto net = make_net(13);
  XbarMapConfig cfg = quiet_config();
  cfg.grad_noise_scale = 0.5;
  (void)map_onto_crossbars(net, cfg);
  for (nn::Module* layer : nn::collect_weight_layers(net)) {
    EXPECT_TRUE(layer->has_backward_hook());
  }
  // Gradients through the mapped net vary read to read.
  rhw::RandomEngine rng(14);
  const Tensor x = Tensor::rand_uniform({1, 3, 4, 4}, rng);
  (void)net.forward(x);
  const Tensor g1 = net.backward(Tensor({1, 5}, 1.f));
  (void)net.forward(x);
  const Tensor g2 = net.backward(Tensor({1, 5}, 1.f));
  double diff = 0;
  for (int64_t i = 0; i < g1.numel(); ++i) diff += std::fabs(g1[i] - g2[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(Mapper, NoGradientHookWhenDisabled) {
  auto net = make_net(15);
  auto cfg = quiet_config();
  (void)map_onto_crossbars(net, cfg);
  for (nn::Module* layer : nn::collect_weight_layers(net)) {
    EXPECT_FALSE(layer->has_backward_hook());
  }
}

TEST(Mapper, BiggerCrossbarsMoreWeightError) {
  // Uniform weights keep every tile's programming scale identical, isolating
  // the array-size effect (mixed layer shapes change per-tile scales, which
  // can locally mask it).
  double prev = -1.0;
  for (int64_t n : {16, 32, 64}) {
    nn::Sequential net;
    auto& lin = net.emplace<nn::Linear>(64, 64, /*bias=*/false);
    lin.weight().value.fill(1.f);
    auto cfg = quiet_config();
    cfg.spec.rows = n;
    cfg.spec.cols = n;
    cfg.process_variation = false;
    const auto report = map_onto_crossbars(net, cfg);
    EXPECT_GT(report.mean_rel_weight_error, prev) << "n=" << n;
    prev = report.mean_rel_weight_error;
  }
}

}  // namespace
}  // namespace rhw::xbar
