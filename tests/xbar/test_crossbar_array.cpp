#include "xbar/crossbar_array.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace rhw::xbar {
namespace {

CrossbarSpec spec_n(int64_t n) {
  CrossbarSpec spec;
  spec.rows = n;
  spec.cols = n;
  return spec;
}

std::vector<float> random_weights(int64_t m, int64_t n, uint64_t seed) {
  rhw::RandomEngine rng(seed);
  std::vector<float> w(static_cast<size_t>(m * n));
  for (auto& v : w) v = rng.uniform(-1.f, 1.f);
  return w;
}

TEST(CrossbarArray, IdealModelReproducesWeights) {
  const auto spec = spec_n(8);
  const auto w = random_weights(5, 7, 1);
  CrossbarArray xbar(w.data(), 5, 7, 7, spec, CircuitModel::kIdeal, nullptr);
  const auto& eff = xbar.effective_weights();
  ASSERT_EQ(eff.size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) EXPECT_NEAR(eff[i], w[i], 1e-5f);
}

TEST(CrossbarArray, IdealMatvecMatchesGemv) {
  const auto spec = spec_n(8);
  const auto w = random_weights(6, 8, 2);
  CrossbarArray xbar(w.data(), 6, 8, 8, spec, CircuitModel::kIdeal, nullptr);
  rhw::RandomEngine rng(3);
  std::vector<float> x(8);
  for (auto& v : x) v = rng.uniform(-1.f, 1.f);
  const auto y = xbar.matvec(x);
  for (int64_t o = 0; o < 6; ++o) {
    double expected = 0;
    for (int64_t i = 0; i < 8; ++i) {
      expected += w[static_cast<size_t>(o * 8 + i)] * x[static_cast<size_t>(i)];
    }
    EXPECT_NEAR(y[static_cast<size_t>(o)], expected, 1e-4f);
  }
}

TEST(CrossbarArray, FastApproxDistortsWeights) {
  const auto spec = spec_n(16);
  const auto w = random_weights(16, 16, 4);
  CrossbarArray ideal(w.data(), 16, 16, 16, spec, CircuitModel::kIdeal,
                      nullptr);
  CrossbarArray non(w.data(), 16, 16, 16, spec, CircuitModel::kFastApprox,
                    nullptr);
  double delta = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    delta += std::fabs(ideal.effective_weights()[i] -
                       non.effective_weights()[i]);
  }
  EXPECT_GT(delta, 0.0);
}

TEST(CrossbarArray, ExactAndFastAgreeLoosely) {
  const auto spec = spec_n(8);
  const auto w = random_weights(8, 8, 5);
  CrossbarArray fast(w.data(), 8, 8, 8, spec, CircuitModel::kFastApprox,
                     nullptr);
  CrossbarArray exact(w.data(), 8, 8, 8, spec, CircuitModel::kExactMna,
                      nullptr);
  double acc = 0;
  float wmax = 0.f;
  for (float v : w) wmax = std::max(wmax, std::fabs(v));
  for (size_t i = 0; i < w.size(); ++i) {
    acc += std::fabs(fast.effective_weights()[i] -
                     exact.effective_weights()[i]) / wmax;
  }
  EXPECT_LT(acc / static_cast<double>(w.size()), 0.08);
}

TEST(CrossbarArray, VariationIsDeterministicPerSeed) {
  const auto spec = spec_n(8);
  const auto w = random_weights(8, 8, 6);
  rhw::RandomEngine rng1(77), rng2(77);
  CrossbarArray a(w.data(), 8, 8, 8, spec, CircuitModel::kFastApprox, &rng1);
  CrossbarArray b(w.data(), 8, 8, 8, spec, CircuitModel::kFastApprox, &rng2);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(a.effective_weights()[i], b.effective_weights()[i]);
  }
}

TEST(CrossbarArray, BiggerTileMoreDistortion) {
  // Effective-weight deviation grows with crossbar size for the same weight
  // content (the paper's size-robustness link).
  double prev = -1.0;
  for (int64_t n : {8, 16, 32}) {
    const auto spec = spec_n(n);
    std::vector<float> w(static_cast<size_t>(n * n), 1.f);
    CrossbarArray xbar(w.data(), n, n, n, spec, CircuitModel::kFastApprox,
                       nullptr);
    double acc = 0;
    for (float eff : xbar.effective_weights()) acc += std::fabs(eff - 1.f);
    const double mean_dev = acc / static_cast<double>(n * n);
    EXPECT_GT(mean_dev, prev) << "n=" << n;
    prev = mean_dev;
  }
}

TEST(CrossbarArray, MatvecRejectsBadSize) {
  const auto spec = spec_n(4);
  const auto w = random_weights(4, 4, 7);
  CrossbarArray xbar(w.data(), 4, 4, 4, spec, CircuitModel::kIdeal, nullptr);
  EXPECT_THROW(xbar.matvec(std::vector<float>(3)), std::invalid_argument);
}

TEST(CrossbarArray, PartialTileDimensions) {
  const auto spec = spec_n(8);
  const auto w = random_weights(3, 5, 8);
  CrossbarArray xbar(w.data(), 3, 5, 5, spec, CircuitModel::kIdeal, nullptr);
  EXPECT_EQ(xbar.out_m(), 3);
  EXPECT_EQ(xbar.in_n(), 5);
  EXPECT_EQ(xbar.effective_weights().size(), 15u);
}

}  // namespace
}  // namespace rhw::xbar
