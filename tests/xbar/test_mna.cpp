#include "xbar/mna_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace rhw::xbar {
namespace {

CrossbarSpec spec_n(int64_t n) {
  CrossbarSpec spec;
  spec.rows = n;
  spec.cols = n;
  return spec;
}

TEST(Mna, OneByOneMatchesHandAnalysis) {
  // Single device G with driver and sense resistances in series:
  // I = V / (Rd + 1/G + Rs).
  auto spec = spec_n(1);
  spec.r_wire_row = 0;
  spec.r_wire_col = 0;
  const double g_dev = 1.0 / 50e3;
  MnaSolver solver({g_dev}, spec);
  const auto currents = solver.solve({1.0});
  const double expected = 1.0 / (spec.r_driver + 50e3 + spec.r_sense);
  EXPECT_NEAR(currents[0], expected, expected * 1e-9);
}

TEST(Mna, ZeroParasiticsRecoverIdealDotProduct) {
  auto spec = spec_n(3);
  spec.r_driver = spec.r_wire_row = spec.r_wire_col = spec.r_sense = 0.0;
  rhw::RandomEngine rng(1);
  std::vector<double> g(9);
  for (auto& v : g) v = 1e-5 + 4e-5 * rng.next_double();
  MnaSolver solver(g, spec);
  const std::vector<double> v_in{0.3, -0.7, 1.0};
  const auto currents = solver.solve(v_in);
  for (int64_t j = 0; j < 3; ++j) {
    double ideal = 0;
    for (int64_t i = 0; i < 3; ++i) {
      ideal += g[static_cast<size_t>(i * 3 + j)] * v_in[static_cast<size_t>(i)];
    }
    EXPECT_NEAR(currents[static_cast<size_t>(j)], ideal,
                std::fabs(ideal) * 1e-5 + 1e-12);
  }
}

TEST(Mna, LinearityInInputs) {
  const auto spec = spec_n(4);
  rhw::RandomEngine rng(2);
  std::vector<double> g(16);
  for (auto& v : g) {
    v = spec.g_min() + (spec.g_max() - spec.g_min()) * rng.next_double();
  }
  MnaSolver solver(g, spec);
  const std::vector<double> a{1.0, 0.2, -0.4, 0.8};
  const std::vector<double> b{-0.3, 0.9, 0.5, -1.0};
  std::vector<double> sum(4);
  for (int i = 0; i < 4; ++i) sum[i] = 2.0 * a[i] + 0.5 * b[i];
  const auto ia = solver.solve(a);
  const auto ib = solver.solve(b);
  const auto is = solver.solve(sum);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(is[j], 2.0 * ia[j] + 0.5 * ib[j],
                std::fabs(is[j]) * 1e-8 + 1e-15);
  }
}

TEST(Mna, EffectiveConductanceReproducesSolve) {
  const auto spec = spec_n(5);
  rhw::RandomEngine rng(3);
  std::vector<double> g(25);
  for (auto& v : g) {
    v = spec.g_min() + (spec.g_max() - spec.g_min()) * rng.next_double();
  }
  MnaSolver solver(g, spec);
  const auto eff = solver.effective_conductance();
  std::vector<double> v_in(5);
  for (auto& v : v_in) v = rng.next_double() * 2.0 - 1.0;
  const auto direct = solver.solve(v_in);
  for (int64_t j = 0; j < 5; ++j) {
    double via_eff = 0;
    for (int64_t i = 0; i < 5; ++i) {
      via_eff += eff[static_cast<size_t>(i * 5 + j)] *
                 v_in[static_cast<size_t>(i)];
    }
    EXPECT_NEAR(direct[static_cast<size_t>(j)], via_eff,
                std::fabs(via_eff) * 1e-8 + 1e-15);
  }
}

TEST(Mna, ParasiticsReduceOutputCurrent) {
  const auto ideal_spec = [] {
    auto s = spec_n(4);
    s.r_driver = s.r_wire_row = s.r_wire_col = s.r_sense = 0.0;
    return s;
  }();
  const auto real_spec = spec_n(4);
  std::vector<double> g(16, real_spec.g_max());
  MnaSolver ideal(g, ideal_spec);
  MnaSolver real(g, real_spec);
  const std::vector<double> v_in(4, 1.0);
  const auto ii = ideal.solve(v_in);
  const auto ir = real.solve(v_in);
  for (int j = 0; j < 4; ++j) EXPECT_LT(ir[j], ii[j]);
}

TEST(Mna, FarColumnsSeeMoreRowWireDrop) {
  auto spec = spec_n(6);
  spec.r_wire_row = 200.0;  // exaggerate to make the gradient obvious
  std::vector<double> g(36, spec.g_max());
  MnaSolver solver(g, spec);
  const auto currents = solver.solve(std::vector<double>(6, 1.0));
  for (int j = 1; j < 6; ++j) {
    EXPECT_LT(currents[static_cast<size_t>(j)],
              currents[static_cast<size_t>(j - 1)])
        << "col " << j;
  }
}

TEST(Mna, RejectsBadSizes) {
  const auto spec = spec_n(3);
  EXPECT_THROW(MnaSolver(std::vector<double>(8), spec),
               std::invalid_argument);
  MnaSolver solver(std::vector<double>(9, 1e-5), spec);
  EXPECT_THROW(solver.solve({1.0}), std::invalid_argument);
}

TEST(Mna, SuperpositionAcrossRows) {
  // Current response to each row is independent (linearity), so solving with
  // basis vectors and summing equals solving with all-ones.
  const auto spec = spec_n(4);
  rhw::RandomEngine rng(5);
  std::vector<double> g(16);
  for (auto& v : g) {
    v = spec.g_min() + (spec.g_max() - spec.g_min()) * rng.next_double();
  }
  MnaSolver solver(g, spec);
  std::vector<double> summed(4, 0.0);
  for (int i = 0; i < 4; ++i) {
    std::vector<double> e(4, 0.0);
    e[static_cast<size_t>(i)] = 1.0;
    const auto c = solver.solve(e);
    for (int j = 0; j < 4; ++j) summed[static_cast<size_t>(j)] += c[j];
  }
  const auto all = solver.solve(std::vector<double>(4, 1.0));
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(all[j], summed[j], 1e-12);
}

}  // namespace
}  // namespace rhw::xbar
