#include "xbar/energy_model.hpp"

#include <gtest/gtest.h>

namespace rhw::xbar {
namespace {

CrossbarSpec spec_n(int64_t n) {
  CrossbarSpec spec;
  spec.rows = n;
  spec.cols = n;
  return spec;
}

TEST(XbarEnergy, DeviceEnergyPositiveAndScalesWithConductance) {
  XbarEnergyModel m;
  auto hi_g = spec_n(32);   // r_min 20k
  auto lo_g = spec_n(32);
  lo_g.r_min = 40e3;
  lo_g.r_max = 400e3;
  EXPECT_GT(m.device_read_energy_fj(hi_g), 0.0);
  EXPECT_GT(m.device_read_energy_fj(hi_g), m.device_read_energy_fj(lo_g));
}

TEST(XbarEnergy, TileEnergyGrowsWithSize) {
  XbarEnergyModel m;
  double prev = 0.0;
  for (int64_t n : {16, 32, 64}) {
    const double e = m.tile_mvm_energy_fj(spec_n(n), 6);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(XbarEnergy, AdcBitsDominateAtHighPrecision) {
  XbarEnergyModel m;
  const auto spec = spec_n(32);
  const double e6 = m.tile_mvm_energy_fj(spec, 6);
  const double e8 = m.tile_mvm_energy_fj(spec, 8);
  // Two extra bits: ADC term grows 16x.
  EXPECT_GT(e8, e6 * 2.0);
}

TEST(XbarEnergy, PerWeightEnergyFavorsLargerTiles) {
  // The ADC/DAC overhead amortizes over more devices in a bigger tile — the
  // efficiency argument for large crossbars that motivates tolerating their
  // larger non-idealities.
  XbarEnergyModel m;
  const auto small = spec_n(16);
  const auto large = spec_n(64);
  const double per_w_small =
      m.tile_mvm_energy_fj(small, 6) / static_cast<double>(16 * 16);
  const double per_w_large =
      m.tile_mvm_energy_fj(large, 6) / static_cast<double>(64 * 64);
  EXPECT_LT(per_w_large, per_w_small);
}

TEST(XbarEnergy, AreaGrowsWithSizeAndSharingHelps) {
  XbarEnergyModel m;
  const auto spec = spec_n(32);
  EXPECT_GT(m.tile_area_um2(spec_n(64)), m.tile_area_um2(spec));
  EXPECT_LT(m.tile_area_um2(spec, /*column_sharing=*/16),
            m.tile_area_um2(spec, /*column_sharing=*/4));
}

TEST(XbarEnergy, ModelEnergyScalesWithTileCount) {
  XbarEnergyModel m;
  const auto spec = spec_n(32);
  const double one = m.model_mvm_energy_nj(1, spec, 6);
  const double ten = m.model_mvm_energy_nj(10, spec, 6);
  EXPECT_NEAR(ten, 10.0 * one, 1e-9);
}

}  // namespace
}  // namespace rhw::xbar
