#include "quant/quantizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace rhw::quant {
namespace {

TEST(Quantizer, SymmetricParamsScale) {
  Tensor t({3}, std::vector<float>{-2.f, 1.f, 0.5f});
  const auto p = compute_symmetric(t, 8);
  EXPECT_EQ(p.qmax(), 127);
  EXPECT_EQ(p.qmin(), -128);
  EXPECT_NEAR(p.scale, 2.f / 127.f, 1e-7f);
}

TEST(Quantizer, UnsignedParamsScale) {
  Tensor t({3}, std::vector<float>{0.f, 1.f, 3.f});
  const auto p = compute_unsigned(t, 8);
  EXPECT_EQ(p.qmax(), 255u);
  EXPECT_NEAR(p.scale, 3.f / 255.f, 1e-7f);
}

TEST(Quantizer, ZeroTensorHasUnitScale) {
  Tensor t({4});
  EXPECT_EQ(compute_symmetric(t, 8).scale, 1.f);
  EXPECT_EQ(compute_unsigned(t, 8).scale, 1.f);
}

TEST(Quantizer, BadBitsThrow) {
  Tensor t({1}, 1.f);
  EXPECT_THROW(compute_symmetric(t, 1), std::invalid_argument);
  EXPECT_THROW(compute_symmetric(t, 17), std::invalid_argument);
  EXPECT_THROW(compute_unsigned(t, 0), std::invalid_argument);
}

class FakeQuantErrorBound : public ::testing::TestWithParam<int> {};

TEST_P(FakeQuantErrorBound, SymmetricWithinHalfStep) {
  const int bits = GetParam();
  rhw::RandomEngine rng(static_cast<uint64_t>(bits));
  Tensor t = Tensor::randn({1000}, rng);
  const auto p = compute_symmetric(t, bits);
  Tensor q = t;
  fake_quantize_symmetric_(q, bits);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(q[i] - t[i]), 0.5f * p.scale + 1e-6f);
  }
}

TEST_P(FakeQuantErrorBound, UnsignedWithinHalfStep) {
  const int bits = GetParam();
  rhw::RandomEngine rng(static_cast<uint64_t>(bits) + 100);
  Tensor t = Tensor::rand_uniform({1000}, rng, 0.f, 5.f);
  const auto p = compute_unsigned(t, bits);
  Tensor q = t;
  fake_quantize_unsigned_(q, bits);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(q[i] - t[i]), 0.5f * p.scale + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, FakeQuantErrorBound,
                         ::testing::Values(2, 4, 6, 8, 12));

TEST(Quantizer, FakeQuantIdempotent) {
  rhw::RandomEngine rng(5);
  Tensor t = Tensor::randn({256}, rng);
  fake_quantize_symmetric_(t, 4);
  Tensor again = t;
  fake_quantize_symmetric_(again, 4);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_NEAR(again[i], t[i], 1e-6f);
}

TEST(Quantizer, FewerBitsMoreError) {
  rhw::RandomEngine rng(6);
  const Tensor t = Tensor::randn({4096}, rng);
  auto err = [&](int bits) {
    Tensor q = t;
    fake_quantize_symmetric_(q, bits);
    q.sub_(t);
    double acc = 0;
    for (int64_t i = 0; i < q.numel(); ++i) acc += std::fabs(q[i]);
    return acc;
  };
  EXPECT_GT(err(2), err(4));
  EXPECT_GT(err(4), err(8));
}

TEST(Quantizer, UnsignedCodesRoundTrip) {
  rhw::RandomEngine rng(7);
  Tensor t = Tensor::rand_uniform({128}, rng, 0.f, 2.f);
  const auto p = compute_unsigned(t, 8);
  const auto codes = to_codes_unsigned(t, p);
  Tensor back(t.shape());
  from_codes_unsigned(codes, p, back);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_NEAR(back[i], t[i], 0.5f * p.scale + 1e-6f);
  }
}

TEST(Quantizer, SignedCodesRoundTrip) {
  rhw::RandomEngine rng(8);
  Tensor t = Tensor::randn({128}, rng);
  const auto p = compute_symmetric(t, 8);
  const auto codes = to_codes_signed(t, p);
  Tensor back(t.shape());
  from_codes_signed(codes, p, back);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_NEAR(back[i], t[i], 0.5f * p.scale + 1e-6f);
  }
}

TEST(Quantizer, CodesSizeMismatchThrows) {
  Tensor t({4});
  UnsignedParams p;
  std::vector<uint8_t> codes(3);
  EXPECT_THROW(from_codes_unsigned(codes, p, t), std::invalid_argument);
}

TEST(Quantizer, CodesClampOutOfRange) {
  // Values beyond the scale's range must clamp, not wrap.
  Tensor t({2}, std::vector<float>{10.f, -10.f});
  SymmetricParams p;
  p.scale = 0.05f;
  p.bits = 8;
  const auto codes = to_codes_signed(t, p);
  EXPECT_EQ(codes[0], 127);
  EXPECT_EQ(codes[1], -128);
}

}  // namespace
}  // namespace rhw::quant
