#include "quant/pixel_discretizer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/rng.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace rhw::quant {
namespace {

TEST(PixelDiscretizer, ProducesAtMostLevels) {
  PixelDiscretizer disc;
  disc.bits = 4;
  rhw::RandomEngine rng(1);
  const Tensor x = Tensor::rand_uniform({10000}, rng);
  const Tensor q = disc.apply(x);
  std::set<float> values(q.data(), q.data() + q.numel());
  EXPECT_LE(values.size(), 16u);
  EXPECT_GE(values.size(), 14u);  // dense sampling should hit most levels
}

TEST(PixelDiscretizer, EndpointsPreserved) {
  PixelDiscretizer disc;
  disc.bits = 4;
  const Tensor x({2}, std::vector<float>{0.f, 1.f});
  const Tensor q = disc.apply(x);
  EXPECT_FLOAT_EQ(q[0], 0.f);
  EXPECT_FLOAT_EQ(q[1], 1.f);
}

TEST(PixelDiscretizer, ErrorBoundedByHalfStep) {
  PixelDiscretizer disc;
  disc.bits = 2;  // 4 levels, step 1/3
  rhw::RandomEngine rng(2);
  const Tensor x = Tensor::rand_uniform({1000}, rng);
  const Tensor q = disc.apply(x);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::fabs(q[i] - x[i]), 0.5f / 3.f + 1e-6f);
  }
}

TEST(PixelDiscretizer, MasksSmallPerturbations) {
  // Perturbations below half a quantization step vanish entirely — the
  // mechanism behind discretization as a defense [6].
  PixelDiscretizer disc;
  disc.bits = 4;
  const float step = 1.f / 15.f;
  Tensor x({1}, std::vector<float>{7.f * step});  // exactly on the grid
  Tensor perturbed({1}, std::vector<float>{7.f * step + 0.4f * step});
  EXPECT_FLOAT_EQ(disc.apply(x)[0], disc.apply(perturbed)[0]);
}

TEST(DiscretizedModel, ForwardQuantizesInput) {
  nn::Sequential inner;
  auto& lin = inner.emplace<nn::Linear>(1, 1, /*bias=*/false);
  lin.weight().value.fill(1.f);
  PixelDiscretizer disc;
  disc.bits = 1;  // levels {0, 1}
  DiscretizedModel model(inner, disc);
  EXPECT_FLOAT_EQ(model.forward(Tensor({1, 1}, 0.4f))[0], 0.f);
  EXPECT_FLOAT_EQ(model.forward(Tensor({1, 1}, 0.6f))[0], 1.f);
}

TEST(DiscretizedModel, BackwardIsStraightThrough) {
  nn::Sequential inner;
  auto& lin = inner.emplace<nn::Linear>(1, 1, /*bias=*/false);
  lin.weight().value.fill(3.f);
  PixelDiscretizer disc;
  DiscretizedModel model(inner, disc);
  (void)model.forward(Tensor({1, 1}, 0.5f));
  const Tensor g = model.backward(Tensor({1, 1}, 1.f));
  EXPECT_FLOAT_EQ(g[0], 3.f);  // d(3x)/dx, discretizer transparent
}

TEST(DiscretizedModel, SharesParametersWithInner) {
  nn::Sequential inner;
  inner.emplace<nn::Linear>(2, 2);
  PixelDiscretizer disc;
  DiscretizedModel model(inner, disc);
  EXPECT_EQ(model.parameters().size(), inner.parameters().size());
}

}  // namespace
}  // namespace rhw::quant
