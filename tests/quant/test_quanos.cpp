#include "quant/quanos.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"

namespace rhw::quant {
namespace {

struct QuanosFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 40;
    dcfg.test_per_class = 15;
    dcfg.image_size = 16;
    dcfg.noise_std = 0.12f;
    dcfg.nuisance_amp = 0.15f;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));

    models::VggConfig mcfg;
    mcfg.depth = 8;
    mcfg.num_classes = 4;
    mcfg.in_size = 16;
    mcfg.width_mult = 0.125f;
    model_ = new models::Model(models::make_vgg(mcfg));
    models::TrainConfig tcfg;
    tcfg.epochs = 2;
    tcfg.batch_size = 40;
    models::train_model(*model_, *data_, tcfg);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }
  static data::SynthCifar* data_;
  static models::Model* model_;
};

data::SynthCifar* QuanosFixture::data_ = nullptr;
models::Model* QuanosFixture::model_ = nullptr;

models::Model clone_model(models::Model& src) {
  models::Model copy = models::build_model(src.name, src.num_classes, 0.125f,
                                           16);
  nn::load_state_dict(*copy.net, nn::state_dict(*src.net));
  copy.net->set_training(false);
  return copy;
}

TEST_F(QuanosFixture, ReportsOneEntryPerWeightLayer) {
  auto copy = clone_model(*model_);
  QuanosConfig cfg;
  cfg.sample_count = 32;
  const auto report = apply_quanos(*copy.net, data_->test, cfg);
  const auto layers = nn::collect_weight_layers(*copy.net);
  EXPECT_EQ(report.ans.size(), layers.size());
  EXPECT_EQ(report.bits.size(), layers.size());
}

TEST_F(QuanosFixture, AnsValuesArePositive) {
  auto copy = clone_model(*model_);
  QuanosConfig cfg;
  cfg.sample_count = 32;
  const auto report = apply_quanos(*copy.net, data_->test, cfg);
  for (double a : report.ans) EXPECT_GT(a, 0.0);
  EXPECT_GT(report.ans_median, 0.0);
}

TEST_F(QuanosFixture, BitAssignmentFollowsMedianRule) {
  auto copy = clone_model(*model_);
  QuanosConfig cfg;
  cfg.sample_count = 32;
  const auto report = apply_quanos(*copy.net, data_->test, cfg);
  int low = 0, high = 0;
  for (size_t l = 0; l < report.ans.size(); ++l) {
    if (report.ans[l] >= report.ans_median) {
      EXPECT_EQ(report.bits[l], cfg.low_bits);
      ++low;
    } else {
      EXPECT_EQ(report.bits[l], cfg.high_bits);
      ++high;
    }
  }
  EXPECT_GT(low, 0);
  EXPECT_GT(high, 0);
}

TEST_F(QuanosFixture, InstallsActivationHooks) {
  auto copy = clone_model(*model_);
  QuanosConfig cfg;
  cfg.sample_count = 16;
  (void)apply_quanos(*copy.net, data_->test, cfg);
  for (nn::Module* layer : nn::collect_weight_layers(*copy.net)) {
    EXPECT_TRUE(layer->has_post_hook());
  }
}

TEST_F(QuanosFixture, QuantizedModelRetainsMostAccuracy) {
  auto copy = clone_model(*model_);
  const double before = models::evaluate_accuracy(*copy.net, data_->test);
  QuanosConfig cfg;
  cfg.sample_count = 32;
  (void)apply_quanos(*copy.net, data_->test, cfg);
  const double after = models::evaluate_accuracy(*copy.net, data_->test);
  EXPECT_GT(after, before - 25.0 / 100.0 * before - 0.1);  // lenient bound
}

TEST_F(QuanosFixture, WeightsActuallyQuantized) {
  auto copy = clone_model(*model_);
  QuanosConfig cfg;
  cfg.sample_count = 16;
  const auto report = apply_quanos(*copy.net, data_->test, cfg);
  const auto layers = nn::collect_weight_layers(*copy.net);
  for (size_t l = 0; l < layers.size(); ++l) {
    for (nn::Param* p : layers[l]->parameters()) {
      if (p->name != "weight") continue;
      // A b-bit symmetric grid has at most 2^b distinct values.
      std::vector<float> vals(p->value.data(),
                              p->value.data() + p->value.numel());
      std::sort(vals.begin(), vals.end());
      vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
      EXPECT_LE(vals.size(), (1u << report.bits[l]))
          << "layer " << l << " not quantized";
    }
  }
}

}  // namespace
}  // namespace rhw::quant
