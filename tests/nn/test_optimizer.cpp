#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"

namespace rhw::nn {
namespace {

TEST(Sgd, VanillaStepMovesAgainstGradient) {
  Param p("w", Tensor({1}, 1.f));
  p.grad.fill(2.f);
  SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.f;
  cfg.weight_decay = 0.f;
  SGD opt({&p}, cfg);
  opt.step();
  EXPECT_NEAR(p.value[0], 1.f - 0.1f * 2.f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p("w", Tensor({1}, 0.f));
  SgdConfig cfg;
  cfg.lr = 1.f;
  cfg.momentum = 0.5f;
  cfg.weight_decay = 0.f;
  SGD opt({&p}, cfg);
  p.grad.fill(1.f);
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(p.value[0], -1.f, 1e-6f);
  p.grad.fill(1.f);
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-6f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param p("w", Tensor({1}, 10.f));
  p.grad.fill(0.f);
  SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.f;
  cfg.weight_decay = 0.5f;
  SGD opt({&p}, cfg);
  opt.step();
  EXPECT_LT(p.value[0], 10.f);
  EXPECT_NEAR(p.value[0], 10.f - 0.1f * 0.5f * 10.f, 1e-5f);
}

TEST(Sgd, ZeroGradClears) {
  Param p("w", Tensor({3}, 1.f));
  p.grad.fill(5.f);
  SGD opt({&p}, {});
  opt.zero_grad();
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(p.grad[i], 0.f);
}

TEST(Sgd, LearningRateSetter) {
  SGD opt({}, {});
  opt.set_lr(0.123f);
  EXPECT_FLOAT_EQ(opt.lr(), 0.123f);
}

// End-to-end sanity: a linear model learns a separable 2-class problem.
TEST(Sgd, TrainsLinearClassifier) {
  RandomEngine rng(7);
  Linear model(2, 2);
  for (auto& v : model.weight().value.span()) v = rng.gaussian(0.f, 0.1f);

  SgdConfig cfg;
  cfg.lr = 0.5f;
  cfg.momentum = 0.9f;
  cfg.weight_decay = 0.f;
  SGD opt(model.parameters(), cfg);
  SoftmaxCrossEntropy loss;

  // Class 0 around (-1,-1), class 1 around (+1,+1).
  const int64_t n = 64;
  Tensor x({n, 2});
  std::vector<int64_t> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t cls = i % 2;
    y[static_cast<size_t>(i)] = cls;
    const float center = cls == 0 ? -1.f : 1.f;
    x.at(i, 0) = center + 0.3f * rng.gaussian();
    x.at(i, 1) = center + 0.3f * rng.gaussian();
  }

  float first_loss = 0.f, last_loss = 0.f;
  for (int epoch = 0; epoch < 50; ++epoch) {
    opt.zero_grad();
    const Tensor logits = model.forward(x);
    const float l = loss.forward(logits, y);
    if (epoch == 0) first_loss = l;
    last_loss = l;
    model.backward(loss.backward());
    opt.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.2f);
  EXPECT_GT(accuracy(model.forward(x), y), 0.95);
}

}  // namespace
}  // namespace rhw::nn
