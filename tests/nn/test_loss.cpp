#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace rhw::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  RandomEngine rng(1);
  const Tensor logits = Tensor::randn({5, 7}, rng, 0.f, 3.f);
  const Tensor p = softmax_rows(logits);
  for (int64_t i = 0; i < 5; ++i) {
    double s = 0;
    for (int64_t j = 0; j < 7; ++j) {
      s += p.at(i, j);
      EXPECT_GT(p.at(i, j), 0.f);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, LargeLogitsStayFinite) {
  const Tensor logits({1, 3}, std::vector<float>{1000.f, 999.f, -1000.f});
  const Tensor p = softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[0], p[1]);
  EXPECT_NEAR(p[2], 0.f, 1e-6f);
}

TEST(CrossEntropy, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy loss;
  const Tensor logits({2, 4});  // zeros -> uniform
  const float l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.f), 1e-5f);
}

TEST(CrossEntropy, ConfidentCorrectIsNearZero) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  logits.at(0, 1) = 50.f;
  EXPECT_NEAR(loss.forward(logits, {1}), 0.f, 1e-5f);
}

TEST(CrossEntropy, ConfidentWrongIsLarge) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  logits.at(0, 0) = 20.f;
  EXPECT_GT(loss.forward(logits, {2}), 10.f);
}

TEST(CrossEntropy, GradientIsProbsMinusOneHotOverN) {
  SoftmaxCrossEntropy loss;
  RandomEngine rng(2);
  const Tensor logits = Tensor::randn({3, 4}, rng);
  (void)loss.forward(logits, {1, 0, 2});
  const Tensor grad = loss.backward();
  const Tensor& p = loss.probs();
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      const float onehot = (j == std::vector<int64_t>{1, 0, 2}[i]) ? 1.f : 0.f;
      EXPECT_NEAR(grad.at(i, j), (p.at(i, j) - onehot) / 3.f, 1e-6f);
    }
  }
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  RandomEngine rng(3);
  Tensor logits = Tensor::randn({2, 5}, rng);
  const std::vector<int64_t> labels{4, 2};
  (void)loss.forward(logits, labels);
  const Tensor grad = loss.backward();
  const float h = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + h;
    SoftmaxCrossEntropy up;
    const float lu = up.forward(logits, labels);
    logits[i] = orig - h;
    SoftmaxCrossEntropy down;
    const float ld = down.forward(logits, labels);
    logits[i] = orig;
    EXPECT_NEAR(grad[i], (lu - ld) / (2 * h), 1e-3f);
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.forward(Tensor({1, 3}), {5}), std::invalid_argument);
  EXPECT_THROW(loss.forward(Tensor({2, 3}), {0}), std::invalid_argument);
}

TEST(Accuracy, CountsArgmaxMatches) {
  Tensor logits({3, 2}, std::vector<float>{1, 0, 0, 1, 1, 0});
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 0}), 1.0);
  EXPECT_NEAR(accuracy(logits, {0, 0, 0}), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0, 1}), 0.0);
}

}  // namespace
}  // namespace rhw::nn
