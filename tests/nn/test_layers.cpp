#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace rhw::nn {
namespace {

TEST(Linear, KnownValues) {
  Linear lin(2, 2);
  lin.weight().value = Tensor({2, 2}, std::vector<float>{1, 2, 3, 4});
  lin.bias().value = Tensor({2}, std::vector<float>{0.5f, -0.5f});
  const Tensor x({1, 2}, std::vector<float>{1, 1});
  const Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.5f);   // 1+2+0.5
  EXPECT_FLOAT_EQ(y.at(0, 1), 6.5f);   // 3+4-0.5
}

TEST(Linear, NoBias) {
  Linear lin(3, 1, /*bias=*/false);
  EXPECT_EQ(lin.parameters().size(), 1u);
  lin.weight().value.fill(1.f);
  const Tensor x({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 6.f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 15.f);
}

TEST(Linear, RejectsBadInput) {
  Linear lin(3, 2);
  EXPECT_THROW(lin.forward(Tensor({1, 4})), std::invalid_argument);
  EXPECT_THROW(lin.forward(Tensor({1, 2, 3, 4})), std::invalid_argument);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Conv2d conv(1, 1, 3, 1, 1, /*bias=*/false);
  conv.weight().value.fill(0.f);
  conv.weight().value[4] = 1.f;  // center tap of the 3x3 kernel
  RandomEngine rng(2);
  const Tensor x = Tensor::randn({2, 1, 5, 5}, rng);
  const Tensor y = conv.forward(x);
  ASSERT_TRUE(y.same_shape(x));
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, SumKernelCountsNeighborhood) {
  Conv2d conv(1, 1, 3, 1, 1, /*bias=*/false);
  conv.weight().value.fill(1.f);
  const Tensor x({1, 1, 3, 3}, 1.f);
  const Tensor y = conv.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 9.f);  // center sees all 9
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.f);  // corner sees 4
}

TEST(Conv2d, BiasBroadcast) {
  Conv2d conv(1, 2, 3, 1, 1, /*bias=*/true);
  conv.weight().value.fill(0.f);
  conv.bias().value = Tensor({2}, std::vector<float>{1.f, -2.f});
  const Tensor y = conv.forward(Tensor({1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 2), 1.f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 2, 2), -2.f);
}

TEST(Conv2d, StrideHalvesResolution) {
  Conv2d conv(3, 8, 3, 2, 1);
  const Tensor y = conv.forward(Tensor({1, 3, 8, 8}));
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_EQ(y.dim(3), 4);
  EXPECT_EQ(y.dim(1), 8);
}

TEST(Conv2d, WeightShapeIsFlattened) {
  Conv2d conv(4, 6, 3);
  EXPECT_EQ(conv.weight().value.shape(), (Shape{6, 36}));
  EXPECT_TRUE(conv.is_weight_layer());
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  const Tensor x({4}, std::vector<float>{-1, 0, 2, -3});
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.f);
  EXPECT_FLOAT_EQ(y[1], 0.f);
  EXPECT_FLOAT_EQ(y[2], 2.f);
  EXPECT_FLOAT_EQ(y[3], 0.f);
}

TEST(Flatten, RoundTripShapes) {
  Flatten flat;
  const Tensor x({2, 3, 4, 4});
  const Tensor y = flat.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  const Tensor back = flat.backward(Tensor({2, 48}));
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(MaxPool2d, PicksMaxima) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 4, 4});
  for (int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 7.f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 0), 13.f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 15.f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 9, 3, 4});
  (void)pool.forward(x);
  const Tensor g = pool.backward(Tensor({1, 1, 1, 1}, 5.f));
  EXPECT_FLOAT_EQ(g[0], 0.f);
  EXPECT_FLOAT_EQ(g[1], 5.f);
  EXPECT_FLOAT_EQ(g[2], 0.f);
}

TEST(AvgPool2d, GlobalAverage) {
  AvgPool2d pool(0);
  Tensor x({1, 2, 2, 2});
  for (int64_t i = 0; i < 4; ++i) x[i] = static_cast<float>(i);  // chan 0
  for (int64_t i = 4; i < 8; ++i) x[i] = 10.f;                   // chan 1
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.shape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 1.5f);
  EXPECT_FLOAT_EQ(y[1], 10.f);
}

TEST(AvgPool2d, WindowedAverage) {
  AvgPool2d pool(2, 2);
  Tensor x({1, 1, 4, 4}, 2.f);
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.f);
}

TEST(BatchNorm2d, NormalizesBatchInTraining) {
  BatchNorm2d bn(1);
  bn.set_training(true);
  RandomEngine rng(5);
  const Tensor x = Tensor::randn({8, 1, 4, 4}, rng, 3.f, 2.f);
  const Tensor y = bn.forward(x);
  EXPECT_NEAR(y.mean(), 0.f, 1e-4f);
  double var = 0;
  for (int64_t i = 0; i < y.numel(); ++i) var += y[i] * y[i];
  var /= static_cast<double>(y.numel());
  EXPECT_NEAR(var, 1.0, 1e-2);
}

TEST(BatchNorm2d, RunningStatsConvergeAndDriveEval) {
  BatchNorm2d bn(1, 1e-5f, 0.5f);
  bn.set_training(true);
  RandomEngine rng(6);
  for (int i = 0; i < 30; ++i) {
    (void)bn.forward(Tensor::randn({16, 1, 4, 4}, rng, 2.f, 1.f));
  }
  EXPECT_NEAR(bn.running_mean()[0], 2.f, 0.2f);
  EXPECT_NEAR(bn.running_var()[0], 1.f, 0.3f);
  bn.set_training(false);
  // In eval, an input equal to the running mean maps near zero.
  Tensor probe({1, 1, 1, 1}, bn.running_mean()[0]);
  EXPECT_NEAR(bn.forward(probe)[0], 0.f, 1e-3f);
}

TEST(BatchNorm2d, GammaBetaAffine) {
  BatchNorm2d bn(1);
  bn.set_training(false);
  bn.gamma().value.fill(3.f);
  bn.beta().value.fill(1.f);
  // running stats at default (mean 0, var 1): y = 3x + 1
  Tensor x({1, 1, 1, 2}, std::vector<float>{0.f, 1.f});
  const Tensor y = bn.forward(x);
  EXPECT_NEAR(y[0], 1.f, 1e-4f);
  EXPECT_NEAR(y[1], 4.f, 1e-4f);
}

TEST(BatchNorm2d, StatePersistsRunningBuffers) {
  BatchNorm2d bn(2);
  const auto state = bn.named_state();
  ASSERT_EQ(state.size(), 4u);  // gamma, beta, running_mean, running_var
}

}  // namespace
}  // namespace rhw::nn
