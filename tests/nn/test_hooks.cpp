// Post-forward hook semantics: gating, ordering, and the attack-scope rule.
#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace rhw::nn {
namespace {

TEST(Hooks, HookMutatesForwardOutput) {
  ReLU relu;
  relu.set_post_hook([](Tensor& t) { t.add_scalar_(1.f); });
  const Tensor y = relu.forward(Tensor({2}, std::vector<float>{1.f, -1.f}));
  EXPECT_FLOAT_EQ(y[0], 2.f);
  EXPECT_FLOAT_EQ(y[1], 1.f);  // relu(-1)=0, +1
}

TEST(Hooks, ClearRemovesHook) {
  ReLU relu;
  relu.set_post_hook([](Tensor& t) { t.add_scalar_(1.f); });
  EXPECT_TRUE(relu.has_post_hook());
  relu.clear_post_hook();
  EXPECT_FALSE(relu.has_post_hook());
  const Tensor y = relu.forward(Tensor({1}, 3.f));
  EXPECT_FLOAT_EQ(y[0], 3.f);
}

TEST(Hooks, GatedHookSuppressedInDisabledScope) {
  ReLU relu;
  relu.set_post_hook([](Tensor& t) { t.add_scalar_(10.f); }, /*gated=*/true);
  {
    Module::HooksDisabledScope scope;
    EXPECT_FALSE(Module::hooks_enabled());
    const Tensor y = relu.forward(Tensor({1}, 1.f));
    EXPECT_FLOAT_EQ(y[0], 1.f);
  }
  EXPECT_TRUE(Module::hooks_enabled());
  const Tensor y = relu.forward(Tensor({1}, 1.f));
  EXPECT_FLOAT_EQ(y[0], 11.f);
}

TEST(Hooks, UngatedHookSurvivesDisabledScope) {
  // Hardware-path hooks (crossbar ADC/read-noise) must stay active while
  // attack gradients are computed.
  ReLU relu;
  relu.set_post_hook([](Tensor& t) { t.scale_(2.f); }, /*gated=*/false);
  Module::HooksDisabledScope scope;
  const Tensor y = relu.forward(Tensor({1}, 3.f));
  EXPECT_FLOAT_EQ(y[0], 6.f);
}

TEST(Hooks, DisabledScopeNests) {
  {
    Module::HooksDisabledScope outer;
    {
      Module::HooksDisabledScope inner;
      EXPECT_FALSE(Module::hooks_enabled());
    }
    EXPECT_FALSE(Module::hooks_enabled());  // restored to outer state
  }
  EXPECT_TRUE(Module::hooks_enabled());
}

TEST(Hooks, HooksApplyPerLayerInsideSequential) {
  Sequential net;
  auto& l1 = net.emplace<Linear>(1, 1, false);
  auto& l2 = net.emplace<Linear>(1, 1, false);
  l1.weight().value.fill(1.f);
  l2.weight().value.fill(1.f);
  l1.set_post_hook([](Tensor& t) { t.add_scalar_(5.f); });
  // x=1 -> l1: 1, hook: 6 -> l2: 6
  const Tensor y = net.forward(Tensor({1, 1}, 1.f));
  EXPECT_FLOAT_EQ(y[0], 6.f);
  l2.set_post_hook([](Tensor& t) { t.scale_(10.f); });
  EXPECT_FLOAT_EQ(net.forward(Tensor({1, 1}, 1.f))[0], 60.f);
}

TEST(Hooks, BackwardHookTransformsGradient) {
  Linear lin(1, 1, /*bias=*/false);
  lin.weight().value.fill(2.f);
  lin.set_backward_hook([](Tensor& g) { g.scale_(10.f); });
  (void)lin.forward(Tensor({1, 1}, 1.f));
  const Tensor gin = lin.backward(Tensor({1, 1}, 1.f));
  // dy/dx = W = 2, hook multiplies incoming grad by 10 first.
  EXPECT_FLOAT_EQ(gin[0], 20.f);
}

TEST(Hooks, GatedBackwardHookSuppressedInScope) {
  Linear lin(1, 1, /*bias=*/false);
  lin.weight().value.fill(2.f);
  lin.set_backward_hook([](Tensor& g) { g.scale_(10.f); }, /*gated=*/true);
  (void)lin.forward(Tensor({1, 1}, 1.f));
  Module::HooksDisabledScope scope;
  const Tensor gin = lin.backward(Tensor({1, 1}, 1.f));
  EXPECT_FLOAT_EQ(gin[0], 2.f);
}

TEST(Hooks, UngatedBackwardHookSurvivesScope) {
  Linear lin(1, 1, /*bias=*/false);
  lin.weight().value.fill(2.f);
  lin.set_backward_hook([](Tensor& g) { g.scale_(10.f); }, /*gated=*/false);
  (void)lin.forward(Tensor({1, 1}, 1.f));
  Module::HooksDisabledScope scope;
  const Tensor gin = lin.backward(Tensor({1, 1}, 1.f));
  EXPECT_FLOAT_EQ(gin[0], 20.f);
}

TEST(Hooks, ClearBackwardHook) {
  Linear lin(1, 1, /*bias=*/false);
  lin.set_backward_hook([](Tensor& g) { g.scale_(10.f); });
  EXPECT_TRUE(lin.has_backward_hook());
  lin.clear_backward_hook();
  EXPECT_FALSE(lin.has_backward_hook());
}

TEST(Hooks, ReplacingHookOverwrites) {
  ReLU relu;
  relu.set_post_hook([](Tensor& t) { t.add_scalar_(1.f); });
  relu.set_post_hook([](Tensor& t) { t.add_scalar_(2.f); });
  EXPECT_FLOAT_EQ(relu.forward(Tensor({1}, 0.f))[0], 2.f);
}

}  // namespace
}  // namespace rhw::nn
