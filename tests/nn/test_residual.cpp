#include "nn/residual.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "nn/init.hpp"

namespace rhw::nn {
namespace {

TEST(ResidualBlock, IdentityShortcutWhenShapesMatch) {
  ResidualBlock block(4, 4, 1);
  EXPECT_FALSE(block.has_projection());
  EXPECT_EQ(block.shortcut_tail(), nullptr);
  EXPECT_EQ(block.children().size(), 5u);
}

TEST(ResidualBlock, ProjectionOnStride) {
  ResidualBlock block(4, 4, 2);
  EXPECT_TRUE(block.has_projection());
  EXPECT_NE(block.shortcut_tail(), nullptr);
  EXPECT_EQ(block.children().size(), 7u);
}

TEST(ResidualBlock, ProjectionOnChannelChange) {
  ResidualBlock block(4, 8, 1);
  EXPECT_TRUE(block.has_projection());
}

TEST(ResidualBlock, OutputShape) {
  ResidualBlock block(3, 6, 2);
  RandomEngine rng(1);
  kaiming_init(block, rng);
  block.set_training(true);
  const Tensor y = block.forward(Tensor({2, 3, 8, 8}, 0.5f));
  EXPECT_EQ(y.shape(), (Shape{2, 6, 4, 4}));
}

TEST(ResidualBlock, OutputIsNonNegative) {
  ResidualBlock block(2, 2, 1);
  RandomEngine rng(2);
  kaiming_init(block, rng);
  block.set_training(true);
  const Tensor y = block.forward(Tensor::randn({2, 2, 4, 4}, rng));
  EXPECT_GE(y.min(), 0.f);  // final ReLU
}

TEST(ResidualBlock, ZeroWeightsPassShortcutThrough) {
  // With all conv weights zero and BN at defaults the main path emits the
  // (normalized) zero signal, so the output equals relu(shortcut) = relu(x).
  ResidualBlock block(2, 2, 1);
  for (Param* p : block.parameters()) {
    if (p->name == "weight") p->value.fill(0.f);
  }
  block.set_training(false);
  RandomEngine rng(3);
  const Tensor x = Tensor::randn({1, 2, 3, 3}, rng);
  const Tensor y = block.forward(x);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(y[i], std::max(0.f, x[i]));
  }
}

TEST(ResidualBlock, ParametersIncludeProjection) {
  ResidualBlock identity(4, 4, 1);
  ResidualBlock projected(4, 4, 2);
  EXPECT_GT(projected.parameters().size(), identity.parameters().size());
}

TEST(ResidualBlock, TrainingFlagReachesSubmodules) {
  ResidualBlock block(2, 4, 2);
  block.set_training(false);
  for (Module* child : block.children()) EXPECT_FALSE(child->training());
}

}  // namespace
}  // namespace rhw::nn
