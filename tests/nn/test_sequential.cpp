#include "nn/sequential.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"

namespace rhw::nn {
namespace {

TEST(Sequential, ForwardComposes) {
  Sequential net;
  auto& a = net.emplace<Linear>(2, 2, /*bias=*/false);
  auto& b = net.emplace<Linear>(2, 1, /*bias=*/false);
  a.weight().value = Tensor({2, 2}, std::vector<float>{1, 0, 0, 1});
  b.weight().value = Tensor({1, 2}, std::vector<float>{1, 1});
  const Tensor y = net.forward(Tensor({1, 2}, std::vector<float>{3, 4}));
  EXPECT_FLOAT_EQ(y[0], 7.f);
}

TEST(Sequential, ParametersAggregateChildren) {
  Sequential net;
  net.emplace<Linear>(4, 4);
  net.emplace<ReLU>();
  net.emplace<Linear>(4, 2, /*bias=*/false);
  EXPECT_EQ(net.parameters().size(), 3u);  // w+b, w
  EXPECT_EQ(net.children().size(), 3u);
  EXPECT_EQ(net.num_parameters(), 4 * 4 + 4 + 4 * 2);
}

TEST(Sequential, TrainingFlagPropagates) {
  Sequential net;
  auto& bn = net.emplace<BatchNorm2d>(2);
  net.set_training(false);
  EXPECT_FALSE(bn.training());
  net.set_training(true);
  EXPECT_TRUE(bn.training());
}

TEST(Sequential, AppendedModuleInheritsTrainingFlag) {
  Sequential net;
  net.set_training(false);
  auto& bn = net.emplace<BatchNorm2d>(2);
  EXPECT_FALSE(bn.training());
}

TEST(Sequential, BackwardReversesOrder) {
  Sequential net;
  auto& a = net.emplace<Linear>(1, 1, /*bias=*/false);
  auto& b = net.emplace<Linear>(1, 1, /*bias=*/false);
  a.weight().value.fill(2.f);
  b.weight().value.fill(3.f);
  (void)net.forward(Tensor({1, 1}, 1.f));
  const Tensor g = net.backward(Tensor({1, 1}, 1.f));
  // dy/dx = 2*3
  EXPECT_FLOAT_EQ(g[0], 6.f);
}

TEST(Sequential, EmptyNetIsIdentity) {
  Sequential net;
  const Tensor x({2, 2}, 5.f);
  const Tensor y = net.forward(x);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(y[i], 5.f);
}

TEST(Sequential, IndexAccess) {
  Sequential net;
  net.emplace<ReLU>();
  net.emplace<Linear>(2, 2);
  EXPECT_EQ(net.size(), 2u);
  EXPECT_EQ(net[0].type_name(), "ReLU");
  EXPECT_EQ(net[1].type_name(), "Linear");
}

}  // namespace
}  // namespace rhw::nn
