// Finite-difference gradient checks for every layer: the backbone guarantee
// behind FGSM/PGD input gradients and training.
#include <gtest/gtest.h>

#include "common/grad_check.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"

namespace rhw::nn {
namespace {

using rhw::testing::check_input_gradient;
using rhw::testing::check_param_gradients;

Tensor smooth_input(Shape shape, uint64_t seed) {
  RandomEngine rng(seed);
  return Tensor::randn(std::move(shape), rng, 0.f, 1.f);
}

TEST(Grad, Linear) {
  Linear lin(5, 3);
  RandomEngine rng(1);
  kaiming_init(lin, rng);
  check_input_gradient(lin, smooth_input({4, 5}, 11), 21);
  check_param_gradients(lin, smooth_input({4, 5}, 12), 22);
}

TEST(Grad, Conv2dPadded) {
  Conv2d conv(2, 3, 3, 1, 1);
  RandomEngine rng(2);
  kaiming_init(conv, rng);
  check_input_gradient(conv, smooth_input({2, 2, 5, 5}, 13), 23);
  check_param_gradients(conv, smooth_input({2, 2, 5, 5}, 14), 24);
}

TEST(Grad, Conv2dStrided) {
  Conv2d conv(2, 2, 3, 2, 1);
  RandomEngine rng(3);
  kaiming_init(conv, rng);
  check_input_gradient(conv, smooth_input({2, 2, 6, 6}, 15), 25);
  check_param_gradients(conv, smooth_input({2, 2, 6, 6}, 16), 26);
}

TEST(Grad, Conv2d1x1NoPad) {
  Conv2d conv(3, 2, 1, 1, 0);
  RandomEngine rng(4);
  kaiming_init(conv, rng);
  check_input_gradient(conv, smooth_input({2, 3, 4, 4}, 17), 27);
  check_param_gradients(conv, smooth_input({2, 3, 4, 4}, 18), 28);
}

TEST(Grad, ReLU) {
  ReLU relu;
  // Keep activations away from the kink for stable finite differences.
  Tensor x = smooth_input({3, 7}, 19);
  for (auto& v : x.span()) {
    if (std::fabs(v) < 0.05f) v = 0.2f;
  }
  check_input_gradient(relu, x, 29);
}

TEST(Grad, Flatten) {
  Flatten flat;
  check_input_gradient(flat, smooth_input({2, 3, 2, 2}, 31), 41);
}

TEST(Grad, MaxPool) {
  MaxPool2d pool(2);
  // Distinct values so the argmax is stable under the probe step.
  Tensor x({1, 2, 4, 4});
  RandomEngine rng(6);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(i) * 0.35f + 0.1f * rng.uniform(0.f, 1.f);
  }
  check_input_gradient(pool, x, 32);
}

TEST(Grad, AvgPoolGlobal) {
  AvgPool2d pool(0);
  check_input_gradient(pool, smooth_input({2, 3, 4, 4}, 33), 43);
}

TEST(Grad, AvgPoolWindowed) {
  AvgPool2d pool(2, 2);
  check_input_gradient(pool, smooth_input({1, 2, 6, 6}, 34), 44);
}

TEST(Grad, BatchNormTraining) {
  BatchNorm2d bn(3);
  bn.set_training(true);
  bn.gamma().value = Tensor({3}, std::vector<float>{1.2f, 0.8f, 1.5f});
  check_input_gradient(bn, smooth_input({4, 3, 3, 3}, 35), 45, 1e-3f, 5e-2f);
  check_param_gradients(bn, smooth_input({4, 3, 3, 3}, 36), 46, 1e-3f, 5e-2f);
}

TEST(Grad, BatchNormEval) {
  BatchNorm2d bn(2);
  bn.set_training(true);
  RandomEngine rng(7);
  for (int i = 0; i < 5; ++i) (void)bn.forward(Tensor::randn({8, 2, 3, 3}, rng));
  bn.set_training(false);
  check_input_gradient(bn, smooth_input({2, 2, 3, 3}, 37), 47);
}

TEST(Grad, ResidualBlockIdentity) {
  ResidualBlock block(4, 4, 1);
  RandomEngine rng(8);
  kaiming_init(block, rng);
  block.set_training(true);
  check_input_gradient(block, smooth_input({2, 4, 4, 4}, 38), 48, 1e-3f, 6e-2f);
}

TEST(Grad, ResidualBlockProjection) {
  ResidualBlock block(3, 6, 2);
  RandomEngine rng(9);
  kaiming_init(block, rng);
  block.set_training(true);
  check_input_gradient(block, smooth_input({2, 3, 6, 6}, 39), 49, 1e-3f, 6e-2f);
}

TEST(Grad, SmallSequentialStack) {
  Sequential net;
  net.emplace<Conv2d>(1, 4, 3, 1, 1);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(4 * 2 * 2, 3);
  RandomEngine rng(10);
  kaiming_init(net, rng);
  check_input_gradient(net, smooth_input({2, 1, 4, 4}, 40), 50, 1e-3f, 5e-2f);
}

}  // namespace
}  // namespace rhw::nn
