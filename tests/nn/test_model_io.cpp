#include "nn/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"

namespace rhw::nn {
namespace {

Sequential make_net(uint64_t seed) {
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3);
  net.emplace<BatchNorm2d>(2);
  net.emplace<ReLU>();
  net.emplace<Flatten>();
  net.emplace<Linear>(2 * 4 * 4, 3);
  RandomEngine rng(seed);
  kaiming_init(net, rng);
  return net;
}

TEST(ModelIo, StateDictHasPrefixedKeys) {
  Sequential net = make_net(1);
  const auto state = state_dict(net);
  EXPECT_TRUE(state.contains("0.weight"));
  EXPECT_TRUE(state.contains("0.bias"));
  EXPECT_TRUE(state.contains("1.gamma"));
  EXPECT_TRUE(state.contains("1.running_mean"));
  EXPECT_TRUE(state.contains("4.weight"));
  // ReLU/Flatten contribute nothing.
  EXPECT_EQ(state.size(), 8u);
}

TEST(ModelIo, RoundTripReproducesOutputs) {
  Sequential a = make_net(2);
  Sequential b = make_net(3);  // different init
  a.set_training(false);
  b.set_training(false);
  RandomEngine rng(4);
  const Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
  const Tensor ya = a.forward(x);
  load_state_dict(b, state_dict(a));
  const Tensor yb = b.forward(x);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rhw_model_io_test.ckpt")
          .string();
  Sequential a = make_net(5);
  save_model(a, path);
  Sequential b = make_net(6);
  load_model(b, path);
  RandomEngine rng(7);
  a.set_training(false);
  b.set_training(false);
  const Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
  std::remove(path.c_str());
}

TEST(ModelIo, MissingKeyThrows) {
  Sequential a = make_net(8);
  auto state = state_dict(a);
  state.erase("4.weight");
  Sequential b = make_net(9);
  EXPECT_THROW(load_state_dict(b, state), std::runtime_error);
}

TEST(ModelIo, ShapeMismatchThrows) {
  Sequential a = make_net(10);
  auto state = state_dict(a);
  state["4.weight"] = Tensor({1, 1});
  Sequential b = make_net(11);
  EXPECT_THROW(load_state_dict(b, state), std::runtime_error);
}

TEST(ModelIo, ResidualBlockStateRoundTrips) {
  Sequential a;
  a.emplace<ResidualBlock>(2, 4, 2);
  Sequential b;
  b.emplace<ResidualBlock>(2, 4, 2);
  RandomEngine rng(12);
  kaiming_init(a, rng);
  load_state_dict(b, state_dict(a));
  a.set_training(false);
  b.set_training(false);
  const Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

}  // namespace
}  // namespace rhw::nn
