// rhw_lint's own test suite: each violation class has a fixture under
// tests/lint/fixtures/ (excluded from the build and from rhw_lint's walk)
// and must produce exact diagnostics; the real tree must lint clean.
//
// NOTE: RegisterUnknownKey mutates the process-wide BackendRegistry, so it
// is declared last — gtest runs tests in declaration order by default.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "check_common.hpp"
#include "hw/registry.hpp"

namespace {

using rhw::check::LintDiag;
using rhw::check::LintStats;
using rhw::check::SpecVerdict;

const std::filesystem::path kRoot = RHW_SOURCE_DIR;

std::vector<LintDiag> lint_fixture(const std::string& name, LintStats* stats) {
  const std::filesystem::path path = kRoot / "tests/lint/fixtures" / name;
  EXPECT_TRUE(std::filesystem::exists(path)) << path;
  std::vector<LintDiag> diags;
  LintStats local;
  rhw::check::lint_source(name, rhw::check::read_file(path), diags, local);
  if (stats != nullptr) *stats = local;
  return diags;
}

// (rule, line) pairs, sorted, for order-insensitive exact comparison.
std::vector<std::pair<std::string, size_t>> rule_lines(
    const std::vector<LintDiag>& diags) {
  std::vector<std::pair<std::string, size_t>> out;
  out.reserve(diags.size());
  for (const LintDiag& d : diags) out.emplace_back(d.rule, d.line);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RhwLint, RawRngFixtureFlagsEveryViolation) {
  const auto diags = lint_fixture("raw_rng.cpp", nullptr);
  const std::vector<std::pair<std::string, size_t>> expected = {
      {"rng", 8},   // random_device
      {"rng", 9},   // mt19937
      {"rng", 10},  // srand
      {"rng", 10},  // time(nullptr)
      {"rng", 11},  // rand()
  };
  EXPECT_EQ(rule_lines(diags), expected);
  for (const LintDiag& d : diags) {
    EXPECT_NE(d.what.find("RandomEngine") != std::string::npos ||
                  d.what.find("seed") != std::string::npos,
              false)
        << d.what;
  }
}

TEST(RhwLint, WallclockFixtureFlagsWallClockOnly) {
  const auto diags = lint_fixture("wallclock.cpp", nullptr);
  const std::vector<std::pair<std::string, size_t>> expected = {
      {"wallclock", 6},  // system_clock::now
      {"wallclock", 8},  // gettimeofday
  };
  EXPECT_EQ(rule_lines(diags), expected);
  for (const LintDiag& d : diags) {
    EXPECT_NE(d.what.find("wall-clock"), std::string::npos) << d.what;
  }
}

TEST(RhwLint, StaleSpecFixtureFlagsExactlyTheStaleLiterals) {
  LintStats stats;
  const auto diags = lint_fixture("stale_spec.cpp", &stats);
  const std::vector<std::pair<std::string, size_t>> expected = {
      {"spec", 4},  // pgd:stps=7
      {"spec", 5},  // xbar:rmn=1e5
      {"spec", 6},  // smooth:sigma=abc
  };
  EXPECT_EQ(rule_lines(diags), expected);
  // 4 literals name registered keys (1 valid + 3 stale); the unknown-key
  // literal is skipped entirely.
  EXPECT_EQ(stats.spec_literals, 4u);
  EXPECT_NE(diags[0].what.find("stps"), std::string::npos) << diags[0].what;
  EXPECT_NE(diags[1].what.find("rmn"), std::string::npos) << diags[1].what;
  EXPECT_NE(diags[2].what.find("abc"), std::string::npos) << diags[2].what;
}

TEST(RhwLint, AllowCommentsSuppressSameLineAndLineAbove) {
  LintStats stats;
  const auto diags = lint_fixture("allowed.cpp", &stats);
  EXPECT_TRUE(diags.empty()) << diags.size() << " diag(s), first: "
                             << (diags.empty() ? "" : diags[0].what);
  EXPECT_EQ(stats.allows_used, 3u);
}

TEST(RhwLint, UnknownAndStaleAllowsAreFindings) {
  const auto diags = lint_fixture("stale_allow.cpp", nullptr);
  const std::vector<std::pair<std::string, size_t>> expected = {
      {"allow", 3},  // allow(frobnicate): unknown rule
      {"allow", 4},  // allow(rng): suppresses nothing
  };
  EXPECT_EQ(rule_lines(diags), expected);
  EXPECT_NE(diags[0].what.find("unknown rule"), std::string::npos);
  EXPECT_NE(diags[1].what.find("suppresses nothing"), std::string::npos);
}

TEST(RhwLint, CleanFixturePasses) {
  LintStats stats;
  const auto diags = lint_fixture("clean.cpp", nullptr);
  EXPECT_TRUE(diags.empty());
  lint_fixture("clean.cpp", &stats);
  EXPECT_EQ(stats.spec_literals, 1u);  // "xbar:size=32"
}

TEST(RhwLint, SpecVerdicts) {
  std::string error;
  EXPECT_EQ(rhw::check::check_spec_span("pgd:steps=7", &error),
            SpecVerdict::kOk);
  EXPECT_EQ(rhw::check::check_spec_span("fig8bc", &error), SpecVerdict::kOk);
  EXPECT_EQ(rhw::check::check_spec_span("simd:mr=6,nr=16", &error),
            SpecVerdict::kOk);
  // rhw-lint: allow(spec) — negative-path probe, stale on purpose
  EXPECT_EQ(rhw::check::check_spec_span("pgd:stps=7", &error),
            SpecVerdict::kStale);
  EXPECT_NE(error.find("stps"), std::string::npos) << error;
  EXPECT_EQ(rhw::check::check_spec_span("just a sentence", &error),
            SpecVerdict::kNotASpec);
  EXPECT_EQ(rhw::check::check_spec_span("unknown_key:opt=1", &error),
            SpecVerdict::kNotASpec);
}

TEST(RhwLint, DocKeyParsers) {
  const std::string headings =
      "## Registry keys\n"
      "### `alpha` — first\n"
      "prose\n"
      "### `beta_2` — second\n"
      "#### `not_a_key_level`\n";
  EXPECT_EQ(rhw::check::doc_heading_keys(headings),
            (std::vector<std::string>{"alpha", "beta_2"}));
  const std::string table =
      "| preset | grid |\n"
      "|---|---|\n"
      "| `fig_x` | something |\n"
      "| `key=value` | override form, skipped |\n"
      "| plain | no code span, skipped |\n";
  EXPECT_EQ(rhw::check::doc_table_keys(table),
            (std::vector<std::string>{"fig_x"}));
}

TEST(RhwLint, ParityFlagsBothDirections) {
  std::vector<rhw::check::Failure> failures;
  rhw::check::check_parity("backend", {"ideal", "ghost"}, {"ideal", "extra"},
                           "docs/BACKENDS.md", failures);
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_NE(failures[0].what.find("ghost"), std::string::npos);
  EXPECT_NE(failures[0].what.find("registered but has no key"),
            std::string::npos);
  EXPECT_NE(failures[1].what.find("extra"), std::string::npos);
  EXPECT_NE(failures[1].what.find("not registered"), std::string::npos);
}

// The real tree: zero findings, floors comfortably cleared. This is the
// same walk the tools_rhw_lint ctest performs, run in-process so a lint
// regression points here as well as at the tool.
TEST(RhwLint, CleanTree) {
  std::vector<LintDiag> diags;
  LintStats stats;
  rhw::check::lint_tree(kRoot, diags, stats);
  for (const LintDiag& d : diags) {
    ADD_FAILURE() << d.file << ":" << d.line << " [" << d.rule << "] "
                  << d.what;
  }
  EXPECT_GE(stats.files, 100u);
  EXPECT_GE(stats.spec_literals, 40u);
}

TEST(RhwLint, CleanTreeRegistryDocParity) {
  std::vector<rhw::check::Failure> failures;
  size_t checked = 0;
  rhw::check::check_registry_doc_parity(kRoot, failures, checked);
  for (const auto& f : failures) ADD_FAILURE() << f.file << ": " << f.what;
  EXPECT_EQ(checked, 6u);
}

// Declared last: registers a key into the live BackendRegistry and asserts
// the parity check names it as undocumented.
TEST(RhwLint, RegisterUnknownKey) {
  rhw::hw::BackendRegistry::instance().add(
      "zzz_parity_probe",
      [](const rhw::hw::BackendOptions&) { return rhw::hw::make_backend("ideal"); });
  std::vector<rhw::check::Failure> failures;
  size_t checked = 0;
  rhw::check::check_registry_doc_parity(kRoot, failures, checked);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].what.find("zzz_parity_probe"), std::string::npos);
  EXPECT_NE(failures[0].what.find("no key section"), std::string::npos);
}

}  // namespace
