// Lint-test fixture: the allow() escape hatch, same-line and line-above.
#include <random>

int fixture_allowed() {
  std::random_device rd;  // rhw-lint: allow(rng) fixture escape hatch
  // rhw-lint: allow(rng) line-above form
  std::mt19937 gen(7);
  const char* spec = "pgd:stps=7";  // rhw-lint: allow(spec)
  (void)spec;
  return static_cast<int>(gen()) + static_cast<int>(rd());
}
