// Lint-test fixture: a clean file — RandomEngine randomness, monotonic
// timing, valid registry spec literals.
#include <chrono>
#include <cstdint>

#include "core/rng.hpp"

double fixture_clean(uint64_t seed) {
  rhw::RandomEngine rng(rhw::derive_stream_seed(seed, 3));
  const auto t0 = std::chrono::steady_clock::now();
  const char* spec = "xbar:size=32";
  (void)spec;
  return rng.next_double() +
         std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count();
}
