// Lint-test fixture: unknown and stale allow comments are findings too.
int fixture_stale_allow() {
  int x = 0;  // rhw-lint: allow(frobnicate)
  ++x;        // rhw-lint: allow(rng)
  return x;
}
