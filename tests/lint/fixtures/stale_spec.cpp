// Lint-test fixture: registry spec string literals, valid and stale.
const char* fixture_specs[] = {
    "pgd:steps=7",               // valid: parses through AttackRegistry
    "pgd:stps=7",                // stale: typo'd knob
    "xbar:rmn=1e5",              // stale: typo'd knob
    "smooth:sigma=abc",          // stale: bad number
    "not_a_registry_key:opt=1",  // skipped: key in no registry
};
