// Lint-test fixture: wall-clock reads (steady_clock stays legal).
#include <chrono>
#include <sys/time.h>

double fixture_wallclock() {
  const auto now = std::chrono::system_clock::now();
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  const auto ok = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(ok - ok).count() +
         static_cast<double>(tv.tv_sec) +
         std::chrono::duration<double>(now.time_since_epoch()).count();
}
