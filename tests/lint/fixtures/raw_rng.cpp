// Lint-test fixture: every determinism-contract (rng) violation class.
// Walked only by tests/lint/test_rhw_lint.cpp — rhw_lint skips fixtures/.
#include <cstdlib>
#include <ctime>
#include <random>

int fixture_raw_rng() {
  std::random_device rd;
  std::mt19937 gen(1234);
  srand(static_cast<unsigned>(time(nullptr)));
  return static_cast<int>(gen()) + static_cast<int>(rd()) + rand();
}
