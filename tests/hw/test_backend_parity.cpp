// Backend-parity suite: the hardware seam must not change the math it wraps.
//
//  - IdealBackend is bit-exact with the raw module;
//  - SramBackend at vdd = 0.9 (negligible 6T error rate) matches ideal
//    within tolerance;
//  - batched TiledMatrix/CrossbarArray matmul matches looped matvec exactly
//    (per-sample accumulation order is identical by construction).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hw/ideal_backend.hpp"
#include "hw/registry.hpp"
#include "hw/sram_backend.hpp"
#include "hw/xbar_backend.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"
#include "xbar/tiled_matrix.hpp"

namespace rhw {
namespace {

models::Model tiny_model(uint64_t seed = 3) {
  models::Model model = models::build_model("vgg8", 10, 0.125f, 16);
  RandomEngine rng(seed);
  for (nn::Param* p : model.net->parameters()) {
    p->value = Tensor::randn(p->value.shape(), rng, 0.f, 0.1f);
  }
  model.net->set_training(false);
  return model;
}

models::Model clone_of(const models::Model& src) {
  return models::clone_model(src, 0.125f, 16);
}

Tensor random_batch(int64_t n, uint64_t seed) {
  RandomEngine rng(seed);
  return Tensor::rand_uniform({n, 3, 16, 16}, rng);
}

TEST(BackendParity, IdealBitExactWithRawModule) {
  models::Model raw = tiny_model();
  models::Model backed = clone_of(raw);
  auto backend = hw::make_backend("ideal");
  backend->prepare(backed);

  const Tensor x = random_batch(4, 11);
  const Tensor want = raw.net->forward(x);
  const Tensor got = backend->forward(x);
  ASSERT_TRUE(want.same_shape(got));
  for (int64_t i = 0; i < want.numel(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "at index " << i;
  }
}

TEST(BackendParity, SramHighVddMatchesIdealWithinTolerance) {
  models::Model raw = tiny_model();
  models::Model backed = clone_of(raw);
  // 0.9 V: the 6T bit-error rate is negligible, so the noisy forward pass
  // should coincide with the ideal one up to (rare) single-bit flips.
  auto backend = hw::make_backend("sram:vdd=0.9,sites=3,num_8t=4");
  backend->prepare(backed);

  const Tensor x = random_batch(8, 13);
  const Tensor want = raw.net->forward(x);
  const Tensor got = backend->forward(x);
  ASSERT_TRUE(want.same_shape(got));
  double max_diff = 0.0;
  for (int64_t i = 0; i < want.numel(); ++i) {
    max_diff = std::max(max_diff,
                        static_cast<double>(std::fabs(want[i] - got[i])));
  }
  EXPECT_LT(max_diff, 1e-2);
}

TEST(BackendParity, SramLowVddActuallyPerturbs) {
  models::Model raw = tiny_model();
  models::Model backed = clone_of(raw);
  auto backend = hw::make_backend("sram:vdd=0.6,sites=3,num_8t=0");
  backend->prepare(backed);

  const Tensor x = random_batch(8, 13);
  const Tensor want = raw.net->forward(x);
  const Tensor got = backend->forward(x);
  double max_diff = 0.0;
  for (int64_t i = 0; i < want.numel(); ++i) {
    max_diff = std::max(max_diff,
                        static_cast<double>(std::fabs(want[i] - got[i])));
  }
  EXPECT_GT(max_diff, 0.0);
}

TEST(BackendParity, CrossbarArrayMatmulMatchesMatvecExactly) {
  const int64_t out = 24, in = 30;
  RandomEngine rng(7);
  std::vector<float> w(static_cast<size_t>(out * in));
  for (auto& v : w) v = rng.uniform(-1.f, 1.f);
  xbar::CrossbarSpec spec;
  spec.rows = 32;
  spec.cols = 32;
  RandomEngine var(8);
  const xbar::CrossbarArray tile(w.data(), out, in, in, spec,
                                 xbar::CircuitModel::kFastApprox, &var);

  for (int64_t batch : {1, 3, 8, 17, 100}) {
    std::vector<float> x(static_cast<size_t>(batch * in));
    for (auto& v : x) v = rng.uniform(-2.f, 2.f);
    std::vector<float> y(static_cast<size_t>(batch * out), -1.f);
    tile.matmul(x.data(), batch, y.data());
    for (int64_t b = 0; b < batch; ++b) {
      const std::vector<float> sample(x.begin() + b * in,
                                      x.begin() + (b + 1) * in);
      const auto want = tile.matvec(sample);
      for (int64_t o = 0; o < out; ++o) {
        ASSERT_EQ(want[static_cast<size_t>(o)], y[b * out + o])
            << "batch " << batch << " sample " << b << " output " << o;
      }
    }
  }
}

TEST(BackendParity, TiledMatrixMatmulMatchesMatvecExactly) {
  // Dimensions that do not divide the tile size: exercises partial tiles in
  // both directions.
  const int64_t out = 48, in = 100;
  RandomEngine rng(17);
  std::vector<float> w(static_cast<size_t>(out * in));
  for (auto& v : w) v = rng.uniform(-1.f, 1.f);
  xbar::CrossbarSpec spec;
  spec.rows = 32;
  spec.cols = 32;
  RandomEngine var(18);
  const xbar::TiledMatrix tiles(w.data(), out, in, in, spec,
                                xbar::CircuitModel::kFastApprox, &var);
  EXPECT_EQ(tiles.num_tiles(), 4 * 2);

  for (int64_t batch : {1, 5, 64}) {
    std::vector<float> x(static_cast<size_t>(batch * in));
    for (auto& v : x) v = rng.uniform(-2.f, 2.f);
    std::vector<float> y(static_cast<size_t>(batch * out), -1.f);
    tiles.matmul(x.data(), batch, y.data());
    for (int64_t b = 0; b < batch; ++b) {
      const std::vector<float> sample(x.begin() + b * in,
                                      x.begin() + (b + 1) * in);
      const auto want = tiles.matvec(sample);
      for (int64_t o = 0; o < out; ++o) {
        ASSERT_EQ(want[static_cast<size_t>(o)], y[b * out + o])
            << "batch " << batch << " sample " << b << " output " << o;
      }
    }
  }
}

TEST(BackendParity, TiledMatrixEffectiveWeightsMatchTileMatvec) {
  // The assembled effective weights must reproduce the tile-level product on
  // an ideal circuit (no distortion beyond programming quantization).
  const int64_t out = 20, in = 40;
  RandomEngine rng(23);
  std::vector<float> w(static_cast<size_t>(out * in));
  for (auto& v : w) v = rng.uniform(-1.f, 1.f);
  xbar::CrossbarSpec spec;
  spec.rows = 16;
  spec.cols = 16;
  const xbar::TiledMatrix tiles(w.data(), out, in, in, spec,
                                xbar::CircuitModel::kIdeal, nullptr);
  const auto w_eff = tiles.effective_weights();
  std::vector<float> x(static_cast<size_t>(in));
  for (auto& v : x) v = rng.uniform(-1.f, 1.f);
  const auto got = tiles.matvec(x);
  for (int64_t o = 0; o < out; ++o) {
    double want = 0.0;
    for (int64_t i = 0; i < in; ++i) {
      want += static_cast<double>(w_eff[static_cast<size_t>(o * in + i)]) *
              x[static_cast<size_t>(i)];
    }
    EXPECT_NEAR(static_cast<float>(want), got[static_cast<size_t>(o)], 1e-4f);
  }
}

TEST(BackendParity, XbarBackendRetainsTilesAndMatchesModuleShapes) {
  models::Model backed = tiny_model();
  auto backend = hw::make_backend("xbar:size=32");
  backend->prepare(backed);
  const auto* xb = dynamic_cast<const hw::XbarBackend*>(backend.get());
  ASSERT_NE(xb, nullptr);
  ASSERT_GT(xb->mapped_layers().size(), 0u);
  for (const auto& layer : xb->mapped_layers()) {
    ASSERT_NE(layer.tiles, nullptr) << layer.label;
    EXPECT_GT(layer.tiles->num_tiles(), 0);
  }
  // The prepared hardware model still runs end to end.
  const Tensor logits = backend->forward(random_batch(2, 31));
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 10);
}

TEST(BackendParity, RetainedTilesMatchCalibratedModuleWeights) {
  // The mapper's per-output gain calibration must hit the retained tile
  // grids too, or the tile-level executor diverges from the prepared module.
  models::Model backed = tiny_model();
  auto backend = hw::make_backend("xbar:size=32");
  backend->prepare(backed);
  const auto* xb = dynamic_cast<const hw::XbarBackend*>(backend.get());
  ASSERT_NE(xb, nullptr);
  for (const auto& layer : xb->mapped_layers()) {
    ASSERT_NE(layer.tiles, nullptr);
    const nn::Param* weight = nullptr;
    for (nn::Param* p : layer.layer->parameters()) {
      if (p->name == "weight" && p->value.rank() == 2) weight = p;
    }
    ASSERT_NE(weight, nullptr) << layer.label;
    const auto w_eff = layer.tiles->effective_weights();
    ASSERT_EQ(static_cast<int64_t>(w_eff.size()), weight->value.numel());
    for (int64_t i = 0; i < weight->value.numel(); ++i) {
      ASSERT_EQ(w_eff[static_cast<size_t>(i)], weight->value[i])
          << layer.label << " flat index " << i;
    }
  }
}

}  // namespace
}  // namespace rhw
