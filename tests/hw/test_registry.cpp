#include "hw/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "hw/sram_backend.hpp"
#include "hw/xbar_backend.hpp"
#include "models/zoo.hpp"

namespace rhw {
namespace {

TEST(BackendRegistry, BuiltinsRegistered) {
  const auto keys = hw::BackendRegistry::instance().keys();
  for (const char* expected : {"ideal", "sram", "xbar"}) {
    EXPECT_TRUE(std::find(keys.begin(), keys.end(), expected) != keys.end())
        << expected;
    EXPECT_TRUE(hw::BackendRegistry::instance().contains(expected));
  }
}

TEST(BackendRegistry, UnknownKeyThrows) {
  EXPECT_THROW(hw::make_backend("tpu"), std::invalid_argument);
}

TEST(BackendRegistry, UnknownOptionThrows) {
  EXPECT_THROW(hw::make_backend("xbar:bogus=1"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(hw::make_backend("sram:vdd=abc"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(hw::make_backend("ideal:x=1"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
}

TEST(BackendRegistry, MalformedOptionThrows) {
  EXPECT_THROW(hw::make_backend("xbar:size"), std::invalid_argument);
}

// Parse failures must name the offending key, the bad value, AND the full
// spec string (regression: they used to surface as bare std::stod errors).
TEST(BackendRegistry, ParseErrorNamesKeyValueAndSpec) {
  try {
    hw::make_backend("xbar:size=32,rmin=abc");  // rhw-lint: allow(spec) stale on purpose
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rmin"), std::string::npos) << msg;
    EXPECT_NE(msg.find("abc"), std::string::npos) << msg;
    EXPECT_NE(msg.find("xbar:size=32,rmin=abc"), std::string::npos) << msg;  // rhw-lint: allow(spec) stale on purpose
  }
  try {
    hw::make_backend("sram:sites=3junk");  // rhw-lint: allow(spec) stale on purpose
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sites"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3junk"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sram:sites=3junk"), std::string::npos) << msg;  // rhw-lint: allow(spec) stale on purpose
  }
}

// Trailing garbage after a numeric value is rejected, not silently truncated.
TEST(BackendRegistry, TrailingGarbageRejected) {
  EXPECT_THROW(hw::make_backend("sram:vdd=0.68volts"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(hw::make_backend("xbar:rmin=10e3 "), std::invalid_argument);
  EXPECT_THROW(hw::make_backend("xbar:adc_bits=5.5"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
}

TEST(BackendRegistry, ReplicateReproducesConfig) {
  auto backend = hw::make_backend("xbar:size=16,rmin=10e3,adc_bits=6");
  auto replica = backend->replicate();
  ASSERT_NE(replica, nullptr);
  const auto* xb = dynamic_cast<const hw::XbarBackend*>(replica.get());
  ASSERT_NE(xb, nullptr);
  EXPECT_EQ(xb->config().map.spec.rows, 16);
  EXPECT_DOUBLE_EQ(xb->config().map.spec.r_min, 10e3);
  EXPECT_EQ(xb->config().map.adc_bits, 6);
  EXPECT_FALSE(replica->prepared());

  // SramBackend carries its installed selection into the replica, so replica
  // prepare() skips the calibration-driven selector.
  models::Model model = models::build_model("vgg8", 10, 0.125f, 16);
  auto sram = hw::make_backend("sram:sites=2");
  sram->prepare(model);
  auto sram_replica = sram->replicate();
  ASSERT_NE(sram_replica, nullptr);
  const auto* sb = dynamic_cast<const hw::SramBackend*>(sram_replica.get());
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(sb->config().selection.size(), 2u);
}

TEST(BackendRegistry, NegativeIntegerOptionThrows) {
  EXPECT_THROW(hw::make_backend("xbar:size=-1"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(hw::make_backend("sram:sites=-2"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
}

TEST(BackendRegistry, XbarOptionsParse) {
  auto backend = hw::make_backend(
      "xbar:size=16,rmin=10e3,adc_bits=6,grad_noise=0,model=ideal");
  const auto* xb = dynamic_cast<const hw::XbarBackend*>(backend.get());
  ASSERT_NE(xb, nullptr);
  EXPECT_EQ(xb->name(), "xbar");
  EXPECT_EQ(xb->config().map.spec.rows, 16);
  EXPECT_EQ(xb->config().map.spec.cols, 16);
  EXPECT_DOUBLE_EQ(xb->config().map.spec.r_min, 10e3);
  // rmin moved with constant ON/OFF ratio.
  EXPECT_DOUBLE_EQ(xb->config().map.spec.r_max, 100e3);
  EXPECT_EQ(xb->config().map.adc_bits, 6);
  EXPECT_DOUBLE_EQ(xb->config().map.grad_noise_scale, 0.0);
  EXPECT_EQ(xb->config().map.model, xbar::CircuitModel::kIdeal);
}

TEST(BackendRegistry, SramOptionsParse) {
  auto backend = hw::make_backend("sram:vdd=0.8,sites=3,num_8t=6");
  const auto* sb = dynamic_cast<const hw::SramBackend*>(backend.get());
  ASSERT_NE(sb, nullptr);
  EXPECT_DOUBLE_EQ(sb->config().vdd, 0.8);
  EXPECT_EQ(sb->config().default_sites, 3);
  EXPECT_EQ(sb->config().default_word.num_8t, 6);
}

TEST(BackendRegistry, ModuleBeforePrepareThrows) {
  auto backend = hw::make_backend("ideal");
  EXPECT_THROW(backend->module(), std::logic_error);
  EXPECT_FALSE(backend->prepared());
}

TEST(BackendRegistry, PrepareOnBareModuleDerivesSites) {
  models::Model model = models::build_model("vgg8", 10, 0.125f, 16);
  auto backend = hw::make_backend("sram:sites=2");
  backend->prepare(*model.net);  // bare-module path, heuristic sites
  EXPECT_TRUE(backend->prepared());
  const auto* sb = dynamic_cast<const hw::SramBackend*>(backend.get());
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(sb->selection().size(), 2u);
}

TEST(BackendRegistry, DeriveActivationSitesFindsReluAndPool) {
  models::Model model = models::build_model("vgg8", 10, 0.125f, 16);
  const auto derived = hw::derive_activation_sites(*model.net);
  // VGG8: 6 conv ReLUs + 3 pools in the feature stack, 1 classifier ReLU.
  EXPECT_GE(derived.size(), model.sites.size());
  size_t pools = 0;
  for (const auto& site : derived) {
    if (site.label.find("(P)") != std::string::npos) ++pools;
  }
  EXPECT_EQ(pools, 3u);
}

TEST(BackendRegistry, EnergyReportsPopulated) {
  models::Model model = models::build_model("vgg8", 10, 0.125f, 16);
  auto backend = hw::make_backend("xbar:size=32");
  backend->prepare(model);
  const auto report = backend->energy_report();
  EXPECT_EQ(report.backend, "xbar");
  EXPECT_GT(report.energy_nj, 0.0);
  EXPECT_GT(report.area_um2, 0.0);
  EXPECT_FALSE(report.details.empty());
  EXPECT_NE(report.summary().find("xbar"), std::string::npos);
}

TEST(BackendRegistry, CustomBackendRegistration) {
  hw::BackendRegistry::instance().add("custom-ideal",
                                      [](const hw::BackendOptions&) {
                                        return hw::make_backend("ideal");
                                      });
  auto backend = hw::make_backend("custom-ideal");
  EXPECT_EQ(backend->name(), "ideal");
}

}  // namespace
}  // namespace rhw
