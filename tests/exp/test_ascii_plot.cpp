#include "exp/ascii_plot.hpp"

#include <gtest/gtest.h>

namespace rhw::exp {
namespace {

TEST(AsciiPlot, ContainsMarkersAndLegend) {
  Series a{"first", {0, 1, 2}, {0, 50, 100}};
  Series b{"second", {0, 1, 2}, {100, 50, 0}};
  const std::string plot = render_ascii_plot({a, b});
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_NE(plot.find("legend:"), std::string::npos);
  EXPECT_NE(plot.find("first"), std::string::npos);
  EXPECT_NE(plot.find("second"), std::string::npos);
}

TEST(AsciiPlot, TitleShown) {
  PlotOptions opt;
  opt.title = "My Plot Title";
  const std::string plot = render_ascii_plot({Series{"s", {0, 1}, {0, 1}}},
                                             opt);
  EXPECT_EQ(plot.find("My Plot Title"), 0u);
}

TEST(AsciiPlot, RespectsFixedYRange) {
  PlotOptions opt;
  opt.y_min = 0;
  opt.y_max = 100;
  const std::string plot = render_ascii_plot(
      {Series{"s", {0, 1}, {0, 100}}}, opt);
  EXPECT_NE(plot.find("100.00"), std::string::npos);
  EXPECT_NE(plot.find("0.00"), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesDoesNotCrash) {
  const std::string plot = render_ascii_plot({});
  EXPECT_FALSE(plot.empty());
  const std::string plot2 = render_ascii_plot({Series{"empty", {}, {}}});
  EXPECT_FALSE(plot2.empty());
}

TEST(AsciiPlot, ExtremePointsLandOnEdges) {
  PlotOptions opt;
  opt.width = 20;
  opt.height = 10;
  const std::string plot =
      render_ascii_plot({Series{"s", {0, 1}, {0, 1}}}, opt);
  // First interior row (top) must contain the max marker; bottom row the min.
  const auto lines = [&] {
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < plot.size()) {
      const size_t next = plot.find('\n', pos);
      out.push_back(plot.substr(pos, next - pos));
      if (next == std::string::npos) break;
      pos = next + 1;
    }
    return out;
  }();
  EXPECT_NE(lines[0].find('*'), std::string::npos);   // top row has y=1
  EXPECT_NE(lines[9].find('*'), std::string::npos);   // bottom row has y=0
}

TEST(AsciiPlot, ConstantSeriesHandled) {
  const std::string plot =
      render_ascii_plot({Series{"flat", {0, 1, 2}, {5, 5, 5}}});
  EXPECT_NE(plot.find('*'), std::string::npos);
}

}  // namespace
}  // namespace rhw::exp
