// rhw_run's flag surface: parse_run_flag's token-precise errors, and the
// --dry-run listing locked to checked-in goldens (tests/exp/goldens/) for
// two env-independent presets — the cell enumeration IS the sharding
// contract, so its text form must never drift silently.
#include "exp/experiment_registry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rhw::exp {
namespace {

std::string read_golden(const std::string& name) {
  const auto path = std::filesystem::path(RHW_SOURCE_DIR) / "tests" / "exp" /
                    "goldens" / name;
  std::ifstream is(path);
  EXPECT_TRUE(is) << "missing golden " << path
                  << " (regenerate with rhw_run --dry-run)";
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(ParseRunFlag, RecognizesTheRunFlags) {
  RunOptions run;
  EXPECT_TRUE(parse_run_flag("--resume", run));
  EXPECT_TRUE(run.resume);
  EXPECT_TRUE(parse_run_flag("--dry-run", run));
  EXPECT_TRUE(run.dry_run);
  EXPECT_TRUE(parse_run_flag("--shard=2/5", run));
  EXPECT_EQ(run.shard_index, 2u);
  EXPECT_EQ(run.shard_count, 5u);
  EXPECT_FALSE(parse_run_flag("--frobnicate", run));
  EXPECT_FALSE(parse_run_flag("--list", run));
}

TEST(ParseRunFlag, MalformedShardValuesThrowNamingTheToken) {
  for (const char* bad : {"--shard=", "--shard=1", "--shard=/3", "--shard=1/",
                          "--shard=a/b", "--shard=1/3/5", "--shard=-1/3",
                          "--shard=3/3", "--shard=4/3", "--shard=1/0"}) {
    RunOptions run;
    try {
      (void)parse_run_flag(bad, run);
      FAIL() << "expected std::invalid_argument for " << bad;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(bad), std::string::npos)
          << e.what();
    }
  }
}

// The goldens: byte-for-byte listings for an unsharded and a sharded
// dry run. Both presets are env-independent (no RHW_FAST branch), so the
// listing is a pure function of the preset — any drift in enumeration
// order, seed derivation, or listing format fails here.
TEST(DryRunListing, SweepSmokeMatchesGolden) {
  const ExperimentSpec spec =
      ExperimentRegistry::instance().preset("sweep_smoke");
  EXPECT_EQ(dry_run_listing(spec), read_golden("dryrun_sweep_smoke.txt"));
}

TEST(DryRunListing, AblationAdaptiveShardedMatchesGolden) {
  const ExperimentSpec spec =
      ExperimentRegistry::instance().preset("ablation_adaptive");
  EXPECT_EQ(dry_run_listing(spec, 1, 3),
            read_golden("dryrun_ablation_adaptive_shard1of3.txt"));
}

TEST(DryRunListing, ServeSpecsAndBadShardsThrow) {
  const ExperimentSpec serve =
      ExperimentRegistry::instance().preset("serve_smoke");
  EXPECT_THROW((void)dry_run_listing(serve), std::invalid_argument);
  const ExperimentSpec spec =
      ExperimentRegistry::instance().preset("sweep_smoke");
  EXPECT_THROW((void)dry_run_listing(spec, 3, 3), std::invalid_argument);
}

}  // namespace
}  // namespace rhw::exp
