// Checkpoint/resume: the sweep journal (exp/journal.hpp) plus the engine's
// budget-interrupt -> resume path. The acceptance property is byte-identity:
// an interrupted-then-resumed run's results payload equals the
// uninterrupted run's, and a torn journal tail only costs re-running the one
// task it recorded.
#include "exp/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "data/synth_cifar.hpp"
#include "exp/sweep.hpp"
#include "models/zoo.hpp"

namespace rhw::exp {
namespace {

namespace fs = std::filesystem;

std::string temp_journal(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(Journal, MissingFileLoadsEmpty) {
  EXPECT_TRUE(load_journal(temp_journal("rhw_no_such_journal.jsonl"), "h")
                  .empty());
}

TEST(Journal, RoundTripsCleanAndCellEntries) {
  const std::string path = temp_journal("rhw_journal_roundtrip.jsonl");
  {
    SweepJournal journal(path, "spec | shard=0/1 | panel=t", /*append=*/false);
    JournalEntry clean;
    clean.clean = true;
    clean.pool = "x32";
    clean.trial = 1;
    clean.clean_acc = 46.875;
    clean.cert = 0.12345678901234567;
    journal.record(clean);
    JournalEntry cell;
    cell.index = 12;
    cell.adv = 31.25;
    journal.record(cell);
  }
  const auto entries = load_journal(path, "spec | shard=0/1 | panel=t");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].clean);
  EXPECT_EQ(entries[0].pool, "x32");
  EXPECT_EQ(entries[0].trial, 1);
  EXPECT_EQ(entries[0].clean_acc, 46.875);
  EXPECT_EQ(entries[0].cert, 0.12345678901234567);
  EXPECT_FALSE(entries[1].clean);
  EXPECT_EQ(entries[1].index, 12u);
  EXPECT_EQ(entries[1].adv, 31.25);
  fs::remove(path);
}

TEST(Journal, HeaderMismatchThrowsNamingBothRuns) {
  const std::string path = temp_journal("rhw_journal_header.jsonl");
  { SweepJournal journal(path, "run A", /*append=*/false); }
  try {
    (void)load_journal(path, "run B");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("header mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("run A"), std::string::npos) << what;
    EXPECT_NE(what.find("run B"), std::string::npos) << what;
  }
  fs::remove(path);
}

TEST(Journal, TornTailIsDroppedNotFatal) {
  const std::string path = temp_journal("rhw_journal_torn.jsonl");
  {
    SweepJournal journal(path, "h", /*append=*/false);
    JournalEntry cell;
    cell.index = 3;
    cell.adv = 50.0;
    journal.record(cell);
  }
  {
    // The crash case: the process died mid-append.
    std::ofstream os(path, std::ios::app);
    os << "{\"type\":\"cell\",\"ind";
  }
  const auto entries = load_journal(path, "h");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].index, 3u);
  fs::remove(path);
}

// -- engine-level interrupt -> resume ----------------------------------------

class ResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 4;
    dcfg.test_per_class = 12;
    dcfg.image_size = 16;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));
    model_ = new models::Model(models::build_model("vgg8", 4, 0.125f, 16));
    model_->net->set_training(false);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static SweepGrid make_grid() {
    SweepGrid grid;
    grid.model = model_;
    grid.width_mult = 0.125f;
    grid.in_size = 16;
    grid.eval_set = &data_->test;
    grid.base.batch_size = 16;
    grid.trials = 2;
    grid.backends.push_back({"ideal", "ideal"});
    grid.backends.push_back({"sram", "sram:sites=2,num_8t=2,vdd=0.6"});
    grid.modes.push_back({"Attack-SW", "ideal", "ideal"});
    grid.modes.push_back({"SH-sram", "ideal", "sram"});
    grid.attacks.push_back({"fgsm", {0.f, 0.1f}});
    grid.attacks.push_back({"pgd", {8.f / 255.f}});
    return grid;
  }

  static constexpr const char* kHeader = "resume-test | shard=0/1 | panel=t";

  static SweepResult run(const std::string& journal, bool resume,
                         size_t max_cells) {
    SweepEngine::Options opt;
    opt.threads = 2;
    opt.journal_path = journal;
    opt.journal_header = kHeader;
    opt.resume = resume;
    opt.max_cells = max_cells;
    SweepEngine engine(opt);
    return engine.run(make_grid());
  }

  static std::string payload(const SweepResult& result) {
    std::ostringstream os;
    result.write_json(os, "resume_test", /*payload_only=*/true);
    return os.str();
  }

  static data::SynthCifar* data_;
  static models::Model* model_;
};

data::SynthCifar* ResumeTest::data_ = nullptr;
models::Model* ResumeTest::model_ = nullptr;

TEST_F(ResumeTest, InterruptedRunResumesBitIdentical) {
  const std::string journal = temp_journal("rhw_resume_engine.jsonl");
  fs::remove(journal);
  const SweepResult reference = run("", false, 0);

  // Kill the run after 5 tasks: the budget knob throws SweepInterrupted and
  // the journal keeps what completed.
  try {
    (void)run(journal, false, 5);
    FAIL() << "expected SweepInterrupted";
  } catch (const SweepInterrupted& e) {
    EXPECT_NE(std::string(e.what()).find(journal), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(load_journal(journal, kHeader).size(), 5u);

  const SweepResult resumed = run(journal, true, 0);
  EXPECT_EQ(resumed.resumed, 5u);
  EXPECT_EQ(payload(resumed), payload(reference));
  fs::remove(journal);
}

TEST_F(ResumeTest, TornJournalLineOnlyReRunsThatTask) {
  const std::string journal = temp_journal("rhw_resume_torn.jsonl");
  fs::remove(journal);
  const SweepResult reference = run("", false, 0);

  EXPECT_THROW((void)run(journal, false, 4), SweepInterrupted);
  {
    // Tear the last line in half, as a crash mid-append would.
    std::ifstream is(journal);
    std::stringstream ss;
    ss << is.rdbuf();
    std::string text = ss.str();
    text.resize(text.size() - 9);
    std::ofstream os(journal, std::ios::trunc);
    os << text;
  }
  EXPECT_EQ(load_journal(journal, kHeader).size(), 3u);

  const SweepResult resumed = run(journal, true, 0);
  EXPECT_EQ(resumed.resumed, 3u);
  EXPECT_EQ(payload(resumed), payload(reference));
  fs::remove(journal);
}

TEST_F(ResumeTest, ResumeIntoDifferentRunRefuses) {
  const std::string journal = temp_journal("rhw_resume_wrong.jsonl");
  fs::remove(journal);
  EXPECT_THROW((void)run(journal, false, 2), SweepInterrupted);

  SweepEngine::Options opt;
  opt.threads = 1;
  opt.journal_path = journal;
  opt.journal_header = "a different spec | shard=0/1 | panel=t";
  opt.resume = true;
  SweepEngine engine(opt);
  EXPECT_THROW((void)engine.run(make_grid()), std::runtime_error);
  fs::remove(journal);
}

TEST_F(ResumeTest, ResumeWithoutJournalRunsEverything) {
  const std::string journal = temp_journal("rhw_resume_fresh.jsonl");
  fs::remove(journal);
  const SweepResult resumed = run(journal, true, 0);
  EXPECT_EQ(resumed.resumed, 0u);
  EXPECT_EQ(payload(resumed), payload(run("", false, 0)));
  fs::remove(journal);
}

}  // namespace
}  // namespace rhw::exp
