// The sharding contract: --shard=i/n partitions the canonical cell
// enumeration deterministically, and the union of any n shards is
// bit-identical to the unsharded run — every column, cert_radius included.
#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"

namespace rhw::exp {
namespace {

TEST(EnumerateCells, TrialMajorOrderAndStableIndices) {
  // 2 modes x (2 + 1 eps) x 2 trials = 12 cells, trial-major.
  const auto coords = enumerate_cells(2, {2, 1}, 2);
  ASSERT_EQ(coords.size(), 12u);
  for (size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(coords[i].index, i);
  }
  EXPECT_EQ(coords[0].trial, 0);
  EXPECT_EQ(coords[5].trial, 0);
  EXPECT_EQ(coords[6].trial, 1);
  // Within a trial: mode-major, then attack, then epsilon.
  EXPECT_EQ(coords[0].mode, 0u);
  EXPECT_EQ(coords[0].attack, 0u);
  EXPECT_EQ(coords[0].eps_index, 0u);
  EXPECT_EQ(coords[1].eps_index, 1u);
  EXPECT_EQ(coords[2].attack, 1u);
  EXPECT_EQ(coords[3].mode, 1u);
  // trials <= 0 clamps to one pass; empty epsilon axes contribute nothing.
  EXPECT_EQ(enumerate_cells(2, {2, 1}, 0).size(), 6u);
  EXPECT_EQ(enumerate_cells(3, {0, 0}, 5).size(), 0u);
}

TEST(EnumerateCells, RoundRobinShardsCoverEveryTrialBand) {
  // index % n round-robin: every shard of 3 sees cells from both trials.
  const auto coords = enumerate_cells(2, {3}, 2);
  for (size_t shard = 0; shard < 3; ++shard) {
    bool trial0 = false;
    bool trial1 = false;
    for (const auto& c : coords) {
      if (c.index % 3 != shard) continue;
      (c.trial == 0 ? trial0 : trial1) = true;
    }
    EXPECT_TRUE(trial0 && trial1) << "shard " << shard;
  }
}

// Shared fixture: one small untrained model (determinism, not accuracy, is
// under test) and a grid whose eval arms include a certifying (smooth)
// defense, so the union check covers the cert_radius column too.
class ShardTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 4;
    dcfg.test_per_class = 12;
    dcfg.image_size = 16;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));
    model_ = new models::Model(models::build_model("vgg8", 4, 0.125f, 16));
    model_->net->set_training(false);
    full_ = new SweepResult(run_shard(0, 1));
  }
  static void TearDownTestSuite() {
    delete full_;
    delete model_;
    delete data_;
    full_ = nullptr;
    model_ = nullptr;
    data_ = nullptr;
  }

  static SweepGrid make_grid() {
    SweepGrid grid;
    grid.model = model_;
    grid.width_mult = 0.125f;
    grid.in_size = 16;
    grid.eval_set = &data_->test;
    grid.base.batch_size = 16;
    grid.trials = 2;
    grid.backends.push_back({"ideal", "ideal"});
    grid.backends.push_back({"sram", "sram:sites=2,num_8t=2,vdd=0.6"});
    // 16 samples: enough for the Clopper-Pearson bound to clear 0.5, so the
    // smooth arm certifies a non-zero radius even on the untrained fixture.
    grid.backends.push_back({"sm", "ideal", "smooth:sigma=0.05,samples=16"});
    grid.modes.push_back({"Attack-SW", "ideal", "ideal"});
    grid.modes.push_back({"SH-sram", "ideal", "sram"});
    grid.modes.push_back({"SH-smooth", "ideal", "sm"});
    grid.attacks.push_back({"fgsm", {0.f, 0.1f}});
    grid.attacks.push_back({"pgd", {8.f / 255.f}});
    return grid;
  }

  static SweepResult run_shard(size_t index, size_t count) {
    SweepEngine::Options opt;
    opt.threads = 2;
    opt.shard_index = index;
    opt.shard_count = count;
    SweepEngine engine(opt);
    return engine.run(make_grid());
  }

  static data::SynthCifar* data_;
  static models::Model* model_;
  static SweepResult* full_;  // the unsharded reference run
};

data::SynthCifar* ShardTest::data_ = nullptr;
models::Model* ShardTest::model_ = nullptr;
SweepResult* ShardTest::full_ = nullptr;

TEST_F(ShardTest, ShardHoldsExactlyItsResidueClass) {
  const auto shard = run_shard(1, 3);
  EXPECT_EQ(shard.cells_total, full_->cells.size());
  size_t expected = 0;
  for (const auto& cell : full_->cells) {
    if (cell.index % 3 == 1) ++expected;
  }
  ASSERT_EQ(shard.cells.size(), expected);
  for (const auto& cell : shard.cells) {
    EXPECT_EQ(cell.index % 3, 1u);
  }
}

// The golden equivalence: for n in {2, 3, 5}, the union of all n shards is
// the unsharded run — same cells, every column bit-identical.
TEST_F(ShardTest, UnionOfShardsBitIdenticalToUnshardedRun) {
  for (const size_t n : {size_t{2}, size_t{3}, size_t{5}}) {
    std::map<size_t, SweepCell> by_index;
    std::vector<SweepCell> union_cells;
    for (size_t i = 0; i < n; ++i) {
      const auto shard = run_shard(i, n);
      for (const auto& cell : shard.cells) {
        ASSERT_TRUE(by_index.emplace(cell.index, cell).second)
            << "duplicate cell " << cell.index << " in shard " << i << "/"
            << n;
        union_cells.push_back(cell);
      }
    }
    ASSERT_EQ(by_index.size(), full_->cells.size()) << "n=" << n;
    for (const auto& ref : full_->cells) {
      const auto it = by_index.find(ref.index);
      ASSERT_NE(it, by_index.end()) << "missing cell " << ref.index;
      const SweepCell& got = it->second;
      EXPECT_EQ(got.mode, ref.mode);
      EXPECT_EQ(got.attack, ref.attack);
      EXPECT_EQ(got.eps_index, ref.eps_index);
      EXPECT_EQ(got.trial, ref.trial);
      EXPECT_EQ(got.seed, ref.seed);
      EXPECT_EQ(got.epsilon, ref.epsilon);
      EXPECT_EQ(got.clean_acc, ref.clean_acc) << "cell " << ref.index;
      EXPECT_EQ(got.adv_acc, ref.adv_acc) << "cell " << ref.index;
      EXPECT_EQ(got.al, ref.al) << "cell " << ref.index;
      EXPECT_EQ(got.cert_radius, ref.cert_radius) << "cell " << ref.index;
    }

    // Aggregates recomputed over the (scrambled-order) union reproduce the
    // monolithic aggregates bit-for-bit — the rhw_merge path in miniature.
    SweepResult merged = *full_;
    merged.cells = union_cells;
    const auto aggs = compute_aggregates(merged);
    ASSERT_EQ(aggs.size(), full_->aggregates.size()) << "n=" << n;
    for (size_t i = 0; i < aggs.size(); ++i) {
      EXPECT_EQ(aggs[i].mode, full_->aggregates[i].mode);
      EXPECT_EQ(aggs[i].attack, full_->aggregates[i].attack);
      EXPECT_EQ(aggs[i].eps_index, full_->aggregates[i].eps_index);
      EXPECT_EQ(aggs[i].clean.mean, full_->aggregates[i].clean.mean);
      EXPECT_EQ(aggs[i].adv.mean, full_->aggregates[i].adv.mean);
      EXPECT_EQ(aggs[i].al.ci95, full_->aggregates[i].al.ci95);
      EXPECT_EQ(aggs[i].cert.mean, full_->aggregates[i].cert.mean);
    }
  }
}

TEST_F(ShardTest, CertRadiusIsNonTrivialInTheFixture) {
  // Guard the guard: if the smooth arm stopped certifying, the cert_radius
  // column equality above would be vacuous.
  bool any_cert = false;
  for (const auto& cell : full_->cells) {
    if (cell.cert_radius > 0.0) any_cert = true;
  }
  EXPECT_TRUE(any_cert);
}

TEST_F(ShardTest, ShardIndexMustBeBelowShardCount) {
  SweepEngine::Options opt;
  opt.shard_index = 3;
  opt.shard_count = 3;
  SweepEngine engine(opt);
  EXPECT_THROW((void)engine.run(make_grid()), std::invalid_argument);
}

}  // namespace
}  // namespace rhw::exp
