#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "data/synth_cifar.hpp"
#include "exp/al_runner.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"

namespace rhw::exp {
namespace {

// Shared fixture: one small (untrained — determinism, not accuracy, is under
// test) model and dataset for every grid.
class SweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 4;
    dcfg.test_per_class = 12;
    dcfg.image_size = 16;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));
    model_ = new models::Model(models::build_model("vgg8", 4, 0.125f, 16));
    model_->net->set_training(false);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  // A grid exercising every scheduling feature: spec + bind backends, shared
  // eval backends, grad == eval pairing, eps == 0 rows, multiple attacks,
  // multiple trials.
  static SweepGrid make_grid() {
    SweepGrid grid;
    grid.model = model_;
    grid.width_mult = 0.125f;
    grid.in_size = 16;
    grid.eval_set = &data_->test;
    grid.base.batch_size = 16;
    grid.trials = 2;
    grid.backends.push_back({"ideal", "ideal"});
    grid.backends.push_back({"sram", "sram:sites=2,num_8t=2,vdd=0.6"});
    grid.backends.push_back({"xbar", "xbar:size=16"});
    grid.modes.push_back({"Attack-SW", "ideal", "ideal"});
    grid.modes.push_back({"SH-sram", "ideal", "sram"});
    grid.modes.push_back({"HH-xbar", "xbar", "xbar"});
    grid.attacks.push_back({"fgsm", {0.f, 0.1f}});
    grid.attacks.push_back({"pgd", {8.f / 255.f}});
    return grid;
  }

  static SweepResult run_with_threads(unsigned threads) {
    SweepEngine::Options opt;
    opt.threads = threads;
    SweepEngine engine(opt);
    return engine.run(make_grid());
  }

  static void expect_identical(const SweepResult& a, const SweepResult& b) {
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (size_t i = 0; i < a.cells.size(); ++i) {
      EXPECT_EQ(a.cells[i].seed, b.cells[i].seed) << "cell " << i;
      EXPECT_DOUBLE_EQ(a.cells[i].clean_acc, b.cells[i].clean_acc)
          << "cell " << i;
      EXPECT_DOUBLE_EQ(a.cells[i].adv_acc, b.cells[i].adv_acc)
          << "cell " << i;
    }
  }

  static data::SynthCifar* data_;
  static models::Model* model_;
};

data::SynthCifar* SweepTest::data_ = nullptr;
models::Model* SweepTest::model_ = nullptr;

TEST_F(SweepTest, GridShapeAndZeroEpsilonRows) {
  const auto result = run_with_threads(2);
  // 3 modes x (2 FGSM eps + 1 PGD eps) x 2 trials.
  EXPECT_EQ(result.cells.size(), 3u * 3u * 2u);
  EXPECT_EQ(result.aggregates.size(), 3u * 3u);
  for (const auto& cell : result.cells) {
    if (cell.epsilon == 0.f) {
      EXPECT_DOUBLE_EQ(cell.adv_acc, cell.clean_acc);
      EXPECT_DOUBLE_EQ(cell.al, 0.0);
    }
    EXPECT_DOUBLE_EQ(cell.al, cell.clean_acc - cell.adv_acc);
  }
  for (const auto& agg : result.aggregates) EXPECT_EQ(agg.al.n, 2);
}

// The acceptance property: a grid run twice, and with 1 lane vs N lanes, is
// bit-identical — execution order and replica count never leak into results.
TEST_F(SweepTest, BitIdenticalAcrossRunsAndThreadCounts) {
  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(4);
  const auto parallel_again = run_with_threads(4);
  expect_identical(serial, parallel);
  expect_identical(parallel, parallel_again);
}

// al_curve is the single-row special case of the engine's seed derivation: a
// one-mode grid must reproduce it bit-for-bit.
TEST_F(SweepTest, SingleRowGridMatchesAlCurve) {
  // Serial reference: manual clone + prepare, then al_curve.
  models::Model manual = models::clone_model(*model_, 0.125f, 16);
  auto manual_backend = hw::make_backend("sram:sites=2,num_8t=2,vdd=0.6");
  manual_backend->prepare(manual);
  const std::vector<float> eps{0.f, 0.1f, 0.2f};
  const auto reference =
      al_curve("SH", *model_->net, manual_backend->module(), data_->test,
               "fgsm", eps);

  SweepGrid grid;
  grid.model = model_;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &data_->test;
  grid.backends.push_back({"ideal", "ideal"});
  grid.backends.push_back({"sram", "sram:sites=2,num_8t=2,vdd=0.6"});
  grid.modes.push_back({"SH", "ideal", "sram"});
  grid.attacks.push_back({"fgsm", eps});
  SweepEngine::Options opt;
  opt.threads = 3;
  SweepEngine engine(opt);
  const auto curve = engine.run(grid).curve("SH", "fgsm");

  ASSERT_EQ(curve.points.size(), reference.points.size());
  for (size_t i = 0; i < curve.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve.points[i].clean_acc, reference.points[i].clean_acc)
        << "eps " << eps[i];
    EXPECT_DOUBLE_EQ(curve.points[i].adv_acc, reference.points[i].adv_acc)
        << "eps " << eps[i];
  }
}

// Defense-wrapped arms (inference-time wrapper around a noisy backend)
// replicate deterministically: the wrapper is re-applied per lane and its
// noise streams pin through the same per-pass reseeding as the hardware
// hooks.
TEST_F(SweepTest, DefenseArmsReplicateDeterministically) {
  SweepGrid grid;
  grid.model = model_;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &data_->test;
  grid.trials = 2;
  grid.backends.push_back(
      {"wrapped", "sram:sites=1,num_8t=4", "jpeg_quant:bits=4"});
  grid.backends.push_back({"ideal", "ideal"});
  grid.modes.push_back({"SH", "ideal", "wrapped"});
  grid.attacks.push_back({"fgsm", {0.15f}});

  SweepEngine::Options serial_opt;
  serial_opt.threads = 1;
  SweepEngine::Options parallel_opt;
  parallel_opt.threads = 4;
  SweepEngine serial_engine(serial_opt);
  SweepEngine parallel_engine(parallel_opt);
  const auto a = serial_engine.run(grid);
  const auto b = parallel_engine.run(grid);
  expect_identical(a, b);
}

TEST_F(SweepTest, MalformedGridsThrow) {
  SweepGrid grid = make_grid();
  grid.modes.push_back({"bad", "ideal", "nope"});
  SweepEngine engine;
  EXPECT_THROW(engine.run(grid), std::invalid_argument);

  SweepGrid dup = make_grid();
  dup.backends.push_back({"ideal", "ideal"});
  EXPECT_THROW(engine.run(dup), std::invalid_argument);

  SweepGrid no_model = make_grid();
  no_model.model = nullptr;
  EXPECT_THROW(engine.run(no_model), std::invalid_argument);

  SweepGrid no_spec = make_grid();
  no_spec.backends.push_back({"empty", ""});
  EXPECT_THROW(engine.run(no_spec), std::invalid_argument);

  // Defense specs are validated up front with the registry's token-naming
  // error, exactly like attack specs.
  SweepGrid bad_defense = make_grid();
  bad_defense.backends.push_back({"d", "ideal", "smooth:sgima=0.25"});  // rhw-lint: allow(spec) stale on purpose
  try {
    engine.run(bad_defense);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sgima"), std::string::npos)
        << e.what();
  }

  // A training-time defense arm without grid.train_data fails fast.
  SweepGrid no_train = make_grid();
  no_train.backends.push_back({"at", "ideal", "adv_train:epochs=1"});
  no_train.modes.push_back({"AT", "at", "at"});
  EXPECT_THROW(engine.run(no_train), std::invalid_argument);

  // ... and so does a calibration-hungry defense arm without a calibration
  // set — up front, not mid-grid from a worker lane.
  SweepGrid no_calib = make_grid();
  no_calib.backends.push_back({"q", "ideal", "quanos:samples=8"});
  no_calib.modes.push_back({"Q", "q", "q"});
  EXPECT_THROW(engine.run(no_calib), std::invalid_argument);
}

TEST_F(SweepTest, EngineExposesPrototypeBackends) {
  SweepEngine engine;
  (void)engine.run(make_grid());
  ASSERT_NE(engine.backend("xbar"), nullptr);
  EXPECT_EQ(engine.backend("xbar")->name(), "xbar");
  EXPECT_TRUE(engine.backend("xbar")->prepared());
  EXPECT_EQ(engine.backend("unknown"), nullptr);
}

TEST_F(SweepTest, WriteJsonEmitsCellsAndAggregates) {
  SweepEngine engine;
  const auto result = engine.run(make_grid());
  const auto path =
      (std::filesystem::temp_directory_path() / "rhw_sweep_test.json")
          .string();
  result.write_json(path, "sweep_test");
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"schema\":\"rhw-sweep-v4\""), std::string::npos);
  // v4: hand-built grids carry a null experiment stamp; driver runs embed
  // the preset + reproducing command (tests/exp/test_experiment_registry).
  EXPECT_NE(json.find("\"experiment\":null"), std::string::npos);
  EXPECT_NE(json.find("\"attack_names\""), std::string::npos);
  EXPECT_NE(json.find("\"figure\":\"sweep_test\""), std::string::npos);
  EXPECT_NE(json.find("\"SH-sram\""), std::string::npos);
  EXPECT_NE(json.find("\"al_ci95\""), std::string::npos);
  // v3: self-describing backend arms + certified-radius columns.
  EXPECT_NE(json.find("\"backends\""), std::string::npos);
  EXPECT_NE(json.find("\"defense\":\"none\""), std::string::npos);
  EXPECT_NE(json.find("\"mode_defs\""), std::string::npos);
  EXPECT_NE(json.find("\"cert_radius\""), std::string::npos);
  EXPECT_NE(json.find("\"cert_mean\""), std::string::npos);
  size_t cell_count = 0;
  for (size_t pos = 0; (pos = json.find("\"trial\":", pos)) != std::string::npos;
       ++pos) {
    ++cell_count;
  }
  EXPECT_EQ(cell_count, result.cells.size());
  std::remove(path.c_str());
}

// The stochastic-aware attacks reseed (EOT-PGD) or query (Square) the eval
// net while crafting; the per-batch measurement re-pinning in
// adversarial_accuracy must keep their sweep cells bit-identical at any lane
// count, exactly like the gradient attacks.
TEST_F(SweepTest, StochasticAwareAttacksBitIdenticalAcrossLanes) {
  SweepGrid grid;
  grid.model = model_;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &data_->test;
  grid.base.batch_size = 16;
  grid.backends.push_back({"ideal", "ideal"});
  grid.backends.push_back({"sram", "sram:sites=2,num_8t=2,vdd=0.6"});
  grid.modes.push_back({"SH", "ideal", "sram"});
  grid.modes.push_back({"HH", "sram", "sram"});
  grid.attacks.push_back({"eot_pgd:steps=2,samples=2", {0.1f}});
  grid.attacks.push_back({"square:queries=10", {0.1f}});
  grid.attacks.push_back({"mifgsm:steps=2", {0.1f}});

  SweepEngine::Options serial_opt;
  serial_opt.threads = 1;
  SweepEngine::Options parallel_opt;
  parallel_opt.threads = 4;
  SweepEngine serial_engine(serial_opt);
  SweepEngine parallel_engine(parallel_opt);
  const auto a = serial_engine.run(grid);
  const auto b = parallel_engine.run(grid);
  expect_identical(a, b);
}

// A typo'd attack spec must fail the run up front with the registry's
// token-naming error, not abort mid-grid from a worker lane.
TEST_F(SweepTest, MalformedAttackSpecThrowsBeforeEvaluating) {
  SweepGrid grid = make_grid();
  grid.attacks.push_back({"pgd:stpes=7", {0.1f}});  // rhw-lint: allow(spec) stale on purpose
  SweepEngine engine;
  try {
    engine.run(grid);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stpes"), std::string::npos)
        << e.what();
  }

  SweepGrid unknown = make_grid();
  unknown.attacks.push_back({"cw", {0.1f}});
  EXPECT_THROW(engine.run(unknown), std::invalid_argument);
}

// curve() matches attack arms through the registry grammar, not verbatim
// text: trailing commas, reordered knobs and empty items all resolve to the
// same row; a genuine miss names the offending spec and the grid's rows.
TEST_F(SweepTest, CurveNormalizesAttackSpecs) {
  SweepGrid grid;
  grid.model = model_;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &data_->test;
  grid.base.batch_size = 16;
  grid.backends.push_back({"ideal", "ideal"});
  grid.modes.push_back({"SW", "ideal", "ideal"});
  grid.attacks.push_back({"pgd:steps=2,alpha=0.02", {0.1f}});
  SweepEngine engine;
  const auto result = engine.run(grid);

  const auto exact = result.curve("SW", "pgd:steps=2,alpha=0.02");
  const auto trailing = result.curve("SW", "pgd:steps=2,alpha=0.02,");
  const auto reordered = result.curve("SW", "pgd:alpha=0.02,steps=2");
  ASSERT_EQ(exact.points.size(), 1u);
  EXPECT_DOUBLE_EQ(trailing.points[0].adv_acc, exact.points[0].adv_acc);
  EXPECT_DOUBLE_EQ(reordered.points[0].adv_acc, exact.points[0].adv_acc);

  // A genuine miss is a token-naming error listing the grid's rows.
  try {
    (void)result.curve("SW", "pgd:steps=7");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pgd:steps=7"), std::string::npos) << what;
    EXPECT_NE(what.find("pgd:steps=2,alpha=0.02"), std::string::npos) << what;
  }
  try {
    (void)result.curve("nope", "pgd:steps=2,alpha=0.02");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos)
        << e.what();
  }
}

TEST(SweepSeeds, DerivationIsCoordinateStable) {
  const uint64_t base = 0xADE5;
  EXPECT_EQ(sweep_cell_seed(base, 1, 2, 3, 0), sweep_cell_seed(base, 1, 2, 3, 0));
  EXPECT_NE(sweep_cell_seed(base, 0, 0, 0, 0), sweep_cell_seed(base, 1, 0, 0, 0));
  EXPECT_NE(sweep_cell_seed(base, 0, 0, 0, 0), sweep_cell_seed(base, 0, 1, 0, 0));
  EXPECT_NE(sweep_cell_seed(base, 0, 0, 0, 0), sweep_cell_seed(base, 0, 0, 1, 0));
  EXPECT_NE(sweep_cell_seed(base, 0, 0, 0, 0), sweep_cell_seed(base, 0, 0, 0, 1));
  EXPECT_NE(sweep_clean_seed(base, 0), sweep_clean_seed(base, 1));
  // Nearby base seeds decorrelate (the old additive scheme collided).
  EXPECT_NE(sweep_cell_seed(base, 0, 0, 0, 0),
            sweep_cell_seed(base + 0x9E37, 0, 0, 0, 0));
}

}  // namespace
}  // namespace rhw::exp
