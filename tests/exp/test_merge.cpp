// rhw_merge's artifact layer: load -> merge -> rewrite round-trips, the
// negative paths (mismatched canonical spec / engine stamp, duplicate cells,
// pre-v4 schemas, incomplete unions — each a token-precise error), and the
// order-independence of compute_aggregates that makes merging sound.
#include "exp/artifact.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "data/synth_cifar.hpp"
#include "exp/experiment_registry.hpp"
#include "exp/sweep.hpp"
#include "models/zoo.hpp"

namespace rhw::exp {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::string payload(const SweepResult& result, const std::string& figure) {
  std::ostringstream os;
  result.write_json(os, figure, /*payload_only=*/true);
  return os.str();
}

TEST(ParseJson, KeepsRawNumberTextForFullWidthSeeds) {
  const auto doc = parse_json(
      R"({"seed":12038779482742973907,"f":46.899999999999999,"neg":-3})");
  EXPECT_EQ(doc.at("seed").number_u64(), 12038779482742973907ull);
  EXPECT_EQ(doc.at("f").number(), 46.899999999999999);
  EXPECT_EQ(doc.at("neg").number_i64(), -3);
  EXPECT_THROW((void)parse_json("{\"torn\":tru"), std::runtime_error);
  EXPECT_THROW((void)parse_json("{} trailing"), std::runtime_error);
}

// One small engine run with a stamp: the source of every artifact below.
class MergeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 4;
    dcfg.test_per_class = 12;
    dcfg.image_size = 16;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));
    model_ = new models::Model(models::build_model("vgg8", 4, 0.125f, 16));
    model_->net->set_training(false);

    SweepGrid grid;
    grid.model = model_;
    grid.width_mult = 0.125f;
    grid.in_size = 16;
    grid.eval_set = &data_->test;
    grid.base.batch_size = 16;
    grid.trials = 2;
    grid.backends.push_back({"ideal", "ideal"});
    grid.backends.push_back({"sram", "sram:sites=2,num_8t=2,vdd=0.6"});
    grid.modes.push_back({"Attack-SW", "ideal", "ideal"});
    grid.modes.push_back({"SH-sram", "ideal", "sram"});
    grid.attacks.push_back({"fgsm", {0.f, 0.1f}});
    SweepEngine::Options opt;
    opt.threads = 2;
    SweepEngine engine(opt);
    full_ = new SweepResult(engine.run(grid));
    full_->experiment = make_stamp();
  }
  static void TearDownTestSuite() {
    delete full_;
    delete model_;
    delete data_;
    full_ = nullptr;
    model_ = nullptr;
    data_ = nullptr;
  }

  static ExperimentStamp make_stamp() {
    ExperimentStamp stamp;
    stamp.preset = "merge_unit";
    stamp.canonical = {"panels+=vgg8/tiny", "engine=blocked:bk=64,bn=64",
                       "trials=2", "seed=12345", "out=BENCH_merge_unit.json"};
    return stamp;
  }

  // Writes the cells with index % count == index as one shard artifact.
  static std::string write_shard(const std::string& name, size_t index,
                                 size_t count) {
    SweepResult shard = *full_;
    shard.cells.clear();
    for (const auto& cell : full_->cells) {
      if (cell.index % count == index) shard.cells.push_back(cell);
    }
    shard.aggregates = compute_aggregates(shard);
    shard.experiment.shard_index = index;
    shard.experiment.shard_count = count;
    const std::string path = temp_path(name);
    shard.write_json(path, "merge_test");
    return path;
  }

  static data::SynthCifar* data_;
  static models::Model* model_;
  static SweepResult* full_;
};

data::SynthCifar* MergeTest::data_ = nullptr;
models::Model* MergeTest::model_ = nullptr;
SweepResult* MergeTest::full_ = nullptr;

TEST_F(MergeTest, LoadRoundTripsTheFullArtifact) {
  const std::string path = temp_path("rhw_merge_full.json");
  full_->write_json(path, "merge_test");
  const SweepArtifact loaded = load_sweep_artifact(path);
  EXPECT_EQ(loaded.figure, "merge_test");
  EXPECT_EQ(loaded.result.experiment.preset, "merge_unit");
  EXPECT_EQ(loaded.result.cells_total, full_->cells.size());
  // The acceptance property behind --payload: load -> rewrite is
  // byte-stable (raw number text + %.17g round-trip).
  EXPECT_EQ(payload(loaded.result, loaded.figure),
            payload(*full_, "merge_test"));
  fs::remove(path);
}

TEST_F(MergeTest, MergingShardsReproducesThePayloadByteForByte) {
  const std::string a = write_shard("rhw_merge_s0.json", 0, 2);
  const std::string b = write_shard("rhw_merge_s1.json", 1, 2);
  std::string figure;
  const SweepResult merged =
      merge_artifacts({load_sweep_artifact(a), load_sweep_artifact(b)},
                      &figure);
  EXPECT_EQ(figure, "merge_test");
  EXPECT_EQ(payload(merged, figure), payload(*full_, "merge_test"));
  // The merged stamp: full grid again, provenance kept, per-shard out=
  // dropped so a re-run reproduces the *unsharded* artifact.
  EXPECT_EQ(merged.experiment.shard_count, 1u);
  EXPECT_EQ(merged.experiment.merged_shards, 2u);
  for (const auto& token : merged.experiment.canonical) {
    EXPECT_EQ(token.rfind("out=", 0), std::string::npos) << token;
  }
  fs::remove(a);
  fs::remove(b);
}

TEST_F(MergeTest, ShardOrderDoesNotMatter) {
  const std::string a = write_shard("rhw_merge_o0.json", 0, 2);
  const std::string b = write_shard("rhw_merge_o1.json", 1, 2);
  const SweepResult merged =
      merge_artifacts({load_sweep_artifact(b), load_sweep_artifact(a)});
  EXPECT_EQ(payload(merged, "merge_test"), payload(*full_, "merge_test"));
  fs::remove(a);
  fs::remove(b);
}

TEST_F(MergeTest, MismatchedCanonicalSpecRefuses) {
  const std::string a = write_shard("rhw_merge_c0.json", 0, 2);
  const std::string b = temp_path("rhw_merge_c1.json");
  {
    SweepResult other = *full_;
    other.cells.erase(
        std::remove_if(other.cells.begin(), other.cells.end(),
                       [](const SweepCell& c) { return c.index % 2 == 0; }),
        other.cells.end());
    other.experiment.shard_index = 1;
    other.experiment.shard_count = 2;
    other.experiment.canonical[2] = "trials=3";  // not the same experiment
    other.write_json(b, "merge_test");
  }
  try {
    (void)merge_artifacts({load_sweep_artifact(a), load_sweep_artifact(b)});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("canonical spec mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("trials=2"), std::string::npos) << what;
    EXPECT_NE(what.find("trials=3"), std::string::npos) << what;
  }
  fs::remove(a);
  fs::remove(b);
}

TEST_F(MergeTest, MismatchedEngineStampRefusesBeforeSpecDiff) {
  const std::string a = write_shard("rhw_merge_e0.json", 0, 2);
  const std::string b = temp_path("rhw_merge_e1.json");
  {
    SweepResult other = *full_;
    other.cells.erase(
        std::remove_if(other.cells.begin(), other.cells.end(),
                       [](const SweepCell& c) { return c.index % 2 == 0; }),
        other.cells.end());
    other.experiment.shard_index = 1;
    other.experiment.shard_count = 2;
    other.experiment.canonical[1] = "engine=simd:mr=8,nr=8";
    other.write_json(b, "merge_test");
  }
  try {
    (void)merge_artifacts({load_sweep_artifact(a), load_sweep_artifact(b)});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("engine stamp mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("engine=blocked:bk=64,bn=64"), std::string::npos) << what;
    EXPECT_NE(what.find("engine=simd:mr=8,nr=8"), std::string::npos) << what;
  }
  fs::remove(a);
  fs::remove(b);
}

TEST_F(MergeTest, DuplicateCellsRefuse) {
  const std::string a = write_shard("rhw_merge_d0.json", 0, 2);
  try {
    (void)merge_artifacts({load_sweep_artifact(a), load_sweep_artifact(a)});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate cell index"),
              std::string::npos)
        << e.what();
  }
  fs::remove(a);
}

TEST_F(MergeTest, IncompleteUnionRefusesNamingTheMissingCell) {
  const std::string a = write_shard("rhw_merge_i0.json", 0, 2);
  try {
    (void)merge_artifacts({load_sweep_artifact(a)});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("merge incomplete: missing cell index 1"),
              std::string::npos)
        << what;
  }
  fs::remove(a);
}

TEST_F(MergeTest, PreV4SchemaRefusesByName) {
  const std::string path = temp_path("rhw_merge_v3.json");
  full_->write_json(path, "merge_test");
  std::string text = read_file(path);
  const size_t pos = text.find("rhw-sweep-v4");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 12, "rhw-sweep-v3");
  {
    std::ofstream os(path, std::ios::trunc);
    os << text;
  }
  try {
    (void)load_sweep_artifact(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rhw-sweep-v3"), std::string::npos) << what;
    EXPECT_NE(what.find("rhw-sweep-v4"), std::string::npos) << what;
  }
  fs::remove(path);
}

TEST_F(MergeTest, StamplessArtifactRefusesToMerge) {
  const std::string path = temp_path("rhw_merge_nostamp.json");
  SweepResult bare = *full_;
  bare.experiment = ExperimentStamp{};
  bare.write_json(path, "merge_test");
  try {
    (void)merge_artifacts({load_sweep_artifact(path)});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no experiment stamp"),
              std::string::npos)
        << e.what();
  }
  fs::remove(path);
}

TEST_F(MergeTest, DiffRendersCanonicalSpecDifference) {
  const std::string a = temp_path("rhw_diff_a.json");
  const std::string b = temp_path("rhw_diff_b.json");
  full_->write_json(a, "merge_test");
  {
    SweepResult other = *full_;
    other.experiment.canonical[2] = "trials=5";
    other.write_json(b, "merge_test");
  }
  const SweepArtifact art_a = load_sweep_artifact(a);
  const SweepArtifact art_b = load_sweep_artifact(b);
  EXPECT_EQ(diff_artifacts(art_a, art_a), "");
  const std::string diff = diff_artifacts(art_a, art_b);
  EXPECT_NE(diff.find("- trials=2"), std::string::npos) << diff;
  EXPECT_NE(diff.find("+ trials=5"), std::string::npos) << diff;
  fs::remove(a);
  fs::remove(b);
}

// Driver-level parity: run a tiny registered preset unsharded and as two
// --shard halves through run_experiment, fuse the shard artifacts, and
// require the merged results payload byte-identical to the single-process
// artifact — the in-tree version of CI's 3-shard fig8bc step.
TEST(MergeDriver, ShardedRunsMergeToTheSingleProcessPayload) {
  const std::string out =
      temp_path("rhw_merge_driver/BENCH_merge_driver.json");
  fs::remove_all(fs::path(out).parent_path());
  ExperimentRegistry::instance().add("merge_driver_unit", [out] {
    ExperimentSpec spec;
    spec.title = "shard/merge driver unit";
    spec.panels.push_back(
        {"vgg8:width=0.125,in=16", "tiny:classes=4,train=4,test=8,size=16"});
    spec.train = "none";
    spec.eval_count = 16;
    spec.batch = 16;
    spec.trials = 2;
    spec.backends.push_back({"ideal", "ideal"});
    spec.backends.push_back({"sram", "sram:sites=2,num_8t=2,vdd=0.6"});
    spec.modes.push_back({"Attack-SW", "ideal", "ideal"});
    spec.modes.push_back({"SH-sram", "ideal", "sram"});
    spec.attacks.push_back({"fgsm", {0.f, 0.1f}});
    spec.out = out;
    return spec;
  });

  (void)run_experiment("merge_driver_unit");
  RunOptions half;
  half.shard_count = 2;
  for (size_t i = 0; i < 2; ++i) {
    half.shard_index = i;
    const auto results = run_experiment("merge_driver_unit", {}, half);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].experiment.shard_index, i);
    EXPECT_EQ(results[0].experiment.shard_count, 2u);
  }

  const SweepArtifact single = load_sweep_artifact(out);
  const std::string stem = out.substr(0, out.size() - 5);
  const SweepArtifact s0 = load_sweep_artifact(stem + "_shard0of2.json");
  const SweepArtifact s1 = load_sweep_artifact(stem + "_shard1of2.json");
  EXPECT_EQ(s0.result.experiment.command().find("--shard=0/2") !=
                std::string::npos,
            true)
      << s0.result.experiment.command();
  std::string figure;
  const SweepResult merged = merge_artifacts({s0, s1}, &figure);
  EXPECT_EQ(merged.experiment.merged_shards, 2u);
  EXPECT_EQ(payload(merged, figure), payload(single.result, single.figure));
  fs::remove_all(fs::path(out).parent_path());
}

// The ordering regression behind the merge design: aggregates are a pure
// function of the cell *set*. The engine's historical loop assumed
// trial-major storage order; compute_aggregates must not.
TEST_F(MergeTest, ComputeAggregatesIsCellOrderIndependent) {
  SweepResult scrambled = *full_;
  std::reverse(scrambled.cells.begin(), scrambled.cells.end());
  const auto aggs = compute_aggregates(scrambled);
  ASSERT_EQ(aggs.size(), full_->aggregates.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    EXPECT_EQ(aggs[i].mode, full_->aggregates[i].mode);
    EXPECT_EQ(aggs[i].attack, full_->aggregates[i].attack);
    EXPECT_EQ(aggs[i].eps_index, full_->aggregates[i].eps_index);
    EXPECT_EQ(aggs[i].clean.mean, full_->aggregates[i].clean.mean);
    EXPECT_EQ(aggs[i].clean.ci95, full_->aggregates[i].clean.ci95);
    EXPECT_EQ(aggs[i].adv.mean, full_->aggregates[i].adv.mean);
    EXPECT_EQ(aggs[i].al.mean, full_->aggregates[i].al.mean);
    EXPECT_EQ(aggs[i].cert.mean, full_->aggregates[i].cert.mean);
  }
}

}  // namespace
}  // namespace rhw::exp
