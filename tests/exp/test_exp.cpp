#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/rng.hpp"
#include "exp/al_runner.hpp"
#include "exp/table_printer.hpp"
#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace rhw::exp {
namespace {

TEST(TablePrinter, CsvRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "rhw_table_test.csv").string();
  TablePrinter t({"a", "b"});
  t.add_row({"1", "hello"});
  t.add_row({"2", "with,comma"});
  t.add_row({"3", "with\"quote"});
  t.write_csv(path);
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "a,b");
  std::getline(is, line);
  EXPECT_EQ(line, "1,hello");
  std::getline(is, line);
  EXPECT_EQ(line, "2,\"with,comma\"");
  std::getline(is, line);
  EXPECT_EQ(line, "3,\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_EQ(t.num_rows(), 1u);
  t.print();  // must not crash
}

TEST(TablePrinter, Fmt) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 3), "-0.500");
}

TEST(TablePrinter, EvalCountEnvOverride) {
  setenv("RHW_EVAL_COUNT", "37", 1);
  EXPECT_EQ(eval_count(256), 37);
  unsetenv("RHW_EVAL_COUNT");
  setenv("RHW_FAST", "1", 1);
  EXPECT_EQ(eval_count(256), 64);
  unsetenv("RHW_FAST");
  EXPECT_EQ(eval_count(256), 256);
}

TEST(AlRunner, EpsilonGridsMatchPaper) {
  const auto fe = fgsm_epsilons();
  ASSERT_EQ(fe.size(), 7u);
  EXPECT_EQ(fe.front(), 0.f);
  EXPECT_FLOAT_EQ(fe.back(), 0.3f);
  const auto pe = pgd_epsilons();
  ASSERT_EQ(pe.size(), 6u);
  EXPECT_FLOAT_EQ(pe[1], 2.f / 255.f);
  EXPECT_FLOAT_EQ(pe.back(), 32.f / 255.f);
}

TEST(AlRunner, ZeroEpsilonPointHasZeroAl) {
  nn::Sequential net;
  net.emplace<nn::Linear>(4, 3);
  rhw::RandomEngine rng(1);
  nn::kaiming_init(net, rng);
  net.set_training(false);

  data::Dataset ds;
  ds.images = Tensor::rand_uniform({12, 4}, rng);
  ds.images.reshape_inplace({12, 4});
  ds.num_classes = 3;
  for (int i = 0; i < 12; ++i) ds.labels.push_back(i % 3);
  // Dataset::slice expects rank-4 images; reshape to [N,1,2,2].
  ds.images.reshape_inplace({12, 1, 2, 2});

  nn::Sequential wrapper;  // flatten then the linear net would be overkill;
  // instead evaluate with a flatten stage.
  auto& flat = wrapper.emplace<nn::Flatten>();
  (void)flat;
  wrapper.emplace<nn::Linear>(4, 3);
  nn::kaiming_init(wrapper, rng);
  wrapper.set_training(false);

  const std::vector<float> eps{0.f, 0.1f};
  const auto curve = al_curve("test", wrapper, wrapper, ds, "fgsm", eps);
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.points[0].al, 0.0);
  EXPECT_DOUBLE_EQ(curve.points[0].clean_acc, curve.points[0].adv_acc);
  EXPECT_GE(curve.points[1].al, 0.0 - 1e-9);
  EXPECT_EQ(curve.label, "test");
}

TEST(AlRunner, CleanAccuracyConstantAcrossEpsilons) {
  rhw::RandomEngine rng(2);
  nn::Sequential net;
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(4, 2);
  nn::kaiming_init(net, rng);
  net.set_training(false);
  data::Dataset ds;
  ds.images = Tensor::rand_uniform({8, 1, 2, 2}, rng);
  ds.num_classes = 2;
  for (int i = 0; i < 8; ++i) ds.labels.push_back(i % 2);
  const std::vector<float> eps{0.05f, 0.1f, 0.2f};
  const auto curve = al_curve("x", net, net, ds, "fgsm", eps);
  for (const auto& pt : curve.points) {
    EXPECT_DOUBLE_EQ(pt.clean_acc, curve.points[0].clean_acc);
    EXPECT_NEAR(pt.al, pt.clean_acc - pt.adv_acc, 1e-9);
  }
}

}  // namespace
}  // namespace rhw::exp
