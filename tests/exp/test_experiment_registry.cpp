// The fourth seam's contract: preset resolution, override semantics
// (key=value, axis+=item), parse-error parity with the hw/attack/defense
// registries, and golden grid-expansion tests asserting that the fig5 and
// fig8bc presets expand to exactly the grids their pre-redesign bench
// binaries assembled by hand.
#include "exp/experiment_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/al_runner.hpp"
#include "hw/registry.hpp"
#include "hw/xbar_backend.hpp"

namespace rhw::exp {
namespace {

bool fast_mode() {
  const char* env = std::getenv("RHW_FAST");
  return env != nullptr && *env != '\0' && *env != '0';
}

TEST(ExperimentRegistry, RegistersEveryFigureTableAndExample) {
  auto& registry = ExperimentRegistry::instance();
  for (const char* name :
       {"fig5", "fig5w", "fig6", "fig7", "fig8a", "fig8bc", "fig_cert",
        "table1", "table2", "table3", "shootout", "obfuscation_audit",
        "sweep_smoke", "serve_smoke", "serve_curve", "ablation_adaptive",
        "ablation_chip_variation"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    // Resolution + full validation against the three live registries — the
    // same check `rhw_run --list` runs in CI.
    EXPECT_NO_THROW(registry.preset(name).validate()) << name;
  }
}

// Unknown presets fail with the same error shape as the other three
// registries: the offending token plus the registered keys.
TEST(ExperimentRegistry, UnknownPresetNamesTokenAndListsKeys) {
  try {
    (void)ExperimentRegistry::instance().preset("fig9");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fig9"), std::string::npos) << what;
    EXPECT_NE(what.find("registered:"), std::string::npos) << what;
    EXPECT_NE(what.find("fig8bc"), std::string::npos) << what;
  }
}

// -- override semantics -------------------------------------------------------

TEST(ExperimentOverrides, ScalarAndListOverrides) {
  ExperimentSpec spec = ExperimentRegistry::instance().preset("sweep_smoke");
  spec.apply_override("trials=5");
  spec.apply_override("seed=99");
  spec.apply_override("batch=16");
  EXPECT_EQ(spec.trials, 5);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.batch, 16);

  const size_t arms = spec.backends.size();
  spec.apply_override("backends+=xbar:rmin=1e5+smooth:sigma=0.25");
  ASSERT_EQ(spec.backends.size(), arms + 1);
  const ExperimentBackend& added = spec.backends.back();
  EXPECT_EQ(added.key, "xbar+smooth");  // auto key: hw key + defense key
  EXPECT_EQ(added.hw, "xbar:rmin=1e5");
  EXPECT_EQ(added.defense, "smooth:sigma=0.25");
  EXPECT_FALSE(added.calibrate);
  spec.apply_override("modes+=SH-smooth=ideal/xbar+smooth");
  EXPECT_EQ(spec.modes.back().grad, "ideal");
  EXPECT_EQ(spec.modes.back().eval, "xbar+smooth");
  spec.apply_override("attacks+=pgd:steps=3@0.05,0.1");
  EXPECT_EQ(spec.attacks.back().spec, "pgd:steps=3");
  ASSERT_EQ(spec.attacks.back().epsilons.size(), 2u);
  EXPECT_FLOAT_EQ(spec.attacks.back().epsilons[1], 0.1f);
  EXPECT_NO_THROW(spec.validate());

  // axis= replaces; axis= with an empty value clears.
  spec.apply_override("attacks=fgsm@fgsm-grid");
  ASSERT_EQ(spec.attacks.size(), 1u);
  EXPECT_EQ(spec.attacks[0].epsilons, fgsm_epsilons());
  spec.apply_override("modes=");
  EXPECT_TRUE(spec.modes.empty());
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // no modes left
}

// The numeric-'+' edge: "rmin=1e+5" keeps its plus; only '+<letter>' starts
// a defense spec. "@calib" hands the arm the calibration set.
TEST(ExperimentOverrides, BackendItemGrammar) {
  const ExperimentBackend plain = parse_backend_item("xbar:rmin=1e+5");
  EXPECT_EQ(plain.hw, "xbar:rmin=1e+5");
  EXPECT_TRUE(plain.defense.empty());
  EXPECT_EQ(plain.key, "xbar");

  const ExperimentBackend keyed =
      parse_backend_item("noisy=sram:vdd=0.68,eval_count=150@calib");
  EXPECT_EQ(keyed.key, "noisy");
  EXPECT_EQ(keyed.hw, "sram:vdd=0.68,eval_count=150");
  EXPECT_TRUE(keyed.calibrate);

  const ExperimentBackend composed =
      parse_backend_item("xbar:rmin=1e+5+smooth:sigma=0.25");
  EXPECT_EQ(composed.hw, "xbar:rmin=1e+5");
  EXPECT_EQ(composed.defense, "smooth:sigma=0.25");

  EXPECT_THROW(parse_backend_item("ideal@wat"), std::invalid_argument);
  EXPECT_THROW(parse_backend_item(""), std::invalid_argument);
}

// Error parity with the other registries: every failure names the offending
// token.
TEST(ExperimentOverrides, ErrorsNameTheOffendingToken) {
  ExperimentSpec spec = ExperimentRegistry::instance().preset("sweep_smoke");
  try {
    spec.apply_override("trils=5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("trils"), std::string::npos)
        << e.what();
  }
  try {
    spec.apply_override("trials=abc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos)
        << e.what();
  }
  // A typo'd defense knob surfaces the DefenseRegistry's token-naming error
  // at validate() time, exactly like SweepEngine::run does for hand-built
  // grids.
  spec.apply_override("backends+=d=ideal+smooth:sgima=0.25");
  try {
    spec.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sgima"), std::string::npos)
        << e.what();
  }
  spec.apply_override("backends=");
  spec.apply_override("backends+=ideal");
  spec.apply_override("modes=SW=ideal");
  spec.apply_override("attacks+=pgd:stpes=7@0.1");
  try {
    spec.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stpes"), std::string::npos)
        << e.what();
  }
}

// The engine= knob routes the whole run through one core::EngineRegistry
// spec; unknown tokens fail at override time with the engine registry's own
// token-naming error.
TEST(ExperimentOverrides, EngineKnobValidatesAndRoundTrips) {
  ExperimentSpec spec = ExperimentRegistry::instance().preset("sweep_smoke");
  EXPECT_TRUE(spec.engine.empty());  // presets defer to $RHW_ENGINE

  spec.apply_override("engine=simd:mr=8,nr=8");
  EXPECT_EQ(spec.engine, "simd:mr=8,nr=8");
  EXPECT_NO_THROW(spec.validate());
  const auto args = spec.to_args();
  EXPECT_TRUE(std::find(args.begin(), args.end(), "engine=simd:mr=8,nr=8") !=
              args.end());

  // engine= with an empty value restores the deferred default, and the token
  // then disappears from the canonical serialization.
  spec.apply_override("engine=");
  EXPECT_TRUE(spec.engine.empty());
  for (const auto& token : spec.to_args()) {
    EXPECT_TRUE(token.rfind("engine=", 0) != 0) << token;
  }

  try {
    spec.apply_override("engine=cublas");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown compute engine"), std::string::npos) << what;
    EXPECT_NE(what.find("cublas"), std::string::npos) << what;
  }
  EXPECT_THROW(spec.apply_override("engine=simd:mr=3"), std::invalid_argument);
  // A stale engine token planted directly in the spec is caught by the same
  // up-front validate() that vets hw/defense/attack specs.
  spec.engine = "blocked:bk=0";  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

// The serving knobs (serve=, qps=, requests=, batch_max=, linger_us=,
// lanes=) follow the same override + token-naming error contract, and
// serve=1 relaxes validate()'s modes/attacks requirements.
TEST(ExperimentOverrides, ServeKnobsValidateAndReportErrors) {
  ExperimentSpec spec = ExperimentRegistry::instance().preset("serve_smoke");
  EXPECT_TRUE(spec.serve);
  EXPECT_TRUE(spec.modes.empty());    // serving mode needs no attack grid
  EXPECT_TRUE(spec.attacks.empty());
  EXPECT_NO_THROW(spec.validate());

  spec.apply_override("qps=250,1e3");
  ASSERT_EQ(spec.qps.size(), 2u);
  EXPECT_FLOAT_EQ(spec.qps[0], 250.f);
  EXPECT_FLOAT_EQ(spec.qps[1], 1000.f);
  spec.apply_override("requests=12");
  spec.apply_override("batch_max=32");
  spec.apply_override("linger_us=500");
  spec.apply_override("lanes=3");
  EXPECT_EQ(spec.requests, 12);
  EXPECT_EQ(spec.batch_max, 32);
  EXPECT_EQ(spec.linger_us, 500);
  EXPECT_EQ(spec.lanes, 3);
  EXPECT_NO_THROW(spec.validate());

  try {
    spec.apply_override("qps=100,abc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(spec.apply_override("qps=0"), std::invalid_argument);
  EXPECT_THROW(spec.apply_override("qps="), std::invalid_argument);
  EXPECT_THROW(spec.apply_override("requests=0"), std::invalid_argument);
  EXPECT_THROW(spec.apply_override("batch_max=0"), std::invalid_argument);
  EXPECT_THROW(spec.apply_override("linger_us=-1"), std::invalid_argument);

  // Dropping back to sweep mode re-arms the modes/attacks requirements: a
  // serve preset has neither, so validate() fails again.
  spec.apply_override("serve=0");
  EXPECT_FALSE(spec.serve);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ExperimentOverrides, ModelAndDatasetRewriteEveryPanel) {
  ExperimentSpec spec = ExperimentRegistry::instance().preset("fig6");
  spec.apply_override("model=vgg16");
  spec.apply_override("dataset=synth-c100");
  ASSERT_EQ(spec.panels.size(), 1u);
  EXPECT_EQ(spec.panels[0].arch, "vgg16");
  EXPECT_EQ(spec.panels[0].dataset, "synth-c100");
  // ... which is exactly fig7's grid.
  const ExperimentSpec fig7 = ExperimentRegistry::instance().preset("fig7");
  EXPECT_EQ(spec.panels, fig7.panels);
  EXPECT_EQ(spec.backends, fig7.backends);
  EXPECT_EQ(spec.modes, fig7.modes);
  EXPECT_EQ(spec.attacks, fig7.attacks);
}

// A dataset= override carrying registry knobs and a corruption wrapper must
// survive the to_args() round trip verbatim — the artifact's canonical array
// is how a sharded run is re-assembled, so a lossy serialization would change
// what the resumed shards compute.
TEST(ExperimentOverrides, DatasetOverrideRoundTripsThroughToArgs) {
  ExperimentSpec spec = ExperimentRegistry::instance().preset("sweep_smoke");
  spec.apply_override(
      "dataset=tiny:classes=10,train=4,test=8,size=16"
      "+corrupt:kind=gauss_noise,sev=3");
  EXPECT_NO_THROW(spec.validate());
  ExperimentSpec rebuilt;
  for (const auto& token : spec.to_args()) {
    rebuilt.apply_override(token);
  }
  EXPECT_EQ(rebuilt.panels, spec.panels);
  ASSERT_EQ(rebuilt.panels.size(), 1u);
  EXPECT_EQ(rebuilt.panels[0].dataset,
            "tiny:classes=10,train=4,test=8,size=16"
            "+corrupt:kind=gauss_noise,sev=3");
  // An invalid dataset spec is rejected at override time, not at run time.
  EXPECT_THROW(spec.apply_override("dataset=imagenet"), std::invalid_argument);
  EXPECT_THROW(spec.apply_override("dataset=tiny+corrupt:sev=2"),
               std::invalid_argument);
}

// to_args() is the canonical serialization the v4 artifacts embed: applying
// it to an empty spec reproduces the preset bit-exactly (epsilons included).
TEST(ExperimentOverrides, ToArgsRoundTripsBitExactly) {
  for (const char* name :
       {"fig5", "fig8bc", "fig_cert", "shootout", "sweep_smoke",
        "serve_smoke", "serve_curve"}) {
    const ExperimentSpec original =
        ExperimentRegistry::instance().preset(name);
    ExperimentSpec rebuilt;
    for (const auto& token : original.to_args()) {
      rebuilt.apply_override(token);
    }
    EXPECT_EQ(rebuilt.panels, original.panels) << name;
    EXPECT_EQ(rebuilt.train, original.train) << name;
    EXPECT_EQ(rebuilt.engine, original.engine) << name;
    EXPECT_EQ(rebuilt.eval_count, original.eval_count) << name;
    EXPECT_EQ(rebuilt.backends, original.backends) << name;
    EXPECT_EQ(rebuilt.modes, original.modes) << name;
    EXPECT_EQ(rebuilt.attacks, original.attacks) << name;
    EXPECT_EQ(rebuilt.trials, original.trials) << name;
    EXPECT_EQ(rebuilt.seed, original.seed) << name;
    EXPECT_EQ(rebuilt.batch, original.batch) << name;
    EXPECT_EQ(rebuilt.verify, original.verify) << name;
    EXPECT_EQ(rebuilt.serve, original.serve) << name;
    EXPECT_EQ(rebuilt.qps, original.qps) << name;
    EXPECT_EQ(rebuilt.requests, original.requests) << name;
    EXPECT_EQ(rebuilt.batch_max, original.batch_max) << name;
    EXPECT_EQ(rebuilt.linger_us, original.linger_us) << name;
    EXPECT_EQ(rebuilt.lanes, original.lanes) << name;
    EXPECT_EQ(rebuilt.tag, original.tag) << name;
  }
}

// -- golden grid expansions ---------------------------------------------------
// The acceptance criterion: the presets expand to grids bit-identical to the
// ones the pre-redesign bench binaries assembled imperatively. The expected
// values below are copied from the deleted bench code
// (bench_fig5_sram_al_curves.cpp / bench_fig8bc_defense_comparison.cpp as of
// the PR that introduced the registry).

TEST(ExperimentGolden, Fig5ExpandsToThePreRedesignGrid) {
  const ExperimentSpec spec = ExperimentRegistry::instance().preset("fig5");
  // Panels: arch-outer, dataset-inner loop order of the old bench.
  const std::vector<ExperimentPanel> panels{{"vgg19", "synth-c10"},
                                            {"vgg19", "synth-c100"},
                                            {"resnet18", "synth-c10"},
                                            {"resnet18", "synth-c100"}};
  EXPECT_EQ(spec.panels, panels);
  ASSERT_EQ(spec.backends.size(), 2u);
  EXPECT_EQ(spec.backends[0], (ExperimentBackend{"ideal", "ideal", "", false}));
  EXPECT_EQ(spec.backends[1],
            (ExperimentBackend{"noisy", "sram_selected:vdd=0.68", "", false}));
  ASSERT_EQ(spec.modes.size(), 2u);
  EXPECT_EQ(spec.modes[0], (ExperimentMode{"Baseline", "ideal", "ideal"}));
  EXPECT_EQ(spec.modes[1], (ExperimentMode{"BitErrorNoise", "ideal", "noisy"}));
  ASSERT_EQ(spec.attacks.size(), 1u);
  EXPECT_EQ(spec.attacks[0].spec, "fgsm");
  EXPECT_EQ(spec.attacks[0].epsilons, fgsm_epsilons());  // bitwise
  EXPECT_EQ(spec.trials, 1);
  EXPECT_EQ(spec.seed, 0xADE5u);  // attacks::kDefaultEvalSeed
  EXPECT_EQ(spec.batch, 100);
  EXPECT_EQ(spec.eval_count, 256);
  EXPECT_EQ(spec.train, "zoo");
}

TEST(ExperimentGolden, Fig8bcExpandsToThePreRedesignGrid) {
  const ExperimentSpec spec = ExperimentRegistry::instance().preset("fig8bc");
  // The old bench switched model/dataset on RHW_FAST; the preset factory
  // preserves that.
  ASSERT_EQ(spec.panels.size(), 1u);
  if (fast_mode()) {
    EXPECT_EQ(spec.panels[0], (ExperimentPanel{"vgg8", "synth-c10"}));
  } else {
    EXPECT_EQ(spec.panels[0], (ExperimentPanel{"vgg16", "synth-c100"}));
  }
  const std::vector<ExperimentBackend> backends{
      {"ideal", "ideal", "", false},
      {"x32", "xbar:size=32", "", false},
      {"disc4b", "ideal", "jpeg_quant:bits=4", false},
      {"quanos", "ideal", "quanos:samples=128", true},
      {"smoothed", "ideal", "smooth:sigma=0.1,samples=16", false},
  };
  EXPECT_EQ(spec.backends, backends);
  const std::vector<ExperimentMode> modes{
      {"Attack-SW", "ideal", "ideal"},
      {"SH-Cross32", "ideal", "x32"},
      {"4b-discretization", "disc4b", "disc4b"},
      {"QUANOS", "quanos", "quanos"},
      {"Smooth", "smoothed", "smoothed"},
  };
  EXPECT_EQ(spec.modes, modes);
  ASSERT_EQ(spec.attacks.size(), 2u);
  EXPECT_EQ(spec.attacks[0].spec, "fgsm");
  EXPECT_EQ(spec.attacks[0].epsilons, fgsm_epsilons());
  EXPECT_EQ(spec.attacks[1].spec, "pgd");
  EXPECT_EQ(spec.attacks[1].epsilons, pgd_epsilons());
  EXPECT_EQ(spec.trials, 1);
  EXPECT_EQ(spec.tag, "fig8bc_defense_comparison");

  // The old bench's crossbar arm was bench::xbar_spec(32) =
  // "xbar:size=32,rmin=20000.000000,seed=45232". The preset writes the
  // equivalent minimal spec; assert the constructed hardware is identical.
  const auto from_preset = hw::make_backend(spec.backends[1].hw);
  const auto from_old_bench =
      hw::make_backend("xbar:size=32,rmin=20000.000000,seed=45232");
  const auto* a = dynamic_cast<const hw::XbarBackend*>(from_preset.get());
  const auto* b = dynamic_cast<const hw::XbarBackend*>(from_old_bench.get());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->config().map.spec.rows, b->config().map.spec.rows);
  EXPECT_EQ(a->config().map.spec.cols, b->config().map.spec.cols);
  EXPECT_DOUBLE_EQ(a->config().map.spec.r_min, b->config().map.spec.r_min);
  EXPECT_DOUBLE_EQ(a->config().map.spec.r_max, b->config().map.spec.r_max);
  EXPECT_EQ(a->config().map.seed, b->config().map.seed);
}

// The smoke preset mirrors the old bench_sweep_smoke grid, with verify=1
// standing in for its built-in serial-parity check.
TEST(ExperimentGolden, SweepSmokeKeepsTheStochasticAwareArms) {
  const ExperimentSpec spec =
      ExperimentRegistry::instance().preset("sweep_smoke");
  EXPECT_TRUE(spec.verify);
  EXPECT_EQ(spec.trials, 2);
  EXPECT_EQ(spec.batch, 32);
  EXPECT_EQ(spec.eval_count, 64);
  EXPECT_EQ(spec.train, "none");
  ASSERT_EQ(spec.attacks.size(), 5u);
  EXPECT_EQ(spec.attacks[2].spec, "eot_pgd:steps=2,samples=2");
  EXPECT_EQ(spec.attacks[3].spec, "square:queries=12");
  EXPECT_EQ(spec.attacks[4].spec, "mifgsm:steps=2");
}

// -- section grammar ----------------------------------------------------------

TEST(ExperimentSections, ParseAndReject) {
  const ArchSection arch = parse_arch_section("vgg8:width=0.125,in=16");
  EXPECT_EQ(arch.arch, "vgg8");
  EXPECT_FLOAT_EQ(arch.width_mult, 0.125f);
  EXPECT_EQ(arch.in_size, 16);
  EXPECT_THROW(parse_arch_section("vgg9"), std::invalid_argument);
  EXPECT_THROW(parse_arch_section("vgg8:wdith=0.5"), std::invalid_argument);

  const DatasetSection tiny =
      parse_dataset_section("tiny:classes=4,train=8,test=10,size=16");
  EXPECT_EQ(tiny.tag, "tiny-c4");
  EXPECT_EQ(tiny.key, "tiny");
  EXPECT_EQ(tiny.zoo_tag, "tiny-c4");
  EXPECT_EQ(tiny.canonical, "tiny:classes=4,size=16,test=10,train=8");
  // rhw-lint: allow(spec) stale on purpose — synth-c10 takes no options
  EXPECT_THROW(parse_dataset_section("synth-c10:classes=4"),
               std::invalid_argument);
  EXPECT_THROW(parse_dataset_section("imagenet"), std::invalid_argument);

  // The sixth seam: registry keys resolve (cifar10 validates without disk
  // I/O), and the corruption wrapper parses into tag/zoo_tag/canonical.
  const DatasetSection cifar =
      parse_dataset_section("cifar10:dir=tests/data/fixtures/cifar10");
  EXPECT_EQ(cifar.key, "cifar10");
  EXPECT_EQ(cifar.tag, "cifar10");
  const DatasetSection foggy = parse_dataset_section(
      "tiny:classes=4,train=8,test=10,size=16+corrupt:sev=3,kind=fog");
  EXPECT_EQ(foggy.key, "tiny");
  EXPECT_EQ(foggy.tag, "tiny-c4+fog3");
  EXPECT_EQ(foggy.zoo_tag, "tiny-c4");
  EXPECT_EQ(foggy.canonical,
            "tiny:classes=4,size=16,test=10,train=8+corrupt:kind=fog,sev=3");
  EXPECT_THROW(parse_dataset_section("tiny+corrupt:kind=melt,sev=1"),
               std::invalid_argument);
  EXPECT_THROW(parse_dataset_section("tiny+corrupt:kind=fog,sev=6"),
               std::invalid_argument);

  const TrainSection quick = parse_train_section("quick:epochs=2,batch=25");
  EXPECT_EQ(quick.epochs, 2);
  EXPECT_EQ(quick.batch, 25);
  EXPECT_THROW(parse_train_section("sgd"), std::invalid_argument);
  EXPECT_THROW(parse_train_section("zoo:epochs=2"), std::invalid_argument);

  // zoo training serves default-geometry models on the paper datasets only.
  ExperimentSpec spec = ExperimentRegistry::instance().preset("sweep_smoke");
  spec.apply_override("train=zoo");
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace rhw::exp
