#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/rng.hpp"
#include "models/resnet.hpp"
#include "models/vgg.hpp"
#include "models/zoo.hpp"
#include "nn/init.hpp"

namespace rhw::models {
namespace {

TEST(Vgg, Vgg8ForwardShape) {
  VggConfig cfg;
  cfg.depth = 8;
  cfg.num_classes = 10;
  cfg.width_mult = 0.25f;
  Model m = make_vgg(cfg);
  rhw::RandomEngine rng(1);
  nn::kaiming_init(*m.net, rng);
  m.net->set_training(false);
  const auto y = m.net->forward(Tensor({2, 3, 32, 32}, 0.5f));
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
}

TEST(Vgg, Vgg19SiteLabelsMatchTableI) {
  VggConfig cfg;
  cfg.depth = 19;
  Model m = make_vgg(cfg);
  // Table I: layers 0..20 with pools at 2, 5, 10, 15, 20.
  ASSERT_EQ(m.sites.size(), 21u);
  EXPECT_EQ(m.sites[0].label, "0");
  EXPECT_EQ(m.sites[2].label, "2(P)");
  EXPECT_EQ(m.sites[5].label, "5(P)");
  EXPECT_EQ(m.sites[10].label, "10(P)");
  EXPECT_EQ(m.sites[15].label, "15(P)");
  EXPECT_EQ(m.sites[20].label, "20(P)");
  EXPECT_EQ(m.sites[1].label, "1");
}

TEST(Vgg, Vgg16Has13ConvSites) {
  VggConfig cfg;
  cfg.depth = 16;
  Model m = make_vgg(cfg);
  int convs = 0, pools = 0;
  for (const auto& s : m.sites) {
    if (s.label.find("(P)") != std::string::npos) {
      ++pools;
    } else {
      ++convs;
    }
  }
  EXPECT_EQ(convs, 13);
  EXPECT_EQ(pools, 5);
}

TEST(Vgg, RejectsUnknownDepth) {
  VggConfig cfg;
  cfg.depth = 11;
  EXPECT_THROW(make_vgg(cfg), std::invalid_argument);
}

TEST(Vgg, WidthMultScalesParameters) {
  VggConfig narrow;
  narrow.depth = 8;
  narrow.width_mult = 0.125f;
  VggConfig wide = narrow;
  wide.width_mult = 0.5f;
  EXPECT_LT(make_vgg(narrow).net->num_parameters(),
            make_vgg(wide).net->num_parameters());
}

TEST(ResNet, ForwardShape) {
  ResNetConfig cfg;
  cfg.num_classes = 10;
  cfg.width_mult = 0.25f;
  Model m = make_resnet18(cfg);
  rhw::RandomEngine rng(2);
  nn::kaiming_init(*m.net, rng);
  m.net->set_training(false);
  const auto y = m.net->forward(Tensor({2, 3, 32, 32}, 0.5f));
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
}

TEST(ResNet, HasShortcutSites) {
  Model m = make_resnet18({});
  int shortcut_sites = 0;
  for (const auto& s : m.sites) {
    if (s.label.find("(S)") != std::string::npos) ++shortcut_sites;
  }
  // Three stage transitions have projection shortcuts.
  EXPECT_EQ(shortcut_sites, 3);
  // Stem + 8 blocks x 2 + 3 shortcuts.
  EXPECT_EQ(m.sites.size(), 20u);
}

TEST(ResNet, SitesPointIntoNetwork) {
  Model m = make_resnet18({});
  for (const auto& s : m.sites) ASSERT_NE(s.module, nullptr);
}

TEST(Zoo, BuildModelByName) {
  EXPECT_EQ(build_model("vgg8", 10).name, "vgg8");
  EXPECT_EQ(build_model("vgg16", 100).name, "vgg16");
  EXPECT_EQ(build_model("vgg19", 10).name, "vgg19");
  EXPECT_EQ(build_model("resnet18", 10).name, "resnet18");
  EXPECT_THROW(build_model("alexnet", 10), std::invalid_argument);
}

TEST(Zoo, BuiltModelsHaveDistinctSiteLabels) {
  for (const char* arch : {"vgg8", "vgg16", "vgg19", "resnet18"}) {
    Model m = build_model(arch, 10);
    std::set<std::string> labels;
    for (const auto& s : m.sites) labels.insert(s.label);
    EXPECT_EQ(labels.size(), m.sites.size()) << arch;
  }
}

}  // namespace
}  // namespace rhw::models
