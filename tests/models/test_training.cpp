// Training-loop behaviour on a small synthetic task (fast enough for CI).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "models/zoo.hpp"
#include "nn/init.hpp"
#include "core/serialize.hpp"

namespace rhw::models {
namespace {

data::SynthCifar small_data() {
  data::SynthCifarConfig cfg;
  cfg.num_classes = 4;
  cfg.train_per_class = 40;
  cfg.test_per_class = 10;
  cfg.image_size = 16;
  cfg.noise_std = 0.12f;
  cfg.nuisance_amp = 0.15f;
  return data::make_synth_cifar(cfg);
}

Model small_vgg(int64_t classes) {
  VggConfig cfg;
  cfg.depth = 8;
  cfg.num_classes = classes;
  cfg.in_size = 16;
  cfg.width_mult = 0.125f;
  return make_vgg(cfg);
}

TEST(Training, LearnsSmallTask) {
  auto data = small_data();
  Model model = small_vgg(4);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 40;
  const double acc = train_model(model, data, cfg);
  // Chance is 25%; the easy synthetic task should be well above it.
  EXPECT_GT(acc, 0.7) << "training failed to learn the synthetic task";
}

TEST(Training, EvaluateAccuracyMatchesManualCount) {
  auto data = small_data();
  Model model = small_vgg(4);
  rhw::RandomEngine rng(3);
  nn::kaiming_init(*model.net, rng);
  model.net->set_training(false);
  const double batched = evaluate_accuracy(*model.net, data.test, 7);
  const double whole = evaluate_accuracy(*model.net, data.test, 1000);
  EXPECT_NEAR(batched, whole, 1e-9);
}

TEST(Training, DeterministicGivenSeed) {
  auto data = small_data();
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 40;
  cfg.seed = 42;
  Model a = small_vgg(4);
  Model b = small_vgg(4);
  const double acc_a = train_model(a, data, cfg);
  const double acc_b = train_model(b, data, cfg);
  EXPECT_DOUBLE_EQ(acc_a, acc_b);
}

TEST(Zoo, CacheRoundTrip) {
  // Point the cache at a scratch dir and verify train-once / load-after.
  const auto dir = std::filesystem::temp_directory_path() / "rhw_zoo_test";
  std::filesystem::remove_all(dir);
  setenv("RHW_ZOO_CACHE", dir.c_str(), 1);

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 3;
  dcfg.train_per_class = 30;
  dcfg.test_per_class = 10;
  dcfg.image_size = 16;
  dcfg.noise_std = 0.1f;
  // get_trained builds paper-sized inputs (32x32); give it matching data.
  dcfg.image_size = 32;
  auto data = data::make_synth_cifar(dcfg);

  TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.batch_size = 30;
  const auto first = get_trained("vgg8", "test-tiny", data, tcfg);
  EXPECT_TRUE(rhw::file_exists((dir / "vgg8_test-tiny.ckpt").string()));
  const auto second = get_trained("vgg8", "test-tiny", data, tcfg);
  EXPECT_NEAR(first.test_accuracy, second.test_accuracy, 1e-9);

  unsetenv("RHW_ZOO_CACHE");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rhw::models
