#include "sram/retrain.hpp"

#include <gtest/gtest.h>

namespace rhw::sram {
namespace {

class RetrainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 60;
    dcfg.test_per_class = 25;
    dcfg.image_size = 16;
    dcfg.noise_std = 0.12f;
    dcfg.nuisance_amp = 0.15f;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static models::Model trained_model() {
    models::Model model = models::build_model("vgg8", 4, 0.125f, 16);
    models::TrainConfig tcfg;
    tcfg.epochs = 3;
    tcfg.batch_size = 48;
    models::train_model(model, *data_, tcfg);
    return model;
  }

  static std::vector<SiteChoice> aggressive_selection(
      const models::Model& model) {
    // Heavy noise on the first two sites: enough to visibly dent CA.
    std::vector<SiteChoice> sel;
    for (size_t s = 0; s < 2 && s < model.sites.size(); ++s) {
      SiteChoice c;
      c.site_index = s;
      c.site_label = model.sites[s].label;
      c.word.num_8t = 1;
      sel.push_back(c);
    }
    return sel;
  }

  static data::SynthCifar* data_;
};

data::SynthCifar* RetrainTest::data_ = nullptr;

TEST_F(RetrainTest, ImprovesNoisyCleanAccuracy) {
  auto model = trained_model();
  const auto sel = aggressive_selection(model);
  RetrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 48;
  const auto result = retrain_with_noise(model, *data_, sel, /*vdd=*/0.62,
                                         cfg);
  EXPECT_GE(result.clean_acc_after, result.clean_acc_before - 1.0)
      << "retraining must not destroy accuracy";
  // With heavy noise the paper's claim is an improvement; allow equality for
  // the rare case the initial model is already noise-tolerant.
  EXPECT_GE(result.clean_acc_after + 0.5, result.clean_acc_before);
}

TEST_F(RetrainTest, HooksStayInstalled) {
  auto model = trained_model();
  const auto sel = aggressive_selection(model);
  RetrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 48;
  (void)retrain_with_noise(model, *data_, sel, 0.62, cfg);
  size_t hooked = 0;
  for (const auto& site : model.sites) {
    if (site.module->has_post_hook()) ++hooked;
  }
  EXPECT_EQ(hooked, sel.size());
}

TEST_F(RetrainTest, EmptySelectionIsPlainFineTune) {
  auto model = trained_model();
  RetrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 48;
  const auto result = retrain_with_noise(model, *data_, {}, 0.68, cfg);
  EXPECT_GE(result.clean_acc_after, result.clean_acc_before - 2.0);
}

}  // namespace
}  // namespace rhw::sram
