// Fig. 4 methodology tests on a small trained model.
#include "sram/layer_selector.hpp"

#include <gtest/gtest.h>

#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"

namespace rhw::sram {
namespace {

class SelectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 60;
    dcfg.test_per_class = 30;
    dcfg.image_size = 16;
    dcfg.noise_std = 0.12f;
    dcfg.nuisance_amp = 0.15f;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));

    models::VggConfig mcfg;
    mcfg.depth = 8;
    mcfg.num_classes = 4;
    mcfg.in_size = 16;
    mcfg.width_mult = 0.125f;
    model_ = new models::Model(models::make_vgg(mcfg));
    models::TrainConfig tcfg;
    tcfg.epochs = 3;
    tcfg.batch_size = 48;
    models::train_model(*model_, *data_, tcfg);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }
  static data::SynthCifar* data_;
  static models::Model* model_;
};

data::SynthCifar* SelectorTest::data_ = nullptr;
models::Model* SelectorTest::model_ = nullptr;

SelectorConfig fast_config() {
  SelectorConfig cfg;
  cfg.eval_count = 80;
  cfg.epsilon = 0.12f;
  cfg.batch_size = 80;
  return cfg;
}

TEST_F(SelectorTest, ProducesOneBestChoicePerSite) {
  const auto result = select_layers(*model_, data_->test, fast_config());
  EXPECT_EQ(result.per_site_best.size(), model_->sites.size());
  for (const auto& choice : result.per_site_best) {
    EXPECT_GE(choice.adv_acc, 0.0);
    EXPECT_LE(choice.adv_acc, 100.0);
    EXPECT_GE(choice.word.num_6t(), 1);
    EXPECT_LE(choice.word.num_6t(), 8);
  }
}

TEST_F(SelectorTest, ShortlistRespectsThreshold) {
  const auto cfg = fast_config();
  const auto result = select_layers(*model_, data_->test, cfg);
  for (const auto& choice : result.shortlisted) {
    EXPECT_GT(choice.adv_acc,
              result.baseline_adv_acc + cfg.improvement_threshold);
  }
}

TEST_F(SelectorTest, FinalCombinationNoWorseThanBaseline) {
  const auto result = select_layers(*model_, data_->test, fast_config());
  EXPECT_GE(result.final_adv_acc, result.baseline_adv_acc);
}

TEST_F(SelectorTest, SelectionComesFromShortlist) {
  const auto result = select_layers(*model_, data_->test, fast_config());
  for (const auto& sel : result.selected) {
    bool found = false;
    for (const auto& short_choice : result.shortlisted) {
      if (short_choice.site_index == sel.site_index) found = true;
    }
    EXPECT_TRUE(found) << "selected site " << sel.site_label
                       << " not in shortlist";
  }
}

TEST_F(SelectorTest, HooksClearedAfterSelection) {
  (void)select_layers(*model_, data_->test, fast_config());
  for (const auto& site : model_->sites) {
    EXPECT_FALSE(site.module->has_post_hook());
  }
}

TEST_F(SelectorTest, ApplySelectionInstallsHooks) {
  auto result = select_layers(*model_, data_->test, fast_config());
  if (result.selected.empty()) {
    // Fall back: force-install the best per-site choice to test apply.
    result.selected.push_back(result.per_site_best.front());
  }
  apply_selection(*model_, result.selected, 0.68);
  size_t hooked = 0;
  for (const auto& site : model_->sites) {
    if (site.module->has_post_hook()) ++hooked;
  }
  EXPECT_EQ(hooked, result.selected.size());
  clear_all_site_hooks(*model_);
}

TEST_F(SelectorTest, BaselineSanity) {
  const auto result = select_layers(*model_, data_->test, fast_config());
  EXPECT_GT(result.baseline_clean_acc, 50.0);
  EXPECT_LT(result.baseline_adv_acc, result.baseline_clean_acc);
}

}  // namespace
}  // namespace rhw::sram
