#include "sram/bit_error_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rhw::sram {
namespace {

BitErrorModel zero_ber_model() {
  BitErrorParams p;
  p.six_t_vcrit = -10.0;  // BER floor everywhere
  p.eight_t_vcrit = -10.0;
  return BitErrorModel(p);
}

TEST(Injector, NegligibleBerIsIdentityInPractice) {
  HybridWordConfig w;
  w.num_8t = 4;
  BitErrorInjector inj(w, zero_ber_model(), 1.0);
  rhw::RandomEngine rng(1);
  std::vector<uint8_t> codes(4096);
  for (auto& c : codes) c = static_cast<uint8_t>(rng.next_below(256));
  auto corrupted = codes;
  inj.corrupt_codes(corrupted, rng);
  EXPECT_EQ(codes, corrupted);  // floor BER 1e-15: no flips in 4k words
}

TEST(Injector, FlipsOnlySixTBits) {
  HybridWordConfig w;
  w.num_8t = 4;  // 6T mask = 0x0F
  // Idealized 8T cells (at 0.55 V even real 8T cells fail occasionally, which
  // is physical but not what this test isolates).
  BitErrorParams params;
  params.eight_t_vcrit = -10.0;
  BitErrorModel model(params);
  BitErrorInjector inj(w, model, 0.55);
  rhw::RandomEngine rng(2);
  std::vector<uint8_t> codes(4096, 0b10100000);
  auto corrupted = codes;
  inj.corrupt_codes(corrupted, rng);
  int changed = 0;
  for (size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(corrupted[i] & 0xF0, codes[i] & 0xF0)
        << "8T (MSB) bits must never flip at word " << i;
    if (corrupted[i] != codes[i]) ++changed;
  }
  EXPECT_GT(changed, 100) << "deep voltage scaling should flip many words";
}

TEST(Injector, FlipRateMatchesBer) {
  HybridWordConfig w;
  w.num_8t = 7;  // single 6T bit (bit 0)
  BitErrorModel model;
  const double vdd = 0.62;
  BitErrorInjector inj(w, model, vdd);
  rhw::RandomEngine rng(3);
  const int n = 200000;
  std::vector<uint8_t> codes(n, 0);
  inj.corrupt_codes(codes, rng);
  int flips = 0;
  for (uint8_t c : codes) flips += c & 1;
  const double rate = static_cast<double>(flips) / n;
  EXPECT_NEAR(rate, model.ber_6t(vdd), 0.15 * model.ber_6t(vdd) + 1e-3);
}

TEST(Injector, DeterministicGivenRngSeed) {
  HybridWordConfig w;
  w.num_8t = 3;
  BitErrorInjector inj(w, {}, 0.65);
  std::vector<uint8_t> a(1024, 0x5A), b(1024, 0x5A);
  rhw::RandomEngine rng1(42), rng2(42);
  inj.corrupt_codes(a, rng1);
  inj.corrupt_codes(b, rng2);
  EXPECT_EQ(a, b);
}

TEST(Injector, ActivationPathPreservesShapeAndRange) {
  HybridWordConfig w;
  w.num_8t = 4;
  BitErrorInjector inj(w, {}, 0.64);
  rhw::RandomEngine rng(4);
  Tensor t = Tensor::rand_uniform({2, 3, 8, 8}, rng, 0.f, 4.f);
  const float tmax = t.max();
  Tensor noisy = t;
  inj.apply_to_activations(noisy, rng);
  EXPECT_TRUE(noisy.same_shape(t));
  EXPECT_GE(noisy.min(), 0.f);
  EXPECT_LE(noisy.max(), tmax + 1e-4f);  // unsigned codes can't exceed scale
  double delta = 0;
  for (int64_t i = 0; i < t.numel(); ++i) delta += std::fabs(noisy[i] - t[i]);
  EXPECT_GT(delta, 0.0) << "0.64 V should corrupt something";
}

TEST(Injector, WeightPathPerturbsSymmetrically) {
  HybridWordConfig w;
  w.num_8t = 2;
  BitErrorInjector inj(w, {}, 0.6);
  rhw::RandomEngine rng(5);
  Tensor t = Tensor::randn({1024}, rng);
  Tensor noisy = t;
  inj.apply_to_weights(noisy, rng);
  EXPECT_TRUE(noisy.same_shape(t));
  double delta = 0;
  for (int64_t i = 0; i < t.numel(); ++i) delta += std::fabs(noisy[i] - t[i]);
  EXPECT_GT(delta, 0.0);
}

TEST(Injector, MeasuredMuTracksAnalyticMu) {
  BitErrorModel model;
  for (int n8 : {2, 4, 6}) {
    HybridWordConfig w;
    w.num_8t = n8;
    const double vdd = 0.64;
    BitErrorInjector inj(w, model, vdd);
    rhw::RandomEngine rng(100 + static_cast<uint64_t>(n8));
    const double measured = inj.measure_mu(200000, rng);
    const double analytic = surgical_noise_mu(w, model, vdd);
    EXPECT_NEAR(measured, analytic, 0.15 * analytic + 1e-4)
        << "n8t=" << n8;
  }
}

TEST(Injector, MoreSixTCellsMoreMeasuredNoise) {
  BitErrorModel model;
  rhw::RandomEngine rng(6);
  double prev = -1.0;
  for (int n6 : {1, 3, 5, 8}) {
    HybridWordConfig w;
    w.num_8t = 8 - n6;
    BitErrorInjector inj(w, model, 0.64);
    const double mu = inj.measure_mu(100000, rng);
    EXPECT_GT(mu, prev);
    prev = mu;
  }
}

}  // namespace
}  // namespace rhw::sram
