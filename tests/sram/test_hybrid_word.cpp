#include "sram/hybrid_word.hpp"

#include <gtest/gtest.h>

namespace rhw::sram {
namespace {

TEST(HybridWord, RatioLabels) {
  HybridWordConfig w;
  w.num_8t = 3;
  EXPECT_EQ(w.ratio_label(), "3/5");
  w.num_8t = 8;
  EXPECT_EQ(w.ratio_label(), "H");
  w.num_8t = 0;
  EXPECT_EQ(w.ratio_label(), "0/8");  // all-6T is a real noise config
}

TEST(HybridWord, MsbProtectedMaskCoversLsbs) {
  HybridWordConfig w;
  w.num_8t = 5;  // 3 6T cells on the LSBs
  EXPECT_EQ(w.six_t_mask(), 0b00000111u);
  EXPECT_EQ(w.eight_t_mask(), 0b11111000u);
}

TEST(HybridWord, AblationMaskCoversMsbs) {
  HybridWordConfig w;
  w.num_8t = 5;
  w.msb_protected = false;  // 6T cells hold the MSBs instead
  EXPECT_EQ(w.six_t_mask(), 0b11100000u);
  EXPECT_EQ(w.eight_t_mask(), 0b00011111u);
}

TEST(HybridWord, MasksPartitionTheWord) {
  for (int n8 = 0; n8 <= 8; ++n8) {
    HybridWordConfig w;
    w.num_8t = n8;
    EXPECT_EQ(w.six_t_mask() & w.eight_t_mask(), 0u);
    EXPECT_EQ(w.six_t_mask() | w.eight_t_mask(), 0xFFu);
    EXPECT_EQ(w.num_6t(), 8 - n8);
  }
}

TEST(HybridWord, HomogeneousCases) {
  HybridWordConfig all8;
  all8.num_8t = 8;
  EXPECT_EQ(all8.six_t_mask(), 0u);
  EXPECT_TRUE(all8.homogeneous_8t());
  HybridWordConfig all6;
  all6.num_8t = 0;
  EXPECT_EQ(all6.six_t_mask(), 0xFFu);
}

TEST(HybridWord, BadSplitThrows) {
  HybridWordConfig w;
  w.num_8t = 9;
  EXPECT_THROW(w.six_t_mask(), std::invalid_argument);
}

TEST(HybridWord, ExpectedFlipMagnitudeFirstOrder) {
  HybridWordConfig w;
  w.num_8t = 6;  // 6T on bits 0,1
  const double mag = expected_flip_magnitude(w, 0.01, 0.0);
  EXPECT_NEAR(mag, 0.01 * (1 + 2), 1e-12);
}

// Fig. 2 property: mu grows as 6T cells replace 8T cells (left to right on
// the paper's x-axis) and as the supply voltage scales down.
TEST(HybridWord, MuMonotoneInSixTCount) {
  BitErrorModel model;
  for (double vdd : {0.62, 0.66, 0.70, 0.74}) {
    double prev = -1.0;
    for (int n6 = 0; n6 <= 8; ++n6) {
      HybridWordConfig w;
      w.num_8t = 8 - n6;
      const double mu = surgical_noise_mu(w, model, vdd);
      EXPECT_GT(mu, prev) << "n6=" << n6 << " vdd=" << vdd;
      prev = mu;
    }
  }
}

TEST(HybridWord, MuMonotoneInVoltageScaling) {
  BitErrorModel model;
  HybridWordConfig w;
  w.num_8t = 4;
  double prev = 1e9;
  for (double vdd : {0.62, 0.66, 0.70, 0.74, 0.78, 0.90}) {
    const double mu = surgical_noise_mu(w, model, vdd);
    EXPECT_LT(mu, prev);
    prev = mu;
  }
}

TEST(HybridWord, MsbProtectionReducesMu) {
  // Significance-driven storage ablation: exposing MSBs to 6T errors must
  // blow up the expected perturbation.
  BitErrorModel model;
  HybridWordConfig protected_word;
  protected_word.num_8t = 4;
  HybridWordConfig exposed = protected_word;
  exposed.msb_protected = false;
  EXPECT_LT(surgical_noise_mu(protected_word, model, 0.68),
            surgical_noise_mu(exposed, model, 0.68));
}

TEST(HybridWord, MuBoundedByHalf) {
  BitErrorModel model;
  HybridWordConfig w;
  w.num_8t = 0;
  EXPECT_LE(surgical_noise_mu(w, model, 0.3), 0.5 + 1e-9);
}

}  // namespace
}  // namespace rhw::sram
