#include "sram/energy_model.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "models/zoo.hpp"
#include "nn/init.hpp"

namespace rhw::sram {
namespace {

TEST(SramEnergy, DynamicEnergyScalesQuadratically) {
  SramEnergyModel m;
  const double full = m.bit_read_energy_fj(false, 1.0);
  const double half = m.bit_read_energy_fj(false, 0.5);
  EXPECT_NEAR(half, full * 0.25, 1e-12);
}

TEST(SramEnergy, EightTCostsMoreThanSixT) {
  SramEnergyModel m;
  for (double vdd : {0.68, 0.8, 1.0}) {
    EXPECT_GT(m.bit_read_energy_fj(true, vdd),
              m.bit_read_energy_fj(false, vdd));
    EXPECT_GT(m.cell_leakage_nw(true, vdd), m.cell_leakage_nw(false, vdd));
  }
}

TEST(SramEnergy, WordEnergyInterpolatesWithRatio) {
  SramEnergyModel m;
  HybridWordConfig all8;
  all8.num_8t = 8;
  HybridWordConfig all6;
  all6.num_8t = 0;
  HybridWordConfig half;
  half.num_8t = 4;
  const double e8 = m.word_read_energy_fj(all8, 0.8);
  const double e6 = m.word_read_energy_fj(all6, 0.8);
  const double eh = m.word_read_energy_fj(half, 0.8);
  EXPECT_GT(e8, e6);
  EXPECT_NEAR(eh, 0.5 * (e8 + e6), 1e-9);
}

TEST(SramEnergy, MoreSixTCellsLessAreaAndEnergy) {
  SramEnergyModel m;
  double prev_area = 1e18, prev_energy = 1e18;
  for (int n6 = 0; n6 <= 8; ++n6) {
    HybridWordConfig w;
    w.num_8t = 8 - n6;
    const double area = m.word_area_um2(w);
    const double energy = m.word_read_energy_fj(w, 0.68);
    EXPECT_LT(area, prev_area);
    EXPECT_LT(energy, prev_energy);
    prev_area = area;
    prev_energy = energy;
  }
}

TEST(SramEnergy, VoltageScalingSavesEnergy) {
  SramEnergyModel m;
  HybridWordConfig w;
  w.num_8t = 4;
  EXPECT_LT(m.word_read_energy_fj(w, 0.68), m.word_read_energy_fj(w, 1.0));
  EXPECT_LT(m.word_leakage_nw(w, 0.68), m.word_leakage_nw(w, 1.0));
}

class ActivationReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = models::build_model("vgg8", 4, 0.125f, 16);
    rhw::RandomEngine rng(1);
    nn::kaiming_init(*model_.net, rng);
    model_.net->set_training(false);
    input_ = Tensor({2, 3, 16, 16}, 0.5f);
  }
  models::Model model_;
  Tensor input_;
};

TEST_F(ActivationReportTest, CountsWordsPerImage) {
  const auto report = activation_memory_report(model_, input_, 0.68, {});
  ASSERT_EQ(report.sites.size(), model_.sites.size());
  // First conv site of vgg8 @0.125 width: 8 channels x 16 x 16.
  EXPECT_EQ(report.sites[0].words, 8 * 16 * 16);
  // Pool site halves the spatial extent.
  bool found_pool = false;
  for (const auto& s : report.sites) {
    if (s.label == "2(P)") {
      EXPECT_EQ(s.words, 8 * 8 * 8);
      found_pool = true;
    }
  }
  EXPECT_TRUE(found_pool);
}

TEST_F(ActivationReportTest, HomogeneousNominalHasNoSavings) {
  const auto report = activation_memory_report(model_, input_, 1.0, {});
  EXPECT_NEAR(report.energy_saving_pct(), 0.0, 1e-9);
  EXPECT_NEAR(report.area_saving_pct(), 0.0, 1e-9);
}

TEST_F(ActivationReportTest, ScaledVoltageSaves) {
  const auto report = activation_memory_report(model_, input_, 0.68, {});
  // E ~ Vdd^2: 0.68^2 = 0.4624 -> ~53.8% dynamic saving.
  EXPECT_NEAR(report.energy_saving_pct(), 100.0 * (1 - 0.68 * 0.68), 0.5);
}

TEST_F(ActivationReportTest, HybridSitesSaveAreaAndEnergy) {
  HybridWordConfig word;
  word.num_8t = 2;
  const auto hybrid =
      activation_memory_report(model_, input_, 0.68, {{"0", word}, {"1", word}});
  const auto plain = activation_memory_report(model_, input_, 0.68, {});
  EXPECT_LT(hybrid.total_read_energy_fj, plain.total_read_energy_fj);
  EXPECT_LT(hybrid.total_area_um2, plain.total_area_um2);
  EXPECT_GT(hybrid.area_saving_pct(), 0.0);
}

TEST_F(ActivationReportTest, HooksRemovedAfterReport) {
  (void)activation_memory_report(model_, input_, 0.68, {});
  for (const auto& site : model_.sites) {
    EXPECT_FALSE(site.module->has_post_hook());
  }
}

TEST_F(ActivationReportTest, RejectsBadInput) {
  EXPECT_THROW(activation_memory_report(model_, Tensor({3, 16, 16}), 0.68, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rhw::sram
