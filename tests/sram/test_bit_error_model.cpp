#include "sram/bit_error_model.hpp"

#include <gtest/gtest.h>

namespace rhw::sram {
namespace {

TEST(BitErrorModel, MonotoneDecreasingInVdd) {
  BitErrorModel m;
  double prev = 1.0;
  for (double v = 0.55; v <= 1.05; v += 0.01) {
    const double ber = m.ber_6t(v);
    EXPECT_LT(ber, prev) << "BER must strictly decrease as Vdd rises";
    prev = ber;
  }
}

TEST(BitErrorModel, CalibrationPointsMatchLiterature) {
  BitErrorModel m;
  // ~1e-9 at nominal 1.0 V
  EXPECT_LT(m.ber_6t(1.0), 1e-8);
  EXPECT_GT(m.ber_6t(1.0), 1e-11);
  // ~1e-2 at the paper's 0.68 V operating point
  EXPECT_GT(m.ber_6t(0.68), 3e-3);
  EXPECT_LT(m.ber_6t(0.68), 3e-2);
  // ~5% at deep scaling
  EXPECT_GT(m.ber_6t(0.62), 0.02);
  EXPECT_LT(m.ber_6t(0.62), 0.12);
}

TEST(BitErrorModel, EightTFarMoreRobustThanSixT) {
  BitErrorModel m;
  for (double v : {0.62, 0.68, 0.74, 0.80}) {
    EXPECT_LT(m.ber_8t(v), m.ber_6t(v) * 1e-2)
        << "8T must be orders of magnitude more reliable at " << v << " V";
  }
}

TEST(BitErrorModel, EightTNegligibleAtOperatingPoint) {
  BitErrorModel m;
  EXPECT_LT(m.ber_8t(0.68), 1e-4);
}

TEST(BitErrorModel, ClampedToHalf) {
  BitErrorModel m;
  EXPECT_LE(m.ber_6t(0.0), 0.5);
  EXPECT_GE(m.ber_6t(0.0), 0.3);  // deep failure: approaches coin flip
}

TEST(BitErrorModel, NeverExactlyZero) {
  BitErrorModel m;
  EXPECT_GT(m.ber_6t(2.0), 0.0);  // clamped floor keeps log plots finite
}

TEST(BitErrorModel, CustomParamsShiftCurve) {
  BitErrorParams weak;
  weak.six_t_vcrit = 0.55;  // worse cell
  BitErrorModel weak_model(weak);
  BitErrorModel nominal;
  EXPECT_GT(weak_model.ber_6t(0.7), nominal.ber_6t(0.7));
}

}  // namespace
}  // namespace rhw::sram
