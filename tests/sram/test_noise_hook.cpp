#include "sram/noise_hook.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace rhw::sram {
namespace {

SramNoiseConfig noisy_config() {
  SramNoiseConfig cfg;
  cfg.word.num_8t = 2;  // 6 error-prone bits
  cfg.vdd = 0.60;       // deep scaling: lots of flips
  return cfg;
}

TEST(NoiseHook, PerturbsActivations) {
  nn::ReLU relu;
  attach_noise(relu, noisy_config());
  rhw::RandomEngine rng(1);
  const Tensor x = Tensor::rand_uniform({1000}, rng, 0.f, 2.f);
  const Tensor clean = x;  // relu of positive values is identity
  const Tensor noisy = relu.forward(x);
  double delta = 0;
  for (int64_t i = 0; i < x.numel(); ++i) delta += std::fabs(noisy[i] - clean[i]);
  EXPECT_GT(delta, 0.0);
}

TEST(NoiseHook, SuppressedDuringAttackGradientScope) {
  nn::ReLU relu;
  attach_noise(relu, noisy_config());
  rhw::RandomEngine rng(2);
  const Tensor x = Tensor::rand_uniform({1000}, rng, 0.f, 2.f);
  nn::Module::HooksDisabledScope scope;
  const Tensor y = relu.forward(x);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(NoiseHook, FreshNoisePerForwardButSeededStream) {
  nn::ReLU a;
  attach_noise(a, noisy_config());
  rhw::RandomEngine rng(3);
  const Tensor x = Tensor::rand_uniform({2000}, rng, 0.f, 1.f);
  const Tensor y1 = a.forward(x);
  const Tensor y2 = a.forward(x);
  double diff = 0;
  for (int64_t i = 0; i < x.numel(); ++i) diff += std::fabs(y1[i] - y2[i]);
  EXPECT_GT(diff, 0.0) << "repeated reads draw fresh error patterns";

  // Identical hook construction replays the identical stream.
  nn::ReLU b, c;
  attach_noise(b, noisy_config());
  attach_noise(c, noisy_config());
  const Tensor yb = b.forward(x);
  const Tensor yc = c.forward(x);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(yb[i], yc[i]);
}

TEST(NoiseHook, HomogeneousEightTIsNoiseless) {
  nn::ReLU relu;
  SramNoiseConfig cfg;
  cfg.word.num_8t = 8;
  cfg.vdd = 0.60;
  attach_noise(relu, cfg);
  rhw::RandomEngine rng(4);
  const Tensor x = Tensor::rand_uniform({512}, rng, 0.f, 1.f);
  const Tensor y = relu.forward(x);
  // All-8T memory at 0.6 V: quantization only (8-bit), no bit errors beyond
  // the 8T BER floor.
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(y[i], x[i], x.max() / 255.f * 0.51f);
  }
}

TEST(NoiseHook, CorruptLayerWeightsOnlyTouchesWeights) {
  nn::Linear lin(8, 4);
  rhw::RandomEngine rng(5);
  nn::kaiming_init(lin, rng);
  lin.bias().value.fill(0.5f);
  const Tensor w_before = lin.weight().value;
  SramNoiseConfig cfg = noisy_config();
  corrupt_layer_weights(lin, cfg);
  double delta = 0;
  for (int64_t i = 0; i < w_before.numel(); ++i) {
    delta += std::fabs(lin.weight().value[i] - w_before[i]);
  }
  EXPECT_GT(delta, 0.0);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(lin.bias().value[i], 0.5f);
}

TEST(NoiseHook, EndToEndNetworkStaysFinite) {
  nn::Sequential net;
  net.emplace<nn::Linear>(16, 16);
  auto& relu = net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(16, 4);
  rhw::RandomEngine rng(6);
  nn::kaiming_init(net, rng);
  attach_noise(relu, noisy_config());
  const Tensor y = net.forward(Tensor::rand_uniform({8, 16}, rng));
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y[i]));
  }
}

}  // namespace
}  // namespace rhw::sram
