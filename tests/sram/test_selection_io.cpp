#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sram/layer_selector.hpp"

namespace rhw::sram {
namespace {

std::string temp_file(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SelectionResult sample_result() {
  SelectionResult r;
  r.baseline_clean_acc = 88.5;
  r.baseline_adv_acc = 40.25;
  r.final_adv_acc = 55.75;
  r.final_clean_acc = 86.0;
  SiteChoice a;
  a.site_index = 1;
  a.site_label = "1";
  a.word.num_8t = 3;
  a.adv_acc = 52.0;
  SiteChoice b;
  b.site_index = 2;
  b.site_label = "2(P)";
  b.word.num_8t = 2;
  b.adv_acc = 49.5;
  r.per_site_best = {a, b};
  r.shortlisted = {a};
  r.selected = {a};
  return r;
}

TEST(SelectionIo, RoundTrip) {
  const auto path = temp_file("rhw_selection_test.txt");
  const auto original = sample_result();
  save_selection(path, original);
  SelectionResult loaded;
  ASSERT_TRUE(load_selection(path, &loaded));
  EXPECT_DOUBLE_EQ(loaded.baseline_clean_acc, original.baseline_clean_acc);
  EXPECT_DOUBLE_EQ(loaded.baseline_adv_acc, original.baseline_adv_acc);
  EXPECT_DOUBLE_EQ(loaded.final_adv_acc, original.final_adv_acc);
  EXPECT_DOUBLE_EQ(loaded.final_clean_acc, original.final_clean_acc);
  ASSERT_EQ(loaded.per_site_best.size(), 2u);
  ASSERT_EQ(loaded.shortlisted.size(), 1u);
  ASSERT_EQ(loaded.selected.size(), 1u);
  EXPECT_EQ(loaded.selected[0].site_index, 1u);
  EXPECT_EQ(loaded.selected[0].site_label, "1");
  EXPECT_EQ(loaded.selected[0].word.num_8t, 3);
  EXPECT_DOUBLE_EQ(loaded.selected[0].adv_acc, 52.0);
  EXPECT_EQ(loaded.per_site_best[1].site_label, "2(P)");
  std::remove(path.c_str());
}

TEST(SelectionIo, MissingFileReturnsFalse) {
  SelectionResult r;
  EXPECT_FALSE(load_selection(temp_file("rhw_no_such_selection.txt"), &r));
}

TEST(SelectionIo, CorruptFileReturnsFalse) {
  const auto path = temp_file("rhw_corrupt_selection.txt");
  {
    std::ofstream os(path);
    os << "garbage nonsense\n";
  }
  SelectionResult r;
  EXPECT_FALSE(load_selection(path, &r));
  std::remove(path.c_str());
}

TEST(SelectionIo, EmptySelectionRoundTrips) {
  const auto path = temp_file("rhw_empty_selection.txt");
  SelectionResult r;
  r.baseline_clean_acc = 90.0;
  save_selection(path, r);
  SelectionResult loaded;
  ASSERT_TRUE(load_selection(path, &loaded));
  EXPECT_TRUE(loaded.selected.empty());
  EXPECT_DOUBLE_EQ(loaded.baseline_clean_acc, 90.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rhw::sram
