// Finite-difference gradient checking for Module implementations.
//
// Defines the scalar objective L = sum(forward(x) .* R) for a fixed random
// projection R, whose analytic input gradient is backward(R) and whose
// parameter gradients land in Param::grad. Central differences give the
// numeric reference.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "nn/module.hpp"

namespace rhw::testing {

inline double objective(nn::Module& m, const Tensor& x, const Tensor& proj) {
  const Tensor y = m.forward(x);
  double acc = 0;
  for (int64_t i = 0; i < y.numel(); ++i) acc += y[i] * proj[i];
  return acc;
}

// Checks d(objective)/d(input) against backward(proj).
inline void check_input_gradient(nn::Module& m, Tensor x, uint64_t seed,
                                 float h = 1e-3f, float tol = 2e-2f) {
  RandomEngine rng(seed);
  const Tensor y0 = m.forward(x);
  const Tensor proj = Tensor::randn(y0.shape(), rng);
  (void)m.forward(x);  // refresh caches
  const Tensor analytic = m.backward(proj);

  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + h;
    const double up = objective(m, x, proj);
    x[i] = orig - h;
    const double down = objective(m, x, proj);
    x[i] = orig;
    const double numeric = (up - down) / (2.0 * h);
    const double scale = std::max({1.0, std::fabs(numeric),
                                   std::fabs(static_cast<double>(analytic[i]))});
    ASSERT_NEAR(analytic[i], numeric, tol * scale) << "input index " << i;
  }
}

// Checks parameter gradients of every Param against finite differences.
inline void check_param_gradients(nn::Module& m, const Tensor& x,
                                  uint64_t seed, float h = 1e-3f,
                                  float tol = 2e-2f) {
  RandomEngine rng(seed);
  const Tensor y0 = m.forward(x);
  const Tensor proj = Tensor::randn(y0.shape(), rng);
  for (nn::Param* p : m.parameters()) p->zero_grad();
  (void)m.forward(x);
  (void)m.backward(proj);

  for (nn::Param* p : m.parameters()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float orig = p->value[i];
      p->value[i] = orig + h;
      const double up = objective(m, x, proj);
      p->value[i] = orig - h;
      const double down = objective(m, x, proj);
      p->value[i] = orig;
      const double numeric = (up - down) / (2.0 * h);
      const double scale =
          std::max({1.0, std::fabs(numeric),
                    std::fabs(static_cast<double>(p->grad[i]))});
      ASSERT_NEAR(p->grad[i], numeric, tol * scale)
          << p->name << " index " << i;
    }
  }
}

}  // namespace rhw::testing
