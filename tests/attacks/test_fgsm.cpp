#include "attacks/fgsm.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace rhw::attacks {
namespace {

nn::Sequential small_net(uint64_t seed) {
  nn::Sequential net;
  net.emplace<nn::Linear>(8, 16);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(16, 3);
  rhw::RandomEngine rng(seed);
  nn::kaiming_init(net, rng);
  net.set_training(false);
  return net;
}

TEST(Fgsm, ZeroEpsilonIsIdentity) {
  auto net = small_net(1);
  rhw::RandomEngine rng(2);
  const Tensor x = Tensor::rand_uniform({4, 8}, rng);
  FgsmConfig cfg;
  cfg.epsilon = 0.f;
  const Tensor adv = fgsm(net, x, {0, 1, 2, 0}, cfg);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(adv[i], x[i]);
}

TEST(Fgsm, PerturbationBoundedByEpsilon) {
  auto net = small_net(3);
  rhw::RandomEngine rng(4);
  const Tensor x = Tensor::rand_uniform({4, 8}, rng, 0.2f, 0.8f);
  FgsmConfig cfg;
  cfg.epsilon = 0.07f;
  const Tensor adv = fgsm(net, x, {0, 1, 2, 0}, cfg);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::fabs(adv[i] - x[i]), cfg.epsilon + 1e-6f);
  }
}

TEST(Fgsm, StaysInValidPixelRange) {
  auto net = small_net(5);
  rhw::RandomEngine rng(6);
  const Tensor x = Tensor::rand_uniform({4, 8}, rng);  // includes near 0/1
  FgsmConfig cfg;
  cfg.epsilon = 0.3f;
  const Tensor adv = fgsm(net, x, {1, 1, 1, 1}, cfg);
  EXPECT_GE(adv.min(), 0.f);
  EXPECT_LE(adv.max(), 1.f);
}

TEST(Fgsm, IncreasesLoss) {
  auto net = small_net(7);
  rhw::RandomEngine rng(8);
  const Tensor x = Tensor::rand_uniform({16, 8}, rng, 0.3f, 0.7f);
  std::vector<int64_t> labels;
  for (int i = 0; i < 16; ++i) labels.push_back(i % 3);
  FgsmConfig cfg;
  cfg.epsilon = 0.1f;
  const Tensor adv = fgsm(net, x, labels, cfg);

  nn::SoftmaxCrossEntropy loss;
  const float clean_loss = loss.forward(net.forward(x), labels);
  nn::SoftmaxCrossEntropy loss2;
  const float adv_loss = loss2.forward(net.forward(adv), labels);
  EXPECT_GT(adv_loss, clean_loss);
}

TEST(Fgsm, InputGradientMatchesFiniteDifference) {
  auto net = small_net(9);
  rhw::RandomEngine rng(10);
  Tensor x = Tensor::rand_uniform({2, 8}, rng, 0.3f, 0.7f);
  const std::vector<int64_t> labels{0, 2};
  const Tensor grad = input_gradient(net, x, labels);

  const float h = 1e-3f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    nn::SoftmaxCrossEntropy l1, l2;
    x[i] = orig + h;
    const float up = l1.forward(net.forward(x), labels);
    x[i] = orig - h;
    const float down = l2.forward(net.forward(x), labels);
    x[i] = orig;
    EXPECT_NEAR(grad[i], (up - down) / (2 * h), 5e-3f) << "index " << i;
  }
}

TEST(Fgsm, GradientPassDisablesGatedHooks) {
  auto net = small_net(11);
  bool hook_ran_during_grad = false;
  net[1].set_post_hook([&](Tensor&) { hook_ran_during_grad = true; });
  rhw::RandomEngine rng(12);
  const Tensor x = Tensor::rand_uniform({2, 8}, rng);
  (void)input_gradient(net, x, {0, 1});
  EXPECT_FALSE(hook_ran_during_grad);
  // Outside the gradient pass the hook fires again.
  (void)net.forward(x);
  EXPECT_TRUE(hook_ran_during_grad);
}

TEST(Fgsm, RestoresTrainingFlag) {
  auto net = small_net(13);
  net.set_training(true);
  rhw::RandomEngine rng(14);
  const Tensor x = Tensor::rand_uniform({2, 8}, rng);
  (void)input_gradient(net, x, {0, 1});
  EXPECT_TRUE(net.training());
}

}  // namespace
}  // namespace rhw::attacks
