// AttackRegistry parsing and error reporting, in parity with the
// BackendRegistry suite (tests/hw/test_registry.cpp): unknown attacks,
// unknown options, malformed values and trailing garbage must all throw
// std::invalid_argument naming the offending token and the full spec.
#include "attacks/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace rhw::attacks {
namespace {

TEST(AttackRegistry, BuiltinsRegistered) {
  const auto keys = AttackRegistry::instance().keys();
  for (const char* expected :
       {"fgsm", "pgd", "eot_pgd", "mifgsm", "square"}) {
    EXPECT_TRUE(std::find(keys.begin(), keys.end(), expected) != keys.end())
        << expected;
    EXPECT_TRUE(AttackRegistry::instance().contains(expected));
  }
}

TEST(AttackRegistry, UnknownAttackThrowsNamingKey) {
  try {
    make_attack("cw");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cw"), std::string::npos) << msg;
    EXPECT_NE(msg.find("registered"), std::string::npos) << msg;
  }
}

TEST(AttackRegistry, EmptySpecThrows) {
  EXPECT_THROW(make_attack(""), std::invalid_argument);
}

TEST(AttackRegistry, UnknownOptionThrowsNamingIt) {
  try {
    make_attack("pgd:stpes=7");  // rhw-lint: allow(spec) stale on purpose
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("stpes"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pgd:stpes=7"), std::string::npos) << msg;  // rhw-lint: allow(spec) stale on purpose
  }
  EXPECT_THROW(make_attack("fgsm:steps=7"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  // "samples" belongs to eot_pgd, not plain pgd.
  EXPECT_THROW(make_attack("pgd:samples=8"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(make_attack("square:decay=1"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
}

// Parse failures must name the offending key, the bad value, AND the full
// spec string (parity with BackendRegistry::ParseErrorNamesKeyValueAndSpec).
TEST(AttackRegistry, ParseErrorNamesKeyValueAndSpec) {
  try {
    make_attack("pgd:steps=7,alpha=abc");  // rhw-lint: allow(spec) stale on purpose
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("alpha"), std::string::npos) << msg;
    EXPECT_NE(msg.find("abc"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pgd:steps=7,alpha=abc"), std::string::npos) << msg;  // rhw-lint: allow(spec) stale on purpose
  }
  try {
    make_attack("square:queries=manyy");  // rhw-lint: allow(spec) stale on purpose
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("queries"), std::string::npos) << msg;
    EXPECT_NE(msg.find("manyy"), std::string::npos) << msg;
    EXPECT_NE(msg.find("square:queries=manyy"), std::string::npos) << msg;  // rhw-lint: allow(spec) stale on purpose
  }
}

// Trailing garbage after a numeric value is rejected, not silently truncated.
TEST(AttackRegistry, TrailingGarbageRejected) {
  EXPECT_THROW(make_attack("fgsm:eps=0.1junk"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(make_attack("pgd:steps=7.5"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(make_attack("mifgsm:decay=1.0 "), std::invalid_argument);
}

TEST(AttackRegistry, MalformedOptionThrows) {
  EXPECT_THROW(make_attack("pgd:steps"), std::invalid_argument);
}

TEST(AttackRegistry, NegativeIntegerOptionThrows) {
  EXPECT_THROW(make_attack("pgd:steps=-1"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(make_attack("square:queries=-5"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
}

// Zero-valued iteration knobs would make the attack a silent no-op (adv ~=
// clean while measuring nothing); they must be rejected naming the knob.
TEST(AttackRegistry, ZeroIterationKnobsRejected) {
  for (const char* spec : {"pgd:steps=0", "eot_pgd:samples=0",  // rhw-lint: allow(spec) stale on purpose
                           "eot_pgd:steps=0", "mifgsm:steps=0",  // rhw-lint: allow(spec) stale on purpose
                           "square:queries=0"}) {  // rhw-lint: allow(spec) stale on purpose
    try {
      make_attack(spec);
      FAIL() << "expected std::invalid_argument for " << spec;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("no-op"), std::string::npos)
          << spec << ": " << e.what();
    }
  }
  // Values past INT_MAX must not wrap back into the no-op range.
  EXPECT_THROW(make_attack("square:queries=4294967296"),  // rhw-lint: allow(spec) stale on purpose
               std::invalid_argument);
  EXPECT_THROW(make_attack("pgd:steps=2147483653"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
}

TEST(AttackRegistry, OptionsParseIntoConfigs) {
  auto fgsm = make_attack("fgsm:eps=0.25");
  EXPECT_EQ(fgsm->name(), "FGSM");
  EXPECT_FLOAT_EQ(fgsm->epsilon(), 0.25f);
  EXPECT_FALSE(fgsm->gradient_free());

  auto pgd = make_attack("pgd:eps=0.05,steps=3,alpha=0.01,rs=0");
  EXPECT_EQ(pgd->name(), "PGD");
  EXPECT_FLOAT_EQ(pgd->epsilon(), 0.05f);

  auto eot = make_attack("eot_pgd:samples=4");
  EXPECT_EQ(eot->name(), "EOT-PGD");

  auto mi = make_attack("mifgsm:decay=0.9,steps=5");
  EXPECT_EQ(mi->name(), "MI-FGSM");

  auto square = make_attack("square:queries=50,p=0.2");
  EXPECT_EQ(square->name(), "Square");
  EXPECT_TRUE(square->gradient_free());
}

TEST(AttackRegistry, SetEpsilonOverridesSpec) {
  auto attack = make_attack("pgd:eps=0.3");
  attack->set_epsilon(0.07f);
  EXPECT_FLOAT_EQ(attack->epsilon(), 0.07f);
}

TEST(AttackRegistry, DisplayNames) {
  EXPECT_EQ(attack_display_name("fgsm"), "FGSM");
  EXPECT_EQ(attack_display_name("pgd:steps=3"), "PGD");
  EXPECT_EQ(attack_display_name("eot_pgd"), "EOT-PGD");
  EXPECT_EQ(attack_display_name("mifgsm"), "MI-FGSM");
  EXPECT_EQ(attack_display_name("square"), "Square");
}

TEST(AttackRegistry, CustomAttackRegistration) {
  AttackRegistry::instance().add("custom-fgsm",
                                 [](const AttackOptions&) {
                                   return make_attack("fgsm:eps=0.123");
                                 });
  auto attack = make_attack("custom-fgsm");
  EXPECT_EQ(attack->name(), "FGSM");
  EXPECT_FLOAT_EQ(attack->epsilon(), 0.123f);
}

}  // namespace
}  // namespace rhw::attacks
