#include "attacks/pgd.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"

namespace rhw::attacks {
namespace {

nn::Sequential small_net(uint64_t seed) {
  nn::Sequential net;
  net.emplace<nn::Linear>(8, 16);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(16, 3);
  rhw::RandomEngine rng(seed);
  nn::kaiming_init(net, rng);
  net.set_training(false);
  return net;
}

std::vector<int64_t> labels16() {
  std::vector<int64_t> out;
  for (int i = 0; i < 16; ++i) out.push_back(i % 3);
  return out;
}

TEST(Pgd, ZeroEpsilonIsIdentity) {
  auto net = small_net(1);
  rhw::RandomEngine rng(2);
  const Tensor x = Tensor::rand_uniform({4, 8}, rng);
  PgdConfig cfg;
  cfg.epsilon = 0.f;
  const Tensor adv = pgd(net, x, {0, 1, 2, 0}, cfg);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(adv[i], x[i]);
}

TEST(Pgd, StaysInsideEpsilonBall) {
  auto net = small_net(3);
  rhw::RandomEngine rng(4);
  const Tensor x = Tensor::rand_uniform({8, 8}, rng, 0.2f, 0.8f);
  PgdConfig cfg;
  cfg.epsilon = 0.05f;
  cfg.steps = 10;
  std::vector<int64_t> labels(8, 1);
  const Tensor adv = pgd(net, x, labels, cfg);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::fabs(adv[i] - x[i]), cfg.epsilon + 1e-6f);
  }
}

TEST(Pgd, StaysInPixelRange) {
  auto net = small_net(5);
  rhw::RandomEngine rng(6);
  const Tensor x = Tensor::rand_uniform({8, 8}, rng);
  PgdConfig cfg;
  cfg.epsilon = 0.4f;
  const Tensor adv = pgd(net, x, std::vector<int64_t>(8, 0), cfg);
  EXPECT_GE(adv.min(), 0.f);
  EXPECT_LE(adv.max(), 1.f);
}

TEST(Pgd, AtLeastAsStrongAsFgsm) {
  auto net = small_net(7);
  rhw::RandomEngine rng(8);
  const Tensor x = Tensor::rand_uniform({16, 8}, rng, 0.3f, 0.7f);
  const auto labels = labels16();

  FgsmConfig fc;
  fc.epsilon = 0.1f;
  const Tensor adv_fgsm = fgsm(net, x, labels, fc);
  PgdConfig pc;
  pc.epsilon = 0.1f;
  pc.steps = 10;
  pc.random_start = false;
  const Tensor adv_pgd = pgd(net, x, labels, pc);

  nn::SoftmaxCrossEntropy l1, l2;
  const float loss_fgsm = l1.forward(net.forward(adv_fgsm), labels);
  const float loss_pgd = l2.forward(net.forward(adv_pgd), labels);
  EXPECT_GE(loss_pgd, loss_fgsm * 0.95f);  // allow tiny numerical slack
}

TEST(Pgd, MoreStepsDoNotWeakenAttack) {
  auto net = small_net(9);
  rhw::RandomEngine rng(10);
  const Tensor x = Tensor::rand_uniform({16, 8}, rng, 0.3f, 0.7f);
  const auto labels = labels16();
  PgdConfig one;
  one.epsilon = 0.08f;
  one.steps = 1;
  one.random_start = false;
  PgdConfig many = one;
  many.steps = 20;
  nn::SoftmaxCrossEntropy l1, l2;
  const float loss1 = l1.forward(net.forward(pgd(net, x, labels, one)), labels);
  const float lossN =
      l2.forward(net.forward(pgd(net, x, labels, many)), labels);
  EXPECT_GE(lossN, loss1 * 0.95f);
}

TEST(Pgd, RandomStartDeterministicPerSeed) {
  auto net = small_net(11);
  rhw::RandomEngine rng(12);
  const Tensor x = Tensor::rand_uniform({4, 8}, rng, 0.3f, 0.7f);
  PgdConfig cfg;
  cfg.epsilon = 0.1f;
  // Small explicit step so the random-start difference survives the
  // projection (full-size signed steps drive every seed to the same corner).
  cfg.alpha = 0.002f;
  cfg.steps = 2;
  cfg.seed = 777;
  const Tensor a = pgd(net, x, {0, 1, 2, 0}, cfg);
  const Tensor b = pgd(net, x, {0, 1, 2, 0}, cfg);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
  cfg.seed = 778;
  const Tensor c = pgd(net, x, {0, 1, 2, 0}, cfg);
  double diff = 0;
  for (int64_t i = 0; i < a.numel(); ++i) diff += std::fabs(a[i] - c[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(Pgd, EotOnDeterministicModelMatchesPlainPgd) {
  auto net = small_net(15);
  rhw::RandomEngine rng(16);
  const Tensor x = Tensor::rand_uniform({4, 8}, rng, 0.3f, 0.7f);
  PgdConfig plain;
  plain.epsilon = 0.08f;
  plain.random_start = false;
  PgdConfig eot = plain;
  eot.grad_samples = 5;
  // Deterministic network: averaged gradients equal the single gradient, so
  // the signed steps (and hence the adversaries) coincide.
  const Tensor a = pgd(net, x, {0, 1, 2, 0}, plain);
  const Tensor b = pgd(net, x, {0, 1, 2, 0}, eot);
  for (int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Pgd, EotNoWeakerThanPlainOnNoisyModel) {
  // A network whose gradients are corrupted by fresh additive noise per
  // backward pass (as the crossbar mapper installs): EOT averages the noise
  // out, so its attack must be at least as strong.
  auto net = small_net(17);
  auto rng_ptr = std::make_shared<rhw::RandomEngine>(18);
  net[0].set_backward_hook(
      [rng_ptr](Tensor& g) {
        const float rms =
            g.l2_norm() / std::sqrt(static_cast<float>(g.numel()));
        for (float& v : g.span()) v += 2.f * rms * rng_ptr->gaussian();
      },
      /*gated=*/false);

  rhw::RandomEngine rng(19);
  const Tensor x = Tensor::rand_uniform({32, 8}, rng, 0.3f, 0.7f);
  std::vector<int64_t> labels;
  for (int i = 0; i < 32; ++i) labels.push_back(i % 3);
  PgdConfig plain;
  plain.epsilon = 0.1f;
  plain.random_start = false;
  PgdConfig eot = plain;
  eot.grad_samples = 16;
  nn::SoftmaxCrossEntropy l1, l2;
  const float loss_plain =
      l1.forward(net.forward(pgd(net, x, labels, plain)), labels);
  const float loss_eot =
      l2.forward(net.forward(pgd(net, x, labels, eot)), labels);
  EXPECT_GE(loss_eot, loss_plain * 0.9f);
}

TEST(Pgd, AutoAlphaIsUsedWhenZero) {
  // Indirect check: with alpha=0 and steps=1, the step size is 2.5*eps which
  // after projection equals an eps-size step — so some coordinate must move
  // by exactly eps (away from clip boundaries).
  auto net = small_net(13);
  rhw::RandomEngine rng(14);
  const Tensor x = Tensor::rand_uniform({4, 8}, rng, 0.4f, 0.6f);
  PgdConfig cfg;
  cfg.epsilon = 0.05f;
  cfg.steps = 1;
  cfg.random_start = false;
  const Tensor adv = pgd(net, x, {0, 1, 2, 0}, cfg);
  float max_move = 0.f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    max_move = std::max(max_move, std::fabs(adv[i] - x[i]));
  }
  EXPECT_NEAR(max_move, cfg.epsilon, 1e-6f);
}

}  // namespace
}  // namespace rhw::attacks
