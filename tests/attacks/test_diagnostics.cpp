#include "attacks/diagnostics.hpp"

#include <gtest/gtest.h>

#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"
#include "xbar/mapper.hpp"

namespace rhw::attacks {
namespace {

class DiagnosticsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 60;
    dcfg.test_per_class = 30;
    dcfg.image_size = 16;
    dcfg.noise_std = 0.12f;
    dcfg.nuisance_amp = 0.15f;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));
    model_ = new models::Model(models::build_model("vgg8", 4, 0.125f, 16));
    models::TrainConfig tcfg;
    tcfg.epochs = 3;
    tcfg.batch_size = 48;
    models::train_model(*model_, *data_, tcfg);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }
  static data::SynthCifar* data_;
  static models::Model* model_;
};

data::SynthCifar* DiagnosticsTest::data_ = nullptr;
models::Model* DiagnosticsTest::model_ = nullptr;

TEST_F(DiagnosticsTest, SelfDiagnosisShowsNoObfuscation) {
  ObfuscationConfig cfg;
  cfg.sample_count = 60;
  const auto report = diagnose_gradient_obfuscation(*model_->net, *model_->net,
                                                    data_->test, cfg);
  // Same model: gradients agree perfectly and white-box == transfer.
  EXPECT_NEAR(report.grad_cosine, 1.0, 1e-5);
  EXPECT_NEAR(report.white_box_adv_acc, report.transfer_adv_acc, 1e-9);
  EXPECT_FALSE(report.obfuscation_suspected());
}

TEST_F(DiagnosticsTest, RandomFloorIsWeakerThanGradientAttacks) {
  ObfuscationConfig cfg;
  cfg.sample_count = 60;
  cfg.epsilon = 0.1f;
  const auto report = diagnose_gradient_obfuscation(*model_->net, *model_->net,
                                                    data_->test, cfg);
  // Gradient-guided attacks must beat random perturbations on a clean model.
  EXPECT_LT(report.white_box_adv_acc, report.random_adv_acc + 1.0);
  EXPECT_LE(report.white_box_adv_acc, report.clean_acc);
}

TEST_F(DiagnosticsTest, HardwareModelShowsReducedGradientAgreement) {
  models::Model mapped = models::build_model("vgg8", 4, 0.125f, 16);
  nn::load_state_dict(*mapped.net, nn::state_dict(*model_->net));
  mapped.net->set_training(false);
  xbar::XbarMapConfig xcfg;
  xcfg.spec.rows = 32;
  xcfg.spec.cols = 32;
  (void)xbar::map_onto_crossbars(*mapped.net, xcfg);

  ObfuscationConfig cfg;
  cfg.sample_count = 60;
  const auto report = diagnose_gradient_obfuscation(*model_->net, *mapped.net,
                                                    data_->test, cfg);
  EXPECT_LT(report.grad_cosine, 0.999);
  EXPECT_GT(report.grad_cosine, 0.0);  // still correlated, not destroyed
}

}  // namespace
}  // namespace rhw::attacks
