// Behavioral coverage for the stochastic-aware attacks introduced with the
// attack seam: MI-FGSM, the gradient-free Square attack, and noisy-gradient
// EOT-PGD.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "attacks/mifgsm.hpp"
#include "attacks/pgd.hpp"
#include "attacks/registry.hpp"
#include "attacks/square.hpp"
#include "core/rng.hpp"
#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"

namespace rhw::attacks {
namespace {

nn::Sequential small_net(uint64_t seed) {
  nn::Sequential net;
  net.emplace<nn::Linear>(8, 16);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(16, 3);
  rhw::RandomEngine rng(seed);
  nn::kaiming_init(net, rng);
  net.set_training(false);
  return net;
}

std::vector<int64_t> labels_mod3(int n) {
  std::vector<int64_t> out;
  for (int i = 0; i < n; ++i) out.push_back(i % 3);
  return out;
}

float batch_loss(nn::Module& net, const Tensor& x,
                 const std::vector<int64_t>& labels) {
  nn::SoftmaxCrossEntropy loss;
  return loss.forward(net.forward(x), labels);
}

// -- MI-FGSM ------------------------------------------------------------------

TEST(MiFgsm, ZeroEpsilonIsIdentity) {
  auto net = small_net(1);
  rhw::RandomEngine rng(2);
  const Tensor x = Tensor::rand_uniform({4, 8}, rng);
  MiFgsmConfig cfg;
  cfg.epsilon = 0.f;
  const Tensor adv = mifgsm(net, x, {0, 1, 2, 0}, cfg);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(adv[i], x[i]);
}

TEST(MiFgsm, StaysInsideEpsilonBallAndPixelRange) {
  auto net = small_net(3);
  rhw::RandomEngine rng(4);
  const Tensor x = Tensor::rand_uniform({8, 8}, rng, 0.2f, 0.8f);
  MiFgsmConfig cfg;
  cfg.epsilon = 0.06f;
  cfg.steps = 8;
  const Tensor adv = mifgsm(net, x, std::vector<int64_t>(8, 1), cfg);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::fabs(adv[i] - x[i]), cfg.epsilon + 1e-6f);
    EXPECT_GE(adv[i], 0.f);
    EXPECT_LE(adv[i], 1.f);
  }
}

TEST(MiFgsm, IncreasesLossOverClean) {
  auto net = small_net(5);
  rhw::RandomEngine rng(6);
  const Tensor x = Tensor::rand_uniform({16, 8}, rng, 0.3f, 0.7f);
  const auto labels = labels_mod3(16);
  MiFgsmConfig cfg;
  cfg.epsilon = 0.1f;
  const Tensor adv = mifgsm(net, x, labels, cfg);
  EXPECT_GT(batch_loss(net, adv, labels), batch_loss(net, x, labels));
}

TEST(MiFgsm, ZeroDecayStillAttacks) {
  auto net = small_net(7);
  rhw::RandomEngine rng(8);
  const Tensor x = Tensor::rand_uniform({16, 8}, rng, 0.3f, 0.7f);
  const auto labels = labels_mod3(16);
  MiFgsmConfig cfg;
  cfg.epsilon = 0.1f;
  cfg.decay = 0.f;  // degenerates to iterated FGSM
  const Tensor adv = mifgsm(net, x, labels, cfg);
  EXPECT_GT(batch_loss(net, adv, labels), batch_loss(net, x, labels));
}

// -- Square -------------------------------------------------------------------

TEST(Square, StaysInsideEpsilonBallAndPixelRange) {
  auto net = small_net(9);
  rhw::RandomEngine rng(10);
  const Tensor x = Tensor::rand_uniform({6, 8}, rng, 0.2f, 0.8f);
  SquareConfig cfg;
  cfg.epsilon = 0.1f;
  cfg.queries = 30;
  const Tensor adv = square_attack(net, x, labels_mod3(6), cfg);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::fabs(adv[i] - x[i]), cfg.epsilon + 1e-6f);
    EXPECT_GE(adv[i], 0.f);
    EXPECT_LE(adv[i], 1.f);
  }
}

TEST(Square, DeterministicPerSeedAndSensitiveToIt) {
  auto net = small_net(11);
  rhw::RandomEngine rng(12);
  const Tensor x = Tensor::rand_uniform({4, 1, 4, 4}, rng, 0.3f, 0.7f);
  // A 4x4-image net so rank-4 geometry (stripes, windows) is exercised.
  nn::Sequential img_net;
  img_net.emplace<nn::Flatten>();
  img_net.emplace<nn::Linear>(16, 3);
  nn::kaiming_init(img_net, rng);
  img_net.set_training(false);
  SquareConfig cfg;
  cfg.epsilon = 0.1f;
  cfg.queries = 20;
  cfg.seed = 404;
  const Tensor a = square_attack(img_net, x, {0, 1, 2, 0}, cfg);
  const Tensor b = square_attack(img_net, x, {0, 1, 2, 0}, cfg);
  for (int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
  cfg.seed = 405;
  const Tensor c = square_attack(img_net, x, {0, 1, 2, 0}, cfg);
  double diff = 0;
  for (int64_t i = 0; i < a.numel(); ++i) diff += std::fabs(a[i] - c[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(Square, ReducesMarginWithoutGradients) {
  auto net = small_net(13);
  rhw::RandomEngine rng(14);
  const Tensor x = Tensor::rand_uniform({24, 8}, rng, 0.3f, 0.7f);
  const auto labels = labels_mod3(24);
  SquareConfig cfg;
  cfg.epsilon = 0.15f;
  cfg.queries = 80;
  const Tensor adv = square_attack(net, x, labels, cfg);
  // A random-search attack with a real budget must hurt at least as much as
  // the clean input on average (loss-based check keeps this robust).
  EXPECT_GT(batch_loss(net, adv, labels), batch_loss(net, x, labels));
}

TEST(Square, MoreQueriesNoWeaker) {
  auto net = small_net(15);
  rhw::RandomEngine rng(16);
  const Tensor x = Tensor::rand_uniform({24, 8}, rng, 0.3f, 0.7f);
  const auto labels = labels_mod3(24);
  // Mean margin z_true - best_other: the exact objective Square greedily
  // minimizes per example.
  auto mean_margin = [&](const Tensor& inputs) {
    const Tensor logits = net.forward(inputs);
    double total = 0;
    for (int64_t i = 0; i < logits.dim(0); ++i) {
      float best_other = -1e30f;
      for (int64_t j = 0; j < logits.dim(1); ++j) {
        if (j != labels[static_cast<size_t>(i)]) {
          best_other = std::max(best_other, logits.at(i, j));
        }
      }
      total += logits.at(i, labels[static_cast<size_t>(i)]) - best_other;
    }
    return total / static_cast<double>(logits.dim(0));
  };
  SquareConfig small;
  small.epsilon = 0.12f;
  small.queries = 10;
  SquareConfig big = small;
  big.queries = 120;
  const double margin_small =
      mean_margin(square_attack(net, x, labels, small));
  const double margin_big = mean_margin(square_attack(net, x, labels, big));
  // The two budgets explore different proposal sequences (the window-size
  // schedule rescales with the budget), so allow a little slack rather than
  // asserting strict monotonicity of a random search.
  EXPECT_LE(margin_big, margin_small + 0.1);
  EXPECT_LT(margin_big, mean_margin(x));
}

// -- noisy-gradient EOT-PGD ---------------------------------------------------

TEST(EotPgd, NoisyGradAveragesGatedNoiseAway) {
  // A net with a GATED stochastic post hook — invisible to plain PGD
  // (hooks disabled during gradients) but sampled by noisy_grad EOT. The
  // attack must still at least match plain PGD on the clean loss surface.
  auto net = small_net(17);
  auto rng_ptr = std::make_shared<rhw::RandomEngine>(18);
  net[0].set_post_hook(
      [rng_ptr](Tensor& t) {
        for (float& v : t.span()) v += 0.05f * rng_ptr->gaussian();
      },
      /*gated=*/true,
      [rng_ptr](uint64_t seed) { rng_ptr->reseed(seed); });

  rhw::RandomEngine rng(19);
  const Tensor x = Tensor::rand_uniform({32, 8}, rng, 0.3f, 0.7f);
  const auto labels = labels_mod3(32);
  PgdConfig plain;
  plain.epsilon = 0.1f;
  plain.random_start = false;
  PgdConfig eot = plain;
  eot.grad_samples = 8;
  eot.noisy_grad = true;
  const Tensor adv_plain = pgd(net, x, labels, plain);
  const Tensor adv_eot = pgd(net, x, labels, eot);
  // Judge both on the deterministic (hook-free) surface.
  nn::Module::HooksDisabledScope no_noise;
  const float loss_plain = batch_loss(net, adv_plain, labels);
  const float loss_eot = batch_loss(net, adv_eot, labels);
  EXPECT_GE(loss_eot, loss_plain * 0.85f);
  EXPECT_GT(loss_eot, batch_loss(net, x, labels));
}

TEST(EotPgd, DeterministicPerSeed) {
  auto net = small_net(21);
  auto rng_ptr = std::make_shared<rhw::RandomEngine>(22);
  net[0].set_post_hook(
      [rng_ptr](Tensor& t) {
        for (float& v : t.span()) v += 0.05f * rng_ptr->gaussian();
      },
      /*gated=*/true,
      [rng_ptr](uint64_t seed) { rng_ptr->reseed(seed); });
  rhw::RandomEngine rng(23);
  const Tensor x = Tensor::rand_uniform({4, 8}, rng, 0.3f, 0.7f);
  PgdConfig cfg;
  cfg.epsilon = 0.1f;
  cfg.steps = 2;
  cfg.grad_samples = 3;
  cfg.noisy_grad = true;
  cfg.seed = 99;
  const Tensor a = pgd(net, x, {0, 1, 2, 0}, cfg);
  const Tensor b = pgd(net, x, {0, 1, 2, 0}, cfg);
  for (int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

// Through the registry + evaluation harness: an end-to-end smoke that the
// spec-selected attacks reduce accuracy on a real (if tiny) model.
TEST(NewAttacks, RegistryAttacksPerturbThroughInterface) {
  auto net = small_net(25);
  rhw::RandomEngine rng(26);
  const Tensor x = Tensor::rand_uniform({8, 8}, rng, 0.3f, 0.7f);
  const auto labels = labels_mod3(8);
  for (const char* spec :
       {"fgsm", "pgd:steps=3", "eot_pgd:steps=2,samples=2",
        "mifgsm:steps=3", "square:queries=10"}) {
    auto attack = make_attack(spec);
    attack->set_epsilon(0.1f);
    AttackContext ctx;
    ctx.grad_net = &net;
    ctx.eval_net = &net;
    ctx.seed = 1234;
    const Tensor adv = attack->perturb(ctx, x, labels);
    ASSERT_TRUE(adv.same_shape(x)) << spec;
    double moved = 0;
    for (int64_t i = 0; i < x.numel(); ++i) {
      EXPECT_LE(std::fabs(adv[i] - x[i]), 0.1f + 1e-6f) << spec;
      moved += std::fabs(adv[i] - x[i]);
    }
    EXPECT_GT(moved, 0.0) << spec;
  }
}

}  // namespace
}  // namespace rhw::attacks
