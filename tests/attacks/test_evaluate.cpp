#include "attacks/evaluate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/synth_cifar.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"

namespace rhw::attacks {
namespace {

// Shared fixture: one small trained model (trained once for the whole suite).
class EvaluateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 60;
    dcfg.test_per_class = 25;
    dcfg.image_size = 16;
    dcfg.noise_std = 0.12f;
    dcfg.nuisance_amp = 0.15f;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));

    models::VggConfig mcfg;
    mcfg.depth = 8;
    mcfg.num_classes = 4;
    mcfg.in_size = 16;
    mcfg.width_mult = 0.125f;
    model_ = new models::Model(models::make_vgg(mcfg));
    models::TrainConfig tcfg;
    tcfg.epochs = 3;
    tcfg.batch_size = 48;
    models::train_model(*model_, *data_, tcfg);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static data::SynthCifar* data_;
  static models::Model* model_;
};

data::SynthCifar* EvaluateTest::data_ = nullptr;
models::Model* EvaluateTest::model_ = nullptr;

TEST_F(EvaluateTest, CleanAccuracyIsHighOnTrainedModel) {
  const double acc = clean_accuracy(*model_->net, data_->test);
  EXPECT_GT(acc, 70.0);
}

TEST_F(EvaluateTest, AttackReducesAccuracy) {
  AdvEvalConfig cfg;
  cfg.attack = "fgsm";
  cfg.epsilon = 0.15f;
  const auto res = evaluate_attack(*model_->net, *model_->net, data_->test,
                                   cfg);
  EXPECT_LT(res.adv_acc, res.clean_acc);
  EXPECT_GT(res.adversarial_loss(), 0.0);
}

TEST_F(EvaluateTest, StrongerEpsilonNoWeakerAttack) {
  AdvEvalConfig weak;
  weak.epsilon = 0.05f;
  AdvEvalConfig strong;
  strong.epsilon = 0.25f;
  const auto rw = evaluate_attack(*model_->net, *model_->net, data_->test,
                                  weak);
  const auto rs = evaluate_attack(*model_->net, *model_->net, data_->test,
                                  strong);
  EXPECT_LE(rs.adv_acc, rw.adv_acc + 2.0);  // small tolerance
}

TEST_F(EvaluateTest, PgdNoWeakerThanFgsm) {
  AdvEvalConfig fgsm_cfg;
  fgsm_cfg.attack = "fgsm";
  fgsm_cfg.epsilon = 0.1f;
  AdvEvalConfig pgd_cfg;
  pgd_cfg.attack = "pgd:steps=7";
  pgd_cfg.epsilon = 0.1f;
  const auto rf = evaluate_attack(*model_->net, *model_->net, data_->test,
                                  fgsm_cfg);
  const auto rp = evaluate_attack(*model_->net, *model_->net, data_->test,
                                  pgd_cfg);
  EXPECT_LE(rp.adv_acc, rf.adv_acc + 3.0);
}

TEST_F(EvaluateTest, AdversarialAccuracyAgreesWithFullEval) {
  AdvEvalConfig cfg;
  cfg.epsilon = 0.1f;
  const auto full = evaluate_attack(*model_->net, *model_->net, data_->test,
                                    cfg);
  const double only = adversarial_accuracy(*model_->net, *model_->net,
                                           data_->test, cfg);
  EXPECT_NEAR(full.adv_acc, only, 1e-9);
}

TEST_F(EvaluateTest, BatchSizeInvariance) {
  AdvEvalConfig small_batches;
  small_batches.epsilon = 0.1f;
  small_batches.batch_size = 7;
  small_batches.attack = "fgsm";
  AdvEvalConfig big_batches = small_batches;
  big_batches.batch_size = 100;
  // FGSM is deterministic, so accuracy must not depend on batching.
  const double a = adversarial_accuracy(*model_->net, *model_->net,
                                        data_->test, small_batches);
  const double b = adversarial_accuracy(*model_->net, *model_->net,
                                        data_->test, big_batches);
  EXPECT_NEAR(a, b, 1e-9);
}

// Regression for the seed-stream coupling bug: the noisy eval net's hook RNG
// used to advance during evaluate_attack's clean pass, so adversarial_accuracy
// (no clean pass) reported different adv numbers for an identical config.
// Both entry points must agree bit-for-bit for every attack family,
// including the ones that reseed (EOT-PGD) or query (Square) the eval net
// while crafting.
TEST_F(EvaluateTest, EntryPointsAgreeOnNoisyBackend) {
  models::Model hw_model = models::clone_model(*model_, 0.125f, 16);
  auto backend = hw::make_backend("sram:sites=2,num_8t=2,vdd=0.6");
  backend->prepare(hw_model);
  for (const std::string spec : {"fgsm", "pgd:steps=3", "eot_pgd:steps=2,samples=2", "square:queries=15"}) {
    AdvEvalConfig cfg;
    cfg.attack = spec;
    cfg.epsilon = 0.1f;
    const auto full = evaluate_attack(*model_->net, backend->module(),
                                      data_->test, cfg);
    const double only = adversarial_accuracy(*model_->net, backend->module(),
                                             data_->test, cfg);
    EXPECT_DOUBLE_EQ(full.adv_acc, only) << spec;
    // Repeated evaluation with the same config is bit-identical: each pass
    // reseeds the noise streams, so history cannot leak in.
    const auto again = evaluate_attack(*model_->net, backend->module(),
                                       data_->test, cfg);
    EXPECT_DOUBLE_EQ(full.clean_acc, again.clean_acc) << spec;
    EXPECT_DOUBLE_EQ(full.adv_acc, again.adv_acc) << spec;
  }
}

// Nearby user seeds used to share per-batch streams: under the old additive
// `seed + 0x9E37 * batch` derivation, batch k of seed s reused batch k-1's
// stream of seed s + 0x9E37. The splitmix64 derivation must decorrelate
// every (seed, batch) pair (the derivation itself is covered in
// tests/core/test_rng.cpp; here we pin the exact collision pattern the
// evaluation harness used to exhibit).
TEST_F(EvaluateTest, NearbySeedsGiveIndependentStreams) {
  const uint64_t seed = 1000;
  for (uint64_t batch = 1; batch < 8; ++batch) {
    const uint64_t craft_a =
        derive_stream_seed(derive_stream_seed(seed, kCraftStream), batch);
    const uint64_t craft_b = derive_stream_seed(
        derive_stream_seed(seed + 0x9E37, kCraftStream), batch - 1);
    EXPECT_NE(craft_a, craft_b) << "batch " << batch;
  }
}

TEST(Evaluate, EmptyAttackSpecRejected) {
  // Regression: an empty spec used to silently degrade to a clean-only pass
  // (adv == clean); it must fail loudly instead, pointing at the fix.
  models::Model m = models::build_model("vgg8", 4, 0.125f, 16);
  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.train_per_class = 1;
  dcfg.test_per_class = 2;
  dcfg.image_size = 16;
  const auto tiny = data::make_synth_cifar(dcfg);
  AdvEvalConfig cfg;
  cfg.attack = "";
  try {
    evaluate_attack(*m.net, *m.net, tiny.test, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("attack spec"), std::string::npos) << msg;
    EXPECT_NE(msg.find("clean"), std::string::npos) << msg;
  }
  EXPECT_THROW(adversarial_accuracy(*m.net, *m.net, tiny.test, cfg),
               std::invalid_argument);
}

TEST(Evaluate, EmptyDatasetGivesZero) {
  models::Model m = models::build_model("vgg8", 4, 0.125f, 16);
  data::Dataset empty;
  empty.images = Tensor({0, 3, 16, 16});
  empty.num_classes = 4;
  AdvEvalConfig cfg;
  const auto res = evaluate_attack(*m.net, *m.net, empty, cfg);
  EXPECT_EQ(res.clean_acc, 0.0);
  EXPECT_EQ(res.adv_acc, 0.0);
}

}  // namespace
}  // namespace rhw::attacks
