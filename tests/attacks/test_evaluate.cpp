#include "attacks/evaluate.hpp"

#include <gtest/gtest.h>

#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"

namespace rhw::attacks {
namespace {

// Shared fixture: one small trained model (trained once for the whole suite).
class EvaluateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 60;
    dcfg.test_per_class = 25;
    dcfg.image_size = 16;
    dcfg.noise_std = 0.12f;
    dcfg.nuisance_amp = 0.15f;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));

    models::VggConfig mcfg;
    mcfg.depth = 8;
    mcfg.num_classes = 4;
    mcfg.in_size = 16;
    mcfg.width_mult = 0.125f;
    model_ = new models::Model(models::make_vgg(mcfg));
    models::TrainConfig tcfg;
    tcfg.epochs = 3;
    tcfg.batch_size = 48;
    models::train_model(*model_, *data_, tcfg);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static data::SynthCifar* data_;
  static models::Model* model_;
};

data::SynthCifar* EvaluateTest::data_ = nullptr;
models::Model* EvaluateTest::model_ = nullptr;

TEST_F(EvaluateTest, CleanAccuracyIsHighOnTrainedModel) {
  const double acc = clean_accuracy(*model_->net, data_->test);
  EXPECT_GT(acc, 70.0);
}

TEST_F(EvaluateTest, AttackReducesAccuracy) {
  AdvEvalConfig cfg;
  cfg.kind = AttackKind::kFgsm;
  cfg.epsilon = 0.15f;
  const auto res = evaluate_attack(*model_->net, *model_->net, data_->test,
                                   cfg);
  EXPECT_LT(res.adv_acc, res.clean_acc);
  EXPECT_GT(res.adversarial_loss(), 0.0);
}

TEST_F(EvaluateTest, StrongerEpsilonNoWeakerAttack) {
  AdvEvalConfig weak;
  weak.epsilon = 0.05f;
  AdvEvalConfig strong;
  strong.epsilon = 0.25f;
  const auto rw = evaluate_attack(*model_->net, *model_->net, data_->test,
                                  weak);
  const auto rs = evaluate_attack(*model_->net, *model_->net, data_->test,
                                  strong);
  EXPECT_LE(rs.adv_acc, rw.adv_acc + 2.0);  // small tolerance
}

TEST_F(EvaluateTest, PgdNoWeakerThanFgsm) {
  AdvEvalConfig fgsm_cfg;
  fgsm_cfg.kind = AttackKind::kFgsm;
  fgsm_cfg.epsilon = 0.1f;
  AdvEvalConfig pgd_cfg;
  pgd_cfg.kind = AttackKind::kPgd;
  pgd_cfg.epsilon = 0.1f;
  pgd_cfg.pgd_steps = 7;
  const auto rf = evaluate_attack(*model_->net, *model_->net, data_->test,
                                  fgsm_cfg);
  const auto rp = evaluate_attack(*model_->net, *model_->net, data_->test,
                                  pgd_cfg);
  EXPECT_LE(rp.adv_acc, rf.adv_acc + 3.0);
}

TEST_F(EvaluateTest, AdversarialAccuracyAgreesWithFullEval) {
  AdvEvalConfig cfg;
  cfg.epsilon = 0.1f;
  const auto full = evaluate_attack(*model_->net, *model_->net, data_->test,
                                    cfg);
  const double only = adversarial_accuracy(*model_->net, *model_->net,
                                           data_->test, cfg);
  EXPECT_NEAR(full.adv_acc, only, 1e-9);
}

TEST_F(EvaluateTest, BatchSizeInvariance) {
  AdvEvalConfig small_batches;
  small_batches.epsilon = 0.1f;
  small_batches.batch_size = 7;
  small_batches.kind = AttackKind::kFgsm;
  AdvEvalConfig big_batches = small_batches;
  big_batches.batch_size = 100;
  // FGSM is deterministic, so accuracy must not depend on batching.
  const double a = adversarial_accuracy(*model_->net, *model_->net,
                                        data_->test, small_batches);
  const double b = adversarial_accuracy(*model_->net, *model_->net,
                                        data_->test, big_batches);
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(Evaluate, AttackNames) {
  EXPECT_EQ(attack_name(AttackKind::kFgsm), "FGSM");
  EXPECT_EQ(attack_name(AttackKind::kPgd), "PGD");
}

TEST(Evaluate, EmptyDatasetGivesZero) {
  models::Model m = models::build_model("vgg8", 4, 0.125f, 16);
  data::Dataset empty;
  empty.images = Tensor({0, 3, 16, 16});
  empty.num_classes = 4;
  AdvEvalConfig cfg;
  const auto res = evaluate_attack(*m.net, *m.net, empty, cfg);
  EXPECT_EQ(res.clean_acc, 0.0);
  EXPECT_EQ(res.adv_acc, 0.0);
}

}  // namespace
}  // namespace rhw::attacks
