// The sixth seam's contract: the dataset registry speaks the same spec
// grammar and token-naming error shape as the other five registries, routes
// the legacy generator names bit-identically, and caches loads by canonical
// spec.
#include "data/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "data/synth_cifar.hpp"

namespace rhw::data {
namespace {

constexpr const char* kTiny = "tiny:classes=4,train=8,test=3,size=16";

TEST(DatasetRegistry, KeysAreSortedAndContainTheBuiltins) {
  auto& registry = DatasetRegistry::instance();
  const auto keys = registry.keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (const char* key :
       {"cifar10", "mnist", "synth-c10", "synth-c100", "synth_cifar", "tiny"}) {
    EXPECT_TRUE(registry.contains(key)) << key;
  }
  EXPECT_FALSE(registry.contains("imagenet"));
}

// Error parity with the other five seams: unknown keys name the token and
// list what is registered.
TEST(DatasetRegistry, UnknownKeyNamesTokenAndListsKeys) {
  try {
    (void)make_dataset_provider("imagenet");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown dataset 'imagenet'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("registered:"), std::string::npos) << what;
    EXPECT_NE(what.find("cifar10"), std::string::npos) << what;
    EXPECT_NE(what.find("synth-c10"), std::string::npos) << what;
  }
}

// Option errors are wrapped with the full offending spec, like the hardware
// registry wraps its factory errors.
TEST(DatasetRegistry, OptionErrorsCarryTheFullSpec) {
  try {
    // rhw-lint: allow(spec) stale on purpose — synth-c10 takes no options
    (void)make_dataset_provider("synth-c10:classes=4");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dataset spec 'synth-c10:classes=4':"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("classes"), std::string::npos) << what;
  }
  // rhw-lint: allow(spec) stale on purpose — degenerate geometry
  EXPECT_THROW(make_dataset_provider("tiny:classes=1"), std::invalid_argument);
  // rhw-lint: allow(spec) stale on purpose — unknown option
  EXPECT_THROW(make_dataset_provider("tiny:sides=3"), std::invalid_argument);
  // rhw-lint: allow(spec) stale on purpose — non-numeric value
  EXPECT_THROW(make_dataset_provider("tiny:classes=abc"),
               std::invalid_argument);
}

TEST(DatasetRegistry, WrapperErrorsNameTheSeam) {
  try {
    (void)make_dataset_provider("tiny+noise:kind=fog");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown dataset wrapper 'noise'"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(make_dataset_provider("tiny+corrupt:sev=2"),
               std::invalid_argument);  // missing kind
  EXPECT_THROW(make_dataset_provider("tiny+corrupt:kind=melt,sev=1"),
               std::invalid_argument);
  EXPECT_THROW(make_dataset_provider("tiny+corrupt:kind=fog,sev=0"),
               std::invalid_argument);
  EXPECT_THROW(make_dataset_provider("tiny+corrupt:kind=fog,sev=6"),
               std::invalid_argument);
}

TEST(DatasetRegistry, TagsMatchTheLegacyCacheKeys) {
  EXPECT_EQ(make_dataset_provider("synth-c10")->tag(), "synth-c10");
  EXPECT_EQ(make_dataset_provider("synth-c100")->tag(), "synth-c100");
  EXPECT_EQ(make_dataset_provider(kTiny)->tag(), "tiny-c4");
  EXPECT_EQ(make_dataset_provider("cifar10:dir=/nope")->tag(), "cifar10");
  EXPECT_EQ(make_dataset_provider("mnist")->tag(), "mnist");
  EXPECT_EQ(
      make_dataset_provider(std::string(kTiny) + "+corrupt:kind=fog,sev=3")
          ->tag(),
      "tiny-c4+fog3");
}

// The registry path must be bit-identical to the legacy factory the bench
// harnesses used — the zoo cache and every golden figure depend on it.
TEST(DatasetRegistry, SynthC10MatchesLegacyFactoryBitwise) {
  const SynthCifar legacy = make_dataset_by_name("synth-c10");
  const SynthCifar routed = make_dataset_provider("synth-c10")->load();
  ASSERT_EQ(routed.train.size(), legacy.train.size());
  ASSERT_EQ(routed.test.size(), legacy.test.size());
  for (int64_t i = 0; i < legacy.train.images.numel(); ++i) {
    ASSERT_EQ(routed.train.images[i], legacy.train.images[i]);
  }
  for (int64_t i = 0; i < legacy.test.images.numel(); ++i) {
    ASSERT_EQ(routed.test.images[i], legacy.test.images[i]);
  }
  EXPECT_EQ(routed.train.labels, legacy.train.labels);
  EXPECT_EQ(routed.test.labels, legacy.test.labels);
}

// An identically-geometried tiny spec routes through the same generator as
// the old parse_dataset_section tiny path did.
TEST(DatasetRegistry, TinyMatchesTheGeneratorConfigBitwise) {
  SynthCifarConfig cfg;
  cfg.num_classes = 4;
  cfg.train_per_class = 8;
  cfg.test_per_class = 3;
  cfg.image_size = 16;
  const SynthCifar direct = make_synth_cifar(cfg);
  const SynthCifar routed = make_dataset_provider(kTiny)->load();
  ASSERT_EQ(routed.train.images.numel(), direct.train.images.numel());
  for (int64_t i = 0; i < direct.train.images.numel(); ++i) {
    ASSERT_EQ(routed.train.images[i], direct.train.images[i]);
  }
  EXPECT_EQ(routed.train.labels, direct.train.labels);
}

TEST(DatasetRegistry, CanonicalSpecSortsOptionsAndKeepsTheWrapper) {
  EXPECT_EQ(canonical_dataset_spec("tiny:train=8,classes=4,test=3,size=16"),
            "tiny:classes=4,size=16,test=3,train=8");
  EXPECT_EQ(canonical_dataset_spec("tiny:train=8,classes=4,test=3,size=16"
                                   "+corrupt:sev=3,kind=fog"),
            "tiny:classes=4,size=16,test=3,train=8+corrupt:kind=fog,sev=3");
  EXPECT_EQ(canonical_dataset_spec("synth-c10"), "synth-c10");
}

TEST(DatasetRegistry, SplitRuleNeverSplitsNumericPlus) {
  const auto [base, wrapper] =
      // rhw-lint: allow(spec) stale on purpose — 1e+5 probes the '+' split
      split_corrupt_spec("synth_cifar:seed=1e+5,classes=4");
  // rhw-lint: allow(spec) stale on purpose — 1e+5 probes the '+' split rule
  EXPECT_EQ(base, "synth_cifar:seed=1e+5,classes=4");
  EXPECT_TRUE(wrapper.empty());
  const auto [b2, w2] = split_corrupt_spec("tiny+corrupt:kind=fog,sev=1");
  EXPECT_EQ(b2, "tiny");
  EXPECT_EQ(w2, "corrupt:kind=fog,sev=1");
}

// load_dataset caches by canonical spec: spelling variants of one dataset
// return the same in-memory copy (same address).
TEST(DatasetRegistry, LoadDatasetCachesByCanonicalSpec) {
  const SynthCifar& a = load_dataset(kTiny);
  const SynthCifar& b =
      load_dataset("tiny:train=8,test=3,size=16,classes=4");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.train.size(), 32);
  EXPECT_EQ(a.test.size(), 12);
  const SynthCifar& c =
      load_dataset(std::string(kTiny) + "+corrupt:kind=fog,sev=2");
  EXPECT_NE(&a, &c);
}

}  // namespace
}  // namespace rhw::data
