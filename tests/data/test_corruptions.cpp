// Corruption contracts: bitwise determinism per spec+seed, strictly monotone
// severity, range preservation, and the wrapper's test-split-only rule.
#include "data/corruptions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "data/registry.hpp"
#include "data/synth_cifar.hpp"

namespace rhw::data {
namespace {

Dataset clean() {
  SynthCifarConfig cfg;
  cfg.num_classes = 4;
  cfg.train_per_class = 6;
  cfg.test_per_class = 2;
  cfg.image_size = 16;
  return make_synth_cifar(cfg).test;  // 8 samples, [8, 3, 16, 16]
}

double mean_abs_diff(const Dataset& a, const Dataset& b) {
  double acc = 0;
  for (int64_t i = 0; i < a.images.numel(); ++i) {
    acc += std::fabs(a.images[i] - b.images[i]);
  }
  return acc / static_cast<double>(a.images.numel());
}

TEST(Corruptions, KindsAreSortedAndComplete) {
  const auto& kinds = corruption_kinds();
  EXPECT_TRUE(std::is_sorted(kinds.begin(), kinds.end()));
  EXPECT_EQ(kinds.size(), 5u);
}

TEST(Corruptions, SameSpecAndSeedIsBitwiseEqual) {
  const Dataset base = clean();
  for (const auto& kind : corruption_kinds()) {
    CorruptionConfig cfg;
    cfg.kind = kind;
    cfg.severity = 3;
    const Dataset a = corrupt_dataset(base, cfg);
    const Dataset b = corrupt_dataset(base, cfg);
    for (int64_t i = 0; i < a.images.numel(); ++i) {
      ASSERT_EQ(a.images[i], b.images[i]) << kind << " @ " << i;
    }
    EXPECT_EQ(a.labels, base.labels) << kind;  // labels never change
  }
}

TEST(Corruptions, DifferentSeedsDifferForRandomKinds) {
  const Dataset base = clean();
  for (const std::string kind : {"gauss_noise", "shot", "fog"}) {
    CorruptionConfig cfg;
    cfg.kind = kind;
    cfg.severity = 3;
    const Dataset a = corrupt_dataset(base, cfg);
    cfg.seed += 1;
    const Dataset b = corrupt_dataset(base, cfg);
    EXPECT_GT(mean_abs_diff(a, b), 1e-4) << kind;
  }
}

// Higher severity ⇒ strictly larger mean deviation from the clean images,
// for every kind. This is the ordering the fig_cert-style sweeps rely on.
TEST(Corruptions, SeverityIsStrictlyMonotone) {
  const Dataset base = clean();
  for (const auto& kind : corruption_kinds()) {
    double prev = 0.0;
    for (int sev = 1; sev <= 5; ++sev) {
      CorruptionConfig cfg;
      cfg.kind = kind;
      cfg.severity = sev;
      const double dev = mean_abs_diff(base, corrupt_dataset(base, cfg));
      EXPECT_GT(dev, prev) << kind << " sev " << sev;
      prev = dev;
    }
  }
}

TEST(Corruptions, PixelsStayInUnitRange) {
  const Dataset base = clean();
  for (const auto& kind : corruption_kinds()) {
    CorruptionConfig cfg;
    cfg.kind = kind;
    cfg.severity = 5;
    const Dataset out = corrupt_dataset(base, cfg);
    EXPECT_GE(out.images.min(), 0.0f) << kind;
    EXPECT_LE(out.images.max(), 1.0f) << kind;
  }
}

// Per-sample seed streams: corrupting a slice equals slicing the corrupted
// dataset — corruption of sample i is independent of its neighbours.
TEST(Corruptions, SliceInvariant) {
  const Dataset base = clean();
  CorruptionConfig cfg;
  cfg.kind = "gauss_noise";
  cfg.severity = 2;
  const Dataset whole = corrupt_dataset(base, cfg).slice(0, 4);
  const Dataset part = corrupt_dataset(base.slice(0, 4), cfg);
  for (int64_t i = 0; i < whole.images.numel(); ++i) {
    ASSERT_EQ(whole.images[i], part.images[i]);
  }
}

TEST(Corruptions, RejectsBadKindSeverityAndRank) {
  CorruptionConfig cfg;
  cfg.kind = "melt";
  try {
    (void)corrupt_dataset(Dataset{}, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown kind 'melt'"), std::string::npos) << what;
    EXPECT_NE(what.find("gauss_noise"), std::string::npos) << what;
  }
  cfg.kind = "fog";
  cfg.severity = 0;
  EXPECT_THROW(corrupt_dataset(Dataset{}, cfg), std::invalid_argument);
  cfg.severity = 6;
  EXPECT_THROW(corrupt_dataset(Dataset{}, cfg), std::invalid_argument);
}

// Through the registry wrapper, only the test split is corrupted: the train
// split stays bitwise clean (so train=zoo models stay shareable).
TEST(Corruptions, WrapperCorruptsTestSplitOnly) {
  const char* base_spec = "tiny:classes=4,train=6,test=2,size=16";
  const SynthCifar clean_ds = make_dataset_provider(base_spec)->load();
  const SynthCifar foggy =
      make_dataset_provider(std::string(base_spec) + "+corrupt:kind=fog,sev=4")
          ->load();
  ASSERT_EQ(foggy.train.images.numel(), clean_ds.train.images.numel());
  for (int64_t i = 0; i < clean_ds.train.images.numel(); ++i) {
    ASSERT_EQ(foggy.train.images[i], clean_ds.train.images[i]);
  }
  EXPECT_GT(mean_abs_diff(clean_ds.test, foggy.test), 1e-3);
}

}  // namespace
}  // namespace rhw::data
