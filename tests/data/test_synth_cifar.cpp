#include "data/synth_cifar.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace rhw::data {
namespace {

SynthCifarConfig tiny_config() {
  SynthCifarConfig cfg;
  cfg.num_classes = 4;
  cfg.train_per_class = 20;
  cfg.test_per_class = 5;
  cfg.image_size = 16;
  return cfg;
}

TEST(SynthCifar, ShapesAndSizes) {
  const auto data = make_synth_cifar(tiny_config());
  EXPECT_EQ(data.train.size(), 80);
  EXPECT_EQ(data.test.size(), 20);
  EXPECT_EQ(data.train.images.shape(), (Shape{80, 3, 16, 16}));
  EXPECT_EQ(data.train.num_classes, 4);
  EXPECT_EQ(data.train.labels.size(), 80u);
}

TEST(SynthCifar, PixelsInUnitRange) {
  const auto data = make_synth_cifar(tiny_config());
  EXPECT_GE(data.train.images.min(), 0.f);
  EXPECT_LE(data.train.images.max(), 1.f);
}

TEST(SynthCifar, DeterministicForSameSeed) {
  const auto a = make_synth_cifar(tiny_config());
  const auto b = make_synth_cifar(tiny_config());
  for (int64_t i = 0; i < a.train.images.numel(); ++i) {
    ASSERT_EQ(a.train.images[i], b.train.images[i]);
  }
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(SynthCifar, DifferentSeedsDiffer) {
  auto cfg = tiny_config();
  const auto a = make_synth_cifar(cfg);
  cfg.seed += 1;
  const auto b = make_synth_cifar(cfg);
  double diff = 0;
  for (int64_t i = 0; i < a.train.images.numel(); ++i) {
    diff += std::fabs(a.train.images[i] - b.train.images[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(SynthCifar, AllClassesPresentAndBalanced) {
  const auto data = make_synth_cifar(tiny_config());
  std::vector<int> counts(4, 0);
  for (int64_t label : data.train.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 4);
    counts[static_cast<size_t>(label)]++;
  }
  for (int c : counts) EXPECT_EQ(c, 20);
}

TEST(SynthCifar, PrefixIsClassBalanced) {
  // head(n) is used for evaluation subsets; the generator interleaves
  // classes so prefixes stay balanced.
  const auto data = make_synth_cifar(tiny_config());
  const auto head = data.train.head(8);
  std::set<int64_t> classes(head.labels.begin(), head.labels.end());
  EXPECT_EQ(classes.size(), 4u);
}

TEST(SynthCifar, SameClassCloserThanCrossClass) {
  // The class-template structure must make same-class samples more similar
  // than cross-class samples on average (otherwise nothing is learnable).
  auto cfg = tiny_config();
  cfg.noise_std = 0.1f;
  const auto data = make_synth_cifar(cfg);
  const int64_t stride = 3 * 16 * 16;
  auto dist = [&](int64_t i, int64_t j) {
    double d = 0;
    for (int64_t k = 0; k < stride; ++k) {
      const double delta = data.train.images[i * stride + k] -
                           data.train.images[j * stride + k];
      d += delta * delta;
    }
    return d;
  };
  double same = 0, cross = 0;
  int64_t same_n = 0, cross_n = 0;
  for (int64_t i = 0; i < 40; ++i) {
    for (int64_t j = i + 1; j < 40; ++j) {
      if (data.train.labels[static_cast<size_t>(i)] ==
          data.train.labels[static_cast<size_t>(j)]) {
        same += dist(i, j);
        ++same_n;
      } else {
        cross += dist(i, j);
        ++cross_n;
      }
    }
  }
  EXPECT_LT(same / same_n, cross / cross_n);
}

TEST(SynthCifar, PresetsMatchPaperScales) {
  const auto c10 = synth_c10_config();
  EXPECT_EQ(c10.num_classes, 10);
  EXPECT_EQ(c10.image_size, 32);
  const auto c100 = synth_c100_config();
  EXPECT_EQ(c100.num_classes, 100);
}

TEST(SynthCifar, ByNameFactory) {
  EXPECT_THROW(make_dataset_by_name("cifar-nope"), std::invalid_argument);
}

TEST(Dataset, SliceAndGather) {
  const auto data = make_synth_cifar(tiny_config());
  const auto s = data.train.slice(10, 15);
  EXPECT_EQ(s.size(), 5);
  EXPECT_EQ(s.labels[0], data.train.labels[10]);
  const auto g = data.train.gather({0, 79});
  EXPECT_EQ(g.size(), 2);
  EXPECT_EQ(g.labels[1], data.train.labels[79]);
  EXPECT_THROW(data.train.gather({100}), std::out_of_range);
}

TEST(Dataset, SliceClampsBounds) {
  const auto data = make_synth_cifar(tiny_config());
  EXPECT_EQ(data.train.slice(70, 200).size(), 10);
  EXPECT_EQ(data.train.head(1000).size(), 80);
}

TEST(Dataset, ShuffledIndicesIsPermutation) {
  rhw::RandomEngine rng(1);
  const auto idx = shuffled_indices(100, rng);
  std::set<int64_t> seen(idx.begin(), idx.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

}  // namespace
}  // namespace rhw::data
