// Binary-loader round-trips against the checked-in fixtures plus the checked
// error paths. The fixtures are generated patterns (see
// tests/data/fixtures/README.md), so every pixel and label has a closed-form
// expected value.
#include "data/loaders.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/registry.hpp"

namespace fs = std::filesystem;

namespace rhw::data {
namespace {

const fs::path kFixtures =
    fs::path(RHW_SOURCE_DIR) / "tests" / "data" / "fixtures";

float byte_px(int64_t b) { return static_cast<float>(b % 256) / 255.0f; }

TEST(Cifar10Loader, FixtureRoundTripsExactly) {
  const SynthCifar ds = load_cifar10_dir((kFixtures / "cifar10").string());
  ASSERT_EQ(ds.train.size(), 12);
  ASSERT_EQ(ds.test.size(), 8);
  EXPECT_EQ(ds.train.images.shape(), (Shape{12, 3, 32, 32}));
  EXPECT_EQ(ds.train.num_classes, 10);
  EXPECT_EQ(ds.test.num_classes, 10);
  constexpr int64_t kStride = 3 * 32 * 32;
  for (int64_t i = 0; i < 12; ++i) {
    ASSERT_EQ(ds.train.labels[static_cast<size_t>(i)], i % 10);
    // The fixture writes pixel byte j of record i as (i*31 + j) % 256.
    for (int64_t j : {int64_t{0}, int64_t{1}, int64_t{255}, kStride - 1}) {
      ASSERT_EQ(ds.train.images[i * kStride + j], byte_px(i * 31 + j))
          << "record " << i << " byte " << j;
    }
  }
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(ds.test.labels[static_cast<size_t>(i)], i % 10);
    ASSERT_EQ(ds.test.images[i * kStride], byte_px(i * 31));
  }
}

TEST(MnistLoader, FixtureRoundTripsExactly) {
  const SynthCifar ds = load_mnist_dir((kFixtures / "mnist").string());
  ASSERT_EQ(ds.train.size(), 16);
  ASSERT_EQ(ds.test.size(), 8);
  EXPECT_EQ(ds.train.images.shape(), (Shape{16, 1, 28, 28}));
  EXPECT_EQ(ds.train.num_classes, 10);
  constexpr int64_t kStride = 28 * 28;
  for (int64_t i = 0; i < 16; ++i) {
    ASSERT_EQ(ds.train.labels[static_cast<size_t>(i)], i % 10);
    // The fixture writes pixel byte j of image i as (i*7 + j) % 256.
    for (int64_t j : {int64_t{0}, int64_t{300}, kStride - 1}) {
      ASSERT_EQ(ds.train.images[i * kStride + j], byte_px(i * 7 + j))
          << "image " << i << " byte " << j;
    }
  }
}

TEST(Loaders, RegistrySpecsResolveTheFixtureDirs) {
  const SynthCifar& cifar = load_dataset(
      "cifar10:dir=" + (kFixtures / "cifar10").string());
  EXPECT_EQ(cifar.train.size(), 12);
  const SynthCifar& mnist =
      load_dataset("mnist:dir=" + (kFixtures / "mnist").string());
  EXPECT_EQ(mnist.test.size(), 8);
}

// -- checked error paths ------------------------------------------------------
// Malformed files are written to a scratch dir; every failure must name the
// offending file and what was expected.

class LoaderErrors : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "rhw_loader_errors";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write(const std::string& name, const std::vector<uint8_t>& bytes) {
    std::ofstream os(dir_ / name, std::ios::binary);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(LoaderErrors, Cifar10RejectsMissingDirAndBatches) {
  EXPECT_THROW(load_cifar10_dir((dir_ / "nope").string()), std::runtime_error);
  EXPECT_THROW(load_cifar10_dir(dir_.string()), std::runtime_error);  // empty
}

TEST_F(LoaderErrors, Cifar10RejectsPartialRecords) {
  write("data_batch_1.bin", std::vector<uint8_t>(100, 0));  // not 3073-aligned
  try {
    (void)load_cifar10_dir(dir_.string());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("data_batch_1.bin"), std::string::npos) << what;
    EXPECT_NE(what.find("3073"), std::string::npos) << what;
  }
}

TEST_F(LoaderErrors, Cifar10RejectsOutOfRangeLabels) {
  std::vector<uint8_t> rec(3073, 0);
  rec[0] = 11;  // label >= 10
  write("data_batch_1.bin", rec);
  EXPECT_THROW(load_cifar10_dir(dir_.string()), std::runtime_error);
}

TEST_F(LoaderErrors, MnistRejectsBadMagicAndTruncation) {
  // magic 0x804 instead of 0x803
  write("train-images-idx3-ubyte", {0, 0, 8, 4, 0, 0, 0, 0,  //
                                    0, 0, 0, 1, 0, 0, 0, 1});
  try {
    (void)load_mnist_dir(dir_.string());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("expected 2051"), std::string::npos)
        << e.what();
  }
  // Right magic, header promises one 2x2 image but payload is short.
  write("train-images-idx3-ubyte", {0, 0, 8, 3, 0, 0, 0, 1,  //
                                    0, 0, 0, 2, 0, 0, 0, 2, 9});
  EXPECT_THROW(load_mnist_dir(dir_.string()), std::runtime_error);
}

TEST_F(LoaderErrors, MnistRejectsCountMismatch) {
  // One 2x2 image...
  write("train-images-idx3-ubyte", {0, 0, 8, 3, 0, 0, 0, 1,  //
                                    0, 0, 0, 2, 0, 0, 0, 2,  //
                                    1, 2, 3, 4});
  // ...but two labels.
  write("train-labels-idx1-ubyte", {0, 0, 8, 1, 0, 0, 0, 2, 1, 2});
  try {
    (void)load_mnist_dir(dir_.string());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("2 labels for 1 images"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace rhw::data
