// Hardened batching-helper contracts: slice validates its range, gather
// validates rank and indices, head stays clamped. These are regression tests
// for the checked-error semantics docs/DATASETS.md promises.
#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/synth_cifar.hpp"

namespace rhw::data {
namespace {

Dataset small() {
  SynthCifarConfig cfg;
  cfg.num_classes = 4;
  cfg.train_per_class = 5;
  cfg.test_per_class = 2;
  cfg.image_size = 8;
  return make_synth_cifar(cfg).train;  // 20 samples, [20, 3, 8, 8]
}

TEST(DatasetSlice, ValidatesBeginAndOrderButClampsEnd) {
  const Dataset d = small();
  EXPECT_THROW(d.slice(-1, 3), std::out_of_range);
  EXPECT_THROW(d.slice(21, 25), std::out_of_range);
  EXPECT_THROW(d.slice(5, 4), std::out_of_range);
  // The batch loops ask for [i, i+batch) on the final partial batch, so the
  // end clamps instead of throwing.
  EXPECT_EQ(d.slice(16, 32).size(), 4);
  EXPECT_EQ(d.slice(20, 25).size(), 0);  // begin == size(): empty, not error
}

TEST(DatasetSlice, EmptySliceKeepsMetadata) {
  const Dataset d = small();
  const Dataset empty = d.slice(3, 3);
  EXPECT_EQ(empty.size(), 0);
  EXPECT_EQ(empty.num_classes, 4);
  EXPECT_EQ(empty.images.rank(), 4);
  EXPECT_EQ(empty.images.dim(1), 3);
  EXPECT_EQ(empty.images.dim(3), 8);
}

TEST(DatasetGather, ChecksIndicesWithNamedError) {
  const Dataset d = small();
  EXPECT_THROW(d.gather({-1}), std::out_of_range);
  try {
    (void)d.gather({0, 20});
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("index 20"), std::string::npos) << what;
    EXPECT_NE(what.find("20 sample(s)"), std::string::npos) << what;
  }
}

TEST(DatasetGather, EmptyIndicesIsAnEmptyBatchEvenWithoutImages) {
  const Dataset none;  // default-constructed: rank-0 images
  EXPECT_EQ(none.gather({}).size(), 0);
  EXPECT_EQ(none.slice(0, 0).size(), 0);
  // A non-empty gather of a dataset without rank-4 images is a contract
  // violation, named as such.
  EXPECT_THROW(none.gather({0}), std::invalid_argument);
}

TEST(DatasetHead, ClampsBothEnds) {
  const Dataset d = small();
  EXPECT_EQ(d.head(-5).size(), 0);
  EXPECT_EQ(d.head(0).size(), 0);
  EXPECT_EQ(d.head(7).size(), 7);
  EXPECT_EQ(d.head(1000).size(), 20);
}

}  // namespace
}  // namespace rhw::data
