// End-to-end: rhw_run's serve path produces a valid rhw-serve-v1 artifact
// with deterministic request-level results. Runs the real driver
// (run_experiment) on a shrunk serve_smoke, then schema-checks the JSON and
// re-runs to assert digest equality.
#include "serve/serve_experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

namespace rhw::serve {
namespace {

constexpr char kArtifact[] = "BENCH_serve_itest.json";

// Shrunk serve_smoke: two load points, few requests, tiny eval head, fixed
// lane count — fast enough for CI, still three arms end to end.
const std::vector<std::string> kOverrides = {
    "qps=600,2400", "requests=32", "eval_count=16",
    "lanes=2",      "batch_max=4", std::string("out=") + kArtifact,
};

std::string read_artifact() {
  std::ifstream is(kArtifact);
  EXPECT_TRUE(is.good()) << "missing " << kArtifact;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::vector<std::string> extract_digests(const std::string& json) {
  std::vector<std::string> digests;
  const std::regex re("\"digest\":([0-9]+)");
  for (auto it = std::sregex_iterator(json.begin(), json.end(), re);
       it != std::sregex_iterator(); ++it) {
    digests.push_back((*it)[1].str());
  }
  return digests;
}

TEST(ServeExperiment, SmokePresetWritesValidServeV1Artifact) {
  std::remove(kArtifact);
  ASSERT_NO_THROW(exp::run_experiment("serve_smoke", kOverrides));
  const std::string json = read_artifact();

  // Schema stamp and provenance: the artifact embeds the exact command.
  EXPECT_NE(json.find("\"schema\":\"rhw-serve-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"preset\":\"serve_smoke\""), std::string::npos);
  EXPECT_NE(json.find("rhw_run serve_smoke"), std::string::npos);
  EXPECT_NE(json.find("\"serve=1\""), std::string::npos);  // canonical args
  EXPECT_NE(json.find("\"qps=600,2400\""), std::string::npos);
  EXPECT_NE(json.find("\"engine\":"), std::string::npos);
  EXPECT_NE(json.find("\"seed\":"), std::string::npos);
  EXPECT_NE(json.find("\"lanes\":2"), std::string::npos);
  EXPECT_NE(json.find("\"batch_max\":4"), std::string::npos);

  // All three arms with their backend/defense stamps.
  EXPECT_NE(json.find("\"key\":\"ideal\""), std::string::npos);
  EXPECT_NE(json.find("\"key\":\"disc4b\""), std::string::npos);
  EXPECT_NE(json.find("\"key\":\"sram\""), std::string::npos);
  EXPECT_NE(json.find("\"defense\":\"jpeg_quant:bits=4\""), std::string::npos);
  EXPECT_NE(json.find("\"defense\":\"none\""), std::string::npos);
  EXPECT_NE(json.find("\"stochastic\":true"), std::string::npos);
  EXPECT_NE(json.find("\"spec\":\"sram:"), std::string::npos);

  // Latency percentiles and offered vs achieved load on every curve point.
  for (const char* field :
       {"\"offered_qps\":", "\"achieved_qps\":", "\"p50_us\":", "\"p95_us\":",
        "\"p99_us\":", "\"mean_batch\":", "\"accuracy\":", "\"completed\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // 3 arms x 2 load points.
  size_t points = 0;
  for (size_t pos = 0; (pos = json.find("\"offered_qps\":", pos)) !=
                       std::string::npos;
       ++pos) {
    ++points;
  }
  EXPECT_EQ(points, 6u);

  // One digest per arm, enforced identical across the arm's load points by
  // the runner itself (it throws if batching leaked into results).
  EXPECT_EQ(extract_digests(json).size(), 3u);
}

TEST(ServeExperiment, RerunReproducesRequestLevelDigests) {
  std::remove(kArtifact);
  exp::run_experiment("serve_smoke", kOverrides);
  const std::vector<std::string> first = extract_digests(read_artifact());
  std::remove(kArtifact);
  exp::run_experiment("serve_smoke", kOverrides);
  const std::vector<std::string> second = extract_digests(read_artifact());
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first, second);
}

TEST(ServeExperiment, LanesEnvParsing) {
  setenv("RHW_SERVE_LANES", "5", 1);
  EXPECT_EQ(serve_lanes_env(7), 5u);
  setenv("RHW_SERVE_LANES", "bogus", 1);
  EXPECT_EQ(serve_lanes_env(7), 7u);  // non-numeric: fall back
  unsetenv("RHW_SERVE_LANES");
  EXPECT_EQ(serve_lanes_env(7), 7u);
}

}  // namespace
}  // namespace rhw::serve
