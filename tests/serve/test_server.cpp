#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "data/synth_cifar.hpp"
#include "defenses/registry.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"
#include "nn/module.hpp"
#include "serve/batcher.hpp"

namespace rhw::serve {
namespace {

// -- Batcher: the micro-batching invariants, in virtual time ------------------

PendingRequest make_request(uint64_t id, uint64_t enqueue_us) {
  return {id, Tensor({1, 1, 2, 2}), enqueue_us};
}

TEST(Batcher, SizeTriggerFiresAtBatchMaxAndNeverExceedsIt) {
  Batcher batcher({4, 1000});
  for (uint64_t i = 0; i < 11; ++i) batcher.push(make_request(i, 100));

  // Queue holds 11 >= batch_max: ready immediately, oldest four, FIFO.
  std::vector<PendingRequest> batch = batcher.pop_ready(100);
  ASSERT_EQ(batch.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].id, i);

  batch = batcher.pop_ready(100);
  ASSERT_EQ(batch.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].id, 4 + i);

  // Three left: below batch_max and before the deadline — not ready.
  EXPECT_TRUE(batcher.pop_ready(100).empty());
  EXPECT_EQ(batcher.depth(), 3u);
}

TEST(Batcher, LingerDeadlineIsHonoredExactly) {
  Batcher batcher({16, 1000});
  batcher.push(make_request(0, 250));
  batcher.push(make_request(1, 400));

  EXPECT_EQ(batcher.next_deadline_us(), 1250u);  // oldest enqueue + linger
  EXPECT_TRUE(batcher.pop_ready(1249).empty());  // one tick early: not ready

  const std::vector<PendingRequest> batch = batcher.pop_ready(1250);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[1].id, 1u);
  EXPECT_EQ(batcher.next_deadline_us(), UINT64_MAX);  // empty queue
}

TEST(Batcher, ZeroLingerServesImmediately) {
  Batcher batcher({16, 0});
  batcher.push(make_request(0, 77));
  EXPECT_EQ(batcher.pop_ready(77).size(), 1u);
}

TEST(Batcher, FlushDrainsPartialBatchesInOrder) {
  Batcher batcher({4, 1000000});
  for (uint64_t i = 0; i < 6; ++i) batcher.push(make_request(i, 10));
  ASSERT_EQ(batcher.pop_ready(20).size(), 4u);  // size trigger fires first
  // Two left, deadline far away: only flush drains them.
  EXPECT_TRUE(batcher.pop_ready(20).empty());
  const std::vector<PendingRequest> tail = batcher.pop_ready(20, true);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].id, 4u);
  EXPECT_EQ(tail[1].id, 5u);
  EXPECT_EQ(batcher.depth(), 0u);
  EXPECT_TRUE(batcher.pop_ready(20, true).empty());  // flush on empty: empty
}

TEST(Batcher, DegeneratePolicyThrows) {
  EXPECT_THROW(Batcher({0, 1000}), std::invalid_argument);
  EXPECT_THROW(Batcher({4, -1}), std::invalid_argument);
}

// -- Server: parity, determinism, drain ---------------------------------------

// One small untrained model + dataset shared by every server test (the sweep
// suite's fixture shape — determinism, not accuracy, is under test).
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 4;
    dcfg.test_per_class = 8;
    dcfg.image_size = 16;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));
    model_ = new models::Model(models::build_model("vgg8", 4, 0.125f, 16));
    model_->net->set_training(false);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static constexpr float kWidth = 0.125f;
  static constexpr int64_t kIn = 16;
  static constexpr uint64_t kSeed = 0xADE5;

  // The first `n` eval images as [1,C,H,W] request tensors.
  static std::vector<Tensor> eval_inputs(int64_t n) {
    const Tensor& images = data_->test.images;
    const int64_t sample = images.dim(1) * images.dim(2) * images.dim(3);
    std::vector<Tensor> inputs;
    for (int64_t i = 0; i < n; ++i) {
      inputs.push_back(Tensor::from_span(
          {1, images.dim(1), images.dim(2), images.dim(3)},
          std::span<const float>(images.data() + i * sample,
                                 static_cast<size_t>(sample))));
    }
    return inputs;
  }

  // No calibration set: the SRAM arm then installs its fallback hybrid word
  // on the first sites (mode 3), same as the serve presets' uncalibrated
  // arms — which keeps it stochastic on this tiny fixture.
  static ServeArm make_arm(const std::string& hw, const std::string& defense) {
    ServeArm arm;
    arm.key = "test";
    arm.hw = hw;
    arm.defense = defense;
    arm.train_data = data_;
    return arm;
  }

  // A single replica built exactly the way Server builds its prototype lane,
  // for serial reference forwards.
  struct Reference {
    models::Model model;
    hw::BackendPtr inner;
    hw::BackendPtr wrapped;
    hw::HardwareBackend* serving() const {
      return wrapped ? wrapped.get() : inner.get();
    }
  };

  static Reference make_reference(const ServeArm& arm) {
    Reference ref;
    const defenses::DefensePtr defense =
        defenses::make_defense(arm.defense.empty() ? "none" : arm.defense);
    defenses::DefenseContext dctx;
    dctx.train_data = arm.train_data;
    dctx.calibration = arm.calibration;
    ref.model = models::clone_model(*model_, kWidth, kIn);
    defense->harden(ref.model, dctx);
    ref.inner = hw::make_backend(arm.hw);
    ref.inner->prepare(ref.model, arm.calibration);
    ref.wrapped = defense->wrap(*ref.inner);
    return ref;
  }

  // Runs a server over the inputs (submitted back-to-back, ids 0..n-1) and
  // returns its replies sorted by id.
  static std::vector<Reply> serve_all(const ServeArm& arm, unsigned lanes,
                                      const std::vector<Tensor>& inputs,
                                      ServeReport* report = nullptr) {
    ServerConfig cfg;
    cfg.lanes = lanes;
    cfg.batch_max = 4;
    cfg.linger_us = 200;
    cfg.seed = kSeed;
    Server server(*model_, kWidth, kIn, arm, cfg);
    server.start();
    for (const Tensor& input : inputs) server.submit(input);
    server.shutdown();
    if (report != nullptr) *report = server.report();
    return server.replies();
  }

  static data::SynthCifar* data_;
  static models::Model* model_;
};

data::SynthCifar* ServerTest::data_ = nullptr;
models::Model* ServerTest::model_ = nullptr;

// A noise-free arm serves through the fused batched forward; every reply must
// be bit-identical to a serial forward of the same request on an identically
// built replica — micro-batch composition must not leak into results.
TEST_F(ServerTest, FusedRepliesMatchSerialForwardBitwise) {
  const std::vector<Tensor> inputs = eval_inputs(12);
  ServeReport report;
  const std::vector<Reply> replies =
      serve_all(make_arm("ideal", ""), 3, inputs, &report);
  ASSERT_EQ(replies.size(), inputs.size());
  EXPECT_FALSE(report.stochastic);

  const Reference ref = make_reference(make_arm("ideal", ""));
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Tensor logits = ref.serving()->forward(inputs[i]);
    const int64_t predicted = logits.argmax_rows()[0];
    EXPECT_EQ(replies[i].id, i);
    EXPECT_EQ(replies[i].predicted, predicted) << "request " << i;
    EXPECT_EQ(replies[i].score, logits.data()[predicted]) << "request " << i;
    EXPECT_GE(replies[i].batch_size, 1u);
    EXPECT_LE(replies[i].batch_size, 4u);  // never exceeds batch_max
  }
}

// Defense-wrapped arms serve from the same spec strings as sweeps and keep
// the same serial parity.
TEST_F(ServerTest, DefenseWrappedArmMatchesSerialForward) {
  const ServeArm arm = make_arm("ideal", "jpeg_quant:bits=4");
  const std::vector<Tensor> inputs = eval_inputs(8);
  const std::vector<Reply> replies = serve_all(arm, 2, inputs);
  ASSERT_EQ(replies.size(), inputs.size());

  const Reference ref = make_reference(arm);
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Tensor logits = ref.serving()->forward(inputs[i]);
    EXPECT_EQ(replies[i].predicted, logits.argmax_rows()[0]) << "request " << i;
    EXPECT_EQ(replies[i].score, logits.data()[replies[i].predicted])
        << "request " << i;
  }
}

// A stochastic arm pins request id i to request_seed(seed, i): the reply must
// match a serial forward under the same derived seed, independent of lane
// assignment and batch shape.
TEST_F(ServerTest, StochasticRepliesMatchPerRequestSeededSerialForward) {
  const ServeArm arm = make_arm("sram:sites=2,num_8t=2,vdd=0.6", "");
  const std::vector<Tensor> inputs = eval_inputs(10);
  ServeReport report;
  const std::vector<Reply> replies = serve_all(arm, 4, inputs, &report);
  ASSERT_EQ(replies.size(), inputs.size());
  EXPECT_TRUE(report.stochastic);

  const Reference ref = make_reference(arm);
  for (size_t i = 0; i < inputs.size(); ++i) {
    nn::reseed_noise_streams(ref.serving()->module(),
                             Server::request_seed(kSeed, i));
    const Tensor logits = ref.serving()->forward(inputs[i]);
    EXPECT_EQ(replies[i].predicted, logits.argmax_rows()[0]) << "request " << i;
    EXPECT_EQ(replies[i].score, logits.data()[replies[i].predicted])
        << "request " << i;
  }
}

// Same seed => same per-request outputs at any lane count: one lane and eight
// lanes batch very differently, but replies and digests must agree.
TEST_F(ServerTest, RepliesAreIdenticalAcrossLaneCounts) {
  const std::vector<Tensor> inputs = eval_inputs(16);
  for (const std::string hw : {"ideal", "sram:sites=2,num_8t=2,vdd=0.6"}) {
    ServeReport one_report, eight_report;
    const std::vector<Reply> one =
        serve_all(make_arm(hw, ""), 1, inputs, &one_report);
    const std::vector<Reply> eight =
        serve_all(make_arm(hw, ""), 8, inputs, &eight_report);
    ASSERT_EQ(one.size(), inputs.size()) << hw;
    ASSERT_EQ(eight.size(), inputs.size()) << hw;
    for (size_t i = 0; i < inputs.size(); ++i) {
      EXPECT_EQ(one[i].predicted, eight[i].predicted) << hw << " request " << i;
      EXPECT_EQ(one[i].score, eight[i].score) << hw << " request " << i;
    }
    EXPECT_EQ(one_report.digest, eight_report.digest) << hw;
    EXPECT_EQ(one_report.completed, inputs.size());
  }
}

// shutdown() drains: every submitted request completes even when the linger
// deadline is far in the future and the size trigger never fires.
TEST_F(ServerTest, ShutdownDrainsTheQueue) {
  ServerConfig cfg;
  cfg.lanes = 2;
  cfg.batch_max = 64;
  cfg.linger_us = 60 * 1000 * 1000;  // a minute: only the flush can drain
  cfg.seed = kSeed;
  Server server(*model_, kWidth, kIn, make_arm("ideal", ""), cfg);
  server.start();
  const std::vector<Tensor> inputs = eval_inputs(8);
  std::vector<uint64_t> ids;
  for (int round = 0; round < 3; ++round) {
    for (const Tensor& input : inputs) ids.push_back(server.submit(input));
  }
  server.shutdown();

  const std::vector<Reply> replies = server.replies();
  ASSERT_EQ(replies.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(replies[i].id, ids[i]);  // sorted by id, none missing
    EXPECT_GE(replies[i].done_us, replies[i].enqueue_us);
    EXPECT_EQ(replies[i].latency_us,
              replies[i].done_us - replies[i].enqueue_us);
  }
  EXPECT_LT(server.report().mean_batch, 65.0);
}

TEST_F(ServerTest, SubmitAfterShutdownThrows) {
  Server server(*model_, kWidth, kIn, make_arm("ideal", ""), {1, 4, 100, 1});
  server.start();
  server.submit(eval_inputs(1)[0]);
  server.shutdown();
  server.shutdown();  // idempotent
  EXPECT_THROW(server.submit(eval_inputs(1)[0]), std::logic_error);
  EXPECT_EQ(server.replies().size(), 1u);
}

TEST_F(ServerTest, ConstructionAndStartGuards) {
  EXPECT_THROW(
      Server(*model_, kWidth, kIn, make_arm("ideal", ""), {0, 4, 100, 1}),
      std::invalid_argument);
  Server server(*model_, kWidth, kIn, make_arm("ideal", ""), {1, 4, 100, 1});
  server.start();
  EXPECT_THROW(server.start(), std::logic_error);
  EXPECT_EQ(server.arm_name(), hw::make_backend("ideal")->name());
  server.shutdown();

  // A bad hw spec surfaces the registry's token-naming error from start().
  Server bad(*model_, kWidth, kIn, make_arm("warp-drive", ""), {1, 4, 100, 1});
  EXPECT_THROW(bad.start(), std::invalid_argument);
}

// [C,H,W] submissions are accepted and served like [1,C,H,W] ones.
TEST_F(ServerTest, SubmitAcceptsUnbatchedImages) {
  const std::vector<Tensor> inputs = eval_inputs(2);
  Server server(*model_, kWidth, kIn, make_arm("ideal", ""), {1, 4, 100, kSeed});
  server.start();
  server.submit(
      inputs[0].reshaped({inputs[0].dim(1), inputs[0].dim(2), inputs[0].dim(3)}));
  EXPECT_THROW(server.submit(Tensor({4, 4})), std::invalid_argument);
  server.shutdown();
  const std::vector<Reply> replies = server.replies();
  ASSERT_EQ(replies.size(), 1u);

  const std::vector<Reply> batched =
      serve_all(make_arm("ideal", ""), 1, {inputs[0]});
  EXPECT_EQ(replies[0].predicted, batched[0].predicted);
  EXPECT_EQ(replies[0].score, batched[0].score);
}

}  // namespace
}  // namespace rhw::serve
