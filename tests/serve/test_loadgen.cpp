#include "serve/loadgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rng.hpp"
#include "serve/latency.hpp"

namespace rhw::serve {
namespace {

// -- LoadGen: deterministic open-loop Poisson schedules -----------------------

TEST(LoadGen, ScheduleIsBitIdenticalPerSeed) {
  const LoadGenConfig config{{{500.0, 400}, {2000.0, 400}}, 0x1234};
  const std::vector<Arrival> a = LoadGen(config).schedule();
  const std::vector<Arrival> b = LoadGen(config).schedule();
  ASSERT_EQ(a.size(), 800u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].time_us, b[i].time_us) << "arrival " << i;
    EXPECT_EQ(a[i].stage, b[i].stage);
  }

  // A different seed reshuffles the gaps (same shape, different times).
  const std::vector<Arrival> c =
      LoadGen({{{500.0, 400}, {2000.0, 400}}, 0x1235}).schedule();
  ASSERT_EQ(c.size(), a.size());
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].time_us != c[i].time_us) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(LoadGen, IdsSequentialTimesNondecreasingStagesLabeled) {
  const std::vector<Arrival> schedule =
      LoadGen({{{1000.0, 50}, {4000.0, 70}}, 0xADE5}).schedule();
  ASSERT_EQ(schedule.size(), 120u);
  for (size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].id, i);
    EXPECT_EQ(schedule[i].stage, i < 50 ? 0u : 1u);
    if (i > 0) {
      EXPECT_GE(schedule[i].time_us, schedule[i - 1].time_us);
    }
  }
}

// Editing a later ramp stage never perturbs an earlier one: each stage draws
// from its own derived stream, so schedule([A]) is a prefix of
// schedule([A, B]) bit-for-bit.
TEST(LoadGen, StagePrefixProperty) {
  const RampStage a{800.0, 120};
  const RampStage b{3200.0, 60};
  const std::vector<Arrival> solo = LoadGen({{a}, 0xADE5}).schedule();
  const std::vector<Arrival> ramp = LoadGen({{a, b}, 0xADE5}).schedule();
  ASSERT_EQ(solo.size(), 120u);
  ASSERT_EQ(ramp.size(), 180u);
  for (size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(ramp[i].time_us, solo[i].time_us) << "arrival " << i;
  }
  // And the second stage continues from where the first ended.
  EXPECT_GE(ramp[120].time_us, solo.back().time_us);
}

// The empirical rate of each stage hits its configured QPS within sampling
// tolerance, in virtual time (no clock anywhere). With n exponential gaps the
// relative standard error of the mean gap is 1/sqrt(n), so 5k samples leave
// ~1.4% noise; 10% tolerance is comfortably outside it.
TEST(LoadGen, RampHitsConfiguredQpsInVirtualTime) {
  const std::vector<RampStage> stages{{200.0, 5000}, {1000.0, 5000}};
  const std::vector<Arrival> schedule = LoadGen({stages, 0xADE5}).schedule();
  size_t begin = 0;
  for (size_t s = 0; s < stages.size(); ++s) {
    const size_t end = begin + static_cast<size_t>(stages[s].requests);
    const uint64_t t_begin = begin == 0 ? 0 : schedule[begin - 1].time_us;
    const uint64_t t_end = schedule[end - 1].time_us;
    const double span_s = static_cast<double>(t_end - t_begin) * 1e-6;
    ASSERT_GT(span_s, 0.0);
    const double achieved =
        static_cast<double>(stages[s].requests) / span_s;
    EXPECT_NEAR(achieved, stages[s].qps, 0.10 * stages[s].qps)
        << "stage " << s;
    begin = end;
  }
}

TEST(LoadGen, DurationMatchesLastArrival) {
  const LoadGen gen({{{1500.0, 64}}, 7});
  EXPECT_EQ(gen.duration_us(), gen.schedule().back().time_us);
}

TEST(LoadGen, DegenerateConfigsThrowNamingTheStage) {
  EXPECT_THROW(LoadGen({{}, 0}), std::invalid_argument);
  try {
    LoadGen({{{100.0, 10}, {0.0, 10}}, 0});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find('1'), std::string::npos)
        << "error should name stage 1: " << e.what();
  }
  EXPECT_THROW(LoadGen({{{-5.0, 10}}, 0}), std::invalid_argument);
  EXPECT_THROW(LoadGen({{{100.0, 0}}, 0}), std::invalid_argument);
}

// -- LatencyHistogram: streaming quantiles vs exact sorted quantiles ----------

uint64_t exact_percentile(std::vector<uint64_t> values, double p) {
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

TEST(LatencyHistogram, ExactBelowThirtyTwoMicroseconds) {
  LatencyHistogram hist;
  std::vector<uint64_t> values;
  RandomEngine rng(derive_stream_seed(0xADE5, 1));
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.next_u64() % 32;
    hist.record(v);
    values.push_back(v);
  }
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(hist.percentile(p), exact_percentile(values, p)) << "p" << p;
  }
  EXPECT_EQ(hist.max(), *std::max_element(values.begin(), values.end()));
  EXPECT_EQ(hist.count(), 2000u);
}

// Above the exact range the estimate is the midpoint of a bucket whose width
// is 2^-kSubBits of its value, so the relative error is bounded by ~1.6%;
// assert within 4% against exact quantiles for two known distributions.
TEST(LatencyHistogram, TracksExactQuantilesOnKnownDistributions) {
  RandomEngine rng(derive_stream_seed(0xADE5, 2));

  // Uniform on [100, 100100) us.
  {
    LatencyHistogram hist;
    std::vector<uint64_t> values;
    for (int i = 0; i < 20000; ++i) {
      const uint64_t v = 100 + rng.next_u64() % 100000;
      hist.record(v);
      values.push_back(v);
    }
    for (const double p : {50.0, 95.0, 99.0}) {
      const double exact = static_cast<double>(exact_percentile(values, p));
      EXPECT_NEAR(static_cast<double>(hist.percentile(p)), exact, 0.04 * exact)
          << "uniform p" << p;
    }
  }

  // Exponential with mean 5000 us — the serving-latency shape.
  {
    LatencyHistogram hist;
    std::vector<uint64_t> values;
    for (int i = 0; i < 20000; ++i) {
      const auto v = static_cast<uint64_t>(
          std::llround(-std::log1p(-rng.next_double()) * 5000.0));
      hist.record(v);
      values.push_back(v);
    }
    for (const double p : {50.0, 95.0, 99.0}) {
      const double exact = static_cast<double>(exact_percentile(values, p));
      EXPECT_NEAR(static_cast<double>(hist.percentile(p)), exact,
                  0.04 * exact + 1.0)
          << "exponential p" << p;
    }
  }
}

TEST(LatencyHistogram, MeanIsExactAndEmptyReportsZero) {
  LatencyHistogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.percentile(50.0), 0u);
  EXPECT_EQ(empty.max(), 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  LatencyHistogram hist;
  hist.record(10);
  hist.record(1000000);
  hist.record(40);
  EXPECT_DOUBLE_EQ(hist.mean(), (10.0 + 1000000.0 + 40.0) / 3.0);
  EXPECT_EQ(hist.max(), 1000000u);
}

}  // namespace
}  // namespace rhw::serve
