// End-to-end reproduction smoke tests: the paper's two headline effects on a
// small trained model. Seeds are fixed; assertions are directional (the
// paper's claims), with lenient margins to stay robust.
#include <gtest/gtest.h>

#include "attacks/evaluate.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"
#include "quant/pixel_discretizer.hpp"
#include "sram/layer_selector.hpp"
#include "xbar/mapper.hpp"

namespace rhw {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 80;
    dcfg.test_per_class = 40;
    dcfg.image_size = 16;
    dcfg.noise_std = 0.12f;
    dcfg.nuisance_amp = 0.15f;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));

    models::VggConfig mcfg;
    mcfg.depth = 8;
    mcfg.num_classes = 4;
    mcfg.in_size = 16;
    mcfg.width_mult = 0.25f;
    model_ = new models::Model(models::make_vgg(mcfg));
    models::TrainConfig tcfg;
    tcfg.epochs = 4;
    tcfg.batch_size = 64;
    models::train_model(*model_, *data_, tcfg);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static models::Model clone() {
    models::Model copy = models::build_model("vgg8", 4, 0.25f, 16);
    nn::load_state_dict(*copy.net, nn::state_dict(*model_->net));
    copy.net->set_training(false);
    return copy;
  }

  static data::SynthCifar* data_;
  static models::Model* model_;
};

data::SynthCifar* EndToEnd::data_ = nullptr;
models::Model* EndToEnd::model_ = nullptr;

TEST_F(EndToEnd, BaselineIsAttackable) {
  attacks::AdvEvalConfig cfg;
  cfg.epsilon = 0.15f;
  const auto res = attacks::evaluate_attack(*model_->net, *model_->net,
                                            data_->test, cfg);
  EXPECT_GT(res.clean_acc, 70.0);
  EXPECT_GT(res.adversarial_loss(), 10.0)
      << "attack too weak for a meaningful robustness comparison";
}

// Paper Sec. III-A: bit-error noise in well-chosen layers reduces AL.
TEST_F(EndToEnd, SramNoiseImprovesAdversarialAccuracy) {
  auto noisy = clone();
  sram::SelectorConfig scfg;
  scfg.eval_count = 120;
  scfg.epsilon = 0.15f;
  scfg.batch_size = 120;
  const auto sel = sram::select_layers(noisy, data_->test, scfg);
  // The methodology guarantees this on its own sweep set by construction;
  // re-check on the full test set when a selection was made.
  EXPECT_GE(sel.final_adv_acc, sel.baseline_adv_acc);
  if (!sel.selected.empty()) {
    sram::apply_selection(noisy, sel.selected, scfg.vdd);
    attacks::AdvEvalConfig acfg;
    acfg.epsilon = 0.15f;
    const auto base = attacks::evaluate_attack(*model_->net, *model_->net,
                                               data_->test, acfg);
    const auto hard = attacks::evaluate_attack(*model_->net, *noisy.net,
                                               data_->test, acfg);
    EXPECT_GT(hard.adv_acc, base.adv_acc - 3.0)
        << "selected noise should not hurt adversarial accuracy";
  }
}

// Paper Sec. III-B: the crossbar-mapped model keeps its noise (it IS the
// weights), degrades clean accuracy a little, and reduces AL under SH attack.
TEST_F(EndToEnd, CrossbarMappingTradesAccuracyForRobustness) {
  auto mapped = clone();
  xbar::XbarMapConfig xcfg;
  xcfg.spec.rows = 32;
  xcfg.spec.cols = 32;
  const auto report = xbar::map_onto_crossbars(*mapped.net, xcfg);
  EXPECT_GT(report.num_tiles, 0);

  attacks::AdvEvalConfig acfg;
  acfg.epsilon = 0.15f;
  const auto sw = attacks::evaluate_attack(*model_->net, *model_->net,
                                           data_->test, acfg);
  const auto sh = attacks::evaluate_attack(*model_->net, *mapped.net,
                                           data_->test, acfg);
  // Clean accuracy can dip, but should stay usable.
  EXPECT_GT(sh.clean_acc, sw.clean_acc - 30.0);
  // The paper's core claim: AL(SH) < AL(Attack-SW).
  EXPECT_LT(sh.adversarial_loss(), sw.adversarial_loss() + 2.0);
}

TEST_F(EndToEnd, HardwareCleanAccuracyDegradesGracefully) {
  auto mapped = clone();
  xbar::XbarMapConfig xcfg;
  xcfg.spec.rows = 16;
  xcfg.spec.cols = 16;
  (void)xbar::map_onto_crossbars(*mapped.net, xcfg);
  const double hw_acc = attacks::clean_accuracy(*mapped.net, data_->test);
  EXPECT_GT(hw_acc, 100.0 / 4.0)
      << "mapped model must stay above chance";
}

TEST_F(EndToEnd, DiscretizationDefenseRuns) {
  auto base = clone();
  quant::PixelDiscretizer disc;
  disc.bits = 4;
  quant::DiscretizedModel defended(*base.net, disc);
  attacks::AdvEvalConfig acfg;
  acfg.epsilon = 0.1f;
  const auto res = attacks::evaluate_attack(defended, defended, data_->test,
                                            acfg);
  EXPECT_GT(res.clean_acc, 60.0);
}

}  // namespace
}  // namespace rhw
