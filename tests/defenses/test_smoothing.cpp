// Randomized-smoothing wrapper: vote semantics, per-pass determinism through
// the hook-seeder channel, composition over noisy backends, and the
// certification entry point.
#include "defenses/smoothing.hpp"

#include <gtest/gtest.h>

#include "attacks/evaluate.hpp"
#include "data/synth_cifar.hpp"
#include "defenses/registry.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"

namespace rhw::defenses {
namespace {

class SmoothingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 4;
    dcfg.test_per_class = 8;
    dcfg.image_size = 16;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));
    model_ = new models::Model(models::build_model("vgg8", 4, 0.125f, 16));
    model_->net->set_training(false);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static data::SynthCifar* data_;
  static models::Model* model_;
};

data::SynthCifar* SmoothingTest::data_ = nullptr;
models::Model* SmoothingTest::model_ = nullptr;

TEST_F(SmoothingTest, VotesSumToSamples) {
  SmoothConfig cfg;
  cfg.sigma = 0.1f;
  cfg.samples = 5;
  SmoothedModule smoothed(*model_->net, cfg);
  const auto batch = data_->test.slice(0, 4);
  const Tensor counts = smoothed.votes(batch.images);
  ASSERT_EQ(counts.dim(0), 4);
  ASSERT_EQ(counts.dim(1), 4);
  for (int64_t i = 0; i < counts.dim(0); ++i) {
    float total = 0.f;
    for (int64_t c = 0; c < counts.dim(1); ++c) total += counts.at(i, c);
    EXPECT_FLOAT_EQ(total, 5.f);
  }
}

// The smoothing noise stream pins through reseed_noise_streams like any
// hardware hook: same seed -> identical votes, different seed -> (almost
// surely) a different noise draw.
TEST_F(SmoothingTest, ReseedPinsTheNoiseStream) {
  SmoothConfig cfg;
  cfg.sigma = 0.3f;
  cfg.samples = 3;
  SmoothedModule smoothed(*model_->net, cfg);
  const auto batch = data_->test.slice(0, 6);

  nn::reseed_noise_streams(smoothed, 0x5EED);
  const Tensor a = smoothed.votes(batch.images);
  nn::reseed_noise_streams(smoothed, 0x5EED);
  const Tensor b = smoothed.votes(batch.images);
  ASSERT_TRUE(a.same_shape(b));
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

// Wrapping a prepared noisy backend: the wrapper serves a module, proxies
// the energy report, and composes the smoothing noise with the substrate's.
TEST_F(SmoothingTest, WrapsNoisyBackend) {
  models::Model clone = models::clone_model(*model_, 0.125f, 16);
  auto sram = hw::make_backend("sram:sites=2,num_8t=2,vdd=0.6");
  sram->prepare(clone);

  auto defense = make_defense("smooth:sigma=0.2,samples=4");
  hw::BackendPtr wrapped = defense->wrap(*sram);
  ASSERT_NE(wrapped, nullptr);
  EXPECT_EQ(wrapped->name(), "smooth+sram");
  EXPECT_TRUE(wrapped->prepared());
  EXPECT_EQ(wrapped->energy_report().backend, "sram");

  // Evaluation through the wrapper is a pure function of (nets, data, cfg).
  const double a =
      attacks::clean_accuracy(wrapped->module(), data_->test, 16, 0xC0FE);
  const double b =
      attacks::clean_accuracy(wrapped->module(), data_->test, 16, 0xC0FE);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(SmoothingTest, CertificationIsDeterministicAndBounded) {
  models::Model clone = models::clone_model(*model_, 0.125f, 16);
  auto ideal = hw::make_backend("ideal");
  ideal->prepare(clone);

  SmoothConfig cfg;
  cfg.sigma = 0.15f;
  cfg.samples = 8;
  cfg.alpha = 0.01;
  SmoothedBackend smoothed(*ideal, cfg);

  const double r1 = smoothed.mean_certified_radius(data_->test, 16, 0xCE27);
  const double r2 = smoothed.mean_certified_radius(data_->test, 16, 0xCE27);
  EXPECT_DOUBLE_EQ(r1, r2);
  // Bounded by the unanimous-vote radius.
  const double r_max = certified_radius(cfg.sigma, cfg.samples, cfg.samples,
                                        cfg.alpha);
  EXPECT_GE(r1, 0.0);
  EXPECT_LE(r1, r_max);
}

// Wrapping before prepare() must fail with the seam's invalid_argument
// contract (naming the defense), not a logic_error from deep inside
// module().
TEST_F(SmoothingTest, WrappingUnpreparedBackendThrows) {
  auto unprepared = hw::make_backend("ideal");
  auto defense = make_defense("smooth:sigma=0.1,samples=2");
  try {
    (void)defense->wrap(*unprepared);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("Smooth"), std::string::npos)
        << e.what();
  }
}

// Straight-through gradients: backward through the wrapper must return a
// gradient of the input's shape (the last noisy sample's cached state).
TEST_F(SmoothingTest, BackwardIsStraightThrough) {
  SmoothConfig cfg;
  cfg.sigma = 0.1f;
  cfg.samples = 2;
  SmoothedModule smoothed(*model_->net, cfg);
  const auto batch = data_->test.slice(0, 2);
  const Tensor logits = smoothed.forward(batch.images);
  Tensor grad_out(logits.shape(), 1.f);
  const Tensor grad_in = smoothed.backward(grad_out);
  EXPECT_TRUE(grad_in.same_shape(batch.images));
}

}  // namespace
}  // namespace rhw::defenses
