// Clopper-Pearson / normal-quantile / certified-radius math
// (defenses/certify.hpp) against closed-form anchors.
#include "defenses/certify.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rhw::defenses {
namespace {

TEST(Certify, IncompleteBetaAnchors) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(incomplete_beta(1, 1, 0.3), 0.3, 1e-10);
  // I_x(1, b) = 1 - (1-x)^b.
  EXPECT_NEAR(incomplete_beta(1, 5, 0.2), 1.0 - std::pow(0.8, 5), 1e-10);
  // I_x(a, 1) = x^a.
  EXPECT_NEAR(incomplete_beta(3, 1, 0.5), 0.125, 1e-10);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(incomplete_beta(2.5, 4.0, 0.35),
              1.0 - incomplete_beta(4.0, 2.5, 0.65), 1e-10);
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 1.0), 1.0);
}

TEST(Certify, ClopperPearsonAnchors) {
  // k = 0: no evidence, lower bound 0.
  EXPECT_DOUBLE_EQ(clopper_pearson_lower(0, 10, 0.05), 0.0);
  // k = n: closed form alpha^(1/n) (P[X = n] = p^n >= alpha).
  EXPECT_NEAR(clopper_pearson_lower(10, 10, 0.05), std::pow(0.05, 0.1),
              1e-9);
  EXPECT_NEAR(clopper_pearson_lower(32, 32, 0.001),
              std::pow(0.001, 1.0 / 32.0), 1e-9);
  // Monotone in k, below the point estimate k/n.
  const double p8 = clopper_pearson_lower(8, 10, 0.05);
  const double p9 = clopper_pearson_lower(9, 10, 0.05);
  EXPECT_LT(p8, p9);
  EXPECT_LT(p9, 0.9);
  EXPECT_GT(p9, 0.5);
  // More samples at the same vote share tighten the bound.
  EXPECT_GT(clopper_pearson_lower(80, 100, 0.05),
            clopper_pearson_lower(8, 10, 0.05));
}

TEST(Certify, ClopperPearsonRejectsBadInputs) {
  EXPECT_THROW(clopper_pearson_lower(11, 10, 0.05), std::invalid_argument);
  EXPECT_THROW(clopper_pearson_lower(-1, 10, 0.05), std::invalid_argument);
  EXPECT_THROW(clopper_pearson_lower(5, 0, 0.05), std::invalid_argument);
  EXPECT_THROW(clopper_pearson_lower(5, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(clopper_pearson_lower(5, 10, 1.0), std::invalid_argument);
}

TEST(Certify, NormalQuantileAnchors) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.8413447461), 1.0, 1e-6);  // Phi(1) = 0.8413...
  EXPECT_NEAR(normal_quantile(0.05), -normal_quantile(0.95), 1e-9);
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(Certify, CertifiedRadius) {
  // Unanimous votes certify a positive radius that grows with sigma.
  const double r_small = certified_radius(0.25, 32, 32, 0.001);
  const double r_big = certified_radius(0.5, 32, 32, 0.001);
  EXPECT_GT(r_small, 0.0);
  EXPECT_NEAR(r_big, 2.0 * r_small, 1e-9);  // linear in sigma
  // A split vote cannot clear p > 1/2: abstain, radius 0.
  EXPECT_DOUBLE_EQ(certified_radius(0.25, 16, 32, 0.001), 0.0);
  EXPECT_DOUBLE_EQ(certified_radius(0.25, 0, 32, 0.001), 0.0);
  // More votes at the same share -> larger certified radius.
  EXPECT_GT(certified_radius(0.25, 90, 100, 0.01),
            certified_radius(0.25, 9, 10, 0.01));
}

}  // namespace
}  // namespace rhw::defenses
