#include "defenses/adv_train.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "attacks/evaluate.hpp"
#include "models/zoo.hpp"
#include "nn/init.hpp"

namespace rhw::defenses {
namespace {

data::SynthCifar small_data() {
  data::SynthCifarConfig cfg;
  cfg.num_classes = 4;
  cfg.train_per_class = 60;
  cfg.test_per_class = 25;
  cfg.image_size = 16;
  cfg.noise_std = 0.12f;
  cfg.nuisance_amp = 0.15f;
  return data::make_synth_cifar(cfg);
}

models::Model fresh_model(uint64_t seed) {
  models::Model m = models::build_model("vgg8", 4, 0.125f, 16);
  rhw::RandomEngine rng(seed);
  nn::kaiming_init(*m.net, rng);
  return m;
}

TEST(AdvTrain, LearnsTheTask) {
  auto data = small_data();
  auto model = fresh_model(1);
  AdvTrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 48;
  cfg.epsilon = 0.08f;
  const auto result = adversarial_train(*model.net, data, cfg);
  EXPECT_GT(result.clean_test_acc, 0.6);
  EXPECT_LT(result.final_train_loss, 1.0);
}

TEST(AdvTrain, MoreRobustThanCleanTraining) {
  auto data = small_data();

  auto clean_model = fresh_model(2);
  AdvTrainConfig clean_cfg;
  clean_cfg.epochs = 4;
  clean_cfg.batch_size = 48;
  clean_cfg.epsilon = 0.f;  // degenerate: plain training
  (void)adversarial_train(*clean_model.net, data, clean_cfg);

  auto robust_model = fresh_model(2);
  AdvTrainConfig adv_cfg = clean_cfg;
  adv_cfg.epsilon = 0.1f;
  (void)adversarial_train(*robust_model.net, data, adv_cfg);

  attacks::AdvEvalConfig eval_cfg;
  eval_cfg.epsilon = 0.1f;
  const auto clean_res = attacks::evaluate_attack(
      *clean_model.net, *clean_model.net, data.test, eval_cfg);
  const auto robust_res = attacks::evaluate_attack(
      *robust_model.net, *robust_model.net, data.test, eval_cfg);
  EXPECT_LT(robust_res.adversarial_loss(),
            clean_res.adversarial_loss() + 1.0)
      << "adversarial training should not be less robust than clean training";
}

TEST(AdvTrain, ZeroAdvFractionMatchesPlainTraining) {
  auto data = small_data();
  auto a = fresh_model(3);
  auto b = fresh_model(3);
  AdvTrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 48;
  cfg.adv_fraction = 0.f;
  const auto ra = adversarial_train(*a.net, data, cfg);
  cfg.epsilon = 0.f;  // other degenerate path
  cfg.adv_fraction = 0.5f;
  const auto rb = adversarial_train(*b.net, data, cfg);
  EXPECT_NEAR(ra.clean_test_acc, rb.clean_test_acc, 1e-9);
}

// The inner adversary comes through the attack registry: a PGD-driven run
// must work and be reproducible — same seed, same initialization, identical
// outcome bit-for-bit.
TEST(AdvTrain, PgdInnerAttackIsDeterministic) {
  auto data = small_data();
  auto a = fresh_model(4);
  auto b = fresh_model(4);
  AdvTrainConfig cfg;
  cfg.attack = "pgd";
  cfg.steps = 2;
  cfg.epochs = 1;
  cfg.batch_size = 48;
  cfg.epsilon = 0.05f;
  const auto ra = adversarial_train(*a.net, data, cfg);
  const auto rb = adversarial_train(*b.net, data, cfg);
  EXPECT_DOUBLE_EQ(ra.clean_test_acc, rb.clean_test_acc);
  EXPECT_DOUBLE_EQ(ra.final_train_loss, rb.final_train_loss);
}

TEST(AdvTrain, BadInnerAttackSpecThrows) {
  auto data = small_data();
  auto model = fresh_model(5);
  AdvTrainConfig cfg;
  cfg.attack = "not_an_attack";
  EXPECT_THROW(adversarial_train(*model.net, data, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace rhw::defenses
