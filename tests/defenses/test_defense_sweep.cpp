// Defense arms inside the sweep engine: the acceptance property is that a
// "smooth:" arm over an "sram:" backend — a randomized defense stacked on a
// stochastic substrate — reproduces bit-identically at any lane count,
// certified-radius column included, and that the defended single-row
// al_curve_defended matches a one-row defended grid.
#include <gtest/gtest.h>

#include <stdexcept>

#include "data/synth_cifar.hpp"
#include "defenses/registry.hpp"
#include "exp/al_runner.hpp"
#include "exp/sweep.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"

namespace rhw::defenses {
namespace {

class DefenseSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 8;
    dcfg.test_per_class = 10;
    dcfg.image_size = 16;
    data_ = new data::SynthCifar(data::make_synth_cifar(dcfg));
    model_ = new models::Model(models::build_model("vgg8", 4, 0.125f, 16));
    model_->net->set_training(false);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  // The smoothed-noisy grid: smoothing over SRAM bit errors, SH and
  // white-box-on-the-defense pairings, an eps == 0 row, two trials.
  static exp::SweepGrid smoothed_sram_grid() {
    exp::SweepGrid grid;
    grid.model = model_;
    grid.width_mult = 0.125f;
    grid.in_size = 16;
    grid.eval_set = &data_->test;
    grid.base.batch_size = 16;
    grid.trials = 2;
    grid.backends.push_back({"ideal", "ideal"});
    grid.backends.push_back({"smoothsram", "sram:sites=2,num_8t=2,vdd=0.6",
                             "smooth:sigma=0.2,samples=3"});
    grid.modes.push_back({"SH-smooth", "ideal", "smoothsram"});
    grid.modes.push_back({"WB-smooth", "smoothsram", "smoothsram"});
    grid.attacks.push_back({"fgsm", {0.f, 0.1f}});
    return grid;
  }

  static exp::SweepResult run_with_threads(const exp::SweepGrid& grid,
                                           unsigned threads) {
    exp::SweepEngine::Options opt;
    opt.threads = threads;
    exp::SweepEngine engine(opt);
    return engine.run(grid);
  }

  static void expect_identical(const exp::SweepResult& a,
                               const exp::SweepResult& b) {
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (size_t i = 0; i < a.cells.size(); ++i) {
      EXPECT_EQ(a.cells[i].seed, b.cells[i].seed) << "cell " << i;
      EXPECT_DOUBLE_EQ(a.cells[i].clean_acc, b.cells[i].clean_acc)
          << "cell " << i;
      EXPECT_DOUBLE_EQ(a.cells[i].adv_acc, b.cells[i].adv_acc)
          << "cell " << i;
      EXPECT_DOUBLE_EQ(a.cells[i].cert_radius, b.cells[i].cert_radius)
          << "cell " << i;
    }
  }

  static data::SynthCifar* data_;
  static models::Model* model_;
};

data::SynthCifar* DefenseSweepTest::data_ = nullptr;
models::Model* DefenseSweepTest::model_ = nullptr;

// The acceptance criterion: a smooth-over-sram arm is bit-identical at 1 vs
// N lanes — the smoothing noise, the bit-error noise, and the certification
// stream all derive from grid coordinates, never from scheduling.
TEST_F(DefenseSweepTest, SmoothedNoisyArmBitIdenticalAcrossLanes) {
  const auto grid = smoothed_sram_grid();
  const auto serial = run_with_threads(grid, 1);
  const auto parallel = run_with_threads(grid, 4);
  const auto parallel_again = run_with_threads(grid, 4);
  expect_identical(serial, parallel);
  expect_identical(parallel, parallel_again);
}

TEST_F(DefenseSweepTest, CertifiedRadiusColumnIsPopulated) {
  const auto result = run_with_threads(smoothed_sram_grid(), 2);
  // The smoothed arm certifies on every cell (shared per trial); the ideal
  // arm does not exist as an eval here, so all cells carry the value.
  bool any_positive = false;
  for (const auto& cell : result.cells) {
    EXPECT_GE(cell.cert_radius, 0.0);
    if (cell.cert_radius > 0.0) any_positive = true;
  }
  // Untrained model: votes can still be unanimous on some examples; but do
  // not require positivity of the mean — only that aggregates carry it
  // consistently.
  for (const auto& agg : result.aggregates) {
    EXPECT_EQ(agg.cert.n, 2);
  }
  (void)any_positive;
  // Backend info is self-describing.
  ASSERT_EQ(result.backends.size(), 2u);
  EXPECT_EQ(result.backends[1].defense, "smooth:sigma=0.2,samples=3");
  EXPECT_EQ(result.backends[1].defense_name, "Smooth");
  EXPECT_EQ(result.backends[0].defense, "none");
}

// A non-certifying grid reports an all-zero cert column, not garbage.
TEST_F(DefenseSweepTest, NonCertifyingArmsReportZeroRadius) {
  exp::SweepGrid grid;
  grid.model = model_;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &data_->test;
  grid.backends.push_back({"ideal", "ideal"});
  grid.backends.push_back({"disc", "ideal", "jpeg_quant:bits=4"});
  grid.modes.push_back({"disc", "disc", "disc"});
  grid.attacks.push_back({"fgsm", {0.1f}});
  const auto result = run_with_threads(grid, 2);
  for (const auto& cell : result.cells) {
    EXPECT_DOUBLE_EQ(cell.cert_radius, 0.0);
  }
}

// al_curve_defended is the serial single-row special case of a defended
// grid: a one-row smoothed grid must reproduce it bit-for-bit (the defended
// twin of SweepTest::SingleRowGridMatchesAlCurve).
TEST_F(DefenseSweepTest, SingleRowDefendedGridMatchesAlCurveDefended) {
  models::Model manual = models::clone_model(*model_, 0.125f, 16);
  auto manual_sram = hw::make_backend("sram:sites=2,num_8t=2,vdd=0.6");
  manual_sram->prepare(manual);
  models::Model ref_clone = models::clone_model(*model_, 0.125f, 16);
  auto manual_ideal = hw::make_backend("ideal");
  manual_ideal->prepare(ref_clone);

  const std::vector<float> eps{0.f, 0.1f, 0.2f};
  const auto reference = exp::al_curve_defended(
      "SH-smooth", *manual_ideal, *manual_sram, data_->test,
      "smooth:sigma=0.2,samples=3", "fgsm", eps);

  exp::SweepGrid grid;
  grid.model = model_;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &data_->test;
  grid.backends.push_back({"ideal", "ideal"});
  grid.backends.push_back({"smoothsram", "sram:sites=2,num_8t=2,vdd=0.6",
                           "smooth:sigma=0.2,samples=3"});
  grid.modes.push_back({"SH-smooth", "ideal", "smoothsram"});
  grid.attacks.push_back({"fgsm", eps});
  const auto curve =
      run_with_threads(grid, 3).curve("SH-smooth", "fgsm");

  ASSERT_EQ(curve.points.size(), reference.points.size());
  for (size_t i = 0; i < curve.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve.points[i].clean_acc, reference.points[i].clean_acc)
        << "eps " << eps[i];
    EXPECT_DOUBLE_EQ(curve.points[i].adv_acc, reference.points[i].adv_acc)
        << "eps " << eps[i];
  }
}

TEST_F(DefenseSweepTest, TrainingTimeDefenseArmRunsAndReplicates) {
  exp::SweepGrid grid;
  grid.model = model_;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &data_->test;
  grid.train_data = data_;
  grid.base.batch_size = 16;
  grid.backends.push_back(
      {"at", "ideal", "adv_train:attack=fgsm,eps=0.05,epochs=1"});
  grid.modes.push_back({"AT", "at", "at"});
  grid.attacks.push_back({"fgsm", {0.1f}});
  // Hardened weights clone across lanes: serial and parallel runs agree.
  const auto serial = run_with_threads(grid, 1);
  const auto parallel = run_with_threads(grid, 3);
  expect_identical(serial, parallel);
}

TEST_F(DefenseSweepTest, TrainingTimeDefenseInAlCurveThrows) {
  models::Model clone = models::clone_model(*model_, 0.125f, 16);
  auto ideal = hw::make_backend("ideal");
  ideal->prepare(clone);
  const std::vector<float> eps{0.1f};
  EXPECT_THROW(exp::al_curve_defended("AT", *ideal, *ideal, data_->test,
                                      "adv_train", "fgsm", eps),
               std::invalid_argument);
}

}  // namespace
}  // namespace rhw::defenses
