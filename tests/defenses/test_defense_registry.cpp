// DefenseRegistry parsing and error reporting, in parity with the
// BackendRegistry and AttackRegistry suites (tests/hw/test_registry.cpp,
// tests/attacks/test_attack_registry.cpp): unknown defenses, unknown
// options, malformed values and trailing garbage must all throw
// std::invalid_argument naming the offending token and the full spec.
#include "defenses/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "models/zoo.hpp"

namespace rhw::defenses {
namespace {

TEST(DefenseRegistry, BuiltinsRegistered) {
  const auto keys = DefenseRegistry::instance().keys();
  for (const char* expected : {"none", "adv_train", "smooth", "jpeg_quant",
                               "gauss_aug", "quanos"}) {
    EXPECT_TRUE(std::find(keys.begin(), keys.end(), expected) != keys.end())
        << expected;
    EXPECT_TRUE(DefenseRegistry::instance().contains(expected));
  }
}

TEST(DefenseRegistry, UnknownDefenseThrowsNamingKey) {
  try {
    make_defense("distillation");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("distillation"), std::string::npos) << msg;
    EXPECT_NE(msg.find("registered"), std::string::npos) << msg;
  }
}

TEST(DefenseRegistry, EmptySpecThrows) {
  EXPECT_THROW(make_defense(""), std::invalid_argument);
}

TEST(DefenseRegistry, UnknownOptionThrowsNamingIt) {
  try {
    make_defense("smooth:sgima=0.25");  // rhw-lint: allow(spec) stale on purpose
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sgima"), std::string::npos) << msg;
    EXPECT_NE(msg.find("smooth:sgima=0.25"), std::string::npos) << msg;  // rhw-lint: allow(spec) stale on purpose
  }
  EXPECT_THROW(make_defense("none:x=1"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  // "sigma" belongs to smooth/gauss_aug, not jpeg_quant.
  EXPECT_THROW(make_defense("jpeg_quant:sigma=0.1"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(make_defense("adv_train:queries=5"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
}

// Parse failures must name the offending key, the bad value, AND the full
// spec string (parity with the other registries' ParseErrorNamesKeyValueAndSpec).
TEST(DefenseRegistry, ParseErrorNamesKeyValueAndSpec) {
  try {
    make_defense("smooth:samples=16,sigma=abc");  // rhw-lint: allow(spec) stale on purpose
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sigma"), std::string::npos) << msg;
    EXPECT_NE(msg.find("abc"), std::string::npos) << msg;
    EXPECT_NE(msg.find("smooth:samples=16,sigma=abc"), std::string::npos)  // rhw-lint: allow(spec) stale on purpose
        << msg;
  }
  try {
    make_defense("adv_train:epochs=many");  // rhw-lint: allow(spec) stale on purpose
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("epochs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("many"), std::string::npos) << msg;
    EXPECT_NE(msg.find("adv_train:epochs=many"), std::string::npos) << msg;  // rhw-lint: allow(spec) stale on purpose
  }
}

// Trailing garbage after a numeric value is rejected, not silently truncated.
TEST(DefenseRegistry, TrailingGarbageRejected) {
  EXPECT_THROW(make_defense("smooth:sigma=0.25junk"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(make_defense("jpeg_quant:bits=4.5"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(make_defense("gauss_aug:sigma=0.1 "), std::invalid_argument);
}

TEST(DefenseRegistry, MalformedOptionThrows) {
  EXPECT_THROW(make_defense("smooth:sigma"), std::invalid_argument);
}

// Zero-valued count knobs would make the defense a silent no-op; they must
// be rejected naming the knob (parity with the attack registry's
// zero-iteration rule).
TEST(DefenseRegistry, ZeroCountKnobsRejected) {
  for (const char* spec :
       {"smooth:samples=0", "jpeg_quant:bits=0", "adv_train:epochs=0",  // rhw-lint: allow(spec) stale on purpose
        "adv_train:steps=0", "quanos:samples=0"}) {  // rhw-lint: allow(spec) stale on purpose
    try {
      make_defense(spec);
      FAIL() << "expected std::invalid_argument for " << spec;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("no-op"), std::string::npos)
          << spec << ": " << e.what();
    }
  }
  // Values past INT_MAX must not wrap back into the no-op range.
  EXPECT_THROW(make_defense("smooth:samples=4294967296"),  // rhw-lint: allow(spec) stale on purpose
               std::invalid_argument);
}

TEST(DefenseRegistry, DomainValuesValidated) {
  // Out-of-range values name the option and the offending value.
  EXPECT_THROW(make_defense("smooth:sigma=-0.1"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(make_defense("smooth:alpha=0.7"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(make_defense("jpeg_quant:bits=9"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(make_defense("gauss_aug:sigma=0"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(make_defense("adv_train:ratio=1.5"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  try {
    make_defense("adv_train:attack=square");  // rhw-lint: allow(spec) stale on purpose
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("attack"), std::string::npos) << msg;
    EXPECT_NE(msg.find("square"), std::string::npos) << msg;
  }
}

TEST(DefenseRegistry, OptionsParseIntoConfigs) {
  auto none = make_defense("none");
  EXPECT_EQ(none->name(), "None");
  EXPECT_FALSE(none->training_time());

  auto adv = make_defense("adv_train:attack=pgd,steps=3,ratio=0.25,epochs=2");
  EXPECT_EQ(adv->name(), "AdvTrain");
  EXPECT_TRUE(adv->training_time());
  EXPECT_TRUE(adv->replicable_by_clone());

  auto smooth = make_defense("smooth:sigma=0.5,samples=4,alpha=0.01");
  EXPECT_EQ(smooth->name(), "Smooth");
  EXPECT_FALSE(smooth->training_time());

  EXPECT_EQ(make_defense("jpeg_quant:bits=3")->name(), "JpegQuant");
  EXPECT_EQ(make_defense("gauss_aug:sigma=0.05")->name(), "GaussAug");
  auto quanos = make_defense("quanos:samples=32,high=8,low=4");
  EXPECT_EQ(quanos->name(), "QUANOS");
  EXPECT_FALSE(quanos->replicable_by_clone());
}

TEST(DefenseRegistry, DisplayNames) {
  EXPECT_EQ(defense_display_name("none"), "None");
  EXPECT_EQ(defense_display_name("adv_train"), "AdvTrain");
  EXPECT_EQ(defense_display_name("smooth:sigma=0.25"), "Smooth");
  EXPECT_EQ(defense_display_name("jpeg_quant"), "JpegQuant");
  EXPECT_EQ(defense_display_name("gauss_aug"), "GaussAug");
  EXPECT_EQ(defense_display_name("quanos"), "QUANOS");
}

// Defenses needing data they were not given fail loudly, naming themselves.
TEST(DefenseRegistry, MissingContextDataThrows) {
  models::Model model = models::build_model("vgg8", 4, 0.125f, 16);
  DefenseContext empty_ctx;
  try {
    make_defense("adv_train:epochs=1")->harden(model, empty_ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("adv_train"), std::string::npos)
        << e.what();
  }
  try {
    make_defense("quanos")->harden(model, empty_ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("quanos"), std::string::npos)
        << e.what();
  }
}

TEST(DefenseRegistry, CustomDefenseRegistration) {
  DefenseRegistry::instance().add("custom-smooth",
                                  [](const DefenseOptions&) {
                                    return make_defense("smooth:samples=2");
                                  });
  auto defense = make_defense("custom-smooth");
  EXPECT_EQ(defense->name(), "Smooth");
}

}  // namespace
}  // namespace rhw::defenses
