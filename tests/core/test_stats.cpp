#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rhw {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.push(x);
  EXPECT_EQ(s.count, 8);
  EXPECT_NEAR(s.mean, 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.push(3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, MeanOf) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{}), 0.0);
}

TEST(Stats, StddevOf) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev_of(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stddev_of(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median_of({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
  EXPECT_DOUBLE_EQ(median_of({7}), 7.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i);
  EXPECT_NEAR(percentile_of(xs, 0), 0.0, 1e-12);
  EXPECT_NEAR(percentile_of(xs, 50), 50.0, 1e-12);
  EXPECT_NEAR(percentile_of(xs, 100), 100.0, 1e-12);
  EXPECT_NEAR(percentile_of(xs, 25), 25.0, 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_NEAR(percentile_of({0.0, 1.0}, 50), 0.5, 1e-12);
}

}  // namespace
}  // namespace rhw
