#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/rng.hpp"

namespace rhw {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, TensorRoundTripStream) {
  RandomEngine rng(3);
  Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor back = read_tensor(ss);
  ASSERT_TRUE(back.same_shape(t));
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(back[i], t[i]);
}

TEST(Serialize, EmptyTensorRoundTrip) {
  Tensor t({0});
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor back = read_tensor(ss);
  EXPECT_EQ(back.numel(), 0);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss;
  ss << "garbage data here";
  EXPECT_THROW(read_tensor(ss), std::runtime_error);
}

TEST(Serialize, TruncatedStreamThrows) {
  RandomEngine rng(4);
  Tensor t = Tensor::randn({100}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_THROW(read_tensor(half), std::runtime_error);
}

TEST(Serialize, CheckpointRoundTripFile) {
  const std::string path = temp_path("rhw_test_ckpt.bin");
  RandomEngine rng(5);
  TensorMap m;
  m["a.weight"] = Tensor::randn({4, 4}, rng);
  m["a.bias"] = Tensor::randn({4}, rng);
  m["bn.running_mean"] = Tensor({4}, 0.25f);
  write_checkpoint(path, m);
  const TensorMap back = read_checkpoint(path);
  ASSERT_EQ(back.size(), 3u);
  for (const auto& [name, t] : m) {
    auto it = back.find(name);
    ASSERT_NE(it, back.end()) << name;
    ASSERT_TRUE(it->second.same_shape(t));
    for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(it->second[i], t[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, CheckpointCreatesParentDirs) {
  const std::string dir = temp_path("rhw_nested_dir_test");
  const std::string path = dir + "/sub/ckpt.bin";
  std::filesystem::remove_all(dir);
  TensorMap m;
  m["x"] = Tensor({1}, 1.f);
  write_checkpoint(path, m);
  EXPECT_TRUE(file_exists(path));
  std::filesystem::remove_all(dir);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(read_checkpoint(temp_path("rhw_does_not_exist.bin")),
               std::runtime_error);
}

TEST(Serialize, FileExists) {
  EXPECT_FALSE(file_exists(temp_path("rhw_definitely_missing")));
}

}  // namespace
}  // namespace rhw
