#include "core/gemm.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <tuple>
#include <vector>

#include "core/rng.hpp"

namespace rhw {
namespace {

std::vector<float> random_matrix(int64_t rows, int64_t cols,
                                 RandomEngine& rng) {
  std::vector<float> m(static_cast<size_t>(rows * cols));
  for (auto& v : m) v = rng.uniform(-1.f, 1.f);
  return m;
}

void expect_near_all(const std::vector<float>& a, const std::vector<float>& b,
                     float tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

TEST(Gemm, TinyKnownValues) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c(4, 0.f);
  gemm(false, false, 2, 2, 2, 1.f, a.data(), 2, b.data(), 2, 0.f, c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 19.f);
  EXPECT_FLOAT_EQ(c[1], 22.f);
  EXPECT_FLOAT_EQ(c[2], 43.f);
  EXPECT_FLOAT_EQ(c[3], 50.f);
}

TEST(Gemm, BetaAccumulates) {
  const std::vector<float> a{1, 0, 0, 1};  // identity
  const std::vector<float> b{1, 2, 3, 4};
  std::vector<float> c{10, 10, 10, 10};
  gemm(false, false, 2, 2, 2, 1.f, a.data(), 2, b.data(), 2, 1.f, c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 11.f);
  EXPECT_FLOAT_EQ(c[3], 14.f);
}

TEST(Gemm, AlphaScales) {
  const std::vector<float> a{2};
  const std::vector<float> b{3};
  std::vector<float> c{1};
  gemm(false, false, 1, 1, 1, 0.5f, a.data(), 1, b.data(), 1, 0.f, c.data(), 1);
  EXPECT_FLOAT_EQ(c[0], 3.f);
}

// Property sweep: blocked kernel must agree with the naive reference for all
// four transpose combinations and a spread of (awkward) sizes.
class GemmParity
    : public ::testing::TestWithParam<std::tuple<bool, bool, int, int, int>> {};

TEST_P(GemmParity, MatchesNaive) {
  const auto [ta, tb, m, n, k] = GetParam();
  RandomEngine rng((static_cast<uint64_t>(m) * 73856093u ^
                    static_cast<uint64_t>(n) * 19349663u ^
                    static_cast<uint64_t>(k)) +
                   (ta ? 2 : 0) + (tb ? 1 : 0));
  const auto a = random_matrix(ta ? k : m, ta ? m : k, rng);
  const auto b = random_matrix(tb ? n : k, tb ? k : n, rng);
  const int64_t lda = ta ? m : k;
  const int64_t ldb = tb ? k : n;
  std::vector<float> c_fast(static_cast<size_t>(m * n), 0.5f);
  std::vector<float> c_ref = c_fast;
  gemm(ta, tb, m, n, k, 1.3f, a.data(), lda, b.data(), ldb, 0.7f, c_fast.data(),
       n);
  gemm_naive(ta, tb, m, n, k, 1.3f, a.data(), lda, b.data(), ldb, 0.7f,
             c_ref.data(), n);
  expect_near_all(c_fast, c_ref, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParity,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 7, 32, 65),
                       ::testing::Values(1, 9, 33),
                       ::testing::Values(1, 17, 64)));

TEST(Gemm, LargeParallelPathMatchesNaive) {
  RandomEngine rng(99);
  const int64_t m = 128, n = 96, k = 300;  // crosses the parallel threshold
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c_fast(static_cast<size_t>(m * n), 0.f);
  std::vector<float> c_ref = c_fast;
  gemm(false, false, m, n, k, 1.f, a.data(), k, b.data(), n, 0.f, c_fast.data(),
       n);
  gemm_naive(false, false, m, n, k, 1.f, a.data(), k, b.data(), n, 0.f,
             c_ref.data(), n);
  expect_near_all(c_fast, c_ref, 2e-3f);
}

TEST(Gemm, StridedLeadingDimensions) {
  // Views into larger buffers (ld > logical cols).
  RandomEngine rng(5);
  const auto a = random_matrix(4, 10, rng);  // use 4x3 view, lda=10
  const auto b = random_matrix(3, 8, rng);   // use 3x5 view, ldb=8
  std::vector<float> c_fast(4 * 5, 0.f), c_ref(4 * 5, 0.f);
  gemm(false, false, 4, 5, 3, 1.f, a.data(), 10, b.data(), 8, 0.f,
       c_fast.data(), 5);
  gemm_naive(false, false, 4, 5, 3, 1.f, a.data(), 10, b.data(), 8, 0.f,
             c_ref.data(), 5);
  expect_near_all(c_fast, c_ref, 1e-4f);
}

TEST(Gemv, MatchesGemmColumn) {
  RandomEngine rng(6);
  const int64_t m = 13, n = 7;
  const auto a = random_matrix(m, n, rng);
  const auto x = random_matrix(n, 1, rng);
  std::vector<float> y(static_cast<size_t>(m), 0.f);
  gemv(false, m, n, 1.f, a.data(), n, x.data(), 0.f, y.data());
  std::vector<float> y_ref(static_cast<size_t>(m), 0.f);
  gemm_naive(false, false, m, 1, n, 1.f, a.data(), n, x.data(), 1, 0.f,
             y_ref.data(), 1);
  expect_near_all(y, y_ref, 1e-4f);
}

TEST(Gemv, TransposedMatchesGemm) {
  RandomEngine rng(8);
  const int64_t m = 9, n = 11;
  const auto a = random_matrix(m, n, rng);
  const auto x = random_matrix(m, 1, rng);
  std::vector<float> y(static_cast<size_t>(n), 0.f);
  gemv(true, m, n, 1.f, a.data(), n, x.data(), 0.f, y.data());
  std::vector<float> y_ref(static_cast<size_t>(n), 0.f);
  gemm_naive(true, false, n, 1, m, 1.f, a.data(), n, x.data(), 1, 0.f,
             y_ref.data(), 1);
  expect_near_all(y, y_ref, 1e-4f);
}

TEST(Gemv, BetaZeroOverwritesStaleValues) {
  // beta == 0 must ignore whatever is in y — NaN survives y *= 0.f, so the
  // implementation needs an explicit zero-fill (regression for the gemm/gemv
  // asymmetry).
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> a{1, 2, 3, 4, 5, 6};  // 2x3
  const std::vector<float> x3{1, 1, 1};
  std::vector<float> y{nan, nan};
  gemv(false, 2, 3, 1.f, a.data(), 3, x3.data(), 0.f, y.data());
  EXPECT_FLOAT_EQ(y[0], 6.f);
  EXPECT_FLOAT_EQ(y[1], 15.f);

  const std::vector<float> x2{1, 1};
  std::vector<float> yt{nan, nan, nan};
  gemv(true, 2, 3, 1.f, a.data(), 3, x2.data(), 0.f, yt.data());
  EXPECT_FLOAT_EQ(yt[0], 5.f);
  EXPECT_FLOAT_EQ(yt[1], 7.f);
  EXPECT_FLOAT_EQ(yt[2], 9.f);
}

TEST(Gemm, BetaWithStridedC) {
  // beta != 0 combined with ldc > n: the scaled stale values must come from
  // the strided positions, and the gap columns must never be touched.
  RandomEngine rng(21);
  const int64_t m = 5, n = 3, k = 4, ldc = 7;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c_fast(static_cast<size_t>(m * ldc), 2.f);
  std::vector<float> c_ref = c_fast;
  gemm(false, false, m, n, k, 1.f, a.data(), k, b.data(), n, 0.5f,
       c_fast.data(), ldc);
  gemm_naive(false, false, m, n, k, 1.f, a.data(), k, b.data(), n, 0.5f,
             c_ref.data(), ldc);
  expect_near_all(c_fast, c_ref, 1e-4f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = n; j < ldc; ++j) {
      ASSERT_FLOAT_EQ(c_fast[static_cast<size_t>(i * ldc + j)], 2.f)
          << "gap column touched at (" << i << ", " << j << ")";
    }
  }
}

TEST(Gemm, AlphaZeroNeverReadsInputs) {
  // alpha == 0 must not dereference A or B (BLAS contract) — nullptr inputs
  // crash if the fast path is missing. beta still applies to C.
  std::vector<float> c{1.f, 2.f, 3.f, 4.f};
  gemm(false, false, 2, 2, 3, 0.f, nullptr, 3, nullptr, 2, 0.5f, c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[3], 2.f);
  // ... and with beta == 0 it zero-fills, clearing stale NaN.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> cz{nan, nan, nan, nan};
  gemm(false, false, 2, 2, 3, 0.f, nullptr, 3, nullptr, 2, 0.f, cz.data(), 2);
  for (float v : cz) EXPECT_FLOAT_EQ(v, 0.f);
}

TEST(Gemm, TransposeCombosWithLooseLeadingDims) {
  // All four transpose combinations where every operand lives in a wider
  // buffer than its logical shape (lda/ldb/ldc all non-tight) — the packing
  // paths must honor the strides.
  RandomEngine rng(22);
  const int64_t m = 6, n = 5, k = 7;
  const int64_t pad = 3;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      const int64_t lda = (ta ? m : k) + pad;
      const int64_t ldb = (tb ? k : n) + pad;
      const int64_t ldc = n + pad;
      const auto a = random_matrix(ta ? k : m, lda, rng);
      const auto b = random_matrix(tb ? n : k, ldb, rng);
      std::vector<float> c_fast(static_cast<size_t>(m * ldc), -1.f);
      std::vector<float> c_ref = c_fast;
      gemm(ta, tb, m, n, k, 1.1f, a.data(), lda, b.data(), ldb, 0.3f,
           c_fast.data(), ldc);
      gemm_naive(ta, tb, m, n, k, 1.1f, a.data(), lda, b.data(), ldb, 0.3f,
                 c_ref.data(), ldc);
      expect_near_all(c_fast, c_ref, 1e-3f);
    }
  }
}

TEST(Gemv, TransposedBetaSweep) {
  // Transposed gemv across the three beta regimes: overwrite (0), accumulate
  // (1), and scale-accumulate (0.5) — each against the gemm_naive reference.
  RandomEngine rng(23);
  const int64_t m = 10, n = 6;
  const auto a = random_matrix(m, n, rng);
  const auto x = random_matrix(m, 1, rng);
  for (float beta : {0.f, 1.f, 0.5f}) {
    std::vector<float> y(static_cast<size_t>(n), 4.f);
    std::vector<float> y_ref = y;
    gemv(true, m, n, 1.f, a.data(), n, x.data(), beta, y.data());
    gemm_naive(true, false, n, 1, m, 1.f, a.data(), n, x.data(), 1, beta,
               y_ref.data(), 1);
    expect_near_all(y, y_ref, 1e-4f);
  }
}

TEST(Gemm, ZeroSizedNoCrash) {
  std::vector<float> c(1, 3.f);
  gemm(false, false, 0, 0, 0, 1.f, nullptr, 1, nullptr, 1, 0.f, c.data(), 1);
  SUCCEED();
}

}  // namespace
}  // namespace rhw
