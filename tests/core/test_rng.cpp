#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace rhw {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  RandomEngine a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  RandomEngine a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeriveStreamSeedAvalanchesBothInputs) {
  // Deterministic.
  EXPECT_EQ(derive_stream_seed(7, 3), derive_stream_seed(7, 3));
  // No collisions across a dense block of (seed, stream) pairs — the old
  // additive `seed + C * stream` derivation failed this for nearby seeds.
  std::set<uint64_t> seen;
  for (uint64_t seed = 1000; seed < 1000 + 64; ++seed) {
    for (uint64_t stream = 0; stream < 64; ++stream) {
      seen.insert(derive_stream_seed(seed, stream));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
  // The historical collision pattern specifically: (s, b) vs (s + 0x9E37,
  // b - 1) shared streams under the old scheme.
  EXPECT_NE(derive_stream_seed(42, 5), derive_stream_seed(42 + 0x9E37, 4));
}

TEST(Rng, ReseedRestartsStream) {
  RandomEngine a(55);
  const uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(55);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, DoubleInUnitInterval) {
  RandomEngine rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  RandomEngine rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, NextBelowBounds) {
  RandomEngine rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformIntInclusiveRange) {
  RandomEngine rng(12);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  RandomEngine rng(13);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianAffine) {
  RandomEngine rng(14);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.f, 0.5f);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStreams) {
  RandomEngine parent(21);
  RandomEngine childA = parent.fork(0);
  RandomEngine childB = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (childA.next_u64() == childB.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<RandomEngine>);
  SUCCEED();
}

}  // namespace
}  // namespace rhw
