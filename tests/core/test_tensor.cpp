#include "core/tensor.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace rhw {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.rank(), 0);
}

TEST(Tensor, ShapeConstructionZeroFills) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.f);
}

TEST(Tensor, FillValueConstruction) {
  Tensor t({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, FromValuesChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, At2dIndexing) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at(0, 0), 0.f);
  EXPECT_EQ(t.at(0, 2), 2.f);
  EXPECT_EQ(t.at(1, 0), 3.f);
  EXPECT_EQ(t.at(1, 2), 5.f);
  t.at(1, 1) = 42.f;
  EXPECT_EQ(t[4], 42.f);
}

TEST(Tensor, At4dIndexing) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.f;
  EXPECT_EQ(t[t.numel() - 1], 7.f);
  t.at(0, 0, 0, 0) = 3.f;
  EXPECT_EQ(t[0], 3.f);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 5.f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
  t.reshape_inplace({6});
  EXPECT_EQ(t.rank(), 1);
}

TEST(Tensor, ElementwiseInPlaceOps) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  a.add_(b);
  EXPECT_EQ(a[0], 5.f);
  a.sub_(b);
  EXPECT_EQ(a[2], 3.f);
  a.mul_(b);
  EXPECT_EQ(a[1], 10.f);
  a.scale_(0.5f);
  EXPECT_EQ(a[0], 2.f);
  a.add_scalar_(1.f);
  EXPECT_EQ(a[0], 3.f);
  a.add_scaled_(b, 2.f);
  EXPECT_EQ(a[0], 11.f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.mul_(b), std::invalid_argument);
}

TEST(Tensor, ClampReluSign) {
  Tensor t({5}, std::vector<float>{-2, -0.5f, 0, 0.5f, 2});
  Tensor c = t;
  c.clamp_(-1, 1);
  EXPECT_EQ(c[0], -1.f);
  EXPECT_EQ(c[4], 1.f);
  EXPECT_EQ(c[2], 0.f);
  Tensor r = t;
  r.relu_();
  EXPECT_EQ(r[0], 0.f);
  EXPECT_EQ(r[3], 0.5f);
  Tensor s = t;
  s.sign_();
  EXPECT_EQ(s[0], -1.f);
  EXPECT_EQ(s[2], 0.f);
  EXPECT_EQ(s[4], 1.f);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, std::vector<float>{-3, 1, 2, 4});
  EXPECT_FLOAT_EQ(t.sum(), 4.f);
  EXPECT_FLOAT_EQ(t.mean(), 1.f);
  EXPECT_FLOAT_EQ(t.min(), -3.f);
  EXPECT_FLOAT_EQ(t.max(), 4.f);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.f);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(9.f + 1 + 4 + 16), 1e-5);
}

TEST(Tensor, ArgmaxRows) {
  Tensor t({2, 3}, std::vector<float>{0, 5, 1, 9, 2, 3});
  const auto am = t.argmax_rows();
  ASSERT_EQ(am.size(), 2u);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
}

TEST(Tensor, RandnStatistics) {
  RandomEngine rng(42);
  Tensor t = Tensor::randn({10000}, rng, 1.f, 2.f);
  EXPECT_NEAR(t.mean(), 1.f, 0.1f);
  double var = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    var += (t[i] - t.mean()) * (t[i] - t.mean());
  }
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Tensor, UniformRange) {
  RandomEngine rng(7);
  Tensor t = Tensor::rand_uniform({1000}, rng, -0.5f, 0.5f);
  EXPECT_GE(t.min(), -0.5f);
  EXPECT_LT(t.max(), 0.5f);
}

TEST(Tensor, ValueSemanticsDeepCopy) {
  Tensor a({2}, 1.f);
  Tensor b = a;
  b[0] = 99.f;
  EXPECT_EQ(a[0], 1.f);
}

TEST(Tensor, ShapeStr) {
  EXPECT_EQ(Tensor({2, 3}).shape_str(), "[2, 3]");
}

TEST(Tensor, NegativeShapeThrows) {
  EXPECT_THROW(Tensor({-1, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace rhw
