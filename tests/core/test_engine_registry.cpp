// EngineRegistry seam tests: registry error parity with the other four
// registries, the numeric contract from engine.hpp (alpha==0 / beta==0 /
// NaN propagation / zero_skip opt-out), per-engine parity versus the naive
// reference, the fused batched conv against a per-sample reference, and the
// active-engine selection machinery (EngineScope, determinism).
#include "core/engine_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "core/gemm.hpp"
#include "core/gemm_simd.hpp"
#include "core/im2col.hpp"
#include "core/rng.hpp"

namespace rhw {
namespace {

std::vector<float> random_matrix(int64_t rows, int64_t cols,
                                 RandomEngine& rng) {
  std::vector<float> m(static_cast<size_t>(rows * cols));
  for (auto& v : m) v = rng.uniform(-1.f, 1.f);
  return m;
}

// Engines accumulate in different orders, so parity versus naive holds to a
// FLOP-scaled tolerance: eps * k * |values|~1 with headroom.
float flop_tol(int64_t k) {
  return 1e-6f * static_cast<float>(std::max<int64_t>(k, 1)) * 8.f + 1e-6f;
}

const char* const kAllEngines[] = {"naive", "blocked", "simd"};

// -- registry surface ---------------------------------------------------------

TEST(EngineRegistry, BuiltinsRegistered) {
  const auto keys = core::EngineRegistry::instance().keys();
  for (const char* expected : kAllEngines) {
    EXPECT_TRUE(std::find(keys.begin(), keys.end(), expected) != keys.end())
        << expected;
    EXPECT_TRUE(core::EngineRegistry::instance().contains(expected));
  }
}

TEST(EngineRegistry, UnknownKeyThrowsWithTokenNaming) {
  try {
    core::make_engine("cublas");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown compute engine"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cublas"), std::string::npos) << msg;
    EXPECT_NE(msg.find("registered:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("blocked"), std::string::npos) << msg;
  }
}

TEST(EngineRegistry, UnknownOptionThrows) {
  EXPECT_THROW(core::make_engine("naive:x=1"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(core::make_engine("blocked:bogus=1"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(core::make_engine("simd:lanes=4"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
}

// Errors name the offending key, the bad value, AND the full spec string —
// same contract as the hw/attack/defense/experiment registries.
TEST(EngineRegistry, ParseErrorNamesKeyValueAndSpec) {
  try {
    core::make_engine("blocked:bk=abc");  // rhw-lint: allow(spec) stale on purpose
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bk"), std::string::npos) << msg;
    EXPECT_NE(msg.find("abc"), std::string::npos) << msg;
    EXPECT_NE(msg.find("blocked:bk=abc"), std::string::npos) << msg;  // rhw-lint: allow(spec) stale on purpose
  }
}

TEST(EngineRegistry, InvalidKnobValuesThrow) {
  EXPECT_THROW(core::make_engine("blocked:bk=0"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(core::make_engine("blocked:bn=-4"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(core::make_engine("simd:mr=3"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(core::make_engine("simd:nr=12"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
  EXPECT_THROW(core::make_engine("simd:mr=7.5"), std::invalid_argument);  // rhw-lint: allow(spec) stale on purpose
}

TEST(EngineRegistry, CanonicalSpecSpellsOutEveryKnob) {
  EXPECT_EQ(core::make_engine("naive")->spec(), "naive");
  EXPECT_EQ(core::make_engine("blocked")->spec(),
            "blocked:bk=256,bn=512,zero_skip=0");
  EXPECT_EQ(core::make_engine("blocked:bk=64")->spec(),
            "blocked:bk=64,bn=512,zero_skip=0");
  EXPECT_EQ(core::make_engine("simd")->spec(), "simd:mr=6,nr=16,threads=0");
  EXPECT_EQ(core::make_engine("simd:mr=8,nr=8")->spec(),
            "simd:mr=8,nr=8,threads=0");
  // Canonical specs round-trip through the registry unchanged.
  for (const char* key : kAllEngines) {
    const auto spec = core::make_engine(key)->spec();
    EXPECT_EQ(core::make_engine(spec)->spec(), spec) << key;
  }
}

TEST(EngineRegistry, CustomEngineRegistration) {
  core::EngineRegistry::instance().add(
      "custom-naive", [](const core::EngineOptions&) -> core::EnginePtr {
        return core::make_engine("naive");
      });
  auto engine = core::make_engine("custom-naive");
  EXPECT_EQ(engine->key(), "naive");
}

// -- numeric contract ---------------------------------------------------------

class EngineContract : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineContract, AlphaZeroNeverReadsInputs) {
  auto engine = core::make_engine(GetParam());
  std::vector<float> c{1.f, 2.f, 3.f, 4.f};
  engine->gemm(false, false, 2, 2, 8, 0.f, nullptr, 8, nullptr, 2, 2.f,
               c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 2.f);
  EXPECT_FLOAT_EQ(c[3], 8.f);
}

TEST_P(EngineContract, BetaZeroOverwritesStaleNaN) {
  auto engine = core::make_engine(GetParam());
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{1, 0, 0, 1};
  std::vector<float> c{nan, nan, nan, nan};
  engine->gemm(false, false, 2, 2, 2, 1.f, a.data(), 2, b.data(), 2, 0.f,
               c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 1.f);
  EXPECT_FLOAT_EQ(c[1], 2.f);
  EXPECT_FLOAT_EQ(c[2], 3.f);
  EXPECT_FLOAT_EQ(c[3], 4.f);
}

TEST_P(EngineContract, NaNInInputsPropagates) {
  // A zero row in A multiplying a NaN in B still yields NaN (0 * NaN = NaN)
  // for every default-configured engine — zero_skip is opt-in.
  auto engine = core::make_engine(GetParam());
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> a{0, 0, 1, 1};   // row 0 all zeros
  const std::vector<float> b{nan, 1, 2, 3};
  std::vector<float> c(4, 0.f);
  engine->gemm(false, false, 2, 2, 2, 1.f, a.data(), 2, b.data(), 2, 0.f,
               c.data(), 2);
  EXPECT_TRUE(std::isnan(c[0])) << engine->spec() << " c[0]=" << c[0];
  EXPECT_TRUE(std::isnan(c[2]));
}

TEST_P(EngineContract, DeterministicAcrossRepeats) {
  auto engine = core::make_engine(GetParam());
  RandomEngine rng(31);
  const int64_t m = 67, n = 45, k = 123;  // crosses the parallel threshold
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> first(static_cast<size_t>(m * n), 0.f);
  engine->gemm(false, false, m, n, k, 1.f, a.data(), k, b.data(), n, 0.f,
               first.data(), n);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<float> again(static_cast<size_t>(m * n), 0.f);
    engine->gemm(false, false, m, n, k, 1.f, a.data(), k, b.data(), n, 0.f,
                 again.data(), n);
    ASSERT_EQ(first, again) << engine->spec() << " rep " << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineContract,
                         ::testing::ValuesIn(kAllEngines));

TEST(EngineContract, ZeroSkipDropsNaNPropagation) {
  // blocked:zero_skip=1 restores the historical fast path: a zero element of
  // A skips its multiply, so NaN in the corresponding B row is dropped.
  auto skipping = core::make_engine("blocked:zero_skip=1");
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> a{0, 1};  // 1x2, first element zero
  const std::vector<float> b{nan, 2};  // 2x1, NaN sits on the skipped row
  std::vector<float> c{0.f};
  skipping->gemm(false, false, 1, 1, 2, 1.f, a.data(), 2, b.data(), 1, 0.f,
                 c.data(), 1);
  EXPECT_FLOAT_EQ(c[0], 2.f) << "zero_skip=1 should skip the 0 * NaN term";

  auto strict = core::make_engine("blocked:zero_skip=0");
  c[0] = 0.f;
  strict->gemm(false, false, 1, 1, 2, 1.f, a.data(), 2, b.data(), 1, 0.f,
               c.data(), 1);
  EXPECT_TRUE(std::isnan(c[0])) << "default blocked must propagate NaN";
}

// -- parity versus naive ------------------------------------------------------

class EngineParity
    : public ::testing::TestWithParam<std::tuple<const char*, bool, bool>> {};

TEST_P(EngineParity, MatchesNaiveAcrossShapes) {
  const auto [spec, ta, tb] = GetParam();
  auto engine = core::make_engine(spec);
  auto naive = core::make_engine("naive");
  // Sizes chosen to hit full tiles, edge tiles, packing, and the parallel
  // threshold; leading dims padded to exercise the strided paths.
  const std::tuple<int, int, int> shapes[] = {
      {1, 1, 1}, {5, 3, 4}, {17, 9, 33}, {64, 48, 96}, {70, 31, 129}};
  for (const auto& [m, n, k] : shapes) {
    RandomEngine rng(static_cast<uint64_t>(m * 31 + n * 7 + k) + (ta ? 64 : 0) +
                     (tb ? 128 : 0));
    const int64_t pad = (m + n + k) % 3;  // mix tight and loose lds
    const int64_t lda = (ta ? m : k) + pad;
    const int64_t ldb = (tb ? k : n) + pad;
    const int64_t ldc = n + pad;
    const auto a = random_matrix(ta ? k : m, lda, rng);
    const auto b = random_matrix(tb ? n : k, ldb, rng);
    std::vector<float> c(static_cast<size_t>(m * ldc), 0.25f);
    std::vector<float> c_ref = c;
    engine->gemm(ta, tb, m, n, k, 0.9f, a.data(), lda, b.data(), ldb, 0.4f,
                 c.data(), ldc);
    naive->gemm(ta, tb, m, n, k, 0.9f, a.data(), lda, b.data(), ldb, 0.4f,
                c_ref.data(), ldc);
    const float tol = flop_tol(k);
    for (size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], c_ref[i], tol)
          << spec << " shape (" << m << "," << n << "," << k << ") ta=" << ta
          << " tb=" << tb << " at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineParity,
    ::testing::Combine(::testing::Values("blocked", "blocked:bk=16,bn=32",
                                         "simd", "simd:mr=1,nr=8",
                                         "simd:mr=8,nr=8", "simd:mr=4,nr=16",
                                         "simd:threads=1"),
                       ::testing::Bool(), ::testing::Bool()));

TEST(EngineParity, SimdGemvMatchesNaive) {
  auto simd = core::make_engine("simd");
  auto naive = core::make_engine("naive");
  RandomEngine rng(41);
  const int64_t m = 37, n = 53;
  const auto a = random_matrix(m, n, rng);
  for (bool trans : {false, true}) {
    const int64_t xs = trans ? m : n;
    const int64_t ys = trans ? n : m;
    const auto x = random_matrix(xs, 1, rng);
    for (float beta : {0.f, 1.f, 0.5f}) {
      std::vector<float> y(static_cast<size_t>(ys), 1.5f);
      std::vector<float> y_ref = y;
      simd->gemv(trans, m, n, 0.8f, a.data(), n, x.data(), beta, y.data());
      naive->gemv(trans, m, n, 0.8f, a.data(), n, x.data(), beta,
                  y_ref.data());
      const float tol = flop_tol(trans ? m : n);
      for (size_t i = 0; i < y.size(); ++i) {
        ASSERT_NEAR(y[i], y_ref[i], tol)
            << "trans=" << trans << " beta=" << beta << " at " << i;
      }
    }
  }
}

// -- fused batched convolution ------------------------------------------------

// Per-sample reference: im2col + one GEMM per sample + scalar bias loop —
// the shape of the historical nn::Conv2d forward.
void conv_reference(const ConvGeom& g, int64_t batch, const float* input,
                    int64_t out_c, const float* weights, const float* bias,
                    float* out) {
  const int64_t cr = g.col_rows(), cc = g.col_cols();
  const int64_t in_sz = g.in_c * g.in_h * g.in_w;
  std::vector<float> cols(static_cast<size_t>(cr * cc));
  auto naive = core::make_engine("naive");
  for (int64_t i = 0; i < batch; ++i) {
    im2col(g, input + i * in_sz, cols.data());
    float* dst = out + i * out_c * cc;
    naive->gemm(false, false, out_c, cc, cr, 1.f, weights, cr, cols.data(), cc,
                0.f, dst, cc);
    if (bias) {
      for (int64_t oc = 0; oc < out_c; ++oc) {
        for (int64_t p = 0; p < cc; ++p) dst[oc * cc + p] += bias[oc];
      }
    }
  }
}

class EngineConv : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineConv, FusedForwardMatchesPerSampleReference) {
  auto engine = core::make_engine(GetParam());
  ConvGeom g;
  g.in_c = 3;
  g.in_h = 9;
  g.in_w = 9;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 1;
  g.pad = 1;
  const int64_t batch = 5, out_c = 7;
  RandomEngine rng(51);
  const auto input = random_matrix(batch, g.in_c * g.in_h * g.in_w, rng);
  const auto weights = random_matrix(out_c, g.col_rows(), rng);
  const auto bias = random_matrix(out_c, 1, rng);
  const size_t out_sz = static_cast<size_t>(batch * out_c * g.col_cols());
  for (const float* b : {bias.data(), static_cast<const float*>(nullptr)}) {
    std::vector<float> out(out_sz, -9.f), ref(out_sz, -9.f);
    engine->conv2d_forward(g, batch, input.data(), out_c, weights.data(), b,
                           out.data());
    conv_reference(g, batch, input.data(), out_c, weights.data(), b,
                   ref.data());
    const float tol = flop_tol(g.col_rows());
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_NEAR(out[i], ref[i], tol)
          << GetParam() << (b ? " with bias" : " no bias") << " at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineConv,
                         ::testing::ValuesIn(kAllEngines));

TEST(EngineConv, ChunkingInvariance) {
  // A batch large enough to force multiple scratch chunks must produce the
  // same bits as the same conv run one sample at a time through the fused
  // path (per-element accumulation order is chunk-independent).
  auto engine = core::make_engine("simd");
  ConvGeom g;
  g.in_c = 2;
  g.in_h = 6;
  g.in_w = 6;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 1;
  g.pad = 1;
  const int64_t batch = 9, out_c = 4;
  RandomEngine rng(61);
  const auto input = random_matrix(batch, g.in_c * g.in_h * g.in_w, rng);
  const auto weights = random_matrix(out_c, g.col_rows(), rng);
  const size_t per_sample = static_cast<size_t>(out_c * g.col_cols());
  std::vector<float> whole(static_cast<size_t>(batch) * per_sample, 0.f);
  engine->conv2d_forward(g, batch, input.data(), out_c, weights.data(),
                         nullptr, whole.data());
  std::vector<float> single(static_cast<size_t>(batch) * per_sample, 0.f);
  const int64_t in_sz = g.in_c * g.in_h * g.in_w;
  for (int64_t i = 0; i < batch; ++i) {
    engine->conv2d_forward(g, 1, input.data() + i * in_sz, out_c,
                           weights.data(), nullptr,
                           single.data() + i * per_sample);
  }
  ASSERT_EQ(whole, single);
}

// -- active-engine selection --------------------------------------------------

TEST(EngineScope, SelectsAndRestores) {
  const std::string before = core::active_engine().spec();
  {
    core::EngineScope scope("naive");
    EXPECT_EQ(core::active_engine().spec(), "naive");
    {
      core::EngineScope inner("simd:mr=8,nr=8");
      EXPECT_EQ(core::active_engine().spec(), "simd:mr=8,nr=8,threads=0");
    }
    EXPECT_EQ(core::active_engine().spec(), "naive");
  }
  EXPECT_EQ(core::active_engine().spec(), before);
}

TEST(EngineScope, FreeGemmRoutesThroughActiveEngine) {
  // zero_skip=1 is observable through the free-function dispatcher: the
  // 0 * NaN term disappears exactly when that engine is active.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> a{0, 1};
  const std::vector<float> b{nan, 2};
  std::vector<float> c{0.f};
  {
    core::EngineScope scope("blocked:zero_skip=1");
    gemm(false, false, 1, 1, 2, 1.f, a.data(), 2, b.data(), 1, 0.f, c.data(),
         1);
  }
  EXPECT_FLOAT_EQ(c[0], 2.f);
  c[0] = 0.f;
  {
    core::EngineScope scope("blocked");
    gemm(false, false, 1, 1, 2, 1.f, a.data(), 2, b.data(), 1, 0.f, c.data(),
         1);
  }
  EXPECT_TRUE(std::isnan(c[0]));
}

TEST(EngineScope, SetActiveEngineRejectsNull) {
  EXPECT_THROW(core::set_active_engine(core::EnginePtr{}),
               std::invalid_argument);
}

TEST(EngineRegistry, FastPathReportsWithoutCrashing) {
  // Informational only — just make sure the runtime dispatch query is safe
  // to call and stable.
  const bool first = core::SimdEngine::fast_path();
  EXPECT_EQ(core::SimdEngine::fast_path(), first);
}

}  // namespace
}  // namespace rhw
