#include "core/im2col.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace rhw {
namespace {

TEST(ConvGeom, OutputDims) {
  ConvGeom g{3, 32, 32, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 32);
  EXPECT_EQ(g.out_w(), 32);
  EXPECT_EQ(g.col_rows(), 27);
  EXPECT_EQ(g.col_cols(), 1024);

  ConvGeom s{1, 8, 8, 3, 3, 2, 1};
  EXPECT_EQ(s.out_h(), 4);

  ConvGeom nopad{1, 5, 5, 3, 3, 1, 0};
  EXPECT_EQ(nopad.out_h(), 3);
}

TEST(Im2col, IdentityKernel1x1) {
  ConvGeom g{2, 3, 3, 1, 1, 1, 0};
  std::vector<float> in(18);
  for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i);
  std::vector<float> cols(static_cast<size_t>(g.col_rows() * g.col_cols()));
  im2col(g, in.data(), cols.data());
  // 1x1 kernel: columns == input planes flattened
  for (size_t i = 0; i < in.size(); ++i) EXPECT_EQ(cols[i], in[i]);
}

TEST(Im2col, PaddingProducesZeros) {
  ConvGeom g{1, 2, 2, 3, 3, 1, 1};
  std::vector<float> in{1, 2, 3, 4};
  std::vector<float> cols(static_cast<size_t>(g.col_rows() * g.col_cols()));
  im2col(g, in.data(), cols.data());
  // Kernel position (0,0) at output (0,0) reads input (-1,-1) -> 0.
  EXPECT_EQ(cols[0], 0.f);
  // Kernel center (1,1) at output (0,0) reads input (0,0) -> 1.
  EXPECT_EQ(cols[4 * g.col_cols() + 0], 1.f);
  // Kernel center at output (1,1) reads input (1,1) -> 4.
  EXPECT_EQ(cols[4 * g.col_cols() + 3], 4.f);
}

TEST(Im2col, StrideSkipsPositions) {
  ConvGeom g{1, 4, 4, 2, 2, 2, 0};
  std::vector<float> in(16);
  for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i);
  ASSERT_EQ(g.out_h(), 2);
  std::vector<float> cols(static_cast<size_t>(g.col_rows() * g.col_cols()));
  im2col(g, in.data(), cols.data());
  // Kernel (0,0): outputs sample inputs (0,0), (0,2), (2,0), (2,2).
  EXPECT_EQ(cols[0], 0.f);
  EXPECT_EQ(cols[1], 2.f);
  EXPECT_EQ(cols[2], 8.f);
  EXPECT_EQ(cols[3], 10.f);
}

// col2im is the exact adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
TEST(Im2col, Col2imIsAdjoint) {
  ConvGeom g{3, 7, 6, 3, 3, 2, 1};
  RandomEngine rng(17);
  const int64_t in_size = g.in_c * g.in_h * g.in_w;
  const int64_t col_size = g.col_rows() * g.col_cols();
  std::vector<float> x(static_cast<size_t>(in_size));
  std::vector<float> y(static_cast<size_t>(col_size));
  for (auto& v : x) v = rng.uniform(-1.f, 1.f);
  for (auto& v : y) v = rng.uniform(-1.f, 1.f);

  std::vector<float> cols(static_cast<size_t>(col_size));
  im2col(g, x.data(), cols.data());
  double lhs = 0;
  for (int64_t i = 0; i < col_size; ++i) lhs += cols[i] * y[i];

  std::vector<float> back(static_cast<size_t>(in_size), 0.f);
  col2im(g, y.data(), back.data());
  double rhs = 0;
  for (int64_t i = 0; i < in_size; ++i) rhs += x[i] * back[i];

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col, Col2imAccumulatesOverlaps) {
  // 3x3 kernel, stride 1: interior input pixels are read 9 times, so
  // col2im(ones) counts each pixel's usage.
  ConvGeom g{1, 5, 5, 3, 3, 1, 1};
  std::vector<float> cols(static_cast<size_t>(g.col_rows() * g.col_cols()),
                          1.f);
  std::vector<float> grad(25, 0.f);
  col2im(g, cols.data(), grad.data());
  EXPECT_EQ(grad[12], 9.f);  // center pixel
  EXPECT_EQ(grad[0], 4.f);   // corner pixel
}

}  // namespace
}  // namespace rhw
