#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace rhw {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndNegativeAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](int64_t, int64_t) { ++calls; });
  pool.parallel_for(-5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleElement) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  pool.parallel_for(1, [&](int64_t b, int64_t e) { sum += e - b; });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ThreadPool, NestedCallsFallBackToSerial) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.parallel_for(8, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Reentrant use of the global pool must not deadlock.
      parallel_for(10, [&](int64_t ib, int64_t ie) { total += ie - ib; });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::atomic<int64_t> sum{0};
  parallel_for(12345, [&](int64_t b, int64_t e) { sum += e - b; });
  EXPECT_EQ(sum.load(), 12345);
}

TEST(ThreadPool, ManySequentialDispatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    pool.parallel_for(37, [&](int64_t b, int64_t e) { sum += e - b; });
    ASSERT_EQ(sum.load(), 37);
  }
}

}  // namespace
}  // namespace rhw
