// Audit the paper's claimed mechanism: hardware noise defends by *gradient
// obfuscation*. This example maps a trained model onto crossbars and runs the
// standard obfuscation diagnostics (gradient agreement, white-box vs
// transfer gap, random-perturbation floor).
//
//   $ ./examples/gradient_obfuscation_audit
#include <cstdio>

#include "attacks/diagnostics.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"
#include "sram/layer_selector.hpp"
#include "xbar/mapper.hpp"

using namespace rhw;

namespace {

void print_report(const char* name,
                  const attacks::ObfuscationReport& report) {
  std::printf("%s:\n", name);
  std::printf("  gradient cosine vs software model : %.4f\n",
              report.grad_cosine);
  std::printf("  clean accuracy                     : %.2f%%\n",
              report.clean_acc);
  std::printf("  white-box FGSM adv accuracy        : %.2f%%\n",
              report.white_box_adv_acc);
  std::printf("  transferred FGSM adv accuracy      : %.2f%%\n",
              report.transfer_adv_acc);
  std::printf("  random-perturbation floor          : %.2f%%\n",
              report.random_adv_acc);
  std::printf("  obfuscation suspected              : %s\n\n",
              report.obfuscation_suspected() ? "YES (transfer beats white-box)"
                                             : "no");
}

}  // namespace

int main() {
  std::printf("== Gradient-obfuscation audit ==\n\n");

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);

  models::Model software = models::build_model("vgg8", 10, 0.125f, 16);
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  models::train_model(software, dataset, tcfg);

  attacks::ObfuscationConfig ocfg;
  ocfg.epsilon = 0.1f;
  ocfg.sample_count = 200;

  // Control: the software model audited against itself.
  print_report("software baseline (control)",
               attacks::diagnose_gradient_obfuscation(
                   *software.net, *software.net, dataset.test, ocfg));

  // Crossbar-mapped hardware model.
  models::Model mapped = models::build_model("vgg8", 10, 0.125f, 16);
  nn::load_state_dict(*mapped.net, nn::state_dict(*software.net));
  mapped.net->set_training(false);
  xbar::XbarMapConfig xcfg;
  xcfg.spec.rows = 32;
  xcfg.spec.cols = 32;
  (void)xbar::map_onto_crossbars(*mapped.net, xcfg);
  print_report("crossbar-mapped model (32x32)",
               attacks::diagnose_gradient_obfuscation(
                   *software.net, *mapped.net, dataset.test, ocfg));

  // SRAM bit-error model: noise on the first two activation memories.
  models::Model noisy = models::build_model("vgg8", 10, 0.125f, 16);
  nn::load_state_dict(*noisy.net, nn::state_dict(*software.net));
  noisy.net->set_training(false);
  std::vector<sram::SiteChoice> selection;
  for (size_t s = 0; s < 2; ++s) {
    sram::SiteChoice c;
    c.site_index = s;
    c.site_label = noisy.sites[s].label;
    c.word.num_8t = 2;
    selection.push_back(c);
  }
  sram::apply_selection(noisy, selection, /*vdd=*/0.64);
  print_report("hybrid-SRAM noisy model (2/6 @ 0.64 V)",
               attacks::diagnose_gradient_obfuscation(
                   *software.net, *noisy.net, dataset.test, ocfg));

  std::printf(
      "Interpretation: the hardware models' gradients diverge from the "
      "software\nmodel's (cosine < 1); when transferred adversaries beat "
      "white-box ones, the\nhardware loss surface is hiding its own "
      "weaknesses — the paper's Fig. 1 story.\n");
  return 0;
}
