// Audit the paper's claimed mechanism: hardware noise defends by *gradient
// obfuscation*. If that is all it does, the robustness is an artifact of the
// attack, not of the model — the obfuscated-gradients critique (Athalye et
// al.). This audit runs the three canonical checks as ONE declarative
// exp::SweepEngine grid, per hardware substrate:
//
//   PGD        white-box gradient attack — the number the paper reports;
//   EOT-PGD    the adaptive attack: gradients averaged over independently
//              reseeded noisy passes. If it beats PGD, the noise was hiding
//              gradient signal that an aware attacker recovers;
//   Square     gradient-free black-box random search. No amount of gradient
//              noise can mask a model from an attack that never asks for
//              gradients — if Square beats PGD, the white-box gradients were
//              actively misleading.
//
// Plus the transfer check (software-crafted adversaries beating white-box
// ones) and the gradient-agreement / random-floor diagnostics from
// attacks/diagnostics.hpp.
//
//   $ ./examples/gradient_obfuscation_audit
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/diagnostics.hpp"
#include "data/synth_cifar.hpp"
#include "exp/sweep.hpp"
#include "exp/table_printer.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"

using namespace rhw;

namespace {

// The audit's attack suite: one epsilon, three adversaries with very
// different knowledge of the defense. Declared once, swept everywhere.
constexpr const char* kPgdSpec = "pgd:steps=7";
constexpr const char* kEotSpec = "eot_pgd:steps=7,samples=8";
constexpr const char* kSquareSpec = "square:queries=150";

}  // namespace

int main() {
  std::printf("== Gradient-obfuscation audit ==\n\n");

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);

  models::Model software = models::build_model("vgg8", 10, 0.125f, 16);
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  models::train_model(software, dataset, tcfg);
  software.net->set_training(false);

  attacks::ObfuscationConfig ocfg;
  ocfg.epsilon = 0.1f;
  ocfg.sample_count = 200;
  // One population for every report row: the sweep cells and the
  // cosine/random-floor helpers all evaluate this subset.
  const data::Dataset audit_set = dataset.test.head(ocfg.sample_count);

  // Each audited substrate is one registry string; the software model is the
  // gradient reference for the transfer rows.
  const struct {
    const char* title;
    const char* key;
    const char* spec;
  } substrates[] = {
      {"crossbar-mapped model (32x32)", "xbar", "xbar:size=32"},
      {"hybrid-SRAM noisy model (2/6 @ 0.64 V)", "sram",
       "sram:sites=2,num_8t=2,vdd=0.64"},
  };

  exp::SweepGrid grid;
  grid.model = &software;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &audit_set;
  grid.base.batch_size = ocfg.batch_size;
  grid.backends.push_back({"ideal", "ideal"});
  grid.modes.push_back({"control", "ideal", "ideal"});
  for (const auto& sub : substrates) {
    // No calibration set: the sram backend uses its fixed fallback sites
    // instead of running the selection methodology.
    grid.backends.push_back({sub.key, sub.spec});
    grid.modes.push_back({std::string("white-box/") + sub.key, sub.key,
                          sub.key});
    grid.modes.push_back({std::string("transfer/") + sub.key, "ideal",
                          sub.key});
  }
  grid.attacks.push_back({kPgdSpec, {ocfg.epsilon}});
  grid.attacks.push_back({kEotSpec, {ocfg.epsilon}});
  grid.attacks.push_back({kSquareSpec, {ocfg.epsilon}});

  exp::SweepEngine engine;
  const exp::SweepResult result = engine.run(grid);
  std::printf("[sweep] %zu attack cells on %u lane(s) in %.2fs\n\n",
              result.cells.size(), result.lanes, result.wall_seconds);

  nn::Module& reference = engine.backend("ideal")->module();
  auto mode_index = [&](const std::string& label) {
    for (size_t m = 0; m < result.mode_labels.size(); ++m) {
      if (result.mode_labels[m] == label) return m;
    }
    return result.mode_labels.size();
  };
  // Attack arms by grid order: 0 = PGD, 1 = EOT-PGD, 2 = Square.
  auto adv = [&](const std::string& mode, size_t attack) {
    return result.find(mode_index(mode), attack, 0)->adv.mean;
  };

  const auto* control = result.find(mode_index("control"), 0, 0);
  std::printf("software baseline (control):\n");
  std::printf("  clean accuracy                     : %.2f%%\n",
              control->clean.mean);
  std::printf("  white-box PGD adv accuracy         : %.2f%%\n",
              control->adv.mean);
  std::printf("  EOT-PGD adv accuracy               : %.2f%%\n",
              adv("control", 1));
  std::printf("  Square (black-box) adv accuracy    : %.2f%%\n\n",
              adv("control", 2));

  exp::TablePrinter table({"substrate", "clean", "PGD", "EOT-PGD", "Square",
                           "transfer-PGD", "verdict"});
  for (const auto& sub : substrates) {
    const std::string white = std::string("white-box/") + sub.key;
    const std::string transfer = std::string("transfer/") + sub.key;
    nn::Module& hardware = engine.backend(sub.key)->module();
    const double clean = result.find(mode_index(white), 0, 0)->clean.mean;
    const double pgd_acc = adv(white, 0);
    const double eot_acc = adv(white, 1);
    const double square_acc = adv(white, 2);
    const double transfer_acc = adv(transfer, 0);
    const double cos = attacks::gradient_agreement(reference, hardware,
                                                   audit_set, ocfg);
    const double random_floor =
        attacks::random_perturbation_accuracy(hardware, audit_set, ocfg);

    // Any stronger-informed attack beating white-box PGD means PGD's
    // gradients were hiding attack surface: the robustness gap is (at least
    // partly) obfuscation, not margin. The accuracies are single noisy
    // draws on a 200-sample set (one example = 0.5 points), so require the
    // gap to clear a 5-example margin before raising the flag — evaluation
    // noise alone must not read as obfuscation.
    const double margin =
        100.0 * 5.0 / static_cast<double>(audit_set.size());
    const bool eot_breaks = eot_acc < pgd_acc - margin;
    const bool square_breaks = square_acc < pgd_acc - margin;
    const bool transfer_breaks = transfer_acc < pgd_acc - margin;
    const bool suspected = eot_breaks || square_breaks || transfer_breaks;
    std::string verdict = suspected ? "OBFUSCATION:" : "no sign";
    if (eot_breaks) verdict += " eot";
    if (square_breaks) verdict += " square";
    if (transfer_breaks) verdict += " transfer";
    table.add_row({sub.key, exp::fmt(clean, 2), exp::fmt(pgd_acc, 2),
                   exp::fmt(eot_acc, 2), exp::fmt(square_acc, 2),
                   exp::fmt(transfer_acc, 2), verdict});

    std::printf("%s:\n", sub.title);
    std::printf("  gradient cosine vs software model : %.4f\n", cos);
    std::printf("  clean accuracy                     : %.2f%%\n", clean);
    std::printf("  white-box PGD adv accuracy         : %.2f%%\n", pgd_acc);
    std::printf("  EOT-PGD (adaptive) adv accuracy    : %.2f%%%s\n", eot_acc,
                eot_breaks ? "   <- beats PGD" : "");
    std::printf("  Square (black-box) adv accuracy    : %.2f%%%s\n",
                square_acc, square_breaks ? "   <- beats PGD" : "");
    std::printf("  transferred PGD adv accuracy       : %.2f%%%s\n",
                transfer_acc, transfer_breaks ? "   <- beats PGD" : "");
    std::printf("  random-perturbation floor          : %.2f%%\n",
                random_floor);
    std::printf("  obfuscation suspected              : %s\n\n",
                suspected ? "YES" : "no");
  }
  table.print();
  result.write_json("BENCH_gradient_obfuscation_audit.json",
                    "gradient_obfuscation_audit");

  std::printf(
      "\nInterpretation: gradient cosine < 1 means the hardware gradients "
      "diverge from\nthe software model's. Robustness that survives EOT-PGD "
      "and Square is real margin;\nrobustness that only holds against plain "
      "PGD is gradient obfuscation — the\nhonest caveat the paper's Fig. 1 "
      "story needs.\n");
  return 0;
}
