// Audit the paper's claimed mechanism: hardware noise defends by *gradient
// obfuscation*. The white-box (HH) and transfer (SH) FGSM accuracies for
// every substrate are cells of one exp::SweepEngine grid — the pairing of
// (grad backend, eval backend) IS the white-box/transfer distinction — run
// concurrently; the gradient-agreement and random-perturbation checks use the
// engine's prototype replicas afterwards.
//
//   $ ./examples/gradient_obfuscation_audit
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/diagnostics.hpp"
#include "data/synth_cifar.hpp"
#include "exp/sweep.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"

using namespace rhw;

int main() {
  std::printf("== Gradient-obfuscation audit ==\n\n");

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);

  models::Model software = models::build_model("vgg8", 10, 0.125f, 16);
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  models::train_model(software, dataset, tcfg);
  software.net->set_training(false);

  attacks::ObfuscationConfig ocfg;
  ocfg.epsilon = 0.1f;
  ocfg.sample_count = 200;
  // One population for every report row: the sweep cells and the
  // cosine/random-floor helpers all evaluate this subset.
  const data::Dataset audit_set = dataset.test.head(ocfg.sample_count);

  // Each audited substrate is one registry string; the software model is the
  // gradient reference for the transfer (SH) rows.
  const struct {
    const char* title;
    const char* key;
    const char* spec;
  } substrates[] = {
      {"crossbar-mapped model (32x32)", "xbar", "xbar:size=32"},
      {"hybrid-SRAM noisy model (2/6 @ 0.64 V)", "sram",
       "sram:sites=2,num_8t=2,vdd=0.64"},
  };

  exp::SweepGrid grid;
  grid.model = &software;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &audit_set;
  grid.base.batch_size = ocfg.batch_size;
  grid.backends.push_back({"ideal", "ideal", nullptr, nullptr});
  grid.modes.push_back({"control", "ideal", "ideal"});
  for (const auto& sub : substrates) {
    // No calibration set: the sram backend uses its fixed fallback sites
    // instead of running the selection methodology.
    grid.backends.push_back({sub.key, sub.spec, nullptr, nullptr});
    grid.modes.push_back({std::string("white-box/") + sub.key, sub.key,
                          sub.key});
    grid.modes.push_back({std::string("transfer/") + sub.key, "ideal",
                          sub.key});
  }
  grid.attacks.push_back({attacks::AttackKind::kFgsm, {ocfg.epsilon}});

  exp::SweepEngine engine;
  const exp::SweepResult result = engine.run(grid);
  std::printf("[sweep] %zu attack cells on %u lane(s) in %.2fs\n\n",
              result.cells.size(), result.lanes, result.wall_seconds);

  nn::Module& reference = engine.backend("ideal")->module();
  auto mode_index = [&](const std::string& label) {
    for (size_t m = 0; m < result.mode_labels.size(); ++m) {
      if (result.mode_labels[m] == label) return m;
    }
    return result.mode_labels.size();
  };
  const auto* control = result.find(mode_index("control"), 0, 0);
  std::printf("software baseline (control):\n");
  std::printf("  clean accuracy                     : %.2f%%\n",
              control->clean.mean);
  std::printf("  white-box FGSM adv accuracy        : %.2f%%\n\n",
              control->adv.mean);

  for (const auto& sub : substrates) {
    nn::Module& hardware = engine.backend(sub.key)->module();
    const auto* white =
        result.find(mode_index(std::string("white-box/") + sub.key), 0, 0);
    const auto* transfer =
        result.find(mode_index(std::string("transfer/") + sub.key), 0, 0);
    const double cos = attacks::gradient_agreement(reference, hardware,
                                                   audit_set, ocfg);
    const double random_floor =
        attacks::random_perturbation_accuracy(hardware, audit_set, ocfg);
    std::printf("%s:\n", sub.title);
    std::printf("  gradient cosine vs software model : %.4f\n", cos);
    std::printf("  clean accuracy                     : %.2f%%\n",
                white->clean.mean);
    std::printf("  white-box FGSM adv accuracy        : %.2f%%\n",
                white->adv.mean);
    std::printf("  transferred FGSM adv accuracy      : %.2f%%\n",
                transfer->adv.mean);
    std::printf("  random-perturbation floor          : %.2f%%\n",
                random_floor);
    std::printf("  obfuscation suspected              : %s\n\n",
                transfer->adv.mean < white->adv.mean
                    ? "YES (transfer beats white-box)"
                    : "no");
  }

  std::printf(
      "Interpretation: the hardware models' gradients diverge from the "
      "software\nmodel's (cosine < 1); when transferred adversaries beat "
      "white-box ones, the\nhardware loss surface is hiding its own "
      "weaknesses — the paper's Fig. 1 story.\n");
  return 0;
}
