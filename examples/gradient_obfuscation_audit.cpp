// Audit the paper's claimed mechanism: hardware noise defends by *gradient
// obfuscation*. This example prepares the hardware models through the backend
// registry and runs the standard obfuscation diagnostics (gradient
// agreement, white-box vs transfer gap, random-perturbation floor).
//
//   $ ./examples/gradient_obfuscation_audit
#include <cstdio>

#include "attacks/diagnostics.hpp"
#include "data/synth_cifar.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"

using namespace rhw;

namespace {

void print_report(const char* name,
                  const attacks::ObfuscationReport& report) {
  std::printf("%s:\n", name);
  std::printf("  gradient cosine vs software model : %.4f\n",
              report.grad_cosine);
  std::printf("  clean accuracy                     : %.2f%%\n",
              report.clean_acc);
  std::printf("  white-box FGSM adv accuracy        : %.2f%%\n",
              report.white_box_adv_acc);
  std::printf("  transferred FGSM adv accuracy      : %.2f%%\n",
              report.transfer_adv_acc);
  std::printf("  random-perturbation floor          : %.2f%%\n",
              report.random_adv_acc);
  std::printf("  obfuscation suspected              : %s\n\n",
              report.obfuscation_suspected() ? "YES (transfer beats white-box)"
                                             : "no");
}

models::Model clone_of(const models::Model& src) {
  return models::clone_model(src, 0.125f, 16);
}

}  // namespace

int main() {
  std::printf("== Gradient-obfuscation audit ==\n\n");

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);

  models::Model software = models::build_model("vgg8", 10, 0.125f, 16);
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  models::train_model(software, dataset, tcfg);
  software.net->set_training(false);

  attacks::ObfuscationConfig ocfg;
  ocfg.epsilon = 0.1f;
  ocfg.sample_count = 200;

  // Each audited substrate is one registry string on a fresh clone; the
  // software model is the gradient reference throughout.
  const struct {
    const char* title;
    const char* spec;
  } substrates[] = {
      {"software baseline (control)", "ideal"},
      {"crossbar-mapped model (32x32)", "xbar:size=32"},
      {"hybrid-SRAM noisy model (2/6 @ 0.64 V)",
       "sram:sites=2,num_8t=2,vdd=0.64"},
  };
  for (const auto& substrate : substrates) {
    models::Model hardware = clone_of(software);
    auto backend = hw::make_backend(substrate.spec);
    // No calibration set: the sram backend uses its fixed fallback sites
    // instead of running the selection methodology.
    backend->prepare(hardware);
    print_report(substrate.title,
                 attacks::diagnose_gradient_obfuscation(
                     *software.net, backend->module(), dataset.test, ocfg));
  }

  std::printf(
      "Interpretation: the hardware models' gradients diverge from the "
      "software\nmodel's (cosine < 1); when transferred adversaries beat "
      "white-box ones, the\nhardware loss surface is hiding its own "
      "weaknesses — the paper's Fig. 1 story.\n");
  return 0;
}
