// Audit the paper's claimed mechanism: hardware noise defends by *gradient
// obfuscation*. If that is all it does, the robustness is an artifact of the
// attack, not of the model — the obfuscated-gradients critique (Athalye et
// al.). The audit runs PGD vs EOT-PGD (adaptive) vs Square (gradient-free)
// plus transfer and gradient-agreement checks per hardware substrate, as ONE
// declarative grid. This binary is a thin wrapper over the
// "obfuscation_audit" preset; equivalently:
//
//   $ rhw_run obfuscation_audit
//   $ rhw_run obfuscation_audit attacks+=eot_pgd:steps=7,samples=32@0.1
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"obfuscation_audit"};
  args.insert(args.end(), argv + 1, argv + argc);
  return rhw::exp::rhw_run_main(args);
}
