// Crossbar scenario (paper Sec. III-B): map a trained DNN onto memristive
// crossbars with realistic non-idealities, inspect the weight distortion, and
// compare Attack-SW / SH / HH robustness.
//
// The substrate is selected through the hardware-backend registry; the
// attack modes are just (grad backend, eval backend) pairings.
//
//   $ ./examples/crossbar_deployment
#include <cstdio>
#include <string>

#include "attacks/evaluate.hpp"
#include "data/synth_cifar.hpp"
#include "hw/registry.hpp"
#include "hw/xbar_backend.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"
#include "xbar/mna_solver.hpp"

using namespace rhw;

int main() {
  std::printf("== Memristive crossbar deployment ==\n\n");

  // A 4x4 toy crossbar first: exact circuit solve vs ideal dot product.
  xbar::CrossbarSpec toy;
  toy.rows = 4;
  toy.cols = 4;
  std::vector<double> g(16);
  rhw::RandomEngine rng(1);
  for (auto& v : g) {
    v = toy.g_min() + (toy.g_max() - toy.g_min()) * rng.next_double();
  }
  xbar::MnaSolver solver(g, toy);
  const std::vector<double> v_in{1.0, 0.5, -0.5, 1.0};
  const auto currents = solver.solve(v_in);
  std::printf("4x4 crossbar, exact MNA solve (column currents vs ideal):\n");
  for (int j = 0; j < 4; ++j) {
    double ideal = 0;
    for (int i = 0; i < 4; ++i) ideal += g[i * 4 + j] * v_in[i];
    std::printf("  col %d: ideal %.3e A, non-ideal %.3e A  (%.1f%% loss)\n", j,
                ideal, currents[j], 100.0 * (1.0 - currents[j] / ideal));
  }

  // Now the full pipeline on a trained model.
  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);
  models::Model software = models::build_model("vgg8", 10, 0.125f, 16);
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  const double clean = models::train_model(software, dataset, tcfg);
  std::printf("\nsoftware baseline clean accuracy: %.2f%%\n", 100.0 * clean);

  auto ideal = hw::make_backend("ideal");
  ideal->prepare(software);

  for (int64_t size : {16, 32}) {
    models::Model mapped = models::clone_model(software, 0.125f, 16);

    auto backend = hw::make_backend("xbar:size=" + std::to_string(size));
    backend->prepare(mapped);
    const auto* xbar_backend =
        dynamic_cast<const hw::XbarBackend*>(backend.get());
    const auto& report = xbar_backend->map_report();
    std::printf(
        "\n%lldx%lld crossbars: %lld tiles, mean weight distortion %.4f "
        "(max %.4f)\n",
        static_cast<long long>(size), static_cast<long long>(size),
        static_cast<long long>(report.num_tiles),
        report.mean_rel_weight_error, report.max_rel_weight_error);
    std::printf("  energy: %s\n", backend->energy_report().summary().c_str());

    attacks::AdvEvalConfig cfg;
    cfg.attack = "fgsm";
    cfg.epsilon = 0.1f;
    const auto sw = attacks::evaluate_attack(*ideal, *ideal, dataset.test,
                                             cfg);
    const auto sh = attacks::evaluate_attack(*ideal, *backend, dataset.test,
                                             cfg);
    const auto hh = attacks::evaluate_attack(*backend, *backend, dataset.test,
                                             cfg);
    std::printf("  FGSM eps=0.1:\n");
    std::printf("    Attack-SW: clean %.2f%%  adv %.2f%%  AL %.2f\n",
                sw.clean_acc, sw.adv_acc, sw.adversarial_loss());
    std::printf("    SH       : clean %.2f%%  adv %.2f%%  AL %.2f\n",
                sh.clean_acc, sh.adv_acc, sh.adversarial_loss());
    std::printf("    HH       : clean %.2f%%  adv %.2f%%  AL %.2f\n",
                hh.clean_acc, hh.adv_acc, hh.adversarial_loss());
  }
  std::printf(
      "\n(the crossbar rows should show lower AL than Attack-SW — intrinsic "
      "non-idealities acting as a defense)\n");
  return 0;
}
