// SRAM scenario (paper Sec. III-A): deploy a trained DNN with hybrid 8T-6T
// activation memories at scaled Vdd, pick the noise-injection layers with the
// Fig. 4 methodology, and compare robustness against the software baseline.
//
// The substrate is selected through the hardware-backend registry: the
// "sram" backend runs the methodology on the calibration set handed to
// prepare(), installs the chosen hooks, and prices the memory.
//
//   $ ./examples/sram_robust_inference
#include <cstdio>

#include "attacks/evaluate.hpp"
#include "data/synth_cifar.hpp"
#include "hw/registry.hpp"
#include "hw/sram_backend.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"

using namespace rhw;

int main() {
  std::printf("== Hybrid 8T-6T SRAM robust inference ==\n\n");

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);

  models::Model model = models::build_model("vgg8", 10, 0.125f, 16);
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  const double clean = models::train_model(model, dataset, tcfg);
  std::printf("software baseline: clean accuracy %.2f%%\n", 100.0 * clean);

  // The software reference: an identically-weighted clone behind the ideal
  // backend, the gradient source for every attack below.
  models::Model reference = models::clone_model(model, 0.125f, 16);
  auto ideal = hw::make_backend("ideal");
  ideal->prepare(reference);

  // Show the knob the methodology turns: noise vs hybrid configuration.
  const sram::BitErrorModel ber_model;
  std::printf("\n6T-cell bit-error rates: %.2e @ 0.80 V, %.2e @ 0.68 V\n",
              ber_model.ber_6t(0.80), ber_model.ber_6t(0.68));

  // Deploy onto the hybrid-SRAM substrate. prepare() runs the Fig. 4
  // layer-selection methodology on the calibration set.
  auto backend = hw::make_backend("sram:vdd=0.68,eval_count=150,eps=0.1");
  backend->prepare(model, &dataset.test);
  const auto* sram_backend = dynamic_cast<const hw::SramBackend*>(
      backend.get());
  const auto& selection = sram_backend->selection_result();

  std::printf("\nmethodology results (FGSM eps=%.2f sweep):\n",
              sram_backend->config().selector.epsilon);
  std::printf("  baseline adv accuracy: %.2f%%\n", selection.baseline_adv_acc);
  std::printf("  shortlisted sites (> +%.0f%%):\n",
              sram_backend->config().selector.improvement_threshold);
  for (const auto& s : selection.shortlisted) {
    std::printf("    layer %-6s  config %-4s  adv acc %.2f%%\n",
                s.site_label.c_str(), s.word.ratio_label().c_str(), s.adv_acc);
  }
  std::printf("  selected combination: ");
  for (const auto& s : selection.selected) {
    std::printf("[%s @ %s] ", s.site_label.c_str(),
                s.word.ratio_label().c_str());
  }
  std::printf("\n  final: adv %.2f%% (vs %.2f%%), clean %.2f%% (dev %.2f)\n",
              selection.final_adv_acc, selection.baseline_adv_acc,
              selection.final_clean_acc,
              selection.baseline_clean_acc - selection.final_clean_acc);
  std::printf("\nmemory pricing: %s\n",
              backend->energy_report().summary().c_str());

  // Deploy: sweep attack strengths, gradients always from the clean
  // reference (SH pairing; SRAM hooks are gated out of gradients anyway).
  std::printf("\nAL vs eps with the selected hybrid configuration:\n");
  std::printf("%-8s %-14s %-14s\n", "eps", "AL baseline", "AL with noise");
  for (float eps : {0.05f, 0.1f, 0.15f, 0.2f, 0.25f, 0.3f}) {
    attacks::AdvEvalConfig cfg;
    cfg.epsilon = eps;
    const auto base = attacks::evaluate_attack(*ideal, *ideal, dataset.test,
                                               cfg);
    const auto noisy = attacks::evaluate_attack(*ideal, *backend, dataset.test,
                                                cfg);
    std::printf("%-8.2f %-14.2f %-14.2f\n", eps, base.adversarial_loss(),
                noisy.adversarial_loss());
  }
  std::printf("\n(lower AL = more robust; the noise column should win)\n");
  return 0;
}
