// SRAM scenario (paper Sec. III-A): deploy a trained DNN with hybrid 8T-6T
// activation memories at scaled Vdd, pick the noise-injection layers with the
// Fig. 4 methodology, and compare robustness against the software baseline.
//
//   $ ./examples/sram_robust_inference
#include <cstdio>

#include "attacks/evaluate.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "sram/layer_selector.hpp"

using namespace rhw;

int main() {
  std::printf("== Hybrid 8T-6T SRAM robust inference ==\n\n");

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);

  models::Model model = models::build_model("vgg8", 10, 0.125f, 16);
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  const double clean = models::train_model(model, dataset, tcfg);
  std::printf("software baseline: clean accuracy %.2f%%\n", 100.0 * clean);

  // Show the knob the methodology turns: noise vs hybrid configuration.
  const sram::BitErrorModel ber_model;
  std::printf("\n6T-cell bit-error rates: %.2e @ 0.80 V, %.2e @ 0.68 V\n",
              ber_model.ber_6t(0.80), ber_model.ber_6t(0.68));

  // Run the layer-selection methodology (Fig. 4).
  sram::SelectorConfig scfg;
  scfg.vdd = 0.68;
  scfg.epsilon = 0.1f;
  scfg.eval_count = 150;
  const auto selection = sram::select_layers(model, dataset.test, scfg);

  std::printf("\nmethodology results (FGSM eps=%.2f sweep):\n", scfg.epsilon);
  std::printf("  baseline adv accuracy: %.2f%%\n", selection.baseline_adv_acc);
  std::printf("  shortlisted sites (> +%.0f%%):\n",
              scfg.improvement_threshold);
  for (const auto& s : selection.shortlisted) {
    std::printf("    layer %-6s  config %-4s  adv acc %.2f%%\n",
                s.site_label.c_str(), s.word.ratio_label().c_str(), s.adv_acc);
  }
  std::printf("  selected combination: ");
  for (const auto& s : selection.selected) {
    std::printf("[%s @ %s] ", s.site_label.c_str(),
                s.word.ratio_label().c_str());
  }
  std::printf("\n  final: adv %.2f%% (vs %.2f%%), clean %.2f%% (dev %.2f)\n",
              selection.final_adv_acc, selection.baseline_adv_acc,
              selection.final_clean_acc,
              selection.baseline_clean_acc - selection.final_clean_acc);

  // Deploy: install the chosen configuration and sweep attack strengths.
  sram::apply_selection(model, selection.selected, scfg.vdd);
  std::printf("\nAL vs eps with the selected hybrid configuration:\n");
  std::printf("%-8s %-14s %-14s\n", "eps", "AL baseline", "AL with noise");
  for (float eps : {0.05f, 0.1f, 0.15f, 0.2f, 0.25f, 0.3f}) {
    attacks::AdvEvalConfig cfg;
    cfg.epsilon = eps;
    // Gradients always come from the clean model; eval differs by hooks.
    sram::clear_all_site_hooks(model);
    const auto base = attacks::evaluate_attack(*model.net, *model.net,
                                               dataset.test, cfg);
    sram::apply_selection(model, selection.selected, scfg.vdd);
    const auto noisy = attacks::evaluate_attack(*model.net, *model.net,
                                                dataset.test, cfg);
    std::printf("%-8.2f %-14.2f %-14.2f\n", eps, base.adversarial_loss(),
                noisy.adversarial_loss());
  }
  std::printf("\n(lower AL = more robust; the noise column should win)\n");
  return 0;
}
