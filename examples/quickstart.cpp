// Quickstart: train a small CNN on SynthCIFAR, attack it with FGSM/PGD, and
// measure Adversarial Loss — the three ingredients every experiment in this
// repo builds on.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "attacks/evaluate.hpp"
#include "data/synth_cifar.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"

using namespace rhw;

int main() {
  std::printf("== Quickstart: train, attack, measure ==\n\n");

  // 1. A small synthetic dataset (10 classes, 16x16 so this runs in seconds).
  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);
  std::printf("dataset: %lld train / %lld test images, %lld classes\n",
              static_cast<long long>(dataset.train.size()),
              static_cast<long long>(dataset.test.size()),
              static_cast<long long>(dataset.train.num_classes));

  // 2. Build and train a width-scaled VGG8.
  models::Model model = models::build_model("vgg8", 10, /*width_mult=*/0.125f,
                                            /*in_size=*/16);
  std::printf("model: %s with %lld parameters\n", model.name.c_str(),
              static_cast<long long>(model.net->num_parameters()));
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  tcfg.verbose = true;
  const double clean = models::train_model(model, dataset, tcfg);
  std::printf("clean test accuracy: %.2f%%\n\n", 100.0 * clean);

  // 3. Attack it and report the paper's Adversarial Loss metric. Both sides
  // of the experiment are registry strings: hardware comes from the backend
  // registry ("ideal" is the software reference; swap in "sram:..." or
  // "xbar:..." to attack a noisy substrate), the adversary from the attack
  // registry ("fgsm", "pgd:steps=7", "eot_pgd:samples=8",
  // "square:queries=200", ... — docs/ATTACKS.md lists them all).
  auto backend = hw::make_backend("ideal");
  backend->prepare(model);
  for (float eps : {0.05f, 0.1f, 0.2f}) {
    attacks::AdvEvalConfig fgsm_cfg;
    fgsm_cfg.attack = "fgsm";
    fgsm_cfg.epsilon = eps;
    const auto fgsm = attacks::evaluate_attack(*backend, *backend,
                                               dataset.test, fgsm_cfg);
    attacks::AdvEvalConfig pgd_cfg = fgsm_cfg;
    pgd_cfg.attack = "pgd:steps=7";
    const auto pgd = attacks::evaluate_attack(*backend, *backend,
                                              dataset.test, pgd_cfg);
    std::printf(
        "eps=%.2f  FGSM: adv %.2f%% (AL %.2f)   PGD-7: adv %.2f%% (AL %.2f)\n",
        eps, fgsm.adv_acc, fgsm.adversarial_loss(), pgd.adv_acc,
        pgd.adversarial_loss());
  }
  std::printf(
      "\nNext: examples/sram_robust_inference and examples/"
      "crossbar_deployment show how hardware noise changes these numbers.\n");
  return 0;
}
