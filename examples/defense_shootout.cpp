// Defense shoot-out (paper Fig. 8b/c in miniature): hardware-noise defenses
// vs software defenses on one model, one table — every arm declared purely
// by spec strings, and the whole experiment a named preset. This binary is a
// thin wrapper over the "shootout" preset; equivalently:
//
//   $ rhw_run shootout
//   $ rhw_run shootout trials=5 backends+=gauss=ideal+gauss_aug:sigma=0.1 \
//         modes+=gauss-aug=ideal/gauss
//
// The energy column prices each arm including its defense overhead (N x
// forwards for smooth, requantized words for QUANOS) so rows rank at
// iso-energy. docs/EXPERIMENTS.md has the full grammar.
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"shootout"};
  args.insert(args.end(), argv + 1, argv + argc);
  return rhw::exp::rhw_run_main(args);
}
