// Defense shoot-out (paper Fig. 8b/c in miniature): hardware-noise defenses
// vs software quantization defenses on one model, one table.
//
//   $ ./examples/defense_shootout
#include <cstdio>

#include "attacks/evaluate.hpp"
#include "data/synth_cifar.hpp"
#include "exp/table_printer.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"
#include "quant/pixel_discretizer.hpp"
#include "quant/quanos.hpp"
#include "sram/layer_selector.hpp"
#include "xbar/mapper.hpp"

using namespace rhw;

namespace {

models::Model clone_of(models::Model& src) {
  models::Model copy = models::build_model(src.name, src.num_classes, 0.125f,
                                           16);
  nn::load_state_dict(*copy.net, nn::state_dict(*src.net));
  copy.net->set_training(false);
  return copy;
}

}  // namespace

int main() {
  std::printf("== Defense shoot-out ==\n\n");

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);
  models::Model baseline = models::build_model("vgg8", 10, 0.125f, 16);
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  models::train_model(baseline, dataset, tcfg);

  // Defense A: hybrid 8T-6T SRAM noise (methodology-selected).
  models::Model sram_model = clone_of(baseline);
  sram::SelectorConfig scfg;
  scfg.eval_count = 150;
  const auto selection = sram::select_layers(sram_model, dataset.test, scfg);
  sram::apply_selection(sram_model, selection.selected, scfg.vdd);

  // Defense B: 32x32 memristive crossbars.
  models::Model xbar_model = clone_of(baseline);
  xbar::XbarMapConfig xcfg;
  xcfg.spec.rows = 32;
  xcfg.spec.cols = 32;
  (void)xbar::map_onto_crossbars(*xbar_model.net, xcfg);

  // Defense C: 4-bit pixel discretization.
  models::Model disc_base = clone_of(baseline);
  quant::PixelDiscretizer disc;
  disc.bits = 4;
  quant::DiscretizedModel discretized(*disc_base.net, disc);

  // Defense D: QUANOS hybrid quantization.
  models::Model quanos_model = clone_of(baseline);
  quant::QuanosConfig qcfg;
  qcfg.sample_count = 100;
  (void)quant::apply_quanos(*quanos_model.net, dataset.test, qcfg);

  struct Entry {
    const char* name;
    nn::Module* grad_net;
    nn::Module* eval_net;
  };
  const Entry entries[] = {
      {"undefended", baseline.net.get(), baseline.net.get()},
      {"SRAM-noise", baseline.net.get(), sram_model.net.get()},
      {"crossbar-SH", baseline.net.get(), xbar_model.net.get()},
      {"4b-discretize", &discretized, &discretized},
      {"QUANOS", quanos_model.net.get(), quanos_model.net.get()},
  };

  exp::TablePrinter table({"defense", "clean", "FGSM adv", "FGSM AL",
                           "PGD adv", "PGD AL"});
  for (const auto& entry : entries) {
    attacks::AdvEvalConfig fcfg;
    fcfg.kind = attacks::AttackKind::kFgsm;
    fcfg.epsilon = 0.1f;
    const auto fgsm = attacks::evaluate_attack(*entry.grad_net,
                                               *entry.eval_net, dataset.test,
                                               fcfg);
    attacks::AdvEvalConfig pcfg = fcfg;
    pcfg.kind = attacks::AttackKind::kPgd;
    pcfg.epsilon = 8.f / 255.f;
    const auto pgd = attacks::evaluate_attack(*entry.grad_net, *entry.eval_net,
                                              dataset.test, pcfg);
    table.add_row({entry.name, exp::fmt(fgsm.clean_acc, 2),
                   exp::fmt(fgsm.adv_acc, 2),
                   exp::fmt(fgsm.adversarial_loss(), 2),
                   exp::fmt(pgd.adv_acc, 2),
                   exp::fmt(pgd.adversarial_loss(), 2)});
  }
  table.print();
  std::printf(
      "\nReading guide: every defense trades a little clean accuracy for a\n"
      "lower AL; the hardware rows do it without touching the training "
      "pipeline.\n");
  return 0;
}
