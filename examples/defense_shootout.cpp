// Defense shoot-out (paper Fig. 8b/c in miniature): hardware-noise defenses
// vs software quantization defenses on one model, one table.
//
// Hardware rows are selected purely by BackendRegistry strings — swap a
// string to swap the substrate (hw/registry.hpp documents the grammar).
//
//   $ ./examples/defense_shootout
#include <cstdio>
#include <vector>

#include "attacks/evaluate.hpp"
#include "data/synth_cifar.hpp"
#include "exp/table_printer.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"
#include "quant/pixel_discretizer.hpp"
#include "quant/quanos.hpp"

using namespace rhw;

namespace {

models::Model clone_of(const models::Model& src) {
  return models::clone_model(src, 0.125f, 16);
}

}  // namespace

int main() {
  std::printf("== Defense shoot-out ==\n\n");

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);
  models::Model baseline = models::build_model("vgg8", 10, 0.125f, 16);
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  models::train_model(baseline, dataset, tcfg);

  // Hardware substrates: every backend comes from a registry string. The
  // sram backend runs the Fig. 4 layer-selection methodology on the
  // calibration set passed to prepare(); xbar maps onto 32x32 crossbars.
  const char* kBackendSpecs[] = {
      "ideal",
      "sram:vdd=0.68,eval_count=150",
      "xbar:size=32",
  };
  struct HardwareEntry {
    models::Model model;
    hw::BackendPtr backend;
  };
  std::vector<HardwareEntry> hardware;
  for (const char* spec : kBackendSpecs) {
    HardwareEntry entry{clone_of(baseline), hw::make_backend(spec)};
    entry.backend->prepare(entry.model, &dataset.test);
    std::printf("prepared '%s'  ->  %s\n", spec,
                entry.backend->energy_report().summary().c_str());
    hardware.push_back(std::move(entry));
  }
  hw::HardwareBackend& ideal = *hardware[0].backend;

  // Software defenses for comparison (not hardware substrates, so they stay
  // outside the registry): 4-bit pixel discretization and QUANOS.
  models::Model disc_base = clone_of(baseline);
  quant::PixelDiscretizer disc;
  disc.bits = 4;
  quant::DiscretizedModel discretized(*disc_base.net, disc);

  models::Model quanos_model = clone_of(baseline);
  quant::QuanosConfig qcfg;
  qcfg.sample_count = 100;
  (void)quant::apply_quanos(*quanos_model.net, dataset.test, qcfg);

  struct Entry {
    const char* name;
    nn::Module* grad_net;
    nn::Module* eval_net;
  };
  const Entry entries[] = {
      {"undefended", &ideal.module(), &ideal.module()},
      {"SRAM-noise", &ideal.module(), &hardware[1].backend->module()},
      {"crossbar-SH", &ideal.module(), &hardware[2].backend->module()},
      {"4b-discretize", &discretized, &discretized},
      {"QUANOS", quanos_model.net.get(), quanos_model.net.get()},
  };

  exp::TablePrinter table({"defense", "clean", "FGSM adv", "FGSM AL",
                           "PGD adv", "PGD AL"});
  for (const auto& entry : entries) {
    attacks::AdvEvalConfig fcfg;
    fcfg.kind = attacks::AttackKind::kFgsm;
    fcfg.epsilon = 0.1f;
    const auto fgsm = attacks::evaluate_attack(*entry.grad_net,
                                               *entry.eval_net, dataset.test,
                                               fcfg);
    attacks::AdvEvalConfig pcfg = fcfg;
    pcfg.kind = attacks::AttackKind::kPgd;
    pcfg.epsilon = 8.f / 255.f;
    const auto pgd = attacks::evaluate_attack(*entry.grad_net, *entry.eval_net,
                                              dataset.test, pcfg);
    table.add_row({entry.name, exp::fmt(fgsm.clean_acc, 2),
                   exp::fmt(fgsm.adv_acc, 2),
                   exp::fmt(fgsm.adversarial_loss(), 2),
                   exp::fmt(pgd.adv_acc, 2),
                   exp::fmt(pgd.adversarial_loss(), 2)});
  }
  table.print();
  std::printf(
      "\nReading guide: every defense trades a little clean accuracy for a\n"
      "lower AL; the hardware rows do it without touching the training "
      "pipeline.\n");
  return 0;
}
