// Defense shoot-out (paper Fig. 8b/c in miniature): hardware-noise defenses
// vs software quantization defenses on one model, one table.
//
// Hardware rows are selected purely by BackendRegistry strings — swap a
// string to swap the substrate (hw/registry.hpp documents the grammar). The
// whole comparison is one exp::SweepEngine grid: every (defense, attack)
// cell runs concurrently, and the noisy rows are averaged over 3 trials with
// a 95% confidence interval (the engine derives per-trial noise streams, so
// the table is bit-reproducible at any thread count).
//
//   $ ./examples/defense_shootout
#include <cstdio>
#include <memory>
#include <vector>

#include "attacks/evaluate.hpp"
#include "data/synth_cifar.hpp"
#include "exp/sweep.hpp"
#include "exp/table_printer.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"
#include "quant/pixel_discretizer.hpp"
#include "quant/quanos.hpp"

using namespace rhw;

int main() {
  std::printf("== Defense shoot-out ==\n\n");

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);
  models::Model baseline = models::build_model("vgg8", 10, 0.125f, 16);
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  models::train_model(baseline, dataset, tcfg);

  // Hardware substrates: every backend comes from a registry string. The
  // sram backend runs the Fig. 4 layer-selection methodology on the
  // calibration set passed to prepare() — once; concurrent lanes get cheap
  // replicas carrying the same selection. xbar maps onto 32x32 crossbars.
  exp::SweepGrid grid;
  grid.model = &baseline;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &dataset.test;
  grid.trials = 3;
  grid.backends.push_back({"ideal", "ideal", nullptr, nullptr});
  grid.backends.push_back(
      {"sram", "sram:vdd=0.68,eval_count=150", &dataset.test, nullptr});
  grid.backends.push_back({"xbar", "xbar:size=32", nullptr, nullptr});

  // Software defenses for comparison (not hardware substrates, so they are
  // backend *binders* rather than registry strings): 4-bit pixel
  // discretization wraps the replica's clone, QUANOS requantizes it.
  exp::SweepBackendDef disc_def;
  disc_def.key = "disc4b";
  disc_def.bind = [](models::Model& m) {
    quant::PixelDiscretizer disc;
    disc.bits = 4;
    return exp::make_module_backend(
        "disc4b", std::make_unique<quant::DiscretizedModel>(*m.net, disc));
  };
  grid.backends.push_back(std::move(disc_def));
  exp::SweepBackendDef quanos_def;
  quanos_def.key = "quanos";
  quanos_def.bind = [&dataset](models::Model& m) {
    quant::QuanosConfig qcfg;
    qcfg.sample_count = 100;
    (void)quant::apply_quanos(*m.net, dataset.test, qcfg);
    auto backend = hw::make_backend("ideal");
    backend->prepare(m);
    return backend;
  };
  grid.backends.push_back(std::move(quanos_def));

  grid.modes.push_back({"undefended", "ideal", "ideal"});
  grid.modes.push_back({"SRAM-noise", "ideal", "sram"});
  grid.modes.push_back({"crossbar-SH", "ideal", "xbar"});
  grid.modes.push_back({"4b-discretize", "disc4b", "disc4b"});
  grid.modes.push_back({"QUANOS", "quanos", "quanos"});
  grid.attacks.push_back({"fgsm", {0.1f}});
  grid.attacks.push_back({"pgd", {8.f / 255.f}});

  exp::SweepEngine engine;
  const exp::SweepResult result = engine.run(grid);
  std::printf("[sweep] %zu cells (%d trials) on %u lane(s) in %.2fs\n",
              result.cells.size(), result.trials, result.lanes,
              result.wall_seconds);
  for (const char* key : {"ideal", "sram", "xbar"}) {
    std::printf("prepared '%s'  ->  %s\n", key,
                engine.backend(key)->energy_report().summary().c_str());
  }
  std::printf("\n");

  exp::TablePrinter table({"defense", "clean", "FGSM adv", "FGSM AL",
                           "PGD adv", "PGD AL"});
  for (size_t m = 0; m < result.mode_labels.size(); ++m) {
    const auto* fgsm = result.find(m, 0, 0);
    const auto* pgd = result.find(m, 1, 0);
    table.add_row({result.mode_labels[m], fgsm->clean.format(),
                   fgsm->adv.format(), fgsm->al.format(), pgd->adv.format(),
                   pgd->al.format()});
  }
  table.print();
  result.write_json("BENCH_defense_shootout.json", "defense_shootout");
  std::printf(
      "\nReading guide: every defense trades a little clean accuracy for a\n"
      "lower AL; the hardware rows do it without touching the training "
      "pipeline.\nNoisy rows are mean±95%%CI over %d noise-stream trials.\n",
      result.trials);
  return 0;
}
