// Defense shoot-out (paper Fig. 8b/c in miniature): hardware-noise defenses
// vs software defenses on one model, one table — every arm declared purely
// by spec strings.
//
// Hardware rows are BackendRegistry strings ("sram:...", "xbar:..."),
// software defenses are DefenseRegistry strings ("adv_train:...",
// "jpeg_quant:bits=4", "quanos", "smooth:..."), and the two compose: the
// "smooth+sram" row is randomized smoothing stacked ON TOP of the noisy SRAM
// substrate — a smoothed noisy-hardware classifier, which also reports a
// Clopper-Pearson certified L2 radius (docs/DEFENSES.md has every knob).
//
// The whole comparison is one exp::SweepEngine grid: every (defense, attack)
// cell runs concurrently, and the noisy rows are averaged over 3 trials with
// a 95% confidence interval (the engine derives per-trial noise streams, so
// the table is bit-reproducible at any thread count).
//
//   $ ./examples/defense_shootout
#include <cstdio>
#include <vector>

#include "attacks/evaluate.hpp"
#include "data/synth_cifar.hpp"
#include "exp/sweep.hpp"
#include "exp/table_printer.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"

using namespace rhw;

int main() {
  std::printf("== Defense shoot-out ==\n\n");

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 100;
  dcfg.test_per_class = 25;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);
  models::Model baseline = models::build_model("vgg8", 10, 0.125f, 16);
  models::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 50;
  models::train_model(baseline, dataset, tcfg);

  // Every arm is a (hardware spec, defense spec) pair. The sram backend runs
  // the Fig. 4 layer-selection methodology on its calibration set — once;
  // concurrent lanes get cheap replicas carrying the same selection. The
  // adv_train arm retrains the clone (grid.train_data feeds it) — also once;
  // lanes clone the hardened weights.
  exp::SweepGrid grid;
  grid.model = &baseline;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &dataset.test;
  grid.train_data = &dataset;
  grid.trials = 3;
  grid.backends.push_back({"ideal", "ideal"});
  grid.backends.push_back(
      {"sram", "sram:vdd=0.68,eval_count=150", "", &dataset.test});
  grid.backends.push_back({"xbar", "xbar:size=32"});
  grid.backends.push_back(
      {"advtrain", "ideal", "adv_train:attack=fgsm,eps=0.1,ratio=0.5,epochs=2"});
  grid.backends.push_back({"disc4b", "ideal", "jpeg_quant:bits=4"});
  grid.backends.push_back({"quanos", "ideal", "quanos:samples=100",
                           &dataset.test});
  // The compositional arm: smoothing over the noisy SRAM substrate.
  grid.backends.push_back({"smoothsram",
                           "sram:vdd=0.68,eval_count=150",
                           "smooth:sigma=0.12,samples=8,alpha=0.05", &dataset.test});

  grid.modes.push_back({"undefended", "ideal", "ideal"});
  grid.modes.push_back({"SRAM-noise", "ideal", "sram"});
  grid.modes.push_back({"crossbar-SH", "ideal", "xbar"});
  grid.modes.push_back({"adv-train", "advtrain", "advtrain"});
  grid.modes.push_back({"4b-discretize", "disc4b", "disc4b"});
  grid.modes.push_back({"QUANOS", "quanos", "quanos"});
  grid.modes.push_back({"smooth+SRAM", "ideal", "smoothsram"});
  grid.attacks.push_back({"fgsm", {0.1f}});
  grid.attacks.push_back({"pgd", {8.f / 255.f}});

  exp::SweepEngine engine;
  const exp::SweepResult result = engine.run(grid);
  std::printf("[sweep] %zu cells (%d trials) on %u lane(s) in %.2fs\n",
              result.cells.size(), result.trials, result.lanes,
              result.wall_seconds);
  for (const char* key : {"ideal", "sram", "xbar", "smoothsram"}) {
    std::printf("prepared '%s'  ->  %s\n", key,
                engine.backend(key)->energy_report().summary().c_str());
  }
  std::printf("\n");

  exp::TablePrinter table({"defense", "clean", "FGSM adv", "FGSM AL",
                           "PGD adv", "PGD AL", "cert L2"});
  for (size_t m = 0; m < result.mode_labels.size(); ++m) {
    const auto* fgsm = result.find(m, 0, 0);
    const auto* pgd = result.find(m, 1, 0);
    table.add_row({result.mode_labels[m], fgsm->clean.format(),
                   fgsm->adv.format(), fgsm->al.format(), pgd->adv.format(),
                   pgd->al.format(),
                   fgsm->cert.mean > 0.0 ? fgsm->cert.format(3) : "-"});
  }
  table.print();
  result.write_json("BENCH_defense_shootout.json", "defense_shootout");
  std::printf(
      "\nReading guide: every defense trades a little clean accuracy for a\n"
      "lower AL; the hardware rows do it without touching the training "
      "pipeline,\nand the smooth+SRAM row composes both worlds (its cert "
      "column is the mean\ncertified L2 radius — no other arm certifies "
      "anything).\nNoisy rows are mean±95%%CI over %d noise-stream trials.\n",
      result.trials);
  return 0;
}
