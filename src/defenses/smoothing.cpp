#include "defenses/smoothing.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "defenses/input_transforms.hpp"

namespace rhw::defenses {

SmoothedModule::SmoothedModule(nn::Module& inner, SmoothConfig cfg)
    : inner_(&inner), cfg_(cfg) {
  if (!(cfg_.sigma > 0.f)) {
    throw std::invalid_argument("SmoothedModule: sigma must be > 0");
  }
  if (cfg_.samples < 1) {
    throw std::invalid_argument("SmoothedModule: samples must be >= 1");
  }
  // Register the smoothing noise stream through the hook-seeder channel so
  // reseed_noise_streams pins it per evaluation pass like any hardware noise
  // stream. The hook itself is an identity — only the seeder matters.
  set_post_hook([](Tensor&) {}, /*gated=*/false,
                [this](uint64_t seed) { rng_.reseed(seed); });
}

Tensor SmoothedModule::votes(const Tensor& x, int samples) {
  if (samples <= 0) samples = cfg_.samples;
  const int64_t n = x.dim(0);
  Tensor counts;
  for (int s = 0; s < samples; ++s) {
    Tensor noisy = x;
    add_gaussian_noise(noisy, cfg_.sigma, cfg_.clip_lo, cfg_.clip_hi, rng_);
    const Tensor logits = inner_->forward(noisy);
    if (counts.empty()) counts = Tensor::zeros({n, logits.dim(1)});
    const auto preds = logits.argmax_rows();
    for (int64_t i = 0; i < n; ++i) counts.at(i, preds[i]) += 1.f;
  }
  return counts;
}

Tensor SmoothedModule::do_forward(const Tensor& x) {
  Tensor counts = votes(x);
  // Vote shares as logits: argmax is the majority-vote prediction, and the
  // scale is attack-agnostic (0..1 like softmax probabilities).
  counts.scale_(1.f / static_cast<float>(cfg_.samples));
  return counts;
}

SmoothedBackend::SmoothedBackend(hw::HardwareBackend& inner, SmoothConfig cfg)
    : WrappedBackend("smooth", inner,
                     std::make_unique<SmoothedModule>(inner.module(), cfg)),
      smoothed_(nullptr) {
  smoothed_ = static_cast<SmoothedModule*>(&module());
}

double SmoothedBackend::mean_certified_radius(const data::Dataset& ds,
                                              int64_t batch_size,
                                              uint64_t seed) {
  if (ds.size() == 0) return 0.0;
  const bool was_training = module().training();
  module().set_training(false);
  // Pin every stream in the wrapper tree — the smoothing noise AND the inner
  // substrate's hooks — so the certificate is a pure function of
  // (model, ds, config, seed).
  nn::reseed_noise_streams(module(), seed);
  const SmoothConfig& cfg = smoothed_->config();
  // Cohen et al.'s CERTIFY: the class under test comes from an independent
  // selection batch, and the Clopper-Pearson bound from a fresh estimation
  // batch of the full cfg.samples draws. Reusing one batch for both would
  // bias the argmax-selected count upward and void the 1 - alpha guarantee.
  const int selection_samples = std::max(1, cfg.samples / 4);
  double radius_sum = 0.0;
  for (int64_t begin = 0; begin < ds.size(); begin += batch_size) {
    const auto batch = ds.slice(begin, begin + batch_size);
    const Tensor selection = smoothed_->votes(batch.images, selection_samples);
    const auto candidates = selection.argmax_rows();
    const Tensor counts = smoothed_->votes(batch.images, cfg.samples);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i] != batch.labels[i]) continue;  // wrong class: 0
      const auto k = static_cast<int64_t>(
          counts.at(static_cast<int64_t>(i), candidates[i]));
      radius_sum += certified_radius(cfg.sigma, k, cfg.samples, cfg.alpha);
    }
  }
  module().set_training(was_training);
  return radius_sum / static_cast<double>(ds.size());
}

}  // namespace rhw::defenses
