#include "defenses/smoothing.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "defenses/input_transforms.hpp"

namespace rhw::defenses {

SmoothedModule::SmoothedModule(nn::Module& inner, SmoothConfig cfg)
    : inner_(&inner), cfg_(cfg) {
  if (!(cfg_.sigma > 0.f)) {
    throw std::invalid_argument("SmoothedModule: sigma must be > 0");
  }
  if (cfg_.samples < 1) {
    throw std::invalid_argument("SmoothedModule: samples must be >= 1");
  }
  // Register the smoothing noise stream through the hook-seeder channel so
  // reseed_noise_streams pins it per evaluation pass like any hardware noise
  // stream. The hook itself is an identity — only the seeder matters.
  set_post_hook([](Tensor&) {}, /*gated=*/false,
                [this](uint64_t seed) { rng_.reseed(seed); });
}

Tensor SmoothedModule::votes(const Tensor& x, int samples) {
  return votes_impl(x, samples, /*input_shaped_tail=*/false);
}

Tensor SmoothedModule::votes_impl(const Tensor& x, int samples,
                                  bool input_shaped_tail) {
  if (samples <= 0) samples = cfg_.samples;
  const int64_t n = x.dim(0);
  // Copies ride through the inner model as one tiled batch so the substrate
  // amortizes its batched matmul path across them, chunked so activation
  // memory stays bounded: at least one copy per pass, at most ~kMaxRows
  // stacked rows.
  constexpr int64_t kMaxRows = 512;
  const int copies_per_pass =
      static_cast<int>(std::max<int64_t>(1, kMaxRows / std::max<int64_t>(n, 1)));

  Tensor counts;
  auto run_chunk = [&](int copies) {
    Shape stacked_shape = x.shape();
    stacked_shape[0] = n * copies;
    Tensor stacked(stacked_shape);
    for (int c = 0; c < copies; ++c) {
      std::copy(x.data(), x.data() + x.numel(),
                stacked.data() + static_cast<int64_t>(c) * x.numel());
    }
    // One linear pass over the stack draws noise copy-major — the exact
    // element order a copy-by-copy loop would use, so the perturbations are
    // independent of the chunking.
    add_gaussian_noise(stacked, cfg_.sigma, cfg_.clip_lo, cfg_.clip_hi, rng_);
    const Tensor logits = inner_->forward(stacked);
    if (counts.empty()) counts = Tensor::zeros({n, logits.dim(1)});
    const auto preds = logits.argmax_rows();
    for (int c = 0; c < copies; ++c) {
      for (int64_t i = 0; i < n; ++i) {
        counts.at(i, preds[static_cast<size_t>(c * n + i)]) += 1.f;
      }
    }
  };
  // With an input-shaped tail requested (do_forward), the final copy runs as
  // its own pass: the inner cache it leaves behind IS the straight-through
  // state for do_backward — no replay forward, and the cached activations
  // belong to a copy that was actually counted in the vote.
  const int bulk = input_shaped_tail ? samples - 1 : samples;
  for (int s0 = 0; s0 < bulk; s0 += copies_per_pass) {
    run_chunk(std::min(copies_per_pass, bulk - s0));
  }
  if (input_shaped_tail) run_chunk(1);
  return counts;
}

Tensor SmoothedModule::do_forward(const Tensor& x) {
  Tensor counts = votes_impl(x, 0, /*input_shaped_tail=*/true);
  // Vote shares as logits: argmax is the majority-vote prediction, and the
  // scale is attack-agnostic (0..1 like softmax probabilities).
  counts.scale_(1.f / static_cast<float>(cfg_.samples));
  return counts;
}

SmoothedBackend::SmoothedBackend(hw::HardwareBackend& inner, SmoothConfig cfg)
    : WrappedBackend("smooth", inner,
                     std::make_unique<SmoothedModule>(inner.module(), cfg)),
      smoothed_(nullptr) {
  smoothed_ = static_cast<SmoothedModule*>(&module());
}

hw::EnergyReport SmoothedBackend::energy_report() const {
  hw::EnergyReport report = WrappedBackend::energy_report();
  const SmoothConfig& cfg = smoothed_->config();
  const double substrate_nj = report.energy_nj;
  // One smoothed prediction = `samples` substrate forwards: the vote count
  // multiplies the substrate's dynamic energy (batching amortizes latency,
  // not energy). Area is unchanged — the votes time-share one substrate.
  report.energy_nj = substrate_nj * static_cast<double>(cfg.samples);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", substrate_nj);
  report.details.emplace_back("smooth_votes",
                              std::to_string(cfg.samples) + "x forwards");
  report.details.emplace_back("substrate_energy_nj", buf);
  return report;
}

double SmoothedBackend::mean_certified_radius(const data::Dataset& ds,
                                              int64_t batch_size,
                                              uint64_t seed) {
  if (ds.size() == 0) return 0.0;
  const bool was_training = module().training();
  module().set_training(false);
  // Pin every stream in the wrapper tree — the smoothing noise AND the inner
  // substrate's hooks — so the certificate is a pure function of
  // (model, ds, config, seed).
  nn::reseed_noise_streams(module(), seed);
  const SmoothConfig& cfg = smoothed_->config();
  // Cohen et al.'s CERTIFY: the class under test comes from an independent
  // selection batch, and the Clopper-Pearson bound from a fresh estimation
  // batch of the full cfg.samples draws. Reusing one batch for both would
  // bias the argmax-selected count upward and void the 1 - alpha guarantee.
  const int selection_samples = std::max(1, cfg.samples / 4);
  double radius_sum = 0.0;
  for (int64_t begin = 0; begin < ds.size(); begin += batch_size) {
    const auto batch = ds.slice(begin, begin + batch_size);
    const Tensor selection = smoothed_->votes(batch.images, selection_samples);
    const auto candidates = selection.argmax_rows();
    const Tensor counts = smoothed_->votes(batch.images, cfg.samples);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i] != batch.labels[i]) continue;  // wrong class: 0
      const auto k = static_cast<int64_t>(
          counts.at(static_cast<int64_t>(i), candidates[i]));
      radius_sum += certified_radius(cfg.sigma, k, cfg.samples, cfg.alpha);
    }
  }
  module().set_training(was_training);
  return radius_sum / static_cast<double>(ds.size());
}

}  // namespace rhw::defenses
