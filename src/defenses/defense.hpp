// The defense seam: one stable interface, many swappable defenses — the third
// string-keyed seam after hw::HardwareBackend and attacks::Attack.
//
// The paper's central claim is that hardware noise acts as an adversarial
// defense; comparing it honestly needs the software baselines — adversarial
// training, randomized smoothing, input transforms — behind the same kind of
// seam the hardware and the attacks already have. A Defense acts in two
// phases, either of which may be a no-op:
//
//   * harden(model): mutate the cloned model before the hardware backend
//     prepares it (training-time defenses retrain, QUANOS requantizes);
//   * wrap(backend): build a wrapper backend around a *prepared* hardware
//     backend whose module() routes through the defense's wrapper module
//     (randomized smoothing, input discretization, Gaussian augmentation).
//
// Because wrap() composes around any prepared backend, defenses stack on top
// of noisy substrates: "smooth:sigma=0.25" over "sram:vdd=0.68" is a smoothed
// noisy-hardware classifier, declared entirely by two spec strings
// (exp::SweepBackendDef::defense). Construction is string-keyed through
// defenses::DefenseRegistry (defenses/registry.hpp), sharing the core/spec
// grammar and the token-naming error contract with the other two seams.
//
// Determinism contract: harden() must be a pure function of (model, ctx,
// config) — SweepEngine re-runs it per replica (or clones the hardened
// prototype, see replicable_by_clone) and every replica must be
// bit-identical. Wrapper modules that draw randomness (smoothing, Gaussian
// augmentation) register hook seeders so nn::reseed_noise_streams pins their
// streams per evaluation pass exactly like the hardware noise hooks — a
// smoothed noisy arm sweeps bit-identically at any lane count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/synth_cifar.hpp"
#include "hw/backend.hpp"
#include "models/vgg.hpp"
#include "nn/module.hpp"

namespace rhw::defenses {

// Everything a defense may consume while hardening one model. Both members
// are optional; defenses throw std::invalid_argument naming themselves when
// a needed input is missing.
struct DefenseContext {
  // Training data for training-time defenses (adv_train). Sweeps feed this
  // from exp::SweepGrid::train_data.
  const data::SynthCifar* train_data = nullptr;
  // Calibration subset for data-driven transforms (quanos' ANS estimate).
  // Sweeps feed this from exp::SweepBackendDef::calibration.
  const data::Dataset* calibration = nullptr;
};

// Abstract defense. Implementations are small config-holding classes
// registered in defenses/registry.cpp; like attacks, an instance is an
// immutable configuration whose methods are const and thread-safe.
class Defense {
 public:
  virtual ~Defense() = default;

  // Display name for tables/plots/JSON ("AdvTrain", "Smooth", "JpegQuant").
  virtual std::string name() const = 0;

  // True for defenses that change the training pipeline (adv_train): they
  // need DefenseContext::train_data, and their cost sits in harden().
  virtual bool training_time() const { return false; }

  // True when harden() only mutates weights and persistent buffers — state
  // models::clone_model carries — so exp::SweepEngine may clone the hardened
  // prototype model instead of re-running an expensive harden per lane.
  // Defenses that install hooks (quanos) must return false.
  virtual bool replicable_by_clone() const { return false; }

  // True for defenses whose harden() consumes DefenseContext::calibration
  // (quanos). Lets sweep grids fail fast on a missing calibration set
  // instead of aborting mid-run from a worker lane.
  virtual bool needs_calibration() const { return false; }

  // Phase 1: mutate the model in place before hardware prepare(). Default
  // no-op (inference-time defenses).
  virtual void harden(models::Model& model, const DefenseContext& ctx) const;

  // Phase 2: build a wrapper backend around a prepared hardware backend, or
  // return null for pass-through defenses. The wrapper references `inner`
  // without owning it — callers (SweepEngine replicas, al_curve) keep the
  // inner backend alive alongside the wrapper. Throws std::invalid_argument
  // naming the defense when `inner` has not been prepare()d.
  hw::BackendPtr wrap(hw::HardwareBackend& inner) const;

 protected:
  // Wrapper construction; `inner` is guaranteed prepared. Default:
  // pass-through (null).
  virtual hw::BackendPtr do_wrap(hw::HardwareBackend& inner) const;
};

using DefensePtr = std::unique_ptr<Defense>;

// Implemented by wrapper backends whose defense yields a robustness
// certificate (randomized smoothing). exp::SweepEngine probes for this with
// dynamic_cast and reports the result as the sweep's certified-radius column
// (rhw-sweep-v3 JSON).
class Certifier {
 public:
  virtual ~Certifier() = default;

  // Mean certified L2 radius over ds: per example, the Cohen et al. radius
  // when the smoothed prediction is correct and certifiable, else 0. `seed`
  // pins the certification noise streams (reseed_noise_streams), so the
  // value is a pure function of (model, ds, config, seed).
  virtual double mean_certified_radius(const data::Dataset& ds,
                                       int64_t batch_size, uint64_t seed) = 0;
};

// Backend decorator shared by the inference-time defenses: serves a wrapper
// module built around a prepared inner backend's module. Energy/area start
// from the inner backend's report (the substrate still pays) with a
// "defense" line item naming the wrapper; defenses with real overhead
// (smooth's N× forwards, quanos' requantized word sizes) override
// energy_report to price it, so the shootout can rank defenses at
// iso-energy.
class WrappedBackend : public hw::HardwareBackend {
 public:
  // `defense_key` labels name() as "<defense_key>+<inner name>", e.g.
  // "jpeg_quant+sram". The wrapper module must already route through
  // inner.module().
  WrappedBackend(std::string defense_key, hw::HardwareBackend& inner,
                 nn::ModulePtr wrapper);

  std::string name() const override;
  hw::EnergyReport energy_report() const override;

  hw::HardwareBackend& inner() const { return *inner_; }

 protected:
  void do_prepare(nn::Module& net,
                  const std::vector<models::ActivationSite>& sites,
                  const data::Dataset* calibration) override;

 private:
  std::string defense_key_;
  hw::HardwareBackend* inner_;  // non-owning
  nn::ModulePtr wrapper_;
};

}  // namespace rhw::defenses
