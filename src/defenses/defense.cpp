#include "defenses/defense.hpp"

#include <stdexcept>

namespace rhw::defenses {

void Defense::harden(models::Model&, const DefenseContext&) const {}

hw::BackendPtr Defense::wrap(hw::HardwareBackend& inner) const {
  if (!inner.prepared()) {
    throw std::invalid_argument("defense " + name() +
                                ": cannot wrap backend '" + inner.name() +
                                "' before its prepare()");
  }
  return do_wrap(inner);
}

hw::BackendPtr Defense::do_wrap(hw::HardwareBackend&) const { return nullptr; }

WrappedBackend::WrappedBackend(std::string defense_key,
                               hw::HardwareBackend& inner,
                               nn::ModulePtr wrapper)
    : defense_key_(std::move(defense_key)),
      inner_(&inner),
      wrapper_(std::move(wrapper)) {
  if (!wrapper_) {
    throw std::invalid_argument("WrappedBackend: null wrapper module");
  }
  if (!inner_->prepared()) {
    throw std::invalid_argument("WrappedBackend: inner backend '" +
                                inner_->name() + "' is not prepared");
  }
  prepare(*wrapper_);  // binds module() to the owned wrapper
}

std::string WrappedBackend::name() const {
  return defense_key_ + "+" + inner_->name();
}

hw::EnergyReport WrappedBackend::energy_report() const {
  hw::EnergyReport report = inner_->energy_report();
  report.details.emplace_back("defense", defense_key_);
  return report;
}

void WrappedBackend::do_prepare(nn::Module&,
                                const std::vector<models::ActivationSite>&,
                                const data::Dataset*) {}

}  // namespace rhw::defenses
