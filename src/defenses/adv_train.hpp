// Adversarial training (Goodfellow et al. / Madry et al.), the algorithmic
// defense the paper's introduction singles out as the strongest software
// baseline. Lives in src/defenses — it is a *training-time* defense behind
// the DefenseRegistry ("adv_train:attack=pgd,steps=7,ratio=0.5") — and
// crafts its adversarial half through the attack seam, so any registered
// gradient attack can drive the inner maximization.
#pragma once

#include <string>

#include "data/synth_cifar.hpp"
#include "hw/backend.hpp"
#include "nn/module.hpp"
#include "nn/optimizer.hpp"

namespace rhw::defenses {

struct AdvTrainConfig {
  // AttackRegistry key crafting the adversarial half of each batch. The
  // registry factory restricts this to the white-box gradient attacks
  // ("fgsm", "pgd") — a black-box attack in the training loop would burn
  // thousands of queries per step for a worse inner maximizer.
  std::string attack = "fgsm";
  int steps = 7;                // pgd inner-attack iterations (fgsm: unused)
  int epochs = 5;
  int64_t batch_size = 100;
  nn::SgdConfig sgd{};
  float lr_decay = 0.1f;        // once at 2/3 of training
  float epsilon = 0.1f;         // L-inf budget of the adversarial half
  float adv_fraction = 0.5f;    // fraction of each batch replaced by
                                // adversarial examples ("ratio" knob)
  uint64_t seed = 11;
};

struct AdvTrainResult {
  double clean_test_acc = 0.0;  // 0..1
  double final_train_loss = 0.0;
};

// Sub-stream tag for per-batch craft seeds: batch b (counted across epochs)
// crafts under derive(derive(cfg.seed, kAdvTrainCraftStream), b), keeping
// randomized inner attacks (PGD random start) bit-reproducible.
inline constexpr uint64_t kAdvTrainCraftStream = 0xAD7;

// Trains net in place on a mix of clean and adversarial batches (adversaries
// regenerated from the current parameters each step, as in standard
// adversarial training). Assumes the net is already initialized. Throws
// std::invalid_argument on a bad cfg.attack spec.
AdvTrainResult adversarial_train(nn::Module& net,
                                 const data::SynthCifar& data,
                                 const AdvTrainConfig& cfg);

// Hardware-in-the-loop variant: trains through a prepared backend's module,
// so forward passes see the hardware model (SRAM noise hooks stay gated out
// of the crafting gradient step, crossbar peripheral hooks apply throughout —
// each substrate's own rules).
AdvTrainResult adversarial_train(hw::HardwareBackend& backend,
                                 const data::SynthCifar& data,
                                 const AdvTrainConfig& cfg);

}  // namespace rhw::defenses
