#include "defenses/registry.hpp"

#include <cstdio>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "defenses/adv_train.hpp"
#include "defenses/input_transforms.hpp"
#include "defenses/smoothing.hpp"
#include "quant/pixel_discretizer.hpp"
#include "quant/quanos.hpp"

namespace rhw::defenses {

namespace {

core::OptionReader reader_for(const std::string& defense,
                              const DefenseOptions& opts) {
  return core::OptionReader("defense", defense, opts);
}

// Count knobs (samples, epochs, steps, bits) must be >= 1: a zero would make
// the defense a silent no-op and the shootout would compare against a row
// that defended nothing — the same failure mode the attack registry rejects
// for zero-iteration attacks.
int positive_int(core::OptionReader& reader, const std::string& defense,
                 const std::string& key, int fallback) {
  const uint64_t v = reader.integer(key, static_cast<uint64_t>(fallback));
  if (v == 0) {
    throw std::invalid_argument("defense " + defense + ": option " + key +
                                " must be >= 1 (0 would be a no-op defense)");
  }
  if (v > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    throw std::invalid_argument("defense " + defense + ": option " + key +
                                " value " + std::to_string(v) +
                                " exceeds the supported range");
  }
  return static_cast<int>(v);
}

// -- concrete defenses --------------------------------------------------------

class NoneDefense final : public Defense {
 public:
  std::string name() const override { return "None"; }
};

class AdvTrainDefense final : public Defense {
 public:
  explicit AdvTrainDefense(AdvTrainConfig cfg) : cfg_(std::move(cfg)) {}
  std::string name() const override { return "AdvTrain"; }
  bool training_time() const override { return true; }
  // Retraining only touches weights/BN buffers, so SweepEngine clones the
  // hardened prototype instead of re-training per lane.
  bool replicable_by_clone() const override { return true; }
  void harden(models::Model& model, const DefenseContext& ctx) const override {
    if (ctx.train_data == nullptr) {
      throw std::invalid_argument(
          "defense adv_train: needs training data (DefenseContext::"
          "train_data / SweepGrid::train_data)");
    }
    (void)adversarial_train(*model.net, *ctx.train_data, cfg_);
  }

 private:
  AdvTrainConfig cfg_;
};

class SmoothDefense final : public Defense {
 public:
  explicit SmoothDefense(SmoothConfig cfg) : cfg_(cfg) {}
  std::string name() const override { return "Smooth"; }

 protected:
  hw::BackendPtr do_wrap(hw::HardwareBackend& inner) const override {
    return std::make_unique<SmoothedBackend>(inner, cfg_);
  }

 private:
  SmoothConfig cfg_;
};

class JpegQuantDefense final : public Defense {
 public:
  explicit JpegQuantDefense(quant::PixelDiscretizer disc) : disc_(disc) {}
  std::string name() const override { return "JpegQuant"; }

 protected:
  hw::BackendPtr do_wrap(hw::HardwareBackend& inner) const override {
    return std::make_unique<WrappedBackend>(
        "jpeg_quant", inner,
        std::make_unique<quant::DiscretizedModel>(inner.module(), disc_));
  }

 private:
  quant::PixelDiscretizer disc_;
};

class GaussAugDefense final : public Defense {
 public:
  explicit GaussAugDefense(GaussAugConfig cfg) : cfg_(cfg) {}
  std::string name() const override { return "GaussAug"; }

 protected:
  hw::BackendPtr do_wrap(hw::HardwareBackend& inner) const override {
    return std::make_unique<WrappedBackend>(
        "gauss_aug", inner,
        std::make_unique<GaussAugModule>(inner.module(), cfg_));
  }

 private:
  GaussAugConfig cfg_;
};

// Identity wrapper module: routes straight through the inner net. Lets a
// harden-phase defense surface as a WrappedBackend purely so its energy
// overhead shows up on the serving backend's report.
class ForwardingModule final : public nn::Module {
 public:
  explicit ForwardingModule(nn::Module& inner) : inner_(&inner) {}
  std::vector<nn::Param*> parameters() override {
    return inner_->parameters();
  }
  std::vector<nn::Module*> children() override { return {inner_}; }
  std::vector<std::pair<std::string, Tensor*>> named_state() override {
    return {};
  }
  std::string type_name() const override { return "ForwardingModule"; }
  void set_training(bool training) override {
    nn::Module::set_training(training);
    inner_->set_training(training);
  }

 protected:
  Tensor do_forward(const Tensor& x) override { return inner_->forward(x); }
  Tensor do_backward(const Tensor& grad_out) override {
    return inner_->backward(grad_out);
  }

 private:
  nn::Module* inner_;  // non-owning
};

// QUANOS activations live in requantized words: the median-ANS split assigns
// low_bits to half the weight layers by construction and high_bits to the
// rest, so *activation-memory* read energy scales with the mean word size
// relative to 8-bit words. The sram backend's report is exactly that
// (per-word read energy of the noisy activation sites), so it takes the
// credit; compute-denominated reports (xbar's analog MVM energy) and the
// unpriced ideal backend keep their number — for those the requantized word
// sizes surface as line items only, so downstream tooling can still price
// its own memory model at iso-energy.
class QuanosEnergyBackend final : public WrappedBackend {
 public:
  QuanosEnergyBackend(hw::HardwareBackend& inner, quant::QuanosConfig cfg)
      : WrappedBackend("quanos", inner,
                       std::make_unique<ForwardingModule>(inner.module())),
        cfg_(cfg) {}

  hw::EnergyReport energy_report() const override {
    hw::EnergyReport report = WrappedBackend::energy_report();
    const double mean_bits = 0.5 * (cfg_.high_bits + cfg_.low_bits);
    const double scale = mean_bits / 8.0;
    char scale_buf[32];
    std::snprintf(scale_buf, sizeof scale_buf, "%.3f", scale);
    report.details.emplace_back("quanos_word_bits",
                                std::to_string(cfg_.high_bits) + "b/" +
                                    std::to_string(cfg_.low_bits) + "b");
    report.details.emplace_back("quanos_word_scale", scale_buf);
    if (report.backend.rfind("sram", 0) == 0) {
      const double substrate_nj = report.energy_nj;
      report.energy_nj = substrate_nj * scale;
      char substrate_buf[32];
      std::snprintf(substrate_buf, sizeof substrate_buf, "%.4g",
                    substrate_nj);
      report.details.emplace_back("substrate_energy_nj", substrate_buf);
    }
    return report;
  }

 private:
  quant::QuanosConfig cfg_;
};

class QuanosDefense final : public Defense {
 public:
  explicit QuanosDefense(quant::QuanosConfig cfg) : cfg_(cfg) {}
  std::string name() const override { return "QUANOS"; }
  bool needs_calibration() const override { return true; }
  // apply_quanos installs activation fake-quantization hooks, which
  // clone_model does not carry — every replica re-runs the (deterministic)
  // requantization, so replicable_by_clone stays false.
  void harden(models::Model& model, const DefenseContext& ctx) const override {
    if (ctx.calibration == nullptr) {
      throw std::invalid_argument(
          "defense quanos: needs a calibration dataset (DefenseContext::"
          "calibration / SweepBackendDef::calibration)");
    }
    (void)quant::apply_quanos(*model.net, *ctx.calibration, cfg_);
  }

 protected:
  hw::BackendPtr do_wrap(hw::HardwareBackend& inner) const override {
    return std::make_unique<QuanosEnergyBackend>(inner, cfg_);
  }

 private:
  quant::QuanosConfig cfg_;
};

// -- factories ----------------------------------------------------------------

DefensePtr make_none(const DefenseOptions& opts) {
  auto reader = reader_for("none", opts);
  reader.finish();
  return std::make_unique<NoneDefense>();
}

DefensePtr make_adv_train(const DefenseOptions& opts) {
  auto reader = reader_for("adv_train", opts);
  AdvTrainConfig cfg;
  cfg.attack = reader.text("attack", cfg.attack);
  if (cfg.attack != "fgsm" && cfg.attack != "pgd") {
    throw std::invalid_argument(
        "defense adv_train: option attack must be fgsm or pgd (got '" +
        cfg.attack + "')");
  }
  cfg.steps = positive_int(reader, "adv_train", "steps", cfg.steps);
  cfg.epsilon = static_cast<float>(reader.number("eps", cfg.epsilon));
  cfg.adv_fraction =
      static_cast<float>(reader.number("ratio", cfg.adv_fraction));
  if (cfg.adv_fraction < 0.f || cfg.adv_fraction > 1.f) {
    throw std::invalid_argument(
        "defense adv_train: option ratio must be in [0, 1] (got " +
        std::to_string(cfg.adv_fraction) + ")");
  }
  cfg.epochs = positive_int(reader, "adv_train", "epochs", cfg.epochs);
  cfg.seed = reader.integer("seed", cfg.seed);
  reader.finish();
  return std::make_unique<AdvTrainDefense>(std::move(cfg));
}

DefensePtr make_smooth(const DefenseOptions& opts) {
  auto reader = reader_for("smooth", opts);
  SmoothConfig cfg;
  cfg.sigma = static_cast<float>(reader.number("sigma", cfg.sigma));
  if (!(cfg.sigma > 0.f)) {
    throw std::invalid_argument(
        "defense smooth: option sigma must be > 0 (got " +
        std::to_string(cfg.sigma) + ")");
  }
  cfg.samples = positive_int(reader, "smooth", "samples", cfg.samples);
  cfg.alpha = reader.number("alpha", cfg.alpha);
  if (!(cfg.alpha > 0.0) || !(cfg.alpha < 0.5)) {
    throw std::invalid_argument(
        "defense smooth: option alpha must be in (0, 0.5) (got " +
        std::to_string(cfg.alpha) + ")");
  }
  reader.finish();
  return std::make_unique<SmoothDefense>(cfg);
}

DefensePtr make_jpeg_quant(const DefenseOptions& opts) {
  auto reader = reader_for("jpeg_quant", opts);
  quant::PixelDiscretizer disc;
  disc.bits = positive_int(reader, "jpeg_quant", "bits", disc.bits);
  if (disc.bits > 8) {
    throw std::invalid_argument(
        "defense jpeg_quant: option bits must be in [1, 8] (got " +
        std::to_string(disc.bits) + ")");
  }
  reader.finish();
  return std::make_unique<JpegQuantDefense>(disc);
}

DefensePtr make_gauss_aug(const DefenseOptions& opts) {
  auto reader = reader_for("gauss_aug", opts);
  GaussAugConfig cfg;
  cfg.sigma = static_cast<float>(reader.number("sigma", cfg.sigma));
  if (!(cfg.sigma > 0.f)) {
    throw std::invalid_argument(
        "defense gauss_aug: option sigma must be > 0 (got " +
        std::to_string(cfg.sigma) + ")");
  }
  reader.finish();
  return std::make_unique<GaussAugDefense>(cfg);
}

DefensePtr make_quanos(const DefenseOptions& opts) {
  auto reader = reader_for("quanos", opts);
  quant::QuanosConfig cfg;
  cfg.sample_count = positive_int(reader, "quanos", "samples",
                                  static_cast<int>(cfg.sample_count));
  cfg.high_bits = positive_int(reader, "quanos", "high", cfg.high_bits);
  cfg.low_bits = positive_int(reader, "quanos", "low", cfg.low_bits);
  cfg.ans_epsilon = static_cast<float>(reader.number("eps", cfg.ans_epsilon));
  reader.finish();
  return std::make_unique<QuanosDefense>(cfg);
}

}  // namespace

DefenseRegistry::DefenseRegistry() {
  factories_["none"] = make_none;
  factories_["adv_train"] = make_adv_train;
  factories_["smooth"] = make_smooth;
  factories_["jpeg_quant"] = make_jpeg_quant;
  factories_["gauss_aug"] = make_gauss_aug;
  factories_["quanos"] = make_quanos;
}

DefenseRegistry& DefenseRegistry::instance() {
  static DefenseRegistry registry;
  return registry;
}

void DefenseRegistry::add(const std::string& key, DefenseFactory factory) {
  factories_[key] = std::move(factory);
}

bool DefenseRegistry::contains(const std::string& key) const {
  return factories_.count(key) > 0;
}

std::vector<std::string> DefenseRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, factory] : factories_) out.push_back(key);
  return out;
}

DefensePtr DefenseRegistry::create(const std::string& spec) const {
  const core::ParsedSpec parsed = core::parse_spec("defense", spec);
  const auto it = factories_.find(parsed.key);
  if (it == factories_.end()) {
    std::ostringstream os;
    os << "unknown defense '" << parsed.key << "'; registered:";
    for (const auto& [name, factory] : factories_) os << ' ' << name;
    throw std::invalid_argument(os.str());
  }
  try {
    return it->second(parsed.options);
  } catch (const std::invalid_argument& e) {
    // Factories report the offending option key/value; add the full spec so
    // errors surfacing far from the call site stay actionable.
    throw std::invalid_argument("defense spec '" + spec + "': " + e.what());
  }
}

DefensePtr make_defense(const std::string& spec) {
  return DefenseRegistry::instance().create(spec);
}

std::string defense_display_name(const std::string& spec) {
  return make_defense(spec)->name();
}

}  // namespace rhw::defenses
