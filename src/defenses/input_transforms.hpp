// Input-transform defenses: cheap wrappers that reshape what the network
// sees, composing around any prepared hardware backend.
//
//   * jpeg_quant — pixel-depth reduction (Panda et al. [6]), reusing
//     quant::PixelDiscretizer behind the defense seam; deterministic, so it
//     needs no seeder.
//   * gauss_aug — a single Gaussian input perturbation per forward (the
//     1-sample little sibling of randomized smoothing). Stochastic: its RNG
//     registers a hook seeder and the noise is *gated* like SRAM bit errors —
//     attack gradients are computed on the clean path (the paper's rule for
//     gated noise), while "eot_pgd" remains the aware attack.
#pragma once

#include "core/rng.hpp"
#include "nn/module.hpp"

namespace rhw::defenses {

// In-place x += N(0, sigma^2) followed by a clamp into [lo, hi] — the one
// noisy-copy primitive both gauss_aug and the smoothing wrapper draw from,
// so their noise semantics cannot drift apart.
void add_gaussian_noise(Tensor& x, float sigma, float lo, float hi,
                        RandomEngine& rng);

struct GaussAugConfig {
  float sigma = 0.1f;   // input-noise stddev (pixel scale, 0..1)
  float clip_lo = 0.f;  // valid pixel range
  float clip_hi = 1.f;
};

// Wraps an existing network: forward adds one Gaussian draw to the input
// (when hooks are enabled — see nn::Module::hooks_enabled), then delegates.
// Gradients flow straight through the augmentation.
class GaussAugModule final : public nn::Module {
 public:
  GaussAugModule(nn::Module& inner, GaussAugConfig cfg);

  std::vector<nn::Param*> parameters() override {
    return inner_->parameters();
  }
  std::vector<nn::Module*> children() override { return {inner_}; }
  std::vector<std::pair<std::string, Tensor*>> named_state() override {
    return {};
  }
  std::string type_name() const override { return "GaussAugModule"; }
  void set_training(bool training) override {
    nn::Module::set_training(training);
    inner_->set_training(training);
  }

 protected:
  Tensor do_forward(const Tensor& x) override;
  Tensor do_backward(const Tensor& grad_out) override {
    return inner_->backward(grad_out);  // straight-through
  }

 private:
  nn::Module* inner_;  // non-owning
  GaussAugConfig cfg_;
  RandomEngine rng_;
};

}  // namespace rhw::defenses
