#include "defenses/input_transforms.hpp"

#include <stdexcept>

namespace rhw::defenses {

void add_gaussian_noise(Tensor& x, float sigma, float lo, float hi,
                        RandomEngine& rng) {
  float* p = x.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    p[i] += sigma * rng.gaussian();
  }
  x.clamp_(lo, hi);
}

GaussAugModule::GaussAugModule(nn::Module& inner, GaussAugConfig cfg)
    : inner_(&inner), cfg_(cfg) {
  if (!(cfg_.sigma > 0.f)) {
    throw std::invalid_argument("GaussAugModule: sigma must be > 0");
  }
  // Seeder-only hook registration: reseed_noise_streams pins the
  // augmentation stream per evaluation pass (identity hook, gated like the
  // noise itself).
  set_post_hook([](Tensor&) {}, /*gated=*/true,
                [this](uint64_t seed) { rng_.reseed(seed); });
}

Tensor GaussAugModule::do_forward(const Tensor& x) {
  // Gated like SRAM bit errors: absent from attack-gradient passes
  // (HooksDisabledScope), present on every deployed forward.
  if (!hooks_enabled()) return inner_->forward(x);
  Tensor noisy = x;
  add_gaussian_noise(noisy, cfg_.sigma, cfg_.clip_lo, cfg_.clip_hi, rng_);
  return inner_->forward(noisy);
}

}  // namespace rhw::defenses
