// String-keyed factory for defenses — the third seam, the twin of
// hw::BackendRegistry and attacks::AttackRegistry.
//
// Every harness, bench, and example selects its defense by config string
// instead of hand-wiring wrapper modules or one-off sweep binders:
//
//   auto defense = defenses::make_defense("smooth:sigma=0.25,samples=32");
//   defense->harden(model, ctx);                 // training-time phase
//   auto wrapped = defense->wrap(*backend);      // inference-time phase
//
// Spec grammar (core/spec.hpp, shared with both other registries):
// "<key>" or "<key>:<opt>=<value>,...". Built-in keys and their options
// (docs/DEFENSES.md has the full story, composition rules and which paper
// figure each defense arm feeds):
//
//   none        (no options)
//               — identity defense: the undefended baseline row
//   adv_train   attack=<fgsm|pgd> steps=<n> eps=<f> ratio=<f> epochs=<n>
//               seed=<u64>
//               — training-time: retrains the model on a clean/adversarial
//                 batch mix crafted through the attack registry
//   smooth      sigma=<f> samples=<n> alpha=<f>
//               — randomized smoothing: majority vote over `samples` noisy
//                 passes; certifies a Clopper-Pearson/Cohen L2 radius
//                 (the sweep's certified-radius column)
//   jpeg_quant  bits=<n>
//               — input pixel-depth reduction to 2^bits levels (ref. [6])
//   gauss_aug   sigma=<f>
//               — single Gaussian input perturbation per forward (gated
//                 like SRAM bit errors)
//   quanos      samples=<n> high=<n> low=<n> eps=<f>
//               — QUANOS ANS-driven hybrid quantization (ref. [8]); needs a
//                 calibration dataset (DefenseContext::calibration)
//
// Unknown keys and unknown options throw std::invalid_argument naming the
// offending token and the full spec — the same error contract the other two
// registries honor (tests/defenses/test_defense_registry.cpp asserts
// parity). Downstream code can register additional defenses
// (registry().add) under new keys.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "defenses/defense.hpp"

namespace rhw::defenses {

// Options parsed from the spec string: option name -> raw value text (shared
// grammar with hw::BackendOptions / attacks::AttackOptions, core/spec.hpp).
using DefenseOptions = core::SpecOptions;
using DefenseFactory = std::function<DefensePtr(const DefenseOptions&)>;

class DefenseRegistry {
 public:
  // Process-wide registry, built-ins registered on first use.
  static DefenseRegistry& instance();

  // Registers (or replaces) a factory under `key`.
  void add(const std::string& key, DefenseFactory factory);
  bool contains(const std::string& key) const;
  std::vector<std::string> keys() const;

  // Parses "<key>[:opt=v,...]" and invokes the factory. Throws
  // std::invalid_argument on an empty spec, an unknown key, an unknown
  // option, or a malformed value — always naming the offending token.
  DefensePtr create(const std::string& spec) const;

 private:
  DefenseRegistry();
  std::map<std::string, DefenseFactory> factories_;
};

// Shorthand for DefenseRegistry::instance().create(spec).
DefensePtr make_defense(const std::string& spec);

// Display name ("None", "AdvTrain", "Smooth", ...) for a spec string; used
// by tables, plots and sweep JSON. Throws like make_defense on a bad spec.
std::string defense_display_name(const std::string& spec);

}  // namespace rhw::defenses
