// Randomized-smoothing certification math (Cohen et al., 2019).
//
// A smoothed classifier g(x) = argmax_c P[f(x + N(0, sigma^2 I)) = c] is
// certifiably constant within an L2 ball of radius
//
//   R = sigma * Phi^{-1}(p_lower)
//
// around x, where p_lower is a high-confidence lower bound on the top-class
// probability. The bound comes from the vote counts of the Monte-Carlo
// estimate: k top-class votes out of n samples give the one-sided
// Clopper-Pearson lower bound at confidence 1 - alpha. p_lower <= 1/2 means
// the smoothed prediction itself is not certifiable (abstain), radius 0.
//
// These are dependency-free doubles-only implementations (regularized
// incomplete beta via Lentz's continued fraction, inverted by bisection;
// Phi^{-1} via Acklam's rational approximation) — accurate to ~1e-9, far
// below the Monte-Carlo error of any realistic sample count.
#pragma once

#include <cstdint>

namespace rhw::defenses {

// Regularized incomplete beta function I_x(a, b), a,b > 0, x in [0, 1].
double incomplete_beta(double a, double b, double x);

// One-sided Clopper-Pearson lower confidence bound for the success
// probability after observing k successes in n Bernoulli trials, at
// confidence 1 - alpha: the p solving P[Binomial(n, p) >= k] = alpha
// (equivalently the alpha-quantile of Beta(k, n - k + 1)). Returns 0 for
// k == 0. Throws std::invalid_argument on k > n, n < 1 or alpha outside
// (0, 1).
double clopper_pearson_lower(int64_t k, int64_t n, double alpha);

// Standard normal quantile Phi^{-1}(p), p in (0, 1).
double normal_quantile(double p);

// Certified L2 radius of one smoothed prediction: sigma *
// Phi^{-1}(clopper_pearson_lower(top_votes, samples, alpha)), or 0 when the
// lower bound does not clear 1/2 (abstain).
double certified_radius(double sigma, int64_t top_votes, int64_t samples,
                        double alpha);

}  // namespace rhw::defenses
