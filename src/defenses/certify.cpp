#include "defenses/certify.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace rhw::defenses {

namespace {

// Continued-fraction core of the incomplete beta function (Lentz's method,
// as in Numerical Recipes' betacf). Converges quickly for
// x < (a + 1) / (a + b + 2); incomplete_beta routes the other half through
// the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

// glibc's lgamma writes the process-global `signgam`, which races when
// concurrent sweep lanes certify cells; lgamma_r keeps the sign local (and
// the arguments here are strictly positive, so the sign is always +1).
double lgamma_threadsafe(double v) {
#if defined(__GLIBC__) || defined(_GNU_SOURCE)
  int sign = 0;
  return ::lgamma_r(v, &sign);
#else
  return std::lgamma(v);
#endif
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("incomplete_beta: a and b must be > 0");
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = lgamma_threadsafe(a + b) - lgamma_threadsafe(a) -
                          lgamma_threadsafe(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double clopper_pearson_lower(int64_t k, int64_t n, double alpha) {
  if (n < 1) {
    throw std::invalid_argument("clopper_pearson_lower: n must be >= 1");
  }
  if (k < 0 || k > n) {
    throw std::invalid_argument("clopper_pearson_lower: k=" +
                                std::to_string(k) + " outside [0, n=" +
                                std::to_string(n) + "]");
  }
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    throw std::invalid_argument(
        "clopper_pearson_lower: alpha must be in (0, 1)");
  }
  if (k == 0) return 0.0;
  // p_lower is the alpha-quantile of Beta(k, n - k + 1): bisect on the CDF.
  // I_p(k, n-k+1) is monotonically increasing in p, 0 at p=0 and 1 at p=1.
  const double a = static_cast<double>(k);
  const double b = static_cast<double>(n - k) + 1.0;
  double lo = 0.0, hi = 1.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (incomplete_beta(a, b, mid) < alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) break;
  }
  return 0.5 * (lo + hi);
}

double normal_quantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must be in (0, 1)");
  }
  // Acklam's rational approximation (relative error < 1.15e-9).
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double certified_radius(double sigma, int64_t top_votes, int64_t samples,
                        double alpha) {
  const double p_lower = clopper_pearson_lower(top_votes, samples, alpha);
  if (p_lower <= 0.5) return 0.0;
  return sigma * normal_quantile(p_lower);
}

}  // namespace rhw::defenses
