// Randomized smoothing (Cohen et al., 2019) behind the defense seam.
//
// The smoothed classifier predicts by majority vote over `samples` Gaussian
// perturbations of the input, each run through the wrapped (possibly noisy)
// inner model. Because the wrapper composes around a prepared
// hw::HardwareBackend, "smooth over sram" is a smoothed *noisy-hardware*
// classifier — the shootout arm the paper's comparison was missing.
//
// Determinism: the smoothing noise comes from a private RandomEngine whose
// seeder is registered through the module hook-seeder channel, so
// nn::reseed_noise_streams pins it per evaluation pass exactly like the
// hardware noise streams. A smoothed-noisy sweep arm is therefore
// bit-identical at any lane count (tests/defenses/test_defense_sweep.cpp).
//
// Cost: the N noisy copies do NOT run as N sequential forwards. votes()
// tiles them into one large batch (chunked to bound activation memory) so
// the inner substrate amortizes its batched execution path — threaded gemm
// blocks, and on crossbars the tile-level batching XbarBackend's layers ride
// on — across copies. bench_micro's BM_SmoothVotes* pair records the
// batched-vs-sequential speedup. Noise draws happen copy-major in the same
// linear order the sequential loop used, so the copies see identical
// perturbations.
//
// Gradients: do_backward is straight-through the *last* noisy sample's
// cached state — the usual straight-through treatment for vote-based
// inference (do_forward runs that final copy as its own inner pass, so the
// cache is input-shaped and belongs to a counted vote). White-box gradient
// attacks on a smoothed arm see that proxy gradient; the honest adaptive
// attack remains "eot_pgd" on the inner model.
#pragma once

#include "core/rng.hpp"
#include "defenses/certify.hpp"
#include "defenses/defense.hpp"
#include "nn/module.hpp"

namespace rhw::defenses {

struct SmoothConfig {
  float sigma = 0.25f;   // Gaussian noise stddev (input scale, pixels in 0..1)
  int samples = 32;      // Monte-Carlo votes per prediction
  double alpha = 0.001;  // certification confidence: bounds hold w.p. 1-alpha
  float clip_lo = 0.f;   // valid pixel range for the noisy copies
  float clip_hi = 1.f;
};

// Wraps an existing network: forward returns vote-share "logits"
// (votes / samples per class) from `samples` noisy passes of the inner
// model. Argmax of the output is the smoothed prediction.
class SmoothedModule final : public nn::Module {
 public:
  SmoothedModule(nn::Module& inner, SmoothConfig cfg);

  // Vote counts [N, num_classes] over `samples` noisy copies (cfg.samples
  // when <= 0), evaluated through the inner model in large batched chunks.
  // Advances the smoothing noise stream; pin it first via
  // reseed_noise_streams for reproducible counts.
  Tensor votes(const Tensor& x, int samples = 0);

  const SmoothConfig& config() const { return cfg_; }

  std::vector<nn::Param*> parameters() override {
    return inner_->parameters();
  }
  std::vector<nn::Module*> children() override { return {inner_}; }
  std::vector<std::pair<std::string, Tensor*>> named_state() override {
    return {};
  }
  std::string type_name() const override { return "SmoothedModule"; }
  void set_training(bool training) override {
    nn::Module::set_training(training);
    inner_->set_training(training);
  }

 protected:
  Tensor do_forward(const Tensor& x) override;
  Tensor do_backward(const Tensor& grad_out) override {
    return inner_->backward(grad_out);  // straight-through, last sample
  }

 private:
  // With input_shaped_tail, the final copy runs as its own inner pass so the
  // inner cache do_backward replays is input-shaped and belongs to a counted
  // vote (do_forward's mode; votes() batches every copy).
  Tensor votes_impl(const Tensor& x, int samples, bool input_shaped_tail);

  nn::Module* inner_;  // non-owning
  SmoothConfig cfg_;
  RandomEngine rng_;
};

// The smoothing defense's wrapper backend: serves the SmoothedModule and
// certifies predictions following Cohen et al.'s CERTIFY — an independent
// selection batch picks the candidate class, a fresh estimation batch gives
// its Clopper-Pearson lower bound, and the radius is sigma * Phi^-1 of it.
class SmoothedBackend final : public WrappedBackend, public Certifier {
 public:
  SmoothedBackend(hw::HardwareBackend& inner, SmoothConfig cfg);

  double mean_certified_radius(const data::Dataset& ds, int64_t batch_size,
                               uint64_t seed) override;

  // The substrate's report with the defense overhead priced in: a smoothed
  // prediction pays `samples` substrate forwards, so energy_nj scales by the
  // vote count, with the raw substrate energy kept as a line item — the
  // defense shootout ranks defenses at iso-energy off these numbers.
  hw::EnergyReport energy_report() const override;

  const SmoothConfig& config() const { return smoothed_->config(); }

 private:
  SmoothedModule* smoothed_;  // owned by WrappedBackend's wrapper module
};

}  // namespace rhw::defenses
