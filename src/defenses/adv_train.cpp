#include "defenses/adv_train.hpp"

#include <algorithm>

#include "attacks/registry.hpp"
#include "nn/loss.hpp"

namespace rhw::defenses {

namespace {

// Builds the inner adversary from the config. "fgsm" takes no iteration
// knobs; everything else gets the steps knob (the factory rejects attacks
// that do not understand it, naming the token).
attacks::AttackPtr build_inner_attack(const AdvTrainConfig& cfg) {
  std::string spec = cfg.attack;
  if (cfg.attack != "fgsm") {
    spec += ":steps=" + std::to_string(cfg.steps);
  }
  attacks::AttackPtr attack = attacks::make_attack(spec);
  attack->set_epsilon(cfg.epsilon);
  return attack;
}

}  // namespace

AdvTrainResult adversarial_train(nn::Module& net, const data::SynthCifar& data,
                                 const AdvTrainConfig& cfg) {
  const attacks::AttackPtr attack = build_inner_attack(cfg);
  rhw::RandomEngine rng(cfg.seed);
  const uint64_t craft_stream =
      derive_stream_seed(cfg.seed, kAdvTrainCraftStream);
  nn::SGD opt(net.parameters(), cfg.sgd);
  nn::SoftmaxCrossEntropy loss;
  const int decay_epoch = std::max(1, cfg.epochs * 2 / 3);

  AdvTrainResult result;
  uint64_t craft_batch = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (epoch == decay_epoch) opt.set_lr(opt.lr() * cfg.lr_decay);
    const auto order = data::shuffled_indices(data.train.size(), rng);
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin < data.train.size();
         begin += cfg.batch_size) {
      const int64_t end =
          std::min<int64_t>(begin + cfg.batch_size, data.train.size());
      std::vector<int64_t> idx(order.begin() + begin, order.begin() + end);
      auto batch = data.train.gather(idx);

      // Replace the leading adv_fraction of the batch with adversaries
      // crafted against the *current* parameters.
      const auto n_adv = static_cast<int64_t>(
          cfg.adv_fraction * static_cast<float>(batch.images.dim(0)));
      if (n_adv > 0 && cfg.epsilon > 0.f) {
        auto head = batch.slice(0, n_adv);
        attacks::AttackContext ctx;
        ctx.grad_net = &net;
        ctx.eval_net = &net;
        ctx.seed = derive_stream_seed(craft_stream, craft_batch);
        const Tensor adv = attack->perturb(ctx, head.images, head.labels);
        std::copy(adv.data(), adv.data() + adv.numel(), batch.images.data());
      }
      ++craft_batch;

      net.set_training(true);
      opt.zero_grad();
      const Tensor logits = net.forward(batch.images);
      epoch_loss += loss.forward(logits, batch.labels);
      ++batches;
      net.backward(loss.backward());
      opt.step();
    }
    result.final_train_loss = epoch_loss / std::max<int64_t>(1, batches);
  }

  // Clean test accuracy.
  net.set_training(false);
  int64_t correct = 0;
  for (int64_t begin = 0; begin < data.test.size(); begin += cfg.batch_size) {
    const auto batch = data.test.slice(begin, begin + cfg.batch_size);
    const auto preds = net.forward(batch.images).argmax_rows();
    for (size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
  }
  result.clean_test_acc =
      data.test.size() > 0
          ? static_cast<double>(correct) / static_cast<double>(data.test.size())
          : 0.0;
  return result;
}

AdvTrainResult adversarial_train(hw::HardwareBackend& backend,
                                 const data::SynthCifar& data,
                                 const AdvTrainConfig& cfg) {
  return adversarial_train(backend.module(), data, cfg);
}

}  // namespace rhw::defenses
