#include "sram/energy_model.hpp"

#include <stdexcept>

namespace rhw::sram {

double SramEnergyModel::bit_read_energy_fj(bool is_8t, double vdd) const {
  const double base = is_8t ? params_.e_read_8t_fj : params_.e_read_6t_fj;
  const double ratio = vdd / params_.nominal_vdd;
  return base * ratio * ratio;
}

double SramEnergyModel::cell_leakage_nw(bool is_8t, double vdd) const {
  const double base = is_8t ? params_.leak_8t_nw : params_.leak_6t_nw;
  return base * (vdd / params_.nominal_vdd);
}

double SramEnergyModel::word_read_energy_fj(const HybridWordConfig& word,
                                            double vdd) const {
  return static_cast<double>(word.num_8t) * bit_read_energy_fj(true, vdd) +
         static_cast<double>(word.num_6t()) * bit_read_energy_fj(false, vdd);
}

double SramEnergyModel::word_area_um2(const HybridWordConfig& word) const {
  return static_cast<double>(word.num_8t) * params_.area_8t_um2 +
         static_cast<double>(word.num_6t()) * params_.area_6t_um2;
}

double SramEnergyModel::word_leakage_nw(const HybridWordConfig& word,
                                        double vdd) const {
  return static_cast<double>(word.num_8t) * cell_leakage_nw(true, vdd) +
         static_cast<double>(word.num_6t()) * cell_leakage_nw(false, vdd);
}

MemoryEnergyReport activation_memory_report(
    models::Model& model, const rhw::Tensor& sample_input, double vdd,
    const std::vector<std::pair<std::string, HybridWordConfig>>& noisy_sites,
    const SramEnergyModel& energy_model) {
  if (sample_input.rank() != 4 || sample_input.dim(0) < 1) {
    throw std::invalid_argument(
        "activation_memory_report: [N,C,H,W] sample input required");
  }
  // Measure per-site activation volumes with temporary capture hooks. Words
  // are counted per single input image.
  const int64_t batch = sample_input.dim(0);
  std::vector<int64_t> words(model.sites.size(), 0);
  std::vector<nn::ActivationHook> saved;
  for (size_t s = 0; s < model.sites.size(); ++s) {
    int64_t* slot = &words[s];
    model.sites[s].module->set_post_hook(
        [slot, batch](rhw::Tensor& t) { *slot = t.numel() / batch; });
  }
  const bool was_training = model.net->training();
  model.net->set_training(false);
  (void)model.net->forward(sample_input);
  model.net->set_training(was_training);
  for (auto& site : model.sites) site.module->clear_post_hook();

  HybridWordConfig homogeneous_8t;
  homogeneous_8t.num_8t = homogeneous_8t.total_bits;

  MemoryEnergyReport report;
  for (size_t s = 0; s < model.sites.size(); ++s) {
    SiteMemorySpec spec;
    spec.label = model.sites[s].label;
    spec.words = words[s];
    spec.word = homogeneous_8t;
    for (const auto& [label, word] : noisy_sites) {
      if (label == spec.label) spec.word = word;
    }
    report.sites.push_back(spec);

    const auto n = static_cast<double>(spec.words);
    report.total_read_energy_fj +=
        n * energy_model.word_read_energy_fj(spec.word, vdd);
    report.total_area_um2 += n * energy_model.word_area_um2(spec.word);
    report.total_leakage_nw +=
        n * energy_model.word_leakage_nw(spec.word, vdd);
    report.baseline_energy_fj +=
        n * energy_model.word_read_energy_fj(homogeneous_8t,
                                             energy_model.params().nominal_vdd);
    report.baseline_area_um2 +=
        n * energy_model.word_area_um2(homogeneous_8t);
  }
  return report;
}

}  // namespace rhw::sram
