// Bit-error-rate model for 6T / 8T SRAM cells under supply-voltage scaling.
//
// Physics: an SRAM cell fails a read/write when its (voltage-dependent) noise
// margin, which varies across cells due to process variation, drops below
// zero (Mukhopadhyay et al. [29]). Modelling the margin as Gaussian with a
// mean that shrinks linearly as Vdd scales gives a failure probability
//   BER(Vdd) = Q(slope * (Vdd - Vcrit)),   Q(z) = 0.5 * erfc(z / sqrt(2)).
//
// The paper characterizes a 22 nm predictive-technology 6T cell with static
// read/write noise margins of 195 mV / 250 mV. We calibrate (slope, Vcrit) so
// the curve reproduces the hybrid-8T-6T literature ([11], [12]): BER ~1e-9 at
// nominal 1.0 V rising to ~1e-2 at the paper's operating point 0.68 V, with
// ~5% at deep scaling (0.62 V). 8T cells hold their margins much lower
// (functional to ~0.3 V), so their BER is negligible in the studied range.
#pragma once

namespace rhw::sram {

struct BitErrorParams {
  // 6T: Q(11.47 * (v - 0.477)) -> 1e-9 @ 1.0 V, 1e-2 @ 0.68 V, 5e-2 @ 0.62 V
  double six_t_slope = 11.47;
  double six_t_vcrit = 0.477;
  // 8T: read-decoupled cell, functional far below the 6T limit.
  double eight_t_slope = 11.47;
  double eight_t_vcrit = 0.30;
};

class BitErrorModel {
 public:
  BitErrorModel(BitErrorParams params = {}) : params_(params) {}  // NOLINT

  // Probability that one 6T (resp. 8T) cell read/write flips at supply vdd.
  double ber_6t(double vdd) const;
  double ber_8t(double vdd) const;

  const BitErrorParams& params() const { return params_; }

 private:
  BitErrorParams params_;
};

}  // namespace rhw::sram
