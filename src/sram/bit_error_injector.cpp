#include "sram/bit_error_injector.hpp"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "quant/quantizer.hpp"

namespace rhw::sram {

BitErrorInjector::BitErrorInjector(HybridWordConfig word, BitErrorModel model,
                                   double vdd)
    : word_(word),
      model_(model),
      vdd_(vdd),
      ber6_(model_.ber_6t(vdd)),
      ber8_(model_.ber_8t(vdd)) {}

void BitErrorInjector::corrupt_codes(std::span<uint8_t> codes,
                                     rhw::RandomEngine& rng) const {
  const uint32_t mask6 = word_.six_t_mask();
  const uint32_t mask8 = word_.eight_t_mask();
  // 8T errors are negligible above ~0.4 V; skip the per-bit draws when the
  // expected flip count over this whole span rounds to zero.
  const bool sample_8t =
      ber8_ * static_cast<double>(codes.size() * word_.total_bits) > 1e-3;

  for (uint8_t& code : codes) {
    uint32_t flips = 0;
    for (int bit = 0; bit < word_.total_bits; ++bit) {
      const uint32_t b = 1u << bit;
      if (mask6 & b) {
        if (rng.bernoulli(ber6_)) flips |= b;
      } else if (sample_8t && (mask8 & b)) {
        if (rng.bernoulli(ber8_)) flips |= b;
      }
    }
    code = static_cast<uint8_t>(code ^ flips);
  }
}

void BitErrorInjector::apply_to_activations(Tensor& t,
                                            rhw::RandomEngine& rng) const {
  const auto params = quant::compute_unsigned(t, word_.total_bits);
  auto codes = quant::to_codes_unsigned(t, params);
  corrupt_codes(codes, rng);
  quant::from_codes_unsigned(codes, params, t);
}

void BitErrorInjector::apply_to_weights(Tensor& t,
                                        rhw::RandomEngine& rng) const {
  const auto params = quant::compute_symmetric(t, word_.total_bits);
  auto codes = quant::to_codes_signed(t, params);
  // Reinterpret the two's-complement bytes as raw bit patterns.
  auto* raw = reinterpret_cast<uint8_t*>(codes.data());
  corrupt_codes(std::span<uint8_t>(raw, codes.size()), rng);
  quant::from_codes_signed(codes, params, t);
}

double BitErrorInjector::measure_mu(int64_t num_words,
                                    rhw::RandomEngine& rng) const {
  const double full_scale = static_cast<double>((1u << word_.total_bits) - 1u);
  std::vector<uint8_t> codes(static_cast<size_t>(num_words));
  for (auto& c : codes) {
    c = static_cast<uint8_t>(rng.next_below(1u << word_.total_bits));
  }
  std::vector<uint8_t> corrupted = codes;
  corrupt_codes(corrupted, rng);
  double acc = 0.0;
  for (size_t i = 0; i < codes.size(); ++i) {
    acc += std::abs(static_cast<int>(corrupted[i]) - static_cast<int>(codes[i]));
  }
  return acc / (static_cast<double>(num_words) * full_scale);
}

}  // namespace rhw::sram
