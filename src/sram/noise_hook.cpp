#include "sram/noise_hook.hpp"

#include <memory>

namespace rhw::sram {

nn::ActivationHook make_sram_noise_hook(const SramNoiseConfig& cfg,
                                        const BitErrorModel& model) {
  auto injector = std::make_shared<BitErrorInjector>(cfg.word, model, cfg.vdd);
  auto rng = std::make_shared<rhw::RandomEngine>(cfg.seed);
  return [injector, rng](nn::Tensor& t) {
    injector->apply_to_activations(t, *rng);
  };
}

void attach_noise(nn::Module& site, const SramNoiseConfig& cfg,
                  const BitErrorModel& model) {
  site.set_post_hook(make_sram_noise_hook(cfg, model));
}

void corrupt_layer_weights(nn::Module& layer, const SramNoiseConfig& cfg,
                           const BitErrorModel& model) {
  BitErrorInjector injector(cfg.word, model, cfg.vdd);
  rhw::RandomEngine rng(cfg.seed);
  for (nn::Param* p : layer.parameters()) {
    if (p->name == "weight") injector.apply_to_weights(p->value, rng);
  }
}

}  // namespace rhw::sram
