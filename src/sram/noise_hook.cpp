#include "sram/noise_hook.hpp"

#include <memory>

namespace rhw::sram {

void attach_noise(nn::Module& site, const SramNoiseConfig& cfg,
                  const BitErrorModel& model) {
  auto injector = std::make_shared<BitErrorInjector>(cfg.word, model, cfg.vdd);
  auto rng = std::make_shared<rhw::RandomEngine>(cfg.seed);
  site.set_post_hook(
      [injector, rng](nn::Tensor& t) { injector->apply_to_activations(t, *rng); },
      /*gated=*/true,
      // Seeder: lets evaluation passes pin the bit-error stream
      // (nn::reseed_noise_streams; README "Reproducibility").
      [rng](uint64_t seed) { rng->reseed(seed); });
}

void corrupt_layer_weights(nn::Module& layer, const SramNoiseConfig& cfg,
                           const BitErrorModel& model) {
  BitErrorInjector injector(cfg.word, model, cfg.vdd);
  rhw::RandomEngine rng(cfg.seed);
  for (nn::Param* p : layer.parameters()) {
    if (p->name == "weight") injector.apply_to_weights(p->value, rng);
  }
}

}  // namespace rhw::sram
