#include "sram/hybrid_word.hpp"

#include <stdexcept>

namespace rhw::sram {

std::string HybridWordConfig::ratio_label() const {
  // "H" marks the error-free homogeneous-8T memory (the paper's label for
  // layers without noise injection). All-6T is a real noise configuration
  // and keeps its numeric ratio "0/8".
  if (num_8t == total_bits) return "H";
  return std::to_string(num_8t) + "/" + std::to_string(num_6t());
}

uint32_t HybridWordConfig::six_t_mask() const {
  if (total_bits < 1 || total_bits > 16 || num_8t < 0 || num_8t > total_bits) {
    throw std::invalid_argument("HybridWordConfig: bad bit split");
  }
  const uint32_t all = (1u << total_bits) - 1u;
  const int n6 = num_6t();
  if (n6 == 0) return 0;
  if (msb_protected) {
    // 6T cells hold the low-significance bits.
    return (1u << n6) - 1u;
  }
  // Ablation: 6T cells hold the MSBs.
  return all & ~((1u << num_8t) - 1u);
}

uint32_t HybridWordConfig::eight_t_mask() const {
  const uint32_t all = (1u << total_bits) - 1u;
  return all & ~six_t_mask();
}

double expected_flip_magnitude(const HybridWordConfig& word, double ber6,
                               double ber8) {
  const uint32_t mask6 = word.six_t_mask();
  double acc = 0.0;
  for (int bit = 0; bit < word.total_bits; ++bit) {
    const double p = (mask6 >> bit & 1u) ? ber6 : ber8;
    acc += p * static_cast<double>(1u << bit);
  }
  return acc;
}

double surgical_noise_mu(const HybridWordConfig& word,
                         const BitErrorModel& model, double vdd) {
  const double full_scale =
      static_cast<double>((1u << word.total_bits) - 1u);
  return expected_flip_magnitude(word, model.ber_6t(vdd), model.ber_8t(vdd)) /
         full_scale;
}

}  // namespace rhw::sram
