// Monte-Carlo bit-error injection into quantized words held in hybrid 8T-6T
// memories. Works on real bit patterns: tensors are quantized to 8-bit codes,
// each 6T-cell bit flips independently with the voltage-dependent BER, and the
// corrupted codes are dequantized back.
#pragma once

#include <cstdint>
#include <span>

#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "sram/bit_error_model.hpp"
#include "sram/hybrid_word.hpp"

namespace rhw::sram {

using rhw::Tensor;

class BitErrorInjector {
 public:
  BitErrorInjector(HybridWordConfig word, BitErrorModel model, double vdd);

  // Flips bits of raw codes in place. Each bit position flips with its cell
  // type's BER.
  void corrupt_codes(std::span<uint8_t> codes, rhw::RandomEngine& rng) const;

  // Full activation-memory path: unsigned quantization to total_bits codes,
  // bit corruption, dequantization. Models a post-ReLU activation tensor
  // being written to and read back from the hybrid memory.
  void apply_to_activations(Tensor& t, rhw::RandomEngine& rng) const;

  // Weight-memory path: symmetric signed quantization (two's-complement
  // codes), bit corruption, dequantization.
  void apply_to_weights(Tensor& t, rhw::RandomEngine& rng) const;

  double ber6() const { return ber6_; }
  double ber8() const { return ber8_; }
  const HybridWordConfig& word() const { return word_; }
  double vdd() const { return vdd_; }

  // Empirical mean |perturbation| / full-scale over n Monte-Carlo words;
  // cross-checks the analytic surgical_noise_mu in tests and Fig. 2.
  double measure_mu(int64_t num_words, rhw::RandomEngine& rng) const;

 private:
  HybridWordConfig word_;
  BitErrorModel model_;
  double vdd_;
  double ber6_;
  double ber8_;
};

}  // namespace rhw::sram
