// Noise-aware retraining.
//
// The paper (Sec. III-A) attributes the small clean-accuracy deviation of
// noise-injected DNNs to the regularization effect of the bit errors, and
// notes: "Re-training the bit-error noise injected DNN with clean images can
// improve the CA of the network." This module implements that step: fine-tune
// the model with its noise hooks ACTIVE during the forward pass (the errors
// act as a straight-through stochastic regularizer), so the weights adapt to
// the hybrid memory it will run on.
#pragma once

#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "sram/layer_selector.hpp"

namespace rhw::sram {

struct RetrainConfig {
  int epochs = 2;
  int64_t batch_size = 100;
  float lr = 0.005f;  // fine-tuning rate, well below the training rate
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  uint64_t seed = 23;
};

struct RetrainResult {
  double clean_acc_before = 0.0;  // percent, with noise hooks active
  double clean_acc_after = 0.0;   // percent, with noise hooks active
};

// Fine-tunes `model` in place with the given noise selection installed
// (hooks remain installed on return). Gradients flow through the noisy
// forward activations — exactly how on-device noise-aware training behaves.
RetrainResult retrain_with_noise(models::Model& model,
                                 const data::SynthCifar& data,
                                 const std::vector<SiteChoice>& selection,
                                 double vdd, const RetrainConfig& cfg = {});

}  // namespace rhw::sram
