// Energy and area model for hybrid 8T-6T SRAM activation memories.
//
// The whole point of the hybrid organization (refs. [9]-[11] of the paper) is
// efficiency: 6T cells are ~25-30% smaller than 8T cells, and aggressive
// supply-voltage scaling cuts dynamic access energy quadratically
// (E ~ C * Vdd^2) — at the cost of the 6T bit errors this library turns into
// a defense. This model quantifies that trade so the benches can report the
// energy-robustness frontier alongside the accuracy numbers.
//
// Numbers are calibrated to 22 nm-class SRAM literature at nominal 1.0 V:
// ~1 fJ/bit dynamic read energy for a 6T cell, 8T ~30% higher (longer
// bitlines, extra read port), 8T cell area ~1.3x the 6T cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "models/vgg.hpp"
#include "sram/hybrid_word.hpp"

namespace rhw::sram {

struct SramEnergyParams {
  double nominal_vdd = 1.0;
  double e_read_6t_fj = 1.0;   // per bit access at nominal Vdd
  double e_read_8t_fj = 1.30;
  double area_6t_um2 = 0.050;  // 22 nm-class cell footprints
  double area_8t_um2 = 0.065;
  double leak_6t_nw = 1.0;     // per cell static leakage at nominal Vdd
  double leak_8t_nw = 1.25;
};

class SramEnergyModel {
 public:
  explicit SramEnergyModel(SramEnergyParams params = {}) : params_(params) {}

  // Dynamic access energy per bit (fJ); scales with (Vdd / nominal)^2.
  double bit_read_energy_fj(bool is_8t, double vdd) const;
  // Leakage per cell (nW); scales roughly linearly with Vdd (DIBL-dominated
  // regime approximated linearly over the scaling range of interest).
  double cell_leakage_nw(bool is_8t, double vdd) const;

  // One word access / word of storage under a hybrid configuration.
  double word_read_energy_fj(const HybridWordConfig& word, double vdd) const;
  double word_area_um2(const HybridWordConfig& word) const;
  double word_leakage_nw(const HybridWordConfig& word, double vdd) const;

  const SramEnergyParams& params() const { return params_; }

 private:
  SramEnergyParams params_;
};

// Per-site memory configuration for a whole-model report: every activation
// memory uses `word` at `vdd` (sites without noise injection are homogeneous
// 8T at the same Vdd, captured by HybridWordConfig{.num_8t = 8}).
struct SiteMemorySpec {
  std::string label;
  int64_t words = 0;  // activations stored at this site (one word each)
  HybridWordConfig word;
};

struct MemoryEnergyReport {
  std::vector<SiteMemorySpec> sites;
  double total_read_energy_fj = 0.0;  // one full inference (each site written
                                      // and read once)
  double total_area_um2 = 0.0;
  double total_leakage_nw = 0.0;
  // The same memory implemented entirely in 8T at nominal Vdd (the
  // conservative baseline the hybrid design is sold against).
  double baseline_energy_fj = 0.0;
  double baseline_area_um2 = 0.0;
  double energy_saving_pct() const {
    return baseline_energy_fj > 0
               ? 100.0 * (1.0 - total_read_energy_fj / baseline_energy_fj)
               : 0.0;
  }
  double area_saving_pct() const {
    return baseline_area_um2 > 0
               ? 100.0 * (1.0 - total_area_um2 / baseline_area_um2)
               : 0.0;
  }
};

// Measures each activation-memory site's word count by running one forward
// pass of `model` on `sample_input` with capture hooks, then prices the
// memory under `vdd` with `noisy_sites` (site label -> hybrid word) applied
// and homogeneous 8T elsewhere.
MemoryEnergyReport activation_memory_report(
    models::Model& model, const rhw::Tensor& sample_input, double vdd,
    const std::vector<std::pair<std::string, HybridWordConfig>>& noisy_sites,
    const SramEnergyModel& energy_model = SramEnergyModel());

}  // namespace rhw::sram
