// Hybrid 8T-6T memory word layout and surgical-noise statistics.
//
// An 8-bit word is split between robust 8T cells and error-prone (but
// smaller/cheaper) 6T cells. Significance-driven storage (Srinivasan et al.
// [11]) protects the MSBs in 8T cells; the msb_protected flag allows the
// ablation where the LSBs are protected instead. The paper's ratio notation
// r = #8T/#6T ("3/5" = 3 8T MSBs, 5 6T LSBs).
#pragma once

#include <cstdint>
#include <string>

#include "sram/bit_error_model.hpp"

namespace rhw::sram {

struct HybridWordConfig {
  int total_bits = 8;
  int num_8t = 4;            // number of protected (8T) bits
  bool msb_protected = true; // significance-driven layout (ablation: false)

  int num_6t() const { return total_bits - num_8t; }
  bool homogeneous_8t() const { return num_8t == total_bits; }
  // Paper-style ratio label "#8T/#6T", or "H" for a homogeneous memory.
  std::string ratio_label() const;

  // Bit mask (within the word) of positions implemented with 6T cells.
  uint32_t six_t_mask() const;
  uint32_t eight_t_mask() const;
};

// First-order expected perturbation magnitude of a stored word, in code
// units: sum over bit positions of (flip probability * 2^position). Exact for
// the rare-flip regime the hybrid memories operate in.
double expected_flip_magnitude(const HybridWordConfig& word, double ber6,
                               double ber8);

// Surgical noise mu (Fig. 2): expected perturbation as a fraction of the
// word's full scale (2^total_bits - 1), as a function of the hybrid
// configuration and supply voltage.
double surgical_noise_mu(const HybridWordConfig& word,
                         const BitErrorModel& model, double vdd);

}  // namespace rhw::sram
