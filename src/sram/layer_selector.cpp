#include "sram/layer_selector.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "attacks/fgsm.hpp"

namespace rhw::sram {

namespace {

// Because attack gradients never include the bit-error noise, the adversarial
// images are identical for every hybrid-memory configuration. Crafting them
// once and re-evaluating per configuration turns each sweep point into a
// single forward pass.
data::Dataset craft_adversarial_set(nn::Module& net, const data::Dataset& ds,
                                    const SelectorConfig& cfg) {
  data::Dataset adv;
  adv.num_classes = ds.num_classes;
  adv.images = ds.images;
  adv.labels = ds.labels;
  attacks::FgsmConfig fc;
  fc.epsilon = cfg.epsilon;
  const int64_t stride = ds.images.numel() / std::max<int64_t>(1, ds.size());
  for (int64_t begin = 0; begin < ds.size(); begin += cfg.batch_size) {
    const auto batch = ds.slice(begin, begin + cfg.batch_size);
    const auto advb = attacks::fgsm(net, batch.images, batch.labels, fc);
    std::copy(advb.data(), advb.data() + advb.numel(),
              adv.images.data() + begin * stride);
  }
  return adv;
}

}  // namespace

void clear_all_site_hooks(std::span<const models::ActivationSite> sites) {
  for (const auto& site : sites) site.module->clear_post_hook();
}

void clear_all_site_hooks(models::Model& model) {
  clear_all_site_hooks(std::span<const models::ActivationSite>(model.sites));
}

void apply_selection(std::span<const models::ActivationSite> sites,
                     const std::vector<SiteChoice>& selection, double vdd,
                     uint64_t seed, const BitErrorModel& model_ber) {
  clear_all_site_hooks(sites);
  for (const auto& choice : selection) {
    if (choice.site_index >= sites.size()) {
      throw std::out_of_range("apply_selection: site index " +
                              std::to_string(choice.site_index) +
                              " out of range (" +
                              std::to_string(sites.size()) + " sites)");
    }
    SramNoiseConfig nc;
    nc.word = choice.word;
    nc.vdd = vdd;
    nc.seed = seed ^ (0x9E3779B97F4A7C15ULL * (choice.site_index + 1));
    attach_noise(*sites[choice.site_index].module, nc, model_ber);
  }
}

void apply_selection(models::Model& model,
                     const std::vector<SiteChoice>& selection, double vdd,
                     uint64_t seed, const BitErrorModel& model_ber) {
  apply_selection(std::span<const models::ActivationSite>(model.sites),
                  selection, vdd, seed, model_ber);
}

SelectionResult select_layers(nn::Module& net,
                              std::span<const models::ActivationSite> sites,
                              const data::Dataset& test_set,
                              const SelectorConfig& cfg,
                              const BitErrorModel& model_ber) {
  net.set_training(false);
  clear_all_site_hooks(sites);

  SelectionResult result;
  const auto subset = test_set.head(cfg.eval_count);
  result.baseline_clean_acc = attacks::clean_accuracy(net, subset,
                                                      cfg.batch_size);
  const auto adv_set = craft_adversarial_set(net, subset, cfg);
  result.baseline_adv_acc = attacks::clean_accuracy(net, adv_set,
                                                    cfg.batch_size);

  // Stage 1: per-site sweep over #6T = 1 .. total_bits.
  for (size_t s = 0; s < sites.size(); ++s) {
    SiteChoice best;
    best.site_index = s;
    best.site_label = sites[s].label;
    best.adv_acc = -1.0;
    for (int n6t = 1; n6t <= 8; ++n6t) {
      HybridWordConfig word;
      word.total_bits = 8;
      word.num_8t = 8 - n6t;
      SramNoiseConfig nc;
      nc.word = word;
      nc.vdd = cfg.vdd;
      nc.seed = cfg.seed ^ (0xABCD * (s + 1)) ^ static_cast<uint64_t>(n6t);
      attach_noise(*sites[s].module, nc, model_ber);
      const double acc = attacks::clean_accuracy(net, adv_set, cfg.batch_size);
      sites[s].module->clear_post_hook();
      if (acc > best.adv_acc) {
        best.adv_acc = acc;
        best.word = word;
      }
    }
    result.per_site_best.push_back(best);
  }

  // Stage 2: shortlist sites that beat baseline by > threshold.
  for (const auto& choice : result.per_site_best) {
    if (choice.adv_acc > result.baseline_adv_acc + cfg.improvement_threshold) {
      result.shortlisted.push_back(choice);
    }
  }
  std::sort(result.shortlisted.begin(), result.shortlisted.end(),
            [](const SiteChoice& a, const SiteChoice& b) {
              return a.adv_acc > b.adv_acc;
            });
  if (static_cast<int>(result.shortlisted.size()) > cfg.max_shortlist) {
    result.shortlisted.resize(static_cast<size_t>(cfg.max_shortlist));
  }

  // Stage 3: evaluate every non-empty subset of the shortlist.
  double best_acc = result.baseline_adv_acc;
  std::vector<SiteChoice> best_subset;
  const size_t k = result.shortlisted.size();
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    std::vector<SiteChoice> subset_choices;
    for (size_t i = 0; i < k; ++i) {
      if (mask >> i & 1u) subset_choices.push_back(result.shortlisted[i]);
    }
    apply_selection(sites, subset_choices, cfg.vdd, cfg.seed, model_ber);
    const double acc = attacks::clean_accuracy(net, adv_set, cfg.batch_size);
    clear_all_site_hooks(sites);
    if (acc > best_acc) {
      best_acc = acc;
      best_subset = subset_choices;
    }
  }
  result.selected = best_subset;
  result.final_adv_acc = best_acc;

  if (!result.selected.empty()) {
    apply_selection(sites, result.selected, cfg.vdd, cfg.seed, model_ber);
    result.final_clean_acc =
        attacks::clean_accuracy(net, subset, cfg.batch_size);
    clear_all_site_hooks(sites);
  } else {
    result.final_clean_acc = result.baseline_clean_acc;
  }
  return result;
}

SelectionResult select_layers(models::Model& model,
                              const data::Dataset& test_set,
                              const SelectorConfig& cfg,
                              const BitErrorModel& model_ber) {
  return select_layers(*model.net,
                       std::span<const models::ActivationSite>(model.sites),
                       test_set, cfg, model_ber);
}

namespace {

void write_choices(std::ostream& os, const char* tag,
                   const std::vector<SiteChoice>& choices) {
  for (const auto& c : choices) {
    os << tag << ' ' << c.site_index << ' ' << c.word.num_8t << ' '
       << c.adv_acc << ' ' << c.site_label << '\n';
  }
}

}  // namespace

void save_selection(const std::string& path, const SelectionResult& result) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(path);
  os << "baseline " << result.baseline_clean_acc << ' '
     << result.baseline_adv_acc << ' ' << result.final_adv_acc << ' '
     << result.final_clean_acc << '\n';
  write_choices(os, "best", result.per_site_best);
  write_choices(os, "short", result.shortlisted);
  write_choices(os, "sel", result.selected);
}

bool load_selection(const std::string& path, SelectionResult* result) {
  std::ifstream is(path);
  if (!is) return false;
  SelectionResult out;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "baseline") {
      ls >> out.baseline_clean_acc >> out.baseline_adv_acc >>
          out.final_adv_acc >> out.final_clean_acc;
      if (!ls) return false;
      continue;
    }
    SiteChoice c;
    ls >> c.site_index >> c.word.num_8t >> c.adv_acc >> c.site_label;
    if (!ls) return false;
    if (tag == "best") {
      out.per_site_best.push_back(c);
    } else if (tag == "short") {
      out.shortlisted.push_back(c);
    } else if (tag == "sel") {
      out.selected.push_back(c);
    } else {
      return false;
    }
  }
  *result = std::move(out);
  return true;
}

}  // namespace rhw::sram
