// The Fig. 4 methodology: choose which DNN layers get bit-error noise
// injected into their hybrid activation memories, and with which 8T-6T
// configuration.
//
// Stage 1 (per-site sweep): for every activation-memory site, sweep #6T from
// 1 to total_bits at fixed Vdd, launch a fixed-strength FGSM attack on the
// modified DNN, and keep the configuration with the highest adversarial
// accuracy.
// Stage 2 (shortlist): keep sites whose best configuration beats the baseline
// adversarial accuracy by more than `improvement_threshold` percent.
// Stage 3 (combination): evaluate subsets of the shortlist (each site with
// its best configuration) and select the subset with the highest adversarial
// accuracy.
//
// Throughout, attack gradients never see the bit-error noise (global hook
// gating, see nn/module.hpp).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "attacks/evaluate.hpp"
#include "models/vgg.hpp"
#include "sram/noise_hook.hpp"

namespace rhw::sram {

struct SelectorConfig {
  double vdd = 0.68;
  float epsilon = 0.1f;                // FGSM strength for the sweep
  int64_t eval_count = 256;            // test-subset size for the sweep
  double improvement_threshold = 5.0;  // percent over baseline (paper: 5%)
  int max_shortlist = 6;               // cap before subset enumeration
  int64_t batch_size = 128;
  uint64_t seed = 0x5E1Ec7;
};

struct SiteChoice {
  size_t site_index = 0;
  std::string site_label;
  HybridWordConfig word;
  double adv_acc = 0.0;  // percent, under the sweep attack
};

struct SelectionResult {
  double baseline_clean_acc = 0.0;  // percent, no noise
  double baseline_adv_acc = 0.0;    // percent, no noise
  std::vector<SiteChoice> per_site_best;  // one per site, sweep stage
  std::vector<SiteChoice> shortlisted;    // stage 2 survivors
  std::vector<SiteChoice> selected;       // final combination
  double final_adv_acc = 0.0;   // percent, selected combination installed
  double final_clean_acc = 0.0; // percent, selected combination installed
};

// Runs the methodology on a trained network with an explicit list of
// activation-memory sites (the hardware-backend seam entry point). All hooks
// are cleared on return; call apply_selection to install the chosen
// configuration.
SelectionResult select_layers(nn::Module& net,
                              std::span<const models::ActivationSite> sites,
                              const data::Dataset& test_set,
                              const SelectorConfig& cfg,
                              const BitErrorModel& model_ber = {});

// Model convenience wrapper (uses model.sites).
SelectionResult select_layers(models::Model& model,
                              const data::Dataset& test_set,
                              const SelectorConfig& cfg,
                              const BitErrorModel& model_ber = {});

// Installs noise hooks for the chosen sites (clearing all other site hooks).
void apply_selection(std::span<const models::ActivationSite> sites,
                     const std::vector<SiteChoice>& selection, double vdd,
                     uint64_t seed = 0x5AA0,
                     const BitErrorModel& model_ber = {});
void apply_selection(models::Model& model,
                     const std::vector<SiteChoice>& selection, double vdd,
                     uint64_t seed = 0x5AA0,
                     const BitErrorModel& model_ber = {});

// Clears hooks from every listed site.
void clear_all_site_hooks(std::span<const models::ActivationSite> sites);
void clear_all_site_hooks(models::Model& model);

// Text-file persistence so benches can share one methodology run (the sweep
// is the most expensive part of the Table I/II pipeline).
void save_selection(const std::string& path, const SelectionResult& result);
// Returns false when the file is absent/corrupt.
bool load_selection(const std::string& path, SelectionResult* result);

}  // namespace rhw::sram
