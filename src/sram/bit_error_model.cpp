#include "sram/bit_error_model.hpp"

#include <algorithm>
#include <cmath>

namespace rhw::sram {

namespace {
// Gaussian tail Q(z) = 0.5 * erfc(z / sqrt(2)), clamped away from exact 0/1
// so downstream log-scale plots stay finite.
double q_function(double z) {
  const double q = 0.5 * std::erfc(z / std::sqrt(2.0));
  return std::clamp(q, 1e-15, 0.5);
}
}  // namespace

double BitErrorModel::ber_6t(double vdd) const {
  return q_function(params_.six_t_slope * (vdd - params_.six_t_vcrit));
}

double BitErrorModel::ber_8t(double vdd) const {
  return q_function(params_.eight_t_slope * (vdd - params_.eight_t_vcrit));
}

}  // namespace rhw::sram
