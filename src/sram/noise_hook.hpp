// Attaching hybrid-memory bit-error noise to a network.
//
// Activation variant (the paper's main configuration): a post-forward hook on
// the module whose output occupies the hybrid activation memory. Weight
// variant (the ablation the paper mentions loses to activations): corrupt a
// weight layer's parameters once, as if the weight memory were read through
// erroneous 6T cells.
#pragma once

#include <cstdint>

#include "nn/module.hpp"
#include "sram/bit_error_injector.hpp"

namespace rhw::sram {

struct SramNoiseConfig {
  HybridWordConfig word;
  double vdd = 0.68;
  uint64_t seed = 0x5AA0;
};

// Installs a post-forward hook that corrupts the tensor through the hybrid
// memory (replacing any existing hook). The hook owns its RNG stream (seeded
// from cfg.seed) and registers a seeder, so evaluation passes can pin the
// stream via nn::reseed_noise_streams (README "Reproducibility").
void attach_noise(nn::Module& site, const SramNoiseConfig& cfg,
                  const BitErrorModel& model = {});

// Weight-memory variant: corrupts all "weight" parameters of the layer in
// place (callers clone the model first).
void corrupt_layer_weights(nn::Module& layer, const SramNoiseConfig& cfg,
                           const BitErrorModel& model = {});

}  // namespace rhw::sram
