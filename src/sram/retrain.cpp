#include "sram/retrain.hpp"

#include <algorithm>

#include "attacks/evaluate.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace rhw::sram {

RetrainResult retrain_with_noise(models::Model& model,
                                 const data::SynthCifar& data,
                                 const std::vector<SiteChoice>& selection,
                                 double vdd, const RetrainConfig& cfg) {
  apply_selection(model, selection, vdd, cfg.seed);
  RetrainResult result;
  result.clean_acc_before =
      attacks::clean_accuracy(*model.net, data.test, cfg.batch_size);

  nn::SgdConfig sgd_cfg;
  sgd_cfg.lr = cfg.lr;
  sgd_cfg.momentum = cfg.momentum;
  sgd_cfg.weight_decay = cfg.weight_decay;
  nn::SGD opt(model.net->parameters(), sgd_cfg);
  nn::SoftmaxCrossEntropy loss;
  rhw::RandomEngine rng(cfg.seed);

  model.net->set_training(true);
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto order = data::shuffled_indices(data.train.size(), rng);
    for (int64_t begin = 0; begin < data.train.size();
         begin += cfg.batch_size) {
      const int64_t end =
          std::min<int64_t>(begin + cfg.batch_size, data.train.size());
      std::vector<int64_t> idx(order.begin() + begin, order.begin() + end);
      const auto batch = data.train.gather(idx);
      opt.zero_grad();
      // Hooks are active here: the forward pass sees the bit-error noise and
      // the weights learn to absorb it.
      const Tensor logits = model.net->forward(batch.images);
      (void)loss.forward(logits, batch.labels);
      model.net->backward(loss.backward());
      opt.step();
    }
  }
  model.net->set_training(false);
  result.clean_acc_after =
      attacks::clean_accuracy(*model.net, data.test, cfg.batch_size);
  return result;
}

}  // namespace rhw::sram
