// Software-reference backend: no hardware model at all.
//
// prepare() leaves the network untouched (beyond eval mode), so forward
// passes are bit-exact with the raw module. This is the "grad backend" for
// SH-mode attacks and the Attack-SW baseline, and the control arm of every
// backend-parity test.
#pragma once

#include "hw/backend.hpp"

namespace rhw::hw {

class IdealBackend final : public HardwareBackend {
 public:
  std::string name() const override { return "ideal"; }

  EnergyReport energy_report() const override;
  BackendPtr replicate() const override;

 protected:
  void do_prepare(nn::Module& net,
                  const std::vector<models::ActivationSite>& sites,
                  const data::Dataset* calibration) override;
};

}  // namespace rhw::hw
