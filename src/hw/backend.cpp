#include "hw/backend.hpp"

#include <sstream>
#include <stdexcept>

namespace rhw::hw {

std::string EnergyReport::summary() const {
  std::ostringstream os;
  os << backend << ": " << energy_nj << " nJ, " << area_um2 << " um^2";
  for (const auto& [key, value] : details) {
    os << ", " << key << "=" << value;
  }
  return os.str();
}

void HardwareBackend::prepare(models::Model& model,
                              const data::Dataset* calibration) {
  sites_ = model.sites;
  net_ = model.net.get();
  net_->set_training(false);
  do_prepare(*net_, sites_, calibration);
}

void HardwareBackend::prepare(nn::Module& net,
                              const data::Dataset* calibration) {
  sites_ = derive_activation_sites(net);
  net_ = &net;
  net_->set_training(false);
  do_prepare(*net_, sites_, calibration);
}

nn::Module& HardwareBackend::module() const {
  if (net_ == nullptr) {
    throw std::logic_error("HardwareBackend::module: prepare() not called");
  }
  return *net_;
}

Tensor HardwareBackend::forward(const Tensor& x) { return module().forward(x); }

EnergyReport HardwareBackend::energy_report() const {
  EnergyReport report;
  report.backend = name();
  return report;
}

namespace {

void collect_sites(nn::Module& m, std::vector<models::ActivationSite>& out,
                   int& counter) {
  const auto kids = m.children();
  if (kids.empty()) {
    const std::string t = m.type_name();
    if (t == "ReLU") {
      out.push_back({&m, std::to_string(counter++)});
    } else if (t == "MaxPool2d" || t == "AvgPool2d") {
      out.push_back({&m, std::to_string(counter++) + "(P)"});
    }
    return;
  }
  for (nn::Module* kid : kids) collect_sites(*kid, out, counter);
}

}  // namespace

std::vector<models::ActivationSite> derive_activation_sites(nn::Module& root) {
  std::vector<models::ActivationSite> sites;
  int counter = 0;
  collect_sites(root, sites, counter);
  return sites;
}

}  // namespace rhw::hw
