#include "hw/sram_backend.hpp"

#include <algorithm>

#include "exp/table_printer.hpp"

namespace rhw::hw {

void SramBackend::do_prepare(nn::Module& net,
                             const std::vector<models::ActivationSite>& sites,
                             const data::Dataset* calibration) {
  installed_.clear();
  if (!cfg_.selection.empty()) {
    installed_ = cfg_.selection;
  } else if (calibration != nullptr && calibration->size() > 0) {
    sram::SelectorConfig scfg = cfg_.selector;
    scfg.vdd = cfg_.vdd;
    selection_result_ = sram::select_layers(
        net, std::span<const models::ActivationSite>(sites), *calibration,
        scfg, cfg_.ber);
    installed_ = selection_result_.selected;
  } else {
    const int count =
        std::min<int>(cfg_.default_sites, static_cast<int>(sites.size()));
    for (int s = 0; s < count; ++s) {
      sram::SiteChoice choice;
      choice.site_index = static_cast<size_t>(s);
      choice.site_label = sites[static_cast<size_t>(s)].label;
      choice.word = cfg_.default_word;
      installed_.push_back(choice);
    }
  }
  sram::apply_selection(std::span<const models::ActivationSite>(sites),
                        installed_, cfg_.vdd, cfg_.seed, cfg_.ber);
}

BackendPtr SramBackend::replicate() const {
  SramBackendConfig cfg = cfg_;
  if (!installed_.empty()) cfg.selection = installed_;
  return std::make_unique<SramBackend>(std::move(cfg));
}

EnergyReport SramBackend::energy_report() const {
  EnergyReport report;
  report.backend = name();
  const sram::SramEnergyModel energy;
  sram::HybridWordConfig homogeneous;
  homogeneous.num_8t = homogeneous.total_bits;
  const double baseline_fj =
      energy.word_read_energy_fj(homogeneous, energy.params().nominal_vdd);
  double total_fj = 0.0;
  for (const auto& choice : installed_) {
    const double word_fj = energy.word_read_energy_fj(choice.word, cfg_.vdd);
    total_fj += word_fj;
    report.area_um2 += energy.word_area_um2(choice.word);
    report.details.emplace_back(
        choice.site_label + "@" + choice.word.ratio_label(),
        exp::fmt(word_fj, 3) + " fJ/word (8T@nominal " +
            exp::fmt(baseline_fj, 3) + ")");
  }
  report.energy_nj = total_fj * 1e-6;
  report.details.emplace_back("vdd", exp::fmt(cfg_.vdd, 2) + " V");
  report.details.emplace_back("noisy_sites",
                              std::to_string(installed_.size()));
  return report;
}

}  // namespace rhw::hw
