// String-keyed factory for hardware backends.
//
// Every example, bench, and test selects hardware by config string instead of
// hand-wiring mappers and hooks:
//
//   auto backend = hw::make_backend("xbar:size=32,rmin=10e3");
//   backend->prepare(model);
//
// Spec grammar: "<key>" or "<key>:<opt>=<value>,<opt>=<value>,...". Built-in
// keys and their options:
//
//   ideal   (no options)
//   sram    vdd=<V> seed=<u64> sites=<n> num_8t=<n> eps=<f> eval_count=<n>
//           — sites/num_8t set the fallback configuration; eps/eval_count
//             tune the Fig. 4 selector used when prepare() gets calibration
//             data
//   xbar    size=<n> rows=<n> cols=<n> rmin=<ohm> rmax=<ohm> adc_bits=<n>
//           seed=<u64> variation=<0|1> calibration=<0|1> read_noise=<f>
//           grad_noise=<f> model=<ideal|fast|mna> retain_tiles=<0|1>
//           — rmin without rmax keeps the spec's ON/OFF ratio constant
//
// Unknown keys and unknown options throw std::invalid_argument. Downstream
// code can register additional backends (registry().add) under new keys.
// docs/BACKENDS.md documents every knob with defaults and which paper
// figure/table each configuration reproduces; attacks::AttackRegistry
// (attacks/registry.hpp) is the same seam for the adversary axis and
// defenses::DefenseRegistry (defenses/registry.hpp) for the defense axis —
// defense wrappers compose around any prepared backend (docs/DEFENSES.md).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "hw/backend.hpp"

namespace rhw::hw {

// Options parsed from the spec string: option name -> raw value text. The
// grammar and typed extraction live in core/spec.hpp, shared with
// attacks::AttackRegistry so both seams parse and report errors identically.
using BackendOptions = core::SpecOptions;
using BackendFactory = std::function<BackendPtr(const BackendOptions&)>;

class BackendRegistry {
 public:
  // Process-wide registry, built-ins registered on first use.
  static BackendRegistry& instance();

  // Registers (or replaces) a factory under `key`.
  void add(const std::string& key, BackendFactory factory);
  bool contains(const std::string& key) const;
  std::vector<std::string> keys() const;

  // Parses "<key>[:opt=v,...]" and invokes the factory.
  BackendPtr create(const std::string& spec) const;

 private:
  BackendRegistry();
  std::map<std::string, BackendFactory> factories_;
};

// Shorthand for BackendRegistry::instance().create(spec).
BackendPtr make_backend(const std::string& spec);

}  // namespace rhw::hw
