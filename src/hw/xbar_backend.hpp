// Memristive-crossbar backend: the paper's Sec. III-B substrate behind the
// HardwareBackend seam.
//
// prepare() maps every weight layer onto crossbar tiles (effective-weight
// write-back + ungated ADC/read-noise/gradient hooks, xbar/mapper.hpp) and —
// by default — retains the programmed TiledMatrix grids, so callers can run
// tile-level batched matmul directly (the pooled execution path bench_micro
// measures against serial matvec).
#pragma once

#include "hw/backend.hpp"
#include "xbar/energy_model.hpp"
#include "xbar/mapper.hpp"

namespace rhw::hw {

struct XbarBackendConfig {
  xbar::XbarMapConfig map;
  // Keep the programmed tile grids alive for tile-level batched execution.
  bool retain_tiles = true;
};

class XbarBackend final : public HardwareBackend {
 public:
  explicit XbarBackend(XbarBackendConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "xbar"; }

  // Whole-model analog MVM energy (one inference, every tile read once) and
  // tile silicon area from the xbar energy model.
  EnergyReport energy_report() const override;

  // Mapping is deterministic from the config (cfg.map.seed), so a config
  // copy reproduces the prepared state exactly.
  BackendPtr replicate() const override;

  const xbar::XbarMapReport& map_report() const { return mapped_.report; }
  // One entry per mapped weight layer; .tiles is non-null when retain_tiles.
  const std::vector<xbar::XbarMappedLayer>& mapped_layers() const {
    return mapped_.layers;
  }

  const XbarBackendConfig& config() const { return cfg_; }

 protected:
  void do_prepare(nn::Module& net,
                  const std::vector<models::ActivationSite>& sites,
                  const data::Dataset* calibration) override;

 private:
  XbarBackendConfig cfg_;
  xbar::XbarMapResult mapped_;
};

}  // namespace rhw::hw
