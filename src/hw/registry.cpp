#include "hw/registry.hpp"

#include <sstream>
#include <stdexcept>

#include "core/spec.hpp"
#include "hw/ideal_backend.hpp"
#include "hw/sram_backend.hpp"
#include "hw/xbar_backend.hpp"

namespace rhw::hw {

namespace {

// Typed option extraction with leftover rejection, shared with the attack
// registry (core/spec.hpp). The "backend" domain string keeps the historical
// error-message shape ("backend option rmin: bad number 'abc'").
core::OptionReader reader_for(const std::string& backend,
                              const BackendOptions& opts) {
  return core::OptionReader("backend", backend, opts);
}

BackendPtr make_ideal(const BackendOptions& opts) {
  auto reader = reader_for("ideal", opts);
  reader.finish();
  return std::make_unique<IdealBackend>();
}

BackendPtr make_sram(const BackendOptions& opts) {
  auto reader = reader_for("sram", opts);
  SramBackendConfig cfg;
  cfg.vdd = reader.number("vdd", cfg.vdd);
  cfg.seed = reader.integer("seed", cfg.seed);
  cfg.default_sites = static_cast<int>(
      reader.integer("sites", static_cast<uint64_t>(cfg.default_sites)));
  cfg.default_word.num_8t = static_cast<int>(reader.integer(
      "num_8t", static_cast<uint64_t>(cfg.default_word.num_8t)));
  cfg.selector.epsilon =
      static_cast<float>(reader.number("eps", cfg.selector.epsilon));
  cfg.selector.eval_count = static_cast<int64_t>(reader.integer(
      "eval_count", static_cast<uint64_t>(cfg.selector.eval_count)));
  reader.finish();
  return std::make_unique<SramBackend>(std::move(cfg));
}

BackendPtr make_xbar(const BackendOptions& opts) {
  auto reader = reader_for("xbar", opts);
  XbarBackendConfig cfg;
  auto& spec = cfg.map.spec;
  const uint64_t size = reader.integer("size", 0);
  if (size > 0) {
    spec.rows = static_cast<int64_t>(size);
    spec.cols = static_cast<int64_t>(size);
  }
  spec.rows = static_cast<int64_t>(
      reader.integer("rows", static_cast<uint64_t>(spec.rows)));
  spec.cols = static_cast<int64_t>(
      reader.integer("cols", static_cast<uint64_t>(spec.cols)));
  const double ratio = spec.on_off_ratio();
  const double r_min = reader.number("rmin", spec.r_min);
  if (r_min != spec.r_min) {
    spec.r_min = r_min;
    spec.r_max = r_min * ratio;  // constant ON/OFF unless rmax given
  }
  spec.r_max = reader.number("rmax", spec.r_max);
  cfg.map.adc_bits = static_cast<int>(
      reader.integer("adc_bits", static_cast<uint64_t>(cfg.map.adc_bits)));
  cfg.map.seed = reader.integer("seed", cfg.map.seed);
  cfg.map.process_variation =
      reader.integer("variation", cfg.map.process_variation ? 1 : 0) != 0;
  cfg.map.gain_calibration =
      reader.integer("calibration", cfg.map.gain_calibration ? 1 : 0) != 0;
  cfg.map.read_noise_sigma =
      reader.number("read_noise", cfg.map.read_noise_sigma);
  cfg.map.grad_noise_scale =
      reader.number("grad_noise", cfg.map.grad_noise_scale);
  cfg.retain_tiles = reader.integer("retain_tiles", 1) != 0;
  const std::string circuit = reader.text("model", "fast");
  if (circuit == "ideal") {
    cfg.map.model = xbar::CircuitModel::kIdeal;
  } else if (circuit == "fast") {
    cfg.map.model = xbar::CircuitModel::kFastApprox;
  } else if (circuit == "mna") {
    cfg.map.model = xbar::CircuitModel::kExactMna;
  } else {
    throw std::invalid_argument("backend xbar: unknown circuit model '" +
                                circuit + "' (ideal|fast|mna)");
  }
  reader.finish();
  return std::make_unique<XbarBackend>(cfg);
}

}  // namespace

BackendRegistry::BackendRegistry() {
  factories_["ideal"] = make_ideal;
  factories_["sram"] = make_sram;
  factories_["xbar"] = make_xbar;
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::add(const std::string& key, BackendFactory factory) {
  factories_[key] = std::move(factory);
}

bool BackendRegistry::contains(const std::string& key) const {
  return factories_.count(key) > 0;
}

std::vector<std::string> BackendRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, factory] : factories_) out.push_back(key);
  return out;
}

BackendPtr BackendRegistry::create(const std::string& spec) const {
  const core::ParsedSpec parsed = core::parse_spec("backend", spec);
  const auto it = factories_.find(parsed.key);
  if (it == factories_.end()) {
    std::ostringstream os;
    os << "unknown hardware backend '" << parsed.key << "'; registered:";
    for (const auto& [name, factory] : factories_) os << ' ' << name;
    throw std::invalid_argument(os.str());
  }
  try {
    return it->second(parsed.options);
  } catch (const std::invalid_argument& e) {
    // Factories report the offending option key/value; add the full spec so
    // errors surfacing far from the call site stay actionable.
    throw std::invalid_argument("backend spec '" + spec + "': " + e.what());
  }
}

BackendPtr make_backend(const std::string& spec) {
  return BackendRegistry::instance().create(spec);
}

}  // namespace rhw::hw
