#include "hw/ideal_backend.hpp"

namespace rhw::hw {

void IdealBackend::do_prepare(nn::Module& net,
                              const std::vector<models::ActivationSite>& sites,
                              const data::Dataset* calibration) {
  (void)net;
  (void)sites;
  (void)calibration;
}

BackendPtr IdealBackend::replicate() const {
  return std::make_unique<IdealBackend>();
}

EnergyReport IdealBackend::energy_report() const {
  EnergyReport report;
  report.backend = name();
  report.details.emplace_back("note", "software reference, not priced");
  return report;
}

}  // namespace rhw::hw
