// The hardware-backend seam: one stable interface, many swappable noisy
// inference substrates.
//
// The paper evaluates the *same* trained networks under two hardware
// substrates — hybrid 8T-6T SRAM activation memories and memristive
// crossbars. A HardwareBackend takes a trained network, installs its hardware
// model onto it in place (prepare), and then serves batched forward passes
// plus an energy/area estimate. Attack harnesses select a *grad backend* and
// an *eval backend*; the paper's attack modes fall out of that pairing:
//
//   Attack-SW: grad = eval = ideal
//   SH:        grad = ideal,   eval = sram/xbar
//   HH:        grad = eval = sram/xbar
//
// Concrete backends: IdealBackend (software reference), SramBackend
// (bit-error noise hooks + Fig. 4 layer selection), XbarBackend (crossbar
// mapper + tile-level batched execution). String-keyed construction lives in
// hw/registry.hpp.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset.hpp"
#include "models/vgg.hpp"
#include "nn/module.hpp"

namespace rhw::hw {

// Energy/area estimate for one prepared backend. Absolute numbers come from
// the sram/xbar energy models; `details` carries backend-specific line items
// as printable key/value pairs.
struct EnergyReport {
  std::string backend;
  double energy_nj = 0.0;  // dynamic energy estimate (see each backend's doc)
  double area_um2 = 0.0;
  std::vector<std::pair<std::string, std::string>> details;

  // One-line "backend: energy, area, k=v, ..." rendering for logs/tables.
  std::string summary() const;
};

class HardwareBackend;
using BackendPtr = std::unique_ptr<HardwareBackend>;

class HardwareBackend {
 public:
  virtual ~HardwareBackend() = default;

  // Stable key of this backend kind ("ideal", "sram", "xbar") — matches the
  // registry key it was created under.
  virtual std::string name() const = 0;

  // Installs the hardware model onto the network in place (noise hooks,
  // crossbar weight mapping) and puts it in eval mode. The Model overload
  // uses the paper's activation-memory site list; the bare-module overload
  // derives sites from the module tree (derive_activation_sites). The
  // optional calibration set feeds backends whose configuration is
  // data-driven (the SRAM layer-selection methodology). Call once per
  // network.
  void prepare(models::Model& model,
               const data::Dataset* calibration = nullptr);
  void prepare(nn::Module& net, const data::Dataset* calibration = nullptr);

  bool prepared() const { return net_ != nullptr; }
  // The prepared hardware network — what attacks run their forward/backward
  // passes through. Throws std::logic_error before prepare().
  nn::Module& module() const;

  // Batched inference through the prepared hardware model: module().forward
  // with this substrate's noise hooks active. Backends may override to route
  // through retained hardware state (XbarBackend's programmed TiledMatrix
  // grids batch tile blocks across the thread pool).
  virtual Tensor forward(const Tensor& x);

  // Energy/area estimate of the prepared configuration (sram/xbar energy
  // models); the base implementation returns an empty report carrying only
  // name(). Valid after prepare().
  virtual EnergyReport energy_report() const;

  // A fresh, unprepared backend of the same kind and configuration whose
  // prepare() will reproduce this backend's prepared state bit-for-bit on an
  // identical network clone — without re-running data-driven calibration
  // (e.g. SramBackend carries its installed site selection over). This is
  // how exp::SweepEngine stamps out per-lane replicas after paying for one
  // full prepare, and how serve::Server builds its worker-lane replicas.
  // Returns null when the backend cannot replicate itself; callers then
  // rebuild from the original spec/factory.
  virtual BackendPtr replicate() const { return nullptr; }

 protected:
  virtual void do_prepare(nn::Module& net,
                          const std::vector<models::ActivationSite>& sites,
                          const data::Dataset* calibration) = 0;

  nn::Module* net_ = nullptr;
  std::vector<models::ActivationSite> sites_;
};

// Best-effort reconstruction of activation-memory sites from a bare module
// tree: the output of every ReLU and pooling layer, numbered in execution
// order ("(P)" suffix on pooling sites, mirroring the paper's labels). Model
// builders (models/vgg.cpp, models/resnet.cpp) record the authoritative
// lists; this heuristic unlocks site-based backends for hand-built modules.
std::vector<models::ActivationSite> derive_activation_sites(nn::Module& root);

}  // namespace rhw::hw
