#include "hw/xbar_backend.hpp"

#include "exp/table_printer.hpp"

namespace rhw::hw {

void XbarBackend::do_prepare(nn::Module& net,
                             const std::vector<models::ActivationSite>& sites,
                             const data::Dataset* calibration) {
  (void)sites;        // crossbars live in the weight layers, not the
  (void)calibration;  // activation memories
  mapped_ = xbar::map_onto_crossbars_detailed(net, cfg_.map, cfg_.retain_tiles);
}

BackendPtr XbarBackend::replicate() const {
  return std::make_unique<XbarBackend>(cfg_);
}

EnergyReport XbarBackend::energy_report() const {
  EnergyReport report;
  report.backend = name();
  const xbar::XbarEnergyModel energy;
  const auto& spec = cfg_.map.spec;
  report.energy_nj = energy.model_mvm_energy_nj(mapped_.report.num_tiles, spec,
                                                cfg_.map.adc_bits);
  report.area_um2 =
      static_cast<double>(mapped_.report.num_tiles) * energy.tile_area_um2(spec);
  report.details.emplace_back("tiles",
                              std::to_string(mapped_.report.num_tiles));
  report.details.emplace_back(
      "tile", std::to_string(spec.rows) + "x" + std::to_string(spec.cols));
  report.details.emplace_back("adc_bits", std::to_string(cfg_.map.adc_bits));
  report.details.emplace_back(
      "mean_weight_err", exp::fmt(mapped_.report.mean_rel_weight_error, 4));
  return report;
}

}  // namespace rhw::hw
