// Hybrid 8T-6T SRAM backend: the paper's Sec. III-A substrate behind the
// HardwareBackend seam.
//
// prepare() installs bit-error noise hooks on activation-memory sites. The
// configuration resolves in priority order:
//   1. an explicit `selection` (site index + hybrid word per site);
//   2. the Fig. 4 layer-selection methodology, when a calibration set is
//      passed to prepare();
//   3. a fixed fallback: `default_word` on the first `default_sites` sites.
// Hooks are gated, so attack gradients never see the noise (paper rule).
#pragma once

#include "hw/backend.hpp"
#include "sram/energy_model.hpp"
#include "sram/layer_selector.hpp"

namespace rhw::hw {

struct SramBackendConfig {
  double vdd = 0.68;
  uint64_t seed = 0x5AA0;
  sram::BitErrorModel ber;
  // Mode 1: explicit site choices (site_index into the model's site list).
  std::vector<sram::SiteChoice> selection;
  // Mode 2: methodology knobs, used when prepare() receives calibration data.
  sram::SelectorConfig selector;
  // Mode 3: fallback hybrid word on the first default_sites sites.
  int default_sites = 2;
  sram::HybridWordConfig default_word;
};

class SramBackend final : public HardwareBackend {
 public:
  explicit SramBackend(SramBackendConfig cfg = {}) : cfg_(std::move(cfg)) {}

  std::string name() const override { return "sram"; }

  // Per-word access energy/area across the noisy sites, against the
  // homogeneous-8T-at-nominal-Vdd baseline. energy_nj is the summed per-word
  // read energy of the noisy sites (word counts depend on the workload; see
  // sram::activation_memory_report for a full-model account).
  EnergyReport energy_report() const override;

  // Carries the installed site selection into the replica's config, so
  // replica prepare() skips the (expensive, calibration-driven) selector and
  // installs identical hooks.
  BackendPtr replicate() const override;

  // The site choices actually installed by prepare().
  const std::vector<sram::SiteChoice>& selection() const { return installed_; }
  // Full methodology output; only populated when prepare() ran the selector
  // (mode 2).
  const sram::SelectionResult& selection_result() const {
    return selection_result_;
  }

  const SramBackendConfig& config() const { return cfg_; }

 protected:
  void do_prepare(nn::Module& net,
                  const std::vector<models::ActivationSite>& sites,
                  const data::Dataset* calibration) override;

 private:
  SramBackendConfig cfg_;
  std::vector<sram::SiteChoice> installed_;
  sram::SelectionResult selection_result_;
};

}  // namespace rhw::hw
