// String-keyed factory for datasets — the sixth seam.
//
// Every experiment panel names its data by config string instead of
// hand-wiring generator calls:
//
//   const data::SynthCifar& ds = data::load_dataset("cifar10:dir=data/cifar");
//
// Spec grammar: "<key>" or "<key>:<opt>=<value>,..." — the same core/spec
// grammar and token-naming error contract as the hardware / attack / defense /
// engine / experiment registries. Built-in keys and their options:
//
//   synth-c10    (no options) — the paper's CIFAR-10 stand-in
//   synth-c100   (no options) — the paper's CIFAR-100 stand-in
//   tiny         classes=<n> train=<n> test=<n> size=<px>
//                — the CI-sized generator preset
//   synth_cifar  classes=<n> train=<n> test=<n> size=<px> channels=<n>
//                grid=<n> amp=<f> noise=<f> nuisance=<f> jitter=<n>
//                seed=<u64> — today's generator with every knob exposed
//   cifar10      dir=<path> — real CIFAR-10 binary batches
//                (data_batch_*.bin / test_batch.bin, 3073-byte records)
//   mnist        dir=<path> — real MNIST idx files (train-images-idx3-ubyte
//                et al., magic/size checked)
//
// Any base spec composes with the corruption wrapper grammar
//
//   <base>+corrupt:kind=<k>,sev=<1..5>[,seed=<u64>]
//   kind = gauss_noise | shot | blur | fog | contrast
//
// which applies a procedural, seed-deterministic CIFAR-10-C-style corruption
// to the *test* split (the train split stays clean: corruptions model
// distribution shift at inference time). Same spec + seed ⇒ bitwise-equal
// tensors.
//
// Provider construction is cheap and filesystem-free — a typo'd key or knob
// fails at validation time with the seam's error contract; `load()` does the
// actual generation or file I/O. `load_dataset` adds a process-wide
// deterministic cache keyed by the canonical spec so repeated panels (and
// repeated presets in one process) share one in-memory copy.
//
// Unknown keys and unknown options throw std::invalid_argument. Downstream
// code can register additional datasets (DatasetRegistry::add) under new
// keys. docs/DATASETS.md documents every key, knob and the corruption
// grammar; parity between that doc and this registry is CI-enforced
// (tools/rhw_lint.cpp), like the other five seams.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/spec.hpp"
#include "data/synth_cifar.hpp"

namespace rhw::data {

// A named, loadable train/test pair. Construction validates the spec;
// load() produces the data (deterministically — same provider config,
// same bits).
class DatasetProvider {
 public:
  virtual ~DatasetProvider() = default;
  // Cache/display tag ("synth-c10", "tiny-c10", "cifar10"); the corruption
  // wrapper appends "+<kind><sev>".
  virtual std::string tag() const = 0;
  virtual SynthCifar load() const = 0;
};

using DatasetPtr = std::unique_ptr<DatasetProvider>;
using DatasetOptions = core::SpecOptions;
using DatasetFactory = std::function<DatasetPtr(const DatasetOptions&)>;

class DatasetRegistry {
 public:
  // Process-wide registry, built-ins registered on first use.
  static DatasetRegistry& instance();

  // Registers (or replaces) a factory under `key`.
  void add(const std::string& key, DatasetFactory factory);
  bool contains(const std::string& key) const;
  std::vector<std::string> keys() const;

  // Parses "<key>[:opt=v,...][+corrupt:...]" and invokes the factory
  // (wrapping it in the corruption provider when the spec asks for it).
  DatasetPtr create(const std::string& spec) const;

 private:
  DatasetRegistry();
  std::map<std::string, DatasetFactory> factories_;
};

// Shorthand for DatasetRegistry::instance().create(spec).
DatasetPtr make_dataset_provider(const std::string& spec);

// Loads through a process-wide cache keyed by canonical spec: the first call
// per spec generates/reads the data, later calls return the same in-memory
// copy. Deterministic — cache hit or miss, the bits are identical.
const SynthCifar& load_dataset(const std::string& spec);

// Splits "<base>+corrupt:..." at the wrapper seam. The separator is the
// first '+' followed by a lowercase letter or '_' — the same rule backend
// arms use to split hw from defense, so numeric '+' inside option values
// (e.g. seed=1e+5) never splits. Returns {spec, ""} when unwrapped.
std::pair<std::string, std::string> split_corrupt_spec(const std::string& spec);

// Canonical form: key + sorted options for base and wrapper alike, so
// differently-ordered spellings of one dataset share a cache entry and an
// artifact stamp.
std::string canonical_dataset_spec(const std::string& spec);

}  // namespace rhw::data
