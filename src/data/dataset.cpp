#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace rhw::data {

Dataset Dataset::slice(int64_t begin, int64_t end) const {
  const int64_t n = size();
  // begin must land inside the dataset; end clamps to the size because the
  // batch loops everywhere ask for [i, i+batch) on the final partial batch.
  if (begin < 0 || begin > n || end < begin) {
    throw std::out_of_range("Dataset::slice: range [" + std::to_string(begin) +
                            ", " + std::to_string(end) + ") invalid for " +
                            std::to_string(n) + " sample(s)");
  }
  end = std::min(end, n);
  std::vector<int64_t> idx(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) idx[static_cast<size_t>(i - begin)] = i;
  return gather(idx);
}

Dataset Dataset::gather(const std::vector<int64_t>& indices) const {
  if (indices.empty()) {
    // An empty gather (and so an empty slice, including of an empty or
    // default-constructed dataset) is a valid empty batch, not an error.
    Dataset out;
    out.num_classes = num_classes;
    if (images.rank() == 4) {
      out.images = Tensor({0, images.dim(1), images.dim(2), images.dim(3)});
    }
    return out;
  }
  if (images.rank() != 4) {
    throw std::invalid_argument(
        "Dataset::gather: rank-4 images required (got rank " +
        std::to_string(images.rank()) + ")");
  }
  const int64_t c = images.dim(1), h = images.dim(2), w = images.dim(3);
  const int64_t stride = c * h * w;
  Dataset out;
  out.num_classes = num_classes;
  out.images = Tensor({static_cast<int64_t>(indices.size()), c, h, w});
  out.labels.resize(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t src = indices[i];
    if (src < 0 || src >= size()) {
      throw std::out_of_range("Dataset::gather: index " + std::to_string(src) +
                              " out of range for " + std::to_string(size()) +
                              " sample(s)");
    }
    std::copy(images.data() + src * stride, images.data() + (src + 1) * stride,
              out.images.data() + static_cast<int64_t>(i) * stride);
    out.labels[i] = labels[static_cast<size_t>(src)];
  }
  return out;
}

Dataset Dataset::head(int64_t n) const {
  // Clamped by design: eval subsets ask for "at most n" (e.g. serve_smoke's
  // eval_count=64 over an 8-image tiny test set).
  return slice(0, std::clamp<int64_t>(n, 0, size()));
}

std::vector<int64_t> shuffled_indices(int64_t n, rhw::RandomEngine& rng) {
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t j = rng.uniform_int(0, i);
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  return idx;
}

}  // namespace rhw::data
