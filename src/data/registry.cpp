#include "data/registry.hpp"

#include <cctype>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "data/corruptions.hpp"
#include "data/loaders.hpp"

namespace rhw::data {

namespace {

// Typed option extraction with leftover rejection, shared with the other
// five seams (core/spec.hpp). The "dataset" domain string keeps the error
// shape ("dataset option classes: bad number 'abc'").
core::OptionReader reader_for(const std::string& dataset,
                              const DatasetOptions& opts) {
  return core::OptionReader("dataset", dataset, opts);
}

// -- generator-backed providers ----------------------------------------------

class SynthProvider : public DatasetProvider {
 public:
  SynthProvider(std::string tag, SynthCifarConfig cfg)
      : tag_(std::move(tag)), cfg_(cfg) {}
  std::string tag() const override { return tag_; }
  SynthCifar load() const override { return make_synth_cifar(cfg_); }

 private:
  std::string tag_;
  SynthCifarConfig cfg_;
};

DatasetPtr make_synth_c10(const DatasetOptions& opts) {
  reader_for("synth-c10", opts).finish();  // the paper presets take no knobs
  return std::make_unique<SynthProvider>("synth-c10", synth_c10_config());
}

DatasetPtr make_synth_c100(const DatasetOptions& opts) {
  reader_for("synth-c100", opts).finish();
  return std::make_unique<SynthProvider>("synth-c100", synth_c100_config());
}

// Shared geometry knobs (tiny and synth_cifar expose the same four).
void read_geometry(core::OptionReader& reader, SynthCifarConfig& cfg) {
  cfg.num_classes = static_cast<int64_t>(
      reader.integer("classes", static_cast<uint64_t>(cfg.num_classes)));
  cfg.train_per_class = static_cast<int64_t>(
      reader.integer("train", static_cast<uint64_t>(cfg.train_per_class)));
  cfg.test_per_class = static_cast<int64_t>(
      reader.integer("test", static_cast<uint64_t>(cfg.test_per_class)));
  cfg.image_size = static_cast<int64_t>(
      reader.integer("size", static_cast<uint64_t>(cfg.image_size)));
}

void check_geometry(const std::string& key, const SynthCifarConfig& cfg) {
  if (cfg.num_classes < 2 || cfg.train_per_class < 1 ||
      cfg.test_per_class < 1 || cfg.image_size < 8) {
    throw std::invalid_argument("dataset " + key +
                                ": degenerate dataset configuration");
  }
}

DatasetPtr make_tiny(const DatasetOptions& opts) {
  auto reader = reader_for("tiny", opts);
  SynthCifarConfig cfg;
  cfg.num_classes = 10;
  cfg.train_per_class = 100;
  cfg.test_per_class = 25;
  cfg.image_size = 16;
  read_geometry(reader, cfg);
  reader.finish();
  check_geometry("tiny", cfg);
  return std::make_unique<SynthProvider>(
      "tiny-c" + std::to_string(cfg.num_classes), cfg);
}

// Today's generator with every knob exposed.
DatasetPtr make_synth_cifar_provider(const DatasetOptions& opts) {
  auto reader = reader_for("synth_cifar", opts);
  SynthCifarConfig cfg;
  read_geometry(reader, cfg);
  cfg.channels = static_cast<int64_t>(
      reader.integer("channels", static_cast<uint64_t>(cfg.channels)));
  cfg.coarse_grid = static_cast<int64_t>(
      reader.integer("grid", static_cast<uint64_t>(cfg.coarse_grid)));
  cfg.template_amp =
      static_cast<float>(reader.number("amp", cfg.template_amp));
  cfg.noise_std = static_cast<float>(reader.number("noise", cfg.noise_std));
  cfg.nuisance_amp =
      static_cast<float>(reader.number("nuisance", cfg.nuisance_amp));
  cfg.jitter = static_cast<int64_t>(
      reader.integer("jitter", static_cast<uint64_t>(cfg.jitter)));
  cfg.seed = reader.integer("seed", cfg.seed);
  reader.finish();
  check_geometry("synth_cifar", cfg);
  if (cfg.channels < 1 || cfg.coarse_grid < 2) {
    throw std::invalid_argument(
        "dataset synth_cifar: degenerate dataset configuration");
  }
  return std::make_unique<SynthProvider>(
      "synth_cifar-c" + std::to_string(cfg.num_classes), cfg);
}

// -- file-backed providers ----------------------------------------------------
// Construction only records the directory; load() opens and validates the
// files, so specs with dir= paths stay cheap to validate.

class Cifar10Provider : public DatasetProvider {
 public:
  explicit Cifar10Provider(std::string dir) : dir_(std::move(dir)) {}
  std::string tag() const override { return "cifar10"; }
  SynthCifar load() const override { return load_cifar10_dir(dir_); }

 private:
  std::string dir_;
};

class MnistProvider : public DatasetProvider {
 public:
  explicit MnistProvider(std::string dir) : dir_(std::move(dir)) {}
  std::string tag() const override { return "mnist"; }
  SynthCifar load() const override { return load_mnist_dir(dir_); }

 private:
  std::string dir_;
};

DatasetPtr make_cifar10(const DatasetOptions& opts) {
  auto reader = reader_for("cifar10", opts);
  const std::string dir = reader.text("dir", "data/cifar-10-batches-bin");
  reader.finish();
  return std::make_unique<Cifar10Provider>(dir);
}

DatasetPtr make_mnist(const DatasetOptions& opts) {
  auto reader = reader_for("mnist", opts);
  const std::string dir = reader.text("dir", "data/mnist");
  reader.finish();
  return std::make_unique<MnistProvider>(dir);
}

// -- corruption wrapper --------------------------------------------------------

class CorruptProvider : public DatasetProvider {
 public:
  CorruptProvider(DatasetPtr base, CorruptionConfig cfg)
      : base_(std::move(base)), cfg_(std::move(cfg)) {}
  std::string tag() const override {
    return base_->tag() + "+" + cfg_.kind + std::to_string(cfg_.severity);
  }
  SynthCifar load() const override {
    SynthCifar out = base_->load();
    // Only the test split is corrupted: the suite models distribution shift
    // at inference time (CIFAR-10-C style), so training data stays clean and
    // train=zoo models remain shareable with the clean variant.
    out.test = corrupt_dataset(out.test, cfg_);
    return out;
  }

 private:
  DatasetPtr base_;
  CorruptionConfig cfg_;
};

CorruptionConfig parse_corrupt_wrapper(const std::string& wrapper) {
  const core::ParsedSpec parsed = core::parse_spec("dataset", wrapper);
  if (parsed.key != "corrupt") {
    throw std::invalid_argument("unknown dataset wrapper '" + parsed.key +
                                "' (only '+corrupt:kind=...,sev=...')");
  }
  auto reader = reader_for("corrupt", parsed.options);
  CorruptionConfig cfg;
  cfg.kind = reader.text("kind", "");
  cfg.severity = static_cast<int>(
      reader.integer("sev", static_cast<uint64_t>(cfg.severity)));
  cfg.seed = reader.integer("seed", cfg.seed);
  reader.finish();
  if (cfg.kind.empty()) {
    throw std::invalid_argument(
        "dataset corrupt: missing kind= (gauss_noise|shot|blur|fog|contrast)");
  }
  // Validate kind/sev now — the wrapper must fail at spec time, not at load.
  (void)corrupt_dataset(Dataset{}, cfg);
  return cfg;
}

}  // namespace

DatasetRegistry::DatasetRegistry() {
  factories_["synth-c10"] = make_synth_c10;
  factories_["synth-c100"] = make_synth_c100;
  factories_["tiny"] = make_tiny;
  factories_["synth_cifar"] = make_synth_cifar_provider;
  factories_["cifar10"] = make_cifar10;
  factories_["mnist"] = make_mnist;
}

DatasetRegistry& DatasetRegistry::instance() {
  static DatasetRegistry registry;
  return registry;
}

void DatasetRegistry::add(const std::string& key, DatasetFactory factory) {
  factories_[key] = std::move(factory);
}

bool DatasetRegistry::contains(const std::string& key) const {
  return factories_.count(key) > 0;
}

std::vector<std::string> DatasetRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, factory] : factories_) out.push_back(key);
  return out;
}

DatasetPtr DatasetRegistry::create(const std::string& spec) const {
  const auto [base_spec, wrapper] = split_corrupt_spec(spec);
  const core::ParsedSpec parsed = core::parse_spec("dataset", base_spec);
  const auto it = factories_.find(parsed.key);
  if (it == factories_.end()) {
    std::ostringstream os;
    os << "unknown dataset '" << parsed.key << "'; registered:";
    for (const auto& [name, factory] : factories_) os << ' ' << name;
    throw std::invalid_argument(os.str());
  }
  try {
    DatasetPtr provider = it->second(parsed.options);
    if (!wrapper.empty()) {
      provider = std::make_unique<CorruptProvider>(
          std::move(provider), parse_corrupt_wrapper(wrapper));
    }
    return provider;
  } catch (const std::invalid_argument& e) {
    // Factories report the offending option key/value; add the full spec so
    // errors surfacing far from the call site stay actionable.
    throw std::invalid_argument("dataset spec '" + spec + "': " + e.what());
  }
}

DatasetPtr make_dataset_provider(const std::string& spec) {
  return DatasetRegistry::instance().create(spec);
}

const SynthCifar& load_dataset(const std::string& spec) {
  const DatasetPtr provider = make_dataset_provider(spec);
  const std::string key = canonical_dataset_spec(spec);
  // The cache is keyed by canonical spec, so spelling variants share one
  // deterministic in-memory copy. Guarded for the TSan lanes even though
  // panels load on the driver thread today.
  static std::mutex mu;
  static std::map<std::string, SynthCifar>& cache =
      *new std::map<std::string, SynthCifar>();  // leaked: process-lifetime
  const std::lock_guard<std::mutex> lock(mu);
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  return cache.emplace(key, provider->load()).first->second;
}

std::pair<std::string, std::string> split_corrupt_spec(
    const std::string& spec) {
  // Same rule as backend arms' hw+defense split: '+' starts a wrapper only
  // when followed by a lowercase letter or '_' (so 1e+5 stays numeric).
  for (size_t i = 0; i < spec.size(); ++i) {
    if (spec[i] != '+') continue;
    if (i + 1 < spec.size() &&
        (std::islower(static_cast<unsigned char>(spec[i + 1])) ||
         spec[i + 1] == '_')) {
      return {spec.substr(0, i), spec.substr(i + 1)};
    }
  }
  return {spec, std::string()};
}

std::string canonical_dataset_spec(const std::string& spec) {
  const auto [base_spec, wrapper] = split_corrupt_spec(spec);
  std::string out = core::canonical_spec("dataset", base_spec);
  if (!wrapper.empty()) {
    out += "+" + core::canonical_spec("dataset", wrapper);
  }
  return out;
}

}  // namespace rhw::data
