#include "data/loaders.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "core/tensor.hpp"

namespace fs = std::filesystem;

namespace rhw::data {

namespace {

constexpr int64_t kCifarChannels = 3;
constexpr int64_t kCifarSize = 32;
constexpr int64_t kCifarClasses = 10;
constexpr int64_t kCifarRecordBytes =
    1 + kCifarChannels * kCifarSize * kCifarSize;  // label + 3072 pixels

std::vector<uint8_t> read_bytes(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("dataset loader: cannot open " + path.string());
  }
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(is),
                              std::istreambuf_iterator<char>());
}

// Appends the records of one CIFAR-10 batch file after validating that the
// file is a whole number of 3073-byte records with labels in [0, 10).
void append_cifar_batch(const fs::path& path, std::vector<float>& pixels,
                        std::vector<int64_t>& labels) {
  const std::vector<uint8_t> bytes = read_bytes(path);
  if (bytes.empty() || bytes.size() % kCifarRecordBytes != 0) {
    throw std::runtime_error(
        "dataset loader: " + path.string() + ": " +
        std::to_string(bytes.size()) + " bytes is not a whole number of " +
        std::to_string(kCifarRecordBytes) + "-byte CIFAR-10 records");
  }
  const size_t records = bytes.size() / kCifarRecordBytes;
  pixels.reserve(pixels.size() + records * (kCifarRecordBytes - 1));
  for (size_t r = 0; r < records; ++r) {
    const uint8_t* rec = bytes.data() + r * kCifarRecordBytes;
    if (rec[0] >= kCifarClasses) {
      throw std::runtime_error("dataset loader: " + path.string() +
                               ": record " + std::to_string(r) + " label " +
                               std::to_string(rec[0]) + " out of range [0, " +
                               std::to_string(kCifarClasses) + ")");
    }
    labels.push_back(rec[0]);
    for (int64_t i = 1; i < kCifarRecordBytes; ++i) {
      pixels.push_back(static_cast<float>(rec[i]) / 255.0f);
    }
  }
}

Dataset cifar_dataset(std::vector<float> pixels, std::vector<int64_t> labels) {
  Dataset out;
  out.num_classes = kCifarClasses;
  out.images = Tensor({static_cast<int64_t>(labels.size()), kCifarChannels,
                       kCifarSize, kCifarSize});
  std::copy(pixels.begin(), pixels.end(), out.images.data());
  out.labels = std::move(labels);
  return out;
}

uint32_t read_be32(const std::vector<uint8_t>& bytes, size_t at,
                   const fs::path& path) {
  if (at + 4 > bytes.size()) {
    throw std::runtime_error("dataset loader: " + path.string() +
                             ": truncated idx header");
  }
  return (static_cast<uint32_t>(bytes[at]) << 24) |
         (static_cast<uint32_t>(bytes[at + 1]) << 16) |
         (static_cast<uint32_t>(bytes[at + 2]) << 8) |
         static_cast<uint32_t>(bytes[at + 3]);
}

// One MNIST idx split: the images file (magic 0x803, [count, rows, cols])
// plus the labels file (magic 0x801, [count]); counts must agree and every
// byte the headers promise must be present.
Dataset load_idx_split(const fs::path& images_path, const fs::path& labels_path,
                       int64_t num_classes) {
  const std::vector<uint8_t> img = read_bytes(images_path);
  const uint32_t img_magic = read_be32(img, 0, images_path);
  if (img_magic != 0x00000803u) {
    throw std::runtime_error("dataset loader: " + images_path.string() +
                             ": bad idx magic " + std::to_string(img_magic) +
                             " (expected 2051 for an image file)");
  }
  const uint32_t count = read_be32(img, 4, images_path);
  const uint32_t rows = read_be32(img, 8, images_path);
  const uint32_t cols = read_be32(img, 12, images_path);
  const size_t want = 16 + static_cast<size_t>(count) * rows * cols;
  if (img.size() != want) {
    throw std::runtime_error(
        "dataset loader: " + images_path.string() + ": " +
        std::to_string(img.size()) + " bytes but header promises " +
        std::to_string(want) + " (" + std::to_string(count) + " x " +
        std::to_string(rows) + " x " + std::to_string(cols) + ")");
  }

  const std::vector<uint8_t> lab = read_bytes(labels_path);
  const uint32_t lab_magic = read_be32(lab, 0, labels_path);
  if (lab_magic != 0x00000801u) {
    throw std::runtime_error("dataset loader: " + labels_path.string() +
                             ": bad idx magic " + std::to_string(lab_magic) +
                             " (expected 2049 for a label file)");
  }
  const uint32_t lab_count = read_be32(lab, 4, labels_path);
  if (lab_count != count) {
    throw std::runtime_error("dataset loader: " + labels_path.string() +
                             ": " + std::to_string(lab_count) +
                             " labels for " + std::to_string(count) +
                             " images in " + images_path.string());
  }
  if (lab.size() != 8 + static_cast<size_t>(count)) {
    throw std::runtime_error("dataset loader: " + labels_path.string() +
                             ": truncated label payload");
  }

  Dataset out;
  out.num_classes = num_classes;
  out.images = Tensor({static_cast<int64_t>(count), 1,
                       static_cast<int64_t>(rows),
                       static_cast<int64_t>(cols)});
  float* dst = out.images.data();
  for (size_t i = 0; i < static_cast<size_t>(count) * rows * cols; ++i) {
    dst[i] = static_cast<float>(img[16 + i]) / 255.0f;
  }
  out.labels.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (lab[8 + i] >= num_classes) {
      throw std::runtime_error("dataset loader: " + labels_path.string() +
                               ": label " + std::to_string(lab[8 + i]) +
                               " out of range [0, " +
                               std::to_string(num_classes) + ")");
    }
    out.labels[i] = lab[8 + i];
  }
  return out;
}

}  // namespace

SynthCifar load_cifar10_dir(const std::string& dir) {
  const fs::path root(dir);
  if (!fs::is_directory(root)) {
    throw std::runtime_error("dataset loader: cifar10 dir '" + dir +
                             "' is not a directory");
  }
  std::vector<fs::path> batches;
  for (const auto& entry : fs::directory_iterator(root)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("data_batch_", 0) == 0 &&
        entry.path().extension() == ".bin") {
      batches.push_back(entry.path());
    }
  }
  if (batches.empty()) {
    throw std::runtime_error("dataset loader: no data_batch_*.bin under '" +
                             dir + "'");
  }
  std::sort(batches.begin(), batches.end());  // deterministic record order

  SynthCifar out;
  std::vector<float> pixels;
  std::vector<int64_t> labels;
  for (const auto& batch : batches) append_cifar_batch(batch, pixels, labels);
  out.train = cifar_dataset(std::move(pixels), std::move(labels));

  pixels.clear();
  labels.clear();
  append_cifar_batch(root / "test_batch.bin", pixels, labels);
  out.test = cifar_dataset(std::move(pixels), std::move(labels));
  return out;
}

SynthCifar load_mnist_dir(const std::string& dir) {
  const fs::path root(dir);
  if (!fs::is_directory(root)) {
    throw std::runtime_error("dataset loader: mnist dir '" + dir +
                             "' is not a directory");
  }
  SynthCifar out;
  out.train = load_idx_split(root / "train-images-idx3-ubyte",
                             root / "train-labels-idx1-ubyte", 10);
  out.test = load_idx_split(root / "t10k-images-idx3-ubyte",
                            root / "t10k-labels-idx1-ubyte", 10);
  return out;
}

}  // namespace rhw::data
