#include "data/corruptions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/rng.hpp"

namespace rhw::data {

namespace {

float clamp01(float v) { return std::clamp(v, 0.0f, 1.0f); }

// Severity tables, index sev-1. Each is strictly monotone in corruption
// strength so mean deviation grows with sev (locked in by tests).
constexpr float kGaussSigma[5] = {0.04f, 0.08f, 0.12f, 0.18f, 0.26f};
constexpr float kShotPhotons[5] = {60.0f, 25.0f, 12.0f, 5.0f, 3.0f};
constexpr float kBlurSigma[5] = {0.5f, 0.75f, 1.0f, 1.5f, 2.0f};
constexpr float kFogBlend[5] = {0.15f, 0.25f, 0.35f, 0.45f, 0.55f};
constexpr float kContrastGain[5] = {0.75f, 0.6f, 0.45f, 0.3f, 0.2f};

void gauss_noise(float* px, int64_t count, float sigma, RandomEngine& rng) {
  for (int64_t i = 0; i < count; ++i) {
    px[i] = clamp01(px[i] + sigma * rng.gaussian());
  }
}

// Poisson noise in the Gaussian approximation: variance proportional to the
// signal, scaled by the photon budget.
void shot_noise(float* px, int64_t count, float photons, RandomEngine& rng) {
  for (int64_t i = 0; i < count; ++i) {
    const float sigma = std::sqrt(std::max(px[i], 0.01f) / photons);
    px[i] = clamp01(px[i] + sigma * rng.gaussian());
  }
}

// Separable Gaussian blur per channel; the kernel is renormalized at the
// borders (reflect-free clamp) so brightness is preserved.
void blur(float* px, int64_t channels, int64_t h, int64_t w, float sigma) {
  const int64_t radius = std::max<int64_t>(1, std::llround(2.5 * sigma));
  std::vector<float> kernel(static_cast<size_t>(2 * radius + 1));
  for (int64_t k = -radius; k <= radius; ++k) {
    kernel[static_cast<size_t>(k + radius)] =
        std::exp(-0.5f * static_cast<float>(k * k) / (sigma * sigma));
  }
  std::vector<float> tmp(static_cast<size_t>(h * w));
  for (int64_t c = 0; c < channels; ++c) {
    float* plane = px + c * h * w;
    // horizontal
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        float acc = 0.0f, norm = 0.0f;
        for (int64_t k = -radius; k <= radius; ++k) {
          const int64_t sx = x + k;
          if (sx < 0 || sx >= w) continue;
          const float kv = kernel[static_cast<size_t>(k + radius)];
          acc += kv * plane[y * w + sx];
          norm += kv;
        }
        tmp[static_cast<size_t>(y * w + x)] = acc / norm;
      }
    }
    // vertical
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        float acc = 0.0f, norm = 0.0f;
        for (int64_t k = -radius; k <= radius; ++k) {
          const int64_t sy = y + k;
          if (sy < 0 || sy >= h) continue;
          const float kv = kernel[static_cast<size_t>(k + radius)];
          acc += kv * tmp[static_cast<size_t>(sy * w + x)];
          norm += kv;
        }
        plane[y * w + x] = clamp01(acc / norm);
      }
    }
  }
}

// Bright haze: a smooth random field (bilinearly upsampled coarse grid,
// shared across channels) biased toward white, blended over the image.
void fog(float* px, int64_t channels, int64_t h, int64_t w, float blend,
         RandomEngine& rng) {
  constexpr int64_t kGrid = 4;
  float coarse[kGrid * kGrid];
  for (auto& v : coarse) v = rng.uniform(0.0f, 1.0f);
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      const float gy = static_cast<float>(y) / static_cast<float>(h) *
                       static_cast<float>(kGrid - 1);
      const float gx = static_cast<float>(x) / static_cast<float>(w) *
                       static_cast<float>(kGrid - 1);
      const int64_t y0 = static_cast<int64_t>(gy), x0 = static_cast<int64_t>(gx);
      const int64_t y1 = std::min<int64_t>(y0 + 1, kGrid - 1);
      const int64_t x1 = std::min<int64_t>(x0 + 1, kGrid - 1);
      const float fy = gy - static_cast<float>(y0);
      const float fx = gx - static_cast<float>(x0);
      const float field = (1 - fy) * ((1 - fx) * coarse[y0 * kGrid + x0] +
                                      fx * coarse[y0 * kGrid + x1]) +
                          fy * ((1 - fx) * coarse[y1 * kGrid + x0] +
                                fx * coarse[y1 * kGrid + x1]);
      const float haze = 0.7f + 0.3f * field;
      for (int64_t c = 0; c < channels; ++c) {
        float& v = px[c * h * w + y * w + x];
        v = clamp01((1.0f - blend) * v + blend * haze);
      }
    }
  }
}

void contrast(float* px, int64_t count, float gain) {
  float mean = 0.0f;
  for (int64_t i = 0; i < count; ++i) mean += px[i];
  mean /= static_cast<float>(count);
  for (int64_t i = 0; i < count; ++i) {
    px[i] = clamp01(mean + gain * (px[i] - mean));
  }
}

}  // namespace

const std::vector<std::string>& corruption_kinds() {
  static const std::vector<std::string> kinds = {"blur", "contrast", "fog",
                                                 "gauss_noise", "shot"};
  return kinds;
}

Dataset corrupt_dataset(const Dataset& base, const CorruptionConfig& cfg) {
  const auto& kinds = corruption_kinds();
  if (std::find(kinds.begin(), kinds.end(), cfg.kind) == kinds.end()) {
    std::string known;
    for (const auto& k : kinds) known += " " + k;
    throw std::invalid_argument("dataset corrupt: unknown kind '" + cfg.kind +
                                "' (known:" + known + ")");
  }
  if (cfg.severity < 1 || cfg.severity > 5) {
    throw std::invalid_argument("dataset corrupt: sev " +
                                std::to_string(cfg.severity) +
                                " out of range 1..5");
  }
  if (base.size() > 0 && base.images.rank() != 4) {
    throw std::invalid_argument("dataset corrupt: rank-4 images required");
  }
  Dataset out = base;
  const int64_t n = out.size();
  if (n == 0) return out;
  const int64_t c = out.images.dim(1), h = out.images.dim(2),
                w = out.images.dim(3);
  const int64_t stride = c * h * w;
  const int sev = cfg.severity - 1;
  for (int64_t i = 0; i < n; ++i) {
    float* px = out.images.data() + i * stride;
    // Per-sample stream: corruption of sample i is independent of dataset
    // order, slicing and lane count.
    RandomEngine rng(derive_stream_seed(cfg.seed, static_cast<uint64_t>(i)));
    if (cfg.kind == "gauss_noise") {
      gauss_noise(px, stride, kGaussSigma[sev], rng);
    } else if (cfg.kind == "shot") {
      shot_noise(px, stride, kShotPhotons[sev], rng);
    } else if (cfg.kind == "blur") {
      blur(px, c, h, w, kBlurSigma[sev]);
    } else if (cfg.kind == "fog") {
      fog(px, c, h, w, kFogBlend[sev], rng);
    } else {  // contrast
      contrast(px, stride, kContrastGain[sev]);
    }
  }
  return out;
}

}  // namespace rhw::data
