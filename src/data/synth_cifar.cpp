#include "data/synth_cifar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace rhw::data {

namespace {

// Bilinearly upsamples a coarse [g x g] grid to [s x s].
void upsample(const std::vector<float>& coarse, int64_t g, float* out,
              int64_t s) {
  for (int64_t y = 0; y < s; ++y) {
    // Map pixel center into coarse-grid coordinates.
    const float fy = (static_cast<float>(y) + 0.5f) / static_cast<float>(s) *
                         static_cast<float>(g) - 0.5f;
    const int64_t y0 = std::clamp<int64_t>(static_cast<int64_t>(std::floor(fy)),
                                           0, g - 1);
    const int64_t y1 = std::min<int64_t>(y0 + 1, g - 1);
    const float wy = std::clamp(fy - static_cast<float>(y0), 0.f, 1.f);
    for (int64_t x = 0; x < s; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) / static_cast<float>(s) *
                           static_cast<float>(g) - 0.5f;
      const int64_t x0 = std::clamp<int64_t>(
          static_cast<int64_t>(std::floor(fx)), 0, g - 1);
      const int64_t x1 = std::min<int64_t>(x0 + 1, g - 1);
      const float wx = std::clamp(fx - static_cast<float>(x0), 0.f, 1.f);
      const float v00 = coarse[static_cast<size_t>(y0 * g + x0)];
      const float v01 = coarse[static_cast<size_t>(y0 * g + x1)];
      const float v10 = coarse[static_cast<size_t>(y1 * g + x0)];
      const float v11 = coarse[static_cast<size_t>(y1 * g + x1)];
      out[y * s + x] = (1.f - wy) * ((1.f - wx) * v00 + wx * v01) +
                       wy * ((1.f - wx) * v10 + wx * v11);
    }
  }
}

// Builds the per-class template [C, S, S], values centered at 0.5.
std::vector<float> make_template(const SynthCifarConfig& cfg,
                                 rhw::RandomEngine& rng) {
  const int64_t s = cfg.image_size, c = cfg.channels, g = cfg.coarse_grid;
  std::vector<float> tmpl(static_cast<size_t>(c * s * s));
  std::vector<float> coarse(static_cast<size_t>(g * g));
  for (int64_t ci = 0; ci < c; ++ci) {
    for (auto& v : coarse) v = rng.gaussian();
    upsample(coarse, g, tmpl.data() + ci * s * s, s);
  }
  // Normalize template contrast so every class has comparable energy.
  float norm = 0.f;
  for (float v : tmpl) norm += v * v;
  norm = std::sqrt(norm / static_cast<float>(tmpl.size()));
  const float scale = cfg.template_amp / std::max(norm, 1e-6f);
  for (float& v : tmpl) v = 0.5f + scale * v;
  return tmpl;
}

// One jittered, noisy sample from a template (clamp-to-edge shift), overlaid
// with a per-sample structured nuisance pattern.
void render_sample(const std::vector<float>& tmpl, const SynthCifarConfig& cfg,
                   rhw::RandomEngine& rng, float* out) {
  const int64_t s = cfg.image_size, c = cfg.channels, g = cfg.coarse_grid;
  const int64_t dx = cfg.jitter > 0 ? rng.uniform_int(-cfg.jitter, cfg.jitter) : 0;
  const int64_t dy = cfg.jitter > 0 ? rng.uniform_int(-cfg.jitter, cfg.jitter) : 0;
  std::vector<float> nuisance;
  std::vector<float> coarse;
  if (cfg.nuisance_amp > 0.f) {
    nuisance.resize(static_cast<size_t>(s * s));
    coarse.resize(static_cast<size_t>(g * g));
  }
  for (int64_t ci = 0; ci < c; ++ci) {
    if (cfg.nuisance_amp > 0.f) {
      for (auto& v : coarse) v = cfg.nuisance_amp * rng.gaussian();
      upsample(coarse, g, nuisance.data(), s);
    }
    const float* src = tmpl.data() + ci * s * s;
    float* dst = out + ci * s * s;
    for (int64_t y = 0; y < s; ++y) {
      const int64_t sy = std::clamp<int64_t>(y + dy, 0, s - 1);
      for (int64_t x = 0; x < s; ++x) {
        const int64_t sx = std::clamp<int64_t>(x + dx, 0, s - 1);
        float v = src[sy * s + sx] + cfg.noise_std * rng.gaussian();
        if (cfg.nuisance_amp > 0.f) v += nuisance[static_cast<size_t>(y * s + x)];
        dst[y * s + x] = std::clamp(v, 0.f, 1.f);
      }
    }
  }
}

Dataset make_split(const SynthCifarConfig& cfg,
                   const std::vector<std::vector<float>>& templates,
                   int64_t per_class, rhw::RandomEngine& rng) {
  const int64_t n = cfg.num_classes * per_class;
  const int64_t s = cfg.image_size, c = cfg.channels;
  Dataset ds;
  ds.num_classes = cfg.num_classes;
  ds.images = Tensor({n, c, s, s});
  ds.labels.resize(static_cast<size_t>(n));
  const int64_t stride = c * s * s;
  // Interleave classes so any prefix (Dataset::head) is class-balanced.
  int64_t i = 0;
  for (int64_t k = 0; k < per_class; ++k) {
    for (int64_t cls = 0; cls < cfg.num_classes; ++cls, ++i) {
      render_sample(templates[static_cast<size_t>(cls)], cfg, rng,
                    ds.images.data() + i * stride);
      ds.labels[static_cast<size_t>(i)] = cls;
    }
  }
  return ds;
}

}  // namespace

SynthCifar make_synth_cifar(const SynthCifarConfig& cfg) {
  if (cfg.num_classes <= 1 || cfg.image_size < 4) {
    throw std::invalid_argument("make_synth_cifar: bad config");
  }
  rhw::RandomEngine master(cfg.seed);
  rhw::RandomEngine template_rng = master.fork(1);
  rhw::RandomEngine train_rng = master.fork(2);
  rhw::RandomEngine test_rng = master.fork(3);

  std::vector<std::vector<float>> templates;
  templates.reserve(static_cast<size_t>(cfg.num_classes));
  for (int64_t cls = 0; cls < cfg.num_classes; ++cls) {
    templates.push_back(make_template(cfg, template_rng));
  }

  SynthCifar out;
  out.train = make_split(cfg, templates, cfg.train_per_class, train_rng);
  out.test = make_split(cfg, templates, cfg.test_per_class, test_rng);
  return out;
}

SynthCifarConfig synth_c10_config() {
  SynthCifarConfig cfg;
  cfg.num_classes = 10;
  cfg.train_per_class = 300;
  cfg.test_per_class = 50;
  // Calibrated so a width-0.25 VGG8 lands at ~88% clean accuracy, matching
  // the paper's CIFAR-10 operating point (Table I: 88.78 + 2.61).
  cfg.nuisance_amp = 0.75f;
  cfg.seed = 0xC1FA5EEDULL;
  return cfg;
}

SynthCifarConfig synth_c100_config() {
  SynthCifarConfig cfg;
  cfg.num_classes = 100;
  cfg.train_per_class = 60;
  cfg.test_per_class = 10;
  // Calibrated so a width-0.25 VGG16 lands at ~70% clean accuracy, matching
  // the paper's CIFAR-100 operating point (Table I: 67.3 + 2.9).
  cfg.nuisance_amp = 0.55f;
  cfg.noise_std = 0.22f;
  cfg.seed = 0xC1FA100DULL;
  return cfg;
}

SynthCifar make_dataset_by_name(const std::string& name) {
  if (name == "synth-c10") return make_synth_cifar(synth_c10_config());
  if (name == "synth-c100") return make_synth_cifar(synth_c100_config());
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace rhw::data
