// In-memory labelled image dataset plus batching helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace rhw::data {

using rhw::Tensor;

struct Dataset {
  Tensor images;                 // [N, C, H, W], values in [0, 1]
  std::vector<int64_t> labels;   // size N
  int64_t num_classes = 0;

  int64_t size() const { return images.empty() ? 0 : images.dim(0); }

  // Copies samples [begin, end) into a new batch. begin must lie in
  // [0, size()] and end must be >= begin (std::out_of_range otherwise);
  // end clamps to size() so batch loops can ask for [i, i+batch) on the
  // final partial batch.
  Dataset slice(int64_t begin, int64_t end) const;
  // Copies the given sample indices into a new batch; out-of-range indices
  // throw std::out_of_range. An empty index list yields an empty batch.
  Dataset gather(const std::vector<int64_t>& indices) const;
  // First n samples (clamped to [0, size()]), handy for evaluation subsets.
  Dataset head(int64_t n) const;
};

// Shuffled index order for one training epoch.
std::vector<int64_t> shuffled_indices(int64_t n, rhw::RandomEngine& rng);

}  // namespace rhw::data
