// Procedural, seed-deterministic corruptions (CIFAR-10-C style).
//
// Five kinds x five severities over any [N, C, H, W] dataset in [0, 1]:
//
//   gauss_noise  additive Gaussian pixel noise
//   shot         photon (shot) noise — signal-dependent Gaussian approx
//   blur         separable Gaussian blur (no randomness)
//   fog          blend toward a bright low-frequency haze field
//   contrast     pull pixels toward the per-image mean
//
// Determinism contract: sample i draws from a RandomEngine seeded by
// derive_stream_seed(cfg.seed, i), so the corruption of a sample does not
// depend on dataset order, slicing, or thread count — same spec + seed ⇒
// bitwise-equal tensors. Severity tables are strictly monotone: higher sev,
// larger mean deviation from the clean image (tests/data/test_corruptions
// locks this in).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace rhw::data {

constexpr uint64_t kDefaultCorruptSeed = 0xC0224413ULL;

struct CorruptionConfig {
  std::string kind;  // gauss_noise | shot | blur | fog | contrast
  int severity = 1;  // 1..5
  uint64_t seed = kDefaultCorruptSeed;
};

// The registered kind names, sorted (for error messages and docs parity).
const std::vector<std::string>& corruption_kinds();

// Returns a corrupted copy; `base` must be rank-4 with pixels in [0, 1].
// Throws std::invalid_argument on unknown kind or severity outside 1..5.
Dataset corrupt_dataset(const Dataset& base, const CorruptionConfig& cfg);

}  // namespace rhw::data
