// SynthCIFAR: deterministic synthetic stand-in for CIFAR-10 / CIFAR-100.
//
// The paper's experiments need (a) a trained classifier with a real decision
// boundary and (b) meaningful input gradients for FGSM/PGD. Natural-image
// statistics are not required for the robustness *shape* results, so each
// class is a smooth random template (low-frequency pattern upsampled from a
// coarse grid) and samples are jittered, noisy draws around the template
// (DESIGN.md §1). Pixels are in [0, 1], matching the paper's epsilon scale.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"

namespace rhw::data {

struct SynthCifarConfig {
  int64_t num_classes = 10;
  int64_t train_per_class = 300;
  int64_t test_per_class = 50;
  int64_t image_size = 32;
  int64_t channels = 3;
  int64_t coarse_grid = 4;   // template detail: coarse_grid x coarse_grid
  float template_amp = 0.32f;  // template contrast around mid-grey
  float noise_std = 0.15f;     // per-pixel Gaussian sample noise
  // Per-sample structured nuisance: a random low-frequency pattern drawn from
  // the same family as the templates. Unlike white noise it does not average
  // out under convolution, so it is the lever that sets task difficulty
  // (clean-accuracy ceiling), mimicking natural intra-class variation.
  float nuisance_amp = 0.30f;
  int64_t jitter = 3;          // max |shift| in pixels
  uint64_t seed = 0xC1FA5EEDULL;
};

struct SynthCifar {
  Dataset train;
  Dataset test;
};

SynthCifar make_synth_cifar(const SynthCifarConfig& cfg);

// Presets mirroring the paper's two benchmarks.
SynthCifarConfig synth_c10_config();
SynthCifarConfig synth_c100_config();

// Convenience: preset by name ("synth-c10" | "synth-c100").
SynthCifar make_dataset_by_name(const std::string& name);

}  // namespace rhw::data
