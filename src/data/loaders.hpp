// Binary-format dataset loaders: CIFAR-10 batch files and MNIST idx files.
//
// Both loaders validate the on-disk format before trusting it — CIFAR-10
// batches must be a whole number of 3073-byte records with in-range labels,
// MNIST idx files must carry the 0x803/0x801 magics, the advertised
// dimensions, and matching image/label counts — and fail with errors naming
// the offending file and what was expected. Pixels are scaled to [0, 1]
// (byte / 255), matching the synthetic generator's range and the paper's
// epsilon scale. Loading is deterministic: record order on disk is the
// sample order in memory.
#pragma once

#include <string>

#include "data/synth_cifar.hpp"

namespace rhw::data {

// CIFAR-10 binary batches under `dir`: data_batch_*.bin (sorted by name)
// become the train split, test_batch.bin the test split. Each record is
// 1 label byte + 3072 image bytes (3 x 32 x 32, channel-major).
SynthCifar load_cifar10_dir(const std::string& dir);

// MNIST idx files under `dir`: train-images-idx3-ubyte /
// train-labels-idx1-ubyte / t10k-images-idx3-ubyte / t10k-labels-idx1-ubyte.
// Images load as [N, 1, rows, cols].
SynthCifar load_mnist_dir(const std::string& dir);

}  // namespace rhw::data
