#include "nn/activations.hpp"

namespace rhw::nn {

Tensor ReLU::do_forward(const Tensor& x) {
  mask_ = Tensor(x.shape());
  Tensor out(x.shape());
  const float* in = x.data();
  float* m = mask_.data();
  float* o = out.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = in[i] > 0.f;
    m[i] = pos ? 1.f : 0.f;
    o[i] = pos ? in[i] : 0.f;
  }
  return out;
}

Tensor ReLU::do_backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  grad_in.mul_(mask_);
  return grad_in;
}

Tensor Flatten::do_forward(const Tensor& x) {
  input_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.numel() / x.dim(0)});
}

Tensor Flatten::do_backward(const Tensor& grad_out) {
  return grad_out.reshaped(input_shape_);
}

}  // namespace rhw::nn
