// Generic model state persistence.
//
// Walks the module tree (children() order is deterministic) and flattens each
// module's named_state() into "<path>.<name>" keys, where path is the chain of
// child indices, e.g. "0.3.weight". Loading requires exact key and shape
// match, so a checkpoint only loads into an identically constructed model.
#pragma once

#include <string>

#include "core/serialize.hpp"
#include "nn/module.hpp"

namespace rhw::nn {

rhw::TensorMap state_dict(Module& root);
// Throws std::runtime_error on missing keys or shape mismatches.
void load_state_dict(Module& root, const rhw::TensorMap& state);

void save_model(Module& root, const std::string& path);
void load_model(Module& root, const std::string& path);

}  // namespace rhw::nn
