#include "nn/sequential.hpp"

namespace rhw::nn {

Module& Sequential::append(ModulePtr m) {
  modules_.push_back(std::move(m));
  modules_.back()->set_training(training_);
  return *modules_.back();
}

std::vector<Param*> Sequential::parameters() {
  std::vector<Param*> out;
  for (auto& m : modules_) {
    auto ps = m->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::vector<Module*> Sequential::children() {
  std::vector<Module*> out;
  out.reserve(modules_.size());
  for (auto& m : modules_) out.push_back(m.get());
  return out;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& m : modules_) m->set_training(training);
}

Tensor Sequential::do_forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& m : modules_) cur = m->forward(cur);
  return cur;
}

Tensor Sequential::do_backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

}  // namespace rhw::nn
