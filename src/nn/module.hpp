// Layer abstraction for the from-scratch NN library.
//
// Modules cache whatever forward state their backward pass needs, so the usage
// contract is: forward(batch) immediately followed by backward(grad) on the
// same batch. backward() returns the gradient w.r.t. the module input and
// accumulates parameter gradients into Param::grad.
//
// Post-forward hooks model hardware noise on stored activations (hybrid 8T-6T
// SRAM activation memories, DESIGN.md). Hooks mutate the forward output in
// place. A thread-local enable flag with an RAII disable scope implements
// the paper's rule that bit-error noise is *not* present during the gradient
// computation of an attack (Sec. III-A: "we do not consider bit-error noise
// during the gradient calculation step"); thread-locality lets concurrent
// sweep cells gate their own attack passes independently.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/tensor.hpp"

namespace rhw::nn {

using rhw::Shape;
using rhw::Tensor;

// A trainable parameter: value plus accumulated gradient.
struct Param {
  std::string name;  // local name within the owning module, e.g. "weight"
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.f); }
};

using ActivationHook = std::function<void(Tensor&)>;

// Optional companion to a hook: reseeds the hook's private RNG stream(s).
// Hooks that draw randomness (SRAM bit errors, crossbar read/gradient noise)
// register one so evaluation passes can pin every noise stream to a derived
// seed before running — the repo's per-pass reproducibility contract
// (attacks/evaluate.cpp, README "Reproducibility"). Deterministic hooks
// (quantization, test shims) simply omit it.
using HookSeeder = std::function<void(uint64_t)>;

class Module {
 public:
  virtual ~Module() = default;

  // Non-virtual interface: runs do_forward then applies the post hook (when
  // hooks are globally enabled); backward applies the backward hook to the
  // incoming gradient first (used to model noisy analog gradient reads in
  // HH-mode attacks — crossbar mapper installs these ungated).
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  virtual std::vector<Param*> parameters() { return {}; }
  // Name/tensor pairs to persist: parameters plus non-trainable buffers
  // (e.g. BatchNorm running statistics).
  virtual std::vector<std::pair<std::string, Tensor*>> named_state();
  virtual std::vector<Module*> children() { return {}; }
  virtual std::string type_name() const = 0;
  // True for layers whose weights live in crossbars / weight memories
  // (Conv2d, Linear) — targets for the xbar mapper and weight-noise study.
  virtual bool is_weight_layer() const { return false; }

  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  // gated=true (default): the hook is suppressed inside HooksDisabledScope —
  // used for SRAM bit-error noise, which the paper excludes from attack
  // gradients. gated=false: the hook is part of the hardware forward path
  // (crossbar DAC/ADC quantization, read noise) and always applies.
  // A stochastic hook passes a seeder so reseed_noise_streams can reach its
  // RNG; the seeder lives and dies with the hook.
  void set_post_hook(ActivationHook hook, bool gated = true,
                     HookSeeder seeder = {}) {
    post_hook_ = std::move(hook);
    post_hook_gated_ = gated;
    post_seeder_ = std::move(seeder);
  }
  void clear_post_hook() {
    post_hook_ = nullptr;
    post_seeder_ = nullptr;
  }
  bool has_post_hook() const { return static_cast<bool>(post_hook_); }

  // Backward hook: mutates the gradient flowing into this module's backward
  // pass. Same gating and seeder semantics as post hooks.
  void set_backward_hook(ActivationHook hook, bool gated = true,
                         HookSeeder seeder = {}) {
    backward_hook_ = std::move(hook);
    backward_hook_gated_ = gated;
    backward_seeder_ = std::move(seeder);
  }
  void clear_backward_hook() {
    backward_hook_ = nullptr;
    backward_seeder_ = nullptr;
  }
  bool has_backward_hook() const { return static_cast<bool>(backward_hook_); }

  // Reseeds this module's hook RNG streams from `seed` (post hook gets the
  // sub-stream 0, backward hook sub-stream 1). Returns the number of seeders
  // invoked. Callers normally use the tree-walking reseed_noise_streams.
  int reseed_hook_streams(uint64_t seed);

  // -- hook gating (thread-local) ---------------------------------------------
  static bool hooks_enabled();
  // RAII: disables all post hooks in scope (used while computing attack
  // gradients).
  class HooksDisabledScope {
   public:
    HooksDisabledScope();
    ~HooksDisabledScope();
    HooksDisabledScope(const HooksDisabledScope&) = delete;
    HooksDisabledScope& operator=(const HooksDisabledScope&) = delete;

   private:
    bool previous_;
  };

  int64_t num_parameters();

 protected:
  virtual Tensor do_forward(const Tensor& x) = 0;
  virtual Tensor do_backward(const Tensor& grad_out) = 0;

  bool training_ = true;
  ActivationHook post_hook_;
  bool post_hook_gated_ = true;
  HookSeeder post_seeder_;
  ActivationHook backward_hook_;
  bool backward_hook_gated_ = true;
  HookSeeder backward_seeder_;
};

using ModulePtr = std::unique_ptr<Module>;

// Depth-first list of all weight-bearing layers (Conv2d, Linear) reachable
// from root, in execution order. Used by the crossbar mapper, QUANOS and the
// weight-noise ablation.
std::vector<Module*> collect_weight_layers(Module& root);

// Reseeds every hook RNG stream in the module tree from `seed`. Each module
// gets a sub-seed derived (splitmix64) from its depth-first position in the
// tree — NOT from its position among hooked modules — so one site's stream
// never depends on which other sites happen to carry hooks. Evaluation
// harnesses call this at the start of each pass (clean vs adversarial) so
// results are independent of what ran before; see attacks/evaluate.cpp.
// Returns the number of seeders invoked.
int reseed_noise_streams(Module& root, uint64_t seed);

}  // namespace rhw::nn
