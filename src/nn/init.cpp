#include "nn/init.hpp"

#include <cmath>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"

namespace rhw::nn {

namespace {
void init_module(Module& m, rhw::RandomEngine& rng) {
  if (auto* conv = dynamic_cast<Conv2d*>(&m)) {
    const auto fan_in =
        static_cast<float>(conv->in_channels() * conv->kernel() * conv->kernel());
    const float std = std::sqrt(2.f / fan_in);
    for (float& v : conv->weight().value.span()) v = rng.gaussian(0.f, std);
    if (conv->has_bias()) conv->bias().value.fill(0.f);
  } else if (auto* lin = dynamic_cast<Linear*>(&m)) {
    const auto fan_in = static_cast<float>(lin->in_features());
    const float std = std::sqrt(2.f / fan_in);
    for (float& v : lin->weight().value.span()) v = rng.gaussian(0.f, std);
    if (lin->has_bias()) lin->bias().value.fill(0.f);
  }
  for (Module* child : m.children()) init_module(*child, rng);
}
}  // namespace

void kaiming_init(Module& root, rhw::RandomEngine& rng) {
  init_module(root, rng);
}

}  // namespace rhw::nn
