#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

namespace rhw::nn {

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {}

Tensor MaxPool2d::do_forward(const Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("MaxPool2d: rank-4 required");
  input_shape_ = x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t oh = (h - kernel_) / stride_ + 1;
  const int64_t ow = (w - kernel_) / stride_ + 1;
  Tensor out({n, c, oh, ow});
  argmax_.assign(static_cast<size_t>(out.numel()), 0);

  const float* in = x.data();
  float* o = out.data();
  int64_t oi = 0;
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const int64_t base = (ni * c + ci) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t xo = 0; xo < ow; ++xo, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = -1;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            const int64_t iy = y * stride_ + ky;
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t ix = xo * stride_ + kx;
              const int64_t idx = base + iy * w + ix;
              if (in[idx] > best) {
                best = in[idx];
                best_idx = idx;
              }
            }
          }
          o[oi] = best;
          argmax_[static_cast<size_t>(oi)] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::do_backward(const Tensor& grad_out) {
  Tensor grad_in(input_shape_);
  float* gi = grad_in.data();
  const float* go = grad_out.data();
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    gi[argmax_[static_cast<size_t>(i)]] += go[i];
  }
  return grad_in;
}

AvgPool2d::AvgPool2d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride) {}

Tensor AvgPool2d::do_forward(const Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("AvgPool2d: rank-4 required");
  input_shape_ = x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  eff_kernel_ = kernel_ == 0 ? h : kernel_;
  eff_stride_ = stride_ == 0 ? eff_kernel_ : stride_;
  if (kernel_ == 0 && h != w) {
    throw std::invalid_argument("AvgPool2d: global pooling needs square maps");
  }
  const int64_t oh = (h - eff_kernel_) / eff_stride_ + 1;
  const int64_t ow = (w - eff_kernel_) / eff_stride_ + 1;
  Tensor out({n, c, oh, ow});
  const float inv = 1.f / static_cast<float>(eff_kernel_ * eff_kernel_);
  const float* in = x.data();
  float* o = out.data();
  int64_t oi = 0;
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const int64_t base = (ni * c + ci) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t xo = 0; xo < ow; ++xo, ++oi) {
          double acc = 0.0;
          for (int64_t ky = 0; ky < eff_kernel_; ++ky) {
            const int64_t iy = y * eff_stride_ + ky;
            const float* row = in + base + iy * w + xo * eff_stride_;
            for (int64_t kx = 0; kx < eff_kernel_; ++kx) acc += row[kx];
          }
          o[oi] = static_cast<float>(acc) * inv;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2d::do_backward(const Tensor& grad_out) {
  Tensor grad_in(input_shape_);
  const int64_t n = input_shape_[0], c = input_shape_[1], h = input_shape_[2],
                w = input_shape_[3];
  const int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  const float inv = 1.f / static_cast<float>(eff_kernel_ * eff_kernel_);
  float* gi = grad_in.data();
  const float* go = grad_out.data();
  int64_t oi = 0;
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const int64_t base = (ni * c + ci) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t xo = 0; xo < ow; ++xo, ++oi) {
          const float g = go[oi] * inv;
          for (int64_t ky = 0; ky < eff_kernel_; ++ky) {
            const int64_t iy = y * eff_stride_ + ky;
            float* row = gi + base + iy * w + xo * eff_stride_;
            for (int64_t kx = 0; kx < eff_kernel_; ++kx) row[kx] += g;
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace rhw::nn
