// Weight initialization (Kaiming/He for ReLU networks).
#pragma once

#include "core/rng.hpp"
#include "nn/module.hpp"

namespace rhw::nn {

// Kaiming-normal init for every Conv2d / Linear weight reachable from root
// (fan-in mode, gain sqrt(2)); biases and BatchNorm left at their defaults.
void kaiming_init(Module& root, rhw::RandomEngine& rng);

}  // namespace rhw::nn
