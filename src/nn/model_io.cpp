#include "nn/model_io.hpp"

#include <stdexcept>

namespace rhw::nn {

namespace {

void collect(Module& m, const std::string& prefix, rhw::TensorMap& out) {
  for (auto& [name, tensor] : m.named_state()) {
    out[prefix + name] = *tensor;
  }
  auto kids = m.children();
  for (size_t i = 0; i < kids.size(); ++i) {
    collect(*kids[i], prefix + std::to_string(i) + ".", out);
  }
}

void restore(Module& m, const std::string& prefix, const rhw::TensorMap& in) {
  for (auto& [name, tensor] : m.named_state()) {
    const std::string key = prefix + name;
    auto it = in.find(key);
    if (it == in.end()) {
      throw std::runtime_error("load_state_dict: missing key " + key);
    }
    if (!it->second.same_shape(*tensor)) {
      throw std::runtime_error("load_state_dict: shape mismatch for " + key +
                               ": " + it->second.shape_str() + " vs " +
                               tensor->shape_str());
    }
    *tensor = it->second;
  }
  auto kids = m.children();
  for (size_t i = 0; i < kids.size(); ++i) {
    restore(*kids[i], prefix + std::to_string(i) + ".", in);
  }
}

}  // namespace

rhw::TensorMap state_dict(Module& root) {
  rhw::TensorMap out;
  collect(root, "", out);
  return out;
}

void load_state_dict(Module& root, const rhw::TensorMap& state) {
  restore(root, "", state);
}

void save_model(Module& root, const std::string& path) {
  rhw::write_checkpoint(path, state_dict(root));
}

void load_model(Module& root, const std::string& path) {
  load_state_dict(root, rhw::read_checkpoint(path));
}

}  // namespace rhw::nn
