#include "nn/optimizer.hpp"

namespace rhw::nn {

SGD::SGD(std::vector<Param*> params, SgdConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void SGD::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

void SGD::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* vel = v.data();
    for (int64_t j = 0; j < p.value.numel(); ++j) {
      const float grad = g[j] + cfg_.weight_decay * w[j];
      vel[j] = cfg_.momentum * vel[j] + grad;
      w[j] -= cfg_.lr * vel[j];
    }
  }
}

}  // namespace rhw::nn
