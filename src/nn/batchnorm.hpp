// BatchNorm2d with running statistics for inference.
#pragma once

#include "nn/module.hpp"

namespace rhw::nn {

class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  std::vector<Param*> parameters() override;
  std::vector<std::pair<std::string, Tensor*>> named_state() override;
  std::string type_name() const override { return "BatchNorm2d"; }

  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 protected:
  Tensor do_forward(const Tensor& x) override;
  Tensor do_backward(const Tensor& grad_out) override;

 private:
  int64_t channels_;
  float eps_, momentum_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;

  // caches for backward (training mode)
  Tensor x_hat_;     // normalized input
  Tensor inv_std_;   // [C]
  bool forward_was_training_ = true;
};

}  // namespace rhw::nn
