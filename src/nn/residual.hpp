// ResNet basic block: relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x)).
//
// The shortcut is identity when shapes match, otherwise a 1x1 strided
// conv + BN projection. Internal modules are owned and exposed so the SRAM
// methodology can hook activation memories inside blocks (conv outputs and
// the shortcut output — the 'S' entries of Table II).
#pragma once

#include <memory>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/module.hpp"

namespace rhw::nn {

class ResidualBlock final : public Module {
 public:
  ResidualBlock(int64_t in_channels, int64_t out_channels, int64_t stride);

  std::vector<Param*> parameters() override;
  std::vector<Module*> children() override;
  std::vector<std::pair<std::string, Tensor*>> named_state() override {
    return {};
  }
  std::string type_name() const override { return "ResidualBlock"; }
  void set_training(bool training) override;

  bool has_projection() const { return static_cast<bool>(proj_conv_); }
  Conv2d& conv1() { return *conv1_; }
  Conv2d& conv2() { return *conv2_; }
  // The module whose output is the block's shortcut activation memory:
  // the projection BN when projecting, else null (identity shortcut — the
  // memory is the block input, hooked via the previous layer).
  Module* shortcut_tail();
  // Post-activation outputs inside the block, for noise-site enumeration.
  Module& relu1() { return *relu1_; }

 protected:
  Tensor do_forward(const Tensor& x) override;
  Tensor do_backward(const Tensor& grad_out) override;

 private:
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> proj_conv_;     // null for identity shortcut
  std::unique_ptr<BatchNorm2d> proj_bn_;  // null for identity shortcut

  Tensor final_mask_;  // ReLU mask of the output
};

}  // namespace rhw::nn
