// Max and average pooling.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace rhw::nn {

class MaxPool2d final : public Module {
 public:
  explicit MaxPool2d(int64_t kernel = 2, int64_t stride = 0 /*=kernel*/);

  std::string type_name() const override { return "MaxPool2d"; }

 protected:
  Tensor do_forward(const Tensor& x) override;
  Tensor do_backward(const Tensor& grad_out) override;

 private:
  int64_t kernel_, stride_;
  Shape input_shape_;
  std::vector<int64_t> argmax_;  // flat input index per output element
};

class AvgPool2d final : public Module {
 public:
  // kernel == 0 means global average pooling (kernel = full spatial extent).
  explicit AvgPool2d(int64_t kernel = 0, int64_t stride = 0 /*=kernel*/);

  std::string type_name() const override { return "AvgPool2d"; }

 protected:
  Tensor do_forward(const Tensor& x) override;
  Tensor do_backward(const Tensor& grad_out) override;

 private:
  int64_t kernel_, stride_;
  Shape input_shape_;
  int64_t eff_kernel_ = 0, eff_stride_ = 0;
};

}  // namespace rhw::nn
