#include "nn/residual.hpp"

namespace rhw::nn {

ResidualBlock::ResidualBlock(int64_t in_channels, int64_t out_channels,
                             int64_t stride)
    : conv1_(std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1,
                                      /*bias=*/false)),
      bn1_(std::make_unique<BatchNorm2d>(out_channels)),
      relu1_(std::make_unique<ReLU>()),
      conv2_(std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1,
                                      /*bias=*/false)),
      bn2_(std::make_unique<BatchNorm2d>(out_channels)) {
  if (stride != 1 || in_channels != out_channels) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride,
                                          0, /*bias=*/false);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

std::vector<Param*> ResidualBlock::parameters() {
  std::vector<Param*> out;
  for (Module* m : children()) {
    auto ps = m->parameters();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::vector<Module*> ResidualBlock::children() {
  std::vector<Module*> out{conv1_.get(), bn1_.get(), relu1_.get(), conv2_.get(),
                           bn2_.get()};
  if (proj_conv_) {
    out.push_back(proj_conv_.get());
    out.push_back(proj_bn_.get());
  }
  return out;
}

void ResidualBlock::set_training(bool training) {
  Module::set_training(training);
  for (Module* m : children()) m->set_training(training);
}

Module* ResidualBlock::shortcut_tail() {
  return proj_bn_ ? static_cast<Module*>(proj_bn_.get()) : nullptr;
}

Tensor ResidualBlock::do_forward(const Tensor& x) {
  Tensor main = conv1_->forward(x);
  main = bn1_->forward(main);
  main = relu1_->forward(main);
  main = conv2_->forward(main);
  main = bn2_->forward(main);

  Tensor shortcut = x;
  if (proj_conv_) {
    shortcut = proj_conv_->forward(x);
    shortcut = proj_bn_->forward(shortcut);
  }

  main.add_(shortcut);
  // Final ReLU, inlined so we keep its mask for backward.
  final_mask_ = Tensor(main.shape());
  float* m = final_mask_.data();
  float* v = main.data();
  for (int64_t i = 0; i < main.numel(); ++i) {
    const bool pos = v[i] > 0.f;
    m[i] = pos ? 1.f : 0.f;
    if (!pos) v[i] = 0.f;
  }
  return main;
}

Tensor ResidualBlock::do_backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  g.mul_(final_mask_);

  // Main path
  Tensor gmain = bn2_->backward(g);
  gmain = conv2_->backward(gmain);
  gmain = relu1_->backward(gmain);
  gmain = bn1_->backward(gmain);
  gmain = conv1_->backward(gmain);

  // Shortcut path
  if (proj_conv_) {
    Tensor gshort = proj_bn_->backward(g);
    gshort = proj_conv_->backward(gshort);
    gmain.add_(gshort);
  } else {
    gmain.add_(g);
  }
  return gmain;
}

}  // namespace rhw::nn
