// Softmax cross-entropy loss with mean reduction.
#pragma once

#include <vector>

#include "core/tensor.hpp"

namespace rhw::nn {

using rhw::Tensor;

class SoftmaxCrossEntropy {
 public:
  // logits: [N, K]; labels: size-N class indices. Returns mean loss.
  float forward(const Tensor& logits, const std::vector<int64_t>& labels);
  // d(loss)/d(logits), shape [N, K].
  Tensor backward() const;

  // Softmax probabilities from the last forward, [N, K].
  const Tensor& probs() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int64_t> labels_;
};

// Stateless helpers.
Tensor softmax_rows(const Tensor& logits);
// Fraction (0..1) of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

}  // namespace rhw::nn
