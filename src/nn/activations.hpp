// Elementwise activation layers.
#pragma once

#include "nn/module.hpp"

namespace rhw::nn {

class ReLU final : public Module {
 public:
  std::string type_name() const override { return "ReLU"; }

 protected:
  Tensor do_forward(const Tensor& x) override;
  Tensor do_backward(const Tensor& grad_out) override;

 private:
  Tensor mask_;  // 1 where x > 0
};

// Reshapes [N, C, H, W] -> [N, C*H*W]; the inverse on backward.
class Flatten final : public Module {
 public:
  std::string type_name() const override { return "Flatten"; }

 protected:
  Tensor do_forward(const Tensor& x) override;
  Tensor do_backward(const Tensor& grad_out) override;

 private:
  Shape input_shape_;
};

}  // namespace rhw::nn
