// Fully connected layer: y = x W^T + b, weight [out_features, in_features].
#pragma once

#include "nn/module.hpp"

namespace rhw::nn {

class Linear final : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, bool bias = true);

  std::vector<Param*> parameters() override;
  std::string type_name() const override { return "Linear"; }
  bool is_weight_layer() const override { return true; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }
  int64_t in_features() const { return in_f_; }
  int64_t out_features() const { return out_f_; }

 protected:
  Tensor do_forward(const Tensor& x) override;
  Tensor do_backward(const Tensor& grad_out) override;

 private:
  int64_t in_f_, out_f_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor input_;  // [N, in]
};

}  // namespace rhw::nn
