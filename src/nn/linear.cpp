#include "nn/linear.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/gemm.hpp"

namespace rhw::nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool bias)
    : in_f_(in_features),
      out_f_(out_features),
      has_bias_(bias),
      weight_("weight", Tensor({out_features, in_features})),
      bias_("bias", Tensor({bias ? out_features : 0})) {}

std::vector<Param*> Linear::parameters() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

Tensor Linear::do_forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_f_) {
    throw std::invalid_argument("Linear: bad input shape " + x.shape_str());
  }
  input_ = x;
  const int64_t n = x.dim(0);
  Tensor out({n, out_f_});
  // out = x [n, in] * W^T [in, out], bias folded through the engine's beta
  // path: broadcast it into the output rows and accumulate with beta = 1
  // instead of a scalar fix-up loop after the GEMM.
  if (has_bias_) {
    const float* b = bias_.value.data();
    for (int64_t i = 0; i < n; ++i) {
      std::copy(b, b + out_f_, out.data() + i * out_f_);
    }
  }
  gemm(false, true, n, out_f_, in_f_, 1.f, x.data(), in_f_,
       weight_.value.data(), in_f_, has_bias_ ? 1.f : 0.f, out.data(), out_f_);
  return out;
}

Tensor Linear::do_backward(const Tensor& grad_out) {
  const int64_t n = input_.dim(0);
  // dW += gout^T [out, n] * x [n, in]
  gemm(true, false, out_f_, in_f_, n, 1.f, grad_out.data(), out_f_,
       input_.data(), in_f_, 1.f, weight_.grad.data(), in_f_);
  if (has_bias_) {
    for (int64_t i = 0; i < n; ++i) {
      const float* row = grad_out.data() + i * out_f_;
      for (int64_t j = 0; j < out_f_; ++j) bias_.grad[j] += row[j];
    }
  }
  // dx = gout [n, out] * W [out, in]
  Tensor grad_in({n, in_f_});
  gemm(false, false, n, in_f_, out_f_, 1.f, grad_out.data(), out_f_,
       weight_.value.data(), in_f_, 0.f, grad_in.data(), in_f_);
  return grad_in;
}

}  // namespace rhw::nn
