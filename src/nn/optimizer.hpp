// SGD with momentum and decoupled-style weight decay (classic L2 added to the
// gradient), the optimizer used by all model-zoo training.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace rhw::nn {

struct SgdConfig {
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
};

class SGD {
 public:
  SGD(std::vector<Param*> params, SgdConfig cfg);

  void zero_grad();
  void step();

  void set_lr(float lr) { cfg_.lr = lr; }
  float lr() const { return cfg_.lr; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig cfg_;
};

}  // namespace rhw::nn
