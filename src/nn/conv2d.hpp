// 2-d convolution lowered to GEMM through im2col.
//
// Weight layout: [out_channels, in_channels * kh * kw] (the flattened form the
// crossbar mapper programs directly onto tiles). Bias: [out_channels].
#pragma once

#include "core/im2col.hpp"
#include "nn/module.hpp"

namespace rhw::nn {

class Conv2d final : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride = 1, int64_t pad = 1, bool bias = true);

  std::vector<Param*> parameters() override;
  std::string type_name() const override { return "Conv2d"; }
  bool is_weight_layer() const override { return true; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }
  int64_t in_channels() const { return in_c_; }
  int64_t out_channels() const { return out_c_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t pad() const { return pad_; }

 protected:
  Tensor do_forward(const Tensor& x) override;
  Tensor do_backward(const Tensor& grad_out) override;

 private:
  int64_t in_c_, out_c_, kernel_, stride_, pad_;
  bool has_bias_;
  Param weight_;
  Param bias_;

  // forward caches
  Tensor input_;     // [N, C, H, W]
  ConvGeom geom_;
};

}  // namespace rhw::nn
