#include "nn/module.hpp"

namespace rhw::nn {

namespace {
// Global (not thread-local): attack helpers toggle it around whole passes and
// evaluation code is structured single-threaded at this level; worker threads
// inside layers never toggle hooks.
bool g_hooks_enabled = true;
}  // namespace

Tensor Module::forward(const Tensor& x) {
  Tensor y = do_forward(x);
  if (post_hook_ && (!post_hook_gated_ || hooks_enabled())) post_hook_(y);
  return y;
}

Tensor Module::backward(const Tensor& grad_out) {
  if (backward_hook_ && (!backward_hook_gated_ || hooks_enabled())) {
    Tensor grad = grad_out;
    backward_hook_(grad);
    return do_backward(grad);
  }
  return do_backward(grad_out);
}

std::vector<std::pair<std::string, Tensor*>> Module::named_state() {
  std::vector<std::pair<std::string, Tensor*>> out;
  for (Param* p : parameters()) out.emplace_back(p->name, &p->value);
  return out;
}

bool Module::hooks_enabled() { return g_hooks_enabled; }

Module::HooksDisabledScope::HooksDisabledScope() : previous_(g_hooks_enabled) {
  g_hooks_enabled = false;
}

Module::HooksDisabledScope::~HooksDisabledScope() {
  g_hooks_enabled = previous_;
}

namespace {
void collect_weight_layers_impl(Module& m, std::vector<Module*>& out) {
  if (m.is_weight_layer()) out.push_back(&m);
  for (Module* child : m.children()) collect_weight_layers_impl(*child, out);
}
}  // namespace

std::vector<Module*> collect_weight_layers(Module& root) {
  std::vector<Module*> out;
  collect_weight_layers_impl(root, out);
  return out;
}

int64_t Module::num_parameters() {
  // Containers aggregate child parameters in parameters(), so no recursion
  // over children() here (it would double count).
  int64_t n = 0;
  for (Param* p : parameters()) n += p->value.numel();
  return n;
}

}  // namespace rhw::nn
