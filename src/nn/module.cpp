#include "nn/module.hpp"

#include "core/rng.hpp"

namespace rhw::nn {

namespace {
// Thread-local: exp::SweepEngine evaluates independent cells concurrently,
// and each cell toggles hook gating around its own attack-gradient passes
// (HooksDisabledScope). Hook checks always happen on the thread driving the
// cell's forward/backward — thread-pool workers inside layers only run GEMM
// chunks and never consult this flag — so per-thread gating is exactly the
// per-cell gating the scheduler needs.
thread_local bool g_hooks_enabled = true;
}  // namespace

Tensor Module::forward(const Tensor& x) {
  Tensor y = do_forward(x);
  if (post_hook_ && (!post_hook_gated_ || hooks_enabled())) post_hook_(y);
  return y;
}

Tensor Module::backward(const Tensor& grad_out) {
  if (backward_hook_ && (!backward_hook_gated_ || hooks_enabled())) {
    Tensor grad = grad_out;
    backward_hook_(grad);
    return do_backward(grad);
  }
  return do_backward(grad_out);
}

std::vector<std::pair<std::string, Tensor*>> Module::named_state() {
  std::vector<std::pair<std::string, Tensor*>> out;
  for (Param* p : parameters()) out.emplace_back(p->name, &p->value);
  return out;
}

bool Module::hooks_enabled() { return g_hooks_enabled; }

Module::HooksDisabledScope::HooksDisabledScope() : previous_(g_hooks_enabled) {
  g_hooks_enabled = false;
}

Module::HooksDisabledScope::~HooksDisabledScope() {
  g_hooks_enabled = previous_;
}

namespace {
void collect_weight_layers_impl(Module& m, std::vector<Module*>& out) {
  if (m.is_weight_layer()) out.push_back(&m);
  for (Module* child : m.children()) collect_weight_layers_impl(*child, out);
}
}  // namespace

std::vector<Module*> collect_weight_layers(Module& root) {
  std::vector<Module*> out;
  collect_weight_layers_impl(root, out);
  return out;
}

int Module::reseed_hook_streams(uint64_t seed) {
  int reseeded = 0;
  if (post_seeder_) {
    post_seeder_(derive_stream_seed(seed, 0));
    ++reseeded;
  }
  if (backward_seeder_) {
    backward_seeder_(derive_stream_seed(seed, 1));
    ++reseeded;
  }
  return reseeded;
}

namespace {
void reseed_impl(Module& m, uint64_t seed, uint64_t& dfs_index, int& count) {
  count += m.reseed_hook_streams(derive_stream_seed(seed, dfs_index++));
  for (Module* kid : m.children()) reseed_impl(*kid, seed, dfs_index, count);
}
}  // namespace

int reseed_noise_streams(Module& root, uint64_t seed) {
  uint64_t dfs_index = 0;
  int count = 0;
  reseed_impl(root, seed, dfs_index, count);
  return count;
}

int64_t Module::num_parameters() {
  // Containers aggregate child parameters in parameters(), so no recursion
  // over children() here (it would double count).
  int64_t n = 0;
  for (Param* p : parameters()) n += p->value.numel();
  return n;
}

}  // namespace rhw::nn
