// Sequential container. Owns its children; exposes them for hook attachment
// and generic state traversal (see nn/model_io.hpp).
#pragma once

#include <memory>

#include "nn/module.hpp"

namespace rhw::nn {

class Sequential final : public Module {
 public:
  Sequential() = default;

  // Builder-style append. Returns a reference to the added module.
  Module& append(ModulePtr m);

  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto m = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *m;
    append(std::move(m));
    return ref;
  }

  size_t size() const { return modules_.size(); }
  Module& operator[](size_t i) { return *modules_.at(i); }
  const Module& operator[](size_t i) const { return *modules_.at(i); }

  std::vector<Param*> parameters() override;
  std::vector<Module*> children() override;
  // Containers hold no state of their own; children carry it.
  std::vector<std::pair<std::string, Tensor*>> named_state() override {
    return {};
  }
  std::string type_name() const override { return "Sequential"; }
  void set_training(bool training) override;

 protected:
  Tensor do_forward(const Tensor& x) override;
  Tensor do_backward(const Tensor& grad_out) override;

 private:
  std::vector<ModulePtr> modules_;
};

}  // namespace rhw::nn
