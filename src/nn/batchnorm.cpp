#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace rhw::nn {

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_("gamma", Tensor({channels}, 1.f)),
      beta_("beta", Tensor({channels})),
      running_mean_({channels}),
      running_var_(Shape{channels}, 1.f) {}

std::vector<Param*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

std::vector<std::pair<std::string, Tensor*>> BatchNorm2d::named_state() {
  auto out = Module::named_state();
  out.emplace_back("running_mean", &running_mean_);
  out.emplace_back("running_var", &running_var_);
  return out;
}

Tensor BatchNorm2d::do_forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: bad input " + x.shape_str());
  }
  const int64_t n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
  const int64_t plane = h * w;
  const int64_t per_channel = n * plane;
  forward_was_training_ = training_;

  std::vector<float> mean(static_cast<size_t>(c));
  std::vector<float> var(static_cast<size_t>(c));
  if (training_) {
    for (int64_t ci = 0; ci < c; ++ci) {
      double acc = 0.0;
      for (int64_t ni = 0; ni < n; ++ni) {
        const float* p = x.data() + (ni * c + ci) * plane;
        for (int64_t i = 0; i < plane; ++i) acc += p[i];
      }
      const float mu = static_cast<float>(acc / per_channel);
      double vacc = 0.0;
      for (int64_t ni = 0; ni < n; ++ni) {
        const float* p = x.data() + (ni * c + ci) * plane;
        for (int64_t i = 0; i < plane; ++i) {
          const double d = p[i] - mu;
          vacc += d * d;
        }
      }
      mean[static_cast<size_t>(ci)] = mu;
      var[static_cast<size_t>(ci)] = static_cast<float>(vacc / per_channel);
      running_mean_[ci] =
          (1.f - momentum_) * running_mean_[ci] + momentum_ * mu;
      running_var_[ci] = (1.f - momentum_) * running_var_[ci] +
                         momentum_ * var[static_cast<size_t>(ci)];
    }
  } else {
    for (int64_t ci = 0; ci < c; ++ci) {
      mean[static_cast<size_t>(ci)] = running_mean_[ci];
      var[static_cast<size_t>(ci)] = running_var_[ci];
    }
  }

  x_hat_ = Tensor(x.shape());
  inv_std_ = Tensor({c});
  Tensor out(x.shape());
  for (int64_t ci = 0; ci < c; ++ci) {
    const float mu = mean[static_cast<size_t>(ci)];
    const float is = 1.f / std::sqrt(var[static_cast<size_t>(ci)] + eps_);
    inv_std_[ci] = is;
    const float g = gamma_.value[ci], b = beta_.value[ci];
    for (int64_t ni = 0; ni < n; ++ni) {
      const float* p = x.data() + (ni * c + ci) * plane;
      float* xh = x_hat_.data() + (ni * c + ci) * plane;
      float* o = out.data() + (ni * c + ci) * plane;
      for (int64_t i = 0; i < plane; ++i) {
        xh[i] = (p[i] - mu) * is;
        o[i] = g * xh[i] + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::do_backward(const Tensor& grad_out) {
  const int64_t n = grad_out.dim(0), c = channels_, h = grad_out.dim(2),
                w = grad_out.dim(3);
  const int64_t plane = h * w;
  const auto m = static_cast<float>(n * plane);
  Tensor grad_in(grad_out.shape());

  for (int64_t ci = 0; ci < c; ++ci) {
    // Reductions over the channel: sum(dy), sum(dy * x_hat)
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int64_t ni = 0; ni < n; ++ni) {
      const float* dy = grad_out.data() + (ni * c + ci) * plane;
      const float* xh = x_hat_.data() + (ni * c + ci) * plane;
      for (int64_t i = 0; i < plane; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    gamma_.grad[ci] += static_cast<float>(sum_dy_xhat);
    beta_.grad[ci] += static_cast<float>(sum_dy);

    const float g = gamma_.value[ci];
    const float is = inv_std_[ci];
    if (forward_was_training_) {
      const float k1 = static_cast<float>(sum_dy) / m;
      const float k2 = static_cast<float>(sum_dy_xhat) / m;
      for (int64_t ni = 0; ni < n; ++ni) {
        const float* dy = grad_out.data() + (ni * c + ci) * plane;
        const float* xh = x_hat_.data() + (ni * c + ci) * plane;
        float* dx = grad_in.data() + (ni * c + ci) * plane;
        for (int64_t i = 0; i < plane; ++i) {
          dx[i] = g * is * (dy[i] - k1 - xh[i] * k2);
        }
      }
    } else {
      // Inference-mode backward (used for attack gradients): statistics are
      // constants, so dx = dy * gamma * inv_std.
      for (int64_t ni = 0; ni < n; ++ni) {
        const float* dy = grad_out.data() + (ni * c + ci) * plane;
        float* dx = grad_in.data() + (ni * c + ci) * plane;
        for (int64_t i = 0; i < plane; ++i) dx[i] = g * is * dy[i];
      }
    }
  }
  return grad_in;
}

}  // namespace rhw::nn
