#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace rhw::nn {

Tensor softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_rows: rank-2 required");
  }
  const int64_t n = logits.dim(0), k = logits.dim(1);
  Tensor out(logits.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float* orow = out.data() + i * k;
    float mx = row[0];
    for (int64_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < k; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < k; ++j) orow[j] *= inv;
  }
  return out;
}

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<int64_t>& labels) {
  const int64_t n = logits.dim(0), k = logits.dim(1);
  if (static_cast<int64_t>(labels.size()) != n) {
    throw std::invalid_argument("SoftmaxCrossEntropy: labels size mismatch");
  }
  probs_ = softmax_rows(logits);
  labels_ = labels;
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    if (y < 0 || y >= k) {
      throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
    }
    loss += -std::log(std::max(probs_.at(i, y), 1e-12f));
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

Tensor SoftmaxCrossEntropy::backward() const {
  const int64_t n = probs_.dim(0), k = probs_.dim(1);
  Tensor grad = probs_;
  const float inv_n = 1.f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    grad.at(i, labels_[static_cast<size_t>(i)]) -= 1.f;
    float* row = grad.data() + i * k;
    for (int64_t j = 0; j < k; ++j) row[j] *= inv_n;
  }
  return grad;
}

double accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  const auto preds = logits.argmax_rows();
  if (preds.size() != labels.size() || preds.empty()) return 0.0;
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace rhw::nn
