#include "nn/conv2d.hpp"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/engine_registry.hpp"
#include "core/gemm.hpp"
#include "core/thread_pool.hpp"

namespace rhw::nn {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t pad, bool bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      weight_("weight",
              Tensor({out_channels, in_channels * kernel * kernel})),
      bias_("bias", Tensor({bias ? out_channels : 0})) {}

std::vector<Param*> Conv2d::parameters() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

Tensor Conv2d::do_forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != in_c_) {
    throw std::invalid_argument("Conv2d: bad input shape " + x.shape_str());
  }
  input_ = x;
  geom_ = ConvGeom{in_c_, x.dim(2), x.dim(3), kernel_, kernel_, stride_, pad_};
  const int64_t n = x.dim(0);

  // Fused batched path: the engine im2cols the whole batch (chunked) into
  // one wide column buffer, runs a single [out_c x col_rows] x
  // [col_rows x chunk*oh*ow] GEMM, and adds the bias in its vectorized
  // scatter epilogue — no per-sample small GEMMs, no scalar bias loop.
  Tensor out({n, out_c_, geom_.out_h(), geom_.out_w()});
  core::active_engine().conv2d_forward(
      geom_, n, x.data(), out_c_, weight_.value.data(),
      has_bias_ ? bias_.value.data() : nullptr, out.data());
  return out;
}

Tensor Conv2d::do_backward(const Tensor& grad_out) {
  const int64_t n = input_.dim(0);
  const int64_t oh = geom_.out_h(), ow = geom_.out_w();
  const int64_t col_rows = geom_.col_rows(), col_cols = geom_.col_cols();
  const int64_t in_stride = in_c_ * geom_.in_h * geom_.in_w;
  const int64_t out_stride = out_c_ * oh * ow;

  Tensor grad_in(input_.shape());

  // Per-chunk partial accumulators for dW / db, reduced at the end.
  const unsigned max_chunks = global_pool().size() + 2;
  std::vector<Tensor> w_partials;
  std::vector<Tensor> b_partials;
  w_partials.reserve(max_chunks);
  b_partials.reserve(max_chunks);
  for (unsigned i = 0; i < max_chunks; ++i) {
    w_partials.emplace_back(weight_.value.shape());
    b_partials.emplace_back(Shape{out_c_});
  }
  std::atomic<unsigned> slot_counter{0};

  parallel_for(n, [&](int64_t begin, int64_t end) {
    const unsigned slot = slot_counter.fetch_add(1);
    Tensor& wp = w_partials.at(slot);
    Tensor& bp = b_partials.at(slot);
    std::vector<float> cols(static_cast<size_t>(col_rows * col_cols));
    std::vector<float> dcols(static_cast<size_t>(col_rows * col_cols));
    for (int64_t i = begin; i < end; ++i) {
      const float* gout = grad_out.data() + i * out_stride;
      // dW += gout [out_c, col_cols] * cols^T [col_cols, col_rows]
      im2col(geom_, input_.data() + i * in_stride, cols.data());
      gemm(false, true, out_c_, col_rows, col_cols, 1.f, gout, col_cols,
           cols.data(), col_cols, 1.f, wp.data(), col_rows);
      // dcols = W^T [col_rows, out_c] * gout [out_c, col_cols]
      gemm(true, false, col_rows, col_cols, out_c_, 1.f,
           weight_.value.data(), col_rows, gout, col_cols, 0.f, dcols.data(),
           col_cols);
      col2im(geom_, dcols.data(), grad_in.data() + i * in_stride);
      if (has_bias_) {
        for (int64_t oc = 0; oc < out_c_; ++oc) {
          const float* plane = gout + oc * oh * ow;
          double acc = 0.0;
          for (int64_t p = 0; p < oh * ow; ++p) acc += plane[p];
          bp[oc] += static_cast<float>(acc);
        }
      }
    }
  });

  const unsigned used = slot_counter.load();
  for (unsigned s = 0; s < used; ++s) {
    weight_.grad.add_(w_partials[s]);
    if (has_bias_) bias_.grad.add_(b_partials[s]);
  }
  return grad_in;
}

}  // namespace rhw::nn
