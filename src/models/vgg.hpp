// VGG-style network builders (VGG8 / VGG16 / VGG19), width-scalable.
//
// A Model bundles the network with its *activation-memory sites*: one site per
// layer whose output is written to an on-chip activation memory (conv blocks
// post-ReLU and pooling outputs). Site labels follow the paper's layer
// numbering in Tables I/II, e.g. "2(P)" for a pooling layer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "nn/sequential.hpp"

namespace rhw::models {

struct ActivationSite {
  nn::Module* module = nullptr;  // non-owning; output of this module is stored
  std::string label;             // paper-style layer label: "0", "2(P)", "5(S)"
};

struct Model {
  std::unique_ptr<nn::Sequential> net;
  std::vector<ActivationSite> sites;
  std::string name;
  int64_t num_classes = 0;
};

struct VggConfig {
  int depth = 8;              // 8, 16 or 19
  int64_t num_classes = 10;
  int64_t in_size = 32;       // input spatial size (square)
  int64_t in_channels = 3;
  float width_mult = 0.25f;   // channel scaling (paper nets at 1.0)
  bool batchnorm = true;
};

Model make_vgg(const VggConfig& cfg);

}  // namespace rhw::models
