// Model zoo: builds, trains, caches and evaluates the paper's four networks.
//
// Training a model takes minutes on CPU, so every binary (tests, benches,
// examples) shares one on-disk cache of trained weights keyed by
// "<arch>_<dataset>". The default cache directory is <build>/zoo_cache
// (compile-time constant), overridable with the RHW_ZOO_CACHE env var.
#pragma once

#include <optional>
#include <string>

#include "data/synth_cifar.hpp"
#include "models/resnet.hpp"
#include "models/vgg.hpp"
#include "nn/optimizer.hpp"

namespace rhw::models {

struct TrainConfig {
  int epochs = 5;
  int64_t batch_size = 100;
  nn::SgdConfig sgd{};       // lr 0.05, momentum 0.9, wd 5e-4
  float lr_decay = 0.1f;     // applied once at 2/3 of training
  // Linear LR warmup over the first epoch; deep thin VGGs diverge without it.
  bool warmup = true;
  uint64_t seed = 7;
  bool verbose = false;
};

// Architecture/dataset-aware defaults used by get_trained: deeper nets get a
// lower base LR, 100-class runs get more epochs.
TrainConfig default_train_config(const std::string& arch,
                                 int64_t num_classes);

// Builds an untrained model. arch in {vgg8, vgg16, vgg19, resnet18}.
Model build_model(const std::string& arch, int64_t num_classes,
                  float width_mult = 0.25f, int64_t in_size = 32);

// Deep copy of a model (weights + non-trainable buffers such as BatchNorm
// statistics), returned in eval mode. width_mult/in_size must match how src
// was built — Model does not record them, so callers using non-default
// builds pass them explicitly.
Model clone_model(const Model& src, float width_mult = 0.25f,
                  int64_t in_size = 32);

// Clean accuracy (0..1) of net over ds, batched, eval mode. Restores the
// module's previous training flag afterwards.
double evaluate_accuracy(nn::Module& net, const data::Dataset& ds,
                         int64_t batch_size = 100);

// Trains in place; returns final test accuracy (0..1).
double train_model(Model& model, const data::SynthCifar& data,
                   const TrainConfig& cfg);

struct TrainedModel {
  Model model;
  double test_accuracy = 0.0;  // clean accuracy on data.test
};

// Load-or-train entry point used by all experiments. dataset_name is the key
// for the cache file ("synth-c10" / "synth-c100"). Without an explicit
// config, default_train_config(arch, classes) is used.
TrainedModel get_trained(const std::string& arch,
                         const std::string& dataset_name,
                         const data::SynthCifar& data,
                         std::optional<TrainConfig> cfg = std::nullopt);

std::string zoo_cache_dir();

}  // namespace rhw::models
