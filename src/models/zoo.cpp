#include "models/zoo.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/loss.hpp"
#include "nn/model_io.hpp"

#ifndef RHW_DEFAULT_CACHE_DIR
#define RHW_DEFAULT_CACHE_DIR "zoo_cache"
#endif

namespace rhw::models {

Model build_model(const std::string& arch, int64_t num_classes,
                  float width_mult, int64_t in_size) {
  if (arch == "resnet18") {
    ResNetConfig cfg;
    cfg.num_classes = num_classes;
    cfg.width_mult = width_mult;
    cfg.in_size = in_size;
    return make_resnet18(cfg);
  }
  VggConfig cfg;
  if (arch == "vgg8") {
    cfg.depth = 8;
  } else if (arch == "vgg16") {
    cfg.depth = 16;
  } else if (arch == "vgg19") {
    cfg.depth = 19;
  } else {
    throw std::invalid_argument("build_model: unknown arch " + arch);
  }
  cfg.num_classes = num_classes;
  cfg.width_mult = width_mult;
  cfg.in_size = in_size;
  return make_vgg(cfg);
}

Model clone_model(const Model& src, float width_mult, int64_t in_size) {
  Model copy = build_model(src.name, src.num_classes, width_mult, in_size);
  // state_dict traverses mutably; the source is not modified.
  auto& source = const_cast<Model&>(src);
  nn::load_state_dict(*copy.net, nn::state_dict(*source.net));
  copy.net->set_training(false);
  return copy;
}

double evaluate_accuracy(nn::Module& net, const data::Dataset& ds,
                         int64_t batch_size) {
  const bool was_training = net.training();
  net.set_training(false);
  int64_t correct = 0;
  for (int64_t begin = 0; begin < ds.size(); begin += batch_size) {
    const auto batch = ds.slice(begin, begin + batch_size);
    const Tensor logits = net.forward(batch.images);
    const auto preds = logits.argmax_rows();
    for (size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
  }
  net.set_training(was_training);
  return ds.size() == 0
             ? 0.0
             : static_cast<double>(correct) / static_cast<double>(ds.size());
}

double train_model(Model& model, const data::SynthCifar& data,
                   const TrainConfig& cfg) {
  rhw::RandomEngine rng(cfg.seed);
  nn::kaiming_init(*model.net, rng);
  nn::SGD opt(model.net->parameters(), cfg.sgd);
  nn::SoftmaxCrossEntropy loss;

  const int decay_epoch = std::max(1, cfg.epochs * 2 / 3);
  const int64_t warmup_steps =
      cfg.warmup ? (data.train.size() + cfg.batch_size - 1) / cfg.batch_size
                 : 0;
  int64_t step = 0;
  model.net->set_training(true);
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const float epoch_lr =
        epoch >= decay_epoch ? cfg.sgd.lr * cfg.lr_decay : cfg.sgd.lr;
    const auto order = data::shuffled_indices(data.train.size(), rng);
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin < data.train.size();
         begin += cfg.batch_size) {
      if (step < warmup_steps) {
        opt.set_lr(epoch_lr * static_cast<float>(step + 1) /
                   static_cast<float>(warmup_steps));
      } else {
        opt.set_lr(epoch_lr);
      }
      ++step;
      const int64_t end = std::min<int64_t>(begin + cfg.batch_size,
                                            data.train.size());
      std::vector<int64_t> idx(order.begin() + begin, order.begin() + end);
      const auto batch = data.train.gather(idx);
      opt.zero_grad();
      const Tensor logits = model.net->forward(batch.images);
      epoch_loss += loss.forward(logits, batch.labels);
      ++batches;
      model.net->backward(loss.backward());
      opt.step();
    }
    if (cfg.verbose) {
      std::printf("[zoo] %s epoch %d/%d  mean loss %.4f\n", model.name.c_str(),
                  epoch + 1, cfg.epochs, epoch_loss / std::max<int64_t>(1, batches));
      std::fflush(stdout);
    }
  }
  model.net->set_training(false);
  return evaluate_accuracy(*model.net, data.test, cfg.batch_size);
}

TrainConfig default_train_config(const std::string& arch,
                                 int64_t num_classes) {
  TrainConfig cfg;
  const bool deep = arch == "vgg16" || arch == "vgg19";
  cfg.sgd.lr = deep ? 0.02f : 0.05f;
  cfg.epochs = num_classes > 50 ? 8 : 5;
  return cfg;
}

std::string zoo_cache_dir() {
  if (const char* env = std::getenv("RHW_ZOO_CACHE"); env && *env) return env;
  return RHW_DEFAULT_CACHE_DIR;
}

TrainedModel get_trained(const std::string& arch,
                         const std::string& dataset_name,
                         const data::SynthCifar& data,
                         std::optional<TrainConfig> maybe_cfg) {
  const TrainConfig cfg =
      maybe_cfg ? *maybe_cfg
                : default_train_config(arch, data.train.num_classes);
  TrainedModel out;
  out.model = build_model(arch, data.train.num_classes);
  const std::string path =
      zoo_cache_dir() + "/" + arch + "_" + dataset_name + ".ckpt";
  if (rhw::file_exists(path)) {
    nn::load_model(*out.model.net, path);
    out.model.net->set_training(false);
    out.test_accuracy = evaluate_accuracy(*out.model.net, data.test);
    return out;
  }
  std::printf("[zoo] training %s on %s (no cache at %s)...\n", arch.c_str(),
              dataset_name.c_str(), path.c_str());
  std::fflush(stdout);
  out.test_accuracy = train_model(out.model, data, cfg);
  nn::save_model(*out.model.net, path);
  std::printf("[zoo] %s/%s trained: clean test accuracy %.2f%%\n", arch.c_str(),
              dataset_name.c_str(), 100.0 * out.test_accuracy);
  std::fflush(stdout);
  return out;
}

}  // namespace rhw::models
