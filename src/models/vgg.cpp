#include "models/vgg.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace rhw::models {

namespace {

constexpr int64_t kPool = -1;  // sentinel in channel plans

// Channel plans at width_mult = 1 (standard CIFAR VGG variants).
std::vector<int64_t> plan_for_depth(int depth) {
  switch (depth) {
    case 8:  // 6 conv + classifier
      return {64, 64, kPool, 128, 128, kPool, 256, 256, kPool};
    case 16:  // 13 conv
      return {64, 64, kPool, 128, 128, kPool, 256, 256, 256, kPool,
              512, 512, 512, kPool, 512, 512, 512, kPool};
    case 19:  // 16 conv — matches Table I numbering (P at 2, 5, 10, 15, 20)
      return {64, 64, kPool, 128, 128, kPool, 256, 256, 256, 256, kPool,
              512, 512, 512, 512, kPool, 512, 512, 512, 512, kPool};
    default:
      throw std::invalid_argument("make_vgg: depth must be 8, 16 or 19");
  }
}

int64_t scaled(int64_t channels, float mult) {
  return std::max<int64_t>(4, static_cast<int64_t>(
                                  static_cast<float>(channels) * mult));
}

}  // namespace

Model make_vgg(const VggConfig& cfg) {
  const auto plan = plan_for_depth(cfg.depth);
  Model model;
  model.net = std::make_unique<nn::Sequential>();
  model.name = "vgg" + std::to_string(cfg.depth);
  model.num_classes = cfg.num_classes;
  nn::Sequential& net = *model.net;

  int64_t channels = cfg.in_channels;
  int64_t spatial = cfg.in_size;
  int layer_index = 0;  // paper-style layer numbering over conv+pool entries
  for (int64_t entry : plan) {
    if (entry == kPool) {
      auto& pool = net.emplace<nn::MaxPool2d>(2);
      spatial /= 2;
      model.sites.push_back(
          {&pool, std::to_string(layer_index) + "(P)"});
    } else {
      const int64_t out_c = scaled(entry, cfg.width_mult);
      net.emplace<nn::Conv2d>(channels, out_c, 3, 1, 1, /*bias=*/!cfg.batchnorm);
      if (cfg.batchnorm) net.emplace<nn::BatchNorm2d>(out_c);
      auto& relu = net.emplace<nn::ReLU>();
      channels = out_c;
      model.sites.push_back({&relu, std::to_string(layer_index)});
    }
    ++layer_index;
  }
  if (spatial < 1) throw std::invalid_argument("make_vgg: input too small");

  net.emplace<nn::Flatten>();
  const int64_t feat = channels * spatial * spatial;
  const int64_t hidden = scaled(512, cfg.width_mult);
  net.emplace<nn::Linear>(feat, hidden);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(hidden, cfg.num_classes);
  return model;
}

}  // namespace rhw::models
