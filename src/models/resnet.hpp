// ResNet18 (CIFAR-style: 3x3 stem, stages [2,2,2,2], global average pool),
// width-scalable, with activation-memory sites labelled per Table II
// ('S' marks shortcut memories).
#pragma once

#include "models/vgg.hpp"  // Model / ActivationSite

namespace rhw::models {

struct ResNetConfig {
  int64_t num_classes = 10;
  int64_t in_size = 32;
  int64_t in_channels = 3;
  float width_mult = 0.25f;
};

Model make_resnet18(const ResNetConfig& cfg);

}  // namespace rhw::models
