#include "models/resnet.hpp"

#include <algorithm>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"

namespace rhw::models {

namespace {
int64_t scaled(int64_t channels, float mult) {
  return std::max<int64_t>(4, static_cast<int64_t>(
                                  static_cast<float>(channels) * mult));
}
}  // namespace

Model make_resnet18(const ResNetConfig& cfg) {
  Model model;
  model.net = std::make_unique<nn::Sequential>();
  model.name = "resnet18";
  model.num_classes = cfg.num_classes;
  nn::Sequential& net = *model.net;

  const int64_t c64 = scaled(64, cfg.width_mult);
  const int64_t c128 = scaled(128, cfg.width_mult);
  const int64_t c256 = scaled(256, cfg.width_mult);
  const int64_t c512 = scaled(512, cfg.width_mult);

  // Stem (CIFAR-style: 3x3, stride 1, no max-pool).
  net.emplace<nn::Conv2d>(cfg.in_channels, c64, 3, 1, 1, /*bias=*/false);
  net.emplace<nn::BatchNorm2d>(c64);
  auto& stem_relu = net.emplace<nn::ReLU>();
  int site = 0;
  model.sites.push_back({&stem_relu, std::to_string(site++)});

  struct StagePlan {
    int64_t channels;
    int64_t stride;
  };
  const StagePlan stages[] = {{c64, 1}, {c128, 2}, {c256, 2}, {c512, 2}};

  int64_t in_c = c64;
  for (const auto& stage : stages) {
    for (int block = 0; block < 2; ++block) {
      const int64_t stride = block == 0 ? stage.stride : 1;
      auto& rb = net.emplace<nn::ResidualBlock>(in_c, stage.channels, stride);
      in_c = stage.channels;
      // Activation memories inside the block: conv1 post-ReLU, the block
      // output (post final ReLU), and the shortcut projection when present
      // (the 'S' entries of Table II).
      model.sites.push_back({&rb.relu1(), std::to_string(site++)});
      model.sites.push_back({&rb, std::to_string(site++)});
      if (nn::Module* sc = rb.shortcut_tail()) {
        model.sites.push_back({sc, std::to_string(site++) + "(S)"});
      }
    }
  }

  net.emplace<nn::AvgPool2d>(0);  // global average pool
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(c512, cfg.num_classes);
  return model;
}

}  // namespace rhw::models
