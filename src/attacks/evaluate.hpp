// Attack evaluation harness: clean accuracy, adversarial accuracy and
// Adversarial Loss (AL = clean - adversarial, in percent; paper Sec. II-A).
//
// Two-model interface implements the paper's attack modes:
//   Attack-SW: grad_net == eval_net == software baseline
//   SH:        grad_net = software baseline, eval_net = hardware model
//   HH:        grad_net == eval_net == hardware model
// For SRAM experiments the "hardware model" is the baseline with noise hooks
// attached; hooks are globally disabled during gradient computation, so HH
// and SH coincide there exactly as in the paper.
#pragma once

#include <string>

#include "attacks/pgd.hpp"
#include "data/dataset.hpp"
#include "hw/backend.hpp"

namespace rhw::attacks {

enum class AttackKind { kFgsm, kPgd };

struct AdvEvalConfig {
  AttackKind kind = AttackKind::kFgsm;
  float epsilon = 0.1f;
  int pgd_steps = 7;
  float pgd_alpha = 0.f;        // 0 = auto
  bool pgd_random_start = true;
  int pgd_grad_samples = 1;     // >1 = EOT (adaptive attack on noisy hardware)
  int64_t batch_size = 100;
  uint64_t seed = 0xADE5;
};

struct AdvEvalResult {
  double clean_acc = 0.0;  // percent
  double adv_acc = 0.0;    // percent
  double adversarial_loss() const { return clean_acc - adv_acc; }
};

// Evaluates eval_net on ds cleanly and under adversaries crafted from
// grad_net. Both nets are run in eval mode; eval_net's noise hooks (if any)
// are active during evaluation but never during gradient computation.
AdvEvalResult evaluate_attack(nn::Module& grad_net, nn::Module& eval_net,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg);

// Adversarial accuracy only (percent); used by sweeps that already know the
// clean accuracy.
double adversarial_accuracy(nn::Module& grad_net, nn::Module& eval_net,
                            const data::Dataset& ds, const AdvEvalConfig& cfg);

// Clean accuracy (percent) with eval_net's hooks active.
double clean_accuracy(nn::Module& eval_net, const data::Dataset& ds,
                      int64_t batch_size = 100);

// -- hardware-backend seam ----------------------------------------------------
// The paper's attack modes are a choice of (grad backend, eval backend):
// Attack-SW = (ideal, ideal), SH = (ideal, hardware), HH = (hardware,
// hardware). Both backends must be prepare()d.
AdvEvalResult evaluate_attack(hw::HardwareBackend& grad_hw,
                              hw::HardwareBackend& eval_hw,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg);
double adversarial_accuracy(hw::HardwareBackend& grad_hw,
                            hw::HardwareBackend& eval_hw,
                            const data::Dataset& ds, const AdvEvalConfig& cfg);
double clean_accuracy(hw::HardwareBackend& eval_hw, const data::Dataset& ds,
                      int64_t batch_size = 100);

std::string attack_name(AttackKind kind);

}  // namespace rhw::attacks
