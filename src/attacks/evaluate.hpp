// Attack evaluation harness: clean accuracy, adversarial accuracy and
// Adversarial Loss (AL = clean - adversarial, in percent; paper Sec. II-A).
//
// Two-model interface implements the paper's attack modes:
//   Attack-SW: grad_net == eval_net == software baseline
//   SH:        grad_net = software baseline, eval_net = hardware model
//   HH:        grad_net == eval_net == hardware model
// For SRAM experiments the "hardware model" is the baseline with noise hooks
// attached; hooks are globally disabled during gradient computation, so HH
// and SH coincide there exactly as in the paper. (Stochastic-aware attacks —
// "eot_pgd", "square" — opt out of that gating by construction; see
// attacks/registry.hpp.)
//
// The adversary itself is a registry spec string (AdvEvalConfig::attack):
// the harness never names concrete attacks, mirroring how hardware is a
// hw::BackendRegistry spec on the other side of the experiment.
#pragma once

#include <string>

#include "attacks/registry.hpp"
#include "data/dataset.hpp"
#include "hw/backend.hpp"

namespace rhw::attacks {

// Default evaluation seed, shared by AdvEvalConfig and clean_accuracy so the
// two entry points agree when callers stick to defaults.
inline constexpr uint64_t kDefaultEvalSeed = 0xADE5;

struct AdvEvalConfig {
  // AttackRegistry spec ("fgsm", "pgd:steps=7", "eot_pgd:samples=8",
  // "square:queries=200", ...). Must be non-empty: evaluate_attack and
  // adversarial_accuracy throw std::invalid_argument on an empty spec rather
  // than silently degrading to a clean-only pass.
  std::string attack = "fgsm";
  // L-inf budget; overrides any eps=... in the spec (sweeps drive this axis
  // per cell). At 0 every attack returns the inputs unchanged; note the
  // "adversarial" pass still measures them under its own noise streams, so
  // on stochastic backends adv_acc at eps 0 is a fresh noise draw, not a
  // bitwise copy of clean_acc (exp::SweepEngine reports adv = clean for
  // eps 0 rows instead of evaluating them).
  float epsilon = 0.1f;
  int64_t batch_size = 100;
  uint64_t seed = kDefaultEvalSeed;
};

struct AdvEvalResult {
  double clean_acc = 0.0;  // percent
  double adv_acc = 0.0;    // percent
  double adversarial_loss() const { return clean_acc - adv_acc; }
};

// -- seeding contract ---------------------------------------------------------
// Every evaluation pass pins the nets' hook noise streams from streams
// derived off the config seed:
//   * clean pass:   reseed eval_net with derive(seed, kCleanPassStream)
//                   before its first forward;
//   * adversarial pass: grad_net gets derive(seed, kGradPassStream) once;
//     batch b is crafted under seed derive(derive(seed, kCraftStream), b),
//     and eval_net is re-pinned with derive(derive(seed, kAdvPassStream), b)
//     AFTER crafting and before measuring batch b — so attacks that query or
//     reseed the eval net while crafting (Square's black-box queries,
//     EOT-PGD in HH mode) cannot perturb the measurement streams.
// Consequences:
//   * evaluate_attack and adversarial_accuracy report bit-identical adv_acc
//     for the same config (the clean pass can no longer advance the noise
//     stream the adversarial pass consumes);
//   * repeated calls with the same config are bit-identical — evaluation is a
//     pure function of (nets, dataset, config);
//   * nearby user seeds do not share per-batch streams (splitmix64 avalanche
//     instead of the old additive seed + 0x9E37 * counter derivation).
inline constexpr uint64_t kCleanPassStream = 0xC1EA2;
inline constexpr uint64_t kAdvPassStream = 0xADF0;
inline constexpr uint64_t kGradPassStream = 0x66AD;
inline constexpr uint64_t kCraftStream = 0xCAF7;

// Evaluates eval_net on ds cleanly and under adversaries built from
// cfg.attack: gradient attacks craft on grad_net, black-box attacks query
// eval_net. Both nets are run in eval mode. Composes clean_accuracy and
// adversarial_accuracy, so its numbers match those entry points bit-for-bit.
// Throws std::invalid_argument on an empty or malformed attack spec.
AdvEvalResult evaluate_attack(nn::Module& grad_net, nn::Module& eval_net,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg);

// Adversarial accuracy only (percent); used by sweeps that already know the
// clean accuracy.
double adversarial_accuracy(nn::Module& grad_net, nn::Module& eval_net,
                            const data::Dataset& ds, const AdvEvalConfig& cfg);

// Clean accuracy (percent) with eval_net's hooks active; `seed` pins the
// noise streams for the pass (see the seeding contract above).
double clean_accuracy(nn::Module& eval_net, const data::Dataset& ds,
                      int64_t batch_size = 100,
                      uint64_t seed = kDefaultEvalSeed);

// -- hardware-backend seam ----------------------------------------------------
// The paper's attack modes are a choice of (grad backend, eval backend):
// Attack-SW = (ideal, ideal), SH = (ideal, hardware), HH = (hardware,
// hardware). Both backends must be prepare()d.
AdvEvalResult evaluate_attack(hw::HardwareBackend& grad_hw,
                              hw::HardwareBackend& eval_hw,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg);
double adversarial_accuracy(hw::HardwareBackend& grad_hw,
                            hw::HardwareBackend& eval_hw,
                            const data::Dataset& ds, const AdvEvalConfig& cfg);
double clean_accuracy(hw::HardwareBackend& eval_hw, const data::Dataset& ds,
                      int64_t batch_size = 100,
                      uint64_t seed = kDefaultEvalSeed);

}  // namespace rhw::attacks
