// Attack evaluation harness: clean accuracy, adversarial accuracy and
// Adversarial Loss (AL = clean - adversarial, in percent; paper Sec. II-A).
//
// Two-model interface implements the paper's attack modes:
//   Attack-SW: grad_net == eval_net == software baseline
//   SH:        grad_net = software baseline, eval_net = hardware model
//   HH:        grad_net == eval_net == hardware model
// For SRAM experiments the "hardware model" is the baseline with noise hooks
// attached; hooks are globally disabled during gradient computation, so HH
// and SH coincide there exactly as in the paper.
#pragma once

#include <string>

#include "attacks/pgd.hpp"
#include "data/dataset.hpp"
#include "hw/backend.hpp"

namespace rhw::attacks {

enum class AttackKind { kFgsm, kPgd };

// Default evaluation seed, shared by AdvEvalConfig and clean_accuracy so the
// two entry points agree when callers stick to defaults.
inline constexpr uint64_t kDefaultEvalSeed = 0xADE5;

struct AdvEvalConfig {
  AttackKind kind = AttackKind::kFgsm;
  float epsilon = 0.1f;
  int pgd_steps = 7;
  float pgd_alpha = 0.f;        // 0 = auto
  bool pgd_random_start = true;
  int pgd_grad_samples = 1;     // >1 = EOT (adaptive attack on noisy hardware)
  int64_t batch_size = 100;
  uint64_t seed = kDefaultEvalSeed;
};

struct AdvEvalResult {
  double clean_acc = 0.0;  // percent
  double adv_acc = 0.0;    // percent
  double adversarial_loss() const { return clean_acc - adv_acc; }
};

// -- seeding contract ---------------------------------------------------------
// Every evaluation pass pins the eval net's hook noise streams before its
// first forward (nn::reseed_noise_streams), from a stream derived off the
// config seed: the clean pass uses derive_stream_seed(seed, kCleanPassStream)
// and the adversarial pass derive_stream_seed(seed, kAdvPassStream). Per-batch
// attack seeds come from derive_stream_seed(derive_stream_seed(seed,
// kCraftStream), batch_index). Consequences:
//   * evaluate_attack and adversarial_accuracy report bit-identical adv_acc
//     for the same config (the clean pass can no longer advance the noise
//     stream the adversarial pass consumes);
//   * repeated calls with the same config are bit-identical — evaluation is a
//     pure function of (nets, dataset, config);
//   * nearby user seeds do not share per-batch streams (splitmix64 avalanche
//     instead of the old additive seed + 0x9E37 * counter derivation).
inline constexpr uint64_t kCleanPassStream = 0xC1EA2;
inline constexpr uint64_t kAdvPassStream = 0xADF0;
inline constexpr uint64_t kGradPassStream = 0x66AD;
inline constexpr uint64_t kCraftStream = 0xCAF7;

// Evaluates eval_net on ds cleanly and under adversaries crafted from
// grad_net. Both nets are run in eval mode; eval_net's noise hooks (if any)
// are active during evaluation but never during gradient computation.
// Composes clean_accuracy and adversarial_accuracy, so its numbers match
// those entry points bit-for-bit.
AdvEvalResult evaluate_attack(nn::Module& grad_net, nn::Module& eval_net,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg);

// Adversarial accuracy only (percent); used by sweeps that already know the
// clean accuracy.
double adversarial_accuracy(nn::Module& grad_net, nn::Module& eval_net,
                            const data::Dataset& ds, const AdvEvalConfig& cfg);

// Clean accuracy (percent) with eval_net's hooks active; `seed` pins the
// noise streams for the pass (see the seeding contract above).
double clean_accuracy(nn::Module& eval_net, const data::Dataset& ds,
                      int64_t batch_size = 100,
                      uint64_t seed = kDefaultEvalSeed);

// -- hardware-backend seam ----------------------------------------------------
// The paper's attack modes are a choice of (grad backend, eval backend):
// Attack-SW = (ideal, ideal), SH = (ideal, hardware), HH = (hardware,
// hardware). Both backends must be prepare()d.
AdvEvalResult evaluate_attack(hw::HardwareBackend& grad_hw,
                              hw::HardwareBackend& eval_hw,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg);
double adversarial_accuracy(hw::HardwareBackend& grad_hw,
                            hw::HardwareBackend& eval_hw,
                            const data::Dataset& ds, const AdvEvalConfig& cfg);
double clean_accuracy(hw::HardwareBackend& eval_hw, const data::Dataset& ds,
                      int64_t batch_size = 100,
                      uint64_t seed = kDefaultEvalSeed);

std::string attack_name(AttackKind kind);

}  // namespace rhw::attacks
