#include "attacks/evaluate.hpp"

namespace rhw::attacks {

namespace {

// Attack seed for one batch: (config seed, batch index) mixed through
// splitmix64 (see the seeding contract in evaluate.hpp). The same derivation
// seeds exp::SweepEngine cells.
uint64_t batch_craft_seed(uint64_t cfg_seed, uint64_t batch_index) {
  return derive_stream_seed(derive_stream_seed(cfg_seed, kCraftStream),
                            batch_index);
}

Tensor craft(nn::Module& grad_net, const Tensor& x,
             const std::vector<int64_t>& labels, const AdvEvalConfig& cfg,
             uint64_t batch_seed) {
  if (cfg.kind == AttackKind::kFgsm) {
    FgsmConfig fc;
    fc.epsilon = cfg.epsilon;
    return fgsm(grad_net, x, labels, fc);
  }
  PgdConfig pc;
  pc.epsilon = cfg.epsilon;
  pc.steps = cfg.pgd_steps;
  pc.alpha = cfg.pgd_alpha;
  pc.random_start = cfg.pgd_random_start;
  pc.grad_samples = cfg.pgd_grad_samples;
  pc.seed = batch_seed;
  return pgd(grad_net, x, labels, pc);
}

int64_t count_correct(nn::Module& net, const Tensor& x,
                      const std::vector<int64_t>& labels) {
  const Tensor logits = net.forward(x);
  const auto preds = logits.argmax_rows();
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace

AdvEvalResult evaluate_attack(nn::Module& grad_net, nn::Module& eval_net,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg) {
  // Composing the two single-pass entry points is the parity guarantee: each
  // pass pins its own noise streams from cfg.seed, so the clean pass cannot
  // perturb the adversarial numbers (and vice versa).
  AdvEvalResult out;
  out.clean_acc = clean_accuracy(eval_net, ds, cfg.batch_size, cfg.seed);
  out.adv_acc = adversarial_accuracy(grad_net, eval_net, ds, cfg);
  return out;
}

double adversarial_accuracy(nn::Module& grad_net, nn::Module& eval_net,
                            const data::Dataset& ds,
                            const AdvEvalConfig& cfg) {
  const bool grad_was_training = grad_net.training();
  const bool eval_was_training = eval_net.training();
  grad_net.set_training(false);
  eval_net.set_training(false);

  nn::reseed_noise_streams(eval_net,
                           derive_stream_seed(cfg.seed, kAdvPassStream));
  if (&grad_net != &eval_net) {
    nn::reseed_noise_streams(grad_net,
                             derive_stream_seed(cfg.seed, kGradPassStream));
  }

  int64_t adv_correct = 0;
  uint64_t batch_index = 0;
  for (int64_t begin = 0; begin < ds.size(); begin += cfg.batch_size) {
    const auto batch = ds.slice(begin, begin + cfg.batch_size);
    const Tensor adv = craft(grad_net, batch.images, batch.labels, cfg,
                             batch_craft_seed(cfg.seed, batch_index++));
    adv_correct += count_correct(eval_net, adv, batch.labels);
  }
  grad_net.set_training(grad_was_training);
  eval_net.set_training(eval_was_training);
  return ds.size() == 0 ? 0.0
                        : 100.0 * static_cast<double>(adv_correct) /
                              static_cast<double>(ds.size());
}

double clean_accuracy(nn::Module& eval_net, const data::Dataset& ds,
                      int64_t batch_size, uint64_t seed) {
  const bool was_training = eval_net.training();
  eval_net.set_training(false);
  nn::reseed_noise_streams(eval_net,
                           derive_stream_seed(seed, kCleanPassStream));
  int64_t correct = 0;
  for (int64_t begin = 0; begin < ds.size(); begin += batch_size) {
    const auto batch = ds.slice(begin, begin + batch_size);
    correct += count_correct(eval_net, batch.images, batch.labels);
  }
  eval_net.set_training(was_training);
  return ds.size() == 0 ? 0.0
                        : 100.0 * static_cast<double>(correct) /
                              static_cast<double>(ds.size());
}

AdvEvalResult evaluate_attack(hw::HardwareBackend& grad_hw,
                              hw::HardwareBackend& eval_hw,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg) {
  return evaluate_attack(grad_hw.module(), eval_hw.module(), ds, cfg);
}

double adversarial_accuracy(hw::HardwareBackend& grad_hw,
                            hw::HardwareBackend& eval_hw,
                            const data::Dataset& ds,
                            const AdvEvalConfig& cfg) {
  return adversarial_accuracy(grad_hw.module(), eval_hw.module(), ds, cfg);
}

double clean_accuracy(hw::HardwareBackend& eval_hw, const data::Dataset& ds,
                      int64_t batch_size, uint64_t seed) {
  return clean_accuracy(eval_hw.module(), ds, batch_size, seed);
}

std::string attack_name(AttackKind kind) {
  return kind == AttackKind::kFgsm ? "FGSM" : "PGD";
}

}  // namespace rhw::attacks
