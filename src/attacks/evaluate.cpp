#include "attacks/evaluate.hpp"

#include <stdexcept>

namespace rhw::attacks {

namespace {

// Attack seed for one batch: (config seed, batch index) mixed through
// splitmix64 (see the seeding contract in evaluate.hpp). The same derivation
// seeds exp::SweepEngine cells.
uint64_t batch_craft_seed(uint64_t cfg_seed, uint64_t batch_index) {
  return derive_stream_seed(derive_stream_seed(cfg_seed, kCraftStream),
                            batch_index);
}

// Builds the configured adversary, with the config's epsilon axis overriding
// whatever the spec embeds. The empty-spec check is explicit so the error
// says what actually went wrong (an empty spec used to fall through parsing
// and could be misread as "run a clean-only pass").
AttackPtr build_attack(const AdvEvalConfig& cfg) {
  if (cfg.attack.empty()) {
    throw std::invalid_argument(
        "AdvEvalConfig::attack is empty — an evaluation needs an attack spec "
        "(e.g. \"fgsm\", \"pgd:steps=7\"); use clean_accuracy for a "
        "clean-only pass");
  }
  AttackPtr attack = make_attack(cfg.attack);
  attack->set_epsilon(cfg.epsilon);
  return attack;
}

int64_t count_correct(nn::Module& net, const Tensor& x,
                      const std::vector<int64_t>& labels) {
  const Tensor logits = net.forward(x);
  const auto preds = logits.argmax_rows();
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace

AdvEvalResult evaluate_attack(nn::Module& grad_net, nn::Module& eval_net,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg) {
  // Validate the spec before paying for the clean pass — a typo'd attack
  // must fail fast, not after minutes of clean evaluation.
  (void)build_attack(cfg);
  // Composing the two single-pass entry points is the parity guarantee: each
  // pass pins its own noise streams from cfg.seed, so the clean pass cannot
  // perturb the adversarial numbers (and vice versa).
  AdvEvalResult out;
  out.clean_acc = clean_accuracy(eval_net, ds, cfg.batch_size, cfg.seed);
  out.adv_acc = adversarial_accuracy(grad_net, eval_net, ds, cfg);
  return out;
}

double adversarial_accuracy(nn::Module& grad_net, nn::Module& eval_net,
                            const data::Dataset& ds,
                            const AdvEvalConfig& cfg) {
  const AttackPtr attack = build_attack(cfg);

  const bool grad_was_training = grad_net.training();
  const bool eval_was_training = eval_net.training();
  grad_net.set_training(false);
  eval_net.set_training(false);

  const uint64_t adv_pass = derive_stream_seed(cfg.seed, kAdvPassStream);
  nn::reseed_noise_streams(eval_net, adv_pass);
  if (&grad_net != &eval_net) {
    nn::reseed_noise_streams(grad_net,
                             derive_stream_seed(cfg.seed, kGradPassStream));
  }

  int64_t adv_correct = 0;
  uint64_t batch_index = 0;
  for (int64_t begin = 0; begin < ds.size(); begin += cfg.batch_size) {
    const auto batch = ds.slice(begin, begin + cfg.batch_size);
    AttackContext ctx;
    ctx.grad_net = &grad_net;
    ctx.eval_net = &eval_net;
    ctx.seed = batch_craft_seed(cfg.seed, batch_index);
    const Tensor adv = attack->perturb(ctx, batch.images, batch.labels);
    // Re-pin the measurement streams per batch: crafting may have queried or
    // reseeded eval_net (Square, EOT-PGD in HH mode), and the measured
    // accuracy must be a pure function of (nets, dataset, config) no matter
    // which attack ran.
    nn::reseed_noise_streams(eval_net,
                             derive_stream_seed(adv_pass, batch_index));
    adv_correct += count_correct(eval_net, adv, batch.labels);
    ++batch_index;
  }
  grad_net.set_training(grad_was_training);
  eval_net.set_training(eval_was_training);
  return ds.size() == 0 ? 0.0
                        : 100.0 * static_cast<double>(adv_correct) /
                              static_cast<double>(ds.size());
}

double clean_accuracy(nn::Module& eval_net, const data::Dataset& ds,
                      int64_t batch_size, uint64_t seed) {
  const bool was_training = eval_net.training();
  eval_net.set_training(false);
  nn::reseed_noise_streams(eval_net,
                           derive_stream_seed(seed, kCleanPassStream));
  int64_t correct = 0;
  for (int64_t begin = 0; begin < ds.size(); begin += batch_size) {
    const auto batch = ds.slice(begin, begin + batch_size);
    correct += count_correct(eval_net, batch.images, batch.labels);
  }
  eval_net.set_training(was_training);
  return ds.size() == 0 ? 0.0
                        : 100.0 * static_cast<double>(correct) /
                              static_cast<double>(ds.size());
}

AdvEvalResult evaluate_attack(hw::HardwareBackend& grad_hw,
                              hw::HardwareBackend& eval_hw,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg) {
  return evaluate_attack(grad_hw.module(), eval_hw.module(), ds, cfg);
}

double adversarial_accuracy(hw::HardwareBackend& grad_hw,
                            hw::HardwareBackend& eval_hw,
                            const data::Dataset& ds,
                            const AdvEvalConfig& cfg) {
  return adversarial_accuracy(grad_hw.module(), eval_hw.module(), ds, cfg);
}

double clean_accuracy(hw::HardwareBackend& eval_hw, const data::Dataset& ds,
                      int64_t batch_size, uint64_t seed) {
  return clean_accuracy(eval_hw.module(), ds, batch_size, seed);
}

}  // namespace rhw::attacks
