#include "attacks/evaluate.hpp"

namespace rhw::attacks {

namespace {

Tensor craft(nn::Module& grad_net, const Tensor& x,
             const std::vector<int64_t>& labels, const AdvEvalConfig& cfg,
             uint64_t batch_seed) {
  if (cfg.kind == AttackKind::kFgsm) {
    FgsmConfig fc;
    fc.epsilon = cfg.epsilon;
    return fgsm(grad_net, x, labels, fc);
  }
  PgdConfig pc;
  pc.epsilon = cfg.epsilon;
  pc.steps = cfg.pgd_steps;
  pc.alpha = cfg.pgd_alpha;
  pc.random_start = cfg.pgd_random_start;
  pc.grad_samples = cfg.pgd_grad_samples;
  pc.seed = batch_seed;
  return pgd(grad_net, x, labels, pc);
}

int64_t count_correct(nn::Module& net, const Tensor& x,
                      const std::vector<int64_t>& labels) {
  const Tensor logits = net.forward(x);
  const auto preds = logits.argmax_rows();
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace

AdvEvalResult evaluate_attack(nn::Module& grad_net, nn::Module& eval_net,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg) {
  const bool grad_was_training = grad_net.training();
  const bool eval_was_training = eval_net.training();
  grad_net.set_training(false);
  eval_net.set_training(false);

  int64_t clean_correct = 0, adv_correct = 0;
  uint64_t batch_counter = 0;
  for (int64_t begin = 0; begin < ds.size(); begin += cfg.batch_size) {
    const auto batch = ds.slice(begin, begin + cfg.batch_size);
    clean_correct += count_correct(eval_net, batch.images, batch.labels);
    const Tensor adv = craft(grad_net, batch.images, batch.labels, cfg,
                             cfg.seed + 0x9E37 * (++batch_counter));
    adv_correct += count_correct(eval_net, adv, batch.labels);
  }

  grad_net.set_training(grad_was_training);
  eval_net.set_training(eval_was_training);

  AdvEvalResult out;
  const auto n = static_cast<double>(ds.size());
  if (n > 0) {
    out.clean_acc = 100.0 * static_cast<double>(clean_correct) / n;
    out.adv_acc = 100.0 * static_cast<double>(adv_correct) / n;
  }
  return out;
}

double adversarial_accuracy(nn::Module& grad_net, nn::Module& eval_net,
                            const data::Dataset& ds,
                            const AdvEvalConfig& cfg) {
  const bool grad_was_training = grad_net.training();
  const bool eval_was_training = eval_net.training();
  grad_net.set_training(false);
  eval_net.set_training(false);
  int64_t adv_correct = 0;
  uint64_t batch_counter = 0;
  for (int64_t begin = 0; begin < ds.size(); begin += cfg.batch_size) {
    const auto batch = ds.slice(begin, begin + cfg.batch_size);
    const Tensor adv = craft(grad_net, batch.images, batch.labels, cfg,
                             cfg.seed + 0x9E37 * (++batch_counter));
    adv_correct += count_correct(eval_net, adv, batch.labels);
  }
  grad_net.set_training(grad_was_training);
  eval_net.set_training(eval_was_training);
  return ds.size() == 0 ? 0.0
                        : 100.0 * static_cast<double>(adv_correct) /
                              static_cast<double>(ds.size());
}

double clean_accuracy(nn::Module& eval_net, const data::Dataset& ds,
                      int64_t batch_size) {
  const bool was_training = eval_net.training();
  eval_net.set_training(false);
  int64_t correct = 0;
  for (int64_t begin = 0; begin < ds.size(); begin += batch_size) {
    const auto batch = ds.slice(begin, begin + batch_size);
    correct += count_correct(eval_net, batch.images, batch.labels);
  }
  eval_net.set_training(was_training);
  return ds.size() == 0 ? 0.0
                        : 100.0 * static_cast<double>(correct) /
                              static_cast<double>(ds.size());
}

AdvEvalResult evaluate_attack(hw::HardwareBackend& grad_hw,
                              hw::HardwareBackend& eval_hw,
                              const data::Dataset& ds,
                              const AdvEvalConfig& cfg) {
  return evaluate_attack(grad_hw.module(), eval_hw.module(), ds, cfg);
}

double adversarial_accuracy(hw::HardwareBackend& grad_hw,
                            hw::HardwareBackend& eval_hw,
                            const data::Dataset& ds,
                            const AdvEvalConfig& cfg) {
  return adversarial_accuracy(grad_hw.module(), eval_hw.module(), ds, cfg);
}

double clean_accuracy(hw::HardwareBackend& eval_hw, const data::Dataset& ds,
                      int64_t batch_size) {
  return clean_accuracy(eval_hw.module(), ds, batch_size);
}

std::string attack_name(AttackKind kind) {
  return kind == AttackKind::kFgsm ? "FGSM" : "PGD";
}

}  // namespace rhw::attacks
