#include "attacks/fgsm.hpp"

namespace rhw::attacks {

Tensor input_gradient(nn::Module& net, const Tensor& x,
                      const std::vector<int64_t>& labels) {
  const bool was_training = net.training();
  net.set_training(false);
  Tensor grad;
  {
    nn::Module::HooksDisabledScope no_noise;
    const Tensor logits = net.forward(x);
    nn::SoftmaxCrossEntropy loss;
    loss.forward(logits, labels);
    grad = net.backward(loss.backward());
  }
  net.set_training(was_training);
  return grad;
}

Tensor fgsm(nn::Module& grad_net, const Tensor& x,
            const std::vector<int64_t>& labels, const FgsmConfig& cfg) {
  if (cfg.epsilon == 0.f) return x;
  Tensor grad = input_gradient(grad_net, x, labels);
  grad.sign_();
  Tensor adv = x;
  adv.add_scaled_(grad, cfg.epsilon);
  adv.clamp_(cfg.clip_lo, cfg.clip_hi);
  return adv;
}

}  // namespace rhw::attacks
