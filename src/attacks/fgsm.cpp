#include "attacks/fgsm.hpp"

namespace rhw::attacks {

namespace {

Tensor backprop_to_input(nn::Module& net, const Tensor& x,
                         const std::vector<int64_t>& labels) {
  const Tensor logits = net.forward(x);
  nn::SoftmaxCrossEntropy loss;
  loss.forward(logits, labels);
  return net.backward(loss.backward());
}

}  // namespace

Tensor input_gradient(nn::Module& net, const Tensor& x,
                      const std::vector<int64_t>& labels, bool with_noise) {
  const bool was_training = net.training();
  net.set_training(false);
  Tensor grad;
  if (with_noise) {
    grad = backprop_to_input(net, x, labels);
  } else {
    nn::Module::HooksDisabledScope no_noise;
    grad = backprop_to_input(net, x, labels);
  }
  net.set_training(was_training);
  return grad;
}

Tensor fgsm(nn::Module& grad_net, const Tensor& x,
            const std::vector<int64_t>& labels, const FgsmConfig& cfg) {
  if (cfg.epsilon == 0.f) return x;
  Tensor grad = input_gradient(grad_net, x, labels);
  grad.sign_();
  Tensor adv = x;
  adv.add_scaled_(grad, cfg.epsilon);
  adv.clamp_(cfg.clip_lo, cfg.clip_hi);
  return adv;
}

}  // namespace rhw::attacks
