#include "attacks/pgd.hpp"

#include <algorithm>

namespace rhw::attacks {

Tensor pgd(nn::Module& grad_net, const Tensor& x,
           const std::vector<int64_t>& labels, const PgdConfig& cfg) {
  if (cfg.epsilon == 0.f) return x;
  const float alpha =
      cfg.alpha > 0.f ? cfg.alpha
                      : 2.5f * cfg.epsilon / static_cast<float>(cfg.steps);

  Tensor adv = x;
  if (cfg.random_start) {
    rhw::RandomEngine rng(cfg.seed);
    float* a = adv.data();
    for (int64_t i = 0; i < adv.numel(); ++i) {
      a[i] += rng.uniform(-cfg.epsilon, cfg.epsilon);
    }
    adv.clamp_(cfg.clip_lo, cfg.clip_hi);
  }

  int grad_samples = std::max(1, cfg.grad_samples);
  const uint64_t eot_base = derive_stream_seed(cfg.seed, kEotSampleStream);
  if (cfg.noisy_grad && grad_samples > 1 &&
      nn::reseed_noise_streams(grad_net, eot_base) == 0) {
    // No stochastic hook streams on the grad net (e.g. EOT-PGD pointed at
    // the ideal software model in SH/transfer modes): every sample would be
    // bit-identical, and the averaged sign equals the single-sample sign —
    // collapse to one pass instead of paying samples x the craft cost.
    grad_samples = 1;
  }
  auto sample_gradient = [&](const Tensor& at, int step, int sample) {
    if (cfg.noisy_grad) {
      // One draw of the stochastic loss surface: independent noise streams
      // per (step, sample), all hooks live during forward and backward.
      nn::reseed_noise_streams(
          grad_net,
          derive_stream_seed(eot_base,
                             static_cast<uint64_t>(step) *
                                     static_cast<uint64_t>(grad_samples) +
                                 static_cast<uint64_t>(sample)));
      return input_gradient(grad_net, at, labels, /*with_noise=*/true);
    }
    return input_gradient(grad_net, at, labels);
  };
  for (int step = 0; step < cfg.steps; ++step) {
    Tensor grad = sample_gradient(adv, step, 0);
    for (int s = 1; s < grad_samples; ++s) {
      grad.add_(sample_gradient(adv, step, s));
    }
    grad.sign_();
    adv.add_scaled_(grad, alpha);
    // Project into the eps-ball around x, then the valid pixel range.
    const float* xc = x.data();
    float* a = adv.data();
    for (int64_t i = 0; i < adv.numel(); ++i) {
      a[i] = std::clamp(a[i], xc[i] - cfg.epsilon, xc[i] + cfg.epsilon);
      a[i] = std::clamp(a[i], cfg.clip_lo, cfg.clip_hi);
    }
  }
  return adv;
}

}  // namespace rhw::attacks
