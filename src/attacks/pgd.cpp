#include "attacks/pgd.hpp"

#include <algorithm>

namespace rhw::attacks {

Tensor pgd(nn::Module& grad_net, const Tensor& x,
           const std::vector<int64_t>& labels, const PgdConfig& cfg) {
  if (cfg.epsilon == 0.f) return x;
  const float alpha =
      cfg.alpha > 0.f ? cfg.alpha
                      : 2.5f * cfg.epsilon / static_cast<float>(cfg.steps);

  Tensor adv = x;
  if (cfg.random_start) {
    rhw::RandomEngine rng(cfg.seed);
    float* a = adv.data();
    for (int64_t i = 0; i < adv.numel(); ++i) {
      a[i] += rng.uniform(-cfg.epsilon, cfg.epsilon);
    }
    adv.clamp_(cfg.clip_lo, cfg.clip_hi);
  }

  const int grad_samples = std::max(1, cfg.grad_samples);
  for (int step = 0; step < cfg.steps; ++step) {
    Tensor grad = input_gradient(grad_net, adv, labels);
    for (int s = 1; s < grad_samples; ++s) {
      grad.add_(input_gradient(grad_net, adv, labels));
    }
    grad.sign_();
    adv.add_scaled_(grad, alpha);
    // Project into the eps-ball around x, then the valid pixel range.
    const float* xc = x.data();
    float* a = adv.data();
    for (int64_t i = 0; i < adv.numel(); ++i) {
      a[i] = std::clamp(a[i], xc[i] - cfg.epsilon, xc[i] + cfg.epsilon);
      a[i] = std::clamp(a[i], cfg.clip_lo, cfg.clip_hi);
    }
  }
  return adv;
}

}  // namespace rhw::attacks
