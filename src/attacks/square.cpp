#include "attacks/square.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace rhw::attacks {

namespace {

// Per-example margin z_true - max_{k != true} z_k from one batched query.
// Negative margin = misclassified = the attack has succeeded on that row.
std::vector<float> query_margins(nn::Module& net, const Tensor& x,
                                 const std::vector<int64_t>& labels) {
  const Tensor logits = net.forward(x);
  const int64_t n = logits.dim(0);
  const int64_t k = logits.dim(1);
  std::vector<float> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    float best_other = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < k; ++j) {
      if (j == y) continue;
      best_other = std::max(best_other, logits.at(i, j));
    }
    out[static_cast<size_t>(i)] = logits.at(i, y) - best_other;
  }
  return out;
}

// The paper's piecewise p schedule, rescaled to an arbitrary query budget:
// the window-area fraction halves as the search progresses from coarse
// stripes to single-pixel refinements.
float p_for_round(float p_init, int round, int budget) {
  const float frac =
      budget > 0 ? static_cast<float>(round) / static_cast<float>(budget) : 1.f;
  float p = p_init;
  for (const float threshold : {0.05f, 0.2f, 0.4f, 0.6f, 0.8f}) {
    if (frac >= threshold) p *= 0.5f;
  }
  return p;
}

}  // namespace

Tensor square_attack(nn::Module& eval_net, const Tensor& x,
                     const std::vector<int64_t>& labels,
                     const SquareConfig& cfg) {
  if (cfg.epsilon == 0.f || cfg.queries <= 0 || x.dim(0) == 0) return x;
  const bool was_training = eval_net.training();
  eval_net.set_training(false);

  // Geometry: [N,C,H,W] images, or [N,F] rows as a degenerate Fx1 grid.
  const int64_t n = x.dim(0);
  int64_t c = 1, h = 1, w = 1;
  if (x.rank() == 4) {
    c = x.dim(1);
    h = x.dim(2);
    w = x.dim(3);
  } else {
    h = x.numel() / std::max<int64_t>(n, 1);
  }
  const int64_t plane = h * w;

  RandomEngine rng(derive_stream_seed(cfg.seed, kSquareProposalStream));
  // Pin the query noise: the whole query sequence (and therefore the crafted
  // batch) is a pure function of cfg.seed. The evaluation harness re-pins
  // eval streams before measuring accuracy (attacks/evaluate.cpp).
  nn::reseed_noise_streams(eval_net,
                           derive_stream_seed(cfg.seed, kSquareQueryStream));

  auto pixel = [&](float* base, int64_t ni, int64_t ci, int64_t hi,
                   int64_t wi) -> float& {
    return base[((ni * c + ci) * h + hi) * w + wi];
  };

  // Init (query 1): vertical +-eps stripes — per (example, channel, column)
  // sign, the paper's initialization.
  Tensor adv = x;
  {
    float* a = adv.data();
    for (int64_t ni = 0; ni < n; ++ni) {
      for (int64_t ci = 0; ci < c; ++ci) {
        for (int64_t wi = 0; wi < w; ++wi) {
          const float delta = rng.bernoulli(0.5) ? cfg.epsilon : -cfg.epsilon;
          for (int64_t hi = 0; hi < h; ++hi) {
            float& v = pixel(a, ni, ci, hi, wi);
            v = std::clamp(v + delta, cfg.clip_lo, cfg.clip_hi);
          }
        }
      }
    }
  }
  std::vector<float> best = query_margins(eval_net, adv, labels);

  struct Proposal {
    int64_t r = 0, s = 0, side = 1;
    std::vector<float> delta;  // per-channel +-eps
  };
  std::vector<Proposal> proposals(static_cast<size_t>(n));

  for (int round = 1; round < cfg.queries; ++round) {
    const float p = p_for_round(cfg.p_init, round, cfg.queries);
    const int64_t side = std::clamp<int64_t>(
        static_cast<int64_t>(std::lround(
            std::sqrt(p * static_cast<float>(plane)))),
        1, std::min(h, w));

    // Build all candidates, one window proposal per example, then pay a
    // single batched query for the whole batch.
    Tensor cand = adv;
    float* cd = cand.data();
    const float* xc = x.data();
    for (int64_t ni = 0; ni < n; ++ni) {
      Proposal& prop = proposals[static_cast<size_t>(ni)];
      prop.side = side;
      prop.r = h > side ? static_cast<int64_t>(rng.next_below(
                              static_cast<uint64_t>(h - side + 1)))
                        : 0;
      prop.s = w > side ? static_cast<int64_t>(rng.next_below(
                              static_cast<uint64_t>(w - side + 1)))
                        : 0;
      prop.delta.assign(static_cast<size_t>(c), 0.f);
      for (int64_t ci = 0; ci < c; ++ci) {
        prop.delta[static_cast<size_t>(ci)] =
            rng.bernoulli(0.5) ? cfg.epsilon : -cfg.epsilon;
        for (int64_t hi = prop.r; hi < prop.r + side; ++hi) {
          for (int64_t wi = prop.s; wi < prop.s + side; ++wi) {
            const float base =
                xc[((ni * c + ci) * h + hi) * w + wi];
            pixel(cd, ni, ci, hi, wi) =
                std::clamp(base + prop.delta[static_cast<size_t>(ci)],
                           cfg.clip_lo, cfg.clip_hi);
          }
        }
      }
    }

    const std::vector<float> margins = query_margins(eval_net, cand, labels);
    float* a = adv.data();
    const float* cc = cand.data();
    for (int64_t ni = 0; ni < n; ++ni) {
      // Greedy acceptance: keep the window only where the margin improved.
      if (margins[static_cast<size_t>(ni)] >= best[static_cast<size_t>(ni)]) {
        continue;
      }
      best[static_cast<size_t>(ni)] = margins[static_cast<size_t>(ni)];
      const Proposal& prop = proposals[static_cast<size_t>(ni)];
      for (int64_t ci = 0; ci < c; ++ci) {
        for (int64_t hi = prop.r; hi < prop.r + prop.side; ++hi) {
          for (int64_t wi = prop.s; wi < prop.s + prop.side; ++wi) {
            pixel(a, ni, ci, hi, wi) =
                cc[((ni * c + ci) * h + hi) * w + wi];
          }
        }
      }
    }
  }

  eval_net.set_training(was_training);
  return adv;
}

}  // namespace rhw::attacks
