// FGSM adversarial training (Goodfellow et al. / Madry et al.), the
// algorithmic defense the paper's introduction singles out as the strongest
// software baseline. Included as an extension so hardware-noise defenses can
// be compared against a trained defense, not only inference-time ones.
#pragma once

#include <vector>

#include "data/synth_cifar.hpp"
#include "hw/backend.hpp"
#include "nn/module.hpp"
#include "nn/optimizer.hpp"

namespace rhw::attacks {

struct AdvTrainConfig {
  int epochs = 5;
  int64_t batch_size = 100;
  nn::SgdConfig sgd{};
  float lr_decay = 0.1f;        // once at 2/3 of training
  float epsilon = 0.1f;         // FGSM strength for the adversarial half
  float adv_fraction = 0.5f;    // fraction of each batch replaced by
                                // adversarial examples
  uint64_t seed = 11;
};

struct AdvTrainResult {
  double clean_test_acc = 0.0;  // 0..1
  double final_train_loss = 0.0;
};

// Trains net in place on a mix of clean and FGSM-adversarial batches
// (adversaries regenerated from the current parameters each step, as in
// standard adversarial training). Assumes the net is already initialized.
AdvTrainResult adversarial_train(nn::Module& net,
                                 const data::SynthCifar& data,
                                 const AdvTrainConfig& cfg);

// Hardware-in-the-loop variant: trains through a prepared backend's module,
// so forward passes see the hardware model (SRAM noise hooks stay gated out
// of the FGSM gradient step, crossbar peripheral hooks apply throughout —
// each substrate's own rules).
AdvTrainResult adversarial_train(hw::HardwareBackend& backend,
                                 const data::SynthCifar& data,
                                 const AdvTrainConfig& cfg);

}  // namespace rhw::attacks
