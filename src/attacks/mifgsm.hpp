// Momentum Iterative FGSM (Dong et al., 2018): iterated signed steps on an
// L1-normalized gradient accumulated with momentum, projected into the L-inf
// epsilon-ball. Momentum stabilizes the update direction across steps, which
// matters against noisy gradient sources — each step's gradient jitter
// (crossbar read noise, analog gradient reads) is damped by the running
// accumulator, so MI-FGSM degrades more gracefully than plain PGD when the
// loss surface is stochastic.
#pragma once

#include "attacks/fgsm.hpp"

namespace rhw::attacks {

struct MiFgsmConfig {
  float epsilon = 8.f / 255.f;
  int steps = 10;
  float alpha = 0.f;   // step size; 0 means epsilon / steps (paper default)
  float decay = 1.0f;  // momentum decay mu; 0 degenerates to iterated FGSM
  float clip_lo = 0.f;
  float clip_hi = 1.f;
};

// Crafts adversarial inputs using grad_net's loss landscape (gradients under
// the same hook-gating rules as FGSM/PGD).
Tensor mifgsm(nn::Module& grad_net, const Tensor& x,
              const std::vector<int64_t>& labels, const MiFgsmConfig& cfg);

}  // namespace rhw::attacks
