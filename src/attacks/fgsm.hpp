// Fast Gradient Sign Method (Goodfellow et al., 2014), Eq. (1) of the paper:
//   X_adv = X + eps * sign(grad_X L(theta, X, y_true))
//
// Gradients are always computed with activation-memory noise hooks disabled
// (paper Sec. III-A) and in inference mode (BatchNorm running statistics).
#pragma once

#include <vector>

#include "nn/loss.hpp"
#include "nn/module.hpp"

namespace rhw::attacks {

using nn::Tensor;

// d(mean CE loss)/d(input). Side effect: accumulates into the net's parameter
// gradients — callers that later train must zero_grad first (SGD::zero_grad
// does). Restores the net's training flag.
//
// with_noise=false (default) computes the gradient under HooksDisabledScope —
// the paper's rule that bit-error noise is absent during gradient computation
// (ungated crossbar peripheral hooks still apply; each substrate keeps its
// own rules). with_noise=true leaves every hook active: one sample of the
// *stochastic* loss surface, the building block of EOT gradient averaging
// (pgd.hpp, PgdConfig::noisy_grad).
Tensor input_gradient(nn::Module& net, const Tensor& x,
                      const std::vector<int64_t>& labels,
                      bool with_noise = false);

struct FgsmConfig {
  float epsilon = 0.1f;
  float clip_lo = 0.f;  // valid pixel range
  float clip_hi = 1.f;
};

// Crafts adversarial inputs using grad_net's loss landscape.
Tensor fgsm(nn::Module& grad_net, const Tensor& x,
            const std::vector<int64_t>& labels, const FgsmConfig& cfg);

}  // namespace rhw::attacks
