// Projected Gradient Descent attack (Madry et al., 2017): iterated FGSM steps
// projected back into the L-inf epsilon-ball around the clean input, with
// optional random start.
#pragma once

#include "attacks/fgsm.hpp"
#include "core/rng.hpp"

namespace rhw::attacks {

struct PgdConfig {
  float epsilon = 8.f / 255.f;
  int steps = 7;
  float alpha = 0.f;  // step size; 0 means 2.5 * epsilon / steps
  bool random_start = true;
  // Expectation-over-transformation (EOT): average the input gradient over
  // this many forward/backward passes per step. Against stochastic hardware
  // (fresh read-noise per pass) EOT is the canonical *adaptive* attack —
  // noise averages out and the systematic gradient re-emerges. 1 = plain PGD.
  int grad_samples = 1;
  // When true, every gradient sample is one draw of the *stochastic* loss
  // surface: the net's noise streams are reseeded with an independent
  // derive_stream_seed(seed, kEotSampleStream, counter) stream and the
  // backward pass runs with all hooks active (SRAM bit errors included, not
  // just the ungated crossbar peripherals). This is what makes EOT-PGD
  // stochastic-aware — plain grad_samples > 1 with noisy_grad = false only
  // averages the ungated gradient noise. Registered as "eot_pgd" in the
  // attack registry.
  bool noisy_grad = false;
  float clip_lo = 0.f;
  float clip_hi = 1.f;
  uint64_t seed = 0xADE5;  // random start + EOT sample streams
};

// Sub-stream tag for EOT gradient-sample reseeds: sample k of step t uses
// derive_stream_seed(derive_stream_seed(seed, kEotSampleStream), t * N + k).
inline constexpr uint64_t kEotSampleStream = 0xE07;

Tensor pgd(nn::Module& grad_net, const Tensor& x,
           const std::vector<int64_t>& labels, const PgdConfig& cfg);

}  // namespace rhw::attacks
