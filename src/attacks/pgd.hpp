// Projected Gradient Descent attack (Madry et al., 2017): iterated FGSM steps
// projected back into the L-inf epsilon-ball around the clean input, with
// optional random start.
#pragma once

#include "attacks/fgsm.hpp"
#include "core/rng.hpp"

namespace rhw::attacks {

struct PgdConfig {
  float epsilon = 8.f / 255.f;
  int steps = 7;
  float alpha = 0.f;  // step size; 0 means 2.5 * epsilon / steps
  bool random_start = true;
  // Expectation-over-transformation (EOT): average the input gradient over
  // this many forward/backward passes per step. Against stochastic hardware
  // (fresh read-noise per pass) EOT is the canonical *adaptive* attack —
  // noise averages out and the systematic gradient re-emerges. 1 = plain PGD.
  int grad_samples = 1;
  float clip_lo = 0.f;
  float clip_hi = 1.f;
  uint64_t seed = 0xADE5;  // for the random start
};

Tensor pgd(nn::Module& grad_net, const Tensor& x,
           const std::vector<int64_t>& labels, const PgdConfig& cfg);

}  // namespace rhw::attacks
