#include "attacks/mifgsm.hpp"

#include <algorithm>
#include <cmath>

namespace rhw::attacks {

Tensor mifgsm(nn::Module& grad_net, const Tensor& x,
              const std::vector<int64_t>& labels, const MiFgsmConfig& cfg) {
  if (cfg.epsilon == 0.f) return x;
  const float alpha =
      cfg.alpha > 0.f ? cfg.alpha
                      : cfg.epsilon / static_cast<float>(std::max(1, cfg.steps));

  const int64_t batch = x.dim(0);
  const int64_t per_example = batch > 0 ? x.numel() / batch : 0;
  Tensor adv = x;
  Tensor momentum = Tensor::zeros(x.shape());
  for (int step = 0; step < cfg.steps; ++step) {
    const Tensor grad = input_gradient(grad_net, adv, labels);
    // g <- decay * g + grad / ||grad||_1, L1 norm taken per example so a
    // loud sample cannot steer its neighbours' momentum.
    float* m = momentum.data();
    const float* g = grad.data();
    for (int64_t n = 0; n < batch; ++n) {
      double l1 = 0.0;
      for (int64_t i = n * per_example; i < (n + 1) * per_example; ++i) {
        l1 += std::fabs(g[i]);
      }
      const float inv = l1 > 1e-12 ? static_cast<float>(1.0 / l1) : 0.f;
      for (int64_t i = n * per_example; i < (n + 1) * per_example; ++i) {
        m[i] = cfg.decay * m[i] + g[i] * inv;
      }
    }
    // Signed step on the accumulated direction, then project into the
    // eps-ball around x and the valid pixel range.
    const float* xc = x.data();
    float* a = adv.data();
    for (int64_t i = 0; i < adv.numel(); ++i) {
      const float s = m[i] > 0.f ? 1.f : (m[i] < 0.f ? -1.f : 0.f);
      a[i] += alpha * s;
      a[i] = std::clamp(a[i], xc[i] - cfg.epsilon, xc[i] + cfg.epsilon);
      a[i] = std::clamp(a[i], cfg.clip_lo, cfg.clip_hi);
    }
  }
  return adv;
}

}  // namespace rhw::attacks
