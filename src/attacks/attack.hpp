// The attack seam: one stable interface, many swappable adversaries.
//
// Mirrors the hardware-backend seam (hw/backend.hpp): every adversary the
// repo evaluates — white-box gradient attacks, stochastic-aware adaptive
// attacks, gradient-free black-box attacks — implements Attack, and is
// constructed by string through attacks::AttackRegistry
// ("pgd:steps=7,alpha=0.01", see attacks/registry.hpp). Evaluation harnesses
// (attacks/evaluate.hpp, exp::SweepEngine) never name concrete attacks;
// swapping an attack is swapping a spec string.
//
// Threading/determinism contract: an Attack instance is an immutable
// configuration — perturb() is const and draws every random decision from
// streams derived (core/rng.hpp derive_stream_seed) off ctx.seed, so the
// same (attack, context, batch) is bit-reproducible and concurrent sweep
// cells can each hold their own cheap instance.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace rhw::attacks {

using nn::Tensor;

// Everything an attack may touch while crafting one batch.
//
// grad_net is the gradient source: the paper's attack modes make it either
// the software baseline (Attack-SW, SH) or the hardware model itself (HH).
// eval_net is the deployed model under attack — gradient-free attacks query
// it (noise hooks active: a black-box attacker only ever sees the noisy
// hardware), gradient attacks ignore it. seed is the per-batch craft seed
// derived by the evaluation harness; all attack randomness (random starts,
// EOT noise resampling, black-box proposals) must flow from it.
struct AttackContext {
  nn::Module* grad_net = nullptr;
  nn::Module* eval_net = nullptr;
  uint64_t seed = 0;
};

// Abstract adversary. Implementations are small config-holding classes
// registered in attacks/registry.cpp; the free-function cores (fgsm.hpp,
// pgd.hpp, mifgsm.hpp, square.hpp) stay usable directly.
class Attack {
 public:
  virtual ~Attack() = default;

  // Display name for tables/plots/JSON ("FGSM", "EOT-PGD", "Square").
  virtual std::string name() const = 0;

  // L-inf budget. Sweeps construct one attack per grid cell and override the
  // spec's eps with the cell's epsilon-axis value.
  virtual float epsilon() const = 0;
  virtual void set_epsilon(float eps) = 0;

  // True for black-box attacks that never touch grad_net (Square). These are
  // the control arm of the gradient-obfuscation audit: no amount of gradient
  // noise can mask a model from an attack that uses no gradients.
  virtual bool gradient_free() const { return false; }

  // Crafts adversarial examples for one batch. Must not mutate x; must be
  // deterministic given (config, ctx, x, labels). May reseed ctx nets' noise
  // streams (EOT resampling, black-box queries) — the evaluation harness
  // re-pins eval streams afterwards, see attacks/evaluate.hpp.
  virtual Tensor perturb(const AttackContext& ctx, const Tensor& x,
                         const std::vector<int64_t>& labels) const = 0;
};

using AttackPtr = std::unique_ptr<Attack>;

}  // namespace rhw::attacks
