// Gradient-obfuscation diagnostics.
//
// The paper attributes hardware robustness to "defense via gradient
// obfuscation" (Sec. II-A / Fig. 1): the hardware model's loss surface yields
// less useful attack gradients. This module quantifies that claim with the
// standard checks from the obfuscated-gradients literature (Athalye et al.):
//
//  - gradient agreement: cosine similarity between the hardware model's input
//    gradient and the software baseline's — low agreement means the hardware
//    gradients point somewhere else;
//  - white-box vs transfer gap: if adversaries transferred from the clean
//    software model (SH) beat adversaries crafted on the hardware model
//    itself (HH), the white-box gradients are obfuscated;
//  - random-direction floor: accuracy under random sign perturbations of the
//    same magnitude — any attack doing no better than random has fully
//    masked gradients.
#pragma once

#include "attacks/evaluate.hpp"

namespace rhw::attacks {

struct ObfuscationConfig {
  float epsilon = 0.1f;
  int64_t batch_size = 100;
  int64_t sample_count = 256;
  uint64_t seed = 0xD1A6;
};

struct ObfuscationReport {
  double grad_cosine = 0.0;        // mean cosine(hw grad, sw grad), [-1, 1]
  double clean_acc = 0.0;          // hardware model, percent
  double white_box_adv_acc = 0.0;  // HH-style FGSM on the hardware model
  double transfer_adv_acc = 0.0;   // SH-style FGSM from the software model
  double random_adv_acc = 0.0;     // random-sign perturbation floor

  // Transfer beating white-box is the textbook symptom of masked gradients.
  bool obfuscation_suspected() const {
    return transfer_adv_acc < white_box_adv_acc;
  }
};

// Diagnoses `hardware` against the `software` reference on (a subset of) ds.
ObfuscationReport diagnose_gradient_obfuscation(nn::Module& software,
                                                nn::Module& hardware,
                                                const data::Dataset& ds,
                                                const ObfuscationConfig& cfg);

// The individual checks, for callers that obtain the attack accuracies
// elsewhere (the gradient-obfuscation audit example computes white-box and
// transfer accuracies as sweep-engine cells and only needs these two):
// mean input-gradient cosine between hardware and software over ds ...
double gradient_agreement(nn::Module& software, nn::Module& hardware,
                          const data::Dataset& ds,
                          const ObfuscationConfig& cfg);
// ... and accuracy under random-sign perturbations of strength cfg.epsilon.
double random_perturbation_accuracy(nn::Module& net, const data::Dataset& ds,
                                    const ObfuscationConfig& cfg);

}  // namespace rhw::attacks
