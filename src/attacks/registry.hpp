// String-keyed factory for attacks — the adversary-side twin of
// hw::BackendRegistry.
//
// Every harness, bench, and example selects its adversary by config string
// instead of hand-wiring attack structs:
//
//   auto attack = attacks::make_attack("pgd:steps=7,alpha=0.01");
//   Tensor adv = attack->perturb(ctx, images, labels);
//
// Spec grammar (core/spec.hpp): "<key>" or "<key>:<opt>=<value>,...".
// Built-in keys and their options (docs/ATTACKS.md has the full story and
// which paper figure each combination reproduces):
//
//   fgsm     eps=<f>
//            — single signed-gradient step (Goodfellow et al.)
//   pgd      eps=<f> steps=<n> alpha=<f> rs=<0|1>
//            — iterated projected FGSM (Madry et al.); alpha=0 means
//              2.5*eps/steps, rs toggles the random start
//   eot_pgd  eps=<f> steps=<n> alpha=<f> rs=<0|1> samples=<n>
//            — PGD whose per-step gradient is averaged over `samples`
//              independently-reseeded noisy forward/backward passes
//              (expectation over transformation): the canonical adaptive
//              attack on stochastic hardware
//   mifgsm   eps=<f> steps=<n> alpha=<f> decay=<f>
//            — momentum iterative FGSM (Dong et al.); alpha=0 means
//              eps/steps
//   square   eps=<f> queries=<n> p=<f>
//            — gradient-free black-box random search (Andriushchenko et
//              al.); `queries` bounds the forward budget, `p` is the initial
//              window-area fraction
//
// Unknown keys and unknown options throw std::invalid_argument naming the
// offending token and the full spec. Downstream code can register additional
// attacks (registry().add) under new keys. The other two seams speak the
// same grammar: hw::BackendRegistry (hw/registry.hpp) for substrates,
// defenses::DefenseRegistry (defenses/registry.hpp) for defenses.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "attacks/attack.hpp"
#include "core/spec.hpp"

namespace rhw::attacks {

// Options parsed from the spec string: option name -> raw value text (shared
// grammar with hw::BackendOptions, see core/spec.hpp).
using AttackOptions = core::SpecOptions;
using AttackFactory = std::function<AttackPtr(const AttackOptions&)>;

class AttackRegistry {
 public:
  // Process-wide registry, built-ins registered on first use.
  static AttackRegistry& instance();

  // Registers (or replaces) a factory under `key`.
  void add(const std::string& key, AttackFactory factory);
  bool contains(const std::string& key) const;
  std::vector<std::string> keys() const;

  // Parses "<key>[:opt=v,...]" and invokes the factory. Throws
  // std::invalid_argument on an empty spec, an unknown key, an unknown
  // option, or a malformed value — always naming the offending token.
  AttackPtr create(const std::string& spec) const;

 private:
  AttackRegistry();
  std::map<std::string, AttackFactory> factories_;
};

// Shorthand for AttackRegistry::instance().create(spec).
AttackPtr make_attack(const std::string& spec);

// Display name ("FGSM", "EOT-PGD", ...) for a spec string; used by tables,
// plots and sweep JSON. Throws like make_attack on a bad spec.
std::string attack_display_name(const std::string& spec);

}  // namespace rhw::attacks
