#include "attacks/diagnostics.hpp"

#include <cmath>

#include "attacks/fgsm.hpp"

namespace rhw::attacks {

namespace {

// Pass tags for the diagnostics' noise-stream reseeds (same contract as
// attacks/evaluate.cpp): every entry point pins the nets' hook RNG streams
// from cfg.seed before its first forward, so reports are pure functions of
// (nets, dataset, config) — independent of what ran on the nets before.
constexpr uint64_t kDiagAttackStream = 0xD1A0;
constexpr uint64_t kDiagCosineStream = 0xD1A1;
constexpr uint64_t kDiagRandomStream = 0xD1A2;

double cosine(const Tensor& a, const Tensor& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0 ? dot / denom : 0.0;
}

int64_t count_correct(nn::Module& net, const Tensor& x,
                      const std::vector<int64_t>& labels) {
  const auto preds = net.forward(x).argmax_rows();
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace

double gradient_agreement(nn::Module& software, nn::Module& hardware,
                          const data::Dataset& ds,
                          const ObfuscationConfig& cfg) {
  const auto subset = ds.head(cfg.sample_count);
  const bool sw_training = software.training();
  const bool hw_training = hardware.training();
  software.set_training(false);
  hardware.set_training(false);
  nn::reseed_noise_streams(hardware,
                           derive_stream_seed(cfg.seed, kDiagCosineStream));
  double cos_acc = 0.0;
  int64_t batches = 0;
  for (int64_t begin = 0; begin < subset.size(); begin += cfg.batch_size) {
    const auto batch = subset.slice(begin, begin + cfg.batch_size);
    const Tensor g_hw = input_gradient(hardware, batch.images, batch.labels);
    const Tensor g_sw = input_gradient(software, batch.images, batch.labels);
    cos_acc += cosine(g_hw, g_sw);
    ++batches;
  }
  software.set_training(sw_training);
  hardware.set_training(hw_training);
  return batches > 0 ? cos_acc / static_cast<double>(batches) : 0.0;
}

double random_perturbation_accuracy(nn::Module& net, const data::Dataset& ds,
                                    const ObfuscationConfig& cfg) {
  const auto subset = ds.head(cfg.sample_count);
  const bool was_training = net.training();
  net.set_training(false);
  nn::reseed_noise_streams(net,
                           derive_stream_seed(cfg.seed, kDiagRandomStream));
  rhw::RandomEngine rng(cfg.seed);
  int64_t correct = 0;
  for (int64_t begin = 0; begin < subset.size(); begin += cfg.batch_size) {
    const auto batch = subset.slice(begin, begin + cfg.batch_size);
    Tensor adv = batch.images;
    for (float& v : adv.span()) {
      v += cfg.epsilon * (rng.gaussian() >= 0.f ? 1.f : -1.f);
    }
    adv.clamp_(0.f, 1.f);
    correct += count_correct(net, adv, batch.labels);
  }
  net.set_training(was_training);
  return subset.size() == 0 ? 0.0
                            : 100.0 * static_cast<double>(correct) /
                                  static_cast<double>(subset.size());
}

ObfuscationReport diagnose_gradient_obfuscation(nn::Module& software,
                                                nn::Module& hardware,
                                                const data::Dataset& ds,
                                                const ObfuscationConfig& cfg) {
  const auto subset = ds.head(cfg.sample_count);
  const bool sw_training = software.training();
  const bool hw_training = hardware.training();
  software.set_training(false);
  hardware.set_training(false);

  ObfuscationReport report;
  nn::reseed_noise_streams(hardware,
                           derive_stream_seed(cfg.seed, kDiagAttackStream));
  int64_t clean = 0, white = 0, transfer = 0;

  FgsmConfig fc;
  fc.epsilon = cfg.epsilon;
  for (int64_t begin = 0; begin < subset.size(); begin += cfg.batch_size) {
    const auto batch = subset.slice(begin, begin + cfg.batch_size);
    clean += count_correct(hardware, batch.images, batch.labels);
    const Tensor adv_white = fgsm(hardware, batch.images, batch.labels, fc);
    white += count_correct(hardware, adv_white, batch.labels);
    const Tensor adv_transfer = fgsm(software, batch.images, batch.labels, fc);
    transfer += count_correct(hardware, adv_transfer, batch.labels);
  }

  software.set_training(sw_training);
  hardware.set_training(hw_training);

  const auto n = static_cast<double>(subset.size());
  if (n > 0) {
    report.clean_acc = 100.0 * static_cast<double>(clean) / n;
    report.white_box_adv_acc = 100.0 * static_cast<double>(white) / n;
    report.transfer_adv_acc = 100.0 * static_cast<double>(transfer) / n;
  }
  report.grad_cosine = gradient_agreement(software, hardware, ds, cfg);
  report.random_adv_acc = random_perturbation_accuracy(hardware, ds, cfg);
  return report;
}

}  // namespace rhw::attacks
