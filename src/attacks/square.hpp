// Square Attack (Andriushchenko et al., 2020), L-inf flavour: score-based
// black-box random search. Maintains one adversarial candidate per example;
// each iteration proposes resetting a random square window of the
// perturbation to a fresh +-eps value per channel and keeps the proposal only
// if the margin loss (logit of the true class minus the best other logit)
// decreases.
//
// No gradients are ever taken: every query is a plain forward pass through
// the *deployed* model, noise hooks active — a black-box attacker only ever
// observes the noisy hardware. That makes Square the control arm of the
// gradient-obfuscation audit: stochastic hardware can hide its gradients
// from PGD, but it cannot hide its decisions from an attack that never asks
// for gradients (the obfuscated-gradients critique, Athalye et al.).
#pragma once

#include "core/rng.hpp"
#include "nn/module.hpp"

namespace rhw::attacks {

using nn::Tensor;

struct SquareConfig {
  float epsilon = 8.f / 255.f;
  int queries = 200;     // forward-pass budget (one batched query per round)
  float p_init = 0.1f;   // initial window area as a fraction of H*W
  float clip_lo = 0.f;
  float clip_hi = 1.f;
  uint64_t seed = 0xADE5;  // proposal stream + query-noise reseed
};

// Sub-streams derived from SquareConfig::seed: proposal randomness and the
// reseed pinning eval_net's noise streams at craft start (so a batch's query
// sequence is a pure function of the seed).
inline constexpr uint64_t kSquareProposalStream = 0x50A2;
inline constexpr uint64_t kSquareQueryStream = 0x50A3;

// Crafts adversarial inputs by querying eval_net only. Accepts [N,C,H,W]
// images or [N,F] feature rows (treated as a degenerate Fx1 grid).
Tensor square_attack(nn::Module& eval_net, const Tensor& x,
                     const std::vector<int64_t>& labels,
                     const SquareConfig& cfg);

}  // namespace rhw::attacks
