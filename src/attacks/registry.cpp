#include "attacks/registry.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "attacks/fgsm.hpp"
#include "attacks/mifgsm.hpp"
#include "attacks/pgd.hpp"
#include "attacks/square.hpp"

namespace rhw::attacks {

namespace {

core::OptionReader reader_for(const std::string& attack,
                              const AttackOptions& opts) {
  return core::OptionReader("attack", attack, opts);
}

// Iteration knobs (steps, samples, queries) must be >= 1: a zero would make
// the attack a silent no-op and the sweep would report adv ~= clean numbers
// that measured nothing — the same failure mode the empty-spec check in
// evaluate.cpp exists to prevent.
int positive_int(core::OptionReader& reader, const std::string& attack,
                 const std::string& key, int fallback) {
  const uint64_t v =
      reader.integer(key, static_cast<uint64_t>(fallback));
  if (v == 0) {
    throw std::invalid_argument("attack " + attack + ": option " + key +
                                " must be >= 1 (0 would be a no-op attack)");
  }
  if (v > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    throw std::invalid_argument("attack " + attack + ": option " + key +
                                " value " + std::to_string(v) +
                                " exceeds the supported range");
  }
  return static_cast<int>(v);
}

// -- adapters: config structs behind the Attack interface ---------------------
// The free-function cores (fgsm/pgd/mifgsm/square) remain directly usable;
// these classes only bind a parsed config and route the per-batch craft seed
// from AttackContext into it.

class FgsmAttack final : public Attack {
 public:
  explicit FgsmAttack(FgsmConfig cfg) : cfg_(cfg) {}
  std::string name() const override { return "FGSM"; }
  float epsilon() const override { return cfg_.epsilon; }
  void set_epsilon(float eps) override { cfg_.epsilon = eps; }
  Tensor perturb(const AttackContext& ctx, const Tensor& x,
                 const std::vector<int64_t>& labels) const override {
    return fgsm(*ctx.grad_net, x, labels, cfg_);
  }

 private:
  FgsmConfig cfg_;
};

class PgdAttack final : public Attack {
 public:
  PgdAttack(PgdConfig cfg, std::string name)
      : cfg_(cfg), name_(std::move(name)) {}
  std::string name() const override { return name_; }
  float epsilon() const override { return cfg_.epsilon; }
  void set_epsilon(float eps) override { cfg_.epsilon = eps; }
  Tensor perturb(const AttackContext& ctx, const Tensor& x,
                 const std::vector<int64_t>& labels) const override {
    PgdConfig cfg = cfg_;
    cfg.seed = ctx.seed;
    return pgd(*ctx.grad_net, x, labels, cfg);
  }

 private:
  PgdConfig cfg_;
  std::string name_;
};

class MiFgsmAttack final : public Attack {
 public:
  explicit MiFgsmAttack(MiFgsmConfig cfg) : cfg_(cfg) {}
  std::string name() const override { return "MI-FGSM"; }
  float epsilon() const override { return cfg_.epsilon; }
  void set_epsilon(float eps) override { cfg_.epsilon = eps; }
  Tensor perturb(const AttackContext& ctx, const Tensor& x,
                 const std::vector<int64_t>& labels) const override {
    return mifgsm(*ctx.grad_net, x, labels, cfg_);
  }

 private:
  MiFgsmConfig cfg_;
};

class SquareAttack final : public Attack {
 public:
  explicit SquareAttack(SquareConfig cfg) : cfg_(cfg) {}
  std::string name() const override { return "Square"; }
  float epsilon() const override { return cfg_.epsilon; }
  void set_epsilon(float eps) override { cfg_.epsilon = eps; }
  bool gradient_free() const override { return true; }
  Tensor perturb(const AttackContext& ctx, const Tensor& x,
                 const std::vector<int64_t>& labels) const override {
    SquareConfig cfg = cfg_;
    cfg.seed = ctx.seed;
    // Black-box: queries go to the deployed model, never the gradient source.
    return square_attack(*ctx.eval_net, x, labels, cfg);
  }

 private:
  SquareConfig cfg_;
};

// -- factories ----------------------------------------------------------------

AttackPtr make_fgsm(const AttackOptions& opts) {
  auto reader = reader_for("fgsm", opts);
  FgsmConfig cfg;
  cfg.epsilon = static_cast<float>(reader.number("eps", cfg.epsilon));
  reader.finish();
  return std::make_unique<FgsmAttack>(cfg);
}

// Shared knob parsing for the PGD family; `eot` switches on the
// stochastic-aware gradient sampling and the `samples` knob.
AttackPtr make_pgd_family(const std::string& key, const AttackOptions& opts,
                          bool eot) {
  auto reader = reader_for(key, opts);
  PgdConfig cfg;
  cfg.epsilon = static_cast<float>(reader.number("eps", cfg.epsilon));
  cfg.steps = positive_int(reader, key, "steps", cfg.steps);
  cfg.alpha = static_cast<float>(reader.number("alpha", cfg.alpha));
  cfg.random_start = reader.integer("rs", cfg.random_start ? 1 : 0) != 0;
  if (eot) {
    cfg.grad_samples = positive_int(reader, key, "samples", 8);
    cfg.noisy_grad = true;
  }
  reader.finish();
  return std::make_unique<PgdAttack>(cfg, eot ? "EOT-PGD" : "PGD");
}

AttackPtr make_mifgsm(const AttackOptions& opts) {
  auto reader = reader_for("mifgsm", opts);
  MiFgsmConfig cfg;
  cfg.epsilon = static_cast<float>(reader.number("eps", cfg.epsilon));
  cfg.steps = positive_int(reader, "mifgsm", "steps", cfg.steps);
  cfg.alpha = static_cast<float>(reader.number("alpha", cfg.alpha));
  cfg.decay = static_cast<float>(reader.number("decay", cfg.decay));
  reader.finish();
  return std::make_unique<MiFgsmAttack>(cfg);
}

AttackPtr make_square(const AttackOptions& opts) {
  auto reader = reader_for("square", opts);
  SquareConfig cfg;
  cfg.epsilon = static_cast<float>(reader.number("eps", cfg.epsilon));
  cfg.queries = positive_int(reader, "square", "queries", cfg.queries);
  cfg.p_init = static_cast<float>(reader.number("p", cfg.p_init));
  reader.finish();
  return std::make_unique<SquareAttack>(cfg);
}

}  // namespace

AttackRegistry::AttackRegistry() {
  factories_["fgsm"] = make_fgsm;
  factories_["pgd"] = [](const AttackOptions& opts) {
    return make_pgd_family("pgd", opts, /*eot=*/false);
  };
  factories_["eot_pgd"] = [](const AttackOptions& opts) {
    return make_pgd_family("eot_pgd", opts, /*eot=*/true);
  };
  factories_["mifgsm"] = make_mifgsm;
  factories_["square"] = make_square;
}

AttackRegistry& AttackRegistry::instance() {
  static AttackRegistry registry;
  return registry;
}

void AttackRegistry::add(const std::string& key, AttackFactory factory) {
  factories_[key] = std::move(factory);
}

bool AttackRegistry::contains(const std::string& key) const {
  return factories_.count(key) > 0;
}

std::vector<std::string> AttackRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, factory] : factories_) out.push_back(key);
  return out;
}

AttackPtr AttackRegistry::create(const std::string& spec) const {
  const core::ParsedSpec parsed = core::parse_spec("attack", spec);
  const auto it = factories_.find(parsed.key);
  if (it == factories_.end()) {
    std::ostringstream os;
    os << "unknown attack '" << parsed.key << "'; registered:";
    for (const auto& [name, factory] : factories_) os << ' ' << name;
    throw std::invalid_argument(os.str());
  }
  try {
    return it->second(parsed.options);
  } catch (const std::invalid_argument& e) {
    // Factories report the offending option key/value; add the full spec so
    // errors surfacing far from the call site stay actionable.
    throw std::invalid_argument("attack spec '" + spec + "': " + e.what());
  }
}

AttackPtr make_attack(const std::string& spec) {
  return AttackRegistry::instance().create(spec);
}

std::string attack_display_name(const std::string& spec) {
  return make_attack(spec)->name();
}

}  // namespace rhw::attacks
