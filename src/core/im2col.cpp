#include "core/im2col.hpp"

#include <algorithm>

namespace rhw {

void im2col(const ConvGeom& g, const float* input, float* columns) {
  im2col_ld(g, input, columns, g.col_cols());
}

void im2col_ld(const ConvGeom& g, const float* input, float* columns,
               int64_t ld) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t plane = g.in_h * g.in_w;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    const float* chan = input + c * plane;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out_row = columns + row * ld;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t in_y = y * g.stride + kh - g.pad;
          float* dst = out_row + y * ow;
          if (in_y < 0 || in_y >= g.in_h) {
            std::fill(dst, dst + ow, 0.f);
            continue;
          }
          const float* src_row = chan + in_y * g.in_w;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t in_x = x * g.stride + kw - g.pad;
            dst[x] = (in_x >= 0 && in_x < g.in_w) ? src_row[in_x] : 0.f;
          }
        }
      }
    }
  }
}

void col2im(const ConvGeom& g, const float* columns, float* input_grad) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t plane = g.in_h * g.in_w;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    float* chan = input_grad + c * plane;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* col_row = columns + row * (oh * ow);
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t in_y = y * g.stride + kh - g.pad;
          if (in_y < 0 || in_y >= g.in_h) continue;
          float* dst_row = chan + in_y * g.in_w;
          const float* src = col_row + y * ow;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t in_x = x * g.stride + kw - g.pad;
            if (in_x >= 0 && in_x < g.in_w) dst_row[in_x] += src[x];
          }
        }
      }
    }
  }
}

}  // namespace rhw
