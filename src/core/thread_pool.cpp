#include "core/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace rhw {

namespace {
thread_local bool t_inside_pool_worker = false;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task.fn(task.begin, task.end);
    {
      std::lock_guard lock(mutex_);
      if (--outstanding_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(int64_t n,
                              const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int64_t workers = static_cast<int64_t>(size());
  if (workers == 0 || t_inside_pool_worker || n == 1) {
    fn(0, n);
    return;
  }
  const int64_t chunks = std::min<int64_t>(workers + 1, n);
  const int64_t step = (n + chunks - 1) / chunks;

  // The calling thread takes the first chunk itself; the rest go to the pool.
  {
    std::lock_guard lock(mutex_);
    for (int64_t c = 1; c < chunks; ++c) {
      const int64_t b = c * step;
      const int64_t e = std::min<int64_t>(n, b + step);
      if (b >= e) continue;
      queue_.push_back(Task{fn, b, e});
      ++outstanding_;
    }
  }
  cv_task_.notify_all();
  fn(0, std::min<int64_t>(step, n));
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [this] { return outstanding_ == 0; });
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 1u;
  }());
  return pool;
}

void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn) {
  global_pool().parallel_for(n, fn);
}

}  // namespace rhw
