#include "core/serialize.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace rhw {

namespace {
constexpr uint32_t kTensorMagic = 0x54574852;  // "RHWT"
constexpr uint32_t kCkptMagic = 0x43574852;    // "RHWC"

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("serialize: truncated stream");
  return v;
}
}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  write_pod(os, kTensorMagic);
  write_pod(os, static_cast<uint32_t>(t.rank()));
  for (int i = 0; i < t.rank(); ++i) write_pod(os, t.dim(i));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  if (read_pod<uint32_t>(is) != kTensorMagic) {
    throw std::runtime_error("serialize: bad tensor magic");
  }
  const auto rank = read_pod<uint32_t>(is);
  if (rank > 8) throw std::runtime_error("serialize: implausible rank");
  Shape shape(rank);
  for (auto& d : shape) d = read_pod<int64_t>(is);
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("serialize: truncated tensor data");
  return t;
}

void write_checkpoint(const std::string& path, const TensorMap& tensors) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  write_pod(os, kCkptMagic);
  write_pod(os, static_cast<uint64_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    write_pod(os, static_cast<uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_tensor(os, tensor);
  }
  if (!os) throw std::runtime_error("write failed: " + path);
}

TensorMap read_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  if (read_pod<uint32_t>(is) != kCkptMagic) {
    throw std::runtime_error("serialize: bad checkpoint magic in " + path);
  }
  const auto count = read_pod<uint64_t>(is);
  TensorMap out;
  for (uint64_t i = 0; i < count; ++i) {
    const auto len = read_pod<uint32_t>(is);
    std::string name(len, '\0');
    is.read(name.data(), len);
    if (!is) throw std::runtime_error("serialize: truncated name");
    out.emplace(std::move(name), read_tensor(is));
  }
  return out;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

}  // namespace rhw
