#include "core/gemm.hpp"

#include "core/engine.hpp"
#include "core/engine_registry.hpp"

namespace rhw {

// The free functions are the stable call surface for layer code; since the
// engine seam landed they are one-line dispatchers to the process-wide
// active engine (core/engine_registry.hpp). The historical blocked kernel
// lives on as core::BlockedEngine — still the default selection.

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b, int64_t ldb,
          float beta, float* c, int64_t ldc) {
  core::active_engine().gemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb,
                             beta, c, ldc);
}

void gemv(bool trans_a, int64_t m, int64_t n, float alpha, const float* a,
          int64_t lda, const float* x, float beta, float* y) {
  core::active_engine().gemv(trans_a, m, n, alpha, a, lda, x, beta, y);
}

void gemm_naive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                float alpha, const float* a, int64_t lda, const float* b,
                int64_t ldb, float beta, float* c, int64_t ldc) {
  // Same BLAS edge contract as every engine: alpha == 0 never reads A or B,
  // beta == 0 overwrites C (0 * NaN must not resurrect stale values).
  if (alpha == 0.f) {
    core::detail::scale_c(m, n, beta, c, ldc);
    return;
  }
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      const double prior =
          beta == 0.f ? 0.0 : static_cast<double>(beta) * c[i * ldc + j];
      c[i * ldc + j] = static_cast<float>(alpha * acc + prior);
    }
  }
}

}  // namespace rhw
