#include "core/gemm.hpp"

#include <algorithm>
#include <vector>

#include "core/thread_pool.hpp"

namespace rhw {

namespace {

// Packs op(X) (m x k either direct or transposed view of x) into a contiguous
// row-major buffer. Packing keeps a single fast inner kernel for all four
// transpose combinations.
void pack_op(bool trans, int64_t rows, int64_t cols, const float* x,
             int64_t ldx, float* out) {
  if (!trans) {
    for (int64_t i = 0; i < rows; ++i) {
      const float* src = x + i * ldx;
      std::copy(src, src + cols, out + i * cols);
    }
  } else {
    // out[i][j] = x[j][i]
    for (int64_t j = 0; j < cols; ++j) {
      const float* src = x + j * ldx;
      for (int64_t i = 0; i < rows; ++i) {
        out[i * cols + j] = src[i];
      }
    }
  }
}

constexpr int64_t kBlockK = 256;
constexpr int64_t kBlockN = 512;

// C[m x n] (ldc) += alpha * A[m x k] (row-major, contiguous) * B[k x n]
// (row-major, contiguous). Rows are split across the pool by the caller.
void kernel_rows(int64_t row_begin, int64_t row_end, int64_t n, int64_t k,
                 float alpha, const float* a, const float* b, float* c,
                 int64_t ldc) {
  for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
    const int64_t k1 = std::min(k, k0 + kBlockK);
    for (int64_t n0 = 0; n0 < n; n0 += kBlockN) {
      const int64_t n1 = std::min(n, n0 + kBlockN);
      for (int64_t i = row_begin; i < row_end; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * ldc;
        for (int64_t p = k0; p < k1; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.f) continue;
          const float* brow = b + p * n;
          for (int64_t j = n0; j < n1; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b, int64_t ldb,
          float beta, float* c, int64_t ldc) {
  // Scale / clear C.
  if (beta == 0.f) {
    for (int64_t i = 0; i < m; ++i) std::fill(c + i * ldc, c + i * ldc + n, 0.f);
  } else if (beta != 1.f) {
    for (int64_t i = 0; i < m; ++i) {
      float* row = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.f) return;

  std::vector<float> a_packed;
  const float* a_ptr = a;
  if (trans_a || lda != k) {
    a_packed.resize(static_cast<size_t>(m * k));
    pack_op(trans_a, m, k, a, lda, a_packed.data());
    a_ptr = a_packed.data();
  }
  std::vector<float> b_packed;
  const float* b_ptr = b;
  if (trans_b || ldb != n) {
    b_packed.resize(static_cast<size_t>(k * n));
    pack_op(trans_b, k, n, b, ldb, b_packed.data());
    b_ptr = b_packed.data();
  }

  // Only parallelize when the work is worth the synchronization cost.
  const int64_t flops = m * n * k;
  if (flops < (1 << 16)) {
    kernel_rows(0, m, n, k, alpha, a_ptr, b_ptr, c, ldc);
    return;
  }
  parallel_for(m, [&](int64_t begin, int64_t end) {
    kernel_rows(begin, end, n, k, alpha, a_ptr, b_ptr, c, ldc);
  });
}

void gemm_naive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                float alpha, const float* a, int64_t lda, const float* b,
                int64_t ldb, float beta, float* c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] =
          static_cast<float>(alpha * acc + beta * c[i * ldc + j]);
    }
  }
}

void gemv(bool trans_a, int64_t m, int64_t n, float alpha, const float* a,
          int64_t lda, const float* x, float beta, float* y) {
  // beta == 0 must overwrite, never scale: stale/uninitialized y (NaN, inf)
  // survives y *= 0 — mirror gemm's explicit zero-fill.
  if (beta == 0.f) {
    std::fill(y, y + (trans_a ? n : m), 0.f);
  }
  // op(A) is (m x n) when !trans_a viewed as given; compute y = op(A) x.
  if (!trans_a) {
    for (int64_t i = 0; i < m; ++i) {
      double acc = 0.0;
      const float* row = a + i * lda;
      for (int64_t j = 0; j < n; ++j) acc += static_cast<double>(row[j]) * x[j];
      y[i] = static_cast<float>(alpha * acc + beta * y[i]);
    }
  } else {
    // y (n) = alpha * A^T (n x m) x (m) + beta y
    if (beta != 0.f && beta != 1.f) {
      for (int64_t j = 0; j < n; ++j) y[j] *= beta;
    }
    for (int64_t i = 0; i < m; ++i) {
      const float xv = alpha * x[i];
      if (xv == 0.f) continue;
      const float* row = a + i * lda;
      for (int64_t j = 0; j < n; ++j) y[j] += xv * row[j];
    }
  }
}

}  // namespace rhw
