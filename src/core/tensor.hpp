// Dense row-major float tensor used throughout the library.
//
// Design notes (see DESIGN.md §5): value semantics, contiguous storage only,
// shapes are small vectors of int64. All layer code works on 4-d activation
// tensors [N, C, H, W] or 2-d matrices [N, F]; Tensor itself is rank-agnostic.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace rhw {

using Shape = std::vector<int64_t>;

class RandomEngine;  // core/rng.hpp

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill_value);
  Tensor(Shape shape, std::vector<float> values);

  // -- factories ------------------------------------------------------------
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  // i.i.d. N(mean, stddev^2)
  static Tensor randn(Shape shape, RandomEngine& rng, float mean = 0.f,
                      float stddev = 1.f);
  // i.i.d. U[lo, hi)
  static Tensor rand_uniform(Shape shape, RandomEngine& rng, float lo = 0.f,
                             float hi = 1.f);
  static Tensor from_span(Shape shape, std::span<const float> values);

  // -- shape ----------------------------------------------------------------
  const Shape& shape() const { return shape_; }
  int64_t dim(int i) const { return shape_.at(static_cast<size_t>(i)); }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  // Returns a tensor sharing no storage (copy) with a new shape of equal
  // numel. Cheap in practice because callers reshape before heavy math.
  Tensor reshaped(Shape new_shape) const;
  // In-place metadata-only reshape (numel must match).
  void reshape_inplace(Shape new_shape);

  // -- element access ---------------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;
  float& at(int64_t n, int64_t c, int64_t h, int64_t w);
  float at(int64_t n, int64_t c, int64_t h, int64_t w) const;

  // -- elementwise in-place ops ----------------------------------------------
  void fill(float v);
  Tensor& add_(const Tensor& other);           // this += other
  Tensor& add_scaled_(const Tensor& other, float alpha);  // this += alpha*other
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(const Tensor& other);           // Hadamard
  Tensor& scale_(float alpha);
  Tensor& add_scalar_(float v);
  Tensor& clamp_(float lo, float hi);
  Tensor& relu_();
  Tensor& sign_();                             // elementwise sign, 0 -> 0

  // -- elementwise returning new tensor ---------------------------------------
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(const Tensor& other) const;
  Tensor scaled(float alpha) const;

  // -- reductions --------------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  float abs_max() const;
  float l2_norm() const;
  // Index of max element along last dim for a 2-d [N, F] tensor.
  std::vector<int64_t> argmax_rows() const;

  std::string shape_str() const;

 private:
  Shape shape_;
  int64_t numel_ = 0;
  std::vector<float> data_;

  int64_t index2(int64_t i, int64_t j) const;
  int64_t index4(int64_t n, int64_t c, int64_t h, int64_t w) const;
};

// numel of a shape
int64_t shape_numel(const Shape& shape);

}  // namespace rhw
