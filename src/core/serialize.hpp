// Minimal binary serialization for tensors and model checkpoints.
//
// Format: little-endian, magic "RHWT" per tensor record:
//   u32 magic | u32 rank | i64 dims[rank] | f32 data[numel]
// Checkpoints are a sequence of (name, tensor) records with magic "RHWC".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "core/tensor.hpp"

namespace rhw {

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

using TensorMap = std::map<std::string, Tensor>;

void write_checkpoint(const std::string& path, const TensorMap& tensors);
// Throws std::runtime_error on missing/corrupt file.
TensorMap read_checkpoint(const std::string& path);

bool file_exists(const std::string& path);

}  // namespace rhw
