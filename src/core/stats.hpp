// Small statistics helpers shared by the SRAM noise characterization and the
// experiment harness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rhw {

struct RunningStats {
  int64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void push(double x) {
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
  }
  double variance() const { return count > 1 ? m2 / (count - 1) : 0.0; }
  double stddev() const;
};

double mean_of(std::span<const double> xs);
double stddev_of(std::span<const double> xs);
double median_of(std::vector<double> xs);  // by value: sorts a copy
double percentile_of(std::vector<double> xs, double p);  // p in [0, 100]

}  // namespace rhw
