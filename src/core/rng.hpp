// Deterministic random number generation.
//
// xoshiro256** seeded through SplitMix64, plus the uniform/normal helpers the
// library needs. All randomness in the repo flows through RandomEngine
// instances owned by callers, so every experiment is bit-reproducible from its
// seed (DESIGN.md §5).
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace rhw {

// SplitMix64: used to expand a 64-bit seed into xoshiro state and to derive
// independent sub-streams (derive_stream_seed).
inline uint64_t splitmix64_next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Derives the seed of an independent RNG stream from (seed, stream_id).
// Both inputs pass through the SplitMix64 avalanche, so nearby user seeds
// (seed vs seed+1) and nearby stream ids yield uncorrelated streams and
// (seed, id) pairs do not collide the way additive schemes like
// `seed + C * id` do. This is the repo-wide derivation for per-batch,
// per-pass and per-cell streams (attacks/evaluate.cpp, exp/sweep.hpp); the
// reproducibility contract in README.md documents it.
inline uint64_t derive_stream_seed(uint64_t seed, uint64_t stream_id) {
  uint64_t state = seed;
  state = splitmix64_next(state) ^ stream_id;
  return splitmix64_next(state);
}

class RandomEngine {
 public:
  using result_type = uint64_t;

  explicit RandomEngine(uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
    has_cached_gauss_ = false;
  }

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // U[0,1) with 53-bit resolution.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  float uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  // Bernoulli(p)
  bool bernoulli(double p) { return next_double() < p; }

  // Uniform integer in [0, n)
  uint64_t next_below(uint64_t n) {
    // Modulo bias is negligible for the small n used here, but use Lemire's
    // multiply-shift reduction anyway for uniformity.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * n;
    return static_cast<uint64_t>(m >> 64);
  }

  int64_t uniform_int(int64_t lo, int64_t hi_inclusive) {
    return lo + static_cast<int64_t>(
                    next_below(static_cast<uint64_t>(hi_inclusive - lo + 1)));
  }

  // N(0,1) via Box-Muller (cached pair for speed).
  float gaussian() {
    if (has_cached_gauss_) {
      has_cached_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = 0.0;
    do {
      u1 = next_double();
    } while (u1 <= 1e-300);
    const double u2 = next_double();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_gauss_ = static_cast<float>(radius * std::sin(angle));
    has_cached_gauss_ = true;
    return static_cast<float>(radius * std::cos(angle));
  }

  float gaussian(float mean, float stddev) {
    return mean + stddev * gaussian();
  }

  // Deterministic sub-stream derivation, e.g. per-layer or per-tile engines.
  RandomEngine fork(uint64_t stream_id) {
    uint64_t mix = next_u64() ^ (0xD1B54A32D192ED03ULL * (stream_id + 1));
    return RandomEngine(mix);
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
  bool has_cached_gauss_ = false;
  float cached_gauss_ = 0.f;
};

}  // namespace rhw
