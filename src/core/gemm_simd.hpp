// SimdEngine: register-tiled packed-panel GEMM (the `simd` engine key).
//
// The micro-kernel keeps an MR x NR accumulator tile in registers across the
// whole k loop, reading A from MR-wide k-major packed panels and B from
// NR-wide packed panels. The kernel body is written with GCC vector
// extensions (8-float lanes), so one source compiles everywhere:
//
//   * x86-64: a second copy of every micro-kernel is built with
//     target("avx2,fma") and selected at runtime via __builtin_cpu_supports —
//     no global -mavx2 flag, the binary still runs on SSE2-only hosts;
//   * aarch64: the baseline copy lowers to NEON (Advanced SIMD is baseline);
//   * anywhere else: the baseline copy lowers to whatever the target has,
//     worst case scalar code — the portable fallback.
//
// Tile shape is spec-selectable (mr in {1,2,4,6,8}, nr in {8,16}); 6x16 is
// the default — a 6x2-vector accumulator tile plus one B strip fills the
// sixteen 256-bit registers of AVX2, and it measured fastest on the VGG-8
// conv GEMM shape. See docs/ENGINES.md for the knob table and measured
// impact.
#pragma once

#include "core/engine.hpp"

namespace rhw::core {

class SimdEngine : public Engine {
 public:
  struct Config {
    int64_t mr = 6;       // micro-tile rows, one of {1, 2, 4, 6, 8}
    int64_t nr = 16;      // micro-tile cols, one of {8, 16}
    int64_t threads = 0;  // 0 = shared pool; 1 = always serial
  };
  // Throws std::invalid_argument (naming the offending knob) on a tile
  // shape outside the instantiated set.
  explicit SimdEngine(const Config& cfg);

  std::string key() const override { return "simd"; }

  void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            float alpha, const float* a, int64_t lda, const float* b,
            int64_t ldb, float beta, float* c, int64_t ldc) const override;

  // Vectorized gemv: lane-parallel accumulation (see the determinism note in
  // engine.hpp — per spec the lane split is fixed, so results are
  // reproducible; they differ from the scalar reference by rounding only).
  void gemv(bool trans_a, int64_t m, int64_t n, float alpha, const float* a,
            int64_t lda, const float* x, float beta, float* y) const override;

  // True when the runtime-dispatched fast path (AVX2+FMA on x86-64, NEON on
  // aarch64) is active rather than the portable baseline. Informational —
  // benchmarks and CI logs record it.
  static bool fast_path();

 private:
  Config cfg_;
};

}  // namespace rhw::core
