// im2col / col2im for convolution lowering.
//
// Layout: input activations are [C, H, W] per sample (the conv layer loops
// over the batch). The column buffer is [C*KH*KW, OH*OW] row-major so that a
// weight matrix [OC, C*KH*KW] times the column buffer yields [OC, OH*OW].
#pragma once

#include <cstdint>

namespace rhw {

struct ConvGeom {
  int64_t in_c = 0, in_h = 0, in_w = 0;
  int64_t kernel_h = 0, kernel_w = 0;
  int64_t stride = 1;
  int64_t pad = 0;

  int64_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  int64_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  int64_t col_rows() const { return in_c * kernel_h * kernel_w; }
  int64_t col_cols() const { return out_h() * out_w(); }
};

// Expands one sample's activations into the column buffer (size
// col_rows x col_cols, caller-allocated).
void im2col(const ConvGeom& g, const float* input, float* columns);

// Strided variant for batch-fused lowering (core::Engine::conv2d_forward):
// rows are written with leading dimension ld >= col_cols, so several
// samples' columns can sit side by side in one [col_rows x batch*col_cols]
// buffer feeding a single GEMM. im2col(...) == im2col_ld(..., col_cols()).
void im2col_ld(const ConvGeom& g, const float* input, float* columns,
               int64_t ld);

// Scatter-adds a column buffer back into an input-shaped gradient buffer
// (caller must zero it first if accumulation from zero is desired).
void col2im(const ConvGeom& g, const float* columns, float* input_grad);

}  // namespace rhw
