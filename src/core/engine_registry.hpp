// String-keyed factory for compute engines — the fifth registry seam, after
// hw::BackendRegistry, attacks::AttackRegistry, defenses::DefenseRegistry and
// exp::ExperimentRegistry. Same core/spec grammar, same token-naming error
// contract:
//
//   auto engine = core::make_engine("simd:mr=6,nr=16");
//   core::set_active_engine("blocked:bk=128");   // process-wide
//
// Built-in keys and their options (docs/ENGINES.md has defaults, contract
// and measured impact):
//
//   naive     (no options)   reference triple loop, double accumulators
//   blocked   bk=<n> bn=<n> zero_skip=<0|1>   cache-blocked scalar kernel
//   simd      mr=<1|2|4|6|8> nr=<8|16> threads=<0|1>   register-tiled
//             micro-kernel GEMM (AVX2/FMA, NEON, portable fallback)
//
// The *active* engine is a process-wide selection that every core::gemm /
// core::gemv / fused-conv call routes through. It is lazily initialized from
// $RHW_ENGINE (default "blocked" — bit-compatible with the historical
// kernel); ExperimentRegistry::run_experiment sets it from the experiment's
// `engine=` knob before any cell runs, and the chosen canonical spec is
// recorded in every rhw-sweep-v4 artifact. Selection is cheap (one atomic
// load per kernel call) and set_active_engine is safe to call from any
// thread, but swapping engines mid-computation gives no ordering guarantee —
// experiments swap once, up front.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/spec.hpp"

namespace rhw::core {

using EngineOptions = SpecOptions;
using EngineFactory = std::function<EnginePtr(const EngineOptions&)>;

class EngineRegistry {
 public:
  // Process-wide registry, built-ins registered on first use.
  static EngineRegistry& instance();

  // Registers (or replaces) a factory under `key`.
  void add(const std::string& key, EngineFactory factory);
  bool contains(const std::string& key) const;
  std::vector<std::string> keys() const;

  // Parses "<key>[:opt=v,...]" and invokes the factory.
  EnginePtr create(const std::string& spec) const;

 private:
  EngineRegistry();
  std::map<std::string, EngineFactory> factories_;
};

// Shorthand for EngineRegistry::instance().create(spec).
EnginePtr make_engine(const std::string& spec);

// The engine every core::gemm / core::gemv / fused-conv call dispatches to.
// Lazily initialized from $RHW_ENGINE (default "blocked") on first use.
const Engine& active_engine();

// Replaces the active engine process-wide. Engines set here stay alive for
// the rest of the process (they are a handful of tiny immutable objects), so
// raw references handed out by active_engine() never dangle.
void set_active_engine(EnginePtr engine);
void set_active_engine(const std::string& spec);

// RAII selection for tests and benchmarks: activates an engine for the
// scope's lifetime and restores the previous selection on exit.
class EngineScope {
 public:
  explicit EngineScope(const std::string& spec);
  explicit EngineScope(EnginePtr engine);
  ~EngineScope();
  EngineScope(const EngineScope&) = delete;
  EngineScope& operator=(const EngineScope&) = delete;

 private:
  const Engine* prev_;  // may be null: restores the "not yet chosen" state
};

}  // namespace rhw::core
