#include "core/engine_registry.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "core/gemm_simd.hpp"

namespace rhw::core {

namespace {

// Typed option extraction with leftover rejection, shared with the other
// four registries (core/spec.hpp). The "engine" domain string keeps the
// common error-message shape ("engine option bk: bad integer 'abc'").
OptionReader reader_for(const std::string& engine, const EngineOptions& opts) {
  return OptionReader("engine", engine, opts);
}

EnginePtr make_naive(const EngineOptions& opts) {
  auto reader = reader_for("naive", opts);
  reader.finish();
  return std::make_shared<NaiveEngine>();
}

EnginePtr make_blocked(const EngineOptions& opts) {
  auto reader = reader_for("blocked", opts);
  BlockedEngine::Config cfg;
  cfg.bk = static_cast<int64_t>(
      reader.integer("bk", static_cast<uint64_t>(cfg.bk)));
  cfg.bn = static_cast<int64_t>(
      reader.integer("bn", static_cast<uint64_t>(cfg.bn)));
  cfg.zero_skip = reader.integer("zero_skip", 0) != 0;
  reader.finish();
  if (cfg.bk < 1 || cfg.bn < 1) {
    throw std::invalid_argument("engine blocked: bk and bn must be >= 1 (got "
                                "bk=" + std::to_string(cfg.bk) +
                                ", bn=" + std::to_string(cfg.bn) + ")");
  }
  return std::make_shared<BlockedEngine>(cfg);
}

EnginePtr make_simd(const EngineOptions& opts) {
  auto reader = reader_for("simd", opts);
  SimdEngine::Config cfg;
  cfg.mr = static_cast<int64_t>(
      reader.integer("mr", static_cast<uint64_t>(cfg.mr)));
  cfg.nr = static_cast<int64_t>(
      reader.integer("nr", static_cast<uint64_t>(cfg.nr)));
  cfg.threads = static_cast<int64_t>(
      reader.integer("threads", static_cast<uint64_t>(cfg.threads)));
  reader.finish();
  return std::make_shared<SimdEngine>(cfg);  // validates the tile shape
}

}  // namespace

EngineRegistry::EngineRegistry() {
  factories_["naive"] = make_naive;
  factories_["blocked"] = make_blocked;
  factories_["simd"] = make_simd;
}

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry registry;
  return registry;
}

void EngineRegistry::add(const std::string& key, EngineFactory factory) {
  factories_[key] = std::move(factory);
}

bool EngineRegistry::contains(const std::string& key) const {
  return factories_.count(key) > 0;
}

std::vector<std::string> EngineRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, factory] : factories_) out.push_back(key);
  return out;
}

EnginePtr EngineRegistry::create(const std::string& spec) const {
  const ParsedSpec parsed = parse_spec("engine", spec);
  const auto it = factories_.find(parsed.key);
  if (it == factories_.end()) {
    std::ostringstream os;
    os << "unknown compute engine '" << parsed.key << "'; registered:";
    for (const auto& [name, factory] : factories_) os << ' ' << name;
    throw std::invalid_argument(os.str());
  }
  try {
    return it->second(parsed.options);
  } catch (const std::invalid_argument& e) {
    // Factories report the offending option key/value; add the full spec so
    // errors surfacing far from the call site stay actionable.
    throw std::invalid_argument("engine spec '" + spec + "': " + e.what());
  }
}

EnginePtr make_engine(const std::string& spec) {
  return EngineRegistry::instance().create(spec);
}

// -- active engine ------------------------------------------------------------

namespace {

// Hot-path dispatch is a single acquire load of this pointer. Every engine
// that has ever been active is pinned in g_pinned (engines are tiny,
// immutable and few), so the raw pointer — including the one an EngineScope
// restores — can never dangle.
std::mutex g_active_mutex;
std::atomic<const Engine*> g_active{nullptr};

std::vector<EnginePtr>& pinned_engines() {
  static std::vector<EnginePtr>* pinned = new std::vector<EnginePtr>();
  return *pinned;  // leaked deliberately: outlives static-destruction order
}

const Engine* pin(EnginePtr engine) {
  std::lock_guard<std::mutex> lock(g_active_mutex);
  pinned_engines().push_back(std::move(engine));
  return pinned_engines().back().get();
}

}  // namespace

const Engine& active_engine() {
  const Engine* engine = g_active.load(std::memory_order_acquire);
  if (engine != nullptr) return *engine;
  // Lazy default: $RHW_ENGINE, else "blocked" (bit-compatible with the
  // historical kernel). Double-checked so racing first calls agree.
  std::lock_guard<std::mutex> lock(g_active_mutex);
  engine = g_active.load(std::memory_order_relaxed);
  if (engine == nullptr) {
    const char* env = std::getenv("RHW_ENGINE");
    pinned_engines().push_back(
        make_engine(env != nullptr && *env != '\0' ? env : "blocked"));
    engine = pinned_engines().back().get();
    g_active.store(engine, std::memory_order_release);
  }
  return *engine;
}

void set_active_engine(EnginePtr engine) {
  if (engine == nullptr) {
    throw std::invalid_argument("set_active_engine: null engine");
  }
  g_active.store(pin(std::move(engine)), std::memory_order_release);
}

void set_active_engine(const std::string& spec) {
  set_active_engine(make_engine(spec));
}

EngineScope::EngineScope(EnginePtr engine)
    : prev_(g_active.load(std::memory_order_acquire)) {
  set_active_engine(std::move(engine));
}

EngineScope::EngineScope(const std::string& spec)
    : EngineScope(make_engine(spec)) {}

EngineScope::~EngineScope() {
  g_active.store(prev_, std::memory_order_release);
}

}  // namespace rhw::core
