#include "core/spec.hpp"

#include <sstream>
#include <stdexcept>

namespace rhw::core {

ParsedSpec parse_spec(const std::string& domain, const std::string& spec) {
  if (spec.empty()) {
    throw std::invalid_argument("empty " + domain +
                                " spec (expected \"<key>[:opt=value,...]\")");
  }
  ParsedSpec out;
  const size_t colon = spec.find(':');
  out.key = spec.substr(0, colon);
  if (colon == std::string::npos) return out;
  std::istringstream rest(spec.substr(colon + 1));
  std::string item;
  while (std::getline(rest, item, ',')) {
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(domain + " spec '" + spec + "': option '" +
                                  item + "' is not key=value");
    }
    out.options[item.substr(0, eq)] = item.substr(eq + 1);
  }
  return out;
}

std::string canonical_spec(const std::string& domain,
                           const std::string& spec) {
  const ParsedSpec parsed = parse_spec(domain, spec);
  std::string out = parsed.key;
  char sep = ':';
  for (const auto& [key, value] : parsed.options) {  // std::map: sorted
    out += sep;
    sep = ',';
    out += key + "=" + value;
  }
  return out;
}

OptionReader::OptionReader(std::string domain, std::string name,
                           SpecOptions opts)
    : domain_(std::move(domain)),
      name_(std::move(name)),
      opts_(std::move(opts)) {}

double OptionReader::number(const std::string& key, double fallback) {
  const auto it = opts_.find(key);
  if (it == opts_.end()) return fallback;
  const std::string text = it->second;
  opts_.erase(it);
  try {
    size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(domain_ + " option " + key + ": bad number '" +
                                text + "'");
  }
}

uint64_t OptionReader::integer(const std::string& key, uint64_t fallback) {
  const auto it = opts_.find(key);
  if (it == opts_.end()) return fallback;
  const std::string text = it->second;
  opts_.erase(it);
  try {
    if (text.empty() || text[0] == '-') throw std::invalid_argument(text);
    size_t used = 0;
    const uint64_t v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(domain_ + " option " + key +
                                ": bad non-negative integer '" + text + "'");
  }
}

std::string OptionReader::text(const std::string& key,
                               const std::string& fallback) {
  const auto it = opts_.find(key);
  if (it == opts_.end()) return fallback;
  std::string v = it->second;
  opts_.erase(it);
  return v;
}

void OptionReader::finish() const {
  if (opts_.empty()) return;
  std::ostringstream os;
  os << domain_ << ' ' << name_ << ": unknown option(s):";
  for (const auto& [key, value] : opts_) os << ' ' << key;
  throw std::invalid_argument(os.str());
}

}  // namespace rhw::core
