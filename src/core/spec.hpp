// Shared "<key>[:opt=value,opt=value,...]" spec-string parsing.
//
// Both registries in the repo — hw::BackendRegistry ("xbar:size=32,rmin=10e3")
// and attacks::AttackRegistry ("pgd:steps=7,alpha=0.01") — speak the same
// grammar and report errors the same way. This header is the single
// implementation behind them: parse_spec splits the key from its options, and
// OptionReader pulls typed option values while tracking leftovers so
// factories can reject unknown options by name.
//
// Error-reporting contract (asserted by tests/hw/test_registry.cpp and
// tests/attacks/test_attack_registry.cpp): every std::invalid_argument names
// the offending option key and raw value text, e.g.
//
//   backend option rmin: bad number 'abc'
//   attack pgd: unknown option(s): stpes
//
// Registries wrap these with the full spec string at the create() call site
// so errors surfacing far away stay actionable.
#pragma once

#include <map>
#include <string>

namespace rhw::core {

// Option name -> raw value text, as split out of the spec string.
using SpecOptions = std::map<std::string, std::string>;

struct ParsedSpec {
  std::string key;      // text before the first ':' (whole spec when absent)
  SpecOptions options;  // "opt=value" items after it
};

// Splits "<key>[:opt=v,...]". `domain` ("backend", "attack") prefixes error
// messages. Throws std::invalid_argument on an empty spec or on an option
// item that is not of the form key=value.
ParsedSpec parse_spec(const std::string& domain, const std::string& spec);

// Canonical re-rendering of a spec: the key followed by its options in
// sorted order with empty items dropped, so "pgd:steps=7," and
// "pgd:alpha=0,steps=7" vs "pgd:steps=7,alpha=0" compare equal as strings.
// Values stay raw text (no numeric normalization). Throws like parse_spec.
std::string canonical_spec(const std::string& domain, const std::string& spec);

// Pulls and erases typed options from a SpecOptions map so that factories can
// reject whatever is left as unknown (finish()). All extraction errors throw
// std::invalid_argument naming the option key and offending value text.
class OptionReader {
 public:
  // `domain` and `name` label error messages: "<domain> option <key>: ..."
  // and "<domain> <name>: unknown option(s): ...".
  OptionReader(std::string domain, std::string name, SpecOptions opts);

  // Floating-point option; trailing garbage after the number is rejected.
  double number(const std::string& key, double fallback);

  // Integer-typed options (seeds, sizes, counts): full 64-bit range, no
  // silent precision loss through double. Negative values are rejected
  // (stoull would silently wrap them).
  uint64_t integer(const std::string& key, uint64_t fallback);

  // Raw text option (e.g. xbar's circuit-model selector).
  std::string text(const std::string& key, const std::string& fallback);

  // Throws if any options remain unconsumed, naming each leftover key.
  void finish() const;

 private:
  std::string domain_;
  std::string name_;
  SpecOptions opts_;
};

}  // namespace rhw::core
