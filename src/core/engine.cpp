#include "core/engine.hpp"

#include <algorithm>
#include <vector>

#include "core/gemm.hpp"
#include "core/thread_pool.hpp"

namespace rhw::core {

namespace {

// Packs op(X) (rows x cols either direct or transposed view of x) into a
// contiguous row-major buffer. Packing keeps a single fast inner kernel for
// all four transpose combinations.
void pack_op(bool trans, int64_t rows, int64_t cols, const float* x,
             int64_t ldx, float* out) {
  if (!trans) {
    for (int64_t i = 0; i < rows; ++i) {
      const float* src = x + i * ldx;
      std::copy(src, src + cols, out + i * cols);
    }
  } else {
    // out[i][j] = x[j][i]
    for (int64_t j = 0; j < cols; ++j) {
      const float* src = x + j * ldx;
      for (int64_t i = 0; i < rows; ++i) {
        out[i * cols + j] = src[i];
      }
    }
  }
}

// C[m x n] (ldc) += alpha * A[m x k] (row-major, contiguous) * B[k x n]
// (row-major, contiguous). Rows are split across the pool by the caller.
// ZeroSkip selects the opt-in "skip av == 0 terms" fast path (see the
// zero_skip contract note in engine.hpp).
template <bool ZeroSkip>
void kernel_rows(int64_t row_begin, int64_t row_end, int64_t n, int64_t k,
                 float alpha, const float* a, const float* b, float* c,
                 int64_t ldc, int64_t bk, int64_t bn) {
  for (int64_t k0 = 0; k0 < k; k0 += bk) {
    const int64_t k1 = std::min(k, k0 + bk);
    for (int64_t n0 = 0; n0 < n; n0 += bn) {
      const int64_t n1 = std::min(n, n0 + bn);
      for (int64_t i = row_begin; i < row_end; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * ldc;
        for (int64_t p = k0; p < k1; ++p) {
          const float av = alpha * arow[p];
          if (ZeroSkip && av == 0.f) continue;
          const float* brow = b + p * n;
          for (int64_t j = n0; j < n1; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace

namespace detail {

void scale_c(int64_t m, int64_t n, float beta, float* c, int64_t ldc) {
  if (beta == 0.f) {
    for (int64_t i = 0; i < m; ++i) {
      std::fill(c + i * ldc, c + i * ldc + n, 0.f);
    }
  } else if (beta != 1.f) {
    for (int64_t i = 0; i < m; ++i) {
      float* row = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

}  // namespace detail

using detail::scale_c;

// -- default gemv -------------------------------------------------------------

void Engine::gemv(bool trans_a, int64_t m, int64_t n, float alpha,
                  const float* a, int64_t lda, const float* x, float beta,
                  float* y) const {
  // beta == 0 must overwrite, never scale: stale/uninitialized y (NaN, inf)
  // survives y *= 0 — mirror gemm's explicit zero-fill.
  if (beta == 0.f) {
    std::fill(y, y + (trans_a ? n : m), 0.f);
  }
  if (alpha == 0.f) {
    // Never read A or x; y = beta * y is all that remains.
    if (beta != 0.f && beta != 1.f) {
      const int64_t len = trans_a ? n : m;
      for (int64_t j = 0; j < len; ++j) y[j] *= beta;
    }
    return;
  }
  // op(A) is (m x n) when !trans_a viewed as given; compute y = op(A) x.
  if (!trans_a) {
    for (int64_t i = 0; i < m; ++i) {
      double acc = 0.0;
      const float* row = a + i * lda;
      for (int64_t j = 0; j < n; ++j) acc += static_cast<double>(row[j]) * x[j];
      y[i] = static_cast<float>(alpha * acc + beta * y[i]);
    }
  } else {
    // y (n) = alpha * A^T (n x m) x (m) + beta y. No zero-skip on x: a zero
    // coefficient must still propagate NaN/Inf rows of A (engine contract).
    if (beta != 0.f && beta != 1.f) {
      for (int64_t j = 0; j < n; ++j) y[j] *= beta;
    }
    for (int64_t i = 0; i < m; ++i) {
      const float xv = alpha * x[i];
      const float* row = a + i * lda;
      for (int64_t j = 0; j < n; ++j) y[j] += xv * row[j];
    }
  }
}

// -- fused batched conv forward -----------------------------------------------

namespace {
// Scratch cap for the fused conv buffers (columns + GEMM output). Chunking
// by samples keeps the footprint bounded without changing any result: each
// output element's accumulation order depends only on the engine's k loop.
constexpr int64_t kFusedScratchBytes = int64_t{16} << 20;
}  // namespace

void Engine::conv2d_forward(const ConvGeom& g, int64_t batch,
                            const float* input, int64_t out_c,
                            const float* weights, const float* bias,
                            float* out) const {
  const int64_t ohw = g.col_cols();
  const int64_t col_rows = g.col_rows();
  const int64_t in_stride = g.in_c * g.in_h * g.in_w;
  const int64_t out_stride = out_c * ohw;
  if (batch == 0 || ohw == 0) return;

  const int64_t bytes_per_sample = (col_rows + out_c) * ohw *
                                   static_cast<int64_t>(sizeof(float));
  const int64_t chunk = std::clamp<int64_t>(
      kFusedScratchBytes / std::max<int64_t>(bytes_per_sample, 1), 1, batch);

  std::vector<float> cols(static_cast<size_t>(col_rows * chunk * ohw));
  std::vector<float> prod(static_cast<size_t>(out_c * chunk * ohw));
  for (int64_t s0 = 0; s0 < batch; s0 += chunk) {
    const int64_t nb = std::min(chunk, batch - s0);
    const int64_t cols_n = nb * ohw;
    // Whole-chunk im2col: sample i's columns sit at column offset i*ohw of
    // one wide [col_rows x nb*ohw] buffer (disjoint writes, parallel-safe).
    parallel_for(nb, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        im2col_ld(g, input + (s0 + i) * in_stride, cols.data() + i * ohw,
                  cols_n);
      }
    });
    // One wide GEMM for the whole chunk instead of nb small per-sample ones.
    gemm(false, false, out_c, cols_n, col_rows, 1.f, weights, col_rows,
         cols.data(), cols_n, 0.f, prod.data(), cols_n);
    // Epilogue: scatter [out_c x nb*ohw] back to [nb, out_c, ohw] with the
    // bias folded in — one vectorizable pass, no scalar bias triple loop.
    parallel_for(nb, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        float* sample = out + (s0 + i) * out_stride;
        for (int64_t oc = 0; oc < out_c; ++oc) {
          const float* src = prod.data() + oc * cols_n + i * ohw;
          float* dst = sample + oc * ohw;
          const float b = bias != nullptr ? bias[oc] : 0.f;
          for (int64_t p = 0; p < ohw; ++p) dst[p] = src[p] + b;
        }
      }
    });
  }
}

// -- naive --------------------------------------------------------------------

void NaiveEngine::gemm(bool trans_a, bool trans_b, int64_t m, int64_t n,
                       int64_t k, float alpha, const float* a, int64_t lda,
                       const float* b, int64_t ldb, float beta, float* c,
                       int64_t ldc) const {
  gemm_naive(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

// -- blocked ------------------------------------------------------------------

BlockedEngine::BlockedEngine(const Config& cfg) :
    Engine("blocked:bk=" + std::to_string(cfg.bk) +
           ",bn=" + std::to_string(cfg.bn) +
           ",zero_skip=" + std::to_string(cfg.zero_skip ? 1 : 0)),
    cfg_(cfg) {}

void BlockedEngine::gemm(bool trans_a, bool trans_b, int64_t m, int64_t n,
                         int64_t k, float alpha, const float* a, int64_t lda,
                         const float* b, int64_t ldb, float beta, float* c,
                         int64_t ldc) const {
  scale_c(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.f) return;

  std::vector<float> a_packed;
  const float* a_ptr = a;
  if (trans_a || lda != k) {
    a_packed.resize(static_cast<size_t>(m * k));
    pack_op(trans_a, m, k, a, lda, a_packed.data());
    a_ptr = a_packed.data();
  }
  std::vector<float> b_packed;
  const float* b_ptr = b;
  if (trans_b || ldb != n) {
    b_packed.resize(static_cast<size_t>(k * n));
    pack_op(trans_b, k, n, b, ldb, b_packed.data());
    b_ptr = b_packed.data();
  }

  auto rows = [&](int64_t begin, int64_t end) {
    if (cfg_.zero_skip) {
      kernel_rows<true>(begin, end, n, k, alpha, a_ptr, b_ptr, c, ldc,
                        cfg_.bk, cfg_.bn);
    } else {
      kernel_rows<false>(begin, end, n, k, alpha, a_ptr, b_ptr, c, ldc,
                         cfg_.bk, cfg_.bn);
    }
  };

  // Only parallelize when the work is worth the synchronization cost. Row
  // chunks write disjoint C rows with a fixed per-element accumulation
  // order, so results are bit-identical at any thread count.
  const int64_t flops = m * n * k;
  if (flops < (1 << 16)) {
    rows(0, m);
    return;
  }
  parallel_for(m, rows);
}

}  // namespace rhw::core
