#include "core/gemm_simd.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#if defined(__x86_64__)
// Safe without -mavx2: every intrinsic carries its own target attribute and
// is only reachable from the pragma-target functions below.
#include <immintrin.h>
#endif

#include "core/thread_pool.hpp"

// The baseline helpers pass and return vf8 by value; without -mavx that is a
// different (two-register) calling convention, which GCC flags with -Wpsabi.
// Every such function is internal to this translation unit and inlined, so
// the ABI note has no cross-TU consequence.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace rhw::core {

namespace {

// Eight-float SIMD lane written with GCC vector extensions: one source body
// lowers to AVX2 (under the target pragma below), to a pair of NEON q-ops on
// aarch64, to SSE pairs on baseline x86-64, and to scalar code elsewhere.
typedef float vf8 __attribute__((vector_size(32)));

// Unaligned load/store — packed panels and C rows are only float-aligned.
// The memcpy compiles to a single (v)movups under optimization.
inline vf8 load8(const float* p) {
  vf8 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void store8(float* p, vf8 v) { std::memcpy(p, &v, sizeof(v)); }
inline vf8 splat8(float x) { return vf8{x, x, x, x, x, x, x, x}; }

// The micro-kernel: an MR x (NRV*8) accumulator tile lives in registers
// across the entire k loop; A arrives as an MR-wide k-major panel
// (ap[p*MR + r]) and B as an NRV*8-wide panel (bp[p*NRV*8 + j]), both
// zero-padded to full tile width so edge handling never branches inside the
// hot loop. alpha is applied once at write-back; the caller has already run
// the beta prologue, so write-back is a pure +=.
//
// always_inline is load-bearing: the body is baseline code, but it inlines
// into the target("avx2,fma") wrappers below and is then compiled with the
// caller's ISA — one template, every instruction set.
template <int MR, int NRV>
[[gnu::always_inline]] inline void micro_kernel_body(
    int64_t k, const float* ap, const float* bp, float* c, int64_t ldc,
    int64_t mr_eff, int64_t nr_eff, float alpha) {
  vf8 acc[MR][NRV] = {};
  for (int64_t p = 0; p < k; ++p) {
    vf8 bv[NRV];
    const float* brow = bp + p * (NRV * 8);
    for (int v = 0; v < NRV; ++v) bv[v] = load8(brow + v * 8);
    const float* arow = ap + p * MR;
    for (int r = 0; r < MR; ++r) {
      const vf8 av = splat8(arow[r]);
      for (int v = 0; v < NRV; ++v) acc[r][v] += av * bv[v];
    }
  }
  const vf8 alphav = splat8(alpha);
  if (mr_eff == MR && nr_eff == NRV * 8) {
    for (int r = 0; r < MR; ++r) {
      float* crow = c + r * ldc;
      for (int v = 0; v < NRV; ++v) {
        store8(crow + v * 8, load8(crow + v * 8) + alphav * acc[r][v]);
      }
    }
  } else {
    // Edge tile: spill the full register tile, add back the valid window.
    float tile[MR][NRV * 8];
    for (int r = 0; r < MR; ++r) {
      for (int v = 0; v < NRV; ++v) store8(&tile[r][v * 8], acc[r][v]);
    }
    for (int64_t r = 0; r < mr_eff; ++r) {
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < nr_eff; ++j) crow[j] += alpha * tile[r][j];
    }
  }
}

// y-accumulation half of gemv; the engine method runs the beta/alpha
// prologue first. Lane-parallel with a fixed split (8-wide body + scalar
// tail), so the per-element order is a pure function of n — deterministic.
[[gnu::always_inline]] inline void gemv_accum_body(bool trans_a, int64_t m,
                                                   int64_t n, float alpha,
                                                   const float* a, int64_t lda,
                                                   const float* x, float* y) {
  if (!trans_a) {
    for (int64_t i = 0; i < m; ++i) {
      const float* row = a + i * lda;
      vf8 acc = {};
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) acc += load8(row + j) * load8(x + j);
      float lanes[8];
      store8(lanes, acc);
      float s = 0.f;
      for (int t = 0; t < 8; ++t) s += lanes[t];
      for (; j < n; ++j) s += row[j] * x[j];
      y[i] += alpha * s;
    }
  } else {
    for (int64_t i = 0; i < m; ++i) {
      const float xv = alpha * x[i];
      const vf8 xvv = splat8(xv);
      const float* row = a + i * lda;
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        store8(y + j, load8(y + j) + xvv * load8(row + j));
      }
      for (; j < n; ++j) y[j] += xv * row[j];
    }
  }
}

#define RHW_KARGS                                                     \
  int64_t k, const float *ap, const float *bp, float *c, int64_t ldc, \
      int64_t mr_eff, int64_t nr_eff, float alpha
#define RHW_KPASS k, ap, bp, c, ldc, mr_eff, nr_eff, alpha

using MicroKernelFn = void (*)(RHW_KARGS);
using GemvAccumFn = void (*)(bool, int64_t, int64_t, float, const float*,
                             int64_t, const float*, float*);

// One wrapper per instantiated (mr, nr) tile shape; the table is indexed by
// mr in {1,2,4,6,8} x nr in {8,16}.
#define RHW_DEFINE_KERNELS(PREFIX)                                         \
  void PREFIX##_1x8(RHW_KARGS) { micro_kernel_body<1, 1>(RHW_KPASS); }     \
  void PREFIX##_2x8(RHW_KARGS) { micro_kernel_body<2, 1>(RHW_KPASS); }     \
  void PREFIX##_4x8(RHW_KARGS) { micro_kernel_body<4, 1>(RHW_KPASS); }     \
  void PREFIX##_6x8(RHW_KARGS) { micro_kernel_body<6, 1>(RHW_KPASS); }     \
  void PREFIX##_8x8(RHW_KARGS) { micro_kernel_body<8, 1>(RHW_KPASS); }     \
  void PREFIX##_1x16(RHW_KARGS) { micro_kernel_body<1, 2>(RHW_KPASS); }    \
  void PREFIX##_2x16(RHW_KARGS) { micro_kernel_body<2, 2>(RHW_KPASS); }    \
  void PREFIX##_4x16(RHW_KARGS) { micro_kernel_body<4, 2>(RHW_KPASS); }    \
  void PREFIX##_6x16(RHW_KARGS) { micro_kernel_body<6, 2>(RHW_KPASS); }    \
  void PREFIX##_8x16(RHW_KARGS) { micro_kernel_body<8, 2>(RHW_KPASS); }    \
  void PREFIX##_gemv(bool trans_a, int64_t m, int64_t n, float alpha,      \
                     const float* a, int64_t lda, const float* x,          \
                     float* y) {                                           \
    gemv_accum_body(trans_a, m, n, alpha, a, lda, x, y);                   \
  }                                                                        \
  constexpr MicroKernelFn PREFIX##_table[5][2] = {                         \
      {PREFIX##_1x8, PREFIX##_1x16}, {PREFIX##_2x8, PREFIX##_2x16},        \
      {PREFIX##_4x8, PREFIX##_4x16}, {PREFIX##_6x8, PREFIX##_6x16},        \
      {PREFIX##_8x8, PREFIX##_8x16}};

// Portable baseline: whatever the compiler's default target offers (NEON on
// aarch64, SSE2 on x86-64, scalar elsewhere).
RHW_DEFINE_KERNELS(base)

#if defined(__x86_64__)
// Second copy of every kernel for AVX2+FMA hosts, selected at runtime — the
// binary itself stays runnable on SSE2-only machines. These are hand-written
// with intrinsics rather than instantiating micro_kernel_body: GCC's
// generic-vector lowering of the same body spills accumulators and splits
// broadcasts (vbroadcastss xmm + vinsertf128), costing ~2x; the intrinsic
// form keeps the tile in ymm registers and lets B loads fold into the FMAs.
// Macro-stamped plain functions (not templates) because `#pragma GCC target`
// does not reliably attach to template instantiations.
#pragma GCC push_options
#pragma GCC target("avx2,fma")

#define RHW_AVX2_KERNEL(NAME, MR, NRV)                                       \
  void NAME(RHW_KARGS) {                                                     \
    __m256 acc[MR][NRV];                                                     \
    for (int r = 0; r < MR; ++r) {                                           \
      for (int v = 0; v < NRV; ++v) acc[r][v] = _mm256_setzero_ps();         \
    }                                                                        \
    const float* arow = ap;                                                  \
    const float* brow = bp;                                                  \
    int64_t p = 0;                                                           \
    /* Unrolled by 2: per-element accumulation order stays the plain k     */\
    /* order (both halves feed the same accumulator back to back), so the  */\
    /* unroll is invisible numerically — it only hides loop overhead.      */\
    for (; p + 2 <= k; p += 2, arow += 2 * MR, brow += 2 * NRV * 8) {        \
      __m256 bv[NRV];                                                        \
      for (int v = 0; v < NRV; ++v) bv[v] = _mm256_loadu_ps(brow + v * 8);   \
      for (int r = 0; r < MR; ++r) {                                         \
        const __m256 av = _mm256_broadcast_ss(arow + r);                     \
        for (int v = 0; v < NRV; ++v) {                                      \
          acc[r][v] = _mm256_fmadd_ps(av, bv[v], acc[r][v]);                 \
        }                                                                    \
      }                                                                      \
      for (int v = 0; v < NRV; ++v) {                                        \
        bv[v] = _mm256_loadu_ps(brow + NRV * 8 + v * 8);                     \
      }                                                                      \
      for (int r = 0; r < MR; ++r) {                                         \
        const __m256 av = _mm256_broadcast_ss(arow + MR + r);                \
        for (int v = 0; v < NRV; ++v) {                                      \
          acc[r][v] = _mm256_fmadd_ps(av, bv[v], acc[r][v]);                 \
        }                                                                    \
      }                                                                      \
    }                                                                        \
    for (; p < k; ++p, arow += MR, brow += NRV * 8) {                        \
      __m256 bv[NRV];                                                        \
      for (int v = 0; v < NRV; ++v) bv[v] = _mm256_loadu_ps(brow + v * 8);   \
      for (int r = 0; r < MR; ++r) {                                         \
        const __m256 av = _mm256_broadcast_ss(arow + r);                     \
        for (int v = 0; v < NRV; ++v) {                                      \
          acc[r][v] = _mm256_fmadd_ps(av, bv[v], acc[r][v]);                 \
        }                                                                    \
      }                                                                      \
    }                                                                        \
    if (mr_eff == MR && nr_eff == NRV * 8) {                                 \
      const __m256 alphav = _mm256_set1_ps(alpha);                           \
      for (int r = 0; r < MR; ++r) {                                         \
        float* crow = c + r * ldc;                                           \
        for (int v = 0; v < NRV; ++v) {                                      \
          const __m256 cv = _mm256_fmadd_ps(alphav, acc[r][v],               \
                                            _mm256_loadu_ps(crow + v * 8));  \
          _mm256_storeu_ps(crow + v * 8, cv);                                \
        }                                                                    \
      }                                                                      \
    } else {                                                                 \
      float tile[MR][NRV * 8];                                               \
      for (int r = 0; r < MR; ++r) {                                         \
        for (int v = 0; v < NRV; ++v) {                                      \
          _mm256_storeu_ps(&tile[r][v * 8], acc[r][v]);                      \
        }                                                                    \
      }                                                                      \
      for (int64_t r = 0; r < mr_eff; ++r) {                                 \
        float* crow = c + r * ldc;                                           \
        for (int64_t j = 0; j < nr_eff; ++j) crow[j] += alpha * tile[r][j];  \
      }                                                                      \
    }                                                                        \
  }

RHW_AVX2_KERNEL(avx2_1x8, 1, 1)
RHW_AVX2_KERNEL(avx2_2x8, 2, 1)
RHW_AVX2_KERNEL(avx2_4x8, 4, 1)
RHW_AVX2_KERNEL(avx2_6x8, 6, 1)
RHW_AVX2_KERNEL(avx2_8x8, 8, 1)
RHW_AVX2_KERNEL(avx2_1x16, 1, 2)
RHW_AVX2_KERNEL(avx2_2x16, 2, 2)
RHW_AVX2_KERNEL(avx2_4x16, 4, 2)
RHW_AVX2_KERNEL(avx2_6x16, 6, 2)
RHW_AVX2_KERNEL(avx2_8x16, 8, 2)
#undef RHW_AVX2_KERNEL

// The generic-vector gemv body compiles cleanly; reuse it under AVX2.
void avx2_gemv(bool trans_a, int64_t m, int64_t n, float alpha,
               const float* a, int64_t lda, const float* x, float* y) {
  gemv_accum_body(trans_a, m, n, alpha, a, lda, x, y);
}

constexpr MicroKernelFn avx2_table[5][2] = {
    {avx2_1x8, avx2_1x16}, {avx2_2x8, avx2_2x16}, {avx2_4x8, avx2_4x16},
    {avx2_6x8, avx2_6x16}, {avx2_8x8, avx2_8x16}};

#pragma GCC pop_options
#endif

#undef RHW_DEFINE_KERNELS
#undef RHW_KARGS
#undef RHW_KPASS

int mr_index(int64_t mr) {
  switch (mr) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
    case 6: return 3;
    case 8: return 4;
    default: return -1;
  }
}

int nr_index(int64_t nr) { return nr == 8 ? 0 : nr == 16 ? 1 : -1; }

MicroKernelFn pick_kernel(int mi, int ni) {
#if defined(__x86_64__)
  if (SimdEngine::fast_path()) return avx2_table[mi][ni];
#endif
  return base_table[mi][ni];
}

GemvAccumFn pick_gemv() {
#if defined(__x86_64__)
  if (SimdEngine::fast_path()) return avx2_gemv;
#endif
  return base_gemv;
}

// Packs op(A) into ceil(m/mr) k-major panels of mr rows each
// (dst[p*mr + r] = opA[i0+r][p]), zero-padding short panels so the
// micro-kernel never reads past the matrix. Padding rows contribute nothing
// to valid outputs and padded outputs are never written back.
void pack_a(bool trans_a, int64_t m, int64_t k, const float* a, int64_t lda,
            int64_t mr, float* out) {
  const int64_t panels = (m + mr - 1) / mr;
  for (int64_t pi = 0; pi < panels; ++pi) {
    const int64_t i0 = pi * mr;
    const int64_t rows = std::min(mr, m - i0);
    float* dst = out + pi * mr * k;
    if (!trans_a) {
      for (int64_t p = 0; p < k; ++p) {
        for (int64_t r = 0; r < mr; ++r) {
          dst[p * mr + r] = r < rows ? a[(i0 + r) * lda + p] : 0.f;
        }
      }
    } else {
      for (int64_t p = 0; p < k; ++p) {
        const float* src = a + p * lda + i0;
        for (int64_t r = 0; r < mr; ++r) {
          dst[p * mr + r] = r < rows ? src[r] : 0.f;
        }
      }
    }
  }
}

// Packs op(B) into ceil(n/nr) panels of nr columns (dst[p*nr + j] =
// opB[p][j0+j]), zero-padded like pack_a.
void pack_b(bool trans_b, int64_t k, int64_t n, const float* b, int64_t ldb,
            int64_t nr, float* out) {
  const int64_t panels = (n + nr - 1) / nr;
  for (int64_t pj = 0; pj < panels; ++pj) {
    const int64_t j0 = pj * nr;
    const int64_t cols = std::min(nr, n - j0);
    float* dst = out + pj * nr * k;
    if (!trans_b) {
      for (int64_t p = 0; p < k; ++p) {
        const float* src = b + p * ldb + j0;
        for (int64_t j = 0; j < nr; ++j) {
          dst[p * nr + j] = j < cols ? src[j] : 0.f;
        }
      }
    } else {
      for (int64_t p = 0; p < k; ++p) {
        for (int64_t j = 0; j < nr; ++j) {
          dst[p * nr + j] = j < cols ? b[(j0 + j) * ldb + p] : 0.f;
        }
      }
    }
  }
}

}  // namespace

bool SimdEngine::fast_path() {
#if defined(__x86_64__)
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#elif defined(__aarch64__)
  return true;  // Advanced SIMD is baseline; the "portable" copy IS NEON.
#else
  return false;
#endif
}

SimdEngine::SimdEngine(const Config& cfg)
    : Engine("simd:mr=" + std::to_string(cfg.mr) +
             ",nr=" + std::to_string(cfg.nr) +
             ",threads=" + std::to_string(cfg.threads)),
      cfg_(cfg) {
  if (mr_index(cfg.mr) < 0) {
    throw std::invalid_argument("engine simd: mr=" + std::to_string(cfg.mr) +
                                " has no instantiated kernel (one of 1, 2, "
                                "4, 6, 8)");
  }
  if (nr_index(cfg.nr) < 0) {
    throw std::invalid_argument("engine simd: nr=" + std::to_string(cfg.nr) +
                                " has no instantiated kernel (8 or 16)");
  }
}

void SimdEngine::gemm(bool trans_a, bool trans_b, int64_t m, int64_t n,
                      int64_t k, float alpha, const float* a, int64_t lda,
                      const float* b, int64_t ldb, float beta, float* c,
                      int64_t ldc) const {
  detail::scale_c(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.f) return;

  const int64_t mr = cfg_.mr, nr = cfg_.nr;
  const int64_t mpanels = (m + mr - 1) / mr;
  const int64_t npanels = (n + nr - 1) / nr;
  std::vector<float> ap(static_cast<size_t>(mpanels * mr * k));
  std::vector<float> bp(static_cast<size_t>(npanels * nr * k));
  pack_a(trans_a, m, k, a, lda, mr, ap.data());
  pack_b(trans_b, k, n, b, ldb, nr, bp.data());
  const MicroKernelFn kern = pick_kernel(mr_index(mr), nr_index(nr));

  auto run = [&](int64_t panel_begin, int64_t panel_end) {
    for (int64_t pi = panel_begin; pi < panel_end; ++pi) {
      const int64_t i0 = pi * mr;
      const int64_t mr_eff = std::min(mr, m - i0);
      const float* apanel = ap.data() + pi * mr * k;
      for (int64_t pj = 0; pj < npanels; ++pj) {
        const int64_t j0 = pj * nr;
        kern(k, apanel, bp.data() + pj * nr * k, c + i0 * ldc + j0, ldc,
             mr_eff, std::min(nr, n - j0), alpha);
      }
    }
  };

  // Row panels write disjoint C rows and each element's accumulation order
  // is the k order regardless of the panel split, so any thread count gives
  // bit-identical results. threads=1 forces serial; small products stay
  // serial to skip synchronization overhead.
  const int64_t flops = m * n * k;
  if (cfg_.threads == 1 || flops < (1 << 16)) {
    run(0, mpanels);
    return;
  }
  parallel_for(mpanels, run);
}

void SimdEngine::gemv(bool trans_a, int64_t m, int64_t n, float alpha,
                      const float* a, int64_t lda, const float* x, float beta,
                      float* y) const {
  const int64_t len = trans_a ? n : m;
  if (beta == 0.f) {
    std::fill(y, y + len, 0.f);
  } else if (beta != 1.f) {
    for (int64_t j = 0; j < len; ++j) y[j] *= beta;
  }
  if (alpha == 0.f || m == 0 || n == 0) return;  // never reads A or x
  pick_gemv()(trans_a, m, n, alpha, a, lda, x, y);
}

}  // namespace rhw::core
