#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rhw {

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(),
                                xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace rhw
