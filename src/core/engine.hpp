// The compute-engine seam: every dense kernel in the repo — GEMM, GEMV and
// the im2col-lowered convolution — runs through one core::Engine, selected by
// spec string through core::EngineRegistry (engine_registry.hpp). This is the
// fifth string-keyed seam after hardware / attacks / defenses / experiments:
// SweepEngine cells, smoothing-vote batches, adv_train inner PGD loops and
// crossbar tiling all bottom out here, so an engine swap moves every
// workload at once.
//
// Built-in keys (docs/ENGINES.md has every knob, default and the bench
// impact table):
//
//   naive                      reference triple loop, double accumulators
//   blocked[:bk=,bn=,zero_skip=]   cache-blocked scalar kernel (the default)
//   simd[:threads=,mr=,nr=]    register-tiled packed-panel micro-kernel GEMM
//                              (AVX2/FMA on x86-64, NEON on aarch64, portable
//                              fallback elsewhere), vectorized GEMV
//
// Numeric contract (asserted by tests/core/test_engine_registry.cpp):
//
//   * alpha == 0 never reads A or B (C = beta * C exactly);
//   * beta == 0 overwrites C — stale NaN/Inf in C never survives;
//   * NaN/Inf in A or B propagate into C exactly as in the naive reference,
//     UNLESS the engine opted into zero-skipping (blocked:zero_skip=1),
//     which trades that propagation for skipped multiply-accumulate work;
//   * every engine is deterministic: for a fixed spec the result is a pure
//     function of the inputs, bit-identical at any thread/lane count.
//
// Cross-engine *equality* is NOT claimed: engines order their float
// accumulations differently, so parity versus `naive` holds to a
// FLOP-scaled tolerance only (exact where k is tiny enough for float
// associativity not to matter).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/im2col.hpp"

namespace rhw::core {

class Engine {
 public:
  virtual ~Engine() = default;

  // Registry key ("simd") and full canonical spec with every knob spelled
  // out ("simd:mr=6,nr=16,threads=0") — what artifacts and banners record.
  virtual std::string key() const = 0;
  const std::string& spec() const { return spec_; }

  // C = alpha * op(A) * op(B) + beta * C. Row-major with explicit leading
  // dimensions, op(X) is X or X^T (the BLAS surface core/gemm.hpp mirrors).
  virtual void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n,
                    int64_t k, float alpha, const float* a, int64_t lda,
                    const float* b, int64_t ldb, float beta, float* c,
                    int64_t ldc) const = 0;

  // y = alpha * op(A) * x + beta * y. Default: the scalar reference loop
  // (double accumulators on the non-transposed path).
  virtual void gemv(bool trans_a, int64_t m, int64_t n, float alpha,
                    const float* a, int64_t lda, const float* x, float beta,
                    float* y) const;

  // Fused batched convolution forward: im2col the whole batch (chunked to a
  // bounded scratch footprint) into one [col_rows x chunk*ohw] buffer, run
  // ONE [out_c x col_rows] x [col_rows x chunk*ohw] GEMM through this
  // engine, and scatter back to the [batch, out_c, oh, ow] layout with the
  // bias added in the same (vectorizable) epilogue pass — replacing the
  // unfused batch-of-small-GEMMs path plus scalar bias triple loop.
  //
  // `input` is [batch, in_c, in_h, in_w]; `weights` is [out_c, col_rows]
  // contiguous; `bias` is [out_c] or nullptr; `out` is [batch, out_c,
  // oh, ow]. Chunking never changes results: each output element's
  // accumulation order depends only on the engine's k-loop order.
  virtual void conv2d_forward(const ConvGeom& g, int64_t batch,
                              const float* input, int64_t out_c,
                              const float* weights, const float* bias,
                              float* out) const;

 protected:
  explicit Engine(std::string spec) : spec_(std::move(spec)) {}

 private:
  std::string spec_;
};

// Engines are immutable after construction and shared freely across threads.
using EnginePtr = std::shared_ptr<const Engine>;

// Reference engine: gemm_naive / the scalar gemv, double accumulators. The
// parity baseline every other engine is tested against.
class NaiveEngine : public Engine {
 public:
  NaiveEngine() : Engine("naive") {}
  std::string key() const override { return "naive"; }
  void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            float alpha, const float* a, int64_t lda, const float* b,
            int64_t ldb, float beta, float* c, int64_t ldc) const override;
};

// The historical cache-blocked scalar kernel with its block sizes exposed.
// zero_skip=1 restores the old "skip av == 0 terms" fast path, which drops
// NaN/Inf propagation from B on zero rows of A — off by default.
class BlockedEngine : public Engine {
 public:
  struct Config {
    int64_t bk = 256;  // k-dimension block
    int64_t bn = 512;  // n-dimension block
    bool zero_skip = false;
  };
  explicit BlockedEngine(const Config& cfg);
  std::string key() const override { return "blocked"; }
  void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            float alpha, const float* a, int64_t lda, const float* b,
            int64_t ldb, float beta, float* c, int64_t ldc) const override;

 private:
  Config cfg_;
};

namespace detail {
// Shared beta prologue for engines that accumulate with += after scaling:
// beta == 0 overwrites C (stale NaN/Inf never survives), beta == 1 is a
// no-op, anything else scales in place.
void scale_c(int64_t m, int64_t n, float beta, float* c, int64_t ldc);
}  // namespace detail

}  // namespace rhw::core
