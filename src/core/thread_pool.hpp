// A small fixed-size thread pool with a parallel_for helper.
//
// Used by the GEMM kernel and batched evaluation loops. A single process-wide
// pool (global_pool) avoids oversubscription when layers nest.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rhw {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Runs fn(chunk_begin, chunk_end) over [0, n) split into roughly equal
  // contiguous chunks, one per worker (plus the calling thread). Blocks until
  // every chunk completes. Reentrant calls from inside a worker fall back to
  // serial execution to avoid deadlock.
  void parallel_for(int64_t n,
                    const std::function<void(int64_t, int64_t)>& fn);

 private:
  struct Task {
    std::function<void(int64_t, int64_t)> fn;
    int64_t begin = 0;
    int64_t end = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::vector<Task> queue_;
  int64_t outstanding_ = 0;
  bool stop_ = false;
};

// Process-wide pool sized to hardware_concurrency (minus one for the caller).
ThreadPool& global_pool();

// Convenience wrapper over global_pool().parallel_for.
void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn);

}  // namespace rhw
