// Single-precision GEMM / GEMV entry points.
//
//   C = alpha * op(A) * op(B) + beta * C
//
// op(X) is X or X^T. Row-major storage with explicit leading dimensions,
// mirroring the BLAS interface so layer code reads conventionally. This is the
// hot loop of the whole repo (conv via im2col and all linear layers).
//
// Both calls dispatch to the process-wide active core::Engine — select it
// with core::set_active_engine / $RHW_ENGINE / the experiment `engine=` knob
// (core/engine_registry.hpp, docs/ENGINES.md). The default engine "blocked"
// is the historical cache-blocked kernel, unchanged.
#pragma once

#include <cstdint>

namespace rhw {

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b, int64_t ldb,
          float beta, float* c, int64_t ldc);

// Reference implementation (naive triple loop) used by tests to validate the
// blocked kernel.
void gemm_naive(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                float alpha, const float* a, int64_t lda, const float* b,
                int64_t ldb, float beta, float* c, int64_t ldc);

// y = alpha * op(A) * x + beta * y   (matrix-vector)
void gemv(bool trans_a, int64_t m, int64_t n, float alpha, const float* a,
          int64_t lda, const float* x, float beta, float* y);

}  // namespace rhw
