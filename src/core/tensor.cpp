#include "core/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/rng.hpp"

namespace rhw {

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      data_(static_cast<size_t>(numel_), 0.f) {}

Tensor::Tensor(Shape shape, float fill_value)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      data_(static_cast<size_t>(numel_), fill_value) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)),
      data_(std::move(values)) {
  if (static_cast<int64_t>(data_.size()) != numel_) {
    throw std::invalid_argument("Tensor: values size does not match shape");
  }
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }
Tensor Tensor::ones(Shape shape) { return Tensor(std::move(shape), 1.f); }
Tensor Tensor::full(Shape shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::randn(Shape shape, RandomEngine& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.gaussian(mean, stddev);
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, RandomEngine& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::from_span(Shape shape, std::span<const float> values) {
  Tensor t(std::move(shape));
  if (static_cast<int64_t>(values.size()) != t.numel_) {
    throw std::invalid_argument("from_span: size mismatch");
  }
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != numel_) {
    throw std::invalid_argument("reshaped: numel mismatch");
  }
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::reshape_inplace(Shape new_shape) {
  if (shape_numel(new_shape) != numel_) {
    throw std::invalid_argument("reshape_inplace: numel mismatch");
  }
  shape_ = std::move(new_shape);
}

int64_t Tensor::index2(int64_t i, int64_t j) const {
  assert(rank() == 2);
  assert(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
  return i * shape_[1] + j;
}

int64_t Tensor::index4(int64_t n, int64_t c, int64_t h, int64_t w) const {
  assert(rank() == 4);
  assert(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1]);
  assert(h >= 0 && h < shape_[2] && w >= 0 && w < shape_[3]);
  return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
}

float& Tensor::at(int64_t i, int64_t j) {
  return data_[static_cast<size_t>(index2(i, j))];
}
float Tensor::at(int64_t i, int64_t j) const {
  return data_[static_cast<size_t>(index2(i, j))];
}
float& Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) {
  return data_[static_cast<size_t>(index4(n, c, h, w))];
}
float Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) const {
  return data_[static_cast<size_t>(index4(n, c, h, w))];
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape_str() + " vs " + b.shape_str());
  }
}
}  // namespace

Tensor& Tensor::add_(const Tensor& other) {
  check_same_shape(*this, other, "add_");
  const float* o = other.data();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o[i];
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& other, float alpha) {
  check_same_shape(*this, other, "add_scaled_");
  const float* o = other.data();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * o[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  check_same_shape(*this, other, "sub_");
  const float* o = other.data();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  check_same_shape(*this, other, "mul_");
  const float* o = other.data();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= o[i];
  return *this;
}

Tensor& Tensor::scale_(float alpha) {
  for (float& v : data_) v *= alpha;
  return *this;
}

Tensor& Tensor::add_scalar_(float v) {
  for (float& x : data_) x += v;
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  for (float& v : data_) v = std::clamp(v, lo, hi);
  return *this;
}

Tensor& Tensor::relu_() {
  for (float& v : data_) v = v > 0.f ? v : 0.f;
  return *this;
}

Tensor& Tensor::sign_() {
  for (float& v : data_) v = (v > 0.f) ? 1.f : (v < 0.f ? -1.f : 0.f);
  return *this;
}

Tensor Tensor::add(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}
Tensor Tensor::sub(const Tensor& other) const {
  Tensor out = *this;
  out.sub_(other);
  return out;
}
Tensor Tensor::mul(const Tensor& other) const {
  Tensor out = *this;
  out.mul_(other);
  return out;
}
Tensor Tensor::scaled(float alpha) const {
  Tensor out = *this;
  out.scale_(alpha);
  return out;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  return numel_ == 0 ? 0.f : sum() / static_cast<float>(numel_);
}

float Tensor::min() const {
  return data_.empty() ? 0.f : *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  return data_.empty() ? 0.f : *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::vector<int64_t> Tensor::argmax_rows() const {
  if (rank() != 2) throw std::invalid_argument("argmax_rows: rank-2 required");
  const int64_t rows = shape_[0], cols = shape_[1];
  std::vector<int64_t> out(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = data_.data() + i * cols;
    out[static_cast<size_t>(i)] =
        std::max_element(row, row + cols) - row;
  }
  return out;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace rhw
