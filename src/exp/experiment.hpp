// ExperimentSpec: the declarative description of one full experiment — the
// fourth string-keyed seam, closing the loop the first three opened.
//
// Hardware, attacks and defenses are already spec strings; an *experiment*
// (the paper's unit of result: an AL(eps) grid per attack mode per substrate
// per defense, Figs. 5-8, Tables I-III) is the composition of all three plus
// model/dataset selection, mode pairings, epsilon axes, trials and a seed.
// ExperimentSpec lifts that composition into the same core/spec grammar,
// extended with list/section syntax:
//
//   scalars    key=value                 trials=5  seed=7  batch=100
//   sections   spec strings per domain   model=vgg8:width=0.125,in=16
//                                        dataset=tiny:classes=10,train=100
//                                        train=quick:epochs=4
//                                        engine=simd:mr=6,nr=16
//   lists      axis+=item (append)       backends+=xbar:rmin=1e5+smooth:sigma=0.25
//              axis=item  (replace)      attacks=pgd@0.031,0.062
//              axis=      (clear)        modes=
//
// List item grammars (all built on core/spec.hpp parsing, all reporting
// token-naming std::invalid_argument errors like the three registries):
//
//   backends   [key=]hw-spec[+defense-spec][@calib]
//              "x32=xbar:size=32", "ideal+jpeg_quant:bits=4",
//              "sram:vdd=0.68+smooth:sigma=0.25@calib". The key defaults to
//              the hw key (plus "+<defense key>" when defended); @calib
//              hands the arm the experiment's calibration (test) set.
//   modes      label=grad/eval | label=key (white-box: grad == eval)
//              "SH-Cross32=ideal/x32", "QUANOS=quanos"
//   attacks    attack-spec@eps,eps,... | attack-spec@fgsm-grid|pgd-grid
//              "pgd:steps=7@0.1", "fgsm@fgsm-grid"
//   panels     arch-spec/dataset-spec
//              "vgg19/synth-c100", "vgg8:width=0.125,in=16/tiny:classes=10"
//
// A spec validates against all three registries up front (validate()),
// round-trips through to_args() (the canonical override list that rebuilds
// it from an empty spec — what rhw-sweep-v4 artifacts embed), and expands
// into a SweepGrid by the rhw_run driver (exp/experiment_registry.hpp).
// Named presets for every figure/table/example live in exp::ExperimentRegistry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/spec.hpp"

namespace rhw::exp {

// One hardware arm: hw registry spec, optional defense registry spec,
// optional request for the experiment's calibration set at prepare() time.
struct ExperimentBackend {
  std::string key;      // referenced by mode pairings; unique per spec
  std::string hw;       // hw::BackendRegistry spec
  std::string defense;  // defenses::DefenseRegistry spec; "" = none
  bool calibrate = false;

  std::string to_item() const;  // "key=hw+defense@calib" canonical item
  bool operator==(const ExperimentBackend&) const = default;
};

// One attack-mode pairing over backend keys (grad == eval is white-box).
struct ExperimentMode {
  std::string label;
  std::string grad;
  std::string eval;

  std::string to_item() const;  // "label=grad/eval"
  bool operator==(const ExperimentMode&) const = default;
};

// One attack arm: attacks::AttackRegistry spec plus its epsilon axis.
struct ExperimentAttack {
  std::string spec;
  std::vector<float> epsilons;

  std::string to_item() const;  // "spec@eps,eps,..." (round-trip exact)
  bool operator==(const ExperimentAttack&) const = default;
};

// One (model, dataset) panel. Multi-panel experiments (fig5's four
// arch x dataset grids) run the same declared grid once per panel.
struct ExperimentPanel {
  std::string arch;     // "vgg8" | "vgg8:width=<f>,in=<n>" | ...
  std::string dataset;  // "synth-c10" | "synth-c100" | "tiny:classes=..,.."

  std::string to_item() const;  // "arch/dataset"
  bool operator==(const ExperimentPanel&) const = default;
};

struct ExperimentSpec {
  std::string name;      // registry key ("fig5"); "custom" when hand-built
  std::string tag;       // artifact stem: BENCH_<tag>[_<panel>].json
  std::string title;     // banner headline
  std::string subtitle;  // banner body

  std::vector<ExperimentPanel> panels;
  std::string train = "zoo";  // "zoo" | "quick[:epochs=,batch=]" | "none"
  // core::EngineRegistry spec every kernel of the run dispatches through
  // ("naive" | "blocked:bk=,bn=" | "simd:mr=,nr="). "" defers to $RHW_ENGINE
  // (default "blocked"); the driver resolves it to the active engine's
  // canonical spec before stamping, so artifacts always record the engine.
  std::string engine;
  int64_t eval_count = 256;   // test-head size through exp::eval_count; 0 = all
  std::vector<ExperimentBackend> backends;
  std::vector<ExperimentMode> modes;
  std::vector<ExperimentAttack> attacks;
  int trials = 1;
  uint64_t seed = 0xADE5;  // attacks::kDefaultEvalSeed
  int64_t batch = 100;
  bool verify = false;  // always re-run serially and require cell parity
  std::string out;      // artifact path override; "" = BENCH_<tag>.json

  // Serving mode (serve=1): the spec drives serve::Server + serve::LoadGen
  // instead of the sweep engine — each backend arm serves `requests` Poisson
  // arrivals at every offered rate on the `qps` axis, micro-batched under
  // (batch_max, linger_us), and the run emits an rhw-serve-v1 latency curve
  // (docs/SERVING.md). modes/attacks are not required in serving mode.
  bool serve = false;
  std::vector<float> qps;     // offered-load axis, requests/second
  int64_t requests = 256;     // arrivals per (arm, qps) point
  int64_t batch_max = 16;     // micro-batch size cap
  int64_t linger_us = 2000;   // max queue wait of the oldest request
  int64_t lanes = 0;          // worker lanes; 0 = $RHW_SERVE_LANES / cores

  // Applies one "key=value" / "axis+=item" override token. Throws
  // std::invalid_argument naming the offending token (key, item, or value)
  // with the same shape as the registries' errors.
  void apply_override(const std::string& token);

  // The canonical override list that rebuilds this spec from an empty one —
  // rhw-sweep-v4 artifacts embed it, and it round-trips bit-exactly
  // (epsilons included).
  std::vector<std::string> to_args() const;

  // Full up-front validation: every hw/defense/attack spec through its live
  // registry, model/dataset/train section grammar, unique backend keys and
  // mode labels, mode pairings resolving to declared keys, non-empty axes.
  // Throws std::invalid_argument naming the offending token.
  void validate() const;
};

// -- item parsing (exposed for tests and the docs checker) --------------------
// Each throws std::invalid_argument naming the offending token.
ExperimentBackend parse_backend_item(const std::string& item);
ExperimentMode parse_mode_item(const std::string& item);
ExperimentAttack parse_attack_item(const std::string& item);
ExperimentPanel parse_panel_item(const std::string& item);

// Round-trip-exact float text ("%.9g") used by ExperimentAttack::to_item.
std::string float_token(float v);

// Parsed model/dataset/train sections (core/spec grammar).
struct ArchSection {
  std::string arch;  // vgg8 | vgg16 | vgg19 | resnet18
  float width_mult = 0.25f;
  int64_t in_size = 32;
};
struct DatasetSection {
  // Any data::DatasetRegistry spec, optionally wrapped with the corruption
  // grammar "<base>+corrupt:kind=...,sev=..." (docs/DATASETS.md).
  std::string key;        // base registry key (synth-c10 | tiny | cifar10 | ...)
  std::string tag;        // cache/display name ("synth-c10", "tiny-c10+fog3")
  std::string zoo_tag;    // base tag ignoring corruption — train=zoo cache key
  std::string canonical;  // canonical spec, stamped into artifacts/banner
};
struct TrainSection {
  std::string key;  // zoo | quick | none
  int epochs = 4;
  int64_t batch = 50;
};
ArchSection parse_arch_section(const std::string& spec);
DatasetSection parse_dataset_section(const std::string& spec);
TrainSection parse_train_section(const std::string& spec);

}  // namespace rhw::exp
