#include "exp/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace rhw::exp {

namespace {
constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
}

std::string render_ascii_plot(const std::vector<Series>& series,
                              const PlotOptions& options) {
  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);

  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = options.y_min, y_max = options.y_max;
  const bool auto_y = y_min == y_max;
  if (auto_y) {
    y_min = std::numeric_limits<double>::infinity();
    y_max = -std::numeric_limits<double>::infinity();
  }
  for (const auto& s : series) {
    for (double v : s.x) {
      x_min = std::min(x_min, v);
      x_max = std::max(x_max, v);
    }
    if (auto_y) {
      for (double v : s.y) {
        y_min = std::min(y_min, v);
        y_max = std::max(y_max, v);
      }
    }
  }
  if (!std::isfinite(x_min) || x_max <= x_min) {
    x_min = 0;
    x_max = 1;
  }
  if (!std::isfinite(y_min) || y_max <= y_min) {
    y_min = 0;
    y_max = 1;
  }

  std::vector<std::string> grid(static_cast<size_t>(h),
                                std::string(static_cast<size_t>(w), ' '));
  for (size_t si = 0; si < series.size(); ++si) {
    const char mark = kMarkers[si % sizeof(kMarkers)];
    const auto& s = series[si];
    const size_t n = std::min(s.x.size(), s.y.size());
    for (size_t i = 0; i < n; ++i) {
      const double fx = (s.x[i] - x_min) / (x_max - x_min);
      const double fy = (s.y[i] - y_min) / (y_max - y_min);
      if (fx < 0 || fx > 1 || fy < 0 || fy > 1) continue;
      const int col = static_cast<int>(std::lround(fx * (w - 1)));
      const int row = h - 1 - static_cast<int>(std::lround(fy * (h - 1)));
      grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = mark;
    }
  }

  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%8.2f ", y_max);
  for (int row = 0; row < h; ++row) {
    if (row == 0) {
      out += buf;
    } else if (row == h - 1) {
      std::snprintf(buf, sizeof buf, "%8.2f ", y_min);
      out += buf;
    } else {
      out += std::string(9, ' ');
    }
    out += "|" + grid[static_cast<size_t>(row)] + "\n";
  }
  out += std::string(9, ' ') + "+" + std::string(static_cast<size_t>(w), '-') +
         "\n";
  std::snprintf(buf, sizeof buf, "%-10.3f", x_min);
  std::string axis = std::string(9, ' ') + buf;
  std::snprintf(buf, sizeof buf, "%s -> %.3f", options.x_label.c_str(), x_max);
  // Right-align the max label.
  const int pad = w - static_cast<int>(axis.size()) -
                  static_cast<int>(std::string(buf).size()) + 9;
  axis += std::string(static_cast<size_t>(std::max(1, pad)), ' ') + buf;
  out += axis + "\n";

  out += "legend: ";
  for (size_t si = 0; si < series.size(); ++si) {
    if (si) out += "   ";
    out += kMarkers[si % sizeof(kMarkers)];
    out += " = " + series[si].label;
  }
  out += "\n";
  return out;
}

}  // namespace rhw::exp
