#include "exp/artifact.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace rhw::exp {

// -- JSON reader --------------------------------------------------------------

namespace {

struct JsonParser {
  const std::string& s;
  size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\n' || s[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() const {
    if (pos >= s.size()) fail("unexpected end of input");
    return s[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (s.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= s.size()) fail("unterminated string");
      const char c = s[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= s.size()) fail("unterminated escape");
      const char e = s[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > s.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The writer only escapes control characters; encode any BMP code
          // point as UTF-8 without surrogate-pair handling.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const size_t start = pos;
    if (pos < s.size() && s[pos] == '-') ++pos;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) ++pos;
    if (pos < s.size() && s[pos] == '.') {
      ++pos;
      while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) ++pos;
    }
    if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
      if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) ++pos;
      while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) ++pos;
    }
    if (pos == start || (pos == start + 1 && s[start] == '-')) fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = s.substr(start, pos - start);  // raw literal: uint64-exact
    return v;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      ++pos;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.members.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return v;
      }
      for (;;) {
        v.items.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.text = parse_string();
      return v;
    }
    if (consume_literal("null")) return v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    return parse_number();
  }
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::runtime_error("missing key '" + key + "'");
  return *v;
}

double JsonValue::number() const {
  if (kind != Kind::kNumber) throw std::runtime_error("value is not a number");
  return std::strtod(text.c_str(), nullptr);
}

int64_t JsonValue::number_i64() const {
  if (kind != Kind::kNumber) throw std::runtime_error("value is not a number");
  return std::strtoll(text.c_str(), nullptr, 10);
}

uint64_t JsonValue::number_u64() const {
  if (kind != Kind::kNumber) throw std::runtime_error("value is not a number");
  return std::strtoull(text.c_str(), nullptr, 10);
}

const std::string& JsonValue::string_value() const {
  if (kind != Kind::kString) throw std::runtime_error("value is not a string");
  return text;
}

JsonValue parse_json(const std::string& text) {
  JsonParser p{text};
  JsonValue v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing characters after document");
  return v;
}

// -- artifact loading ---------------------------------------------------------

namespace {

[[noreturn]] void load_fail(const std::string& path, const std::string& why) {
  throw std::runtime_error(path + ": " + why);
}

size_t index_of_label(const std::string& path, const std::string& what,
                      const std::vector<std::string>& labels,
                      const std::string& label) {
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) return i;
  }
  std::string known;
  for (const auto& l : labels) known += " '" + l + "'";
  load_fail(path, "cell references unknown " + what + " '" + label +
                      "'; artifact " + what + "s:" + known);
}

std::vector<std::string> string_array(const JsonValue& arr) {
  std::vector<std::string> out;
  out.reserve(arr.items.size());
  for (const auto& item : arr.items) out.push_back(item.string_value());
  return out;
}

}  // namespace

SweepArtifact load_sweep_artifact(const std::string& path) {
  std::ifstream is(path);
  if (!is) load_fail(path, "cannot open file");
  std::ostringstream buf;
  buf << is.rdbuf();
  JsonValue doc;
  try {
    doc = parse_json(buf.str());
  } catch (const std::exception& e) {
    load_fail(path, e.what());
  }

  SweepArtifact art;
  art.path = path;
  try {
    const std::string schema = doc.at("schema").string_value();
    if (schema != "rhw-sweep-v4") {
      load_fail(path, "unsupported schema '" + schema +
                          "' (rhw_merge fuses rhw-sweep-v4 artifacts)");
    }
    art.figure = doc.at("figure").string_value();
    SweepResult& r = art.result;
    const JsonValue& exp = doc.at("experiment");
    if (exp.kind == JsonValue::Kind::kObject) {
      r.experiment.preset = exp.at("preset").string_value();
      r.experiment.overrides = string_array(exp.at("overrides"));
      r.experiment.canonical = string_array(exp.at("canonical"));
      // Optional (absent in pre-dataset-seam artifacts): the panel's
      // canonical dataset spec.
      if (const JsonValue* dataset = exp.find("dataset")) {
        r.experiment.dataset = dataset->string_value();
      }
      if (const JsonValue* shard = exp.find("shard")) {
        r.experiment.shard_index = static_cast<size_t>(shard->at("index").number_u64());
        r.experiment.shard_count = static_cast<size_t>(shard->at("count").number_u64());
      }
      if (const JsonValue* merged = exp.find("merged_shards")) {
        r.experiment.merged_shards = static_cast<size_t>(merged->number_u64());
      }
    }
    r.trials = static_cast<int>(doc.at("trials").number_i64());
    r.base_seed = doc.at("base_seed").number_u64();
    if (const JsonValue* lanes = doc.find("lanes")) {
      r.lanes = static_cast<unsigned>(lanes->number_u64());
    }
    if (const JsonValue* wall = doc.find("wall_seconds")) {
      r.wall_seconds = wall->number();
    }
    r.mode_labels = string_array(doc.at("modes"));
    for (const auto& b : doc.at("backends").items) {
      r.backends.push_back({b.at("key").string_value(), b.at("spec").string_value(),
                            b.at("defense").string_value(),
                            b.at("defense_name").string_value()});
    }
    for (const auto& m : doc.at("mode_defs").items) {
      r.mode_defs.push_back({m.at("label").string_value(),
                             m.at("grad").string_value(),
                             m.at("eval").string_value()});
    }
    r.attack_specs = string_array(doc.at("attacks"));
    r.attack_names = string_array(doc.at("attack_names"));

    bool any_missing_index = false;
    for (const auto& c : doc.at("cells").items) {
      SweepCell cell;
      cell.mode = index_of_label(path, "mode", r.mode_labels,
                                 c.at("mode").string_value());
      cell.attack = index_of_label(path, "attack", r.attack_specs,
                                   c.at("attack").string_value());
      cell.epsilon = static_cast<float>(c.at("eps").number());
      cell.eps_index = static_cast<size_t>(c.at("eps_index").number_u64());
      cell.trial = static_cast<int>(c.at("trial").number_i64());
      cell.seed = c.at("seed").number_u64();
      cell.clean_acc = c.at("clean").number();
      cell.adv_acc = c.at("adv").number();
      cell.al = c.at("al").number();
      cell.cert_radius = c.at("cert_radius").number();
      if (const JsonValue* idx = c.find("index")) {
        cell.index = static_cast<size_t>(idx->number_u64());
      } else {
        any_missing_index = true;
      }
      r.cells.push_back(cell);
    }
    // Pre-index v4 files carry the full grid in enumeration order: derive
    // the canonical indices from the coordinates.
    if (any_missing_index) {
      std::vector<size_t> eps_counts(r.attack_specs.size(), 0);
      for (const SweepCell& cell : r.cells) {
        eps_counts[cell.attack] =
            std::max(eps_counts[cell.attack], cell.eps_index + 1);
      }
      std::map<std::tuple<int, size_t, size_t, size_t>, size_t> index_of;
      for (const CellCoord& c :
           enumerate_cells(r.mode_labels.size(), eps_counts, r.trials)) {
        index_of[{c.trial, c.mode, c.attack, c.eps_index}] = c.index;
      }
      for (SweepCell& cell : r.cells) {
        const auto it =
            index_of.find({cell.trial, cell.mode, cell.attack, cell.eps_index});
        if (it == index_of.end()) {
          load_fail(path, "cell coordinates outside the enumerated grid");
        }
        cell.index = it->second;
      }
    }
    if (const JsonValue* total = doc.find("cells_total")) {
      r.cells_total = static_cast<size_t>(total->number_u64());
    } else {
      r.cells_total = r.cells.size();
    }
    for (const auto& a : doc.at("aggregates").items) {
      SweepAggregate agg;
      agg.mode = index_of_label(path, "mode", r.mode_labels,
                                a.at("mode").string_value());
      agg.attack = index_of_label(path, "attack", r.attack_specs,
                                  a.at("attack").string_value());
      agg.epsilon = static_cast<float>(a.at("eps").number());
      const int64_t n = a.at("n").number_i64();
      agg.clean.n = agg.adv.n = agg.al.n = agg.cert.n = n;
      agg.clean.mean = a.at("clean_mean").number();
      agg.clean.ci95 = a.at("clean_ci95").number();
      agg.adv.mean = a.at("adv_mean").number();
      agg.adv.ci95 = a.at("adv_ci95").number();
      agg.al.mean = a.at("al_mean").number();
      agg.al.stddev = a.at("al_stddev").number();
      agg.al.ci95 = a.at("al_ci95").number();
      agg.cert.mean = a.at("cert_mean").number();
      agg.cert.ci95 = a.at("cert_ci95").number();
      // eps_index is not serialized for aggregates: recover it by position
      // within the (mode, attack) row, which is emitted eps-ascending.
      for (const auto& prev : r.aggregates) {
        if (prev.mode == agg.mode && prev.attack == agg.attack) ++agg.eps_index;
      }
      r.aggregates.push_back(agg);
    }
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    if (what.rfind(path, 0) == 0) throw;  // already path-prefixed
    load_fail(path, what);
  }
  return art;
}

// -- merging ------------------------------------------------------------------

namespace {

std::string engine_token(const ExperimentStamp& stamp) {
  for (const auto& token : stamp.canonical) {
    if (token.rfind("engine=", 0) == 0) return token;
  }
  return "";
}

// The canonical args minus out= (each shard may write to its own path
// without becoming a different experiment).
std::vector<std::string> spec_tokens(const ExperimentStamp& stamp) {
  std::vector<std::string> out;
  for (const auto& token : stamp.canonical) {
    if (token.rfind("out=", 0) == 0) continue;
    out.push_back(token);
  }
  return out;
}

[[noreturn]] void mismatch(const std::string& what, const std::string& a,
                           const std::string& path_a, const std::string& b,
                           const std::string& path_b) {
  throw std::runtime_error("rhw_merge: " + what + " mismatch: '" + a + "' (" +
                           path_a + ") vs '" + b + "' (" + path_b + ")");
}

}  // namespace

SweepResult merge_artifacts(const std::vector<SweepArtifact>& shards,
                            std::string* figure_out) {
  if (shards.empty()) {
    throw std::runtime_error("rhw_merge: no input artifacts");
  }
  for (const SweepArtifact& s : shards) {
    if (s.result.experiment.preset.empty()) {
      throw std::runtime_error(
          "rhw_merge: " + s.path +
          ": artifact carries no experiment stamp (\"experiment\":null, "
          "an ad-hoc grid); only rhw_run artifacts merge");
    }
  }
  const SweepArtifact& first = shards.front();
  const std::vector<std::string> first_spec = spec_tokens(first.result.experiment);
  for (size_t i = 1; i < shards.size(); ++i) {
    const SweepArtifact& s = shards[i];
    if (s.figure != first.figure) {
      mismatch("figure", first.figure, first.path, s.figure, s.path);
    }
    if (s.result.experiment.preset != first.result.experiment.preset) {
      mismatch("preset", first.result.experiment.preset, first.path,
               s.result.experiment.preset, s.path);
    }
    // Engine first: a run rebuilt under a different kernel is the classic
    // foot-gun, and the generic canonical diff below would bury it.
    const std::string eng_a = engine_token(first.result.experiment);
    const std::string eng_b = engine_token(s.result.experiment);
    if (eng_a != eng_b) {
      mismatch("engine stamp", eng_a, first.path, eng_b, s.path);
    }
    const std::vector<std::string> spec = spec_tokens(s.result.experiment);
    for (size_t t = 0; t < std::max(first_spec.size(), spec.size()); ++t) {
      const std::string a = t < first_spec.size() ? first_spec[t] : "<absent>";
      const std::string b = t < spec.size() ? spec[t] : "<absent>";
      if (a != b) mismatch("canonical spec", a, first.path, b, s.path);
    }
    if (s.result.cells_total != first.result.cells_total) {
      mismatch("cells_total", std::to_string(first.result.cells_total),
               first.path, std::to_string(s.result.cells_total), s.path);
    }
  }

  SweepResult merged;
  merged.mode_labels = first.result.mode_labels;
  merged.mode_defs = first.result.mode_defs;
  merged.backends = first.result.backends;
  merged.attack_specs = first.result.attack_specs;
  merged.attack_names = first.result.attack_names;
  merged.trials = first.result.trials;
  merged.base_seed = first.result.base_seed;
  merged.cells_total = first.result.cells_total;
  merged.lanes = 0;

  struct Source {
    SweepCell cell;
    const std::string* path = nullptr;
  };
  std::map<size_t, Source> by_index;
  for (const SweepArtifact& s : shards) {
    merged.wall_seconds += s.result.wall_seconds;
    for (const SweepCell& cell : s.result.cells) {
      const auto [it, inserted] = by_index.insert({cell.index, {cell, &s.path}});
      if (!inserted) {
        throw std::runtime_error(
            "rhw_merge: duplicate cell index " + std::to_string(cell.index) +
            " (" + *it->second.path + " and " + s.path + ")");
      }
    }
  }
  for (size_t i = 0; i < merged.cells_total; ++i) {
    if (by_index.count(i) == 0) {
      throw std::runtime_error(
          "rhw_merge: merge incomplete: missing cell index " +
          std::to_string(i) + " (have " + std::to_string(by_index.size()) +
          " of " + std::to_string(merged.cells_total) + " cells)");
    }
  }
  if (by_index.size() != merged.cells_total) {
    // Indices past the declared grid: corrupt input.
    throw std::runtime_error(
        "rhw_merge: cell index " + std::to_string(by_index.rbegin()->first) +
        " outside the declared grid of " + std::to_string(merged.cells_total) +
        " cells");
  }
  merged.cells.reserve(by_index.size());
  for (const auto& [index, src] : by_index) merged.cells.push_back(src.cell);
  merged.aggregates = compute_aggregates(merged);

  merged.experiment = first.result.experiment;
  merged.experiment.shard_index = 0;
  merged.experiment.shard_count = 1;
  merged.experiment.merged_shards = shards.size();
  // Per-shard output paths are shard state, not experiment identity.
  std::erase_if(merged.experiment.canonical, [](const std::string& t) {
    return t.rfind("out=", 0) == 0;
  });
  std::erase_if(merged.experiment.overrides, [](const std::string& t) {
    return t.rfind("out=", 0) == 0;
  });

  if (figure_out != nullptr) *figure_out = first.figure;
  return merged;
}

// -- spec diff ----------------------------------------------------------------

std::string diff_artifacts(const SweepArtifact& a, const SweepArtifact& b) {
  auto key_of = [](const std::string& token) {
    const size_t eq = token.find('=');
    std::string key = eq == std::string::npos ? token : token.substr(0, eq);
    if (!key.empty() && key.back() == '+') key.pop_back();  // axis+=item
    return key;
  };
  auto group = [&](const ExperimentStamp& stamp) {
    std::vector<std::pair<std::string, std::vector<std::string>>> out;
    for (const auto& token : stamp.canonical) {
      const std::string key = key_of(token);
      auto it = std::find_if(out.begin(), out.end(),
                             [&](const auto& kv) { return kv.first == key; });
      if (it == out.end()) {
        out.push_back({key, {token}});
      } else {
        it->second.push_back(token);
      }
    }
    return out;
  };
  const auto ga = group(a.result.experiment);
  const auto gb = group(b.result.experiment);
  std::vector<std::string> keys;
  for (const auto& [key, tokens] : ga) keys.push_back(key);
  for (const auto& [key, tokens] : gb) {
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(key);
    }
  }
  auto tokens_of = [](const auto& groups, const std::string& key)
      -> const std::vector<std::string>* {
    for (const auto& [k, tokens] : groups) {
      if (k == key) return &tokens;
    }
    return nullptr;
  };
  std::string out;
  for (const auto& key : keys) {
    const std::vector<std::string>* ta = tokens_of(ga, key);
    const std::vector<std::string>* tb = tokens_of(gb, key);
    if (ta != nullptr && tb != nullptr && *ta == *tb) continue;
    if (ta != nullptr) {
      for (const auto& token : *ta) out += "- " + token + "\n";
    }
    if (tb != nullptr) {
      for (const auto& token : *tb) out += "+ " + token + "\n";
    }
  }
  return out;
}

}  // namespace rhw::exp
