// Trial aggregation and JSON emission for the sweep engine.
//
// SweepStat is the mean ± spread summary of one grid cell's repeated trials
// (noisy backends re-run with derived trial seeds). JsonWriter is a minimal
// dependency-free streaming JSON emitter used for the BENCH_*.json artifacts
// the benches write next to their CSV tables.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace rhw::exp {

struct SweepStat {
  int64_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1); 0 for n < 2
  double ci95 = 0.0;    // Student-t 95% half-width: t_{n-1} * stddev / sqrt(n)

  // "12.34" or "12.34±1.20" when the interval is non-degenerate.
  std::string format(int precision = 2) const;
};

SweepStat summarize(std::span<const double> xs);

// Streaming JSON writer with automatic comma/indent management. Usage:
//   JsonWriter w(os);
//   w.begin_object();
//   w.field("name", "fig6"); w.key("cells"); w.begin_array(); ... w.end_array();
//   w.end_object();
// Doubles are emitted with enough digits to round-trip; NaN/inf become null.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& k);

  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void null_value();  // literal JSON null
  void value(double v);
  void value(int64_t v);
  void value(uint64_t v);
  void value(bool v);

  template <typename T>
  void field(const std::string& k, T v) {
    key(k);
    value(v);
  }

 private:
  void comma();
  void open(char c);
  void close(char c);

  std::ostream& os_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> has_elems_;
  bool after_key_ = false;
};

std::string json_escape(const std::string& s);

}  // namespace rhw::exp
