#include "exp/experiment_registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "core/engine_registry.hpp"
#include "data/registry.hpp"
#include "exp/ascii_plot.hpp"
#include "exp/table_printer.hpp"
#include "serve/serve_experiment.hpp"

namespace rhw::exp {

// -- registry -----------------------------------------------------------------

ExperimentRegistry::ExperimentRegistry() {
  register_builtin_experiments(*this);
}

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(const std::string& key, ExperimentFactory factory,
                             ProgramFactory program) {
  factories_[key] = {std::move(factory), std::move(program)};
}

bool ExperimentRegistry::contains(const std::string& key) const {
  return factories_.count(key) > 0;
}

std::vector<std::string> ExperimentRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, entry] : factories_) out.push_back(key);
  return out;
}

ExperimentSpec ExperimentRegistry::preset(const std::string& key) const {
  const auto it = factories_.find(key);
  if (it == factories_.end()) {
    std::ostringstream os;
    os << "unknown experiment '" << key << "'; registered:";
    for (const auto& [name, entry] : factories_) os << ' ' << name;
    throw std::invalid_argument(os.str());
  }
  ExperimentSpec spec = it->second.factory();
  spec.name = key;
  if (spec.tag.empty()) spec.tag = key;
  return spec;
}

std::unique_ptr<ExperimentProgram> ExperimentRegistry::program(
    const std::string& key) const {
  const auto it = factories_.find(key);
  if (it != factories_.end() && it->second.program) {
    return it->second.program();
  }
  return std::make_unique<ExperimentProgram>();
}

// -- default rendering --------------------------------------------------------

void ExperimentProgram::report(PanelContext& panel) {
  const SweepResult& result = *panel.result;
  bool any_cert = false;
  for (const auto& agg : result.aggregates) {
    if (agg.cert.mean > 0.0) any_cert = true;
  }
  std::vector<std::string> headers{"attack", "mode", "eps",
                                   "clean",  "adv",  "AL"};
  if (any_cert) headers.push_back("cert L2");
  TablePrinter table(headers);
  for (size_t a = 0; a < result.attack_specs.size(); ++a) {
    for (size_t m = 0; m < result.mode_labels.size(); ++m) {
      for (const auto& agg : result.aggregates) {
        if (agg.mode != m || agg.attack != a) continue;
        std::vector<std::string> row{
            result.attack_names[a],  result.mode_labels[m],
            fmt(agg.epsilon, 3),     agg.clean.format(),
            agg.adv.format(),        agg.al.format()};
        if (any_cert) {
          row.push_back(agg.cert.mean > 0.0 ? agg.cert.format(3) : "-");
        }
        table.add_row(std::move(row));
      }
    }
  }
  table.print();
  table.write_csv(bench_out_dir() + "/" + panel.tag + ".csv");

  // AL(eps) panel per attack with a real epsilon axis.
  for (size_t a = 0; a < result.attack_specs.size(); ++a) {
    std::vector<Series> panel_series;
    for (size_t m = 0; m < result.mode_labels.size(); ++m) {
      Series series;
      series.label = result.mode_labels[m];
      for (const auto& agg : result.aggregates) {
        if (agg.mode != m || agg.attack != a) continue;
        series.x.push_back(agg.epsilon);
        series.y.push_back(agg.al.mean);
      }
      if (series.x.size() >= 2) panel_series.push_back(std::move(series));
    }
    if (panel_series.empty()) continue;
    PlotOptions opt;
    opt.title = result.attack_names[a] + " (AL vs eps)";
    opt.y_min = 0;
    opt.y_max = 100;
    std::printf("%s\n", render_ascii_plot(panel_series, opt).c_str());
  }
}

// -- driver -------------------------------------------------------------------

namespace {

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && *env != '\0' && *env != '0';
}

std::string suffix_before_json(const std::string& path,
                               const std::string& suffix) {
  const size_t ext = path.rfind(".json");
  if (ext != std::string::npos && ext + 5 == path.size()) {
    return path.substr(0, ext) + suffix + ".json";
  }
  return path + suffix;
}

std::string artifact_path(const ExperimentSpec& spec,
                          const PanelContext& panel) {
  std::string path;
  if (spec.out.empty()) {
    path = "BENCH_" + panel.tag + ".json";
  } else if (spec.panels.size() == 1) {
    path = spec.out;
  } else {
    // Multi-panel run with an explicit output path: suffix before ".json".
    path = suffix_before_json(
        spec.out, "_" + panel.arch.arch + "_" + panel.dataset.tag);
  }
  return path;
}

// Sharded runs write per-shard artifacts next to the unsharded path:
// BENCH_foo.json -> BENCH_foo_shard1of3.json.
std::string shard_artifact_path(std::string path, const RunOptions& run) {
  if (run.shard_count <= 1) return path;
  return suffix_before_json(std::move(path),
                            "_shard" + std::to_string(run.shard_index) + "of" +
                                std::to_string(run.shard_count));
}

// The resume identity: canonical spec args + shard + panel tag. A journal
// written under a different header can never replay into this run.
std::string journal_header(const ExperimentSpec& spec, const RunOptions& run,
                           const std::string& panel_tag) {
  std::string header;
  for (const auto& token : spec.to_args()) {
    if (!header.empty()) header += ' ';
    header += token;
  }
  header += " | shard=" + std::to_string(run.shard_index) + "/" +
            std::to_string(run.shard_count);
  header += " | panel=" + panel_tag;
  return header;
}

size_t env_cell_budget() {
  const char* env = std::getenv("RHW_SWEEP_CELL_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  return static_cast<size_t>(std::strtoull(env, nullptr, 10));
}

PanelContext make_panel(const ExperimentSpec& spec, size_t index) {
  PanelContext pc;
  pc.spec = &spec;
  pc.index = index;
  pc.arch = parse_arch_section(spec.panels[index].arch);
  pc.dataset = parse_dataset_section(spec.panels[index].dataset);
  pc.tag = spec.tag;
  if (spec.panels.size() > 1) {
    pc.tag += "_" + pc.arch.arch + "_" + pc.dataset.tag;
  }
  // The sixth seam: any registered dataset spec (optionally wrapped with
  // +corrupt:...) resolves through data::DatasetRegistry; load_dataset
  // shares one deterministic in-memory copy per canonical spec.
  pc.data = data::load_dataset(spec.panels[index].dataset);
  const TrainSection tr = parse_train_section(spec.train);
  if (tr.key == "zoo") {
    // Cache by the base tag so corrupted variants (clean train split) share
    // the clean model — validate() restricts zoo to the paper datasets.
    models::TrainedModel trained =
        models::get_trained(pc.arch.arch, pc.dataset.zoo_tag, pc.data);
    pc.model = std::move(trained.model);
  } else {
    pc.model = models::build_model(pc.arch.arch, pc.data.train.num_classes,
                                   pc.arch.width_mult, pc.arch.in_size);
    if (tr.key == "quick") {
      models::TrainConfig tcfg;
      tcfg.epochs = tr.epochs;
      tcfg.batch_size = tr.batch;
      models::train_model(pc.model, pc.data, tcfg);
    }
    pc.model.net->set_training(false);
  }
  pc.eval_set = spec.eval_count == 0
                    ? pc.data.test
                    : pc.data.test.head(eval_count(spec.eval_count));
  return pc;
}

void build_grid(const ExperimentSpec& spec, PanelContext& pc) {
  SweepGrid& grid = pc.grid;
  grid.model = &pc.model;
  grid.width_mult = pc.arch.width_mult;
  grid.in_size = pc.arch.in_size;
  grid.eval_set = &pc.eval_set;
  grid.train_data = &pc.data;
  for (const auto& arm : spec.backends) {
    grid.backends.push_back(
        {arm.key, arm.hw, arm.defense,
         arm.calibrate ? &pc.data.test : nullptr});
  }
  for (const auto& mode : spec.modes) {
    grid.modes.push_back({mode.label, mode.grad, mode.eval});
  }
  for (const auto& attack : spec.attacks) {
    grid.attacks.push_back({attack.spec, attack.epsilons});
  }
  grid.trials = spec.trials;
  grid.base.batch_size = spec.batch;
  grid.base.seed = spec.seed;
}

// The engine's cross-lane determinism check: re-run serially, require
// bit-identical cells. Shared contract with tests/exp/test_sweep.cpp.
size_t count_cell_mismatches(const SweepResult& parallel,
                             const SweepResult& serial) {
  size_t mismatches = 0;
  for (size_t i = 0; i < parallel.cells.size(); ++i) {
    const auto& a = parallel.cells[i];
    const auto& b = serial.cells[i];
    if (a.seed != b.seed || a.clean_acc != b.clean_acc ||
        a.adv_acc != b.adv_acc || a.cert_radius != b.cert_radius) {
      ++mismatches;
      std::fprintf(stderr,
                   "[sweep-verify] MISMATCH cell %zu (mode %zu eps %.3f "
                   "trial %d): parallel %.10f/%.10f vs serial %.10f/%.10f\n",
                   i, a.mode, a.epsilon, a.trial, a.clean_acc, a.adv_acc,
                   b.clean_acc, b.adv_acc);
    }
  }
  return mismatches;
}

void verify_serial_parity(const SweepGrid& grid, const SweepResult& parallel,
                          const RunOptions& run) {
  // Same shard of the grid, one lane, no journal: the serial re-run must be
  // bit-identical even when the parallel run restored cells from a journal.
  SweepEngine::Options opt;
  opt.threads = 1;
  opt.shard_index = run.shard_index;
  opt.shard_count = run.shard_count;
  SweepEngine serial_engine(opt);
  const SweepResult serial = serial_engine.run(grid);
  const size_t mismatches = count_cell_mismatches(parallel, serial);
  if (mismatches > 0) {
    throw std::runtime_error("sweep verify FAILED: " +
                             std::to_string(mismatches) +
                             " mismatching cell(s) vs the serial run");
  }
  std::printf(
      "[sweep-verify] OK: %zu cells bit-identical on %u lane(s) vs serial; "
      "speedup %.2fx (serial %.2fs / parallel %.2fs)\n",
      parallel.cells.size(), parallel.lanes,
      parallel.wall_seconds > 0 ? serial.wall_seconds / parallel.wall_seconds
                                : 0.0,
      serial.wall_seconds, parallel.wall_seconds);
}

}  // namespace

bool parse_run_flag(const std::string& token, RunOptions& opts) {
  if (token == "--resume") {
    opts.resume = true;
    return true;
  }
  if (token == "--dry-run") {
    opts.dry_run = true;
    return true;
  }
  if (token.rfind("--shard=", 0) == 0) {
    const std::string value = token.substr(8);
    const size_t slash = value.find('/');
    uint64_t index = 0;
    uint64_t count = 0;
    bool ok = slash != std::string::npos && slash > 0 &&
              slash + 1 < value.size();
    if (ok) {
      for (size_t i = 0; ok && i < value.size(); ++i) {
        if (i == slash) continue;
        ok = value[i] >= '0' && value[i] <= '9';
      }
    }
    if (ok) {
      index = std::strtoull(value.substr(0, slash).c_str(), nullptr, 10);
      count = std::strtoull(value.substr(slash + 1).c_str(), nullptr, 10);
      ok = count > 0 && index < count;
    }
    if (!ok) {
      throw std::invalid_argument("flag '" + token +
                                  "': expected --shard=i/n with 0 <= i < n "
                                  "(e.g. --shard=0/3)");
    }
    opts.shard_index = static_cast<size_t>(index);
    opts.shard_count = static_cast<size_t>(count);
    return true;
  }
  return false;
}

std::string dry_run_listing(const ExperimentSpec& spec, size_t shard_index,
                            size_t shard_count) {
  if (spec.serve) {
    throw std::invalid_argument("experiment '" + spec.name +
                                "': serve=1 runs have no cell grid to list");
  }
  if (shard_count == 0 || shard_index >= shard_count) {
    throw std::invalid_argument(
        "shard " + std::to_string(shard_index) + "/" +
        std::to_string(shard_count) + ": shard index must be < shard count");
  }
  std::vector<size_t> eps_counts;
  eps_counts.reserve(spec.attacks.size());
  for (const auto& attack : spec.attacks) {
    eps_counts.push_back(attack.epsilons.size());
  }
  const std::vector<CellCoord> coords =
      enumerate_cells(spec.modes.size(), eps_counts, spec.trials);
  size_t owned = 0;
  for (const auto& c : coords) {
    if (c.index % shard_count == shard_index) ++owned;
  }
  std::ostringstream os;
  os << "# preset " << spec.name << ": " << spec.panels.size()
     << " panel(s), " << spec.modes.size() << " mode(s), "
     << spec.attacks.size() << " attack(s), " << spec.trials << " trial(s)\n";
  for (size_t p = 0; p < spec.panels.size(); ++p) {
    os << "# panel " << p << ": " << spec.panels[p].arch << " / "
       << spec.panels[p].dataset << "\n";
  }
  os << "# cells: " << coords.size() << " per panel";
  if (shard_count > 1) {
    os << ", shard " << shard_index << "/" << shard_count << " owns " << owned;
  }
  os << "\n";
  for (const auto& c : coords) {
    os << "cell " << c.index << " trial=" << c.trial << " mode="
       << spec.modes[c.mode].label << " attack=" << spec.attacks[c.attack].spec
       << " eps=" << float_token(spec.attacks[c.attack].epsilons[c.eps_index])
       << " seed="
       << sweep_cell_seed(spec.seed, c.mode, c.attack, c.eps_index, c.trial);
    if (shard_count > 1) {
      os << " shard=" << c.index % shard_count;
      if (c.index % shard_count == shard_index) os << " *";
    }
    os << "\n";
  }
  return os.str();
}

std::vector<SweepResult> run_experiment(
    const std::string& preset, const std::vector<std::string>& overrides) {
  return run_experiment(preset, overrides, RunOptions{});
}

std::vector<SweepResult> run_experiment(
    const std::string& preset, const std::vector<std::string>& overrides,
    const RunOptions& run) {
  ExperimentRegistry& registry = ExperimentRegistry::instance();
  ExperimentSpec spec = registry.preset(preset);
  for (const auto& token : overrides) spec.apply_override(token);
  if (run.shard_count == 0 || run.shard_index >= run.shard_count) {
    throw std::invalid_argument(
        "shard " + std::to_string(run.shard_index) + "/" +
        std::to_string(run.shard_count) + ": shard index must be < shard count");
  }

  // Dry run: print the canonical cell enumeration (the exact ordering
  // --shard partitions) without touching the engine, training, or the
  // filesystem. Deliberately engine- and env-independent so the listing is
  // golden-testable.
  if (run.dry_run) {
    spec.validate();
    std::fputs(dry_run_listing(spec, run.shard_index, run.shard_count).c_str(),
               stdout);
    return {};
  }

  // Resolve the compute engine before any panel work (training included):
  // the explicit engine= knob, else whatever $RHW_ENGINE / "blocked" lazily
  // resolves to. The scope pins it for the whole run and restores the prior
  // selection afterwards; spec.engine becomes the active engine's canonical
  // spec so the artifact's canonical args record the actual kernel used.
  if (spec.engine.empty()) spec.engine = core::active_engine().spec();
  core::EngineScope engine_scope(spec.engine);
  spec.engine = core::active_engine().spec();
  spec.validate();
  if (spec.serve && (run.shard_count > 1 || run.resume)) {
    throw std::invalid_argument("experiment '" + spec.name +
                                "': serve=1 runs have no cell grid to shard "
                                "or resume");
  }

  ExperimentStamp stamp;
  stamp.preset = preset;
  stamp.overrides = overrides;
  stamp.canonical = spec.to_args();
  stamp.shard_index = run.shard_index;
  stamp.shard_count = run.shard_count;

  std::printf("\n=== %s ===\n%s\n[engine] %s\n",
              spec.title.empty() ? spec.name.c_str() : spec.title.c_str(),
              spec.subtitle.c_str(), spec.engine.c_str());
  if (run.shard_count > 1) {
    std::printf("[shard] %zu/%zu%s\n", run.shard_index, run.shard_count,
                run.resume ? " (resume)" : "");
  } else if (run.resume) {
    std::printf("[resume] replaying completed cells from the journal\n");
  }
  std::printf("\n");
  std::fflush(stdout);

  const std::unique_ptr<ExperimentProgram> program = registry.program(preset);
  RunContext rc;
  rc.spec = &spec;
  rc.overrides = overrides;

  std::vector<SweepResult> results;
  for (size_t p = 0; p < spec.panels.size(); ++p) {
    PanelContext pc = make_panel(spec, p);
    if (spec.panels.size() > 1) {
      std::printf("--- panel %zu/%zu: %s on %s ---\n", p + 1,
                  spec.panels.size(), pc.arch.arch.c_str(),
                  pc.dataset.tag.c_str());
    }
    std::printf("[dataset] %s\n", pc.dataset.canonical.c_str());
    // Panel-resolved stamp: the canonical dataset spec rides in the
    // artifact's experiment block (dropped by the payload view, so results
    // stay byte-comparable across runs).
    ExperimentStamp panel_stamp = stamp;
    panel_stamp.dataset = pc.dataset.canonical;
    program->setup(pc);

    // Serving mode: the spec drives serve::Server + serve::LoadGen instead
    // of the sweep engine — a latency-vs-offered-load curve per arm, written
    // as an rhw-serve-v1 artifact. The returned SweepResult carries only the
    // stamp (there are no sweep cells to aggregate).
    if (spec.serve) {
      serve::run_serve_panel(spec, pc, panel_stamp, artifact_path(spec, pc));
      SweepResult result;
      result.experiment = panel_stamp;
      results.push_back(std::move(result));
      continue;
    }

    build_grid(spec, pc);

    const std::string out_path = shard_artifact_path(artifact_path(spec, pc), run);
    SweepEngine::Options opt;
    opt.threads = sweep_threads_env(0);
    opt.shard_index = run.shard_index;
    opt.shard_count = run.shard_count;
    opt.resume = run.resume;
    opt.max_cells = run.max_cells != 0 ? run.max_cells : env_cell_budget();
    opt.journal_path = out_path + ".partial/journal.jsonl";
    opt.journal_header = journal_header(spec, run, pc.tag);
    SweepEngine engine(opt);
    SweepResult result = engine.run(pc.grid);
    result.experiment = panel_stamp;
    std::printf("[sweep] %zu cells (%d trial(s)) on %u lane(s) in %.2fs",
                result.cells.size(), result.trials, result.lanes,
                result.wall_seconds);
    if (result.resumed > 0) {
      std::printf(", %zu task(s) restored from the journal", result.resumed);
    }
    std::printf("\n");
    // Verify BEFORE publishing: a run that fails the cross-lane determinism
    // check must not leave an artifact behind for later steps to pick up.
    if (spec.verify || env_flag("RHW_SWEEP_VERIFY")) {
      verify_serial_parity(pc.grid, result, run);
    }
    result.write_json(out_path, pc.tag);
    // The artifact is on disk: the checkpoint has served its purpose.
    std::error_code ec;
    std::filesystem::remove_all(out_path + ".partial", ec);
    pc.engine = &engine;
    pc.result = &result;
    if (run.shard_count > 1) {
      // A shard's grid is partial — preset report/finish hooks assume the
      // full grid (tables, shape checks), so they run on the merged artifact
      // instead (rhw_merge).
      std::printf("[shard %zu/%zu] wrote %s (%zu of %zu cells); run "
                  "rhw_merge before reporting\n",
                  run.shard_index, run.shard_count, out_path.c_str(),
                  result.cells.size(), result.cells_total);
    } else {
      program->report(pc);
    }
    results.push_back(std::move(result));
  }
  if (run.shard_count <= 1) program->finish(rc);
  return results;
}

int rhw_run_main(const std::vector<std::string>& args) {
  ExperimentRegistry& registry = ExperimentRegistry::instance();
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    std::printf(
        "usage: rhw_run [--shard=i/n] [--resume] [--dry-run] <preset> "
        "[key=value|axis+=item ...]\n"
        "       rhw_run --list\n\n"
        "Runs a registered experiment preset through the sweep engine with\n"
        "declarative overrides (docs/EXPERIMENTS.md has the grammar and a\n"
        "cookbook). --shard=i/n runs the i-th of n deterministic partitions\n"
        "(merge the shard artifacts with rhw_merge); --resume continues an\n"
        "interrupted run from its <out>.partial/ journal; --dry-run prints\n"
        "the expanded cell listing instead of running. Presets:\n");
    for (const auto& key : registry.keys()) {
      std::printf("  %s\n", key.c_str());
    }
    return args.empty() ? 1 : 0;
  }
  if (args[0] == "--list") {
    // The CI smoke: every registered preset must still resolve AND validate
    // against the live hw/attack/defense registries.
    bool ok = true;
    for (const auto& key : registry.keys()) {
      try {
        const ExperimentSpec spec = registry.preset(key);
        spec.validate();
        std::printf("%-24s %zu panel(s), %zu arm(s), %zu mode(s), %zu "
                    "attack(s), trials=%d\n",
                    key.c_str(), spec.panels.size(), spec.backends.size(),
                    spec.modes.size(), spec.attacks.size(), spec.trials);
      } catch (const std::exception& e) {
        ok = false;
        std::fprintf(stderr, "%-24s INVALID: %s\n", key.c_str(), e.what());
      }
    }
    return ok ? 0 : 1;
  }
  try {
    RunOptions run;
    std::string preset;
    std::vector<std::string> overrides;
    for (const auto& token : args) {
      if (token.rfind("--", 0) == 0) {
        if (!parse_run_flag(token, run)) {
          std::fprintf(stderr, "rhw_run: unknown flag '%s' (try --help)\n",
                       token.c_str());
          return 1;
        }
      } else if (preset.empty()) {
        preset = token;
      } else {
        overrides.push_back(token);
      }
    }
    if (preset.empty()) {
      std::fprintf(stderr, "rhw_run: no preset named (try --list)\n");
      return 1;
    }
    (void)run_experiment(preset, overrides, run);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rhw_run: %s\n", e.what());
    return 1;
  }
}

}  // namespace rhw::exp
