// Aligned console tables + CSV output for the benchmark harnesses.
#pragma once

#include <string>
#include <vector>

namespace rhw::exp {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print() const;                      // aligned, to stdout
  void write_csv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision float formatting ("12.34").
std::string fmt(double v, int precision = 2);

// Directory for benchmark CSV artifacts; created on demand.
// Default: $RHW_BENCH_OUT or "bench_out".
std::string bench_out_dir();

// Evaluation-subset size shared by benches: $RHW_EVAL_COUNT, or
// `default_count` (use a smaller default when RHW_FAST=1).
int64_t eval_count(int64_t default_count = 256);

}  // namespace rhw::exp
