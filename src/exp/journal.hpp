// Crash-safe cell-completion journal behind the sweep engine's
// checkpoint/resume (SweepOptions::journal_path).
//
// The journal is a JSONL file inside the artifact's `<out>.partial/`
// directory. Line 1 identifies the run — schema tag plus a header string
// (canonical spec + shard + panel) that a resume must match exactly, so a
// journal can never replay into a different experiment. Every completed task
// appends one line, flushed immediately:
//
//   {"schema":"rhw-journal-v1","header":"<canonical spec ...>"}
//   {"type":"clean","pool":"x32","trial":0,"clean":46.875,"cert":0}
//   {"type":"cell","index":12,"adv":31.25}
//
// Doubles are %.17g (bit-exact round-trip): a run resumed from the journal
// produces an artifact byte-identical to an uninterrupted one. A torn final
// line (the process died mid-append) fails to parse and is ignored — the one
// task it recorded simply re-runs.
#pragma once

#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace rhw::exp {

// One journaled task: a shared clean/cert pass (per eval backend and trial)
// or one adversarial cell, keyed by its canonical enumeration index.
struct JournalEntry {
  bool clean = false;
  std::string pool;       // clean: eval backend key
  int trial = 0;          // clean: trial
  size_t index = 0;       // cell: canonical cell index
  double clean_acc = 0.0;
  double cert = 0.0;
  double adv = 0.0;
};

// Parses an existing journal. Missing file -> empty. A header line whose
// header string differs from `header` throws std::runtime_error quoting
// both (the resume-into-the-wrong-run guard). Parsing stops silently at the
// first malformed line (torn tail).
std::vector<JournalEntry> load_journal(const std::string& path,
                                       const std::string& header);

// Append-side handle. Creates parent directories; append=false starts a
// fresh journal (truncates, writes the header line), append=true continues
// an existing one. record() is safe to call from concurrent sweep lanes and
// flushes after every line.
class SweepJournal {
 public:
  SweepJournal(const std::string& path, const std::string& header,
               bool append);

  void record(const JournalEntry& entry);

 private:
  std::mutex mu_;
  std::ofstream os_;
};

}  // namespace rhw::exp
