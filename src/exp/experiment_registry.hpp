// ExperimentRegistry + the rhw_run driver: every figure, table and example
// of the reproduction as a named, overridable ExperimentSpec preset.
//
//   rhw_run fig8bc trials=5 backends+=xbar:rmin=1e5+smooth:sigma=0.25
//   rhw_run --list
//
// resolves a preset, applies "key=value" / "axis+=item" overrides with the
// registries' token-naming error contract, expands the spec into an
// exp::SweepGrid per panel, executes it on exp::SweepEngine, and emits the
// same table / ASCII-plot / BENCH_*.json artifacts the per-figure bench
// binaries used to produce — which are now thin wrappers over
// rhw_run_main(). The rhw-sweep-v4 artifact embeds the experiment spec, so
// every result file records the exact command that reproduces it.
//
// Presets keep their bench-specific presentation (paper-style tables, shape
// checks, the Fig. 4 methodology setup) in an ExperimentProgram — hooks
// around the declarative pipeline, never grid assembly: the grid always
// comes from the ExperimentSpec.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/synth_cifar.hpp"
#include "exp/experiment.hpp"
#include "exp/sweep.hpp"
#include "models/zoo.hpp"

namespace rhw::exp {

// Everything one panel's run exposes to preset hooks.
struct PanelContext {
  const ExperimentSpec* spec = nullptr;
  size_t index = 0;        // panel index in spec->panels
  ArchSection arch;        // parsed sections
  DatasetSection dataset;
  std::string tag;         // artifact tag (spec tag + panel suffix)
  data::SynthCifar data;   // train + test
  models::Model model;     // trained per the spec's train section
  data::Dataset eval_set;  // evaluation subset
  SweepGrid grid;          // the expanded grid (filled before run)
  SweepEngine* engine = nullptr;      // valid in report()
  const SweepResult* result = nullptr;  // valid in report()
};

struct RunContext {
  const ExperimentSpec* spec = nullptr;
  std::vector<std::string> overrides;  // user-supplied tokens
};

// Per-preset presentation/setup hooks. One instance lives for the whole run,
// so cross-panel state (fig5's combined table) sits in members. The default
// report() prints a generic mode x attack x eps table plus an AL(eps) ASCII
// plot per attack — enough for most presets; programs override to add the
// paper-specific tables, map reports, and shape-check text.
class ExperimentProgram {
 public:
  virtual ~ExperimentProgram() = default;

  // Before the panel's grid is built: register runtime backend keys (the
  // Fig. 4 methodology's "sram_selected"), print preamble.
  virtual void setup(PanelContext&) {}

  // After the panel's sweep. Default: generic table + plots.
  virtual void report(PanelContext& panel);

  // After every panel ran (combined tables, shape checks).
  virtual void finish(RunContext&) {}
};

using ExperimentFactory = std::function<ExperimentSpec()>;
using ProgramFactory = std::function<std::unique_ptr<ExperimentProgram>()>;

class ExperimentRegistry {
 public:
  // Process-wide registry, built-ins registered on first use.
  static ExperimentRegistry& instance();

  // Registers (or replaces) a preset. `program` may be null — the default
  // ExperimentProgram then renders the run.
  void add(const std::string& key, ExperimentFactory factory,
           ProgramFactory program = nullptr);
  bool contains(const std::string& key) const;
  std::vector<std::string> keys() const;

  // Resolves a preset to its spec. Throws std::invalid_argument on an
  // unknown key, naming it and listing the registered presets — the same
  // error contract as the other three registries.
  ExperimentSpec preset(const std::string& key) const;
  std::unique_ptr<ExperimentProgram> program(const std::string& key) const;

 private:
  ExperimentRegistry();

  struct Entry {
    ExperimentFactory factory;
    ProgramFactory program;
  };
  std::map<std::string, Entry> factories_;
};

// Defined in experiment_presets.cpp; called once from the registry ctor.
void register_builtin_experiments(ExperimentRegistry& registry);

// Driver-level run flags — rhw_run's `--shard=i/n`, `--resume` and
// `--dry-run`. These are execution knobs, not experiment identity: they
// never enter the spec's canonical args (the same experiment sharded three
// ways is still the same experiment), and the artifact records them in the
// stamp's shard block instead.
struct RunOptions {
  // Deterministic partition over the canonical cell enumeration: run only
  // cells with index % shard_count == shard_index. The artifact lands at
  // <out-stem>_shard<i>of<n>.json, ready for rhw_merge.
  size_t shard_index = 0;
  size_t shard_count = 1;
  // Resume from the <out>.partial/journal.jsonl checkpoint of an
  // interrupted run with the same canonical spec, shard and panel.
  bool resume = false;
  // Print the expanded cell listing (the exact enumeration sharding
  // partitions) instead of running anything.
  bool dry_run = false;
  // Test-only crash injection: complete at most N sweep tasks, then throw
  // SweepInterrupted. 0 defers to $RHW_SWEEP_CELL_BUDGET (same semantics).
  size_t max_cells = 0;
};

// Parses one "--..." CLI token into `opts`. Returns false when the token is
// not a recognized run flag; throws std::invalid_argument naming the token
// on a malformed value ("--shard=3/2"). Shared with docs_check so cookbook
// commands carrying flags stay validated.
bool parse_run_flag(const std::string& token, RunOptions& opts);

// The --dry-run listing: one "cell <index> ..." line per expanded grid cell
// in canonical enumeration order, with the owning shard annotated when
// shard_count > 1 — byte-stable for a given spec (golden-tested). Throws on
// serve specs (no cell grid) and out-of-range shards.
std::string dry_run_listing(const ExperimentSpec& spec, size_t shard_index = 0,
                            size_t shard_count = 1);

// Resolves `preset`, applies `overrides` in order, validates, runs every
// panel through SweepEngine, writes the v4 artifacts and renders the
// program. Lane count comes from $RHW_SWEEP_THREADS (default: one per
// hardware thread); $RHW_SWEEP_VERIFY=1 (or spec.verify) re-runs each grid
// serially and fails on any cell mismatch. Throws on invalid input; returns
// the per-panel results.
//
// With RunOptions: sharded runs write per-shard artifacts and skip the
// preset's report/finish hooks (the grid is partial — rhw_merge first);
// every sweep run journals into <out>.partial/ and deletes it only after
// its artifact is written, so a killed run resumes with --resume.
std::vector<SweepResult> run_experiment(
    const std::string& preset, const std::vector<std::string>& overrides = {});
std::vector<SweepResult> run_experiment(const std::string& preset,
                                        const std::vector<std::string>& overrides,
                                        const RunOptions& run);

// The CLI: rhw_run [--list|--help] [--shard=i/n] [--resume] [--dry-run]
// <preset> [overrides...]. Returns a process exit code; catches exceptions
// and reports them on stderr.
int rhw_run_main(const std::vector<std::string>& args);

}  // namespace rhw::exp
