// Adversarial-Loss curve runner: evaluates one (grad_net, eval_net) pairing
// over a sweep of perturbation strengths and reports the paper's AL(epsilon)
// series. This is the thin serial single-row wrapper around the sweep
// machinery — the figure benches schedule whole grids of these rows
// concurrently through exp::SweepEngine (exp/sweep.hpp), which shares the
// same per-cell seed derivation and therefore reproduces al_curve
// bit-for-bit.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "attacks/evaluate.hpp"
#include "data/dataset.hpp"

namespace rhw::exp {

struct AlPoint {
  float epsilon = 0.f;
  double clean_acc = 0.0;  // percent
  double adv_acc = 0.0;    // percent
  double al = 0.0;         // clean - adv, percent
};

struct AlCurve {
  std::string label;            // e.g. "Attack-SW", "SH", "HH"
  std::vector<AlPoint> points;  // one per epsilon
};

// `attack_spec` is an AttackRegistry spec string ("fgsm", "pgd:steps=7",
// ...); the per-point epsilon overrides any eps=... embedded in it.
AlCurve al_curve(const std::string& label, nn::Module& grad_net,
                 nn::Module& eval_net, const data::Dataset& ds,
                 const std::string& attack_spec,
                 std::span<const float> epsilons,
                 const attacks::AdvEvalConfig& base_cfg = {});

// Hardware-backend seam: the (grad backend, eval backend) pairing selects the
// attack mode (Attack-SW / SH / HH), see attacks/evaluate.hpp.
AlCurve al_curve(const std::string& label, hw::HardwareBackend& grad_hw,
                 hw::HardwareBackend& eval_hw, const data::Dataset& ds,
                 const std::string& attack_spec,
                 std::span<const float> epsilons,
                 const attacks::AdvEvalConfig& base_cfg = {});

// Defended single row: wraps eval_hw with the DefenseRegistry spec before
// evaluating (and routes gradients through the wrapper too when grad_hw and
// eval_hw are the same backend — the white-box-on-the-defense pairing).
// Inference-time defenses only; a training-time spec (adv_train) throws —
// those change the model and belong in a SweepGrid arm. A one-row defended
// SweepGrid reproduces this bit-for-bit, like the undefended overloads.
AlCurve al_curve_defended(const std::string& label,
                          hw::HardwareBackend& grad_hw,
                          hw::HardwareBackend& eval_hw,
                          const data::Dataset& ds,
                          const std::string& defense_spec,
                          const std::string& attack_spec,
                          std::span<const float> epsilons,
                          const attacks::AdvEvalConfig& base_cfg = {});

// The paper's epsilon grids.
std::vector<float> fgsm_epsilons();  // 0, 0.05 .. 0.3  (Figs. 5-8b)
std::vector<float> pgd_epsilons();   // 0, {2,4,8,16,32}/255 (Figs. 6-8c)

}  // namespace rhw::exp
