#include "exp/sweep_stats.hpp"

#include <cmath>
#include <cstdio>

#include "core/stats.hpp"
#include "exp/table_printer.hpp"

namespace rhw::exp {

namespace {

// Two-sided 95% Student-t critical values for df = 1..30; the normal-approx
// z = 1.96 only beyond. Sweeps typically run 2-5 trials, where the normal
// approximation would understate the interval by 2-6x.
double t95(int64_t df) {
  static constexpr double kT95[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df < 1) return 0.0;
  if (df <= 30) return kT95[df - 1];
  return 1.96;
}

}  // namespace

SweepStat summarize(std::span<const double> xs) {
  RunningStats acc;
  for (double x : xs) acc.push(x);
  SweepStat out;
  out.n = acc.count;
  out.mean = acc.mean;
  out.stddev = acc.stddev();
  if (acc.count > 1) {
    out.ci95 =
        t95(acc.count - 1) * out.stddev / std::sqrt(static_cast<double>(acc.count));
  }
  return out;
}

std::string SweepStat::format(int precision) const {
  if (n > 1 && ci95 > 0.0) {
    return fmt(mean, precision) + "±" + fmt(ci95, precision);
  }
  return fmt(mean, precision);
}

void JsonWriter::comma() {
  if (!has_elems_.empty() && has_elems_.back() && !after_key_) os_ << ',';
  if (!has_elems_.empty() && !after_key_) has_elems_.back() = true;
  after_key_ = false;
}

void JsonWriter::open(char c) {
  comma();
  os_ << c;
  has_elems_.push_back(false);
}

void JsonWriter::close(char c) {
  has_elems_.pop_back();
  os_ << c;
  if (!has_elems_.empty()) has_elems_.back() = true;
}

void JsonWriter::begin_object() { open('{'); }
void JsonWriter::end_object() { close('}'); }
void JsonWriter::begin_array() { open('['); }
void JsonWriter::end_array() { close(']'); }

void JsonWriter::key(const std::string& k) {
  comma();
  os_ << '"' << json_escape(k) << "\":";
  after_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma();
  os_ << '"' << json_escape(v) << '"';
}

void JsonWriter::null_value() {
  comma();
  os_ << "null";
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    os_ << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
}

void JsonWriter::value(int64_t v) {
  comma();
  os_ << v;
}

void JsonWriter::value(uint64_t v) {
  comma();
  os_ << v;
}

void JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace rhw::exp
