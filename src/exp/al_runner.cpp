#include "exp/al_runner.hpp"

namespace rhw::exp {

AlCurve al_curve(const std::string& label, nn::Module& grad_net,
                 nn::Module& eval_net, const data::Dataset& ds,
                 attacks::AttackKind kind, std::span<const float> epsilons,
                 const attacks::AdvEvalConfig& base_cfg) {
  AlCurve curve;
  curve.label = label;
  // Clean accuracy does not depend on epsilon; compute once.
  const double clean = attacks::clean_accuracy(eval_net, ds,
                                               base_cfg.batch_size);
  for (float eps : epsilons) {
    AlPoint pt;
    pt.epsilon = eps;
    pt.clean_acc = clean;
    if (eps == 0.f) {
      pt.adv_acc = clean;
    } else {
      attacks::AdvEvalConfig cfg = base_cfg;
      cfg.kind = kind;
      cfg.epsilon = eps;
      pt.adv_acc = attacks::adversarial_accuracy(grad_net, eval_net, ds, cfg);
    }
    pt.al = pt.clean_acc - pt.adv_acc;
    curve.points.push_back(pt);
  }
  return curve;
}

AlCurve al_curve(const std::string& label, hw::HardwareBackend& grad_hw,
                 hw::HardwareBackend& eval_hw, const data::Dataset& ds,
                 attacks::AttackKind kind, std::span<const float> epsilons,
                 const attacks::AdvEvalConfig& base_cfg) {
  return al_curve(label, grad_hw.module(), eval_hw.module(), ds, kind,
                  epsilons, base_cfg);
}

std::vector<float> fgsm_epsilons() {
  return {0.f, 0.05f, 0.1f, 0.15f, 0.2f, 0.25f, 0.3f};
}

std::vector<float> pgd_epsilons() {
  return {0.f, 2.f / 255.f, 4.f / 255.f, 8.f / 255.f, 16.f / 255.f,
          32.f / 255.f};
}

}  // namespace rhw::exp
