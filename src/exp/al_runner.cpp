#include "exp/al_runner.hpp"

#include <stdexcept>

#include "defenses/registry.hpp"
#include "exp/sweep.hpp"

namespace rhw::exp {

// al_curve is the serial single-row special case of the sweep engine: its
// per-point evaluation seeds are sweep_cell_seed(base, mode=0, attack=0,
// eps_index, trial=0) and its clean pass uses sweep_clean_seed(base, 0), so a
// one-row SweepGrid reproduces it bit-for-bit at any lane count (asserted in
// tests/exp/test_sweep.cpp).
AlCurve al_curve(const std::string& label, nn::Module& grad_net,
                 nn::Module& eval_net, const data::Dataset& ds,
                 const std::string& attack_spec,
                 std::span<const float> epsilons,
                 const attacks::AdvEvalConfig& base_cfg) {
  AlCurve curve;
  curve.label = label;
  // Clean accuracy does not depend on epsilon; compute once.
  const double clean =
      attacks::clean_accuracy(eval_net, ds, base_cfg.batch_size,
                              sweep_clean_seed(base_cfg.seed, 0));
  for (size_t i = 0; i < epsilons.size(); ++i) {
    const float eps = epsilons[i];
    AlPoint pt;
    pt.epsilon = eps;
    pt.clean_acc = clean;
    if (eps == 0.f) {
      pt.adv_acc = clean;
    } else {
      attacks::AdvEvalConfig cfg = base_cfg;
      cfg.attack = attack_spec;
      cfg.epsilon = eps;
      cfg.seed = sweep_cell_seed(base_cfg.seed, 0, 0, i, 0);
      pt.adv_acc = attacks::adversarial_accuracy(grad_net, eval_net, ds, cfg);
    }
    pt.al = pt.clean_acc - pt.adv_acc;
    curve.points.push_back(pt);
  }
  return curve;
}

AlCurve al_curve(const std::string& label, hw::HardwareBackend& grad_hw,
                 hw::HardwareBackend& eval_hw, const data::Dataset& ds,
                 const std::string& attack_spec,
                 std::span<const float> epsilons,
                 const attacks::AdvEvalConfig& base_cfg) {
  return al_curve(label, grad_hw.module(), eval_hw.module(), ds, attack_spec,
                  epsilons, base_cfg);
}

AlCurve al_curve_defended(const std::string& label,
                          hw::HardwareBackend& grad_hw,
                          hw::HardwareBackend& eval_hw,
                          const data::Dataset& ds,
                          const std::string& defense_spec,
                          const std::string& attack_spec,
                          std::span<const float> epsilons,
                          const attacks::AdvEvalConfig& base_cfg) {
  const defenses::DefensePtr defense = defenses::make_defense(defense_spec);
  if (defense->training_time()) {
    throw std::invalid_argument(
        "al_curve_defended: defense '" + defense_spec +
        "' is training-time — it changes the model, declare it as a "
        "SweepGrid arm instead");
  }
  const hw::BackendPtr wrapped = defense->wrap(eval_hw);
  if (!wrapped) {  // pass-through defense ("none"): plain curve
    return al_curve(label, grad_hw, eval_hw, ds, attack_spec, epsilons,
                    base_cfg);
  }
  nn::Module& eval_net = wrapped->module();
  nn::Module& grad_net =
      &grad_hw == &eval_hw ? eval_net : grad_hw.module();
  return al_curve(label, grad_net, eval_net, ds, attack_spec, epsilons,
                  base_cfg);
}

std::vector<float> fgsm_epsilons() {
  return {0.f, 0.05f, 0.1f, 0.15f, 0.2f, 0.25f, 0.3f};
}

std::vector<float> pgd_epsilons() {
  return {0.f, 2.f / 255.f, 4.f / 255.f, 8.f / 255.f, 16.f / 255.f,
          32.f / 255.f};
}

}  // namespace rhw::exp
