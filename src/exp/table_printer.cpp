#include "exp/table_printer.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace rhw::exp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(width[c]),
                  c < row.size() ? row[c].c_str() : "");
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s|", std::string(width[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TablePrinter::write_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string bench_out_dir() {
  std::string dir = "bench_out";
  if (const char* env = std::getenv("RHW_BENCH_OUT"); env && *env) dir = env;
  std::filesystem::create_directories(dir);
  return dir;
}

int64_t eval_count(int64_t default_count) {
  if (const char* env = std::getenv("RHW_EVAL_COUNT"); env && *env) {
    return std::max<int64_t>(1, std::atoll(env));
  }
  if (const char* fast = std::getenv("RHW_FAST"); fast && fast[0] == '1') {
    return std::max<int64_t>(1, default_count / 4);
  }
  return default_count;
}

}  // namespace rhw::exp
