#include "exp/experiment.hpp"

#include <cctype>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

#include "attacks/registry.hpp"
#include "core/engine_registry.hpp"
#include "data/registry.hpp"
#include "defenses/registry.hpp"
#include "exp/al_runner.hpp"
#include "hw/registry.hpp"

namespace rhw::exp {

namespace {

constexpr const char* kCalibSuffix = "@calib";

[[noreturn]] void bad_item(const std::string& axis, const std::string& item,
                           const std::string& why) {
  throw std::invalid_argument("experiment " + axis + " item '" + item +
                              "': " + why);
}

// Single-scalar typed extraction with the registries' error shape
// ("experiment option trials: bad number '...'").
core::OptionReader scalar_reader(const std::string& key,
                                 const std::string& value) {
  core::SpecOptions opts;
  opts[key] = value;
  return core::OptionReader("experiment", key, std::move(opts));
}

std::string spec_key(const std::string& spec) {
  return spec.substr(0, spec.find(':'));
}

std::vector<float> parse_epsilons(const std::string& axis,
                                  const std::string& item,
                                  const std::string& text) {
  if (text == "fgsm-grid") return fgsm_epsilons();
  if (text == "pgd-grid") return pgd_epsilons();
  std::vector<float> out;
  std::istringstream is(text);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (tok.empty()) continue;
    try {
      size_t used = 0;
      const float v = std::stof(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
      out.push_back(v);
    } catch (const std::exception&) {
      bad_item(axis, item,
               "bad epsilon '" + tok +
                   "' (expected a number, 'fgsm-grid' or 'pgd-grid')");
    }
  }
  if (out.empty()) bad_item(axis, item, "empty epsilon list after '@'");
  return out;
}

// The serve qps axis: a comma-separated list of positive offered rates
// ("qps=100,400,1600"), round-tripped through float_token like epsilons.
std::vector<float> parse_qps_list(const std::string& value) {
  std::vector<float> out;
  std::istringstream is(value);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (tok.empty()) continue;
    float v = 0.f;
    try {
      size_t used = 0;
      v = std::stof(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
    } catch (const std::exception&) {
      throw std::invalid_argument("experiment option qps: bad rate '" + tok +
                                  "' (expected a positive number)");
    }
    if (!(v > 0.f)) {
      throw std::invalid_argument("experiment option qps: rate '" + tok +
                                  "' must be > 0");
    }
    out.push_back(v);
  }
  if (out.empty()) {
    throw std::invalid_argument(
        "experiment option qps: expected a comma-separated list of positive "
        "rates (got '" + value + "')");
  }
  return out;
}

}  // namespace

std::string float_token(float v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(v));
  return buf;
}

// -- list items ---------------------------------------------------------------

ExperimentBackend parse_backend_item(const std::string& item) {
  if (item.empty()) bad_item("backends", item, "empty item");
  ExperimentBackend arm;
  std::string rest = item;
  // "@calib" suffix: hand the arm the experiment's calibration set.
  if (const size_t at = rest.find('@'); at != std::string::npos) {
    if (rest.substr(at) != kCalibSuffix) {
      bad_item("backends", item,
               "unknown suffix '" + rest.substr(at) + "' (only '@calib')");
    }
    arm.calibrate = true;
    rest = rest.substr(0, at);
  }
  // Explicit arm key: an '=' before the first ':' and '+' belongs to
  // "key=hw..."; any later '=' is a spec option.
  const size_t eq = rest.find('=');
  const size_t colon = rest.find(':');
  const size_t plus = rest.find('+');
  if (eq != std::string::npos && (colon == std::string::npos || eq < colon) &&
      (plus == std::string::npos || eq < plus)) {
    arm.key = rest.substr(0, eq);
    rest = rest.substr(eq + 1);
    if (arm.key.empty()) bad_item("backends", item, "empty arm key before '='");
  }
  // Split hw-spec from defense-spec at the first '+' that starts a key
  // (lowercase letter / underscore) — numeric '+' as in "rmin=1e+5" stays
  // part of the hw spec.
  size_t split = std::string::npos;
  for (size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] != '+') continue;
    if (i + 1 < rest.size() &&
        (std::islower(static_cast<unsigned char>(rest[i + 1])) ||
         rest[i + 1] == '_')) {
      split = i;
      break;
    }
  }
  if (split == std::string::npos) {
    arm.hw = rest;
  } else {
    arm.hw = rest.substr(0, split);
    arm.defense = rest.substr(split + 1);
    if (arm.defense.empty()) bad_item("backends", item, "empty defense spec after '+'");
  }
  if (arm.hw.empty()) bad_item("backends", item, "empty hardware spec");
  if (arm.key.empty()) {
    arm.key = spec_key(arm.hw);
    if (!arm.defense.empty()) arm.key += "+" + spec_key(arm.defense);
  }
  return arm;
}

std::string ExperimentBackend::to_item() const {
  std::string out = key + "=" + hw;
  if (!defense.empty()) out += "+" + defense;
  if (calibrate) out += kCalibSuffix;
  return out;
}

ExperimentMode parse_mode_item(const std::string& item) {
  const size_t eq = item.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
    bad_item("modes", item, "expected label=grad/eval or label=key");
  }
  ExperimentMode mode;
  mode.label = item.substr(0, eq);
  const std::string rest = item.substr(eq + 1);
  const size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    mode.grad = mode.eval = rest;  // white-box on one arm
  } else {
    mode.grad = rest.substr(0, slash);
    mode.eval = rest.substr(slash + 1);
  }
  if (mode.grad.empty() || mode.eval.empty()) {
    bad_item("modes", item, "empty backend key in pairing '" + rest + "'");
  }
  return mode;
}

std::string ExperimentMode::to_item() const {
  return label + "=" + grad + "/" + eval;
}

ExperimentAttack parse_attack_item(const std::string& item) {
  const size_t at = item.find('@');
  if (at == std::string::npos || at == 0) {
    bad_item("attacks", item,
             "expected attack-spec@eps,... (e.g. \"pgd:steps=7@0.1\")");
  }
  ExperimentAttack attack;
  attack.spec = item.substr(0, at);
  attack.epsilons = parse_epsilons("attacks", item, item.substr(at + 1));
  return attack;
}

std::string ExperimentAttack::to_item() const {
  std::string out = spec + "@";
  for (size_t i = 0; i < epsilons.size(); ++i) {
    if (i) out += ",";
    out += float_token(epsilons[i]);
  }
  return out;
}

ExperimentPanel parse_panel_item(const std::string& item) {
  const size_t slash = item.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= item.size()) {
    bad_item("panels", item,
             "expected arch-spec/dataset-spec (e.g. \"vgg19/synth-c10\")");
  }
  return {item.substr(0, slash), item.substr(slash + 1)};
}

std::string ExperimentPanel::to_item() const { return arch + "/" + dataset; }

// -- sections -----------------------------------------------------------------

ArchSection parse_arch_section(const std::string& spec) {
  const core::ParsedSpec parsed = core::parse_spec("model", spec);
  ArchSection out;
  out.arch = parsed.key;
  if (out.arch != "vgg8" && out.arch != "vgg16" && out.arch != "vgg19" &&
      out.arch != "resnet18") {
    throw std::invalid_argument(
        "model spec '" + spec + "': unknown architecture '" + out.arch +
        "' (known: vgg8 vgg16 vgg19 resnet18)");
  }
  core::OptionReader reader("model", out.arch, parsed.options);
  out.width_mult = static_cast<float>(reader.number("width", out.width_mult));
  out.in_size = static_cast<int64_t>(reader.integer(
      "in", static_cast<uint64_t>(out.in_size)));
  reader.finish();
  if (!(out.width_mult > 0.f)) {
    throw std::invalid_argument("model spec '" + spec +
                                "': option width must be > 0");
  }
  if (out.in_size < 8) {
    throw std::invalid_argument("model spec '" + spec +
                                "': option in must be >= 8");
  }
  return out;
}

DatasetSection parse_dataset_section(const std::string& spec) {
  DatasetSection out;
  // Resolve through the sixth seam: construction is cheap and
  // filesystem-free, so a typo'd key or knob fails here with the dataset
  // registry's token-naming error contract.
  const data::DatasetPtr provider = data::make_dataset_provider(spec);
  const auto [base_spec, wrapper] = data::split_corrupt_spec(spec);
  out.key = core::parse_spec("dataset", base_spec).key;
  out.tag = provider->tag();
  out.zoo_tag = wrapper.empty()
                    ? out.tag
                    : data::make_dataset_provider(base_spec)->tag();
  out.canonical = data::canonical_dataset_spec(spec);
  return out;
}

TrainSection parse_train_section(const std::string& spec) {
  const core::ParsedSpec parsed = core::parse_spec("train", spec);
  TrainSection out;
  out.key = parsed.key;
  core::OptionReader reader("train", out.key, parsed.options);
  if (out.key == "zoo" || out.key == "none") {
    reader.finish();
    return out;
  }
  if (out.key != "quick") {
    throw std::invalid_argument("train spec '" + spec + "': unknown mode '" +
                                out.key + "' (known: zoo quick none)");
  }
  out.epochs = static_cast<int>(
      reader.integer("epochs", static_cast<uint64_t>(out.epochs)));
  out.batch = static_cast<int64_t>(
      reader.integer("batch", static_cast<uint64_t>(out.batch)));
  reader.finish();
  if (out.epochs < 1 || out.batch < 1) {
    throw std::invalid_argument("train spec '" + spec +
                                "': epochs and batch must be >= 1");
  }
  return out;
}

// -- overrides ----------------------------------------------------------------

void ExperimentSpec::apply_override(const std::string& token) {
  const size_t plus_eq = token.find("+=");
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument(
        "experiment override '" + token +
        "': expected key=value or axis+=item (see docs/EXPERIMENTS.md)");
  }
  const bool append = plus_eq != std::string::npos && plus_eq + 1 == eq;
  const std::string key =
      append ? token.substr(0, plus_eq) : token.substr(0, eq);
  const std::string value = token.substr(eq + 1);

  auto apply_list = [&](auto& list, auto parse) {
    if (append) {
      list.push_back(parse(value));
      return;
    }
    list.clear();
    if (!value.empty()) list.push_back(parse(value));
  };

  if (key == "panels") {
    apply_list(panels, parse_panel_item);
  } else if (key == "backends") {
    apply_list(backends, parse_backend_item);
  } else if (key == "modes") {
    apply_list(modes, parse_mode_item);
  } else if (key == "attacks") {
    apply_list(attacks, parse_attack_item);
  } else if (append) {
    throw std::invalid_argument(
        "experiment override '" + token + "': '" + key +
        "' is not a list axis (lists: panels backends modes attacks)");
  } else if (key == "model") {
    (void)parse_arch_section(value);  // fail fast on a typo'd section
    if (panels.empty()) {
      throw std::invalid_argument("experiment override '" + token +
                                  "': no panels to set the model on "
                                  "(declare panels+=arch/dataset first)");
    }
    for (auto& panel : panels) panel.arch = value;
  } else if (key == "dataset") {
    (void)parse_dataset_section(value);
    if (panels.empty()) {
      throw std::invalid_argument("experiment override '" + token +
                                  "': no panels to set the dataset on "
                                  "(declare panels+=arch/dataset first)");
    }
    for (auto& panel : panels) panel.dataset = value;
  } else if (key == "train") {
    (void)parse_train_section(value);
    train = value;
  } else if (key == "engine") {
    // Fail fast through the live registry so a typo'd engine token reports
    // the same "engine spec '...': ..." error as the other seams; empty
    // resets to the $RHW_ENGINE / "blocked" default.
    if (!value.empty()) (void)core::make_engine(value);
    engine = value;
  } else if (key == "trials") {
    trials = static_cast<int>(scalar_reader(key, value).integer(key, 1));
    if (trials < 1) {
      throw std::invalid_argument("experiment option trials: must be >= 1");
    }
  } else if (key == "seed") {
    seed = scalar_reader(key, value).integer(key, seed);
  } else if (key == "batch") {
    batch = static_cast<int64_t>(scalar_reader(key, value).integer(key, 100));
    if (batch < 1) {
      throw std::invalid_argument("experiment option batch: must be >= 1");
    }
  } else if (key == "eval_count") {
    eval_count =
        static_cast<int64_t>(scalar_reader(key, value).integer(key, 0));
  } else if (key == "verify") {
    verify = scalar_reader(key, value).integer(key, 0) != 0;
  } else if (key == "out") {
    out = value;
  } else if (key == "serve") {
    serve = scalar_reader(key, value).integer(key, 0) != 0;
  } else if (key == "qps") {
    qps = parse_qps_list(value);
  } else if (key == "requests") {
    requests =
        static_cast<int64_t>(scalar_reader(key, value).integer(key, 256));
    if (requests < 1) {
      throw std::invalid_argument("experiment option requests: must be >= 1");
    }
  } else if (key == "batch_max") {
    batch_max =
        static_cast<int64_t>(scalar_reader(key, value).integer(key, 16));
    if (batch_max < 1) {
      throw std::invalid_argument("experiment option batch_max: must be >= 1");
    }
  } else if (key == "linger_us") {
    linger_us =
        static_cast<int64_t>(scalar_reader(key, value).integer(key, 2000));
  } else if (key == "lanes") {
    lanes = static_cast<int64_t>(scalar_reader(key, value).integer(key, 0));
  } else if (key == "tag") {
    if (value.empty()) {
      throw std::invalid_argument("experiment option tag: must be non-empty");
    }
    tag = value;
  } else {
    throw std::invalid_argument(
        "experiment override '" + token + "': unknown option '" + key +
        "' (known: panels model dataset train engine eval_count backends "
        "modes attacks trials seed batch verify out tag serve qps requests "
        "batch_max linger_us lanes)");
  }
}

std::vector<std::string> ExperimentSpec::to_args() const {
  std::vector<std::string> args;
  for (const auto& panel : panels) args.push_back("panels+=" + panel.to_item());
  args.push_back("train=" + train);
  if (!engine.empty()) args.push_back("engine=" + engine);
  args.push_back("eval_count=" + std::to_string(eval_count));
  args.push_back("trials=" + std::to_string(trials));
  args.push_back("seed=" + std::to_string(seed));
  args.push_back("batch=" + std::to_string(batch));
  if (verify) args.push_back("verify=1");
  if (serve) {
    args.push_back("serve=1");
    std::string axis;
    for (size_t i = 0; i < qps.size(); ++i) {
      if (i != 0) axis += ",";
      axis += float_token(qps[i]);
    }
    args.push_back("qps=" + axis);
    args.push_back("requests=" + std::to_string(requests));
    args.push_back("batch_max=" + std::to_string(batch_max));
    args.push_back("linger_us=" + std::to_string(linger_us));
    if (lanes > 0) args.push_back("lanes=" + std::to_string(lanes));
  }
  if (!tag.empty()) args.push_back("tag=" + tag);
  if (!out.empty()) args.push_back("out=" + out);
  for (const auto& arm : backends) args.push_back("backends+=" + arm.to_item());
  for (const auto& mode : modes) args.push_back("modes+=" + mode.to_item());
  for (const auto& attack : attacks) {
    args.push_back("attacks+=" + attack.to_item());
  }
  return args;
}

// -- validation ---------------------------------------------------------------

void ExperimentSpec::validate() const {
  const std::string who =
      "experiment '" + (name.empty() ? std::string("custom") : name) + "'";
  if (panels.empty()) {
    throw std::invalid_argument(who + ": no panels declared");
  }
  if (!engine.empty()) (void)core::make_engine(engine);
  const TrainSection tr = parse_train_section(train);
  for (const auto& panel : panels) {
    const ArchSection arch = parse_arch_section(panel.arch);
    const DatasetSection ds = parse_dataset_section(panel.dataset);
    if (tr.key == "zoo") {
      // The on-disk cache is keyed by arch + base dataset tag, so zoo serves
      // only datasets whose tag pins down the data: the paper synthetics and
      // the real loaders. Parameterized generators (tiny, synth_cifar) keep
      // geometry knobs the tag does not encode — a cache hit could silently
      // return a model trained on different data. Corrupted variants share
      // the clean model: corruptions touch the test split alone.
      if (ds.zoo_tag != "synth-c10" && ds.zoo_tag != "synth-c100" &&
          ds.zoo_tag != "cifar10" && ds.zoo_tag != "mnist") {
        throw std::invalid_argument(
            who + ": train=zoo caches by dataset tag; panel '" +
            panel.to_item() + "' needs train=quick or train=none");
      }
      if (arch.width_mult != 0.25f || arch.in_size != 32) {
        throw std::invalid_argument(
            who + ": train=zoo serves default-geometry models; panel '" +
            panel.to_item() + "' customizes width/in");
      }
    }
  }
  if (backends.empty()) {
    throw std::invalid_argument(who + ": no backend arms declared");
  }
  std::set<std::string> keys;
  for (const auto& arm : backends) {
    if (!keys.insert(arm.key).second) {
      throw std::invalid_argument(who + ": duplicate backend key '" + arm.key +
                                  "'");
    }
    // Construction without prepare() is cheap and surfaces the registries'
    // token-naming errors for typo'd specs.
    (void)hw::make_backend(arm.hw);
    if (!arm.defense.empty()) {
      const defenses::DefensePtr defense = defenses::make_defense(arm.defense);
      if (defense->needs_calibration() && !arm.calibrate) {
        throw std::invalid_argument(
            who + ": backend '" + arm.key + "' uses defense '" + arm.defense +
            "' which needs '@calib' on its arm");
      }
      // Training-time defenses (adv_train) stay legal under any train mode:
      // the driver always feeds SweepGrid::train_data from the panel's data.
    }
  }
  if (serve) {
    // Serving mode replaces the (mode x attack x eps) grid with a
    // (arm x offered-QPS) curve; modes/attacks may stay empty but anything
    // declared is still validated below.
    if (qps.empty()) {
      throw std::invalid_argument(
          who + ": serve=1 needs a non-empty qps axis (qps=100,400,...)");
    }
    for (const float rate : qps) {
      if (!(rate > 0.f)) {
        throw std::invalid_argument(who + ": qps rates must be > 0");
      }
    }
    if (requests < 1) {
      throw std::invalid_argument(who + ": requests must be >= 1");
    }
    if (batch_max < 1) {
      throw std::invalid_argument(who + ": batch_max must be >= 1");
    }
    if (linger_us < 0) {
      throw std::invalid_argument(who + ": linger_us must be >= 0");
    }
    if (lanes < 0) {
      throw std::invalid_argument(who + ": lanes must be >= 0");
    }
  } else if (modes.empty()) {
    throw std::invalid_argument(who + ": no attack modes declared");
  }
  std::set<std::string> labels;
  for (const auto& mode : modes) {
    if (!labels.insert(mode.label).second) {
      throw std::invalid_argument(who + ": duplicate mode label '" +
                                  mode.label + "'");
    }
    for (const std::string& ref : {mode.grad, mode.eval}) {
      if (keys.count(ref) == 0) {
        throw std::invalid_argument(who + ": mode '" + mode.label +
                                    "' references unknown backend '" + ref +
                                    "'");
      }
    }
  }
  if (attacks.empty() && !serve) {
    throw std::invalid_argument(who + ": no attack arms declared");
  }
  for (const auto& attack : attacks) {
    (void)attacks::make_attack(attack.spec);
    if (attack.epsilons.empty()) {
      throw std::invalid_argument(who + ": attack '" + attack.spec +
                                  "' has an empty epsilon axis");
    }
  }
  if (trials < 1) throw std::invalid_argument(who + ": trials must be >= 1");
  if (batch < 1) throw std::invalid_argument(who + ": batch must be >= 1");
  if (tag.empty()) throw std::invalid_argument(who + ": empty artifact tag");
}

}  // namespace rhw::exp
