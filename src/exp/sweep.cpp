#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <tuple>

#include "core/thread_pool.hpp"
#include "exp/journal.hpp"
#include "models/zoo.hpp"

namespace rhw::exp {

uint64_t sweep_cell_seed(uint64_t base_seed, size_t mode, size_t attack,
                         size_t eps_index, int trial) {
  uint64_t s = derive_stream_seed(base_seed, static_cast<uint64_t>(trial));
  s = derive_stream_seed(s, kSweepCellStream);
  s = derive_stream_seed(s, static_cast<uint64_t>(mode));
  s = derive_stream_seed(s, static_cast<uint64_t>(attack));
  return derive_stream_seed(s, static_cast<uint64_t>(eps_index));
}

uint64_t sweep_clean_seed(uint64_t base_seed, int trial) {
  const uint64_t trial_seed =
      derive_stream_seed(base_seed, static_cast<uint64_t>(trial));
  return derive_stream_seed(trial_seed, kSweepCleanStream);
}

uint64_t sweep_cert_seed(uint64_t base_seed, int trial) {
  const uint64_t trial_seed =
      derive_stream_seed(base_seed, static_cast<uint64_t>(trial));
  return derive_stream_seed(trial_seed, kSweepCertStream);
}

std::vector<CellCoord> enumerate_cells(size_t n_modes,
                                       const std::vector<size_t>& eps_counts,
                                       int trials) {
  std::vector<CellCoord> out;
  size_t index = 0;
  for (int t = 0; t < std::max(trials, 1); ++t) {
    for (size_t m = 0; m < n_modes; ++m) {
      for (size_t a = 0; a < eps_counts.size(); ++a) {
        for (size_t e = 0; e < eps_counts[a]; ++e) {
          out.push_back({index++, m, a, e, t});
        }
      }
    }
  }
  return out;
}

// -- replica pools ------------------------------------------------------------

struct SweepEngine::Pool {
  SweepBackendDef def;
  defenses::DefensePtr defense;  // parsed once in run(), shared by all lanes

  struct Replica {
    models::Model model;
    hw::BackendPtr inner;    // the hardware backend, replicated across lanes
    hw::BackendPtr wrapped;  // defense wrapper around inner; null = pass-through
    hw::HardwareBackend* serving() const {
      return wrapped ? wrapped.get() : inner.get();
    }
  };

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::unique_ptr<Replica>> all;  // all[0] is the prototype
  std::vector<Replica*> free_list;
  Replica* prototype = nullptr;
  bool prototype_building = false;

  // Replica construction runs OUTSIDE the pool lock so lanes stamp replicas
  // concurrently; only the prototype (which pays for calibration-driven
  // prepare, defense hardening, and seeds replicate()) is built exclusively,
  // with other lanes waiting on it.
  Replica* checkout(const SweepGrid& grid) {
    std::unique_lock lock(mu);
    for (;;) {
      if (!free_list.empty()) {
        Replica* r = free_list.back();
        free_list.pop_back();
        return r;
      }
      if (prototype != nullptr || !prototype_building) break;
      cv.wait(lock);
    }
    const bool is_prototype = prototype == nullptr;
    if (is_prototype) prototype_building = true;
    lock.unlock();

    auto rep = std::make_unique<Replica>();
    try {
      defenses::DefenseContext dctx;
      dctx.train_data = grid.train_data;
      dctx.calibration = def.calibration;
      if (!is_prototype && defense->replicable_by_clone()) {
        // Weight-only hardening (adv_train): clone the prototype's hardened
        // model instead of re-training per lane. The prototype's weights and
        // buffers are immutable after it finishes building (evaluation only
        // touches caches and Param::grad), so the concurrent read is safe.
        rep->model = models::clone_model(prototype->model, grid.width_mult,
                                         grid.in_size);
      } else {
        rep->model =
            models::clone_model(*grid.model, grid.width_mult, grid.in_size);
        // Hardening that installs hooks (quanos) re-runs deterministically
        // per replica — clone_model would not carry it.
        defense->harden(rep->model, dctx);
      }
      // The prototype pays for the full (possibly calibration-driven)
      // prepare; later replicas reproduce its state via replicate().
      hw::BackendPtr b =
          is_prototype ? nullptr : prototype->inner->replicate();
      const data::Dataset* calibration = b ? nullptr : def.calibration;
      if (!b) b = hw::make_backend(def.spec);
      b->prepare(rep->model, calibration);
      rep->inner = std::move(b);
      // Inference-time phase: wrap the prepared backend (re-applied per
      // replica; wrappers are cheap and deterministic).
      rep->wrapped = defense->wrap(*rep->inner);
    } catch (...) {
      if (is_prototype) {
        lock.lock();
        prototype_building = false;
        cv.notify_all();  // let a waiting lane take over prototype duty
      }
      throw;
    }

    lock.lock();
    all.push_back(std::move(rep));
    Replica* r = all.back().get();
    if (is_prototype) {
      prototype = r;
      prototype_building = false;
      cv.notify_all();
    }
    return r;
  }

  void checkin(Replica* r) {
    {
      std::lock_guard lock(mu);
      free_list.push_back(r);
    }
    cv.notify_one();
  }
};

SweepEngine::SweepEngine(Options opts) : opts_(opts) {}
SweepEngine::~SweepEngine() = default;

hw::HardwareBackend* SweepEngine::backend(const std::string& key) const {
  for (const auto& pool : pools_) {
    if (pool->def.key != key) continue;
    std::lock_guard lock(pool->mu);
    return pool->all.empty() ? nullptr : pool->all.front()->serving();
  }
  return nullptr;
}

unsigned sweep_threads_env(unsigned fallback) {
  const char* env = std::getenv("RHW_SWEEP_THREADS");
  if (env == nullptr || *env == '\0') return fallback;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<unsigned>(v) : fallback;
}

SweepResult SweepEngine::run(const SweepGrid& grid) {
  if (grid.model == nullptr || grid.model->net == nullptr) {
    throw std::invalid_argument("SweepEngine: grid.model is required");
  }
  if (grid.eval_set == nullptr) {
    throw std::invalid_argument("SweepEngine: grid.eval_set is required");
  }

  // Rebuild replica pools (run() owns the pool lifetime so callers can query
  // backend() afterwards).
  pools_.clear();
  auto pool_index = [&](const std::string& key) -> size_t {
    for (size_t i = 0; i < pools_.size(); ++i) {
      if (pools_[i]->def.key == key) return i;
    }
    throw std::invalid_argument("SweepEngine: mode references unknown backend '" +
                                key + "'");
  };
  SweepResult result;
  for (const auto& def : grid.backends) {
    for (const auto& pool : pools_) {
      if (pool->def.key == def.key) {
        throw std::invalid_argument("SweepEngine: duplicate backend key '" +
                                    def.key + "'");
      }
    }
    if (def.spec.empty()) {
      throw std::invalid_argument("SweepEngine: backend '" + def.key +
                                  "' has an empty hardware spec");
    }
    auto pool = std::make_unique<Pool>();
    pool->def = def;
    // Validate both specs before evaluating anything — a typo'd spec must
    // fail the whole run with the registry's token-naming error, not abort
    // mid-grid from a worker lane. Construction without prepare() is cheap.
    (void)hw::make_backend(def.spec);
    const std::string defense_spec =
        def.defense.empty() ? std::string("none") : def.defense;
    pool->defense = defenses::make_defense(defense_spec);
    if (pool->defense->training_time() && grid.train_data == nullptr) {
      throw std::invalid_argument(
          "SweepEngine: backend '" + def.key + "' uses training-time defense '" +
          defense_spec + "' but grid.train_data is not set");
    }
    if (pool->defense->needs_calibration() && def.calibration == nullptr) {
      throw std::invalid_argument(
          "SweepEngine: backend '" + def.key + "' uses defense '" +
          defense_spec + "' which needs SweepBackendDef::calibration");
    }
    result.backends.push_back(
        {def.key, def.spec, defense_spec, pool->defense->name()});
    pools_.push_back(std::move(pool));
  }

  const int trials = grid.trials < 1 ? 1 : grid.trials;

  struct ModeIdx {
    size_t grad = 0, eval = 0;
  };
  std::vector<ModeIdx> mode_pools;
  mode_pools.reserve(grid.modes.size());
  for (const auto& mode : grid.modes) {
    mode_pools.push_back({pool_index(mode.grad), pool_index(mode.eval)});
  }

  for (const auto& mode : grid.modes) {
    result.mode_labels.push_back(mode.label);
    result.mode_defs.push_back(mode);
  }
  for (const auto& attack : grid.attacks) {
    // Validate every attack arm before evaluating anything: a typo'd spec
    // must fail the whole run with the registry's token-naming error, not
    // abort mid-grid from a worker lane.
    result.attack_specs.push_back(attack.spec);
    result.attack_names.push_back(attacks::attack_display_name(attack.spec));
  }
  result.trials = trials;
  result.base_seed = grid.base.seed;

  // Cell enumeration: the canonical trial-major order (enumerate_cells),
  // deterministic and independent of the execution schedule. Sharding keeps
  // the cells whose canonical index round-robins onto this shard — per-cell
  // seeds depend only on grid coordinates, so the union of any shard
  // partition is bit-identical to the monolithic run.
  const size_t shard_count = opts_.shard_count == 0 ? 1 : opts_.shard_count;
  if (opts_.shard_index >= shard_count) {
    throw std::invalid_argument(
        "SweepEngine: shard_index " + std::to_string(opts_.shard_index) +
        " out of range for shard_count " + std::to_string(shard_count));
  }
  std::vector<size_t> eps_counts;
  eps_counts.reserve(grid.attacks.size());
  for (const auto& attack : grid.attacks) {
    eps_counts.push_back(attack.epsilons.size());
  }
  const std::vector<CellCoord> coords =
      enumerate_cells(grid.modes.size(), eps_counts, trials);
  result.cells_total = coords.size();
  for (const CellCoord& c : coords) {
    if (c.index % shard_count != opts_.shard_index) continue;
    SweepCell cell;
    cell.index = c.index;
    cell.mode = c.mode;
    cell.attack = c.attack;
    cell.eps_index = c.eps_index;
    cell.trial = c.trial;
    cell.epsilon = grid.attacks[c.attack].epsilons[c.eps_index];
    cell.seed =
        sweep_cell_seed(grid.base.seed, c.mode, c.attack, c.eps_index, c.trial);
    result.cells.push_back(cell);
  }

  // Clean accuracy is epsilon- and mode-independent: one value per
  // (eval backend, trial), computed once and shared. Certified radius
  // (smooth arms) shares the same slots — it is a property of the eval
  // backend under its cert-stream seed, not of any attack cell. Marked from
  // the surviving cells (eps == 0 rows included: they copy the clean value),
  // so a shard only pays for the clean passes its own cells reference.
  std::vector<double> clean_vals(pools_.size() * static_cast<size_t>(trials),
                                 0.0);
  std::vector<double> cert_vals(clean_vals.size(), 0.0);
  std::vector<char> clean_needed(clean_vals.size(), 0);
  auto clean_slot = [&](size_t eval_pool, int trial) {
    return eval_pool * static_cast<size_t>(trials) +
           static_cast<size_t>(trial);
  };
  for (const SweepCell& cell : result.cells) {
    clean_needed[clean_slot(mode_pools[cell.mode].eval, cell.trial)] = 1;
  }

  // Task list: clean passes plus every eps > 0 adversarial cell.
  struct Task {
    bool clean = false;
    size_t pool = 0;  // clean: eval pool index
    int trial = 0;    // clean: trial
    size_t cell = 0;  // adv: index into result.cells
  };
  std::vector<Task> tasks;
  for (size_t p = 0; p < pools_.size(); ++p) {
    for (int t = 0; t < trials; ++t) {
      if (clean_needed[clean_slot(p, t)]) tasks.push_back({true, p, t, 0});
    }
  }
  for (size_t c = 0; c < result.cells.size(); ++c) {
    if (result.cells[c].epsilon != 0.f) tasks.push_back({false, 0, 0, c});
  }

  // Checkpoint/resume: restore journaled tasks instead of re-running them,
  // then (re)write the journal so this run's appends continue it. The
  // journal is rewritten from the parsed entries on resume, truncating any
  // torn tail a crashed append left behind.
  std::unique_ptr<SweepJournal> journal;
  if (!opts_.journal_path.empty()) {
    std::vector<JournalEntry> restored;
    if (opts_.resume) {
      restored = load_journal(opts_.journal_path, opts_.journal_header);
    }
    journal = std::make_unique<SweepJournal>(opts_.journal_path,
                                             opts_.journal_header,
                                             /*append=*/false);
    std::map<std::pair<std::string, int>, const JournalEntry*> done_clean;
    std::map<size_t, const JournalEntry*> done_cell;
    for (const JournalEntry& e : restored) {
      journal->record(e);
      if (e.clean) {
        done_clean[{e.pool, e.trial}] = &e;
      } else {
        done_cell[e.index] = &e;
      }
    }
    std::vector<Task> remaining;
    for (const Task& task : tasks) {
      if (task.clean) {
        const auto it =
            done_clean.find({pools_[task.pool]->def.key, task.trial});
        if (it != done_clean.end()) {
          clean_vals[clean_slot(task.pool, task.trial)] = it->second->clean_acc;
          cert_vals[clean_slot(task.pool, task.trial)] = it->second->cert;
          ++result.resumed;
          continue;
        }
      } else {
        const auto it = done_cell.find(result.cells[task.cell].index);
        if (it != done_cell.end()) {
          result.cells[task.cell].adv_acc = it->second->adv;
          ++result.resumed;
          continue;
        }
      }
      remaining.push_back(task);
    }
    tasks = std::move(remaining);
  }

  lanes_ = opts_.threads != 0
               ? opts_.threads
               : static_cast<unsigned>(global_pool().size()) + 1;
  result.lanes = lanes_;

  std::atomic<size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::atomic<bool> abort{false};

  // Checks the replica back in even when evaluation throws, so other lanes
  // reuse it instead of stamping fresh clones during an aborting run.
  struct Checkout {
    Pool* pool = nullptr;
    Pool::Replica* rep = nullptr;
    Checkout(Pool& p, const SweepGrid& g) : pool(&p), rep(p.checkout(g)) {}
    ~Checkout() {
      if (pool != nullptr && rep != nullptr) pool->checkin(rep);
    }
    Checkout(const Checkout&) = delete;
    Checkout& operator=(const Checkout&) = delete;
  };

  auto run_task = [&](const Task& task) {
    if (task.clean) {
      Pool& pool = *pools_[task.pool];
      const Checkout rep(pool, grid);
      const double acc = attacks::clean_accuracy(
          rep.rep->serving()->module(), *grid.eval_set, grid.base.batch_size,
          sweep_clean_seed(grid.base.seed, task.trial));
      clean_vals[clean_slot(task.pool, task.trial)] = acc;
      // Certifying defense arms (randomized smoothing) piggyback on the
      // clean task: one certificate per (eval backend, trial), under its own
      // derived stream.
      if (auto* cert =
              dynamic_cast<defenses::Certifier*>(rep.rep->serving())) {
        cert_vals[clean_slot(task.pool, task.trial)] =
            cert->mean_certified_radius(
                *grid.eval_set, grid.base.batch_size,
                sweep_cert_seed(grid.base.seed, task.trial));
      }
      if (journal) {
        JournalEntry e;
        e.clean = true;
        e.pool = pool.def.key;
        e.trial = task.trial;
        e.clean_acc = acc;
        e.cert = cert_vals[clean_slot(task.pool, task.trial)];
        journal->record(e);
      }
      if (opts_.verbose) {
        std::fprintf(stderr, "[sweep] clean %s trial %d: %.2f%%\n",
                     pool.def.key.c_str(), task.trial, acc);
      }
      return;
    }
    SweepCell& cell = result.cells[task.cell];
    const ModeIdx& mi = mode_pools[cell.mode];
    // grad == eval must run through ONE replica: HH crafts and evaluates on
    // the same network instance, exactly like the serial path.
    const Checkout grad_rep(*pools_[mi.grad], grid);
    const std::optional<Checkout> eval_rep =
        mi.grad == mi.eval ? std::nullopt
                           : std::optional<Checkout>(std::in_place,
                                                     *pools_[mi.eval], grid);
    nn::Module& grad_net = grad_rep.rep->serving()->module();
    nn::Module& eval_net =
        eval_rep ? eval_rep->rep->serving()->module() : grad_net;
    attacks::AdvEvalConfig cfg = grid.base;
    cfg.attack = grid.attacks[cell.attack].spec;
    cfg.epsilon = cell.epsilon;
    cfg.seed = cell.seed;
    cell.adv_acc =
        attacks::adversarial_accuracy(grad_net, eval_net, *grid.eval_set, cfg);
    if (journal) {
      JournalEntry e;
      e.index = cell.index;
      e.adv = cell.adv_acc;
      journal->record(e);
    }
    if (opts_.verbose) {
      std::fprintf(stderr, "[sweep] %s %s eps=%.3f trial %d: adv %.2f%%\n",
                   result.mode_labels[cell.mode].c_str(),
                   result.attack_names[cell.attack].c_str(), cell.epsilon,
                   cell.trial, cell.adv_acc);
    }
  };

  // Test-only crash injection: each lane claims a budget slot before running
  // a task, so exactly min(max_cells, tasks) tasks complete — even in
  // parallel — before the run throws SweepInterrupted.
  std::atomic<size_t> budget_used{0};
  std::atomic<bool> interrupted{false};

  auto pump = [&](int64_t, int64_t) {
    for (size_t i; (i = next.fetch_add(1)) < tasks.size();) {
      if (abort.load(std::memory_order_relaxed)) return;
      if (opts_.max_cells != 0 &&
          budget_used.fetch_add(1) >= opts_.max_cells) {
        interrupted.store(true, std::memory_order_relaxed);
        return;
      }
      try {
        run_task(tasks[i]);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (lanes_ <= 1 || tasks.size() <= 1) {
    pump(0, 1);
  } else {
    // Own pool: cells run on its workers (whose nested parallel_for calls
    // fall back to serial — the parallelism budget moves to the cell level),
    // while the caller lane keeps the global pool for its own cells.
    ThreadPool cell_pool(lanes_ - 1);
    const auto n_lanes =
        std::min<int64_t>(static_cast<int64_t>(tasks.size()), lanes_);
    cell_pool.parallel_for(n_lanes, pump);
  }
  if (first_error) std::rethrow_exception(first_error);
  if (interrupted.load()) {
    throw SweepInterrupted(
        "sweep interrupted: max_cells budget of " +
        std::to_string(opts_.max_cells) + " task(s) spent with " +
        std::to_string(tasks.size() - std::min(tasks.size(), opts_.max_cells)) +
        " task(s) left; resume from " +
        (opts_.journal_path.empty() ? std::string("(no journal)")
                                    : opts_.journal_path));
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Assembly: attach the shared clean/cert values, resolve eps == 0 rows.
  for (SweepCell& cell : result.cells) {
    const ModeIdx& mi = mode_pools[cell.mode];
    cell.clean_acc = clean_vals[clean_slot(mi.eval, cell.trial)];
    cell.cert_radius = cert_vals[clean_slot(mi.eval, cell.trial)];
    if (cell.epsilon == 0.f) cell.adv_acc = cell.clean_acc;
    cell.al = cell.clean_acc - cell.adv_acc;
  }

  result.aggregates = compute_aggregates(result);
  return result;
}

std::vector<SweepAggregate> compute_aggregates(const SweepResult& result) {
  // Group by canonical (mode, attack, eps_index) key — the map iterates in
  // exactly the engine's historical mode-major emission order — and feed
  // each group's values to summarize() in ascending-trial order. The value
  // order is what makes the floating-point sums reproducible: cells stored
  // trial-major (a fresh run), index-sorted (a merge) or restored from a
  // journal all collapse to the same per-group sequence, so the aggregate
  // doubles are bit-identical however the cells were computed.
  std::map<std::tuple<size_t, size_t, size_t>, std::vector<const SweepCell*>>
      groups;
  for (const SweepCell& cell : result.cells) {
    groups[{cell.mode, cell.attack, cell.eps_index}].push_back(&cell);
  }
  std::vector<SweepAggregate> out;
  out.reserve(groups.size());
  for (auto& [key, members] : groups) {
    std::sort(members.begin(), members.end(),
              [](const SweepCell* a, const SweepCell* b) {
                return a->trial < b->trial;
              });
    SweepAggregate agg;
    agg.mode = std::get<0>(key);
    agg.attack = std::get<1>(key);
    agg.eps_index = std::get<2>(key);
    agg.epsilon = members.front()->epsilon;
    std::vector<double> clean, adv, al, cert;
    for (const SweepCell* cell : members) {
      clean.push_back(cell->clean_acc);
      adv.push_back(cell->adv_acc);
      al.push_back(cell->al);
      cert.push_back(cell->cert_radius);
    }
    agg.clean = summarize(clean);
    agg.adv = summarize(adv);
    agg.al = summarize(al);
    agg.cert = summarize(cert);
    out.push_back(agg);
  }
  return out;
}

const SweepAggregate* SweepResult::find(size_t mode, size_t attack,
                                        size_t eps_index) const {
  for (const auto& agg : aggregates) {
    if (agg.mode == mode && agg.attack == attack &&
        agg.eps_index == eps_index) {
      return &agg;
    }
  }
  return nullptr;
}

AlCurve SweepResult::curve(const std::string& mode_label,
                           const std::string& attack_spec) const {
  size_t mode = mode_labels.size();
  for (size_t m = 0; m < mode_labels.size(); ++m) {
    if (mode_labels[m] == mode_label) {
      mode = m;
      break;
    }
  }
  if (mode == mode_labels.size()) {
    std::string known;
    for (const auto& label : mode_labels) known += " '" + label + "'";
    throw std::invalid_argument("SweepResult::curve: unknown mode '" +
                                mode_label + "'; grid modes:" + known);
  }
  // Attack arms match through the registry grammar, not verbatim text:
  // "pgd:steps=7," and "pgd:alpha=0.01,steps=7" vs "pgd:steps=7,alpha=0.01"
  // canonicalize to the same row.
  const std::string wanted = core::canonical_spec("attack", attack_spec);
  size_t attack = attack_specs.size();
  for (size_t a = 0; a < attack_specs.size(); ++a) {
    if (core::canonical_spec("attack", attack_specs[a]) == wanted) {
      attack = a;
      break;
    }
  }
  if (attack == attack_specs.size()) {
    std::string known;
    for (const auto& spec : attack_specs) known += " '" + spec + "'";
    throw std::invalid_argument("SweepResult::curve: unknown attack '" +
                                attack_spec + "'; grid attacks:" + known);
  }
  AlCurve curve;
  curve.label = mode_label;
  for (const auto& agg : aggregates) {
    if (agg.mode != mode || agg.attack != attack) continue;
    AlPoint pt;
    pt.epsilon = agg.epsilon;
    pt.clean_acc = agg.clean.mean;
    pt.adv_acc = agg.adv.mean;
    pt.al = agg.al.mean;
    curve.points.push_back(pt);
  }
  return curve;
}

std::string ExperimentStamp::command() const {
  std::string out = "rhw_run " + preset;
  for (const auto& token : overrides) out += " " + token;
  if (shard_count > 1) {
    out += " --shard=" + std::to_string(shard_index) + "/" +
           std::to_string(shard_count);
  }
  return out;
}

void SweepResult::write_json(const std::string& path,
                             const std::string& figure) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_json: cannot open " + path);
  write_json(os, figure);
  os << '\n';
}

void SweepResult::write_json(std::ostream& os, const std::string& figure,
                             bool payload_only) const {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "rhw-sweep-v4");
  w.field("figure", figure);
  // v4: the experiment spec itself — preset, user overrides, the reproducing
  // command line, and the fully-resolved canonical override list (which
  // rebuilds the spec even if the preset's defaults drift later). Ad-hoc
  // grids (no driver) emit null. The payload view drops the block entirely:
  // shard provenance and per-run command lines legitimately differ between
  // runs whose results must still agree byte-for-byte.
  if (!payload_only) {
    w.key("experiment");
    if (experiment.preset.empty()) {
      w.null_value();
    } else {
      w.begin_object();
      w.field("preset", experiment.preset);
      w.field("command", experiment.command());
      w.key("overrides");
      w.begin_array();
      for (const auto& token : experiment.overrides) w.value(token);
      w.end_array();
      w.key("canonical");
      w.begin_array();
      for (const auto& token : experiment.canonical) w.value(token);
      w.end_array();
      // The panel's resolved canonical dataset spec (data::DatasetRegistry).
      if (!experiment.dataset.empty()) {
        w.field("dataset", experiment.dataset);
      }
      // Shard provenance: which slice of the canonical enumeration this
      // artifact holds, and — post-merge — how many shard files built it.
      if (experiment.shard_count > 1) {
        w.key("shard");
        w.begin_object();
        w.field("index", static_cast<int64_t>(experiment.shard_index));
        w.field("count", static_cast<int64_t>(experiment.shard_count));
        w.end_object();
      }
      if (experiment.merged_shards > 0) {
        w.field("merged_shards",
                static_cast<int64_t>(experiment.merged_shards));
      }
      w.end_object();
    }
  }
  w.field("trials", static_cast<int64_t>(trials));
  w.field("base_seed", base_seed);
  w.field("cells_total", static_cast<int64_t>(cells_total));
  if (!payload_only) {
    w.field("lanes", static_cast<int64_t>(lanes));
    w.field("wall_seconds", wall_seconds);
  }
  w.key("modes");
  w.begin_array();
  for (const auto& label : mode_labels) w.value(label);
  w.end_array();
  // v3: backend arms are self-describing — hw spec + defense spec + defense
  // display name per key — and modes carry their (grad, eval) pairing, so a
  // front-end can resolve any cell to its full configuration.
  w.key("backends");
  w.begin_array();
  for (const auto& b : backends) {
    w.begin_object();
    w.field("key", b.key);
    w.field("spec", b.spec);
    w.field("defense", b.defense);
    w.field("defense_name", b.defense_name);
    w.end_object();
  }
  w.end_array();
  w.key("mode_defs");
  w.begin_array();
  for (const auto& mode : mode_defs) {
    w.begin_object();
    w.field("label", mode.label);
    w.field("grad", mode.grad);
    w.field("eval", mode.eval);
    w.end_object();
  }
  w.end_array();
  // v2: attacks are registry spec strings; "attack_names" carries the
  // display names in the same order for plotting front-ends.
  w.key("attacks");
  w.begin_array();
  for (const auto& spec : attack_specs) w.value(spec);
  w.end_array();
  w.key("attack_names");
  w.begin_array();
  for (const auto& name : attack_names) w.value(name);
  w.end_array();
  w.key("cells");
  w.begin_array();
  for (const auto& cell : cells) {
    w.begin_object();
    // Canonical enumeration index: the shard partition key and rhw_merge's
    // duplicate/completeness handle.
    w.field("index", static_cast<int64_t>(cell.index));
    w.field("mode", mode_labels[cell.mode]);
    w.field("attack", attack_specs[cell.attack]);
    w.field("eps", static_cast<double>(cell.epsilon));
    w.field("eps_index", static_cast<int64_t>(cell.eps_index));
    w.field("trial", static_cast<int64_t>(cell.trial));
    w.field("seed", cell.seed);
    w.field("clean", cell.clean_acc);
    w.field("adv", cell.adv_acc);
    w.field("al", cell.al);
    // v3: certified L2 radius of the eval arm's defense (0 when the arm
    // does not certify).
    w.field("cert_radius", cell.cert_radius);
    w.end_object();
  }
  w.end_array();
  w.key("aggregates");
  w.begin_array();
  for (const auto& agg : aggregates) {
    w.begin_object();
    w.field("mode", mode_labels[agg.mode]);
    w.field("attack", attack_specs[agg.attack]);
    w.field("eps", static_cast<double>(agg.epsilon));
    w.field("n", agg.al.n);
    w.field("clean_mean", agg.clean.mean);
    w.field("clean_ci95", agg.clean.ci95);
    w.field("adv_mean", agg.adv.mean);
    w.field("adv_ci95", agg.adv.ci95);
    w.field("al_mean", agg.al.mean);
    w.field("al_stddev", agg.al.stddev);
    w.field("al_ci95", agg.al.ci95);
    w.field("cert_mean", agg.cert.mean);
    w.field("cert_ci95", agg.cert.ci95);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace rhw::exp
