// Reading side of the rhw-sweep-v4 artifact format, and the shard-merge
// logic behind the rhw_merge tool.
//
// JsonValue/parse_json is a minimal dependency-free JSON reader (the
// counterpart of exp/sweep_stats.hpp's JsonWriter). Numbers keep their raw
// literal text: base_seed and cell seeds are full-width uint64 values that a
// double round-trip would corrupt past 2^53, so typed accessors convert the
// text directly (strtoull / strtod). %.17g doubles round-trip bit-exactly,
// which is what makes load -> merge -> rewrite byte-stable.
//
// load_sweep_artifact rebuilds a SweepResult from a v4 file; merge_artifacts
// fuses N shard/partial artifacts into the full grid, refusing mismatched
// canonical specs, engine stamps, schema versions, duplicate or missing
// cells — each with a token-precise std::runtime_error in the registries'
// error style. diff_artifacts renders the canonical-spec difference between
// two artifacts' embedded experiment stamps (rhw_merge --diff).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exp/sweep.hpp"

namespace rhw::exp {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  // kNumber: raw literal; kString: decoded text
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject, ordered

  const JsonValue* find(const std::string& key) const;  // null when absent
  // Member lookup that throws std::runtime_error naming the missing key.
  const JsonValue& at(const std::string& key) const;

  double number() const;        // strtod over the raw literal
  int64_t number_i64() const;   // strtoll — exact for full-range int64
  uint64_t number_u64() const;  // strtoull — exact for full-width seeds
  const std::string& string_value() const;
};

// Parses one JSON document (the whole input must be consumed, trailing
// whitespace aside). Throws std::runtime_error with the byte offset of the
// first error — the journal loader uses that to detect torn lines.
JsonValue parse_json(const std::string& text);

// One parsed rhw-sweep-v4 file: the SweepResult rebuilt field-for-field plus
// the figure tag. Throws std::runtime_error naming the path and the
// offending token (wrong schema — including pre-v4 versions by name —
// missing fields, unknown mode/attack labels in cells).
struct SweepArtifact {
  std::string path;
  std::string figure;
  SweepResult result;
};

SweepArtifact load_sweep_artifact(const std::string& path);

// Fuses shard artifacts into the full-grid result: cells sorted back into
// canonical enumeration order, aggregates recomputed via compute_aggregates
// (bit-identical to the monolithic run), wall_seconds summed, the first
// shard's experiment stamp carried with merged_shards set and any per-shard
// out= override dropped. Throws std::runtime_error on mismatched figure,
// preset, engine stamp or canonical spec (out= excluded), on a missing
// experiment stamp, on duplicate cell indices across shards, and on an
// incomplete union. `figure_out`, when non-null, receives the shared figure
// tag.
SweepResult merge_artifacts(const std::vector<SweepArtifact>& shards,
                            std::string* figure_out = nullptr);

// Human-readable diff of two artifacts' embedded canonical specs, "-/+"
// lines per differing override token ("" when the specs agree).
std::string diff_artifacts(const SweepArtifact& a, const SweepArtifact& b);

}  // namespace rhw::exp
