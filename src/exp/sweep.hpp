// SweepEngine: the parallel scheduler behind the figure/table benches.
//
// The paper's results are grids — AL(eps) per attack mode (Attack-SW/SH/HH)
// per substrate per configuration (Figs. 5-8, Tables I-III). A SweepGrid
// declares those axes once: backend definitions (hw registry specs, each
// optionally hardened/wrapped by a DefenseRegistry spec), attack-mode
// pairings over them, attack arms (AttackRegistry specs) with epsilon lists,
// and a trial count for noisy substrates. The engine expands the grid into
// independent cells and runs them concurrently on a core::ThreadPool.
//
// Guarantees:
//   * Determinism: every cell evaluates under RNG streams derived
//     (splitmix64) purely from (grid seed, mode index, attack index, epsilon
//     index, trial) — results are bit-identical regardless of execution
//     order, lane count, or how many replicas were stamped out. Defense
//     wrappers honor the same contract: their noise streams pin through
//     nn::reseed_noise_streams like any hardware hook.
//   * Calibrate-once: each backend definition pays for data-driven
//     calibration exactly once — the prototype replica runs it (SRAM layer
//     selection is the expensive case) and later replicas reproduce its
//     prepared state bit-for-bit via HardwareBackend::replicate() without
//     the calibration data. Defense hardening follows the same rule: a
//     defense whose harden() is carried by model cloning (adv_train) runs
//     once on the prototype and replicas clone the hardened weights; the
//     rest (quanos' hook install) re-run deterministically per lane.
//     Replica prepare() itself still runs per lane (deterministic
//     re-execution: crossbar remap), a one-time per-lane cost amortized
//     over all the cells that lane runs. Modules cache forward state, so
//     replicas — not literal sharing — are what "read-only across cells"
//     means at the module level.
//   * Trials: trials > 1 re-runs every cell under derived trial seeds;
//     aggregates carry mean ± 95% CI (exp/sweep_stats.hpp). Certifying
//     defense arms (smooth) additionally report a mean certified L2 radius
//     per trial, aggregated like clean accuracy.
//
// exp::al_curve is the serial single-row special case (mode 0, attack 0,
// trial 0) of the same per-cell seed derivation, so a one-row grid
// reproduces it bit-for-bit.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/evaluate.hpp"
#include "defenses/registry.hpp"
#include "exp/al_runner.hpp"
#include "exp/sweep_stats.hpp"
#include "hw/registry.hpp"
#include "models/vgg.hpp"

namespace rhw::exp {

// How one hardware arm of the grid is constructed: a hw registry spec (with
// optional calibration data for data-driven prepare()), optionally hardened
// and/or wrapped by a defense registry spec. An empty defense means "none".
// There is no custom-binder escape hatch: an arm that cannot be said in spec
// strings belongs behind a registered key (hw::BackendRegistry::add /
// defenses::DefenseRegistry::add), where every bench can reuse it.
struct SweepBackendDef {
  std::string key;      // referenced by SweepMode::grad / SweepMode::eval
  std::string spec;     // hw registry spec (required)
  std::string defense;  // defense registry spec; "" = "none"
  const data::Dataset* calibration = nullptr;

  SweepBackendDef() = default;
  SweepBackendDef(std::string key_, std::string spec_,
                  std::string defense_ = "",
                  const data::Dataset* calibration_ = nullptr)
      : key(std::move(key_)),
        spec(std::move(spec_)),
        defense(std::move(defense_)),
        calibration(calibration_) {}
};

// One attack-mode pairing. The paper's modes are pairings of backend keys:
// Attack-SW = (ideal, ideal), SH = (ideal, hw), HH = (hw, hw). grad == eval
// routes both passes through a single replica, preserving the serial-path
// semantics where HH crafts and evaluates on one network instance.
struct SweepMode {
  std::string label;
  std::string grad;
  std::string eval;
};

// One attack arm: an AttackRegistry spec string ("fgsm", "pgd:steps=7",
// "eot_pgd:samples=8", "square:queries=200", ...) plus its epsilon axis. The
// cell's epsilon overrides any eps=... embedded in the spec. Specs are
// validated up front — run() throws before evaluating anything if one is
// unknown or malformed.
struct SweepAttack {
  std::string spec = "fgsm";
  std::vector<float> epsilons;  // eps == 0 rows report adv = clean, AL = 0
};

struct SweepGrid {
  const models::Model* model = nullptr;  // trained baseline; never mutated
  // Clone geometry (models::clone_model needs it for non-default builds).
  float width_mult = 0.25f;
  int64_t in_size = 32;
  const data::Dataset* eval_set = nullptr;
  // Training data for training-time defense arms (adv_train); run() throws
  // up front when such an arm is declared without it.
  const data::SynthCifar* train_data = nullptr;
  std::vector<SweepBackendDef> backends;
  std::vector<SweepMode> modes;
  std::vector<SweepAttack> attacks;
  int trials = 1;
  attacks::AdvEvalConfig base;  // seed + batch/PGD knobs; kind/epsilon unused
};

// One coordinate of the expanded grid, in the canonical enumeration order
// (trial-major, then mode, attack, epsilon — exactly the order run() stores
// cells in). `index` is the stable cell id sharding partitions on, --dry-run
// prints, and rhw_merge uses to prove a merge is complete and duplicate-free.
struct CellCoord {
  size_t index = 0;
  size_t mode = 0;
  size_t attack = 0;
  size_t eps_index = 0;
  int trial = 0;
};

// The canonical cell enumeration shared by SweepEngine::run, the --dry-run
// listing and rhw_merge's completeness check: for each trial, for each mode,
// for each attack, for each epsilon of that attack. `eps_counts[a]` is
// attack a's epsilon-axis length.
std::vector<CellCoord> enumerate_cells(size_t n_modes,
                                       const std::vector<size_t>& eps_counts,
                                       int trials);

// One evaluated (mode, attack, epsilon, trial) cell.
struct SweepCell {
  size_t index = 0;  // canonical enumeration index (enumerate_cells)
  size_t mode = 0;
  size_t attack = 0;
  size_t eps_index = 0;
  int trial = 0;
  float epsilon = 0.f;
  uint64_t seed = 0;  // derived evaluation seed (sweep_cell_seed)
  double clean_acc = 0.0;
  double adv_acc = 0.0;
  double al = 0.0;
  // Mean certified L2 radius of the eval arm's defense (randomized
  // smoothing); 0 for non-certifying arms. Epsilon- and attack-independent
  // like clean_acc: one value per (eval backend, trial), shared.
  double cert_radius = 0.0;
};

// (mode, attack, epsilon) aggregated across trials.
struct SweepAggregate {
  size_t mode = 0;
  size_t attack = 0;
  size_t eps_index = 0;
  float epsilon = 0.f;
  SweepStat clean, adv, al;
  SweepStat cert;  // certified radius across trials (all-zero stats when
                   // the eval arm does not certify)
};

// One backend arm as declared, plus its resolved defense display name —
// carried into the rhw-sweep-v3 JSON so artifacts are self-describing.
struct SweepBackendInfo {
  std::string key;
  std::string spec;
  std::string defense;       // normalized: "none" when the def left it empty
  std::string defense_name;  // display name ("None", "Smooth", ...)
};

// Provenance stamp for sweep artifacts: which experiment-registry preset
// produced this grid and the exact command that reproduces it. Set by the
// rhw_run driver (exp/experiment_registry.hpp) before write_json; hand-built
// grids leave it empty and the artifact carries "experiment": null.
struct ExperimentStamp {
  std::string preset;                  // ExperimentRegistry key
  std::vector<std::string> overrides;  // user-supplied override tokens
  std::vector<std::string> canonical;  // full canonical args (to_args())
  // Canonical dataset spec of the panel this artifact holds (the sixth
  // seam's resolved key+knobs, e.g. "synth-c10" or "cifar10:dir=...+
  // corrupt:kind=fog,sev=3"); empty for ad-hoc grids.
  std::string dataset;
  // Shard provenance: count > 1 marks a partial artifact holding only the
  // cells with index % count == this shard's index; merged_shards > 0 marks
  // an artifact rhw_merge fused from that many shard files.
  size_t shard_index = 0;
  size_t shard_count = 1;
  size_t merged_shards = 0;
  // "rhw_run <preset> <overrides...> [--shard=i/n]" — the reproducing
  // command line.
  std::string command() const;
};

struct SweepResult {
  std::vector<SweepCell> cells;  // trial-major, grid order — deterministic
  std::vector<SweepAggregate> aggregates;
  std::vector<std::string> mode_labels;
  std::vector<SweepMode> mode_defs;        // label + (grad, eval) pairing
  std::vector<SweepBackendInfo> backends;  // grid order, as declared
  std::vector<std::string> attack_specs;  // grid order, as declared
  std::vector<std::string> attack_names;  // display names ("FGSM", "Square")
  int trials = 1;
  uint64_t base_seed = 0;
  unsigned lanes = 1;
  double wall_seconds = 0.0;
  // Full-grid cell count (== cells.size() unsharded; larger on a shard).
  size_t cells_total = 0;
  // Tasks restored from a resume journal instead of re-evaluated. Run state,
  // never serialized: a resumed run's artifact is bit-identical to an
  // uninterrupted one.
  size_t resumed = 0;
  ExperimentStamp experiment;  // empty preset = ad-hoc grid

  const SweepAggregate* find(size_t mode, size_t attack,
                             size_t eps_index) const;
  // Trial-mean AL(eps) series for one (mode label, attack spec) row. The
  // attack spec is matched through the registry grammar, not verbatim:
  // "pgd:steps=7,", reordered knobs, or dropped empty items all resolve to
  // the same arm. A genuine miss throws std::invalid_argument naming the
  // offending spec/label and listing the grid's rows.
  AlCurve curve(const std::string& mode_label,
                const std::string& attack_spec) const;
  // Machine-readable artifact (the BENCH_fig*.json files CI uploads).
  void write_json(const std::string& path, const std::string& figure) const;
  // Stream form. payload_only drops the run metadata that legitimately
  // differs between equivalent runs (experiment block, lanes, wall_seconds):
  // what remains is the results payload two runs of the same spec must agree
  // on byte-for-byte — the shard-equivalence and resume tests compare it.
  void write_json(std::ostream& os, const std::string& figure,
                  bool payload_only = false) const;
};

// Aggregates across trials in canonical (mode, attack, eps_index) order with
// each group's trial values in ascending-trial order — a pure function of
// the cell *set*, independent of the order `cells` is stored in. The engine,
// rhw_merge and the resume path all aggregate through this, so a merged or
// resumed artifact reproduces the monolithic aggregates bit-for-bit.
std::vector<SweepAggregate> compute_aggregates(const SweepResult& result);

// -- seed derivation contract -------------------------------------------------
// A cell's evaluation seed depends only on grid coordinates, never on
// execution order (README "Reproducibility"):
//   trial_seed = derive_stream_seed(base_seed, trial)
//   s = derive_stream_seed(trial_seed, kSweepCellStream)
//   s = derive(s, mode); s = derive(s, attack); cell_seed = derive(s, eps_i)
// Clean accuracy is epsilon-independent and shared across modes:
//   clean_seed = derive_stream_seed(trial_seed, kSweepCleanStream)
// Certification (smooth arms) pins its own independent stream the same way:
//   cert_seed = derive_stream_seed(trial_seed, kSweepCertStream)
inline constexpr uint64_t kSweepCellStream = 0x5CE1;
inline constexpr uint64_t kSweepCleanStream = 0x5C1E;
inline constexpr uint64_t kSweepCertStream = 0x5CE7;

uint64_t sweep_cell_seed(uint64_t base_seed, size_t mode, size_t attack,
                         size_t eps_index, int trial);
uint64_t sweep_clean_seed(uint64_t base_seed, int trial);
uint64_t sweep_cert_seed(uint64_t base_seed, int trial);

struct SweepOptions {
  // Concurrent cell lanes. 0 = one per hardware thread;
  // 1 = serial (the reference path the parity tests compare against).
  unsigned threads = 0;
  bool verbose = false;  // per-cell completion lines on stderr
  // Deterministic partition: run only the cells whose canonical enumeration
  // index satisfies index % shard_count == shard_index (round-robin — every
  // shard samples every trial/mode band). shard_count == 1 is the full grid.
  size_t shard_index = 0;
  size_t shard_count = 1;
  // Crash-safe checkpoint journal (exp/journal.hpp). Empty = no journal.
  // Every completed task appends a line; with resume, an existing journal
  // whose header matches journal_header restores its tasks instead of
  // re-running them (SweepResult::resumed counts them).
  std::string journal_path;
  std::string journal_header;
  bool resume = false;
  // Test-only crash injection: complete at most this many tasks, then throw
  // SweepInterrupted (0 = unlimited). Journaled work survives for resume.
  size_t max_cells = 0;
};

// Thrown when SweepOptions::max_cells stops a run early. The journal holds
// everything completed so far; a resume run finishes the rest.
struct SweepInterrupted : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class SweepEngine {
 public:
  using Options = SweepOptions;

  explicit SweepEngine(Options opts = {});
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  // Expands and evaluates the grid. Throws std::invalid_argument on
  // malformed grids (missing model/eval set, duplicate or unknown backend
  // keys). Replica pools persist on the engine after run() returns so
  // callers can query backend() for energy/map reports.
  SweepResult run(const SweepGrid& grid);

  // Prototype replica's serving backend for a key of the last run (the
  // defense wrapper when the arm declares one, else the hardware backend
  // itself); null if unknown.
  hw::HardwareBackend* backend(const std::string& key) const;

  unsigned lanes() const { return lanes_; }

 private:
  struct Pool;

  Options opts_;
  unsigned lanes_ = 1;
  std::vector<std::unique_ptr<Pool>> pools_;
};

// Lane count used by the benches: $RHW_SWEEP_THREADS, or `fallback`
// (0 = one lane per hardware thread).
unsigned sweep_threads_env(unsigned fallback = 0);

}  // namespace rhw::exp
